#!/usr/bin/env bash
# Serve daemon smoke: start the daemon, synthesize cold, kill -9
# mid-campaign and corrupt the journal tail as a crash would, restart,
# and assert that the torn tail is diagnosed, the warm-cache request
# hits, and its costs are byte-identical to the cold run.
#
# Invoked by CI and by the `smoke` dune alias (`dune build @smoke`).
# Args: [BIN [MODEL [TECH]]] -- defaults assume the repository root.
set -euo pipefail

BIN=${1:-./_build/default/bin/main.exe}
MODEL=${2:-examples/models/codec.spi}
TECH=${3:-examples/models/codec.tech}

# everything lives in a scratch directory so the smoke is rerunnable
# and never litters the tree; /tmp keeps the unix socket path short
WORK=$(mktemp -d "${TMPDIR:-/tmp}/serve-smoke.XXXXXX")
trap 'rm -rf "$WORK"' EXIT
SOCK="$WORK/serve.sock"
DB="$WORK/serve-journal.db"
METRICS="$WORK/serve-metrics.json"

"$BIN" serve --socket "$SOCK" --store "$DB" --metrics "$METRICS" -j 2 &
SERVER=$!
sleep 1

"$BIN" request --socket "$SOCK" ping
"$BIN" request --socket "$SOCK" synthesize --file "$MODEL" --tech "$TECH" \
  > "$WORK/serve-cold.json"
"$BIN" request --socket "$SOCK" synthesize --file "$MODEL" --tech "$TECH" \
  --deadline-ms 0 | grep -q '"degraded":true'

# leave a request in flight, then crash the daemon hard and tear the
# journal tail exactly as an interrupted append would
"$BIN" request --socket "$SOCK" synthesize --file "$MODEL" --tech "$TECH" \
  --attempts 1 --timeout 2 >/dev/null 2>&1 &
kill -9 "$SERVER"
wait "$SERVER" 2>/dev/null || true
printf 'deadbeefdeadbeef 99 {"torn":' >> "$DB"

"$BIN" serve --socket "$SOCK" --store "$DB" --metrics "$METRICS" -j 2 \
  2> "$WORK/serve-recovery.log" &
SERVER=$!
sleep 1
grep -q 'torn write' "$WORK/serve-recovery.log"

"$BIN" request --socket "$SOCK" synthesize --file "$MODEL" --tech "$TECH" \
  > "$WORK/serve-warm.json"
grep -q '"warm":true' "$WORK/serve-warm.json"
grep -o '"cost":{[^}]*}' "$WORK/serve-cold.json" > "$WORK/serve-cold-cost.txt"
grep -o '"cost":{[^}]*}' "$WORK/serve-warm.json" > "$WORK/serve-warm-cost.txt"
diff -u "$WORK/serve-cold-cost.txt" "$WORK/serve-warm-cost.txt"

"$BIN" request --socket "$SOCK" shutdown
wait "$SERVER"
test -s "$METRICS"
echo "serve smoke: OK"
