#!/usr/bin/env bash
# Live-telemetry smoke: start the daemon with a fast series ticker, a
# structured log file and a trace export; drive a traced batch; scrape
# the metrics verb while a second batch is in flight; then assert that
#   - the batch response carries an rtrace/v1 span tree under its rid
#   - the same rid appears in the structured log stream
#   - the metrics response validates (obs/v1 snapshot, Prometheus
#     exposition, series/v1 with a non-zero rolling request rate)
#   - the daemon's --trace timeline carries one process per request
#
# Invoked by CI and by the `smoke` dune alias (`dune build @smoke`).
# Args: [BIN [MODEL [TECH [VALIDATE_TELEMETRY [VALIDATE_TRACE]]]]]
# Set TELEMETRY_ARTIFACTS to a directory to keep the artifacts.
set -euo pipefail

BIN=${1:-./_build/default/bin/main.exe}
MODEL=${2:-examples/models/codec.spi}
TECH=${3:-examples/models/codec.tech}
VALIDATE_TELEMETRY=${4:-./_build/default/test/validate_telemetry.exe}
VALIDATE_TRACE=${5:-./_build/default/test/validate_trace.exe}

WORK=$(mktemp -d "${TMPDIR:-/tmp}/telemetry-smoke.XXXXXX")
cleanup() {
  if [ -n "${TELEMETRY_ARTIFACTS:-}" ]; then
    mkdir -p "$TELEMETRY_ARTIFACTS"
    cp -f "$WORK"/daemon.log "$WORK"/traces.json \
      "$WORK"/batch-response.json "$WORK"/metrics-response.json \
      "$TELEMETRY_ARTIFACTS"/ 2>/dev/null || true
  fi
  rm -rf "$WORK"
}
trap cleanup EXIT
SOCK="$WORK/serve.sock"
LOG="$WORK/daemon.log"
TRACES="$WORK/traces.json"

"$BIN" serve --socket "$SOCK" -j 2 \
  --log "$LOG" --log-level debug \
  --sample-interval-ms 100 --trace "$TRACES" &
SERVER=$!
sleep 1

# a first request plus an idle beat gives the series rate history
"$BIN" request --socket "$SOCK" ping > /dev/null
sleep 0.5

# traced batch under a known rid: the span tree must come back inline
"$BIN" request --socket "$SOCK" batch --file "$MODEL" --tech "$TECH" \
  --count 4 --id smoke-batch-1 --trace-spans --timeout 60 \
  > "$WORK/batch-response.json"
grep -q '"schema":"rtrace/v1"' "$WORK/batch-response.json"
grep -q '"rid":"smoke-batch-1"' "$WORK/batch-response.json"
grep -q '"name":"serve.request"' "$WORK/batch-response.json"
grep -q '"name":"explore.solve_ns"' "$WORK/batch-response.json"

# the same rid must thread through the structured log stream
"$VALIDATE_TELEMETRY" --log "$LOG" \
  --expect-event serve.request --expect-rid smoke-batch-1

# scrape the metrics verb while a batch is in flight: the daemon queues
# it behind the running batch, and the response must still validate
# with a non-zero rolling request rate
"$BIN" request --socket "$SOCK" batch --file "$MODEL" --tech "$TECH" \
  --count 6 --timeout 60 > /dev/null &
LOAD=$!
sleep 0.3
"$BIN" request --socket "$SOCK" metrics --timeout 60 --attempts 1 \
  > "$WORK/metrics-response.json"
wait "$LOAD"
"$VALIDATE_TELEMETRY" --response "$WORK/metrics-response.json" --expect-rate

"$BIN" request --socket "$SOCK" shutdown > /dev/null
wait "$SERVER"

# the trace export lands at shutdown: one timeline process per request
test -s "$TRACES"
"$VALIDATE_TRACE" --allow-nesting "$TRACES"
grep -q 'req smoke-batch-1' "$TRACES"

echo "telemetry smoke: OK"
