(* The observability layer: lock-free metrics under concurrent writers,
   histogram quantile bounds, and the obs/v1 snapshot round-trip. *)

module J = Obs.Json

let test_counter_concurrent =
  QCheck.Test.make ~count:30 ~name:"counter loses no concurrent increments"
    QCheck.(pair (int_range 2 6) (int_range 1 2000))
    (fun (domains, increments) ->
      let c = Obs.Metric.make_counter "qcheck.concurrent" in
      let workers =
        List.init domains (fun _ ->
            Domain.spawn (fun () ->
                for _ = 1 to increments do
                  Obs.Metric.incr c
                done))
      in
      List.iter Domain.join workers;
      Obs.Metric.value c = domains * increments)

let test_histogram_concurrent =
  QCheck.Test.make ~count:20
    ~name:"histogram count/sum lose no concurrent observations"
    QCheck.(pair (int_range 2 4) (int_range 1 500))
    (fun (domains, observations) ->
      let h = Obs.Metric.make_histogram "qcheck.hist" in
      let workers =
        List.init domains (fun d ->
            Domain.spawn (fun () ->
                for i = 1 to observations do
                  Obs.Metric.observe h ((d * observations) + i)
                done))
      in
      List.iter Domain.join workers;
      Obs.Metric.count h = domains * observations
      && Obs.Metric.h_min h = Some 1
      && Obs.Metric.h_max h = Some (domains * observations))

let test_histogram_quantiles () =
  let h = Obs.Metric.make_histogram "t.quantiles" in
  for v = 1 to 1000 do
    Obs.Metric.observe h v
  done;
  Alcotest.(check int) "count" 1000 (Obs.Metric.count h);
  Alcotest.(check int) "sum" 500500 (Obs.Metric.sum h);
  Alcotest.(check (option int)) "min" (Some 1) (Obs.Metric.h_min h);
  Alcotest.(check (option int)) "max" (Some 1000) (Obs.Metric.h_max h);
  (* power-of-two buckets: an estimate is an upper bound for its bucket
     and carries at most a 2x relative error *)
  let check_quantile q exact =
    match Obs.Metric.quantile h q with
    | None -> Alcotest.failf "quantile %.2f empty" q
    | Some est ->
      if est < exact || est > 2 * exact then
        Alcotest.failf "quantile %.2f: estimate %d not in [%d, %d]" q est
          exact (2 * exact)
  in
  check_quantile 0.5 500;
  check_quantile 0.9 900;
  check_quantile 0.99 990;
  Alcotest.(check (option int)) "q=1 is clamped to the observed max"
    (Some 1000)
    (Obs.Metric.quantile h 1.)

let test_histogram_rejects () =
  let c = Obs.Metric.make_counter "t.neg" in
  Alcotest.check_raises "negative add"
    (Invalid_argument "Metric.add: negative delta") (fun () ->
      Obs.Metric.add c (-1));
  let h = Obs.Metric.make_histogram "t.clamp" in
  Obs.Metric.observe h (-5);
  Alcotest.(check (option int)) "negative observation clamps to 0" (Some 0)
    (Obs.Metric.h_min h)

let test_json_roundtrip () =
  let doc =
    J.Obj
      [
        ("schema", J.String "obs/v1");
        ("int", J.Int 42);
        ("neg", J.Int (-7));
        ("float", J.Float 1.5);
        ("truth", J.Bool true);
        ("nothing", J.Null);
        ("text", J.String "line\n\"quoted\" \\ tab\t");
        ("list", J.List [ J.Int 1; J.Int 2; J.Int 3 ]);
        ("nested", J.Obj [ ("k", J.List [ J.Obj [ ("d", J.Int 0) ] ]) ]);
      ]
  in
  (match J.parse (J.to_string doc) with
  | Ok parsed -> Alcotest.(check bool) "minified round-trip" true (parsed = doc)
  | Error e -> Alcotest.failf "parse failed: %s" e);
  match J.parse (J.to_string ~minify:false doc) with
  | Ok parsed -> Alcotest.(check bool) "indented round-trip" true (parsed = doc)
  | Error e -> Alcotest.failf "parse failed: %s" e

let test_snapshot_roundtrip () =
  Obs.Registry.reset ();
  let c = Obs.Registry.counter "t.snapshot.count" in
  let g = Obs.Registry.gauge "t.snapshot.level" in
  let h = Obs.Registry.histogram "t.snapshot.lat_ns" in
  Obs.Metric.add c 17;
  Obs.Metric.set g (-3);
  List.iter (Obs.Metric.observe h) [ 1; 10; 100; 1000 ];
  Obs.Registry.record_span ~name:"t.snapshot.span_ns" ~start_ns:5 ~dur_ns:9;
  let snap = Obs.Registry.snapshot () in
  match J.parse (J.to_string ~minify:false snap) with
  | Error e -> Alcotest.failf "snapshot does not re-parse: %s" e
  | Ok parsed ->
    Alcotest.(check bool) "snapshot round-trips exactly" true (parsed = snap);
    let get path =
      List.fold_left (fun acc key -> Option.bind acc (J.member key)) (Some parsed) path
    in
    Alcotest.(check (option string))
      "schema tag" (Some "obs/v1")
      (Option.bind (get [ "schema" ]) J.to_string_opt);
    Alcotest.(check (option int))
      "counter value survives" (Some 17)
      (Option.bind (get [ "counters"; "t.snapshot.count" ]) J.to_int);
    Alcotest.(check (option int))
      "gauge value survives" (Some (-3))
      (Option.bind (get [ "gauges"; "t.snapshot.level" ]) J.to_int);
    Alcotest.(check (option int))
      "histogram count survives" (Some 4)
      (Option.bind (get [ "histograms"; "t.snapshot.lat_ns"; "count" ]) J.to_int);
    Alcotest.(check (option int))
      "histogram sum survives" (Some 1111)
      (Option.bind (get [ "histograms"; "t.snapshot.lat_ns"; "sum" ]) J.to_int);
    let spans =
      Option.bind (get [ "spans" ]) J.to_list |> Option.value ~default:[]
    in
    let ours =
      List.filter
        (fun s ->
          Option.bind (J.member "name" s) J.to_string_opt
          = Some "t.snapshot.span_ns")
        spans
    in
    Alcotest.(check int) "recorded span is in the snapshot" 1 (List.length ours)

let test_registry_identity () =
  let a = Obs.Registry.counter "t.identity" in
  let b = Obs.Registry.counter "t.identity" in
  Obs.Metric.incr a;
  Obs.Metric.incr b;
  Alcotest.(check int) "same handle for the same name" 2 (Obs.Metric.value a);
  Alcotest.check_raises "name/type clash is rejected"
    (Invalid_argument
       "Obs.Registry: t.identity already registered with another type")
    (fun () -> ignore (Obs.Registry.gauge "t.identity"))

let test_reset_keeps_handles () =
  let c = Obs.Registry.counter "t.reset" in
  Obs.Metric.add c 5;
  Obs.Registry.reset ();
  Alcotest.(check int) "reset zeroes" 0 (Obs.Metric.value c);
  Obs.Metric.incr c;
  Alcotest.(check int) "handle still live after reset" 1 (Obs.Metric.value c)

let test_with_span () =
  Obs.Registry.reset ();
  let r = Obs.Registry.with_span "t.span.body_ns" (fun () -> 21 * 2) in
  Alcotest.(check int) "with_span returns the body's value" 42 r;
  (try
     ignore
       (Obs.Registry.with_span "t.span.raise_ns" (fun () -> failwith "boom"))
   with Failure _ -> ());
  let names = List.map (fun s -> s.Obs.Span.name) (Obs.Registry.spans ()) in
  Alcotest.(check bool) "span recorded" true (List.mem "t.span.body_ns" names);
  Alcotest.(check bool) "span recorded on raise" true
    (List.mem "t.span.raise_ns" names);
  let h = Obs.Registry.histogram "t.span.body_ns" in
  Alcotest.(check int) "duration observed in the same-name histogram" 1
    (Obs.Metric.count h)

(* ------------------------- steal counters --------------------------- *)

(* The aggregate [par.steals] and the per-worker [par.steals.w<i>]
   counters are bumped pairwise on every successful steal, so across any
   quiesced workload their deltas must agree exactly — a lost increment
   on either side breaks the equality.  [Harness.force_steals]
   guarantees the workload actually steals. *)
let test_steal_counter_conservation () =
  let total = Obs.Registry.counter "par.steals" in
  let per_worker =
    List.init 16 (fun i ->
        Obs.Registry.counter (Printf.sprintf "par.steals.w%d" i))
  in
  let before_total = Obs.Metric.value total in
  let before = List.map Obs.Metric.value per_worker in
  for _ = 1 to 5 do
    ignore (Harness.force_steals ~jobs:4 ~children:16 () : int)
  done;
  let d_total = Obs.Metric.value total - before_total in
  let d_workers =
    List.fold_left2
      (fun acc c b -> acc + Obs.Metric.value c - b)
      0 per_worker before
  in
  Alcotest.(check bool) "stealing happened" true (d_total >= 5);
  Alcotest.(check int) "no lost steal increments" d_total d_workers

let test_steals_in_snapshot () =
  ignore (Harness.force_steals ~jobs:2 ~children:8 () : int);
  let snap = Obs.Registry.snapshot () in
  match J.parse (J.to_string snap) with
  | Error e -> Alcotest.failf "snapshot does not re-parse: %s" e
  | Ok parsed ->
    let counter name =
      Option.bind
        (Option.bind (J.member "counters" parsed) (J.member name))
        J.to_int
    in
    Alcotest.(check (option int))
      "par.steals round-trips through obs/v1"
      (Some (Obs.Metric.value (Obs.Registry.counter "par.steals")))
      (counter "par.steals");
    Alcotest.(check bool) "per-worker steal counter is in the snapshot" true
      (counter "par.steals.w0" <> None || counter "par.steals.w1" <> None)

(* Snapshot files are replaced atomically: the temp file never lingers
   and a concurrent reader sees either the old or the new contents. *)
let test_atomic_file_write () =
  let path =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "spi-obs-atomic-%d.json" (Unix.getpid ()))
  in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      Obs.Atomic_file.write path "first\n";
      Obs.Atomic_file.write path "second\n";
      let ic = open_in_bin path in
      let contents = really_input_string ic (in_channel_length ic) in
      close_in ic;
      Alcotest.(check string) "last write wins, complete" "second\n" contents;
      let dir = Filename.dirname path and base = Filename.basename path in
      let leftovers =
        Sys.readdir dir |> Array.to_list
        |> List.filter (fun f ->
               String.length f > String.length base
               && String.sub f 0 (String.length base) = base)
      in
      Alcotest.(check (list string)) "no temp files left" [] leftovers)


(* ----------------------- span ring capacity ------------------------ *)

let test_span_capacity_guard () =
  Obs.Registry.reset ();
  let cap = Obs.Registry.span_capacity () in
  Alcotest.check_raises "zero capacity rejected"
    (Invalid_argument
       "Obs.Registry.set_span_capacity: capacity 0 (want > 0)")
    (fun () -> Obs.Registry.set_span_capacity 0);
  Alcotest.check_raises "negative capacity rejected"
    (Invalid_argument
       "Obs.Registry.set_span_capacity: capacity -8 (want > 0)")
    (fun () -> Obs.Registry.set_span_capacity (-8));
  Alcotest.(check int) "capacity unchanged by rejected calls" cap
    (Obs.Registry.span_capacity ())

let test_span_capacity_same_is_noop () =
  Obs.Registry.reset ();
  Obs.Registry.record_span ~name:"t.cap.kept_ns" ~start_ns:1 ~dur_ns:2;
  (* a same-capacity call must not swap the ring and drop the span *)
  Obs.Registry.set_span_capacity (Obs.Registry.span_capacity ());
  let names = List.map (fun s -> s.Obs.Span.name) (Obs.Registry.spans ()) in
  Alcotest.(check bool) "recorded span survives a same-capacity call" true
    (List.mem "t.cap.kept_ns" names);
  (* a genuine resize is allowed to start fresh *)
  let cap = Obs.Registry.span_capacity () in
  Obs.Registry.set_span_capacity (cap + 1);
  Alcotest.(check int) "resize takes effect" (cap + 1)
    (Obs.Registry.span_capacity ());
  Obs.Registry.set_span_capacity cap

(* ------------------------ streamed traces --------------------------- *)

let stream_tmp =
  let counter = ref 0 in
  fun () ->
    incr counter;
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "spi-obs-stream-%d-%d.json" (Unix.getpid ()) !counter)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* Two runs (pids 0 and 1) emitted through a sink: the streamed file,
   flushed once per run, must be byte-identical to the buffered
   exporter over the same records. *)
let emit_run sink ~pid =
  let module T = Obs.Trace_event in
  T.sink_process_name sink ~pid (Printf.sprintf "run %d" pid);
  T.sink_thread_name sink ~pid ~tid:1 "worker";
  sink.T.event
    (T.Complete
       {
         name = "fire";
         cat = "sim";
         pid;
         tid = 1;
         ts = 10. +. float_of_int pid;
         dur = 3.;
         args = [ ("n", J.Int pid) ];
       });
  sink.T.event
    (T.Instant
       { name = "tick"; cat = "sim"; pid; tid = 1; ts = 5.; args = [] });
  sink.T.event
    (T.Counter
       { name = "depth"; pid; ts = 7.; values = [ ("c", 2.) ] })

let test_trace_stream_byte_equality () =
  let module T = Obs.Trace_event in
  let buffered = stream_tmp () and streamed = stream_tmp () in
  Fun.protect
    ~finally:(fun () ->
      List.iter
        (fun p -> try Sys.remove p with Sys_error _ -> ())
        [ buffered; streamed ])
    (fun () ->
      let builder = T.create () in
      emit_run (T.buffer_sink builder) ~pid:0;
      emit_run (T.buffer_sink builder) ~pid:1;
      T.to_file buffered builder;
      let stream = Obs.Trace_stream.create streamed in
      emit_run (Obs.Trace_stream.sink stream) ~pid:0;
      Obs.Trace_stream.flush stream;
      emit_run (Obs.Trace_stream.sink stream) ~pid:1;
      let events = Obs.Trace_stream.close stream in
      Alcotest.(check int) "event count (metadata excluded)" 6 events;
      Alcotest.(check string) "streamed bytes = buffered bytes"
        (read_file buffered) (read_file streamed))

let test_trace_stream_empty_and_closed () =
  let path = stream_tmp () in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      let stream = Obs.Trace_stream.create path in
      Alcotest.(check int) "no events" 0 (Obs.Trace_stream.close stream);
      (match J.parse (read_file path) with
      | Error e -> Alcotest.failf "empty stream is not JSON: %s" e
      | Ok json ->
        Alcotest.(check (option string)) "schema tag" (Some "trace/v1")
          (Option.bind (J.member "schema" json) J.to_string_opt);
        Alcotest.(check bool) "empty traceEvents" true
          (Option.bind (J.member "traceEvents" json) J.to_list = Some []));
      Alcotest.(check bool) "use after close rejected" true
        (try
           Obs.Trace_stream.flush stream;
           false
         with Invalid_argument _ -> true))

let test_trace_stream_abort () =
  let path = stream_tmp () in
  let stream = Obs.Trace_stream.create path in
  emit_run (Obs.Trace_stream.sink stream) ~pid:0;
  Obs.Trace_stream.abort stream;
  Alcotest.(check bool) "target never materializes" false (Sys.file_exists path);
  let dir = Filename.dirname path and base = Filename.basename path in
  let leftovers =
    Sys.readdir dir |> Array.to_list
    |> List.filter (fun f ->
           String.length f > String.length base
           && String.sub f 0 (String.length base) = base)
  in
  Alcotest.(check (list string)) "no temp files left" [] leftovers

(* ------------------------ request tracing --------------------------- *)

let rtrace_find name spans =
  match List.find_opt (fun s -> s.Obs.Rtrace.name = name) spans with
  | Some s -> s
  | None -> Alcotest.failf "no span named %s" name

let test_rtrace_nesting () =
  let tr = Obs.Rtrace.create "rid-nest" in
  Obs.Rtrace.with_request tr "serve.request" (fun () ->
      Obs.Registry.with_span "t.rt.outer_ns" (fun () ->
          Obs.Registry.with_span "t.rt.inner_ns" (fun () -> ());
          Obs.Registry.record_span ~name:"t.rt.leaf_ns" ~start_ns:1 ~dur_ns:1));
  Alcotest.(check int) "nothing dropped" 0 (Obs.Rtrace.dropped tr);
  Alcotest.(check string) "rid" "rid-nest" (Obs.Rtrace.rid tr);
  let spans = Obs.Rtrace.spans tr in
  let root = rtrace_find "serve.request" spans in
  let outer = rtrace_find "t.rt.outer_ns" spans in
  let inner = rtrace_find "t.rt.inner_ns" spans in
  let leaf = rtrace_find "t.rt.leaf_ns" spans in
  Alcotest.(check int) "root parents to 0" 0 root.Obs.Rtrace.parent;
  Alcotest.(check int) "outer parents to root" root.Obs.Rtrace.id
    outer.Obs.Rtrace.parent;
  Alcotest.(check int) "inner parents to outer" outer.Obs.Rtrace.id
    inner.Obs.Rtrace.parent;
  Alcotest.(check int) "record_span leaf parents to outer"
    outer.Obs.Rtrace.id leaf.Obs.Rtrace.parent;
  (* spans recorded outside with_request join no trace *)
  Obs.Registry.record_span ~name:"t.rt.after_ns" ~start_ns:2 ~dur_ns:1;
  Alcotest.(check int) "no growth after deactivation" (List.length spans)
    (List.length (Obs.Rtrace.spans tr))

let test_rtrace_cross_domain () =
  let tr = Obs.Rtrace.create "rid-xdom" in
  Obs.Rtrace.with_request tr "serve.request" (fun () ->
      let ctx = Obs.Rtrace.capture () in
      let worker =
        Domain.spawn (fun () ->
            Obs.Rtrace.restore ctx;
            Obs.Registry.with_span "t.rt.worker_ns" (fun () -> ()))
      in
      Domain.join worker);
  let spans = Obs.Rtrace.spans tr in
  let root = rtrace_find "serve.request" spans in
  let worker = rtrace_find "t.rt.worker_ns" spans in
  Alcotest.(check int) "worker span parents to the request root"
    root.Obs.Rtrace.id worker.Obs.Rtrace.parent;
  Alcotest.(check bool) "recorded on a different domain" true
    (worker.Obs.Rtrace.domain <> root.Obs.Rtrace.domain)

let test_rtrace_overflow_counted () =
  let tr = Obs.Rtrace.create ~capacity:2 "rid-full" in
  Obs.Rtrace.with_request tr "root" (fun () ->
      for i = 1 to 5 do
        Obs.Registry.record_span ~name:"t.rt.flood_ns" ~start_ns:i ~dur_ns:1
      done);
  Alcotest.(check bool) "overflow is counted, not silent" true
    (Obs.Rtrace.dropped tr > 0);
  Alcotest.(check bool) "capacity respected" true
    (List.length (Obs.Rtrace.spans tr) <= 2);
  match Obs.Json.member "dropped" (Obs.Rtrace.to_json tr) with
  | Some (J.Int n) when n > 0 -> ()
  | _ -> Alcotest.fail "dropped count missing from rtrace/v1"

let test_rtrace_json_shape () =
  let tr = Obs.Rtrace.create "rid-json" in
  Obs.Rtrace.with_request tr "serve.request" (fun () ->
      Obs.Registry.with_span "t.rt.child_ns" (fun () -> ()));
  let doc = Obs.Rtrace.to_json tr in
  Alcotest.(check (option string)) "schema" (Some "rtrace/v1")
    (Option.bind (J.member "schema" doc) J.to_string_opt);
  Alcotest.(check (option string)) "rid" (Some "rid-json")
    (Option.bind (J.member "rid" doc) J.to_string_opt);
  match Option.bind (J.member "spans" doc) J.to_list with
  | Some (_ :: _ :: _) -> ()
  | _ -> Alcotest.fail "expected at least two spans in the tree"

(* --------------------- Prometheus exposition ------------------------ *)

let expo_samples name text =
  (* non-comment lines "<name>[{...}] <value>" for one metric *)
  String.split_on_char '\n' text
  |> List.filter_map (fun line ->
         match String.index_opt line ' ' with
         | Some sp when String.length line > 0 && line.[0] <> '#' ->
           let key = String.sub line 0 sp in
           let value =
             String.sub line (sp + 1) (String.length line - sp - 1)
           in
           let matches =
             key = name
             || (String.length key > String.length name
                 && String.sub key 0 (String.length name) = name
                 && (key.[String.length name] = '_'
                    || key.[String.length name] = '{'))
           in
           if matches then Some (key, value) else None
         | _ -> None)

let test_expo_sanitize () =
  Alcotest.(check string) "dots to underscores" "serve_queue_wait_ns"
    (Obs.Expo.sanitize "serve.queue_wait_ns");
  Alcotest.(check string) "leading digit prefixed" "_9lives"
    (Obs.Expo.sanitize "9lives");
  Alcotest.(check string) "colon kept" "a:b" (Obs.Expo.sanitize "a:b");
  Alcotest.(check int) "zero bucket upper" 0 (Obs.Expo.bucket_upper_of_lower 0);
  Alcotest.(check int) "pow2 bucket upper" 7 (Obs.Expo.bucket_upper_of_lower 4)

(* Every registered metric appears in the exposition; histogram bucket
   series are cumulative, monotone in le, and end with +Inf == count. *)
let test_expo_roundtrip =
  QCheck.Test.make ~count:50
    ~name:"Prometheus exposition is complete, cumulative, monotone"
    QCheck.(list_of_size (Gen.int_range 0 200) (int_range 0 2_000_000))
    (fun observations ->
      Obs.Registry.reset ();
      let h = Obs.Registry.histogram "t.expo.prop_ns" in
      List.iter (Obs.Metric.observe h) observations;
      let text = Obs.Expo.render () in
      (* completeness: every binding's sanitized name is exposed *)
      List.for_all
        (fun (name, _) -> expo_samples (Obs.Expo.sanitize name) text <> [])
        (Obs.Registry.bindings ())
      &&
      let samples = expo_samples "t_expo_prop_ns" text in
      let buckets =
        List.filter_map
          (fun (k, v) ->
            let prefix = "t_expo_prop_ns_bucket{le=\"" in
            if
              String.length k > String.length prefix
              && String.sub k 0 (String.length prefix) = prefix
            then
              let le =
                String.sub k (String.length prefix)
                  (String.length k - String.length prefix - 2)
              in
              Some (le, int_of_string v)
            else None)
          samples
      in
      let count =
        match List.assoc_opt "t_expo_prop_ns_count" samples with
        | Some v -> int_of_string v
        | None -> -1
      in
      let sum =
        match List.assoc_opt "t_expo_prop_ns_sum" samples with
        | Some v -> int_of_string v
        | None -> -1
      in
      let rec check_monotone prev_le prev_cum = function
        | [] -> true
        | ("+Inf", cum) :: rest ->
          cum = count && cum >= prev_cum && rest = []
        | (le, cum) :: rest ->
          let le = int_of_string le in
          le > prev_le && cum >= prev_cum && check_monotone le cum rest
      in
      count = List.length observations
      && sum = List.fold_left ( + ) 0 observations
      && buckets <> []
      && check_monotone (-1) 0 buckets)

(* ------------------------- rolling series --------------------------- *)

let test_series_rates_and_quantiles () =
  Obs.Registry.reset ();
  let s = Obs.Series.create ~windows:4 () in
  let c = Obs.Registry.counter "t.series.reqs" in
  let h = Obs.Registry.histogram "t.series.lat_ns" in
  Obs.Series.sample s;
  Obs.Metric.add c 100;
  for v = 1 to 100 do
    Obs.Metric.observe h v
  done;
  Unix.sleepf 0.01;
  Obs.Series.sample s;
  Alcotest.(check int) "two windows" 2 (Obs.Series.windows s);
  let doc = Obs.Series.to_json s in
  let get path =
    List.fold_left (fun j k -> Option.bind j (J.member k)) (Some doc) path
  in
  Alcotest.(check (option string)) "schema" (Some "series/v1")
    (Option.bind (get [ "schema" ]) J.to_string_opt);
  Alcotest.(check (option int)) "counter value" (Some 100)
    (Option.bind (get [ "counters"; "t.series.reqs"; "value" ]) J.to_int);
  (match get [ "counters"; "t.series.reqs"; "last_per_s" ] with
  | Some (J.Float r) when r > 0. -> ()
  | other ->
    Alcotest.failf "expected positive rate, got %s"
      (match other with Some j -> J.to_string j | None -> "nothing"));
  Alcotest.(check (option int)) "windowed count" (Some 100)
    (Option.bind (get [ "histograms"; "t.series.lat_ns"; "window_count" ])
       J.to_int);
  match get [ "histograms"; "t.series.lat_ns"; "p50" ] with
  | Some (J.Int p50) when p50 >= 50 && p50 <= 127 -> ()
  | other ->
    Alcotest.failf "rolling p50 out of the 2x bucket bound: %s"
      (match other with Some j -> J.to_string j | None -> "nothing")

let test_series_eviction () =
  Obs.Registry.reset ();
  let s = Obs.Series.create ~windows:2 () in
  for _ = 1 to 5 do
    Obs.Series.sample s
  done;
  Alcotest.(check int) "capped at windows" 2 (Obs.Series.windows s);
  Alcotest.(check int) "taken keeps counting" 5 (Obs.Series.taken s);
  Alcotest.check_raises "windows < 2 rejected"
    (Invalid_argument "Series.create: windows < 2") (fun () ->
      ignore (Obs.Series.create ~windows:1 ()))

let test_series_delta_helpers () =
  let d =
    Obs.Series.delta_buckets
      ~newer:[ (0, 2); (1, 3); (2, 5) ]
      ~older:[ (0, 1); (2, 5) ]
  in
  Alcotest.(check (list (pair int int)))
    "per-bucket delta, zero buckets dropped"
    [ (0, 1); (1, 3) ]
    d;
  Alcotest.(check (option int)) "median of the delta" (Some 1)
    (Obs.Series.quantile_of_buckets d 0.5);
  Alcotest.(check (option int)) "empty window has no quantile" None
    (Obs.Series.quantile_of_buckets [] 0.5);
  (* rank = ceil(q * total): q=0.5 of [(0,1);(1,2);(2,4)] is rank 4,
     landing in the [2,3] bucket whose upper bound is 3 *)
  Alcotest.(check (option int)) "rank lands on the bucket upper" (Some 3)
    (Obs.Series.quantile_of_buckets [ (0, 1); (1, 2); (2, 4) ] 0.5)

let test_series_diff_snapshots () =
  Obs.Registry.reset ();
  let c = Obs.Registry.counter "t.diff.reqs" in
  let h = Obs.Registry.histogram "t.diff.lat_ns" in
  Obs.Metric.add c 3;
  let a = Obs.Registry.snapshot () in
  Obs.Metric.add c 4;
  for v = 1 to 50 do
    Obs.Metric.observe h v
  done;
  let b = Obs.Registry.snapshot () in
  (match Obs.Series.diff_snapshots a b with
  | Error e -> Alcotest.failf "diff failed: %s" e
  | Ok diff ->
    let get path =
      List.fold_left (fun j k -> Option.bind j (J.member k)) (Some diff) path
    in
    Alcotest.(check (option string)) "schema" (Some "obs-diff/v1")
      (Option.bind (get [ "schema" ]) J.to_string_opt);
    Alcotest.(check (option int)) "counter delta" (Some 4)
      (Option.bind (get [ "counters"; "t.diff.reqs"; "delta" ]) J.to_int);
    Alcotest.(check (option int)) "histogram count delta" (Some 50)
      (Option.bind
         (get [ "histograms"; "t.diff.lat_ns"; "count_delta" ])
         J.to_int);
    (match get [ "histograms"; "t.diff.lat_ns"; "window_p50" ] with
    | Some (J.Int p) when p >= 25 && p <= 63 -> ()
    | other ->
      Alcotest.failf "window_p50 out of bound: %s"
        (match other with Some j -> J.to_string j | None -> "nothing"));
    (* unchanged metrics are omitted, so a self-diff is empty *)
    match Obs.Series.diff_snapshots b b with
    | Ok d ->
      Alcotest.(check bool) "self-diff has no counter entries" true
        (J.member "counters" d = Some (J.Obj []))
    | Error e -> Alcotest.failf "self-diff failed: %s" e);
  match Obs.Series.diff_snapshots (J.Obj []) b with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "accepted a non-obs/v1 document"

(* ------------------------- structured logs -------------------------- *)

let with_log_capture f =
  let lines = ref [] in
  Obs.Log.set_sink (Some (fun l -> lines := l :: !lines));
  Fun.protect
    ~finally:(fun () ->
      Obs.Log.set_level Obs.Log.Warn;
      Obs.Log.set_rate ~burst:Obs.Log.default_burst
        ~per_s:Obs.Log.default_per_s;
      Obs.Log.set_sink (Some (Obs.Log.channel_sink stderr)))
    (fun () -> f lines)

let test_log_schema_and_levels () =
  with_log_capture (fun lines ->
      Obs.Log.set_level Obs.Log.Info;
      Obs.Log.emit ~level:Obs.Log.Debug "t.log.hidden" [];
      Alcotest.(check int) "below threshold: nothing" 0 (List.length !lines);
      Obs.Log.emit "t.log.visible" [ ("answer", J.Int 42) ];
      match !lines with
      | [ line ] -> (
        match J.parse line with
        | Error e -> Alcotest.failf "log line is not JSON: %s" e
        | Ok doc ->
          let get path =
            List.fold_left
              (fun j k -> Option.bind j (J.member k))
              (Some doc) path
          in
          Alcotest.(check (option string)) "schema" (Some "log/v1")
            (Option.bind (get [ "schema" ]) J.to_string_opt);
          Alcotest.(check (option string)) "level" (Some "info")
            (Option.bind (get [ "level" ]) J.to_string_opt);
          Alcotest.(check (option string)) "event" (Some "t.log.visible")
            (Option.bind (get [ "event" ]) J.to_string_opt);
          Alcotest.(check (option int)) "fields carried" (Some 42)
            (Option.bind (get [ "fields"; "answer" ]) J.to_int);
          Alcotest.(check bool) "ts present" true (get [ "ts_ns" ] <> None))
      | other -> Alcotest.failf "expected one line, got %d" (List.length other))

let test_log_rate_limit () =
  with_log_capture (fun lines ->
      Obs.Log.set_level Obs.Log.Info;
      (* one-token bucket, slow refill: the tight loop exhausts it
         immediately and the suppressed lines accumulate in the bucket
         ([set_rate] would reset them, so stay on one configuration) *)
      Obs.Log.set_rate ~burst:1. ~per_s:50.;
      for _ = 1 to 10 do
        Obs.Log.emit "t.log.flood" []
      done;
      Alcotest.(check bool) "burst bounds the lines" true
        (List.length !lines < 5);
      (* refill, then the next permitted line carries the count *)
      Unix.sleepf 0.05;
      Obs.Log.emit "t.log.flood" [];
      let suppressed =
        List.exists
          (fun line ->
            match J.parse line with
            | Ok doc -> (
              match Option.bind (J.member "suppressed" doc) J.to_int with
              | Some n -> n > 0
              | None -> false)
            | Error _ -> false)
          !lines
      in
      Alcotest.(check bool)
        "a later line reports what the limiter dropped" true suppressed;
      Alcotest.check_raises "bad rate rejected"
        (Invalid_argument "Log.set_rate") (fun () ->
          Obs.Log.set_rate ~burst:0. ~per_s:1.))

(* --------------------- atomic file durability ----------------------- *)

let test_atomic_file_fresh_dir () =
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "spi-obs-fsync-%d" (Unix.getpid ()))
  in
  Unix.mkdir dir 0o755;
  let path = Filename.concat dir "snap.json" in
  Fun.protect
    ~finally:(fun () ->
      (try Sys.remove path with Sys_error _ -> ());
      try Unix.rmdir dir with Unix.Unix_error _ -> ())
    (fun () ->
      (* the durable path: file fsync, rename, directory fsync *)
      Obs.Atomic_file.write path "durable\n";
      let ic = open_in_bin path in
      let contents = really_input_string ic (in_channel_length ic) in
      close_in ic;
      Alcotest.(check string) "contents survive the fsync path" "durable\n"
        contents;
      Alcotest.(check (list string)) "only the target remains"
        [ "snap.json" ]
        (Array.to_list (Sys.readdir dir)));
  (* a missing directory still fails loudly *)
  match Obs.Atomic_file.write (Filename.concat dir "gone/x.json") "y" with
  | () -> Alcotest.fail "write into a missing directory succeeded"
  | exception Sys_error _ -> ()

let suite =
  ( "obs",
    [
      QCheck_alcotest.to_alcotest test_counter_concurrent;
      QCheck_alcotest.to_alcotest test_histogram_concurrent;
      Alcotest.test_case "histogram quantile sanity" `Quick
        test_histogram_quantiles;
      Alcotest.test_case "negative inputs" `Quick test_histogram_rejects;
      Alcotest.test_case "json round-trip" `Quick test_json_roundtrip;
      Alcotest.test_case "snapshot round-trip" `Quick test_snapshot_roundtrip;
      Alcotest.test_case "registry handle identity" `Quick
        test_registry_identity;
      Alcotest.test_case "reset keeps handles" `Quick test_reset_keeps_handles;
      Alcotest.test_case "with_span" `Quick test_with_span;
      Alcotest.test_case "steal counter conservation" `Quick
        test_steal_counter_conservation;
      Alcotest.test_case "par.steals in the snapshot" `Quick
        test_steals_in_snapshot;
      Alcotest.test_case "atomic snapshot replacement" `Quick
        test_atomic_file_write;
      Alcotest.test_case "span capacity guard" `Quick test_span_capacity_guard;
      Alcotest.test_case "same span capacity keeps spans" `Quick
        test_span_capacity_same_is_noop;
      Alcotest.test_case "trace stream byte equality" `Quick
        test_trace_stream_byte_equality;
      Alcotest.test_case "trace stream empty and closed" `Quick
        test_trace_stream_empty_and_closed;
      Alcotest.test_case "trace stream abort" `Quick test_trace_stream_abort;
      Alcotest.test_case "rtrace span nesting" `Quick test_rtrace_nesting;
      Alcotest.test_case "rtrace cross-domain context" `Quick
        test_rtrace_cross_domain;
      Alcotest.test_case "rtrace overflow counted" `Quick
        test_rtrace_overflow_counted;
      Alcotest.test_case "rtrace/v1 shape" `Quick test_rtrace_json_shape;
      Alcotest.test_case "exposition sanitize and buckets" `Quick
        test_expo_sanitize;
      QCheck_alcotest.to_alcotest test_expo_roundtrip;
      Alcotest.test_case "series rates and rolling quantiles" `Quick
        test_series_rates_and_quantiles;
      Alcotest.test_case "series ring eviction" `Quick test_series_eviction;
      Alcotest.test_case "series delta helpers" `Quick
        test_series_delta_helpers;
      Alcotest.test_case "snapshot diff" `Quick test_series_diff_snapshots;
      Alcotest.test_case "log schema and levels" `Quick
        test_log_schema_and_levels;
      Alcotest.test_case "log rate limiting" `Quick test_log_rate_limit;
      Alcotest.test_case "atomic write durability" `Quick
        test_atomic_file_fresh_dir;
    ] )
