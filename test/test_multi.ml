(* Tests for multi-processor partitioning, including consistency with
   the single-processor explorer and VCD export sanity. *)

module I = Spi.Ids
module F2 = Paper.Figure2

let pid = Harness.pid

let test_single_cpu_matches_explore () =
  (* one processor with the default capacity and cost 15 must reproduce
     the Table 1 variant-aware optimum *)
  let cpu = Synth.Multi.processor ~name:"cpu0" ~capacity:100 ~cost:15 in
  match Synth.Multi.optimal F2.table1_tech [ cpu ] [ F2.app1; F2.app2 ] with
  | None -> Alcotest.fail "solution expected"
  | Some s ->
    Alcotest.(check int) "same optimum as Explore" 41 s.Synth.Multi.total_cost;
    let simple = Synth.Multi.to_simple s.Synth.Multi.binding in
    Alcotest.(check (option bool))
      "PA in HW" (Some true)
      (Option.map (fun i -> i = Synth.Binding.Hw) (Synth.Binding.impl_of F2.pa simple))

let heavy_tech =
  (* two software-only processes, each loading 80: a single CPU of
     capacity 100 cannot host both *)
  Synth.Tech.make
    [
      (pid "x", Synth.Tech.sw_only ~load:80);
      (pid "y", Synth.Tech.sw_only ~load:80);
    ]

let both = Synth.App.make "both" [ pid "x"; pid "y" ]

let test_second_processor_needed () =
  let cpu cost name = Synth.Multi.processor ~name ~capacity:100 ~cost in
  (* one CPU: infeasible *)
  Alcotest.(check bool) "one cpu infeasible" true
    (Option.is_none (Synth.Multi.optimal heavy_tech [ cpu 15 "cpu0" ] [ both ]));
  (* two CPUs: feasible, pays both *)
  match Synth.Multi.optimal heavy_tech [ cpu 15 "cpu0"; cpu 20 "cpu1" ] [ both ] with
  | None -> Alcotest.fail "two cpus must suffice"
  | Some s ->
    Alcotest.(check int) "pays both processors" 35 s.Synth.Multi.total_cost;
    Alcotest.(check int) "two used" 2 (List.length s.Synth.Multi.processors_used)

let test_unused_processor_free () =
  let tech = Synth.Tech.make [ (pid "x", Synth.Tech.sw_only ~load:10) ] in
  let app = Synth.App.make "a" [ pid "x" ] in
  let cheap = Synth.Multi.processor ~name:"cheap" ~capacity:100 ~cost:5 in
  let dear = Synth.Multi.processor ~name:"dear" ~capacity:100 ~cost:50 in
  match Synth.Multi.optimal tech [ dear; cheap ] [ app ] with
  | None -> Alcotest.fail "solution expected"
  | Some s ->
    Alcotest.(check int) "only the cheap one" 5 s.Synth.Multi.total_cost;
    Alcotest.(check (list string)) "used" [ "cheap" ]
      (List.map I.Resource_id.to_string s.Synth.Multi.processors_used)

let test_mutual_exclusion_across_cpus () =
  (* variants may share each processor; only shared processes add up *)
  let tech =
    Synth.Tech.make
      [
        (pid "shared", Synth.Tech.sw_only ~load:40);
        (pid "v1", Synth.Tech.sw_only ~load:60);
        (pid "v2", Synth.Tech.sw_only ~load:60);
      ]
  in
  let apps =
    [
      Synth.App.make "a1" [ pid "shared"; pid "v1" ];
      Synth.App.make "a2" [ pid "shared"; pid "v2" ];
    ]
  in
  let cpu = Synth.Multi.processor ~name:"cpu0" ~capacity:100 ~cost:15 in
  match Synth.Multi.optimal tech [ cpu ] apps with
  | None -> Alcotest.fail "mutual exclusion should make one CPU enough"
  | Some s ->
    Alcotest.(check int) "single cpu" 15 s.Synth.Multi.total_cost;
    (match s.Synth.Multi.worst_load with
    | [ (_, load) ] -> Alcotest.(check int) "per-app worst load" 100 load
    | _ -> Alcotest.fail "one processor expected")

let test_heterogeneous_capacity () =
  let tech = Synth.Tech.make [ (pid "x", Synth.Tech.sw_only ~load:80) ] in
  let app = Synth.App.make "a" [ pid "x" ] in
  let small = Synth.Multi.processor ~name:"small" ~capacity:50 ~cost:1 in
  let big = Synth.Multi.processor ~name:"big" ~capacity:100 ~cost:30 in
  match Synth.Multi.optimal tech [ small; big ] [ app ] with
  | None -> Alcotest.fail "big cpu fits"
  | Some s ->
    Alcotest.(check (list string)) "placed on the big one" [ "big" ]
      (List.map I.Resource_id.to_string s.Synth.Multi.processors_used)

(* Parallel/sequential consistency over the shared harness builders:
   the work-stealing path must land on the sequential optimum and the
   reported processor set must price to the reported total. *)
let prop_parallel_matches_sequential =
  QCheck.Test.make ~name:"multi: parallel finds the sequential optimum"
    ~count:30
    QCheck.(triple (int_range 4 8) (int_range 1 2) (int_range 0 1000))
    (fun (n, n_cpu, seed) ->
      let tech, procs, apps = Harness.random_multi_instance ~n ~n_cpu ~seed in
      let seq = Synth.Multi.optimal ~jobs:1 tech procs apps in
      Harness.sweep_jobs ~jobs:[ 2; 4 ] (fun jobs ->
          let par = Synth.Multi.optimal ~jobs tech procs apps in
          match (seq, par) with
          | None, None -> true
          | Some s, Some p ->
            s.Synth.Multi.total_cost = p.Synth.Multi.total_cost
            && p.Synth.Multi.asic_area
                 + List.fold_left
                     (fun acc r ->
                       acc
                       + (match
                            List.find_opt
                              (fun (pr : Synth.Multi.processor) ->
                                I.Resource_id.equal pr.Synth.Multi.id r)
                              procs
                          with
                         | Some pr -> pr.Synth.Multi.cost
                         | None -> max_int))
                     0 p.Synth.Multi.processors_used
               = p.Synth.Multi.total_cost
          | Some _, None | None, Some _ -> false))

let test_processor_validation () =
  (try
     ignore (Synth.Multi.processor ~name:"p" ~capacity:0 ~cost:1);
     Alcotest.fail "capacity 0 accepted"
   with Invalid_argument _ -> ());
  let cpu = Synth.Multi.processor ~name:"p" ~capacity:10 ~cost:1 in
  try
    ignore (Synth.Multi.optimal heavy_tech [ cpu; cpu ] [ both ]);
    Alcotest.fail "duplicate processor accepted"
  with Invalid_argument _ -> ()

(* ------------------------------- VCD -------------------------------- *)

let contains ~needle haystack =
  let n = String.length needle and h = String.length haystack in
  let rec go i = i + n <= h && (String.sub haystack i n = needle || go (i + 1)) in
  go 0

let test_vcd_export () =
  let model = Paper.Figure1.model in
  let result =
    Sim.Engine.run ~stimuli:(Paper.Figure1.stimuli_mixed ~n:4) model
  in
  let vcd = Sim.Vcd.of_result model result in
  Alcotest.(check bool) "header" true (contains ~needle:"$timescale" vcd);
  Alcotest.(check bool) "definitions closed" true
    (contains ~needle:"$enddefinitions" vcd);
  Alcotest.(check bool) "process var" true (contains ~needle:"proc_p2" vcd);
  Alcotest.(check bool) "channel var" true (contains ~needle:"chan_c1" vcd);
  Alcotest.(check bool) "dumpvars" true (contains ~needle:"$dumpvars" vcd);
  Alcotest.(check bool) "has timestamps" true (contains ~needle:"#1" vcd);
  (* every binary value line references a declared id code *)
  let lines = String.split_on_char '\n' vcd in
  Alcotest.(check bool) "non-trivial dump" true (List.length lines > 20)

let test_vcd_reconfiguration_marks () =
  let built = Video.System.build Video.System.default_params in
  let stimuli =
    Video.Scenario.switching_demo ~frames:10 ~period:5 ~switches:[ (22, "fB") ] ()
  in
  let result =
    Sim.Engine.run ~configurations:built.Video.System.configurations ~stimuli
      built.Video.System.model
  in
  let vcd = Sim.Vcd.of_result built.Video.System.model result in
  (* the reconfiguration prefix is encoded as value 2 = binary 10 *)
  Alcotest.(check bool) "reconfiguration state present" true
    (contains ~needle:"b10 " vcd)

let suite =
  ( "multi-vcd",
    [
      Alcotest.test_case "single cpu matches explore" `Quick
        test_single_cpu_matches_explore;
      Alcotest.test_case "second processor needed" `Quick
        test_second_processor_needed;
      Alcotest.test_case "unused processor free" `Quick test_unused_processor_free;
      Alcotest.test_case "mutual exclusion across cpus" `Quick
        test_mutual_exclusion_across_cpus;
      Alcotest.test_case "heterogeneous capacity" `Quick
        test_heterogeneous_capacity;
      Alcotest.test_case "processor validation" `Quick test_processor_validation;
      QCheck_alcotest.to_alcotest prop_parallel_matches_sequential;
      Alcotest.test_case "vcd export" `Quick test_vcd_export;
      Alcotest.test_case "vcd reconfiguration marks" `Quick
        test_vcd_reconfiguration_marks;
    ] )
