(* Differential proof that the family engine (Sim.Family) produces, for
   every configuration of a variant space, exactly the result a
   per-configuration Sim.Engine run produces on that configuration's
   flattened model — trace entry for entry, final channel contents,
   outcome and counters, structurally and at rendered-byte level —
   across generated systems, policies, fault plans, limits, budgets and
   job counts.  Result equality is Test_compile's: the same helpers that
   prove the compiled engine identical to the interpreter. *)

module I = Spi.Ids

let render_assignment a =
  Format.asprintf "%a" Variants.Variant_space.pp_assignment a

(* Family run vs one Engine.run per configuration, under one scenario. *)
let differential ?policy ?limits ?overflow ?stimuli ?firing_budget ?faults
    ?(jobs = 1) system =
  let report =
    Sim.Family.run ?policy ?limits ?overflow ?stimuli ?firing_budget ?faults
      ~jobs system
  in
  let runs = report.Sim.Family.runs in
  let assignments = Variants.Variant_space.enumerate system in
  Array.length runs = List.length assignments
  && List.for_all
       (fun (i, assignment) ->
         let cr = runs.(i) in
         let model =
           Variants.Flatten.flatten system
             (Variants.Variant_space.to_choice assignment)
         in
         let reference =
           Sim.Engine.run ?policy ?limits ?overflow ?stimuli ?firing_budget
             ?faults model
         in
         cr.Sim.Family.index = i
         && render_assignment cr.Sim.Family.assignment
            = render_assignment assignment
         && Test_compile.result_eq model reference cr.Sim.Family.result)
       (List.mapi (fun i a -> (i, a)) assignments)

(* --------------------------- qcheck properties ----------------------- *)

let prop_generated_workloads =
  QCheck.Test.make ~name:"family = per-config engine (generated systems)"
    ~count:30
    QCheck.(int_range 0 9999)
    (fun seed ->
      let system = Harness.family_system ~seed in
      let stimuli = Harness.family_stimuli system in
      List.for_all
        (fun policy -> differential ~policy ~stimuli system)
        [ Sim.Engine.Best_case; Sim.Engine.Typical; Sim.Engine.Worst_case ])

let prop_generated_with_faults =
  QCheck.Test.make ~name:"family = per-config engine (fault plans)" ~count:25
    QCheck.(int_range 0 9999)
    (fun seed ->
      let system = Harness.family_system ~seed in
      let stimuli = Harness.family_stimuli ~tokens:5 system in
      let faults = Harness.family_fault_plan ~seed system in
      differential ~stimuli ~faults system)

let prop_limits_and_budgets =
  QCheck.Test.make ~name:"family = per-config engine (limits, budgets)"
    ~count:20
    QCheck.(pair (int_range 0 999) (int_range 1 30))
    (fun (seed, max_firings) ->
      let system = Harness.family_system ~seed in
      let stimuli = Harness.family_stimuli ~tokens:4 system in
      let limits = { Sim.Engine.max_time = 200; max_firings } in
      let firing_budget =
        List.filteri
          (fun i _ -> i mod 2 = 0)
          (List.map
             (fun p -> (Spi.Process.id p, 1 + (seed mod 3)))
             (Spi.Model.processes
                (Variants.Flatten.flatten system
                   (Variants.Flatten.first_cluster system))))
      in
      differential ~limits ~stimuli ~firing_budget system)

(* Sub-families become steal-able tasks on the domain pool: every job
   count must report the identical per-configuration results and the
   identical family statistics. *)
let prop_jobs_invariant =
  QCheck.Test.make ~name:"family run is job-count invariant" ~count:6
    QCheck.(int_range 0 999)
    (fun seed ->
      let system = Harness.family_system ~seed:((seed * 3) + 2) in
      let stimuli = Harness.family_stimuli ~tokens:4 system in
      let faults = Harness.family_fault_plan ~seed system in
      let fingerprint jobs =
        let r = Sim.Family.run ~stimuli ~faults ~jobs system in
        let runs =
          Array.to_list r.Sim.Family.runs
          |> List.map (fun cr ->
                 Format.asprintf "%d %s %a" cr.Sim.Family.index
                   (render_assignment cr.Sim.Family.assignment)
                   Sim.Trace.pp cr.Sim.Family.result.Sim.Engine.trace)
          |> String.concat "\n"
        in
        ( runs,
          r.Sim.Family.splits,
          r.Sim.Family.subfamilies,
          r.Sim.Family.executed_firings,
          r.Sim.Family.shared_firings )
      in
      let reference = fingerprint 1 in
      List.for_all (fun jobs -> fingerprint jobs = reference) [ 2; 4 ])

(* ------------------------------ unit tests --------------------------- *)

(* The acceptance sweep: 200 seeded systems mixing policies and fault
   plans, every configuration byte-identical to its own engine run. *)
let test_200_workloads () =
  for seed = 0 to 199 do
    let system = Harness.family_system ~seed in
    let stimuli = Harness.family_stimuli system in
    let policy =
      match seed mod 3 with
      | 0 -> Sim.Engine.Best_case
      | 1 -> Sim.Engine.Typical
      | _ -> Sim.Engine.Worst_case
    in
    let faults =
      if seed mod 2 = 1 then Some (Harness.family_fault_plan ~seed system)
      else None
    in
    Alcotest.(check bool)
      (Format.sprintf "workload %d" seed)
      true
      (differential ~policy ~stimuli ?faults system)
  done

(* The point of the whole exercise: on a sharing-friendly workload the
   family engine executes strictly fewer firings than the
   per-configuration sweep it replaces, because the shared prefix ran
   once for every member. *)
let test_sharing_pays () =
  let system = Harness.family_system ~seed:2 (* 3 sites, 8 configurations *) in
  let stimuli = Harness.family_stimuli system in
  let report = Sim.Family.run ~stimuli system in
  let per_config =
    Array.fold_left
      (fun acc cr -> acc + cr.Sim.Family.result.Sim.Engine.firings)
      0 report.Sim.Family.runs
  in
  Alcotest.(check int) "8 configurations" 8
    (Array.length report.Sim.Family.runs);
  Alcotest.(check bool) "some firings were shared" true
    (report.Sim.Family.shared_firings > 0);
  Alcotest.(check bool) "family executed fewer firings than N passes" true
    (report.Sim.Family.executed_firings < per_config);
  Alcotest.(check bool) "executed = per-config total - sharing savings" true
    (report.Sim.Family.executed_firings <= per_config)

let test_degradation_rejected () =
  let system = Harness.family_system ~seed:1 in
  let faults =
    Sim.Fault.plan
      ~degrade:(Sim.Fault.degradation ~fallback:(fun _ _ -> None) ())
      ~seed:7 ()
  in
  let rejected =
    match Sim.Family.run ~faults system with
    | (_ : Sim.Family.report) -> false
    | exception Invalid_argument _ -> true
  in
  Alcotest.(check bool) "degradation plans are rejected" true rejected

let test_makespans () =
  let system = Harness.family_system ~seed:5 in
  let stimuli = Harness.family_stimuli system in
  let report = Sim.Family.run ~stimuli system in
  let spans = Sim.Family.makespans report in
  Alcotest.(check int) "one makespan per configuration"
    (Array.length report.Sim.Family.runs)
    (Array.length spans);
  Array.iteri
    (fun i (index, makespan) ->
      let cr = report.Sim.Family.runs.(i) in
      let expected =
        List.fold_left
          (fun acc e ->
            match e with
            | Sim.Trace.Completed { time; _ } -> max acc time
            | _ -> acc)
          0 cr.Sim.Family.result.Sim.Engine.trace
      in
      Alcotest.(check int) (Format.sprintf "index %d" i) i index;
      Alcotest.(check int)
        (Format.sprintf "makespan of config %d" i)
        expected makespan)
    spans

(* The family lane convention: configuration [i] exports as process
   group [pid = i + 1], so one trace file holds every configuration's
   schedule side by side. *)
let test_timeline_lanes () =
  let system = Harness.family_system ~seed:4 in
  let stimuli = Harness.family_stimuli system in
  let report = Sim.Family.run ~stimuli system in
  let t = Obs.Trace_event.create () in
  Sim.Family.emit_timeline (Obs.Trace_event.buffer_sink t) system report;
  let configs = Array.length report.Sim.Family.runs in
  let pids =
    List.sort_uniq compare
      (List.map Obs.Trace_event.pid_of (Obs.Trace_event.events t))
  in
  Alcotest.(check bool) "events were emitted" true (Obs.Trace_event.length t > 0);
  Alcotest.(check bool)
    (Format.sprintf "pids cover 1..%d" configs)
    true
    (List.for_all (fun pid -> pid >= 1 && pid <= configs) pids
    && List.length pids = configs)

let suite =
  ( "family",
    [
      QCheck_alcotest.to_alcotest ~long:false prop_generated_workloads;
      QCheck_alcotest.to_alcotest ~long:false prop_generated_with_faults;
      QCheck_alcotest.to_alcotest ~long:false prop_limits_and_budgets;
      QCheck_alcotest.to_alcotest ~long:false prop_jobs_invariant;
      Alcotest.test_case "200 seeded systems are byte-identical" `Slow
        test_200_workloads;
      Alcotest.test_case "shared prefixes execute once" `Quick
        test_sharing_pays;
      Alcotest.test_case "degradation plans are rejected" `Quick
        test_degradation_rejected;
      Alcotest.test_case "makespans follow the traces" `Quick test_makespans;
      Alcotest.test_case "timeline lanes per configuration" `Quick
        test_timeline_lanes;
    ] )
