(* Tests for the event heap, traces and the discrete-event engine. *)

module I = Spi.Ids

(* ------------------------------- heap ------------------------------- *)

let test_heap_order () =
  let h = Sim.Heap.create () in
  Alcotest.(check bool) "empty" true (Sim.Heap.is_empty h);
  List.iter (fun (t, v) -> Sim.Heap.push ~time:t v h) [ (5, "e"); (1, "a"); (3, "c"); (1, "b") ];
  Alcotest.(check int) "size" 4 (Sim.Heap.size h);
  Alcotest.(check (option int)) "peek" (Some 1) (Sim.Heap.peek_time h);
  let drained = ref [] in
  let rec drain () =
    match Sim.Heap.pop_min h with
    | None -> ()
    | Some (t, v) ->
      drained := (t, v) :: !drained;
      drain ()
  in
  drain ();
  (* time order, FIFO among equal times *)
  Alcotest.(check (list (pair int string)))
    "sorted with stable ties"
    [ (1, "a"); (1, "b"); (3, "c"); (5, "e") ]
    (List.rev !drained)

let prop_heap_direct =
  QCheck.Test.make ~name:"heap pops sorted" ~count:200
    QCheck.(list_of_size (QCheck.Gen.int_range 0 50) (int_range 0 1000))
    (fun times ->
      let h = Sim.Heap.create () in
      List.iter (fun t -> Sim.Heap.push ~time:t () h) times;
      let rec drain acc =
        match Sim.Heap.pop_min h with
        | None -> List.rev acc
        | Some (t, ()) -> drain (t :: acc)
      in
      drain [] = List.sort compare times)

let prop_heap_via_engine =
  (* injections at random times must appear in the trace sorted *)
  QCheck.Test.make ~name:"stimuli processed in time order" ~count:100
    QCheck.(list_of_size (QCheck.Gen.int_range 0 30) (int_range 0 500))
    (fun times ->
      let cidr = I.Channel_id.of_string "in" in
      let sink =
        Spi.Process.simple ~latency:(Interval.point 1)
          ~consumes:[ (cidr, Interval.point 1) ]
          ~produces:[]
          (I.Process_id.of_string "sink")
      in
      let model =
        Spi.Model.build_exn ~processes:[ sink ] ~channels:[ Spi.Chan.queue cidr ]
      in
      let stimuli =
        List.map (fun at -> { Sim.Engine.at; channel = cidr; token = Spi.Token.plain }) times
      in
      let result = Sim.Engine.run ~stimuli model in
      let inject_times =
        List.filter_map
          (function
            | Sim.Trace.Injected { time; _ } -> Some time
            | Sim.Trace.Started _ | Sim.Trace.Completed _ | Sim.Trace.Faulted _
            | Sim.Trace.Quiescent _ ->
              None)
          result.Sim.Engine.trace
      in
      inject_times = List.sort compare times)

(* ------------------------------ engine ------------------------------ *)

let chain_model () =
  let cid = I.Channel_id.of_string and pid = I.Process_id.of_string in
  let one = Interval.point 1 in
  let a = cid "a" and b = cid "b" and c = cid "c" in
  let p =
    Spi.Process.simple ~latency:(Interval.make 2 4)
      ~consumes:[ (a, one) ]
      ~produces:[ (b, Spi.Mode.produce one) ]
      (pid "p")
  and q =
    Spi.Process.simple ~latency:(Interval.make 1 3)
      ~consumes:[ (b, one) ]
      ~produces:[ (c, Spi.Mode.produce one) ]
      (pid "q")
  in
  Spi.Model.build_exn ~processes:[ p; q ]
    ~channels:[ Spi.Chan.queue a; Spi.Chan.queue b; Spi.Chan.queue c ]

let inject_a n =
  List.init n (fun i ->
      {
        Sim.Engine.at = i * 10;
        channel = I.Channel_id.of_string "a";
        token = Spi.Token.make ~payload:(i + 1) ();
      })

let test_engine_policies () =
  let model = chain_model () in
  let run policy = (Sim.Engine.run ~policy ~stimuli:(inject_a 1) model).Sim.Engine.end_time in
  (* best case: 2 + 1 = 3; worst: 4 + 3 = 7; typical: 3 + 2 = 5 *)
  Alcotest.(check int) "best" 3 (run Sim.Engine.Best_case);
  Alcotest.(check int) "worst" 7 (run Sim.Engine.Worst_case);
  Alcotest.(check int) "typical" 5 (run Sim.Engine.Typical)

let test_engine_pipeline_throughput () =
  let model = chain_model () in
  let result = Sim.Engine.run ~policy:Sim.Engine.Worst_case ~stimuli:(inject_a 5) model in
  Alcotest.(check int) "all delivered" 5
    (List.length
       (Sim.Trace.tokens_produced_on (I.Channel_id.of_string "c")
          result.Sim.Engine.trace));
  Alcotest.(check int) "10 firings" 10 result.Sim.Engine.firings;
  Alcotest.(check bool) "quiescent" true
    (result.Sim.Engine.outcome = Sim.Engine.Quiescent)

let test_engine_budget () =
  (* a source with no inputs only fires when budgeted *)
  let pid = I.Process_id.of_string "src" in
  let cid = I.Channel_id.of_string "out" in
  let src =
    Spi.Process.simple ~latency:(Interval.point 1) ~consumes:[]
      ~produces:[ (cid, Spi.Mode.produce (Interval.point 1)) ]
      pid
  in
  let model = Spi.Model.build_exn ~processes:[ src ] ~channels:[ Spi.Chan.queue cid ] in
  let silent = Sim.Engine.run model in
  Alcotest.(check int) "no spontaneous firing" 0 silent.Sim.Engine.firings;
  let budgeted = Sim.Engine.run ~firing_budget:[ (pid, 3) ] model in
  Alcotest.(check int) "three firings" 3 budgeted.Sim.Engine.firings

let test_engine_firing_limit () =
  (* unbounded self-feeding process trips the firing limit, not a hang *)
  let pid = I.Process_id.of_string "loop" in
  let cid = I.Channel_id.of_string "self" in
  let p =
    Spi.Process.simple ~latency:(Interval.point 1)
      ~consumes:[ (cid, Interval.point 1) ]
      ~produces:[ (cid, Spi.Mode.produce (Interval.point 1)) ]
      pid
  in
  let model =
    Spi.Model.build_exn ~processes:[ p ]
      ~channels:[ Spi.Chan.queue ~initial:[ Spi.Token.plain ] cid ]
  in
  let result =
    Sim.Engine.run ~limits:{ Sim.Engine.max_time = 1000; max_firings = 50 } model
  in
  Alcotest.(check bool) "limit reached" true
    (result.Sim.Engine.outcome = Sim.Engine.Firing_limit_reached)

let test_engine_time_limit () =
  let model = chain_model () in
  let result =
    Sim.Engine.run
      ~limits:{ Sim.Engine.max_time = 5; max_firings = 1000 }
      ~stimuli:(inject_a 5) model
  in
  Alcotest.(check bool) "time limit" true
    (result.Sim.Engine.outcome = Sim.Engine.Time_limit_reached)

let test_engine_reconfiguration_accounting () =
  (* two modes in two configurations; alternating tags force a
     reconfiguration on every other execution *)
  let pid = I.Process_id.of_string "p" in
  let cid = I.Channel_id.of_string "in" in
  let mk_mode name =
    Spi.Mode.make ~latency:(Interval.point 1)
      ~consumes:[ (cid, Interval.point 1) ]
      ~produces:[]
      (I.Mode_id.of_string name)
  in
  let tag name = Spi.Tag.make name in
  let rule name t mode =
    Spi.Activation.rule (I.Rule_id.of_string name)
      ~guard:Spi.Predicate.(conj [ num_at_least cid 1; has_tag cid (tag t) ])
      ~mode:(I.Mode_id.of_string mode)
  in
  let p =
    Spi.Process.make
      ~activation:(Spi.Activation.make [ rule "ra" "a" "ma"; rule "rb" "b" "mb" ])
      ~modes:[ mk_mode "ma"; mk_mode "mb" ]
      pid
  in
  let model = Spi.Model.build_exn ~processes:[ p ] ~channels:[ Spi.Chan.queue cid ] in
  let confs =
    Variants.Configuration.make ~process:pid
      [
        Variants.Configuration.entry ~reconf_latency:10 "ca"
          ~modes:[ I.Mode_id.of_string "ma" ];
        Variants.Configuration.entry ~reconf_latency:20 "cb"
          ~modes:[ I.Mode_id.of_string "mb" ];
      ]
  in
  let stimuli =
    List.mapi
      (fun i t ->
        {
          Sim.Engine.at = i * 50;
          channel = cid;
          token = Spi.Token.make ~tags:(Spi.Tag.Set.singleton (tag t)) ();
        })
      [ "a"; "b"; "b"; "a" ]
  in
  let result = Sim.Engine.run ~configurations:[ confs ] ~stimuli model in
  (* reconfigurations: ->ca (10), ->cb (20), stay, ->ca (10) *)
  Alcotest.(check int) "reconf time" 40 result.Sim.Engine.reconfiguration_time;
  Alcotest.(check int) "three reconfigurations" 3
    (List.length (Sim.Trace.reconfigurations result.Sim.Engine.trace))

let test_engine_bad_configuration () =
  let model = chain_model () in
  let confs =
    Variants.Configuration.make ~process:(I.Process_id.of_string "ghost")
      [ Variants.Configuration.entry "c" ~modes:[] ]
  in
  try
    ignore (Sim.Engine.run ~configurations:[ confs ] model);
    Alcotest.fail "unknown process accepted"
  with Invalid_argument _ -> ()

let test_trace_helpers () =
  let model = chain_model () in
  let result = Sim.Engine.run ~stimuli:(inject_a 2) model in
  let trace = result.Sim.Engine.trace in
  Alcotest.(check int) "completions of p" 2
    (List.length (Sim.Trace.completions ~process:(I.Process_id.of_string "p") trace));
  Alcotest.(check int) "all completions" 4 (Sim.Trace.firing_count trace);
  Alcotest.(check bool) "end_time positive" true (Sim.Trace.end_time trace > 0);
  (* payloads travel the pipeline *)
  let payloads =
    List.filter_map
      (fun (_, tok) -> Spi.Token.payload tok)
      (Sim.Trace.tokens_produced_on (I.Channel_id.of_string "c") trace)
  in
  Alcotest.(check (list int)) "payloads in order" [ 1; 2 ] payloads

let suite =
  ( "sim",
    [
      Alcotest.test_case "heap order" `Quick test_heap_order;
      QCheck_alcotest.to_alcotest ~long:false prop_heap_direct;
      Alcotest.test_case "engine policies" `Quick test_engine_policies;
      Alcotest.test_case "pipeline throughput" `Quick
        test_engine_pipeline_throughput;
      Alcotest.test_case "firing budgets" `Quick test_engine_budget;
      Alcotest.test_case "firing limit" `Quick test_engine_firing_limit;
      Alcotest.test_case "time limit" `Quick test_engine_time_limit;
      Alcotest.test_case "reconfiguration accounting" `Quick
        test_engine_reconfiguration_accounting;
      Alcotest.test_case "bad configuration rejected" `Quick
        test_engine_bad_configuration;
      Alcotest.test_case "trace helpers" `Quick test_trace_helpers;
      QCheck_alcotest.to_alcotest ~long:false prop_heap_via_engine;
    ] )
