(* Validates the live-telemetry artifacts the daemon and client emit:

     validate_telemetry --log FILE [--expect-event EV] [--expect-rid RID]
       every line is a log/v1 object (schema, ts_ns, level, event,
       fields); optionally require an event name and a fields.rid

     validate_telemetry --expo FILE
       Prometheus text exposition: TYPE headers, samples for every
       header, histogram bucket series cumulative/monotone ending in
       +Inf == _count

     validate_telemetry --response FILE [--expect-rate]
       a metrics-verb response: status ok, obs/v1 snapshot, exposition
       (checked as above), series/v1 when present; --expect-rate
       additionally requires a non-zero rolling serve.requests rate

   Driven by the dune runtest rules in test/dune and by the CI
   telemetry smoke (test/smoke/telemetry_smoke.sh). *)

module J = Obs.Json

let fail fmt = Format.kasprintf (fun m -> prerr_endline m; exit 1) fmt

let read_file path =
  let ic = open_in_bin path in
  let contents = really_input_string ic (in_channel_length ic) in
  close_in ic;
  contents

(* ------------------------------ log/v1 ------------------------------ *)

let levels = [ "debug"; "info"; "warn"; "error" ]

let check_log_line path n line =
  let doc =
    match J.parse line with
    | Ok d -> d
    | Error e -> fail "%s:%d: not valid JSON: %s" path n e
  in
  (match Option.bind (J.member "schema" doc) J.to_string_opt with
  | Some "log/v1" -> ()
  | Some other -> fail "%s:%d: schema %S, expected log/v1" path n other
  | None -> fail "%s:%d: missing schema tag" path n);
  (match Option.bind (J.member "ts_ns" doc) J.to_int with
  | Some ts when ts >= 0 -> ()
  | _ -> fail "%s:%d: missing ts_ns" path n);
  (match Option.bind (J.member "level" doc) J.to_string_opt with
  | Some l when List.mem l levels -> ()
  | Some l -> fail "%s:%d: unknown level %S" path n l
  | None -> fail "%s:%d: missing level" path n);
  (match Option.bind (J.member "event" doc) J.to_string_opt with
  | Some e when e <> "" -> ()
  | _ -> fail "%s:%d: missing event name" path n);
  (match J.member "fields" doc with
  | Some (J.Obj _) -> ()
  | _ -> fail "%s:%d: missing fields object" path n);
  (match J.member "suppressed" doc with
  | None -> ()
  | Some s -> (
    match J.to_int s with
    | Some k when k > 0 -> ()
    | _ -> fail "%s:%d: suppressed must be a positive count" path n));
  doc

let validate_log path ~expect_event ~expect_rid =
  (* a log stream on stderr may interleave human diagnostics; the
     machine lines are the JSON objects, and every one must validate *)
  let lines =
    String.split_on_char '\n' (read_file path)
    |> List.mapi (fun i l -> (i + 1, String.trim l))
    |> List.filter (fun (_, l) -> String.length l > 0 && l.[0] = '{')
  in
  if lines = [] then fail "%s: no log lines" path;
  let docs = List.map (fun (n, l) -> check_log_line path n l) lines in
  let event_of d = Option.bind (J.member "event" d) J.to_string_opt in
  let rid_of d =
    Option.bind (J.member "fields" d) (fun f ->
        Option.bind (J.member "rid" f) J.to_string_opt)
  in
  (match expect_event with
  | Some ev when not (List.exists (fun d -> event_of d = Some ev) docs) ->
    fail "%s: no %S event in %d lines" path ev (List.length docs)
  | _ -> ());
  (match expect_rid with
  | Some rid when not (List.exists (fun d -> rid_of d = Some rid) docs) ->
    fail "%s: rid %S appears in no line's fields" path rid
  | _ -> ());
  Format.printf "%s: %d valid log/v1 lines@." path (List.length docs)

(* --------------------------- exposition ----------------------------- *)

type sample = { metric : string; le : string option; value : int }

(* "name 3" or "name_bucket{le=\"7\"} 3" *)
let parse_sample path n line =
  match String.index_opt line ' ' with
  | None -> fail "%s:%d: sample without a value: %s" path n line
  | Some sp ->
    let key = String.sub line 0 sp in
    let v = String.sub line (sp + 1) (String.length line - sp - 1) in
    let value =
      match int_of_string_opt v with
      | Some v -> v
      | None -> fail "%s:%d: non-integer sample value %S" path n v
    in
    (match String.index_opt key '{' with
    | None -> { metric = key; le = None; value }
    | Some br ->
      let metric = String.sub key 0 br in
      let label = String.sub key br (String.length key - br) in
      let prefix = "{le=\"" in
      let pl = String.length prefix in
      if
        String.length label > pl + 2
        && String.sub label 0 pl = prefix
        && String.sub label (String.length label - 2) 2 = "\"}"
      then
        { metric; le = Some (String.sub label pl (String.length label - pl - 2)); value }
      else fail "%s:%d: unparseable label %S" path n label)

let strip_suffix s suffix =
  let sl = String.length s and xl = String.length suffix in
  if sl > xl && String.sub s (sl - xl) xl = suffix then
    Some (String.sub s 0 (sl - xl))
  else None

let check_exposition path text =
  let lines = String.split_on_char '\n' text in
  let types = Hashtbl.create 64 in
  let samples = ref [] in
  List.iteri
    (fun i line ->
      let n = i + 1 in
      if line = "" then ()
      else if String.length line > 7 && String.sub line 0 7 = "# TYPE " then begin
        match String.split_on_char ' ' line with
        | [ _; _; name; kind ]
          when List.mem kind [ "counter"; "gauge"; "histogram" ] ->
          Hashtbl.replace types name kind
        | _ -> fail "%s:%d: malformed TYPE header: %s" path n line
      end
      else if line.[0] = '#' then ()
      else samples := parse_sample path n line :: !samples)
    lines;
  let samples = List.rev !samples in
  if Hashtbl.length types = 0 then fail "%s: no TYPE headers" path;
  let base_of s =
    match s.le with
    | Some _ -> (
      match strip_suffix s.metric "_bucket" with
      | Some base -> base
      | None -> fail "%s: labeled sample %s is not a _bucket" path s.metric)
    | None -> (
      match
        (strip_suffix s.metric "_sum", strip_suffix s.metric "_count")
      with
      | Some base, _ when Hashtbl.find_opt types base = Some "histogram" ->
        base
      | _, Some base when Hashtbl.find_opt types base = Some "histogram" ->
        base
      | _ -> s.metric)
  in
  (* every sample belongs to a declared metric, every metric has one *)
  List.iter
    (fun s ->
      if Hashtbl.find_opt types (base_of s) = None then
        fail "%s: sample %s has no TYPE header" path s.metric)
    samples;
  Hashtbl.iter
    (fun name _ ->
      if not (List.exists (fun s -> base_of s = name) samples) then
        fail "%s: metric %s declared but never sampled" path name)
    types;
  (* histogram series: cumulative, monotone, +Inf closes at _count *)
  Hashtbl.iter
    (fun name kind ->
      if kind = "histogram" then begin
        let buckets =
          List.filter (fun s -> s.le <> None && base_of s = name) samples
        in
        let count =
          match
            List.find_opt (fun s -> s.metric = name ^ "_count") samples
          with
          | Some s -> s.value
          | None -> fail "%s: histogram %s has no _count" path name
        in
        if not (List.exists (fun s -> s.metric = name ^ "_sum") samples) then
          fail "%s: histogram %s has no _sum" path name;
        let rec walk prev_le prev_cum = function
          | [] -> fail "%s: histogram %s misses the +Inf bucket" path name
          | [ { le = Some "+Inf"; value; _ } ] ->
            if value <> count then
              fail "%s: %s +Inf bucket %d != count %d" path name value count;
            if value < prev_cum then
              fail "%s: %s bucket series not cumulative" path name
          | { le = Some le; value; _ } :: rest -> (
            match int_of_string_opt le with
            | None -> fail "%s: %s has non-integer le %S" path name le
            | Some le ->
              if le <= prev_le then
                fail "%s: %s le values not increasing" path name;
              if value < prev_cum then
                fail "%s: %s bucket series not cumulative" path name;
              walk le value rest)
          | { le = None; _ } :: _ -> assert false
        in
        walk (-1) 0 buckets
      end)
    types;
  (Hashtbl.length types, List.length samples)

let validate_expo path =
  let metrics, samples = check_exposition path (read_file path) in
  Format.printf "%s: valid exposition (%d metrics, %d samples)@." path
    metrics samples

(* ------------------------ metrics-verb response ---------------------- *)

let validate_response path ~expect_rate =
  let doc =
    match J.parse (read_file path) with
    | Ok d -> d
    | Error e -> fail "%s: not valid JSON: %s" path e
  in
  let get p =
    List.fold_left (fun j k -> Option.bind j (J.member k)) (Some doc) p
  in
  (match Option.bind (get [ "status" ]) J.to_string_opt with
  | Some "ok" -> ()
  | other ->
    fail "%s: status %S, expected ok" path
      (Option.value ~default:"<missing>" other));
  (match Option.bind (get [ "snapshot"; "schema" ]) J.to_string_opt with
  | Some "obs/v1" -> ()
  | _ -> fail "%s: response carries no obs/v1 snapshot" path);
  (match Option.bind (get [ "exposition" ]) J.to_string_opt with
  | Some text -> ignore (check_exposition path text)
  | None -> fail "%s: response carries no exposition" path);
  (match get [ "series" ] with
  | None ->
    if expect_rate then fail "%s: --expect-rate but no series member" path
  | Some series -> (
    (match Option.bind (J.member "schema" series) J.to_string_opt with
    | Some "series/v1" -> ()
    | _ -> fail "%s: series member is not series/v1" path);
    if expect_rate then
      let rate k =
        match
          List.fold_left
            (fun j key -> Option.bind j (J.member key))
            (Some series)
            [ "counters"; "serve.requests"; k ]
        with
        | Some j -> Option.value ~default:0. (J.to_float j)
        | None -> 0.
      in
      if rate "last_per_s" <= 0. && rate "mean_per_s" <= 0. then
        fail "%s: rolling serve.requests rate is zero" path));
  Format.printf "%s: valid metrics response@." path

(* ------------------------------- main ------------------------------- *)

let () =
  let usage () =
    fail
      "usage: validate_telemetry --log FILE [--expect-event EV] [--expect-rid \
       RID] | --expo FILE | --response FILE [--expect-rate]"
  in
  match Array.to_list Sys.argv with
  | _ :: "--log" :: path :: rest ->
    let rec opts ev rid = function
      | [] -> (ev, rid)
      | "--expect-event" :: v :: rest -> opts (Some v) rid rest
      | "--expect-rid" :: v :: rest -> opts ev (Some v) rest
      | _ -> usage ()
    in
    let expect_event, expect_rid = opts None None rest in
    validate_log path ~expect_event ~expect_rid
  | [ _; "--expo"; path ] -> validate_expo path
  | _ :: "--response" :: path :: rest ->
    let expect_rate =
      match rest with
      | [] -> false
      | [ "--expect-rate" ] -> true
      | _ -> usage ()
    in
    validate_response path ~expect_rate
  | _ -> usage ()
