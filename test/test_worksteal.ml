(* Differential proof of the work-stealing scheduler: every parallel
   explorer entry point must produce the same answer as its sequential
   reference on randomized workloads, across job counts that cover an
   odd worker and oversubscription.  Plus direct regression tests for
   the scheduler itself: deterministic forced stealing, prompt
   cancellation after a failure, and re-split accounting. *)

let jobs_sweep = Harness.default_jobs (* 2, 4, 8 *)

(* ----------------------- differential properties -------------------- *)

let prop_explore_differential =
  QCheck.Test.make ~name:"explore: par == seq (200 workloads)" ~count:200
    QCheck.(pair (int_range 4 9) (int_range 0 100_000))
    (fun (n, seed) ->
      let tech, apps = Harness.random_mixed_instance ~n ~seed in
      let seq = Synth.Explore.optimal ~jobs:1 tech apps in
      Harness.sweep_jobs ~jobs:jobs_sweep (fun jobs ->
          let par = Synth.Explore.optimal ~jobs tech apps in
          match (seq, par) with
          | None, None -> true
          | Some s, Some p ->
            let sc = s.Synth.Explore.cost.Synth.Cost.total
            and pc = p.Synth.Explore.cost.Synth.Cost.total in
            sc = pc
            && Synth.Schedule.is_feasible
                 (Synth.Schedule.check tech p.Synth.Explore.binding apps)
            && (Synth.Cost.of_binding tech p.Synth.Explore.binding)
                 .Synth.Cost.total = pc
          | Some _, None | None, Some _ -> false))

let prop_multi_differential =
  QCheck.Test.make ~name:"multi: par == seq (200 workloads)" ~count:200
    QCheck.(triple (int_range 4 7) (int_range 1 2) (int_range 0 100_000))
    (fun (n, n_cpu, seed) ->
      let tech, procs, apps = Harness.random_multi_instance ~n ~n_cpu ~seed in
      let seq = Synth.Multi.optimal ~jobs:1 tech procs apps in
      Harness.sweep_jobs ~jobs:jobs_sweep (fun jobs ->
          Harness.multi_cost (Synth.Multi.optimal ~jobs tech procs apps)
          = Harness.multi_cost seq))

(* Superposition forwards [jobs] to per-application {!Explore.optimal}
   calls.  The guaranteed invariant is the documented one: each
   application's optimal *cost* is job-count independent.  The merged
   binding (and with it the conflict set and superposed total) may
   legitimately differ when an application has several cost-equal
   optima and the parallel search surfaces a different one — so the
   property checks per-application costs plus internal consistency of
   each parallel result, not byte equality of the superposition. *)
let prop_superpose_differential =
  QCheck.Test.make ~name:"superpose: par == seq (200 workloads)" ~count:200
    QCheck.(pair (int_range 4 8) (int_range 0 100_000))
    (fun (n, seed) ->
      let tech, apps = Harness.random_instance ~n ~seed in
      let seq = Synth.Superpose.superpose ~jobs:1 tech apps in
      Harness.sweep_jobs ~jobs:jobs_sweep (fun jobs ->
          let par = Synth.Superpose.superpose ~jobs tech apps in
          match (seq, par) with
          | None, None -> true
          | Some s, Some p ->
            List.for_all2
              (fun (an, (a : Synth.Explore.solution))
                   (bn, (b : Synth.Explore.solution)) ->
                an = bn
                && a.Synth.Explore.cost.Synth.Cost.total
                   = b.Synth.Explore.cost.Synth.Cost.total)
              s.Synth.Superpose.per_app p.Synth.Superpose.per_app
            (* each conflict names a process the merged binding maps
               to hardware (the software copy rides the shared CPU) *)
            && List.for_all
                 (fun c ->
                   Synth.Binding.impl_of c p.Synth.Superpose.merged
                   = Some Synth.Binding.Hw)
                 p.Synth.Superpose.conflicts
          | Some _, None | None, Some _ -> false))

let prop_pareto_differential =
  QCheck.Test.make ~name:"pareto: par == seq (200 workloads)" ~count:200
    QCheck.(pair (int_range 4 6) (int_range 0 100_000))
    (fun (n, seed) ->
      let tech, apps = Harness.random_instance ~n ~seed in
      let objectives pts =
        List.map
          (fun p -> (p.Synth.Pareto.total_cost, p.Synth.Pareto.worst_load))
          pts
      in
      let seq = objectives (Synth.Pareto.frontier ~jobs:1 tech apps) in
      Harness.sweep_jobs ~jobs:jobs_sweep (fun jobs ->
          objectives (Synth.Pareto.frontier ~jobs tech apps) = seq))

(* --------------------- scheduler regression tests ------------------- *)

let steals_total = Obs.Registry.counter "par.steals"

(* Deterministic forced steal: one seed task pushes children and then
   refuses to finish until one of them has run.  The owner is stuck
   inside the seed, the cursor is exhausted, so the only way a child can
   run is a steal by the other worker.  Termination is guaranteed: the
   second worker parks in the steal loop (pending > 0) and its next
   sweep finds the victim deque non-empty. *)
let test_forced_steal () =
  let before = Obs.Metric.value steals_total in
  let total = Harness.force_steals ~jobs:2 ~children:8 () in
  Alcotest.(check int) "all tasks ran" 9 total;
  Alcotest.(check bool) "at least one steal recorded" true
    (Obs.Metric.value steals_total - before >= 1)

(* Prompt cancellation: once a task raises, claimed-but-unrun tasks are
   skipped.  Sequentially this is exact: seeds run in order, seed 3
   raises, seeds 4.. are claimed and cancelled, so exactly 3 tasks
   complete. *)
exception Boom

let test_cancellation_seq () =
  let ran = Atomic.make 0 in
  (match
     Synth.Par.fold ~jobs:1
       ~init:(fun () -> ())
       ~merge:(fun () () -> ())
       ~f:(fun _ctx () i ->
         if i = 3 then raise Boom else Atomic.incr ran)
       (Array.init 100 Fun.id)
   with
  | () -> Alcotest.fail "exception swallowed"
  | exception Boom -> ());
  Alcotest.(check int) "tasks after the failure are cancelled" 3
    (Atomic.get ran)

(* Parallel: tasks block until the failing task has announced itself,
   so only tasks already in flight at failure time can complete — a
   bounded handful, never the whole array. *)
let test_cancellation_par () =
  let n = 200 in
  let announced = Atomic.make false in
  let ran = Atomic.make 0 in
  (match
     Synth.Par.map ~jobs:4
       (fun i ->
         if i = 0 then begin
           Atomic.set announced true;
           raise Boom
         end
         else begin
           while not (Atomic.get announced) do
             Domain.cpu_relax ()
           done;
           Atomic.incr ran
         end)
       (Array.init n Fun.id)
   with
  | _ -> Alcotest.fail "exception swallowed"
  | exception Boom -> ());
  Alcotest.(check bool)
    (Format.sprintf "only in-flight tasks completed (%d)" (Atomic.get ran))
    true
    (Atomic.get ran < 16)

(* Deque overflow: pushes beyond the per-worker capacity are refused
   (the caller runs the task inline) and counted, never silently
   dropped.  jobs=1 keeps it deterministic. *)
let test_push_overflow () =
  let overflows = Obs.Registry.counter "par.deque_overflows" in
  let before = Obs.Metric.value overflows in
  let accepted = ref 0 and refused = ref 0 in
  let ran =
    Synth.Par.fold ~jobs:1
      ~init:(fun () -> 0)
      ~merge:( + )
      ~f:(fun ctx acc -> function
        | `Seed ->
          for _ = 1 to 400 do
            if Synth.Par.push ctx `Child then incr accepted else incr refused
          done;
          acc + 1
        | `Child -> acc + 1)
      [| `Seed |]
  in
  Alcotest.(check bool) "capacity bounded" true (!refused > 0);
  Alcotest.(check int) "accepted pushes all ran" (!accepted + 1) ran;
  Alcotest.(check int) "overflows counted" !refused
    (Obs.Metric.value overflows - before)

(* Every accepted push runs exactly once even under heavy stealing:
   checksum of task payloads is conserved across 8 workers. *)
let test_no_lost_tasks () =
  let rng = Harness.seeded 42 in
  let payload = Array.init 64 (fun _ -> Random.State.int rng 1_000_000) in
  let expected = Array.fold_left ( + ) 0 payload in
  let extra = Atomic.make 0 in
  let sum =
    Synth.Par.fold ~jobs:8
      ~init:(fun () -> 0)
      ~merge:( + )
      ~f:(fun ctx acc (v, depth) ->
        (* re-split: spread value over two children while splitting *)
        if depth < 6 && v mod 2 = 0 && Synth.Par.push ctx (v / 2, depth + 1) then begin
          ignore (Atomic.fetch_and_add extra 1);
          acc + (v - (v / 2))
        end
        else acc + v)
      (Array.map (fun v -> (v, 0)) payload)
  in
  Alcotest.(check int) "checksum conserved across steals" expected sum;
  Alcotest.(check bool) "re-splitting happened" true (Atomic.get extra > 0)

let suite =
  ( "worksteal",
    [
      QCheck_alcotest.to_alcotest prop_explore_differential;
      QCheck_alcotest.to_alcotest prop_multi_differential;
      QCheck_alcotest.to_alcotest prop_superpose_differential;
      QCheck_alcotest.to_alcotest prop_pareto_differential;
      Alcotest.test_case "forced steal" `Quick test_forced_steal;
      Alcotest.test_case "cancellation, sequential" `Quick
        test_cancellation_seq;
      Alcotest.test_case "cancellation, parallel" `Quick test_cancellation_par;
      Alcotest.test_case "push overflow is counted" `Quick test_push_overflow;
      Alcotest.test_case "no lost tasks under stealing" `Quick
        test_no_lost_tasks;
    ] )
