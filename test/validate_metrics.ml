(* Validates a --metrics snapshot written by the CLI against the obs/v1
   shape: schema tag, counters/gauges/histograms objects, and nonzero
   engine counters from the simulated run.  Driven by the dune runtest
   rule in test/dune, which first runs `main.exe simulate --metrics`. *)

module J = Obs.Json

let fail fmt = Format.kasprintf (fun m -> prerr_endline m; exit 1) fmt

let () =
  let path =
    match Sys.argv with
    | [| _; p |] -> p
    | _ -> fail "usage: validate_metrics SNAPSHOT.json"
  in
  let ic = open_in_bin path in
  let contents = really_input_string ic (in_channel_length ic) in
  close_in ic;
  let doc =
    match J.parse contents with
    | Ok d -> d
    | Error e -> fail "%s: not valid JSON: %s" path e
  in
  (match Option.bind (J.member "schema" doc) J.to_string_opt with
  | Some "obs/v1" -> ()
  | Some other -> fail "%s: schema %S, expected obs/v1" path other
  | None -> fail "%s: missing schema tag" path);
  let section name =
    match J.member name doc with
    | Some (J.Obj fields) -> fields
    | Some _ -> fail "%s: %s is not an object" path name
    | None -> fail "%s: missing %s section" path name
  in
  let counters = section "counters" in
  ignore (section "gauges");
  let histograms = section "histograms" in
  (match J.member "spans" doc with
  | Some (J.List _) -> ()
  | _ -> fail "%s: missing spans list" path);
  let counter name =
    match List.assoc_opt name counters with
    | Some v -> Option.value ~default:(-1) (J.to_int v)
    | None -> fail "%s: counter %s not in snapshot" path name
  in
  let nonzero name =
    let v = counter name in
    if v <= 0 then fail "%s: counter %s is %d, expected > 0" path name v
  in
  nonzero "sim.runs";
  nonzero "sim.firings";
  nonzero "sim.tokens_consumed";
  nonzero "sim.tokens_produced";
  (* histograms must carry the per-process latency distributions and a
     consistent count/sum *)
  let latency_histograms =
    List.filter
      (fun (name, _) ->
        String.length name > 12 && String.sub name 0 12 = "sim.latency.")
      histograms
  in
  if latency_histograms = [] then
    fail "%s: no sim.latency.<process> histograms" path;
  List.iter
    (fun (name, h) ->
      let get k = Option.bind (J.member k h) J.to_int in
      match get "count", get "sum" with
      | Some c, Some s when c >= 0 && s >= 0 -> ()
      | _ -> fail "%s: histogram %s lacks count/sum" path name)
    histograms;
  Format.printf "%s: valid obs/v1 snapshot (%d counters, %d histograms)@."
    path (List.length counters) (List.length histograms)
