(* The timeline layer: the Sim.Trace -> trace-event converter keeps its
   structural invariants over randomized runs (spans on a lane never
   overlap, every flow head follows its tail, begin/end nest), fault
   instants land on the affected process's lane, t_conf spans carry the
   configuration switch, the deadline-headroom report flags violations,
   and the explorer's per-domain buffers survive a real pool. *)

module T = Obs.Trace_event
module J = Obs.Json
module VS = Video.System

let built = VS.build VS.default_params

let run_video ?faults ~frames ~switches () =
  let stimuli =
    Video.Scenario.switching_demo ~frames ~period:5 ~switches ()
  in
  Sim.Engine.run
    ~configurations:built.VS.configurations
    ~stimuli ?faults built.VS.model

let timeline_of ?(pid = 0) result =
  let b = T.create () in
  Sim.Timeline.add ~pid ~name:"test run" b built.VS.model result;
  b

(* lane tid of a video process, mirroring the converter's layout *)
let tid_of pid_str =
  let rec find i = function
    | [] -> Alcotest.failf "process %s not in model" pid_str
    | p :: rest ->
      if Spi.Ids.Process_id.to_string (Spi.Process.id p) = pid_str then i + 1
      else find (i + 1) rest
  in
  find 0 (Spi.Model.processes built.VS.model)

(* ------------------------ structural checks ------------------------ *)

type lane_span = { s : float; e : float; label : string }

let check_wellformed b =
  let spans : (int * int, lane_span list ref) Hashtbl.t = Hashtbl.create 16 in
  let lane pid tid =
    match Hashtbl.find_opt spans (pid, tid) with
    | Some l -> l
    | None ->
      let l = ref [] in
      Hashtbl.replace spans (pid, tid) l;
      l
  in
  let tails = Hashtbl.create 64 in
  let depth = Hashtbl.create 16 in
  List.iter
    (fun ev ->
      match ev with
      | T.Complete { name; pid; tid; ts; dur; _ } ->
        if dur < 0. then Alcotest.failf "span %s has negative dur" name;
        let l = lane pid tid in
        l := { s = ts; e = ts +. dur; label = name } :: !l
      | T.Begin { pid; tid; _ } ->
        Hashtbl.replace depth (pid, tid)
          (1 + Option.value ~default:0 (Hashtbl.find_opt depth (pid, tid)))
      | T.End { pid; tid; _ } ->
        let d = Option.value ~default:0 (Hashtbl.find_opt depth (pid, tid)) in
        if d <= 0 then Alcotest.fail "End without matching Begin";
        Hashtbl.replace depth (pid, tid) (d - 1)
      | T.Flow_start { id; _ } -> Hashtbl.replace tails id ()
      | T.Flow_end { id; name; _ } ->
        if not (Hashtbl.mem tails id) then
          Alcotest.failf "flow head %s (id %d) has no preceding tail" name id
      | T.Instant _ | T.Counter _ -> ())
    (T.events b);
  Hashtbl.iter
    (fun (pid, tid) l ->
      let sorted =
        List.sort
          (fun a b ->
            match Float.compare a.s b.s with
            | 0 -> Float.compare a.e b.e
            | c -> c)
          !l
      in
      ignore
        (List.fold_left
           (fun prev sp ->
             (match prev with
             | Some (pe, plabel) when sp.s +. 1e-6 < pe ->
               Alcotest.failf
                 "lane pid=%d tid=%d: %S (at %g) overlaps %S (ending %g)" pid
                 tid sp.label sp.s plabel pe
             | _ -> ());
             Some (sp.e, sp.label))
           None sorted))
    spans;
  Hashtbl.iter
    (fun _ d -> if d <> 0 then Alcotest.fail "unbalanced Begin/End")
    depth

let test_wellformed_random =
  QCheck.Test.make ~count:40
    ~name:"video timelines are well-formed (faulty and clean)"
    QCheck.(triple (int_range 1 10_000) (int_range 5 25) bool)
    (fun (seed, frames, inject) ->
      let faults =
        if inject then
          Some
            (Video.Scenario.fault_plan ~drop_probability:0.05
               ~transient_probability:0.1 ~seed built)
        else None
      in
      let result =
        run_video ?faults ~frames ~switches:[ (17, "fB"); (40, "fA") ] ()
      in
      check_wellformed (timeline_of result);
      true)

(* ------------------------------ lanes ------------------------------ *)

let test_fault_instants_on_affected_lane () =
  (* transients scripted on P1 only: every transient instant must land
     on P1's lane, never on the environment or another process *)
  let p1 = VS.stage_process 1 in
  let faults =
    Sim.Fault.plan
      ~processes:
        [
          Sim.Fault.on_process
            ~transient:(Sim.Fault.Probability 0.4)
            ~max_retries:5 ~backoff:2 p1;
        ]
      ~seed:11 ()
  in
  let result = run_video ~faults ~frames:20 ~switches:[] () in
  let transients =
    List.filter
      (fun (_, f) ->
        match f with Sim.Fault.Transient_failure _ -> true | _ -> false)
      (Sim.Trace.faults result.Sim.Engine.trace)
  in
  if transients = [] then
    Alcotest.fail "seed 11 injected no transient (pick another seed)";
  let b = timeline_of result in
  let expected = tid_of "P1" in
  let seen = ref 0 in
  List.iter
    (fun ev ->
      match ev with
      | T.Instant { name = "transient_failure"; tid; _ } ->
        incr seen;
        Alcotest.(check int) "transient instant on P1's lane" expected tid
      | _ -> ())
    (T.events b);
  Alcotest.(check int)
    "every trace transient became an instant" (List.length transients) !seen

let test_tconf_span_args () =
  (* the switching demo forces reconfigurations on both stages *)
  let result = run_video ~frames:20 ~switches:[ (22, "fB") ] () in
  if Sim.Trace.reconfigurations result.Sim.Engine.trace = [] then
    Alcotest.fail "switching demo did not reconfigure";
  let b = timeline_of result in
  let found = ref 0 in
  List.iter
    (fun ev ->
      match ev with
      | T.Complete { name = "t_conf"; cat; dur; args; _ } ->
        incr found;
        Alcotest.(check string) "category" "reconf" cat;
        (match List.assoc_opt "t_conf" args with
        | Some (J.Int l) ->
          Alcotest.(check (float 0.001))
            "span covers t_conf" (float_of_int l) dur
        | _ -> Alcotest.fail "t_conf span lacks t_conf arg");
        (match List.assoc_opt "target" args with
        | Some (J.String _) -> ()
        | _ -> Alcotest.fail "t_conf span lacks target configuration");
        if not (List.mem_assoc "source" args) then
          Alcotest.fail "t_conf span lacks source configuration"
      | _ -> ())
    (T.events b);
  if !found = 0 then Alcotest.fail "no t_conf span in timeline"

(* ------------------------- deadline headroom ------------------------ *)

let test_headroom_flags_violations () =
  Obs.Registry.reset ();
  (* reconfiguration adds t_conf (4 or 6) to a stage execution whose
     declared worst-case latency is 3: a guaranteed deadline violation,
     even before faults *)
  let faults =
    Video.Scenario.fault_plan ~drop_probability:0.02
      ~transient_probability:0.1 ~seed:3 built
  in
  let result = run_video ~faults ~frames:25 ~switches:[ (22, "fB") ] () in
  let rows = Video.Checker.deadline_headroom built.VS.model [ result ] in
  Alcotest.(check int)
    "one row per process"
    (List.length (Spi.Model.processes built.VS.model))
    (List.length rows);
  let violated =
    List.filter (fun r -> r.Video.Checker.hr_violations <> []) rows
  in
  if violated = [] then Alcotest.fail "no process over its deadline";
  List.iter
    (fun r ->
      List.iter
        (fun (_, lat) ->
          if lat <= r.Video.Checker.hr_deadline then
            Alcotest.failf "violation latency %d within deadline %d" lat
              r.Video.Checker.hr_deadline)
        r.Video.Checker.hr_violations)
    rows;
  (* quantiles come from the registry histograms the run just fed *)
  List.iter
    (fun r ->
      if r.Video.Checker.hr_count > 0 && r.Video.Checker.hr_p50 = None then
        Alcotest.failf "process %s has observations but no p50"
          r.Video.Checker.hr_process)
    rows

(* -------------------------- explorer lanes -------------------------- *)

let test_domain_trace_pool () =
  Synth.Domain_trace.enable ();
  let tasks = Array.init 8 (fun i -> i) in
  let _ =
    Synth.Par.map ~jobs:2
      (fun i ->
        Synth.Domain_trace.record_improvement ~cost:(100 - i);
        i * i)
      tasks
  in
  let b = T.create () in
  Synth.Domain_trace.append_timeline ~pid:9 b;
  Synth.Domain_trace.disable ();
  let task_indices = ref [] in
  List.iter
    (fun ev ->
      match ev with
      | T.Complete { cat = "task"; args; _ } -> (
        match List.assoc_opt "task" args with
        | Some (J.Int i) -> task_indices := i :: !task_indices
        | _ -> Alcotest.fail "task span lacks its index")
      | _ -> ())
    (T.events b);
  Alcotest.(check (list int))
    "every task appears exactly once" (List.init 8 Fun.id)
    (List.sort compare !task_indices);
  let incumbents =
    List.filter
      (fun ev ->
        match ev with T.Instant { name = "incumbent"; _ } -> true | _ -> false)
      (T.events b)
  in
  Alcotest.(check int) "one incumbent instant per task" 8
    (List.length incumbents);
  check_wellformed b

(* Steal instants are recorded into the stealing domain's buffer, so on
   the timeline each one must share its lane with the span of the very
   task it stole — the thief runs the stolen task right after recording
   the steal.  [Harness.force_steals] makes at least one steal certain. *)
let test_steal_instants_on_stealing_lane () =
  Synth.Domain_trace.enable ();
  ignore (Harness.force_steals ~jobs:2 ~children:6 () : int);
  let b = T.create () in
  Synth.Domain_trace.append_timeline ~pid:8 b;
  Synth.Domain_trace.disable ();
  let steals = ref [] in
  let task_lanes = Hashtbl.create 16 in
  List.iter
    (fun ev ->
      match ev with
      | T.Instant { name = "steal"; tid; args; _ } ->
        let arg k =
          match List.assoc_opt k args with
          | Some (J.Int v) -> v
          | _ -> Alcotest.failf "steal instant lacks %s arg" k
        in
        steals := (tid, arg "victim", arg "worker", arg "task") :: !steals
      | T.Complete { cat = "task"; tid; args; _ } -> (
        match List.assoc_opt "task" args with
        | Some (J.Int i) -> Hashtbl.replace task_lanes i tid
        | _ -> Alcotest.fail "task span lacks its index")
      | _ -> ())
    (T.events b);
  Alcotest.(check bool) "at least one steal instant" true (!steals <> []);
  List.iter
    (fun (tid, victim, worker, task) ->
      Alcotest.(check bool) "thief and victim differ" true (victim <> worker);
      match Hashtbl.find_opt task_lanes task with
      | None -> Alcotest.failf "stolen task %d has no span" task
      | Some lane ->
        Alcotest.(check int)
          (Printf.sprintf "steal of task %d is on the stealing domain's lane"
             task)
          lane tid)
    !steals

let test_domain_trace_drops () =
  Synth.Domain_trace.enable ~capacity:4 ();
  for i = 1 to 10 do
    Synth.Domain_trace.record_improvement ~cost:i
  done;
  Alcotest.(check int) "overflow counted" 6 (Synth.Domain_trace.dropped ());
  Synth.Domain_trace.reset ();
  Alcotest.(check int) "reset clears drops" 0 (Synth.Domain_trace.dropped ());
  Synth.Domain_trace.disable ()

(* ------------------------- span ring capacity ----------------------- *)

let test_span_ring_capacity_and_drops () =
  let original = Obs.Registry.span_capacity () in
  Obs.Registry.set_span_capacity 8;
  Obs.Registry.reset ();
  for i = 1 to 20 do
    Obs.Registry.record_span ~name:"t.ring" ~start_ns:i ~dur_ns:1
  done;
  let doc = Obs.Registry.snapshot () in
  let field k =
    match Option.bind (J.member k doc) J.to_int with
    | Some v -> v
    | None -> Alcotest.failf "snapshot lacks %s" k
  in
  Alcotest.(check int) "span_capacity" 8 (field "span_capacity");
  Alcotest.(check int) "spans_dropped" 12 (field "spans_dropped");
  Alcotest.(check int) "retained" 8 (List.length (Obs.Registry.spans ()));
  Obs.Registry.set_span_capacity original;
  Obs.Registry.reset ()

let suite =
  ( "timeline",
    [
      QCheck_alcotest.to_alcotest test_wellformed_random;
      Alcotest.test_case "fault instants land on the affected lane" `Quick
        test_fault_instants_on_affected_lane;
      Alcotest.test_case "t_conf spans carry the configuration switch" `Quick
        test_tconf_span_args;
      Alcotest.test_case "deadline headroom flags violations" `Quick
        test_headroom_flags_violations;
      Alcotest.test_case "domain pool traces every task once" `Quick
        test_domain_trace_pool;
      Alcotest.test_case "steal instants land on the stealing lane" `Quick
        test_steal_instants_on_stealing_lane;
      Alcotest.test_case "per-domain buffers count overflow" `Quick
        test_domain_trace_drops;
      Alcotest.test_case "span ring capacity is configurable" `Quick
        test_span_ring_capacity_and_drops;
    ] )
