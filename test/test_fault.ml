(* Tests for deterministic fault injection, retry budgets and
   watchdog-forced fallback degradation. *)

module I = Spi.Ids

let trace_string trace = Format.asprintf "%a" Sim.Trace.pp trace

(* ---------------------- determinism of campaigns --------------------- *)

let video_run seed =
  let built = Video.System.build Video.System.default_params in
  let stimuli =
    Video.Scenario.switching_demo ~frames:40 ~period:5
      ~switches:[ (52, "fB"); (120, "fA") ]
      ()
  in
  let faults = Video.Scenario.fault_plan ~seed built in
  Sim.Engine.run
    ~configurations:built.Video.System.configurations
    ~stimuli ~faults built.Video.System.model

let test_same_seed_same_trace () =
  let r1 = video_run 11 and r2 = video_run 11 in
  Alcotest.(check string)
    "identical traces"
    (trace_string r1.Sim.Engine.trace)
    (trace_string r2.Sim.Engine.trace);
  Alcotest.(check int) "identical end times" r1.Sim.Engine.end_time
    r2.Sim.Engine.end_time;
  (* the campaign must actually exercise the fault layer *)
  let built = Video.System.build Video.System.default_params in
  let stats = Sim.Stats.of_result built.Video.System.model r1 in
  Alcotest.(check bool) "faults observed" true
    (Sim.Stats.total_faults stats.Sim.Stats.faults > 0)

let test_different_seed_different_trace () =
  let r1 = video_run 11 and r2 = video_run 12 in
  Alcotest.(check bool) "seeds distinguish runs" false
    (String.equal
       (trace_string r1.Sim.Engine.trace)
       (trace_string r2.Sim.Engine.trace))

(* -------------------- crash and fallback fallback -------------------- *)

(* One process with two tag-selected modes, one per configuration:
   [c1 = {m1}] (t_conf 0) and [c2 = {m2}] (t_conf 4). *)
let two_config_fixture () =
  let pid = I.Process_id.of_string "p" in
  let cin = I.Channel_id.of_string "in" in
  let mk_mode name =
    Spi.Mode.make ~latency:(Interval.point 1)
      ~consumes:[ (cin, Interval.point 1) ]
      ~produces:[]
      (I.Mode_id.of_string name)
  in
  let tag name = Spi.Tag.make name in
  let rule name t mode =
    Spi.Activation.rule (I.Rule_id.of_string name)
      ~guard:Spi.Predicate.(conj [ num_at_least cin 1; has_tag cin (tag t) ])
      ~mode:(I.Mode_id.of_string mode)
  in
  let p =
    Spi.Process.make
      ~activation:(Spi.Activation.make [ rule "ra" "a" "m1"; rule "rb" "b" "m2" ])
      ~modes:[ mk_mode "m1"; mk_mode "m2" ]
      pid
  in
  let model =
    Spi.Model.build_exn ~processes:[ p ] ~channels:[ Spi.Chan.queue cin ]
  in
  let confs =
    Variants.Configuration.make ~process:pid
      [
        Variants.Configuration.entry ~reconf_latency:0 "c1"
          ~modes:[ I.Mode_id.of_string "m1" ];
        Variants.Configuration.entry ~reconf_latency:4 "c2"
          ~modes:[ I.Mode_id.of_string "m2" ];
      ]
  in
  let stim at t =
    {
      Sim.Engine.at;
      channel = cin;
      token = Spi.Token.make ~tags:(Spi.Tag.Set.singleton (tag t)) ();
    }
  in
  (pid, model, confs, stim)

let test_crash_triggers_one_fallback () =
  let pid, model, confs, stim = two_config_fixture () in
  let degrade =
    Sim.Fault.degradation ~failure_threshold:1
      ~fallback:(Sim.Fault.fallback_of_configurations [ confs ])
      ()
  in
  let faults =
    Sim.Fault.plan
      ~processes:[ Sim.Fault.on_process ~crash_at:5 pid ]
      ~degrade ~seed:1 ()
  in
  (* the "a" token commits c1 before the crash; the "b" token checks that
     the revived process runs in the fallback configuration *)
  let result =
    Sim.Engine.run ~configurations:[ confs ] ~faults
      ~stimuli:[ stim 0 "a"; stim 10 "b" ]
      model
  in
  let degradations = Sim.Trace.degradations result.Sim.Engine.trace in
  Alcotest.(check int) "exactly one fallback reconfiguration" 1
    (List.length degradations);
  (match degradations with
  | [ (_, dpid, from_, to_, latency) ] ->
    Alcotest.(check bool) "degraded process" true (I.Process_id.equal dpid pid);
    Alcotest.(check (option string))
      "from the active configuration" (Some "c1")
      (Option.map I.Config_id.to_string from_);
    Alcotest.(check string) "to the fallback" "c2" (I.Config_id.to_string to_);
    Alcotest.(check int) "fallback t_conf" 4 latency
  | _ -> Alcotest.fail "expected one degradation");
  (* the aborted configuration switch pays t_conf: 0 for the initial
     commit of c1, plus 4 for the forced switch to c2 *)
  Alcotest.(check int) "t_conf accounted" 4
    result.Sim.Engine.reconfiguration_time;
  (* the process is revived in the fallback and serves the second token *)
  Alcotest.(check int) "both tokens served" 2 result.Sim.Engine.firings;
  let stats = Sim.Stats.of_result model result in
  Alcotest.(check int) "one crash" 1 stats.Sim.Stats.faults.Sim.Stats.crashes;
  Alcotest.(check int) "one degradation" 1
    stats.Sim.Stats.faults.Sim.Stats.degradations;
  match Sim.Stats.process pid stats with
  | Some ps -> Alcotest.(check bool) "marked degraded" true ps.Sim.Stats.degraded
  | None -> Alcotest.fail "missing process stats"

let test_crash_without_watchdog_stays_down () =
  let pid, model, confs, stim = two_config_fixture () in
  let faults =
    Sim.Fault.plan ~processes:[ Sim.Fault.on_process ~crash_at:5 pid ] ~seed:1 ()
  in
  let result =
    Sim.Engine.run ~configurations:[ confs ] ~faults
      ~stimuli:[ stim 0 "a"; stim 10 "b" ]
      model
  in
  Alcotest.(check int) "no degradation" 0
    (List.length (Sim.Trace.degradations result.Sim.Engine.trace));
  Alcotest.(check int) "only the pre-crash firing" 1 result.Sim.Engine.firings

(* --------------------------- retry budgets --------------------------- *)

let sink_fixture () =
  let pid = I.Process_id.of_string "sink" in
  let cin = I.Channel_id.of_string "in" in
  let p =
    Spi.Process.simple ~latency:(Interval.point 1)
      ~consumes:[ (cin, Interval.point 1) ]
      ~produces:[] pid
  in
  let model =
    Spi.Model.build_exn ~processes:[ p ] ~channels:[ Spi.Chan.queue cin ]
  in
  (pid, cin, model)

let transient_events trace =
  List.filter_map
    (fun (_, e) ->
      match e with
      | Sim.Fault.Transient_failure { retry; backoff; _ } ->
        Some (retry, backoff)
      | _ -> None)
    (Sim.Trace.faults trace)

let exhausted_count trace =
  List.length
    (List.filter
       (fun (_, e) ->
         match e with Sim.Fault.Retries_exhausted _ -> true | _ -> false)
       (Sim.Trace.faults trace))

let test_retry_budget_exhausted () =
  let pid, cin, model = sink_fixture () in
  let faults =
    Sim.Fault.plan
      ~processes:
        [
          Sim.Fault.on_process
            ~transient:(Sim.Fault.Windows [ (0, 1000) ])
            ~max_retries:2 ~backoff:3 pid;
        ]
      ~seed:1 ()
  in
  let result =
    Sim.Engine.run ~faults
      ~stimuli:[ { Sim.Engine.at = 0; channel = cin; token = Spi.Token.plain } ]
      model
  in
  let trace = result.Sim.Engine.trace in
  Alcotest.(check (list (pair int int)))
    "two retries, each backing off 3"
    [ (1, 3); (2, 3) ]
    (transient_events trace);
  Alcotest.(check int) "budget exhausted once" 1 (exhausted_count trace);
  Alcotest.(check int) "never fired" 0 result.Sim.Engine.firings;
  let stats = Sim.Stats.of_result model result in
  Alcotest.(check int) "transient failures in stats" 2
    stats.Sim.Stats.faults.Sim.Stats.transient_failures;
  Alcotest.(check int) "exhaustion in stats" 1
    stats.Sim.Stats.faults.Sim.Stats.retries_exhausted;
  (match Sim.Stats.process pid stats with
  | Some ps -> Alcotest.(check int) "per-process retries" 2 ps.Sim.Stats.retries
  | None -> Alcotest.fail "missing process stats");
  (* the failed attempts never consumed the token *)
  match Sim.Stats.channel cin stats with
  | Some cs ->
    Alcotest.(check int) "token still queued" 1 cs.Sim.Stats.final_occupancy
  | None -> Alcotest.fail "missing channel stats"

let test_retry_recovers_inside_budget () =
  let pid, cin, model = sink_fixture () in
  let faults =
    Sim.Fault.plan
      ~processes:
        [
          (* the fault clears at t = 5: attempts at 0 and 3 fail, the one
             at 6 proceeds with one retry still in the budget *)
          Sim.Fault.on_process
            ~transient:(Sim.Fault.Windows [ (0, 5) ])
            ~max_retries:3 ~backoff:3 pid;
        ]
      ~seed:1 ()
  in
  let result =
    Sim.Engine.run ~faults
      ~stimuli:[ { Sim.Engine.at = 0; channel = cin; token = Spi.Token.plain } ]
      model
  in
  let trace = result.Sim.Engine.trace in
  Alcotest.(check (list (pair int int)))
    "two retries before recovery"
    [ (1, 3); (2, 3) ]
    (transient_events trace);
  Alcotest.(check int) "no exhaustion" 0 (exhausted_count trace);
  Alcotest.(check int) "fired after backing off" 1 result.Sim.Engine.firings;
  Alcotest.(check int) "completed at 7" 7 result.Sim.Engine.end_time

(* -------------------------- token windows ---------------------------- *)

let test_window_drop_is_deterministic () =
  let _, cin, model = sink_fixture () in
  let faults =
    Sim.Fault.plan
      ~channels:[ Sim.Fault.on_channel cin Sim.Fault.Drop (Sim.Fault.Windows [ (0, 10) ]) ]
      ~seed:1 ()
  in
  let stim at = { Sim.Engine.at; channel = cin; token = Spi.Token.plain } in
  let result =
    Sim.Engine.run ~faults ~stimuli:[ stim 5; stim 15 ] model
  in
  let dropped =
    List.filter
      (fun (_, e) ->
        match e with Sim.Fault.Token_dropped _ -> true | _ -> false)
      (Sim.Trace.faults result.Sim.Engine.trace)
  in
  Alcotest.(check int) "token inside the window is lost" 1 (List.length dropped);
  Alcotest.(check int) "token outside the window is served" 1
    result.Sim.Engine.firings

let suite =
  ( "fault",
    [
      Alcotest.test_case "same seed, same trace" `Quick test_same_seed_same_trace;
      Alcotest.test_case "different seed, different trace" `Quick
        test_different_seed_different_trace;
      Alcotest.test_case "crash triggers one fallback" `Quick
        test_crash_triggers_one_fallback;
      Alcotest.test_case "crash without watchdog stays down" `Quick
        test_crash_without_watchdog_stays_down;
      Alcotest.test_case "retry budget exhausted" `Quick
        test_retry_budget_exhausted;
      Alcotest.test_case "retry recovers inside budget" `Quick
        test_retry_recovers_inside_budget;
      Alcotest.test_case "window drop deterministic" `Quick
        test_window_drop_is_deterministic;
    ] )
