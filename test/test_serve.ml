(* The serve/v1 protocol and the request handler: parsing, idempotency,
   warm-start over the exploration store, and deadline degradation. *)

module J = Obs.Json
module P = Serve.Protocol
module F2 = Paper.Figure2
module V = Variants

(* A five-process pipeline whose loads force a mixed hw/sw optimum
   under the default capacity (sum of sw loads 165 > 100). *)
let model_source =
  {|system t {
  channel A queue
  channel B queue
  channel C queue
  channel D queue
  channel E queue
  process p1 { mode m { latency 1 consume A 1 produce B 1 } }
  process p2 { mode m { latency 1 consume B 1 produce C 1 } }
  process p3 { mode m { latency 1 consume C 1 produce D 1 } }
  process p4 { mode m { latency 1 consume D 1 produce E 1 } }
  process p5 { mode m { latency 1 consume E 1 } }
}
|}

let tech_source =
  {|tech t {
  processor 12
  impl p1 sw 25 hw 30
  impl p2 sw 10 hw 18
  impl p3 sw 55 hw 22
  impl p4 sw 40 hw 20
  impl p5 sw 35 hw 15
}
|}

let roundtrip r =
  match P.request_of_json (P.request_to_json r) with
  | Ok r' -> r'
  | Error e -> Alcotest.failf "roundtrip failed: %s" e

(* ---------------------------- protocol ---------------------------- *)

let test_protocol_roundtrip () =
  let requests =
    [
      { P.id = None; deadline_ms = None; jobs = None; trace = false;
        op = P.Ping };
      { P.id = Some "r1"; deadline_ms = Some 250; jobs = Some 4;
        trace = false; op = P.Stats };
      { P.id = None; deadline_ms = None; jobs = None; trace = false;
        op = P.Shutdown };
      { P.id = None; deadline_ms = None; jobs = None; trace = false;
        op = P.Metrics };
      {
        P.id = Some "r2";
        deadline_ms = None;
        jobs = None;
        trace = true;
        op = P.Synthesize { model = "m"; tech = "t"; capacity = Some 60 };
      };
      {
        P.id = None;
        deadline_ms = Some 1;
        jobs = None;
        trace = false;
        op = P.Pareto { model = "m"; tech = "t"; capacity = None };
      };
      {
        P.id = None;
        deadline_ms = None;
        jobs = None;
        trace = false;
        op =
          P.Simulate
            { model = "m"; until = Some 40; compiled = true; family = false };
      };
      {
        P.id = None;
        deadline_ms = None;
        jobs = None;
        trace = false;
        op =
          P.Simulate
            { model = "m"; until = None; compiled = false; family = true };
      };
    ]
  in
  List.iter (fun r -> if roundtrip r <> r then Alcotest.fail "mismatch") requests;
  let batch =
    { P.id = Some "b"; deadline_ms = None; jobs = None; trace = false;
      op = P.Batch requests }
  in
  if roundtrip batch <> batch then Alcotest.fail "batch mismatch"

let test_protocol_rejects () =
  let reject line why =
    match P.parse_request line with
    | Ok _ -> Alcotest.failf "accepted %s" why
    | Error _ -> ()
  in
  reject "not json" "garbage";
  reject {|{"schema":"serve/v2","op":"ping"}|} "wrong schema";
  reject {|{"op":"frobnicate"}|} "unknown op";
  reject {|{"op":"synthesize"}|} "synthesize without model/tech";
  reject
    {|{"op":"batch","requests":[{"op":"batch","requests":[]}]}|}
    "nested batch"

let test_status_of_response () =
  Alcotest.(check string) "ok" "ok" (P.status_of_response (P.ok [ ]));
  Alcotest.(check string) "error" "error" (P.status_of_response (P.error "x"));
  Alcotest.(check string) "overloaded" "overloaded"
    (P.status_of_response
       (P.overloaded ~queue_depth:3 ~queue_limit:3 ~retry_after_ms:200 ()));
  Alcotest.(check string) "invalid" "invalid"
    (P.status_of_response (J.Int 3))

let test_overloaded_shape () =
  let r =
    P.overloaded ~id:"r9" ~queue_depth:64 ~queue_limit:64 ~retry_after_ms:3250
      ()
  in
  let get k = Option.bind (J.member k r) J.to_int in
  Alcotest.(check (option int)) "depth" (Some 64) (get "queue_depth");
  Alcotest.(check (option int)) "limit" (Some 64) (get "queue_limit");
  Alcotest.(check (option int)) "retry hint" (Some 3250) (get "retry_after_ms");
  Alcotest.(check (option string)) "id echoed" (Some "r9")
    (Option.bind (J.member "id" r) J.to_string_opt)

(* ---------------------------- handler ----------------------------- *)

let tmp_store =
  let counter = ref 0 in
  fun () ->
    incr counter;
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "spi-serve-test-%d-%d.journal" (Unix.getpid ()) !counter)

let handle ?handler request =
  let t =
    match handler with Some t -> t | None -> Serve.Handler.create ~jobs:1 ()
  in
  Serve.Handler.handle t ~admitted_ns:(Obs.Clock.now_ns ()) ~queue_depth:0
    request

let plain op =
  { P.id = None; deadline_ms = None; jobs = None; trace = false; op }

let test_handler_ping () =
  let r = handle (plain P.Ping) in
  Alcotest.(check string) "ok" "ok" (P.status_of_response r)

let test_handler_bad_model () =
  let r =
    handle
      (plain (P.Synthesize { model = "not spi"; tech = tech_source; capacity = None }))
  in
  Alcotest.(check string) "error" "error" (P.status_of_response r)

let test_handler_idempotency () =
  let t = Serve.Handler.create ~jobs:1 () in
  let request = { (plain P.Ping) with P.id = Some "same-key" } in
  let first = handle ~handler:t request in
  let second = handle ~handler:t request in
  Alcotest.(check bool) "first not cached" true
    (J.member "cached" first = None);
  Alcotest.(check (option bool)) "second replayed" (Some true)
    (Option.bind (J.member "cached" second) J.to_bool)

let cost_of response =
  match J.member "cost" response with
  | Some c -> J.to_string c
  | None -> Alcotest.failf "no cost in %s" (J.to_string response)

let test_handler_warm_equals_cold () =
  let path = tmp_store () in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      let synth =
        plain
          (P.Synthesize
             { model = model_source; tech = tech_source; capacity = None })
      in
      (* cold: no store at all *)
      let cold = handle (plain synth.P.op) in
      if P.status_of_response cold <> "ok" then
        Alcotest.failf "cold failed: %s" (J.to_string cold);
      (* populate the store, then reopen it as a fresh daemon would *)
      let store, _ = Store.Keyed.open_store ~fsync:false path in
      let t = Serve.Handler.create ~store ~jobs:1 () in
      let first = handle ~handler:t synth in
      Alcotest.(check (option bool)) "first run is cold" (Some false)
        (Option.bind (J.member "warm" first) J.to_bool);
      Store.Keyed.close store;
      let store, tail = Store.Keyed.open_store ~fsync:false path in
      Alcotest.(check bool) "clean reopen" true (tail = None);
      let t = Serve.Handler.create ~store ~jobs:1 () in
      let warm = handle ~handler:t synth in
      Store.Keyed.close store;
      Alcotest.(check (option bool)) "second run is warm" (Some true)
        (Option.bind (J.member "warm" warm) J.to_bool);
      (* the acceptance differential: warm costs byte-identical to cold *)
      Alcotest.(check string) "warm cost == cold cost" (cost_of cold)
        (cost_of warm);
      Alcotest.(check string) "store-first cost == cold cost" (cost_of cold)
        (cost_of first))

let test_handler_batch () =
  let t = Serve.Handler.create ~jobs:2 () in
  let batch =
    plain
      (P.Batch
         [
           plain P.Ping;
           plain
             (P.Synthesize
                { model = model_source; tech = tech_source; capacity = None });
           plain
             (P.Simulate
                {
                  model = model_source;
                  until = Some 30;
                  compiled = false;
                  family = false;
                });
         ])
  in
  let r = handle ~handler:t batch in
  Alcotest.(check string) "batch ok" "ok" (P.status_of_response r);
  match J.member "results" r with
  | Some (J.List items) ->
    Alcotest.(check int) "three results" 3 (List.length items);
    List.iter
      (fun item ->
        Alcotest.(check string) "item ok" "ok" (P.status_of_response item))
      items
  | _ -> Alcotest.fail "no results array"

let test_handler_shutdown () =
  let t = Serve.Handler.create ~jobs:1 () in
  Alcotest.(check bool) "not requested" false (Serve.Handler.shutdown_requested t);
  let r = handle ~handler:t (plain P.Shutdown) in
  Alcotest.(check string) "ok" "ok" (P.status_of_response r);
  Alcotest.(check bool) "requested" true (Serve.Handler.shutdown_requested t)

(* ------------------------- deadline path -------------------------- *)

(* A workload big enough that the search cannot finish instantly: an
   expired deadline must still return the greedy incumbent, marked
   degraded.  (The parallel path seeds the incumbent from greedy
   completions before the first deadline poll.) *)
let big_workload () =
  let system =
    V.Generator.generate
      { V.Generator.default with sites = 3; variants_per_site = 3; seed = 9 }
  in
  let apps = Synth.App.of_system system in
  let pids =
    Spi.Ids.Process_id.Set.elements (Synth.App.union_procs apps)
  in
  let weight pid = 1 + ((V.Generator.process_weight pid * 31) mod 100) in
  let tech =
    Synth.Tech.make ~processor_cost:15
      (List.map
         (fun pid ->
           let w = weight pid in
           (pid, Synth.Tech.both ~load:((w / 3) + 5) ~area:(w + 10)))
         pids)
  in
  (tech, apps)

let test_deadline_returns_degraded_incumbent () =
  let tech, apps = big_workload () in
  match
    Synth.Explore.solve ~jobs:2 ~capacity:140
      ~deadline_ns:(Obs.Clock.now_ns ()) tech apps
  with
  | Ok s ->
    Alcotest.(check bool) "marked degraded" true s.Synth.Explore.degraded;
    Alcotest.(check bool) "carries a real binding" true
      (Synth.Binding.processes s.Synth.Explore.binding <> [])
  | Error Synth.Explore.Deadline_no_incumbent ->
    Alcotest.fail "expected the greedy incumbent, got no incumbent"
  | Error d ->
    Alcotest.failf "unexpected diagnostic: %s"
      (Format.asprintf "%a" Synth.Explore.pp_diagnostic d)

let test_no_deadline_not_degraded () =
  match Synth.Explore.solve ~jobs:2 F2.table1_tech [ F2.app1; F2.app2 ] with
  | Ok s ->
    Alcotest.(check bool) "not degraded" false s.Synth.Explore.degraded
  | Error _ -> Alcotest.fail "solve failed"

(* ---------------------------- client ------------------------------ *)

let test_client_fresh_ids () =
  let a = Serve.Client.fresh_id () in
  let b = Serve.Client.fresh_id () in
  Alcotest.(check bool) "distinct" true (a <> b)

let test_client_unreachable () =
  match
    Serve.Client.request ~timeout_s:0.2 ~attempts:2 ~base_backoff_s:0.01
      ~seed:1 ~socket:"/nonexistent/spi-serve.sock" (plain P.Ping)
  with
  | Serve.Client.Unreachable _ -> ()
  | Serve.Client.Response _ | Serve.Client.Overloaded _ ->
    Alcotest.fail "expected unreachable"


(* The retry-after hint comes from an untrusted daemon: however large
   the hint (or however deep the exponential backoff), no single wait
   may exceed max_backoff_s before jitter (jitter tops out at 1.5). *)
let test_backoff_clamped =
  QCheck.Test.make ~count:200 ~name:"backoff delay is clamped to the ceiling"
    QCheck.(
      quad (int_range 0 20) (float_range 0.5 1.5) (float_range 0.01 2.)
        (option (float_range 0. 1e6)))
    (fun (attempt, jitter, max_backoff_s, hint) ->
      let d =
        Serve.Client.backoff_delay ~base_backoff_s:0.25 ~max_backoff_s ~jitter
          ~attempt hint
      in
      d >= 0. && d <= (max_backoff_s *. jitter) +. 1e-9)

let test_backoff_shape () =
  let delay ?hint attempt =
    Serve.Client.backoff_delay ~base_backoff_s:0.25 ~max_backoff_s:5.
      ~jitter:1. ~attempt hint
  in
  Alcotest.(check (float 1e-9)) "attempt 0" 0.25 (delay 0);
  Alcotest.(check (float 1e-9)) "attempt 2 doubles twice" 1. (delay 2);
  Alcotest.(check (float 1e-9)) "hint raises a small backoff" 2.
    (delay ~hint:2. 0);
  Alcotest.(check (float 1e-9)) "huge hint clamps to the ceiling" 5.
    (delay ~hint:3600. 0);
  Alcotest.(check (float 1e-9)) "deep attempt clamps to the ceiling" 5.
    (delay 16)

(* ------------------------ compiled simulate ----------------------- *)

let run_fields response =
  match Option.bind (J.member "runs" response) J.to_list with
  | Some runs -> runs
  | None -> Alcotest.fail "response has no runs"

let test_handler_simulate_compiled () =
  let t = Serve.Handler.create ~jobs:1 () in
  let simulate compiled =
    handle ~handler:t
      (plain
         (P.Simulate
            { model = model_source; until = Some 50; compiled; family = false }))
  in
  let interpreted = simulate false in
  let hits = Obs.Registry.counter "serve.plan_cache_hits" in
  let misses = Obs.Registry.counter "serve.plan_cache_misses" in
  let h0 = Obs.Metric.value hits and m0 = Obs.Metric.value misses in
  let compiled1 = simulate true in
  let compiled2 = simulate true in
  Alcotest.(check string) "ok" "ok" (P.status_of_response compiled1);
  Alcotest.(check (option bool)) "compiled tagged" (Some true)
    (Option.bind (J.member "compiled" compiled1) J.to_bool);
  Alcotest.(check (option bool)) "interpreted tagged" (Some false)
    (Option.bind (J.member "compiled" interpreted) J.to_bool);
  (* identical runs: the differential guarantee surfaces on the wire *)
  Alcotest.(check bool) "compiled runs = interpreted runs" true
    (run_fields compiled1 = run_fields interpreted);
  Alcotest.(check bool) "repeat request is stable" true
    (run_fields compiled1 = run_fields compiled2);
  (* first compiled request misses the plan cache, the second hits *)
  Alcotest.(check int) "one miss" (m0 + 1) (Obs.Metric.value misses);
  Alcotest.(check int) "one hit" (h0 + 1) (Obs.Metric.value hits)

(* ------------------------- family simulate ------------------------ *)

(* Figure 2's shape with initial tokens so the run actually fires: the
   feeder drains CX into the site's input port, both variants can
   activate, and the family pass must split g1 from g2. *)
let family_model_source =
  {|system fam {
  channel CX queue initial 2
  channel CA queue
  channel CB queue
  channel CY queue
  process PA {
    mode PA.default { latency 3 consume CX 1 produce CA 1 }
    rule PA.auto0 when num CX >= 1 -> PA.default
    }
  process PB {
    mode PB.default { latency 2 consume CB 1 produce CY 1 }
    rule PB.auto0 when num CB >= 1 -> PB.default
    }
  interface iface1 {
    port in i = CA
    port out o = CB
    cluster g1 {
      process x1 {
        mode x1.default { latency 4 consume i 1 produce o 1 }
        rule x1.auto0 when num i >= 1 -> x1.default
        }
      }
    cluster g2 {
      channel k1 queue
      process y1 {
        mode y1.default { latency 2 consume i 1 produce k1 1 }
        rule y1.auto0 when num i >= 1 -> y1.default
        }
      process y2 {
        mode y2.default { latency 5 consume k1 1 produce o 1 }
        rule y2.auto0 when num k1 >= 1 -> y2.default
        }
      }
    }
  }
|}

let test_handler_simulate_family () =
  let t = Serve.Handler.create ~jobs:1 () in
  let simulate compiled =
    handle ~handler:t
      (plain
         (P.Simulate
            {
              model = family_model_source;
              until = Some 500;
              compiled;
              family = true;
            }))
  in
  let hits = Obs.Registry.counter "serve.plan_cache_hits" in
  let misses = Obs.Registry.counter "serve.plan_cache_misses" in
  let interpreted = simulate false in
  Alcotest.(check string) "ok" "ok" (P.status_of_response interpreted);
  Alcotest.(check (option bool)) "family tagged" (Some true)
    (Option.bind (J.member "family" interpreted) J.to_bool);
  Alcotest.(check (option int)) "two configurations" (Some 2)
    (Option.bind (J.member "configurations" interpreted) J.to_int);
  Alcotest.(check (option int)) "split into two subfamilies" (Some 2)
    (Option.bind (J.member "subfamilies" interpreted) J.to_int);
  let h0 = Obs.Metric.value hits and m0 = Obs.Metric.value misses in
  let compiled1 = simulate true in
  let compiled2 = simulate true in
  Alcotest.(check string) "compiled ok" "ok" (P.status_of_response compiled1);
  (* wire-level differential: the compiled family pass answers with the
     interpreted pass's runs and sharing summary, byte for byte *)
  Alcotest.(check bool) "compiled runs = interpreted runs" true
    (run_fields compiled1 = run_fields interpreted);
  List.iter
    (fun field ->
      Alcotest.(check (option int)) field
        (Option.bind (J.member field interpreted) J.to_int)
        (Option.bind (J.member field compiled1) J.to_int))
    [ "configurations"; "splits"; "subfamilies"; "executed_firings";
      "shared_firings" ];
  Alcotest.(check bool) "repeat request is stable" true
    (run_fields compiled1 = run_fields compiled2);
  (* the family plan cache warms like the per-configuration one *)
  Alcotest.(check int) "one miss" (m0 + 1) (Obs.Metric.value misses);
  Alcotest.(check int) "one hit" (h0 + 1) (Obs.Metric.value hits);
  (* the flat and family paths disagree on nothing but sharing: each
     configuration's end_time matches a per-configuration simulate *)
  let flat =
    handle ~handler:t
      (plain
         (P.Simulate
            {
              model = family_model_source;
              until = Some 500;
              compiled = false;
              family = false;
            }))
  in
  let end_times r =
    run_fields r
    |> List.filter_map (fun run -> Option.bind (J.member "end_time" run) J.to_int)
    |> List.sort compare
  in
  Alcotest.(check (list int)) "family end times = flat end times"
    (end_times flat) (end_times interpreted)

(* --------------------------- telemetry ---------------------------- *)

let get_path doc path =
  List.fold_left (fun j k -> Option.bind j (J.member k)) (Some doc) path

let test_handler_metrics_verb () =
  let series = Obs.Series.create ~windows:4 () in
  let t = Serve.Handler.create ~series ~jobs:1 () in
  Obs.Series.sample series;
  ignore (handle ~handler:t (plain P.Ping));
  Unix.sleepf 0.005;
  Obs.Series.sample series;
  let r = handle ~handler:t (plain P.Metrics) in
  Alcotest.(check string) "ok" "ok" (P.status_of_response r);
  Alcotest.(check (option string)) "snapshot is obs/v1" (Some "obs/v1")
    (Option.bind (get_path r [ "snapshot"; "schema" ]) J.to_string_opt);
  (match get_path r [ "snapshot"; "counters"; "serve.requests" ] with
  | Some (J.Int n) when n > 0 -> ()
  | _ -> Alcotest.fail "snapshot misses the request counter");
  (match Option.bind (get_path r [ "exposition" ]) J.to_string_opt with
  | Some text ->
    let has needle =
      let nl = String.length needle and tl = String.length text in
      let rec at i = i + nl <= tl && (String.sub text i nl = needle || at (i + 1)) in
      at 0
    in
    Alcotest.(check bool) "exposition has TYPE headers" true
      (has "# TYPE serve_requests counter")
  | None -> Alcotest.fail "no exposition");
  Alcotest.(check (option string)) "series is series/v1" (Some "series/v1")
    (Option.bind (get_path r [ "series"; "schema" ]) J.to_string_opt);
  Alcotest.(check (option int)) "both windows retained" (Some 2)
    (Option.bind (get_path r [ "series"; "windows" ]) J.to_int);
  (* without a series the verb still answers, minus that member *)
  let bare = handle (plain P.Metrics) in
  Alcotest.(check string) "ok without series" "ok"
    (P.status_of_response bare);
  Alcotest.(check bool) "no series member" true
    (J.member "series" bare = None)

let test_handler_trace_spans () =
  let t = Serve.Handler.create ~jobs:2 () in
  let synth op = { (plain op) with P.id = Some "tr-1"; trace = true } in
  let op =
    P.Synthesize { model = model_source; tech = tech_source; capacity = None }
  in
  let r = handle ~handler:t (synth op) in
  Alcotest.(check string) "ok" "ok" (P.status_of_response r);
  let trace =
    match J.member "trace" r with
    | Some tr -> tr
    | None -> Alcotest.fail "trace requested but absent"
  in
  Alcotest.(check (option string)) "rtrace/v1" (Some "rtrace/v1")
    (Option.bind (J.member "schema" trace) J.to_string_opt);
  Alcotest.(check (option string)) "rid is the request id" (Some "tr-1")
    (Option.bind (J.member "rid" trace) J.to_string_opt);
  let spans =
    match Option.bind (J.member "spans" trace) J.to_list with
    | Some spans -> spans
    | None -> Alcotest.fail "no spans"
  in
  let name s = Option.bind (J.member "name" s) J.to_string_opt in
  let root =
    match List.find_opt (fun s -> name s = Some "serve.request") spans with
    | Some s -> s
    | None -> Alcotest.fail "no serve.request root span"
  in
  Alcotest.(check (option int)) "root parents to 0" (Some 0)
    (Option.bind (J.member "parent" root) J.to_int);
  Alcotest.(check bool) "explore landed in the request tree" true
    (List.exists (fun s -> name s = Some "explore.solve_ns") spans);
  (* replays serve the cached response: no stale trace attached *)
  let replay = handle ~handler:t (synth op) in
  Alcotest.(check (option bool)) "replayed" (Some true)
    (Option.bind (J.member "cached" replay) J.to_bool);
  Alcotest.(check bool) "no trace on a replay" true
    (J.member "trace" replay = None);
  (* and without the flag, no trace member at all *)
  let quiet = handle ~handler:t (plain P.Ping) in
  Alcotest.(check bool) "opt-in only" true (J.member "trace" quiet = None)

(* Metrics polls against a live batch workload: the shared registry,
   exposition and series are the concurrency surface (handlers are
   per-connection state, so each side gets its own). *)
let test_metrics_under_load () =
  let series = Obs.Series.create ~windows:8 () in
  let load = Serve.Handler.create ~jobs:2 () in
  let poll = Serve.Handler.create ~series ~jobs:1 () in
  let stop = Atomic.make false in
  let worker =
    Domain.spawn (fun () ->
        let batch =
          plain
            (P.Batch
               [
                 plain
                   (P.Synthesize
                      {
                        model = model_source;
                        tech = tech_source;
                        capacity = None;
                      });
                 plain
                   (P.Simulate
                      {
                        model = model_source;
                        until = Some 30;
                        compiled = true;
                        family = false;
                      });
               ])
        in
        while not (Atomic.get stop) do
          let r = handle ~handler:load batch in
          if P.status_of_response r <> "ok" then
            Atomic.set stop true (* surface the failure to the checks below *)
        done)
  in
  Fun.protect
    ~finally:(fun () ->
      Atomic.set stop true;
      Domain.join worker)
    (fun () ->
      for _ = 1 to 10 do
        Obs.Series.sample series;
        let r = handle ~handler:poll (plain P.Metrics) in
        Alcotest.(check string) "poll ok" "ok" (P.status_of_response r);
        (* well-formed under concurrent writers: the document serializes
           and parses back, and both payloads carry their schema tags *)
        (match J.parse (J.to_string ~minify:true r) with
        | Error e -> Alcotest.failf "snapshot does not round-trip: %s" e
        | Ok _ -> ());
        Alcotest.(check (option string)) "obs/v1" (Some "obs/v1")
          (Option.bind (get_path r [ "snapshot"; "schema" ]) J.to_string_opt);
        Alcotest.(check (option string)) "series/v1" (Some "series/v1")
          (Option.bind (get_path r [ "series"; "schema" ]) J.to_string_opt)
      done;
      Alcotest.(check bool) "load kept running" false (Atomic.get stop))

let test_client_retry_logged () =
  let lines = ref [] in
  Obs.Log.set_sink (Some (fun l -> lines := l :: !lines));
  Fun.protect
    ~finally:(fun () ->
      Obs.Log.set_sink (Some (Obs.Log.channel_sink stderr)))
    (fun () ->
      (match
         Serve.Client.request ~timeout_s:0.2 ~attempts:2 ~base_backoff_s:0.01
           ~seed:1 ~socket:"/nonexistent/spi-serve.sock"
           { (plain P.Ping) with P.id = Some "retry-rid" }
       with
      | Serve.Client.Unreachable _ -> ()
      | Serve.Client.Response _ | Serve.Client.Overloaded _ ->
        Alcotest.fail "expected unreachable");
      let retries =
        List.rev !lines
        |> List.filter_map (fun line ->
               match J.parse line with
               | Ok doc
                 when Option.bind (J.member "event" doc) J.to_string_opt
                      = Some "client.retry" ->
                 Some doc
               | Ok _ | Error _ -> None)
      in
      Alcotest.(check int) "one line per failed attempt" 2
        (List.length retries);
      let first = List.hd retries in
      let field k = get_path first [ "fields"; k ] in
      Alcotest.(check (option string)) "warn level" (Some "warn")
        (Option.bind (J.member "level" first) J.to_string_opt);
      Alcotest.(check (option string)) "idempotency key" (Some "retry-rid")
        (Option.bind (field "id") J.to_string_opt);
      Alcotest.(check (option int)) "attempt number" (Some 1)
        (Option.bind (field "attempt") J.to_int);
      Alcotest.(check (option int)) "attempt budget" (Some 2)
        (Option.bind (field "of") J.to_int);
      (match Option.bind (field "backoff_ms") J.to_int with
      | Some ms when ms >= 0 -> ()
      | _ -> Alcotest.fail "no backoff_ms field");
      match Option.bind (field "reason") J.to_string_opt with
      | Some reason when reason <> "" -> ()
      | _ -> Alcotest.fail "no reason field")

let suite =
  ( "serve",
    [
      Alcotest.test_case "protocol roundtrip" `Quick test_protocol_roundtrip;
      Alcotest.test_case "protocol rejects bad requests" `Quick
        test_protocol_rejects;
      Alcotest.test_case "status_of_response" `Quick test_status_of_response;
      Alcotest.test_case "overloaded response shape" `Quick
        test_overloaded_shape;
      Alcotest.test_case "handler ping" `Quick test_handler_ping;
      Alcotest.test_case "handler rejects bad model" `Quick
        test_handler_bad_model;
      Alcotest.test_case "handler idempotency replay" `Quick
        test_handler_idempotency;
      Alcotest.test_case "handler warm equals cold" `Quick
        test_handler_warm_equals_cold;
      Alcotest.test_case "handler batch fan-out" `Quick test_handler_batch;
      Alcotest.test_case "handler shutdown request" `Quick
        test_handler_shutdown;
      Alcotest.test_case "expired deadline returns degraded incumbent" `Quick
        test_deadline_returns_degraded_incumbent;
      Alcotest.test_case "no deadline, no degradation" `Quick
        test_no_deadline_not_degraded;
      Alcotest.test_case "client ids distinct" `Quick test_client_fresh_ids;
      QCheck_alcotest.to_alcotest test_backoff_clamped;
      Alcotest.test_case "backoff shape and clamp" `Quick test_backoff_shape;
      Alcotest.test_case "handler compiled simulate" `Quick
        test_handler_simulate_compiled;
      Alcotest.test_case "handler family simulate" `Quick
        test_handler_simulate_family;
      Alcotest.test_case "client reports unreachable" `Quick
        test_client_unreachable;
      Alcotest.test_case "metrics verb payload" `Quick
        test_handler_metrics_verb;
      Alcotest.test_case "trace spans in the response" `Quick
        test_handler_trace_spans;
      Alcotest.test_case "metrics polls under batch load" `Quick
        test_metrics_under_load;
      Alcotest.test_case "client retries are logged" `Quick
        test_client_retry_logged;
    ] )
