(* Validates a --trace timeline written by the CLI against the trace/v1
   shape: schema tag, a non-empty traceEvents list of well-formed Chrome
   trace-event records, non-overlapping complete spans per lane, and
   flow arrows whose heads follow their tails.  Driven by the dune
   runtest rule in test/dune, which first runs the CLI with --trace.

   Optional checks:
     --expect-tconf           at least one "t_conf" span carrying
                              source/target configuration args
     --expect-worker-lanes N  at least N explorer domain lanes with
                              task spans
     --expect-incumbent-counter
                              at least one "incumbent cost" counter
                              sample (the explorer's descent track)
     --allow-nesting          lanes may contain properly nested spans
                              (a request timeline's serve.request wraps
                              the parse/solve spans it contains);
                              partial overlap still fails

   Alternate mode:
     --identical A B          the two files are byte-for-byte equal —
                              enforces the streamed-vs-buffered (and
                              compiled-vs-interpreted) export contract *)

module J = Obs.Json

let fail fmt = Format.kasprintf (fun m -> prerr_endline m; exit 1) fmt

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let check_identical a b =
  let ca = read_file a and cb = read_file b in
  if String.length ca = 0 then fail "%s: empty file" a;
  if not (String.equal ca cb) then begin
    (* locate the first divergent byte for the error message *)
    let n = min (String.length ca) (String.length cb) in
    let i = ref 0 in
    while !i < n && ca.[!i] = cb.[!i] do
      incr i
    done;
    fail "%s and %s differ at byte %d (%d vs %d bytes total)" a b !i
      (String.length ca) (String.length cb)
  end;
  Format.printf "%s = %s (%d bytes identical)@." a b (String.length ca);
  exit 0

let () =
  let path, expect_tconf, expect_lanes, expect_incumbent, allow_nesting =
    let path = ref None
    and tconf = ref false
    and lanes = ref 0
    and incumbent = ref false
    and nesting = ref false in
    let rec parse = function
      | [] -> ()
      | [ "--identical"; a; b ] -> check_identical a b
      | "--expect-tconf" :: rest ->
        tconf := true;
        parse rest
      | "--expect-worker-lanes" :: n :: rest ->
        lanes := int_of_string n;
        parse rest
      | "--expect-incumbent-counter" :: rest ->
        incumbent := true;
        parse rest
      | "--allow-nesting" :: rest ->
        nesting := true;
        parse rest
      | p :: rest ->
        path := Some p;
        parse rest
    in
    parse (List.tl (Array.to_list Sys.argv));
    match !path with
    | Some p -> (p, !tconf, !lanes, !incumbent, !nesting)
    | None ->
      fail
        "usage: validate_trace [--expect-tconf] [--expect-worker-lanes N] \
         [--expect-incumbent-counter] [--allow-nesting] TRACE.json | \
         validate_trace --identical A B"
  in
  let ic = open_in_bin path in
  let contents = really_input_string ic (in_channel_length ic) in
  close_in ic;
  let doc =
    match J.parse contents with
    | Ok d -> d
    | Error e -> fail "%s: not valid JSON: %s" path e
  in
  (match Option.bind (J.member "schema" doc) J.to_string_opt with
  | Some "trace/v1" -> ()
  | Some other -> fail "%s: schema %S, expected trace/v1" path other
  | None -> fail "%s: missing schema tag" path);
  let events =
    match J.member "traceEvents" doc with
    | Some (J.List (_ :: _ as es)) -> es
    | Some (J.List []) -> fail "%s: traceEvents is empty" path
    | _ -> fail "%s: missing traceEvents list" path
  in
  let str k e = Option.bind (J.member k e) J.to_string_opt in
  let num k e =
    match J.member k e with
    | Some (J.Int i) -> Some (float_of_int i)
    | Some (J.Float f) -> Some f
    | _ -> None
  in
  let require_fields i e fields =
    List.iter
      (fun k ->
        if J.member k e = None then
          fail "%s: event %d (ph %s) lacks %S" path i
            (Option.value ~default:"?" (str "ph" e))
            k)
      fields
  in
  (* per-(pid, tid) complete spans, and flow tails seen so far *)
  let spans : (int * int, (float * float * string) list ref) Hashtbl.t =
    Hashtbl.create 32
  in
  let flow_tails = Hashtbl.create 64 in
  let task_lanes = Hashtbl.create 16 in
  let tconf_ok = ref false in
  let incumbent_ok = ref false in
  List.iteri
    (fun i e ->
      let ph =
        match str "ph" e with
        | Some ph -> ph
        | None -> fail "%s: event %d has no ph" path i
      in
      let int_field k =
        match J.member k e with
        | Some v -> Option.value ~default:0 (J.to_int v)
        | None -> 0
      in
      match ph with
      | "M" ->
        require_fields i e [ "name"; "pid" ];
        (* worker lanes announce themselves as "domain N" thread names *)
        if
          str "name" e = Some "thread_name"
          &&
          match Option.bind (J.member "args" e) (J.member "name") with
          | Some (J.String n) ->
            String.length n > 7 && String.sub n 0 7 = "domain "
          | _ -> false
        then Hashtbl.replace task_lanes (int_field "pid", int_field "tid") ()
      | "X" ->
        require_fields i e [ "name"; "ts"; "dur"; "pid"; "tid" ];
        let ts = Option.get (num "ts" e) and dur = Option.get (num "dur" e) in
        if dur < 0. then fail "%s: event %d has negative dur" path i;
        let name = Option.value ~default:"?" (str "name" e) in
        let key = (int_field "pid", int_field "tid") in
        let cell =
          match Hashtbl.find_opt spans key with
          | Some c -> c
          | None ->
            let c = ref [] in
            Hashtbl.replace spans key c;
            c
        in
        cell := (ts, ts +. dur, name) :: !cell;
        if name = "t_conf" then begin
          match J.member "args" e with
          | Some args
            when J.member "source" args <> None
                 && J.member "target" args <> None
                 && J.member "t_conf" args <> None ->
            tconf_ok := true
          | _ -> fail "%s: t_conf span %d lacks source/target/t_conf args" path i
        end
      | "B" -> require_fields i e [ "name"; "ts"; "pid"; "tid" ]
      | "E" -> require_fields i e [ "ts"; "pid"; "tid" ]
      | "i" -> require_fields i e [ "name"; "ts"; "pid"; "tid" ]
      | "C" ->
        require_fields i e [ "name"; "ts"; "pid"; "args" ];
        (match J.member "args" e with
        | Some (J.Obj (_ :: _)) -> ()
        | _ -> fail "%s: counter event %d has no samples" path i);
        if str "name" e = Some "incumbent cost" then incumbent_ok := true
      | "s" ->
        require_fields i e [ "id"; "ts"; "pid"; "tid" ];
        Hashtbl.replace flow_tails (int_field "id") ()
      | "f" ->
        require_fields i e [ "id"; "ts"; "pid"; "tid" ];
        if not (Hashtbl.mem flow_tails (int_field "id")) then
          fail "%s: flow head %d (id %d) has no preceding tail" path i
            (int_field "id")
      | other -> fail "%s: event %d has unknown ph %S" path i other)
    events;
  (* spans on one lane must not overlap: sort by start and compare
     neighbours (1e-6 us slack absorbs float rounding at shared
     endpoints).  With --allow-nesting a span may instead sit fully
     inside a still-open ancestor (request timelines nest by design);
     straddling an ancestor's end remains an error. *)
  Hashtbl.iter
    (fun (pid, tid) cell ->
      if allow_nesting then
        (* (start, -end) lexicographic: at a shared start the longer
           span orders first, i.e. parents before their children; each
           span must then sit fully inside every still-open ancestor *)
        let sorted =
          List.sort
            (fun (a, ae, _) (b, be, _) ->
              match Float.compare a b with 0 -> Float.compare be ae | c -> c)
            !cell
        in
        ignore
          (List.fold_left
             (fun open_spans (s, e, name) ->
               let open_spans =
                 List.filter (fun (pe, _) -> s +. 1e-6 < pe) open_spans
               in
               (match open_spans with
               | (pe, pname) :: _ when e > pe +. 1e-6 ->
                 fail
                   "%s: lane pid=%d tid=%d: span %S (at %g) straddles \
                    the end of %S"
                   path pid tid name s pname
               | _ -> ());
               (e, name) :: open_spans)
             [] sorted)
      else
        let sorted =
          (* (start, end) lexicographic: a zero-duration span sharing
             its start with a longer one orders first and is not an
             overlap *)
          List.sort
            (fun (a, ae, _) (b, be, _) ->
              match Float.compare a b with 0 -> Float.compare ae be | c -> c)
            !cell
        in
        ignore
          (List.fold_left
             (fun prev (s, e, name) ->
               (match prev with
               | Some (pe, pname) when s +. 1e-6 < pe ->
                 fail "%s: lane pid=%d tid=%d: span %S (at %g) overlaps %S"
                   path pid tid name s pname
               | _ -> ());
               Some (e, name))
             None sorted))
    spans;
  if expect_tconf && not !tconf_ok then
    fail "%s: no t_conf reconfiguration span found" path;
  if expect_incumbent && not !incumbent_ok then
    fail "%s: no \"incumbent cost\" counter sample found" path;
  if Hashtbl.length task_lanes < expect_lanes then
    fail "%s: %d worker domain lanes, expected >= %d" path
      (Hashtbl.length task_lanes) expect_lanes;
  Format.printf "%s: valid trace/v1 timeline (%d events, %d lanes)@." path
    (List.length events) (Hashtbl.length spans)
