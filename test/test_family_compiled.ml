(* Four-way differential proof for the compiled family engine: for every
   configuration of a variant space, the interpreter (Sim.Engine), the
   compiled per-configuration engine (Sim.Compile), the interpreted
   family engine (Sim.Family) and the compiled family engine
   (Sim.Family_compiled) produce the same result — trace entry for
   entry, final channel contents, outcome, counters, and rendered
   trace/stats bytes (Test_compile.result_eq) — and the two family
   engines agree on every family-level statistic, leaf for leaf.
   Exercised across generated flat and nested systems,
   split-adversarial stimulus schedules, policies, fault plans, split
   heuristics and job counts. *)

module I = Spi.Ids

let render_assignment a =
  Format.asprintf "%a" Variants.Variant_space.pp_assignment a

let leaf_eq (a : Sim.Family.leaf) (b : Sim.Family.leaf) =
  a.Sim.Family.leaf_members = b.Sim.Family.leaf_members
  && a.Sim.Family.leaf_makespan = b.Sim.Family.leaf_makespan

(* Family-level statistics must agree between the two family engines:
   same splits, same leaves covering the same members with the same
   makespans. *)
let reports_agree (a : Sim.Family.report) (b : Sim.Family.report) =
  a.Sim.Family.splits = b.Sim.Family.splits
  && a.Sim.Family.subfamilies = b.Sim.Family.subfamilies
  && a.Sim.Family.executed_firings = b.Sim.Family.executed_firings
  && a.Sim.Family.shared_firings = b.Sim.Family.shared_firings
  && Array.length a.Sim.Family.leaves = Array.length b.Sim.Family.leaves
  && Array.for_all2 leaf_eq a.Sim.Family.leaves b.Sim.Family.leaves

(* The tentpole check: both family engines vs per-configuration
   interpreter and compiled runs, under one scenario. *)
let four_way ?policy ?limits ?overflow ?stimuli ?firing_budget ?faults
    ?(jobs = 1) ?split system =
  let interpreted =
    Sim.Family.run ?policy ?limits ?overflow ?stimuli ?firing_budget ?faults
      ~jobs ?split system
  in
  let plan = Sim.Family_compiled.plan system in
  let compiled =
    Sim.Family_compiled.run ?policy ?limits ?overflow ?stimuli ?firing_budget
      ?faults ~jobs ?split plan
  in
  let assignments = Variants.Variant_space.enumerate system in
  Array.length interpreted.Sim.Family.runs = List.length assignments
  && reports_agree interpreted compiled
  && List.for_all
       (fun (i, assignment) ->
         let model =
           Variants.Flatten.flatten system
             (Variants.Variant_space.to_choice assignment)
         in
         let reference =
           Sim.Engine.run ?policy ?limits ?overflow ?stimuli ?firing_budget
             ?faults model
         in
         let compiled_ref =
           Sim.Compile.run ?policy ?limits ?overflow ?stimuli ?firing_budget
             ?faults
             (Sim.Compile.compile model)
         in
         let fr = interpreted.Sim.Family.runs.(i) in
         let cr = compiled.Sim.Family.runs.(i) in
         fr.Sim.Family.index = i
         && cr.Sim.Family.index = i
         && render_assignment fr.Sim.Family.assignment
            = render_assignment assignment
         && render_assignment cr.Sim.Family.assignment
            = render_assignment assignment
         && Test_compile.result_eq model reference compiled_ref
         && Test_compile.result_eq model reference fr.Sim.Family.result
         && Test_compile.result_eq model reference cr.Sim.Family.result)
       (List.mapi (fun i a -> (i, a)) assignments)

(* --------------------------- qcheck properties ----------------------- *)

let prop_generated_workloads =
  QCheck.Test.make
    ~name:"four-way differential (generated systems, all policies)" ~count:20
    QCheck.(int_range 0 9999)
    (fun seed ->
      let system = Harness.family_system ~seed in
      let stimuli = Harness.family_stimuli system in
      List.for_all
        (fun policy -> four_way ~policy ~stimuli system)
        [ Sim.Engine.Best_case; Sim.Engine.Typical; Sim.Engine.Worst_case ])

let prop_nested_adversarial =
  QCheck.Test.make
    ~name:"four-way differential (nested sites, adversarial stimuli)"
    ~count:20
    QCheck.(int_range 0 9999)
    (fun seed ->
      let system = Harness.nested_family_system ~seed in
      let stimuli = Harness.nested_family_stimuli system in
      four_way ~stimuli system
      && four_way ~stimuli ~split:`Full system)

let prop_nested_with_faults =
  QCheck.Test.make ~name:"four-way differential (nested sites, fault plans)"
    ~count:15
    QCheck.(int_range 0 9999)
    (fun seed ->
      let system = Harness.nested_family_system ~seed in
      let stimuli = Harness.nested_family_stimuli ~tokens:4 system in
      let faults = Harness.family_fault_plan ~seed system in
      four_way ~stimuli ~faults system)

(* The narrow heuristic's contract: it never forks more sub-families
   than full splitting, and the per-configuration results are identical
   under both policies — on both engines. *)
let prop_narrow_never_worse =
  QCheck.Test.make ~name:"narrow splitting <= full splitting, same results"
    ~count:20
    QCheck.(int_range 0 9999)
    (fun seed ->
      let system = Harness.nested_family_system ~seed in
      let stimuli = Harness.nested_family_stimuli system in
      let fingerprint (r : Sim.Family.report) =
        Array.to_list r.Sim.Family.runs
        |> List.map (fun cr ->
               Format.asprintf "%d %a" cr.Sim.Family.index Sim.Trace.pp
                 cr.Sim.Family.result.Sim.Engine.trace)
        |> String.concat "\n"
      in
      let check run =
        let narrow = run ~split:`Narrow in
        let full = run ~split:`Full in
        narrow.Sim.Family.splits <= full.Sim.Family.splits
        && narrow.Sim.Family.subfamilies <= full.Sim.Family.subfamilies
        && fingerprint narrow = fingerprint full
      in
      let plan = Sim.Family_compiled.plan system in
      check (fun ~split -> Sim.Family.run ~stimuli ~split system)
      && check (fun ~split -> Sim.Family_compiled.run ~stimuli ~split plan))

(* Sub-families are steal-able tasks: every job count must produce the
   identical report, and one compiled plan may serve all the runs. *)
let prop_jobs_invariant =
  QCheck.Test.make ~name:"compiled family run is job-count invariant" ~count:5
    QCheck.(int_range 0 999)
    (fun seed ->
      let system = Harness.nested_family_system ~seed in
      let stimuli = Harness.nested_family_stimuli system in
      let faults = Harness.family_fault_plan ~seed system in
      let plan = Sim.Family_compiled.plan system in
      let fingerprint jobs =
        let r = Sim.Family_compiled.run ~stimuli ~faults ~jobs plan in
        let runs =
          Array.to_list r.Sim.Family.runs
          |> List.map (fun cr ->
                 Format.asprintf "%d %s %a" cr.Sim.Family.index
                   (render_assignment cr.Sim.Family.assignment)
                   Sim.Trace.pp cr.Sim.Family.result.Sim.Engine.trace)
          |> String.concat "\n"
        in
        ( runs,
          r.Sim.Family.splits,
          r.Sim.Family.subfamilies,
          r.Sim.Family.executed_firings,
          r.Sim.Family.shared_firings )
      in
      let reference = fingerprint 1 in
      List.for_all (fun jobs -> fingerprint jobs = reference) [ 2; 4 ])

(* ------------------------------ unit tests --------------------------- *)

(* The acceptance sweep: 200 seeded workloads alternating flat and
   nested systems, policies, fault plans and split heuristics — every
   configuration byte-identical across all four engines. *)
let test_200_workloads () =
  for seed = 0 to 199 do
    let system, stimuli =
      if seed mod 2 = 0 then
        let s = Harness.family_system ~seed in
        (s, Harness.family_stimuli s)
      else
        let s = Harness.nested_family_system ~seed in
        (s, Harness.nested_family_stimuli s)
    in
    let policy =
      match seed mod 3 with
      | 0 -> Sim.Engine.Best_case
      | 1 -> Sim.Engine.Typical
      | _ -> Sim.Engine.Worst_case
    in
    let faults =
      if seed mod 4 = 3 then Some (Harness.family_fault_plan ~seed system)
      else None
    in
    let split = if seed mod 5 = 0 then `Full else `Narrow in
    Alcotest.(check bool)
      (Format.sprintf "workload %d" seed)
      true
      (four_way ~policy ~stimuli ?faults ~split system)
  done

(* Compiling the family must beat nothing semantically: the compiled
   report's headroom agrees with per-configuration makespans, computed
   once per leaf. *)
let test_headroom_per_leaf () =
  let system = Harness.nested_family_system ~seed:6 in
  let stimuli = Harness.nested_family_stimuli system in
  let check (report : Sim.Family.report) =
    let deadline = 50 in
    let spans = Sim.Family.makespans report in
    let head = Sim.Family.headroom ~deadline report in
    Alcotest.(check int) "one headroom per configuration" (Array.length spans)
      (Array.length head);
    Array.iteri
      (fun i (index, h) ->
        let mi, makespan = spans.(i) in
        Alcotest.(check int) (Format.sprintf "index %d" i) mi index;
        Alcotest.(check int)
          (Format.sprintf "headroom of config %d" i)
          (deadline - makespan) h)
      head;
    Alcotest.(check int) "one leaf per finished sub-family"
      report.Sim.Family.subfamilies
      (Array.length report.Sim.Family.leaves);
    let covered =
      Array.fold_left
        (fun acc leaf -> acc + List.length leaf.Sim.Family.leaf_members)
        0 report.Sim.Family.leaves
    in
    Alcotest.(check int) "leaves partition the configurations"
      (Array.length report.Sim.Family.runs)
      covered
  in
  check (Sim.Family.run ~stimuli system);
  check (Sim.Family_compiled.run ~stimuli (Sim.Family_compiled.plan system))

(* One plan, many runs: scenario parameters bind at run time, and a
   reused plan must behave exactly like a fresh one. *)
let test_plan_reuse () =
  let system = Harness.nested_family_system ~seed:3 in
  let plan = Sim.Family_compiled.plan system in
  let stim_a = Harness.nested_family_stimuli system in
  let stim_b = Harness.nested_family_stimuli ~tokens:5 system in
  let render stimuli plan =
    let r = Sim.Family_compiled.run ~stimuli plan in
    Array.to_list r.Sim.Family.runs
    |> List.map (fun cr ->
           Format.asprintf "%a" Sim.Trace.pp
             cr.Sim.Family.result.Sim.Engine.trace)
    |> String.concat "\n"
  in
  let a1 = render stim_a plan in
  let b1 = render stim_b plan in
  let a2 = render stim_a (Sim.Family_compiled.plan system) in
  let b2 = render stim_b (Sim.Family_compiled.plan system) in
  Alcotest.(check bool) "scenario A reproduces on a reused plan" true
    (a1 = a2);
  Alcotest.(check bool) "scenario B reproduces on a reused plan" true
    (b1 = b2);
  Alcotest.(check bool) "the scenarios differ" true (a1 <> b1)

let test_plan_key () =
  let sys_a = Harness.nested_family_system ~seed:1 in
  let sys_b = Harness.nested_family_system ~seed:2 in
  let plan_a = Sim.Family_compiled.plan sys_a in
  Alcotest.(check string) "plan_key matches the compiled plan's key"
    (Sim.Family_compiled.plan_key sys_a)
    (Sim.Family_compiled.key plan_a);
  Alcotest.(check bool) "different systems, different keys" true
    (Sim.Family_compiled.plan_key sys_a <> Sim.Family_compiled.plan_key sys_b);
  Alcotest.(check int) "configuration count"
    (List.length (Variants.Variant_space.enumerate sys_a))
    (Sim.Family_compiled.configurations plan_a)

let test_degradation_rejected () =
  let system = Harness.family_system ~seed:1 in
  let plan = Sim.Family_compiled.plan system in
  let faults =
    Sim.Fault.plan
      ~degrade:(Sim.Fault.degradation ~fallback:(fun _ _ -> None) ())
      ~seed:7 ()
  in
  let rejected =
    match Sim.Family_compiled.run ~faults plan with
    | (_ : Sim.Family.report) -> false
    | exception Invalid_argument _ -> true
  in
  Alcotest.(check bool) "degradation plans are rejected" true rejected

let suite =
  ( "family_compiled",
    [
      QCheck_alcotest.to_alcotest ~long:false prop_generated_workloads;
      QCheck_alcotest.to_alcotest ~long:false prop_nested_adversarial;
      QCheck_alcotest.to_alcotest ~long:false prop_nested_with_faults;
      QCheck_alcotest.to_alcotest ~long:false prop_narrow_never_worse;
      QCheck_alcotest.to_alcotest ~long:false prop_jobs_invariant;
      Alcotest.test_case "200 seeded workloads, four engines byte-identical"
        `Slow test_200_workloads;
      Alcotest.test_case "headroom agrees with per-config makespans" `Quick
        test_headroom_per_leaf;
      Alcotest.test_case "plans are reusable across scenarios" `Quick
        test_plan_reuse;
      Alcotest.test_case "plan keys are stable and discriminating" `Quick
        test_plan_key;
      Alcotest.test_case "degradation plans are rejected" `Quick
        test_degradation_rejected;
    ] )
