(* Differential proof that the compiled engine (Sim.Compile) is
   observationally identical to the interpreter (Sim.Engine): same trace
   entry for entry and token for token, same final state, same outcome,
   counters and reconfiguration time — across generated workloads,
   policies, fault plans (with degradations and reconfigurations),
   overflow modes, budgets, limits and job-count sweeps. *)

module I = Spi.Ids

(* ------------------------ deep result equality ----------------------- *)

let toks_eq a b =
  List.length a = List.length b && List.for_all2 Spi.Token.equal a b

let moved_eq a b =
  List.length a = List.length b
  && List.for_all2
       (fun (c1, t1) (c2, t2) -> I.Channel_id.equal c1 c2 && toks_eq t1 t2)
       a b

let firing_eq (a : Spi.Semantics.firing) (b : Spi.Semantics.firing) =
  I.Process_id.equal a.process b.process
  && I.Mode_id.equal a.mode b.mode
  && moved_eq a.consumed b.consumed
  && moved_eq a.produced b.produced

let fault_eq (a : Sim.Fault.event) (b : Sim.Fault.event) =
  match (a, b) with
  | ( Token_dropped { channel = c1; token = t1 },
      Token_dropped { channel = c2; token = t2 } )
  | ( Token_corrupted { channel = c1; token = t1 },
      Token_corrupted { channel = c2; token = t2 } )
  | ( Token_duplicated { channel = c1; token = t1 },
      Token_duplicated { channel = c2; token = t2 } ) ->
    I.Channel_id.equal c1 c2 && Spi.Token.equal t1 t2
  | ( Transient_failure { process = p1; mode = m1; retry = r1; backoff = b1 },
      Transient_failure { process = p2; mode = m2; retry = r2; backoff = b2 }
    ) ->
    I.Process_id.equal p1 p2 && I.Mode_id.equal m1 m2 && r1 = r2 && b1 = b2
  | ( Retries_exhausted { process = p1; mode = m1 },
      Retries_exhausted { process = p2; mode = m2 } ) ->
    I.Process_id.equal p1 p2 && I.Mode_id.equal m1 m2
  | Crashed { process = p1 }, Crashed { process = p2 } ->
    I.Process_id.equal p1 p2
  | ( Latency_overrun { process = p1; mode = m1; extra = e1 },
      Latency_overrun { process = p2; mode = m2; extra = e2 } ) ->
    I.Process_id.equal p1 p2 && I.Mode_id.equal m1 m2 && e1 = e2
  | ( Reconfiguration_failed { process = p1; target = t1; latency = l1 },
      Reconfiguration_failed { process = p2; target = t2; latency = l2 } ) ->
    I.Process_id.equal p1 p2 && I.Config_id.equal t1 t2 && l1 = l2
  | ( Degraded { process = p1; from_ = f1; to_ = t1; latency = l1 },
      Degraded { process = p2; from_ = f2; to_ = t2; latency = l2 } ) ->
    I.Process_id.equal p1 p2
    && Option.equal I.Config_id.equal f1 f2
    && I.Config_id.equal t1 t2 && l1 = l2
  | _ -> false

let entry_eq (a : Sim.Trace.entry) (b : Sim.Trace.entry) =
  match (a, b) with
  | ( Injected { time = t1; channel = c1; token = k1 },
      Injected { time = t2; channel = c2; token = k2 } ) ->
    t1 = t2 && I.Channel_id.equal c1 c2 && Spi.Token.equal k1 k2
  | ( Started { time = t1; process = p1; mode = m1; reconfiguration = r1 },
      Started { time = t2; process = p2; mode = m2; reconfiguration = r2 } )
    ->
    t1 = t2
    && I.Process_id.equal p1 p2
    && I.Mode_id.equal m1 m2
    && Option.equal
         (fun (c1, l1) (c2, l2) -> I.Config_id.equal c1 c2 && l1 = l2)
         r1 r2
  | ( Completed { time = t1; started_at = s1; process = p1; firing = f1 },
      Completed { time = t2; started_at = s2; process = p2; firing = f2 } )
    ->
    t1 = t2 && s1 = s2 && I.Process_id.equal p1 p2 && firing_eq f1 f2
  | ( Faulted { time = t1; fault = f1 },
      Faulted { time = t2; fault = f2 } ) ->
    t1 = t2 && fault_eq f1 f2
  | Quiescent { time = t1 }, Quiescent { time = t2 } -> t1 = t2
  | _ -> false

let trace_eq a b = List.length a = List.length b && List.for_all2 entry_eq a b

let state_eq model s1 s2 =
  List.for_all
    (fun c ->
      let cid = Spi.Chan.id c in
      toks_eq (Spi.Semantics.contents s1 cid) (Spi.Semantics.contents s2 cid))
    (Spi.Model.channels model)

let stats_rendering model r =
  Format.asprintf "%a" Sim.Stats.pp (Sim.Stats.of_result model r)

let result_eq model (a : Sim.Engine.result) (b : Sim.Engine.result) =
  trace_eq a.trace b.trace
  && state_eq model a.final_state b.final_state
  && a.end_time = b.end_time
  && a.outcome = b.outcome
  && a.firings = b.firings
  && a.reconfiguration_time = b.reconfiguration_time
  (* byte-level: the rendered trace and stats must match too *)
  && Format.asprintf "%a" Sim.Trace.pp a.trace
     = Format.asprintf "%a" Sim.Trace.pp b.trace
  && stats_rendering model a = stats_rendering model b

let differential ?policy ?limits ?overflow ?(configurations = []) ?stimuli
    ?firing_budget ?faults model =
  (* fault plans carry mutable RNG state: give each engine its own *)
  let interpreted =
    Sim.Engine.run ?policy ?limits ?overflow ~configurations ?stimuli
      ?firing_budget ?faults model
  in
  let plan = Sim.Compile.compile ~configurations model in
  let compiled =
    Sim.Compile.run ?policy ?limits ?overflow ?stimuli ?firing_budget ?faults
      plan
  in
  result_eq model interpreted compiled

(* --------------------------- qcheck properties ----------------------- *)

let prop_generated_workloads =
  QCheck.Test.make ~name:"compiled = interpreted (generated workloads)"
    ~count:60
    QCheck.(int_range 0 9999)
    (fun seed ->
      let model = Harness.sim_model ~seed in
      let stimuli = Harness.sim_stimuli model in
      List.for_all
        (fun policy -> differential ~policy ~stimuli model)
        [ Sim.Engine.Best_case; Sim.Engine.Typical; Sim.Engine.Worst_case ])

let prop_generated_with_faults =
  QCheck.Test.make ~name:"compiled = interpreted (fault plans)" ~count:40
    QCheck.(int_range 0 9999)
    (fun seed ->
      let model = Harness.sim_model ~seed in
      let stimuli = Harness.sim_stimuli ~tokens:5 model in
      let faults = Harness.sim_fault_plan ~seed model in
      differential ~stimuli ~faults model)

let prop_video_campaign =
  QCheck.Test.make
    ~name:"compiled = interpreted (video faults + reconfigurations)"
    ~count:8
    QCheck.(int_range 1 500)
    (fun seed ->
      let built = Video.System.build Video.System.default_params in
      let stimuli =
        Video.Scenario.switching_demo ~frames:25 ~period:5
          ~switches:[ (32, "fB"); (70, "fA") ]
          ()
      in
      let faults =
        Video.Scenario.fault_plan ~drop_probability:0.05
          ~transient_probability:0.08 ~seed built
      in
      differential
        ~configurations:built.Video.System.configurations
        ~stimuli ~faults built.Video.System.model)

let prop_limits_and_budgets =
  QCheck.Test.make ~name:"compiled = interpreted (limits, budgets)" ~count:20
    QCheck.(pair (int_range 0 999) (int_range 1 30))
    (fun (seed, max_firings) ->
      let model = Harness.sim_model ~seed in
      let stimuli = Harness.sim_stimuli ~tokens:4 model in
      let limits = { Sim.Engine.max_time = 200; max_firings } in
      let firing_budget =
        List.filteri
          (fun i _ -> i mod 2 = 0)
          (List.map
             (fun p -> (Spi.Process.id p, 1 + (seed mod 3)))
             (Spi.Model.processes model))
      in
      differential ~limits ~stimuli ~firing_budget model)

(* The faultsim campaign shape: many seeds fanned over the work-stealing
   pool, each compiled run compared against an interpreted reference —
   and the whole campaign must be job-count invariant. *)
let prop_jobs_sweep =
  QCheck.Test.make ~name:"compiled campaign is job-count invariant" ~count:4
    QCheck.(int_range 4 8)
    (fun seeds ->
      let built = Video.System.build Video.System.default_params in
      let stimuli =
        Video.Scenario.switching_demo ~frames:15 ~period:5
          ~switches:[ (32, "fB") ]
          ()
      in
      let plan =
        Sim.Compile.compile
          ~configurations:built.Video.System.configurations
          built.Video.System.model
      in
      let compiled_seed seed =
        let faults =
          Video.Scenario.fault_plan ~drop_probability:0.03
            ~transient_probability:0.05 ~seed built
        in
        Format.asprintf "%a"
          Sim.Trace.pp
          (Sim.Compile.run ~stimuli ~faults plan).Sim.Engine.trace
      in
      let interpreted_seed seed =
        let faults =
          Video.Scenario.fault_plan ~drop_probability:0.03
            ~transient_probability:0.05 ~seed built
        in
        Format.asprintf "%a" Sim.Trace.pp
          (Sim.Engine.run
             ~configurations:built.Video.System.configurations
             ~stimuli ~faults built.Video.System.model)
            .Sim.Engine.trace
      in
      let seed_ids = Array.init seeds (fun i -> i + 1) in
      let reference = Array.map interpreted_seed seed_ids in
      List.for_all
        (fun jobs ->
          Synth.Par.map ~jobs compiled_seed seed_ids = reference)
        [ 1; 2; 4 ])

(* ------------------------------ unit tests --------------------------- *)

(* The acceptance sweep: 200 seeded workloads mixing policies and fault
   plans, every one byte-identical across the two engines. *)
let test_200_workloads () =
  for seed = 0 to 199 do
    let model = Harness.sim_model ~seed in
    let stimuli = Harness.sim_stimuli model in
    let policy =
      match seed mod 3 with
      | 0 -> Sim.Engine.Best_case
      | 1 -> Sim.Engine.Typical
      | _ -> Sim.Engine.Worst_case
    in
    let faults =
      if seed mod 2 = 1 then Some (Harness.sim_fault_plan ~seed model)
      else None
    in
    Alcotest.(check bool)
      (Format.sprintf "workload %d" seed)
      true
      (differential ~policy ~stimuli ?faults model)
  done

let overflow_model () =
  let c = I.Channel_id.of_string "c" in
  let src = I.Process_id.of_string "src" in
  let model =
    Spi.Model.build_exn
      ~channels:[ Spi.Chan.queue ~capacity:1 c ]
      ~processes:
        [
          Spi.Process.simple ~latency:(Interval.point 1) ~consumes:[]
            ~produces:[ (c, Spi.Mode.produce (Interval.point 2)) ]
            src;
        ]
  in
  (model, c, src)

let test_overflow_reject () =
  let model, c, src = overflow_model () in
  let budget = [ (src, 1) ] in
  let run_with engine =
    match engine ~firing_budget:budget model with
    | (_ : Sim.Engine.result) -> None
    | exception Spi.Semantics.Channel_overflow cid -> Some cid
  in
  let interp =
    run_with (fun ~firing_budget model -> Sim.Engine.run ~firing_budget model)
  in
  let compiled =
    run_with (fun ~firing_budget model ->
        Sim.Compile.run ~firing_budget (Sim.Compile.compile model))
  in
  Alcotest.(check bool) "both overflow on the same channel" true
    (Option.equal I.Channel_id.equal interp compiled
    && interp = Some c)

let test_overflow_drop_newest () =
  let model, _, src = overflow_model () in
  Alcotest.(check bool) "drop-newest identical" true
    (differential ~overflow:Spi.Semantics.Drop_newest
       ~firing_budget:[ (src, 2) ]
       model)

let test_plan_reuse () =
  let built = Video.System.build Video.System.default_params in
  let stimuli =
    Video.Scenario.switching_demo ~frames:20 ~period:5 ~switches:[ (32, "fB") ]
      ()
  in
  let plan =
    Sim.Compile.compile ~configurations:built.Video.System.configurations
      built.Video.System.model
  in
  let run () = Sim.Compile.run ~stimuli plan in
  let a = run () and b = run () in
  Alcotest.(check bool) "a plan is reusable" true
    (result_eq built.Video.System.model a b)

let test_key_stability () =
  let built = Video.System.build Video.System.default_params in
  let key () =
    Sim.Compile.key
      (Sim.Compile.compile ~configurations:built.Video.System.configurations
         built.Video.System.model)
  in
  Alcotest.(check string) "key is deterministic" (key ()) (key ());
  let other = Sim.Compile.key (Sim.Compile.compile (Harness.sim_model ~seed:7)) in
  Alcotest.(check bool) "distinct models get distinct keys" true
    (key () <> other)

let suite =
  ( "compile",
    [
      QCheck_alcotest.to_alcotest ~long:false prop_generated_workloads;
      QCheck_alcotest.to_alcotest ~long:false prop_generated_with_faults;
      QCheck_alcotest.to_alcotest ~long:false prop_video_campaign;
      QCheck_alcotest.to_alcotest ~long:false prop_limits_and_budgets;
      QCheck_alcotest.to_alcotest ~long:false prop_jobs_sweep;
      Alcotest.test_case "200 seeded workloads are byte-identical" `Slow
        test_200_workloads;
      Alcotest.test_case "overflow: Reject raises identically" `Quick
        test_overflow_reject;
      Alcotest.test_case "overflow: Drop_newest identical" `Quick
        test_overflow_drop_newest;
      Alcotest.test_case "compiled plans are reusable" `Quick test_plan_reuse;
      Alcotest.test_case "plan keys are stable" `Quick test_key_stability;
    ] )
