(* The bench-trajectory regression gate: parsing of bench-explore/v1
   records and the two failure arms (cost divergence across job counts,
   aggregate speedup regression past the tolerance). *)

module T = Trajectory

let record ?(label = "") ?(name = "w") ?(speedup = 2.0) ?sim ?family
    ?family_compiled ?(costs = [ 34; 34; 34 ]) () =
  {
    T.label;
    max_jobs = 4;
    aggregate_speedup = speedup;
    workloads =
      [
        {
          T.w_name = name;
          speedup;
          sim_speedup = sim;
          family_speedup = family;
          family_compiled_speedup = family_compiled;
          runs =
            List.mapi
              (fun i c ->
                {
                  T.jobs = (match i with 0 -> 1 | 1 -> 2 | _ -> 4);
                  wall_s = 0.1 /. float_of_int (i + 1);
                  cost = Some c;
                })
              costs;
        };
      ];
  }

let check = T.check ~tolerance:0.3

let test_pass () =
  match
    check ~baseline:(Some (record ~speedup:2.0 ())) ~fresh:(record ~speedup:1.8 ()) ()
  with
  | Ok _ -> ()
  | Error fs -> Alcotest.failf "expected pass, got: %s" (String.concat "; " fs)

let test_no_baseline () =
  match check ~baseline:None ~fresh:(record ()) () with
  | Ok summary ->
    Alcotest.(check bool) "summary mentions missing baseline" true
      (String.length summary > 0)
  | Error fs -> Alcotest.failf "expected pass, got: %s" (String.concat "; " fs)

let test_fails_on_regression () =
  (* fabricated regressed record: the baseline explored at 10x, the
     fresh record limps at 1x — far below the 30% budget *)
  match
    check ~baseline:(Some (record ~speedup:10.0 ())) ~fresh:(record ~speedup:1.0 ()) ()
  with
  | Ok s -> Alcotest.failf "regressed record passed the gate: %s" s
  | Error fs ->
    Alcotest.(check bool) "failure names the speedup regression" true
      (List.exists
         (fun f ->
           let has_sub sub =
             let n = String.length sub and m = String.length f in
             let rec go i = i + n <= m && (String.sub f i n = sub || go (i + 1)) in
             go 0
           in
           has_sub "speedup regressed")
         fs)

let test_within_tolerance () =
  (* 25% down is inside the 30% budget *)
  match
    check ~baseline:(Some (record ~speedup:2.0 ())) ~fresh:(record ~speedup:1.5 ()) ()
  with
  | Ok _ -> ()
  | Error fs -> Alcotest.failf "expected pass, got: %s" (String.concat "; " fs)

let test_fails_on_divergent_costs () =
  match
    check
      ~baseline:(Some (record ()))
      ~fresh:(record ~costs:[ 34; 34; 38 ] ())
      ()
  with
  | Ok s -> Alcotest.failf "divergent costs passed the gate: %s" s
  | Error fs ->
    Alcotest.(check bool) "at least one failure" true (List.length fs >= 1)

let test_divergence_without_baseline () =
  (* the cost arm must fire even on the very first record *)
  match check ~baseline:None ~fresh:(record ~costs:[ 34; 35; 34 ] ()) () with
  | Ok s -> Alcotest.failf "divergent costs passed without baseline: %s" s
  | Error _ -> ()

let test_different_workload_sets () =
  (* a tiny CI record against a committed full-size record: wall times
     are incomparable, only the cost arm applies *)
  match
    check
      ~baseline:(Some (record ~name:"full" ~speedup:10.0 ()))
      ~fresh:(record ~name:"tiny" ~speedup:0.5 ())
      ()
  with
  | Ok _ -> ()
  | Error fs -> Alcotest.failf "expected pass, got: %s" (String.concat "; " fs)

let has_sub f sub =
  let n = String.length sub and m = String.length f in
  let rec go i = i + n <= m && (String.sub f i n = sub || go (i + 1)) in
  go 0

(* ------------------- mixed-version trajectories --------------------- *)

(* A baseline written before the sim/family fields existed must not make
   the gate crash or fail: the per-field arms are skipped. *)
let test_old_baseline_skips_new_fields () =
  match
    check
      ~baseline:(Some (record ~speedup:2.0 ()))
      ~fresh:(record ~speedup:1.9 ~sim:5.0 ~family:3.0 ~family_compiled:6.0 ())
      ()
  with
  | Ok summary ->
    Alcotest.(check bool) "summary says the field was not gated" true
      (has_sub summary "not gated")
  | Error fs -> Alcotest.failf "expected pass, got: %s" (String.concat "; " fs)

(* The converse mix: a fresh record without the fields against a
   baseline that has them — also a skip, not a crash. *)
let test_old_fresh_skips_new_fields () =
  match
    check
      ~baseline:
        (Some (record ~speedup:2.0 ~sim:5.0 ~family:3.0 ~family_compiled:6.0 ()))
      ~fresh:(record ~speedup:1.9 ())
      ()
  with
  | Ok _ -> ()
  | Error fs -> Alcotest.failf "expected pass, got: %s" (String.concat "; " fs)

let test_family_gate_fires () =
  match
    check
      ~baseline:(Some (record ~family:4.0 ()))
      ~fresh:(record ~family:1.0 ())
      ()
  with
  | Ok s -> Alcotest.failf "regressed family speedup passed: %s" s
  | Error fs ->
    Alcotest.(check bool) "failure names the family arm" true
      (List.exists (fun f -> has_sub f "family speedup regressed") fs)

let test_family_compiled_gate_fires () =
  match
    check
      ~baseline:(Some (record ~family_compiled:8.0 ()))
      ~fresh:(record ~family_compiled:1.0 ())
      ()
  with
  | Ok s -> Alcotest.failf "regressed family_compiled speedup passed: %s" s
  | Error fs ->
    Alcotest.(check bool) "failure names the family_compiled arm" true
      (List.exists (fun f -> has_sub f "family_compiled speedup regressed") fs)

let test_sim_gate_fires () =
  match
    check ~baseline:(Some (record ~sim:6.0 ())) ~fresh:(record ~sim:1.0 ()) ()
  with
  | Ok s -> Alcotest.failf "regressed sim speedup passed: %s" s
  | Error fs ->
    Alcotest.(check bool) "failure names the sim arm" true
      (List.exists (fun f -> has_sub f "sim speedup regressed") fs)

let test_family_within_tolerance () =
  match
    check
      ~baseline:(Some (record ~sim:2.0 ~family:2.0 ()))
      ~fresh:(record ~sim:1.6 ~family:1.5 ())
      ()
  with
  | Ok _ -> ()
  | Error fs -> Alcotest.failf "expected pass, got: %s" (String.concat "; " fs)

let sample_json =
  {|[
  {
    "schema": "bench-explore/v1",
    "timestamp": 1754000000,
    "label": "seed",
    "max_jobs": 4,
    "workloads": [
      {
        "name": "table1",
        "processes": 4,
        "applications": 2,
        "capacity": 100,
        "runs": [
          {"jobs": 1, "wall_s": 0.4, "cost": 41, "explored": 10, "pruned": 3},
          {"jobs": 2, "wall_s": 0.25, "cost": 41, "explored": 12, "pruned": 4},
          {"jobs": 4, "wall_s": 0.1, "cost": 41, "explored": 15, "pruned": 5}
        ],
        "speedup_max_jobs": 4.0,
        "costs_identical": true
      }
    ],
    "aggregate": {"wall_s_jobs1": 0.4, "wall_s_max_jobs": 0.1, "speedup_max_jobs": 4.0},
    "metrics": {"schema": "obs/v1", "counters": {"explore.solves": 9}}
  }
]|}

let test_parse_record () =
  match T.records_of_string sample_json with
  | Error e -> Alcotest.failf "parse failed: %s" e
  | Ok [ r ] ->
    Alcotest.(check string) "label" "seed" r.T.label;
    Alcotest.(check int) "max_jobs" 4 r.T.max_jobs;
    Alcotest.(check (float 1e-9)) "aggregate" 4.0 r.T.aggregate_speedup;
    (match r.T.workloads with
    | [ w ] ->
      Alcotest.(check string) "workload name" "table1" w.T.w_name;
      Alcotest.(check int) "runs" 3 (List.length w.T.runs);
      Alcotest.(check (list (option int)))
        "costs"
        [ Some 41; Some 41; Some 41 ]
        (List.map (fun r -> r.T.cost) w.T.runs);
      (* a record from before the sim/family fields existed *)
      Alcotest.(check (option (float 1e-9))) "no sim field" None w.T.sim_speedup;
      Alcotest.(check (option (float 1e-9)))
        "no family field" None w.T.family_speedup;
      Alcotest.(check (option (float 1e-9)))
        "no family_compiled field" None w.T.family_compiled_speedup
    | ws -> Alcotest.failf "expected 1 workload, got %d" (List.length ws))
  | Ok rs -> Alcotest.failf "expected 1 record, got %d" (List.length rs)

let sample_json_with_fields =
  {|[
  {
    "schema": "bench-explore/v1",
    "timestamp": 1754600000,
    "max_jobs": 4,
    "workloads": [
      {
        "name": "table1",
        "runs": [
          {"jobs": 1, "wall_s": 0.4, "cost": 41},
          {"jobs": 4, "wall_s": 0.1, "cost": 41}
        ],
        "speedup_max_jobs": 4.0,
        "sim": {"interpreted_wall_s": 0.2, "compiled_wall_s": 0.05, "compile_s": 0.01, "speedup": 4.0},
        "family": {"npass_wall_s": 0.3, "family_wall_s": 0.12, "configs": 2, "speedup": 2.5},
        "family_compiled": {"npass_wall_s": 0.3, "family_wall_s": 0.05, "configs": 2, "speedup": 6.0}
      }
    ],
    "aggregate": {"wall_s_jobs1": 0.4, "wall_s_max_jobs": 0.1, "speedup_max_jobs": 4.0},
    "metrics": {}
  }
]|}

let test_parse_sim_and_family_fields () =
  match T.records_of_string sample_json_with_fields with
  | Error e -> Alcotest.failf "parse failed: %s" e
  | Ok [ { T.workloads = [ w ]; _ } ] ->
    Alcotest.(check (option (float 1e-9))) "sim" (Some 4.0) w.T.sim_speedup;
    Alcotest.(check (option (float 1e-9)))
      "family" (Some 2.5) w.T.family_speedup;
    Alcotest.(check (option (float 1e-9)))
      "family_compiled" (Some 6.0) w.T.family_compiled_speedup
  | Ok _ -> Alcotest.fail "expected 1 record with 1 workload"

let test_parse_rejects_bad_schema () =
  let bad = {|[{"schema": "bench-explore/v2", "max_jobs": 1}]|} in
  match T.records_of_string bad with
  | Ok _ -> Alcotest.fail "unknown schema accepted"
  | Error _ -> ()

let suite =
  ( "trajectory",
    [
      Alcotest.test_case "gate passes on a healthy record" `Quick test_pass;
      Alcotest.test_case "first record has no baseline" `Quick test_no_baseline;
      Alcotest.test_case "gate fails on a regressed record" `Quick
        test_fails_on_regression;
      Alcotest.test_case "25% regression is inside the budget" `Quick
        test_within_tolerance;
      Alcotest.test_case "gate fails on divergent costs" `Quick
        test_fails_on_divergent_costs;
      Alcotest.test_case "cost arm fires without a baseline" `Quick
        test_divergence_without_baseline;
      Alcotest.test_case "different workload sets skip the speedup arm" `Quick
        test_different_workload_sets;
      Alcotest.test_case "parses bench-explore/v1" `Quick test_parse_record;
      Alcotest.test_case "rejects unknown schemas" `Quick
        test_parse_rejects_bad_schema;
      Alcotest.test_case "old baseline skips the sim/family arms" `Quick
        test_old_baseline_skips_new_fields;
      Alcotest.test_case "old fresh record skips the sim/family arms" `Quick
        test_old_fresh_skips_new_fields;
      Alcotest.test_case "family arm fires on regression" `Quick
        test_family_gate_fires;
      Alcotest.test_case "family_compiled arm fires on regression" `Quick
        test_family_compiled_gate_fires;
      Alcotest.test_case "sim arm fires on regression" `Quick
        test_sim_gate_fires;
      Alcotest.test_case "sim/family regressions inside the budget pass"
        `Quick test_family_within_tolerance;
      Alcotest.test_case "parses the sim and family speedup fields" `Quick
        test_parse_sim_and_family_fields;
    ] )
