(* End-to-end tests against the paper's own artifacts: the Figure 1
   numbers, the Figure 2/3 system behaviour, and run-time variant
   selection semantics. *)

module I = Spi.Ids
module F1 = Paper.Figure1
module F2 = Paper.Figure2

let test_figure1_parameters () =
  let model = F1.model in
  let p2 = Spi.Model.get_process F1.p2 model in
  Alcotest.(check int) "p2 has two modes" 2 (List.length (Spi.Process.modes p2));
  Alcotest.(check bool) "latency [3,5]" true
    (Interval.equal (Spi.Process.latency_hull p2) (Interval.make 3 5));
  Alcotest.(check bool) "consumption [1,3]" true
    (Interval.equal (Spi.Process.consumption_hull p2 F1.c1) (Interval.make 1 3));
  Alcotest.(check bool) "production [2,5]" true
    (Interval.equal (Spi.Process.production_hull p2 F1.c2) (Interval.make 2 5));
  let p1 = Spi.Model.get_process F1.p1 model in
  Alcotest.(check bool) "p1 latency 1" true
    (Interval.equal (Spi.Process.latency_hull p1) (Interval.point 1));
  Alcotest.(check bool) "p1 produces 2" true
    (Interval.equal (Spi.Process.production_hull p1 F1.c1) (Interval.point 2))

let test_figure1_mode_selection () =
  (* 'a'-tagged data activates m1, 'b'-tagged (3 tokens) activates m2 *)
  let result =
    Sim.Engine.run ~policy:Sim.Engine.Worst_case ~stimuli:(F1.stimuli_mixed ~n:6)
      F1.model
  in
  let p2_modes =
    List.filter_map
      (function
        | Sim.Trace.Started { process; mode; _ }
          when I.Process_id.equal process F1.p2 ->
          Some (I.Mode_id.to_string mode)
        | Sim.Trace.Started _ | Sim.Trace.Injected _ | Sim.Trace.Completed _
        | Sim.Trace.Faulted _ | Sim.Trace.Quiescent _ -> None)
      result.Sim.Engine.trace
  in
  Alcotest.(check bool) "m1 used" true (List.mem "m1" p2_modes);
  Alcotest.(check bool) "m2 used" true (List.mem "m2" p2_modes);
  Alcotest.(check bool) "quiescent" true
    (result.Sim.Engine.outcome = Sim.Engine.Quiescent)

let test_figure1_no_tag_no_activation () =
  (* untagged tokens never activate p2 ("no activation rule is enabled
     and the process is not activated") *)
  let stimuli =
    [ { Sim.Engine.at = 1; channel = F1.c0; token = Spi.Token.plain } ]
  in
  let result = Sim.Engine.run ~stimuli F1.model in
  Alcotest.(check int) "p1 never fires on untagged input" 0
    (List.length (Sim.Trace.starts ~process:F1.p1 result.Sim.Engine.trace))

let test_figure2_system_validates () =
  Alcotest.(check int) "figure2 valid" 0
    (List.length (Variants.System.validate F2.system));
  Alcotest.(check int) "figure3 valid" 0
    (List.length (Variants.System.validate F2.system_with_selection))

let test_figure3_runtime_selection_v1 () =
  let model, configurations = Variants.Flatten.abstract F2.system_with_selection in
  let stimuli =
    {
      Sim.Engine.at = 0;
      channel = F2.cv;
      token = Spi.Token.make ~tags:(Spi.Tag.Set.singleton F2.tag_v1) ();
    }
    :: List.init 4 (fun i ->
           {
             Sim.Engine.at = 2 + (4 * i);
             channel = F2.cx;
             token = Spi.Token.make ~payload:(i + 1) ();
           })
  in
  let result =
    Sim.Engine.run ~configurations ~stimuli ~firing_budget:[ (F2.p_user, 0) ] model
  in
  (* initial configuration is already g1: selecting V1 never reconfigures *)
  Alcotest.(check int) "no reconfiguration" 0
    (List.length (Sim.Trace.reconfigurations result.Sim.Engine.trace));
  Alcotest.(check int) "all data delivered" 4
    (List.length (Sim.Trace.tokens_produced_on F2.cy result.Sim.Engine.trace))

let test_figure3_runtime_selection_v2 () =
  let model, configurations = Variants.Flatten.abstract F2.system_with_selection in
  let stimuli =
    {
      Sim.Engine.at = 0;
      channel = F2.cv;
      token = Spi.Token.make ~tags:(Spi.Tag.Set.singleton F2.tag_v2) ();
    }
    :: List.init 4 (fun i ->
           {
             Sim.Engine.at = 2 + (4 * i);
             channel = F2.cx;
             token = Spi.Token.make ~payload:(i + 1) ();
           })
  in
  let result =
    Sim.Engine.run ~configurations ~stimuli ~firing_budget:[ (F2.p_user, 0) ] model
  in
  (* switching to g2 pays t_conf = 7 exactly once (run-time variant:
     selected at start-up, then fixed) *)
  (match Sim.Trace.reconfigurations result.Sim.Engine.trace with
  | [ (_, _, config, latency) ] ->
    Alcotest.(check string) "to conf.g2" "conf.g2" (I.Config_id.to_string config);
    Alcotest.(check int) "t_conf 7" 7 latency
  | l -> Alcotest.failf "expected one reconfiguration, got %d" (List.length l));
  Alcotest.(check int) "reconf time" 7 result.Sim.Engine.reconfiguration_time;
  Alcotest.(check int) "all data delivered" 4
    (List.length (Sim.Trace.tokens_produced_on F2.cy result.Sim.Engine.trace))

let test_figure2_flatten_equals_direct_build () =
  (* flattening with g1 produces exactly the application-1 process set *)
  let model =
    Variants.Flatten.flatten F2.system
      (Variants.Flatten.choice_of_list [ ("iface1", "g1") ])
  in
  let names =
    List.sort compare
      (List.map (fun p -> I.Process_id.to_string (Spi.Process.id p))
         (Spi.Model.processes model))
  in
  Alcotest.(check (list string)) "process set"
    [ "PA"; "PB"; "iface1.x1"; "iface1.x2" ]
    names

let test_figure2_app_data_flow () =
  (* the derived application actually computes: tokens flow CX -> CY *)
  let model =
    Variants.Flatten.flatten F2.system
      (Variants.Flatten.choice_of_list [ ("iface1", "g2") ])
  in
  let stimuli =
    List.init 3 (fun i ->
        {
          Sim.Engine.at = 1 + (2 * i);
          channel = F2.cx;
          token = Spi.Token.make ~payload:(i + 1) ();
        })
  in
  let result = Sim.Engine.run ~stimuli model in
  let payloads =
    List.filter_map
      (fun (_, tok) -> Spi.Token.payload tok)
      (Sim.Trace.tokens_produced_on F2.cy result.Sim.Engine.trace)
  in
  Alcotest.(check (list int)) "pipeline order preserved" [ 1; 2; 3 ] payloads

let suite =
  ( "paper",
    [
      Alcotest.test_case "figure1 parameters" `Quick test_figure1_parameters;
      Alcotest.test_case "figure1 mode selection" `Quick
        test_figure1_mode_selection;
      Alcotest.test_case "figure1 no tag, no activation" `Quick
        test_figure1_no_tag_no_activation;
      Alcotest.test_case "figure2 validates" `Quick test_figure2_system_validates;
      Alcotest.test_case "figure3 select V1 (no reconf)" `Quick
        test_figure3_runtime_selection_v1;
      Alcotest.test_case "figure3 select V2 (one reconf)" `Quick
        test_figure3_runtime_selection_v2;
      Alcotest.test_case "figure2 flatten process set" `Quick
        test_figure2_flatten_equals_direct_build;
      Alcotest.test_case "figure2 application data flow" `Quick
        test_figure2_app_data_flow;
    ] )
