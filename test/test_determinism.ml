(* Determinism and consistency properties of the simulator. *)

module I = Spi.Ids

let trace_signature (result : Sim.Engine.result) =
  List.map
    (fun entry ->
      match entry with
      | Sim.Trace.Injected { time; channel; _ } ->
        Format.asprintf "i:%d:%a" time I.Channel_id.pp channel
      | Sim.Trace.Started { time; process; mode; _ } ->
        Format.asprintf "s:%d:%a:%a" time I.Process_id.pp process
          I.Mode_id.pp mode
      | Sim.Trace.Completed { time; process; _ } ->
        Format.asprintf "c:%d:%a" time I.Process_id.pp process
      | Sim.Trace.Faulted { time; fault } ->
        Format.asprintf "f:%d:%s" time (Sim.Fault.event_kind fault)
      | Sim.Trace.Quiescent { time } -> Format.sprintf "q:%d" time)
    result.Sim.Engine.trace

let prop_engine_deterministic =
  QCheck.Test.make ~name:"engine is deterministic" ~count:30
    QCheck.(pair (int_range 0 999) (int_range 1 3))
    (fun (seed, sites) ->
      let system =
        Variants.Generator.generate
          {
            Variants.Generator.seed;
            shared_processes = 2;
            sites;
            variants_per_site = 2;
            cluster_processes = 2;
            latency_range = (1, 8);
          }
      in
      let model =
        Variants.Flatten.flatten system (Variants.Flatten.first_cluster system)
      in
      let inputs = Spi.Model.unwritten_channels model in
      let stimuli =
        List.concat_map
          (fun cid ->
            List.init 3 (fun i ->
                {
                  Sim.Engine.at = 1 + (4 * i);
                  channel = cid;
                  token = Spi.Token.make ~payload:i ();
                }))
          (I.Channel_id.Set.elements inputs)
      in
      let run () = Sim.Engine.run ~stimuli model in
      trace_signature (run ()) = trace_signature (run ()))

let prop_sim_matches_untimed_firing_count =
  (* for an acyclic single-token pipeline, the timed engine performs the
     same number of firings as repeatedly applying the untimed update
     rules to saturation *)
  QCheck.Test.make ~name:"timed firings = untimed firings" ~count:30
    QCheck.(pair (int_range 0 999) (int_range 1 4))
    (fun (seed, cluster_processes) ->
      let system =
        Variants.Generator.generate
          {
            Variants.Generator.seed;
            shared_processes = 2;
            sites = 1;
            variants_per_site = 2;
            cluster_processes;
            latency_range = (1, 5);
          }
      in
      let model =
        Variants.Flatten.flatten system (Variants.Flatten.first_cluster system)
      in
      let inputs = Spi.Model.unwritten_channels model in
      let n_tokens = 2 in
      let stimuli =
        List.concat_map
          (fun cid ->
            List.init n_tokens (fun i ->
                { Sim.Engine.at = 1 + i; channel = cid; token = Spi.Token.plain }))
          (I.Channel_id.Set.elements inputs)
      in
      let timed = (Sim.Engine.run ~stimuli model).Sim.Engine.firings in
      (* untimed: inject everything, then fire any enabled process until
         quiescence *)
      let state =
        ref
          (List.fold_left
             (fun st s -> Spi.Semantics.inject model s.Sim.Engine.channel s.Sim.Engine.token st)
             (Spi.Semantics.initial model)
             stimuli)
      in
      let fired = ref 0 in
      let progress = ref true in
      while !progress do
        progress := false;
        List.iter
          (fun proc ->
            let pid = Spi.Process.id proc in
            match Spi.Semantics.enabled_mode model !state pid with
            | Some mode ->
              let st, _ = Spi.Semantics.fire model pid mode !state in
              state := st;
              incr fired;
              progress := true
            | None -> ())
          (Spi.Model.processes model)
      done;
      timed = !fired)

let prop_policy_monotone_makespan =
  QCheck.Test.make ~name:"best <= typical <= worst makespan" ~count:30
    QCheck.(int_range 0 999)
    (fun seed ->
      let system =
        Variants.Generator.generate
          {
            Variants.Generator.seed;
            shared_processes = 3;
            sites = 1;
            variants_per_site = 2;
            cluster_processes = 3;
            latency_range = (1, 20);
          }
      in
      let model =
        Variants.Flatten.flatten system (Variants.Flatten.first_cluster system)
      in
      let inputs = Spi.Model.unwritten_channels model in
      let stimuli =
        List.map
          (fun cid -> { Sim.Engine.at = 1; channel = cid; token = Spi.Token.plain })
          (I.Channel_id.Set.elements inputs)
      in
      let span policy = (Sim.Engine.run ~policy ~stimuli model).Sim.Engine.end_time in
      let b = span Sim.Engine.Best_case
      and t = span Sim.Engine.Typical
      and w = span Sim.Engine.Worst_case in
      b <= t && t <= w)

let suite =
  ( "determinism",
    [
      QCheck_alcotest.to_alcotest ~long:false prop_engine_deterministic;
      QCheck_alcotest.to_alcotest ~long:false prop_sim_matches_untimed_firing_count;
      QCheck_alcotest.to_alcotest ~long:false prop_policy_monotone_makespan;
    ] )
