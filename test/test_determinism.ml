(* Determinism and consistency properties of the simulator. *)

module I = Spi.Ids

let trace_signature (result : Sim.Engine.result) =
  List.map
    (fun entry ->
      match entry with
      | Sim.Trace.Injected { time; channel; _ } ->
        Format.asprintf "i:%d:%a" time I.Channel_id.pp channel
      | Sim.Trace.Started { time; process; mode; _ } ->
        Format.asprintf "s:%d:%a:%a" time I.Process_id.pp process
          I.Mode_id.pp mode
      | Sim.Trace.Completed { time; process; _ } ->
        Format.asprintf "c:%d:%a" time I.Process_id.pp process
      | Sim.Trace.Faulted { time; fault } ->
        Format.asprintf "f:%d:%s" time (Sim.Fault.event_kind fault)
      | Sim.Trace.Quiescent { time } -> Format.sprintf "q:%d" time)
    result.Sim.Engine.trace

let prop_engine_deterministic =
  QCheck.Test.make ~name:"engine is deterministic" ~count:30
    QCheck.(pair (int_range 0 999) (int_range 1 3))
    (fun (seed, sites) ->
      let system =
        Variants.Generator.generate
          {
            Variants.Generator.seed;
            shared_processes = 2;
            sites;
            variants_per_site = 2;
            cluster_processes = 2;
            latency_range = (1, 8);
          }
      in
      let model =
        Variants.Flatten.flatten system (Variants.Flatten.first_cluster system)
      in
      let inputs = Spi.Model.unwritten_channels model in
      let stimuli =
        List.concat_map
          (fun cid ->
            List.init 3 (fun i ->
                {
                  Sim.Engine.at = 1 + (4 * i);
                  channel = cid;
                  token = Spi.Token.make ~payload:i ();
                }))
          (I.Channel_id.Set.elements inputs)
      in
      let run () = Sim.Engine.run ~stimuli model in
      trace_signature (run ()) = trace_signature (run ()))

let prop_sim_matches_untimed_firing_count =
  (* for an acyclic single-token pipeline, the timed engine performs the
     same number of firings as repeatedly applying the untimed update
     rules to saturation *)
  QCheck.Test.make ~name:"timed firings = untimed firings" ~count:30
    QCheck.(pair (int_range 0 999) (int_range 1 4))
    (fun (seed, cluster_processes) ->
      let system =
        Variants.Generator.generate
          {
            Variants.Generator.seed;
            shared_processes = 2;
            sites = 1;
            variants_per_site = 2;
            cluster_processes;
            latency_range = (1, 5);
          }
      in
      let model =
        Variants.Flatten.flatten system (Variants.Flatten.first_cluster system)
      in
      let inputs = Spi.Model.unwritten_channels model in
      let n_tokens = 2 in
      let stimuli =
        List.concat_map
          (fun cid ->
            List.init n_tokens (fun i ->
                { Sim.Engine.at = 1 + i; channel = cid; token = Spi.Token.plain }))
          (I.Channel_id.Set.elements inputs)
      in
      let timed = (Sim.Engine.run ~stimuli model).Sim.Engine.firings in
      (* untimed: inject everything, then fire any enabled process until
         quiescence *)
      let state =
        ref
          (List.fold_left
             (fun st s -> Spi.Semantics.inject model s.Sim.Engine.channel s.Sim.Engine.token st)
             (Spi.Semantics.initial model)
             stimuli)
      in
      let fired = ref 0 in
      let progress = ref true in
      while !progress do
        progress := false;
        List.iter
          (fun proc ->
            let pid = Spi.Process.id proc in
            match Spi.Semantics.enabled_mode model !state pid with
            | Some mode ->
              let st, _ = Spi.Semantics.fire model pid mode !state in
              state := st;
              incr fired;
              progress := true
            | None -> ())
          (Spi.Model.processes model)
      done;
      timed = !fired)

let prop_policy_monotone_makespan =
  QCheck.Test.make ~name:"best <= typical <= worst makespan" ~count:30
    QCheck.(int_range 0 999)
    (fun seed ->
      let system =
        Variants.Generator.generate
          {
            Variants.Generator.seed;
            shared_processes = 3;
            sites = 1;
            variants_per_site = 2;
            cluster_processes = 3;
            latency_range = (1, 20);
          }
      in
      let model =
        Variants.Flatten.flatten system (Variants.Flatten.first_cluster system)
      in
      let inputs = Spi.Model.unwritten_channels model in
      let stimuli =
        List.map
          (fun cid -> { Sim.Engine.at = 1; channel = cid; token = Spi.Token.plain })
          (I.Channel_id.Set.elements inputs)
      in
      let span policy = (Sim.Engine.run ~policy ~stimuli model).Sim.Engine.end_time in
      let b = span Sim.Engine.Best_case
      and t = span Sim.Engine.Typical
      and w = span Sim.Engine.Worst_case in
      b <= t && t <= w)

(* Fault-campaign determinism across the work-stealing pool: the
   faultsim CLI fans independent seeds out with {!Synth.Par.map} and
   prints in seed order afterwards, so the per-seed report lines must be
   byte-identical for every job count.  This reproduces the CLI's
   campaign loop (per-seed fault plan, checker report, stats, deadline
   misses) at the library level and compares rendered report signatures
   for jobs 1, 2 and 4. *)
let prop_fault_campaign_jobs_invariant =
  QCheck.Test.make ~name:"fault campaign is job-count invariant" ~count:6
    QCheck.(pair (int_range 3 6) (int_range 0 3))
    (fun (seeds, knob) ->
      let built = Video.System.build Video.System.default_params in
      let stimuli =
        Video.Scenario.switching_demo ~frames:20 ~period:5
          ~switches:[ (32, "fB") ]
          ()
      in
      let drop = 0.01 *. float_of_int (1 + knob)
      and transient = 0.02 *. float_of_int (1 + knob) in
      let deadline = 25 in
      let run_seed seed =
        let faults =
          Video.Scenario.fault_plan ~drop_probability:drop
            ~transient_probability:transient ~seed built
        in
        let result =
          Sim.Engine.run
            ~configurations:built.Video.System.configurations
            ~stimuli ~faults built.Video.System.model
        in
        let report = Video.Checker.check result in
        let stats = Sim.Stats.of_result built.Video.System.model result in
        let misses =
          List.length
            (List.filter
               (fun (_, l) -> l > deadline)
               report.Video.Checker.frame_latencies)
        in
        Format.asprintf "%d|%d|%d|%d|%d|%d|%d|%d|%d" seed
          result.Sim.Engine.firings
          (Sim.Stats.total_faults stats.Sim.Stats.faults)
          stats.Sim.Stats.faults.Sim.Stats.degradations
          report.Video.Checker.clean report.Video.Checker.held
          report.Video.Checker.dropped misses
          report.Video.Checker.reconfiguration_time
      in
      let campaign jobs =
        Array.to_list
          (Synth.Par.map ~jobs run_seed (Array.init seeds (fun i -> i + 1)))
      in
      let reference = campaign 1 in
      List.for_all (fun jobs -> campaign jobs = reference) [ 2; 4 ])

let suite =
  ( "determinism",
    [
      QCheck_alcotest.to_alcotest ~long:false prop_engine_deterministic;
      QCheck_alcotest.to_alcotest ~long:false prop_sim_matches_untimed_firing_count;
      QCheck_alcotest.to_alcotest ~long:false prop_policy_monotone_makespan;
      QCheck_alcotest.to_alcotest ~long:false prop_fault_campaign_jobs_invariant;
    ] )
