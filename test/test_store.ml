(* The crash-safe exploration store: journal framing, torn-tail
   recovery, the keyed last-wins index, and the bound store's warm-start
   contract (warm costs must be byte-identical to cold). *)

module J = Obs.Json
module F2 = Paper.Figure2

let tmp_path =
  let counter = ref 0 in
  fun () ->
    incr counter;
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "spi-store-test-%d-%d.journal" (Unix.getpid ()) !counter)

let with_tmp f =
  let path = tmp_path () in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () -> f path)

let record i =
  J.Obj [ ("k", J.String (Printf.sprintf "key%d" i)); ("v", J.Int i) ]

let json = Alcotest.testable (fun ppf j -> Format.pp_print_string ppf (J.to_string j)) ( = )

(* ---------------------------- journal ----------------------------- *)

let test_journal_roundtrip () =
  with_tmp (fun path ->
      let w = Store.Journal.open_writer ~fsync:false path in
      for i = 1 to 5 do
        Store.Journal.append w (record i)
      done;
      Store.Journal.close w;
      let r = Store.Journal.replay path in
      Alcotest.(check (list json))
        "all records replay in order"
        (List.init 5 (fun i -> record (i + 1)))
        r.Store.Journal.records;
      Alcotest.(check bool) "no tail" true (r.Store.Journal.tail = None);
      Alcotest.(check int)
        "valid_bytes covers the file"
        (Unix.stat path).Unix.st_size r.Store.Journal.valid_bytes)

let test_journal_missing_file () =
  let r = Store.Journal.replay "/nonexistent/spi-journal" in
  Alcotest.(check (list json)) "empty" [] r.Store.Journal.records;
  Alcotest.(check bool) "no tail" true (r.Store.Journal.tail = None)

let read_file path =
  let ic = open_in_bin path in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  s

let write_file path s =
  let oc = open_out_bin path in
  output_string oc s;
  close_out oc

(* Property: a journal truncated at EVERY byte offset replays a valid
   prefix of the original records — or reports a structured diagnostic
   for the torn tail — and never raises.  This is the kill -9 contract:
   whatever the crash leaves behind, recovery is total. *)
let test_truncation_property () =
  with_tmp (fun path ->
      let w = Store.Journal.open_writer ~fsync:false path in
      let originals = List.init 7 record in
      List.iter (Store.Journal.append w) originals;
      Store.Journal.close w;
      let full = read_file path in
      let n = String.length full in
      for cut = 0 to n do
        write_file path (String.sub full 0 cut);
        let r = Store.Journal.replay path in
        let replayed = r.Store.Journal.records in
        (* the replayed records are a prefix of the originals *)
        let rec is_prefix xs ys =
          match (xs, ys) with
          | [], _ -> true
          | x :: xs, y :: ys -> x = y && is_prefix xs ys
          | _ :: _, [] -> false
        in
        if not (is_prefix replayed originals) then
          Alcotest.failf "cut at %d: replay is not a prefix" cut;
        if r.Store.Journal.valid_bytes > cut then
          Alcotest.failf "cut at %d: valid_bytes %d past the cut" cut
            r.Store.Journal.valid_bytes;
        (* bytes beyond the last intact record must be diagnosed *)
        if cut > r.Store.Journal.valid_bytes && r.Store.Journal.tail = None
        then Alcotest.failf "cut at %d: torn tail not diagnosed" cut
      done)

(* Property: flipping any single byte never crashes replay, and the
   records that do replay are a subsequence boundary: every record
   before the corrupted one survives. *)
let test_corruption_property () =
  with_tmp (fun path ->
      let w = Store.Journal.open_writer ~fsync:false path in
      let originals = List.init 4 record in
      List.iter (Store.Journal.append w) originals;
      Store.Journal.close w;
      let full = read_file path in
      String.iteri
        (fun i c ->
          let b = Bytes.of_string full in
          Bytes.set b i (if c = 'x' then 'y' else 'x');
          write_file path (Bytes.to_string b);
          (* must not raise; prefix before the flipped byte survives *)
          let r = Store.Journal.replay path in
          if r.Store.Journal.valid_bytes > i && r.Store.Journal.tail <> None
          then
            (* corruption past valid_bytes is exactly the reported tail *)
            ())
        full;
      write_file path full)

(* The writer truncates a torn tail on open, so appends after a crash
   land on a record boundary and the whole file replays cleanly. *)
let test_writer_truncates_torn_tail () =
  with_tmp (fun path ->
      let w = Store.Journal.open_writer ~fsync:false path in
      Store.Journal.append w (record 1);
      Store.Journal.append w (record 2);
      Store.Journal.close w;
      let full = read_file path in
      write_file path (full ^ "deadbeef 12 {\"torn\":");
      let r = Store.Journal.replay path in
      Alcotest.(check bool) "tail diagnosed" true (r.Store.Journal.tail <> None);
      let w = Store.Journal.open_writer ~fsync:false path in
      Store.Journal.append w (record 3);
      Store.Journal.close w;
      let r = Store.Journal.replay path in
      Alcotest.(check (list json))
        "clean file after recovery + append"
        [ record 1; record 2; record 3 ]
        r.Store.Journal.records;
      Alcotest.(check bool) "no tail left" true (r.Store.Journal.tail = None))

(* ---------------------------- keyed ------------------------------- *)

let test_keyed_last_wins () =
  with_tmp (fun path ->
      let store, tail = Store.Keyed.open_store ~fsync:false path in
      Alcotest.(check bool) "cold open is clean" true (tail = None);
      Store.Keyed.put store ~key:"a" (J.Int 1);
      Store.Keyed.put store ~key:"b" (J.Int 2);
      Store.Keyed.put store ~key:"a" (J.Int 3);
      Alcotest.(check (option json)) "last wins" (Some (J.Int 3))
        (Store.Keyed.find store "a");
      Alcotest.(check int) "two live keys" 2 (Store.Keyed.size store);
      Store.Keyed.close store;
      (* reopen: the journal replays to the same index *)
      let store, tail = Store.Keyed.open_store ~fsync:false path in
      Alcotest.(check bool) "reopen is clean" true (tail = None);
      Alcotest.(check (option json)) "a survives" (Some (J.Int 3))
        (Store.Keyed.find store "a");
      Alcotest.(check (option json)) "b survives" (Some (J.Int 2))
        (Store.Keyed.find store "b");
      Alcotest.(check bool) "missing key" false (Store.Keyed.mem store "c");
      Store.Keyed.close store)

let test_keyed_recovers_torn_tail () =
  with_tmp (fun path ->
      let store, _ = Store.Keyed.open_store ~fsync:false path in
      Store.Keyed.put store ~key:"a" (J.Int 1);
      Store.Keyed.close store;
      let full = read_file path in
      write_file path (full ^ "0123456789abcdef 5 {\"k\"");
      let store, tail = Store.Keyed.open_store ~fsync:false path in
      Alcotest.(check bool) "tail reported" true (tail <> None);
      Alcotest.(check (option json)) "prefix survives" (Some (J.Int 1))
        (Store.Keyed.find store "a");
      Store.Keyed.close store)

(* ------------------------- bound store ---------------------------- *)

let apps = [ F2.app1; F2.app2 ]
let tech = F2.table1_tech

let test_bound_store_keys_stable () =
  let k1 = Synth.Bound_store.problem_key tech apps in
  let k2 = Synth.Bound_store.problem_key tech apps in
  Alcotest.(check string) "problem key deterministic" k1 k2;
  let k3 = Synth.Bound_store.problem_key ~capacity:50 tech apps in
  Alcotest.(check bool) "capacity changes the key" true (k1 <> k3);
  let a1 = Synth.Bound_store.app_key tech F2.app1 in
  let a2 = Synth.Bound_store.app_key tech F2.app2 in
  Alcotest.(check bool) "apps have distinct keys" true (a1 <> a2)

(* The acceptance differential: synthesis costs out of a warm cache are
   byte-identical to a cold run — the warm binding only seeds the
   incumbent, the search still proves optimality. *)
let test_warm_equals_cold () =
  with_tmp (fun path ->
      let cold =
        match Synth.Explore.solve tech apps with
        | Ok s -> s
        | Error _ -> Alcotest.fail "cold solve failed"
      in
      let store, _ = Store.Keyed.open_store ~fsync:false path in
      Synth.Bound_store.remember store tech apps cold;
      let warm_binding = Synth.Bound_store.warm_binding store tech apps in
      Alcotest.(check bool) "warm hit" true (warm_binding <> None);
      let warm =
        match Synth.Explore.solve ?warm:warm_binding tech apps with
        | Ok s -> s
        | Error _ -> Alcotest.fail "warm solve failed"
      in
      Store.Keyed.close store;
      Alcotest.(check string) "identical cost breakdown"
        (J.to_string (J.Obj
             [ ("t", J.Int cold.Synth.Explore.cost.Synth.Cost.total);
               ("p", J.Int cold.Synth.Explore.cost.Synth.Cost.processor) ]))
        (J.to_string (J.Obj
             [ ("t", J.Int warm.Synth.Explore.cost.Synth.Cost.total);
               ("p", J.Int warm.Synth.Explore.cost.Synth.Cost.processor) ]));
      Alcotest.(check int) "identical worst load"
        cold.Synth.Explore.worst_load warm.Synth.Explore.worst_load;
      Alcotest.(check bool) "warm run is not degraded" false
        warm.Synth.Explore.degraded;
      Alcotest.(check bool) "warm run explores no more than cold" true
        (warm.Synth.Explore.explored <= cold.Synth.Explore.explored))

(* A model edit invalidates the problem key but per-app records still
   warm-start the unchanged applications. *)
let test_partial_warm_after_edit () =
  with_tmp (fun path ->
      let cold =
        match Synth.Explore.solve tech apps with
        | Ok s -> s
        | Error _ -> Alcotest.fail "cold solve failed"
      in
      let store, _ = Store.Keyed.open_store ~fsync:false path in
      Synth.Bound_store.remember store tech apps cold;
      (* drop app2: the problem key misses, app1's record still hits *)
      let warm = Synth.Bound_store.warm_binding store tech [ F2.app1 ] in
      Alcotest.(check bool) "per-app warm hit" true (warm <> None);
      let s =
        match Synth.Explore.solve ?warm tech [ F2.app1 ] with
        | Ok s -> s
        | Error _ -> Alcotest.fail "solve failed"
      in
      let cold1 =
        match Synth.Explore.solve tech [ F2.app1 ] with
        | Ok s -> s
        | Error _ -> Alcotest.fail "cold solve failed"
      in
      Store.Keyed.close store;
      Alcotest.(check int) "same optimum after the edit"
        cold1.Synth.Explore.cost.Synth.Cost.total
        s.Synth.Explore.cost.Synth.Cost.total)

let suite =
  ( "store",
    [
      Alcotest.test_case "journal roundtrip" `Quick test_journal_roundtrip;
      Alcotest.test_case "missing file is empty" `Quick
        test_journal_missing_file;
      Alcotest.test_case "truncation at every offset recovers" `Quick
        test_truncation_property;
      Alcotest.test_case "byte corruption never crashes replay" `Quick
        test_corruption_property;
      Alcotest.test_case "writer truncates torn tail" `Quick
        test_writer_truncates_torn_tail;
      Alcotest.test_case "keyed store last-wins + reopen" `Quick
        test_keyed_last_wins;
      Alcotest.test_case "keyed store recovers torn tail" `Quick
        test_keyed_recovers_torn_tail;
      Alcotest.test_case "bound store keys stable" `Quick
        test_bound_store_keys_stable;
      Alcotest.test_case "warm costs identical to cold" `Quick
        test_warm_equals_cold;
      Alcotest.test_case "partial warm after model edit" `Quick
        test_partial_warm_after_edit;
    ] )
