(* Tests for the parallel exploration path: parallel/sequential cost
   equivalence on random instances, counter aggregation, and the
   structured diagnostics of {!Synth.Explore.solve}. *)

module I = Spi.Ids
module F2 = Paper.Figure2

let pid = I.Process_id.of_string

(* Workload builders live in the shared {!Harness}. *)
let random_instance = Harness.random_instance

(* The optimal cost must be identical for every job count, and the
   parallel binding must itself be feasible at that cost: schedulable
   in every application and priced at the reported total. *)
let prop_parallel_matches_sequential =
  QCheck.Test.make ~name:"jobs=2/4 find the sequential optimum" ~count:40
    QCheck.(pair (int_range 4 10) (int_range 0 1000))
    (fun (n, seed) ->
      let tech, apps = random_instance ~n ~seed in
      let seq = Synth.Explore.optimal ~jobs:1 tech apps in
      Harness.sweep_jobs ~jobs:[ 2; 4 ]
        (fun jobs ->
          let par = Synth.Explore.optimal ~jobs tech apps in
          match (seq, par) with
          | None, None -> true
          | Some s, Some p ->
            let sc = s.Synth.Explore.cost.Synth.Cost.total
            and pc = p.Synth.Explore.cost.Synth.Cost.total in
            sc = pc
            && Synth.Schedule.is_feasible
                 (Synth.Schedule.check tech p.Synth.Explore.binding apps)
            && (Synth.Cost.of_binding tech p.Synth.Explore.binding)
                 .Synth.Cost.total = pc
          | Some _, None | None, Some _ -> false))

let test_parallel_counters () =
  let tech, apps = random_instance ~n:10 ~seed:7 in
  match Synth.Explore.optimal ~jobs:4 tech apps with
  | None -> Alcotest.fail "instance expected feasible"
  | Some s ->
    Alcotest.(check bool)
      "explored nodes aggregated across domains" true
      (s.Synth.Explore.explored > 0);
    Alcotest.(check bool) "pruning happened" true (s.Synth.Explore.pruned > 0)

let test_jobs_validation () =
  let tech, apps = random_instance ~n:5 ~seed:3 in
  (try
     ignore (Synth.Explore.optimal ~jobs:(-1) tech apps);
     Alcotest.fail "negative jobs accepted"
   with Invalid_argument _ -> ());
  (* jobs=0 resolves to the recommended domain count *)
  match
    (Synth.Explore.optimal ~jobs:0 tech apps, Synth.Explore.optimal tech apps)
  with
  | Some a, Some b ->
    Alcotest.(check int) "jobs=0 cost" b.Synth.Explore.cost.Synth.Cost.total
      a.Synth.Explore.cost.Synth.Cost.total
  | _ -> Alcotest.fail "instance expected feasible"

(* ------------------------- diagnostics ----------------------------- *)

let diagnostic =
  Alcotest.testable Synth.Explore.pp_diagnostic (fun a b ->
      match (a, b) with
      | Synth.Explore.Infeasible, Synth.Explore.Infeasible -> true
      | ( Synth.Explore.Pinned_impl_unavailable a,
          Synth.Explore.Pinned_impl_unavailable b ) ->
        I.Process_id.equal a.process b.process && a.impl = b.impl
      | _ -> false)

let solution_cost = Alcotest.testable Synth.Explore.pp_solution (fun _ _ -> true)

let result_t = Alcotest.result solution_cost diagnostic

let test_pinned_impl_unavailable () =
  let x = pid "x" and y = pid "y" in
  let tech =
    Synth.Tech.make
      [
        (x, Synth.Tech.sw_only ~load:10);
        (y, Synth.Tech.both ~load:10 ~area:5);
      ]
  in
  let apps = [ Synth.App.make "a" [ x; y ] ] in
  (* pinning x to hardware is unsatisfiable: its entry has no hw option *)
  let fixed = Synth.Binding.of_list [ (x, Synth.Binding.Hw) ] in
  Alcotest.check result_t "names the pinned process and impl"
    (Error
       (Synth.Explore.Pinned_impl_unavailable
          { process = x; impl = Synth.Binding.Hw }))
    (Synth.Explore.solve ~fixed tech apps);
  (* the mirror image: pinning a hw-only process to software *)
  let tech_hw =
    Synth.Tech.make
      [ (x, Synth.Tech.hw_only ~area:7); (y, Synth.Tech.both ~load:10 ~area:5) ]
  in
  let fixed_sw = Synth.Binding.of_list [ (x, Synth.Binding.Sw) ] in
  Alcotest.check result_t "sw pin on hw-only process"
    (Error
       (Synth.Explore.Pinned_impl_unavailable
          { process = x; impl = Synth.Binding.Sw }))
    (Synth.Explore.solve ~fixed:fixed_sw tech_hw apps)

let test_genuinely_infeasible_is_distinct () =
  (* a software-only process whose load exceeds any capacity is a
     capacity infeasibility, not a pinning error *)
  let tech = Synth.Tech.make [ (pid "x", Synth.Tech.sw_only ~load:200) ] in
  let apps = [ Synth.App.make "a" [ pid "x" ] ] in
  Alcotest.check result_t "plain Infeasible" (Error Synth.Explore.Infeasible)
    (Synth.Explore.solve tech apps);
  (* the parallel path reports the same diagnostic *)
  let tech5 =
    Synth.Tech.make
      (List.init 5 (fun i ->
           (pid (Format.sprintf "x%d" i), Synth.Tech.sw_only ~load:200)))
  in
  let apps5 =
    [ Synth.App.make "a" (List.init 5 (fun i -> pid (Format.sprintf "x%d" i))) ]
  in
  Alcotest.check result_t "parallel path Infeasible"
    (Error Synth.Explore.Infeasible)
    (Synth.Explore.solve ~jobs:4 tech5 apps5)

let test_pinned_diagnostic_parallel () =
  (* validation fires before the domain pool spins up *)
  let xs = List.init 6 (fun i -> pid (Format.sprintf "x%d" i)) in
  let tech =
    Synth.Tech.make
      (List.map
         (fun p ->
           if I.Process_id.equal p (List.hd xs) then
             (p, Synth.Tech.sw_only ~load:5)
           else (p, Synth.Tech.both ~load:5 ~area:10))
         xs)
  in
  let apps = [ Synth.App.make "a" xs ] in
  let fixed = Synth.Binding.of_list [ (List.hd xs, Synth.Binding.Hw) ] in
  Alcotest.check result_t "jobs=4 pinning diagnostic"
    (Error
       (Synth.Explore.Pinned_impl_unavailable
          { process = List.hd xs; impl = Synth.Binding.Hw }))
    (Synth.Explore.solve ~jobs:4 ~fixed tech apps)

let test_table1_parallel () =
  (* the canonical Table 1 optimum survives every job count *)
  List.iter
    (fun jobs ->
      let s = Synth.Explore.optimal_exn ~jobs F2.table1_tech [ F2.app1; F2.app2 ] in
      Alcotest.(check int)
        (Format.sprintf "jobs=%d" jobs)
        41 s.Synth.Explore.cost.Synth.Cost.total)
    [ 1; 2; 4 ]

let suite =
  ( "explore-parallel",
    [
      QCheck_alcotest.to_alcotest prop_parallel_matches_sequential;
      Alcotest.test_case "counters aggregated" `Quick test_parallel_counters;
      Alcotest.test_case "jobs validation" `Quick test_jobs_validation;
      Alcotest.test_case "pinned impl unavailable" `Quick
        test_pinned_impl_unavailable;
      Alcotest.test_case "infeasible stays distinct" `Quick
        test_genuinely_infeasible_is_distinct;
      Alcotest.test_case "pinned diagnostic, parallel" `Quick
        test_pinned_diagnostic_parallel;
      Alcotest.test_case "table1 across job counts" `Quick test_table1_parallel;
    ] )
