(* Stress harness for the work-stealing scheduler (Synth.Par +
   Synth.Ws_deque).

   Three layers, all seeded and deterministic in their *expected*
   results (scheduling is free to vary):

   - deque unit tests: owner LIFO order, thief FIFO order, the capacity
     bound, and the single-element owner/thief race;
   - a deque hammer: one owner pushing and popping against several
     concurrent thieves, with every value claimed exactly once;
   - randomized task graphs through {!Synth.Par.fold}: chain / wide /
     tree / front-loaded shapes (adversarial split depths, including
     deque overflow on the wide graphs), executed across a 2..8 domain
     sweep and compared against a sequential reference walk for lost or
     duplicated results, then re-run with injected exceptions to check
     failure propagation without deadlock.

   Budgets scale with the CLI flags so CI smoke and manual soak runs
   share one binary:
     stress.exe [--tasks N] [--rounds N] [--seed N] [--max-domains N]
                [--verbose] *)

let tasks_budget = ref 12_000
let rounds = ref 2
let base_seed = ref 7
let max_domains = ref 8
let verbose = ref false

let speclist =
  [
    ("--tasks", Arg.Set_int tasks_budget, "N  tasks per graph (default 12000)");
    ("--rounds", Arg.Set_int rounds, "N  randomized rounds (default 2)");
    ("--seed", Arg.Set_int base_seed, "N  base seed (default 7)");
    ( "--max-domains",
      Arg.Set_int max_domains,
      "N  cap on the domain sweep (default 8)" );
    ("--verbose", Arg.Set verbose, "  per-graph progress output");
  ]

let say fmt = Format.printf fmt
let debug fmt =
  if !verbose then Format.printf fmt else Format.ifprintf Format.std_formatter fmt

let failures = ref 0

let check name ok =
  if not ok then begin
    incr failures;
    say "FAIL: %s@." name
  end

(* xorshift*-style avalanche; all task decisions derive from it *)
let hash x =
  let x = x + 0x1fceb (* keep 0 out of the fixed point *) in
  let x = x lxor (x lsr 12) in
  let x = x lxor (x lsl 25) in
  let x = x lxor (x lsr 27) in
  x * 0x2545F4914F6CDD1D land max_int

(* ------------------------- deque unit tests ------------------------- *)

let test_deque_units () =
  let module D = Synth.Ws_deque in
  (* owner pops LIFO *)
  let d = D.create ~capacity:16 in
  for i = 1 to 10 do
    check "unit push accepted" (D.push d i)
  done;
  for i = 10 downto 1 do
    check "owner LIFO order" (D.pop d = Some i)
  done;
  check "empty pop" (D.pop d = None);
  (* thieves steal FIFO *)
  for i = 1 to 10 do
    ignore (D.push d i : bool)
  done;
  for i = 1 to 10 do
    check "thief FIFO order" (D.steal d = D.Stolen i)
  done;
  check "empty steal" (D.steal d = D.Empty);
  (* capacity bound: pushes beyond it are refused, not silently dropped *)
  let small = D.create ~capacity:4 in
  let cap = D.capacity small in
  for i = 1 to cap do
    check "push under capacity" (D.push small i)
  done;
  check "push over capacity refused" (not (D.push small (cap + 1)));
  check "size at capacity" (D.size small = cap);
  for i = cap downto 1 do
    check "drain after refusal" (D.pop small = Some i)
  done;
  (* single-element interleaving: one side wins, never both *)
  let one = D.create ~capacity:2 in
  ignore (D.push one 42 : bool);
  (match D.steal one with
  | D.Stolen 42 -> check "stolen element gone for the owner" (D.pop one = None)
  | _ -> check "single-element steal" false);
  say "deque unit tests: done@."

(* --------------------------- deque hammer --------------------------- *)

let test_deque_hammer ~thieves ~values () =
  let module D = Synth.Ws_deque in
  let d = D.create ~capacity:1024 in
  let done_flag = Atomic.make false in
  let thief_claims = Array.make thieves [] in
  let workers =
    Array.init thieves (fun t ->
        Domain.spawn (fun () ->
            let claims = ref [] in
            let rec loop () =
              match D.steal d with
              | D.Stolen v ->
                claims := v :: !claims;
                loop ()
              | D.Empty ->
                if not (Atomic.get done_flag) then begin
                  Domain.cpu_relax ();
                  loop ()
                end
              | D.Lost_race -> loop ()
            in
            loop ();
            thief_claims.(t) <- !claims))
  in
  (* owner: push everything, popping to make room when full, then drain *)
  let owner_claims = ref [] in
  let i = ref 0 in
  while !i < values do
    if D.push d !i then incr i
    else
      match D.pop d with
      | Some v -> owner_claims := v :: !owner_claims
      | None -> Domain.cpu_relax ()
  done;
  let rec drain () =
    match D.pop d with
    | Some v ->
      owner_claims := v :: !owner_claims;
      drain ()
    | None -> ()
  in
  drain ();
  Atomic.set done_flag true;
  Array.iter Domain.join workers;
  let all =
    Array.fold_left (fun acc l -> List.rev_append l acc) !owner_claims
      thief_claims
  in
  let sorted = List.sort compare all in
  check "hammer: every value claimed exactly once"
    (sorted = List.init values Fun.id);
  let stolen = Array.fold_left (fun n l -> n + List.length l) 0 thief_claims in
  debug "hammer: %d values, %d stolen by %d thieves@." values stolen thieves;
  say "deque hammer (%d thieves, %d values): done@." thieves values

(* ------------------------ randomized task graphs --------------------- *)

type shape = Chain | Wide | Tree | Front

let shape_index = function Chain -> 0 | Wide -> 1 | Tree -> 2 | Front -> 3

let shape_name = function
  | Chain -> "chain"
  | Wide -> "wide"
  | Tree -> "tree"
  | Front -> "front-loaded"

type spec = { shape : shape; budget : int; salt : int; inject : bool }

type node = { v : int; depth : int; seed_ix : int }

let n_seeds = 4

let seeds_of spec =
  Array.init n_seeds (fun i ->
      { v = hash (spec.salt + i); depth = 0; seed_ix = i })

(* Deterministic children of a node.  Chains probe deep re-splitting,
   wide graphs overflow the bounded deques (capacity 256 per worker),
   trees give irregular branching, and front-loaded graphs put almost
   all work under the first seed so the remaining workers must steal. *)
let children_of spec n =
  let child k =
    { v = hash ((n.v * 131) + k); depth = n.depth + 1; seed_ix = n.seed_ix }
  in
  match spec.shape with
  | Chain ->
    if n.depth + 1 < spec.budget / n_seeds then [ child 0 ] else []
  | Wide ->
    if n.depth = 0 then List.init ((spec.budget / n_seeds) - 1) child else []
  | Tree ->
    let b =
      if n.depth < 8 then hash (spec.salt lxor n.v) land 3
      else if n.depth < 24 then hash (spec.salt lxor n.v) land 1
      else 0
    in
    List.init b child
  | Front ->
    if n.seed_ix = 0 then
      if n.depth + 1 < spec.budget - n_seeds + 1 then [ child 0 ] else []
    else []

let raises spec n = spec.inject && hash (spec.salt lxor n.v) land 0xfff = 0

exception Injected of int

(* Sequential reference walk: exact task count, value checksum, and the
   number of raising nodes (raising nodes still count their children —
   the parallel run may or may not reach them, so with injection only
   failure propagation is compared, not the checksum). *)
let reference spec =
  let count = ref 0 and sum = ref 0 and raisers = ref 0 in
  let rec walk n =
    incr count;
    sum := !sum + n.v;
    if raises spec n then incr raisers;
    List.iter walk (children_of spec n)
  in
  Array.iter walk (seeds_of spec);
  (!count, !sum, !raisers)

(* One pool task: execute the node, push its children, and run locally
   (explicit stack, no recursion) whatever the deque refuses — the
   overflow path on wide graphs. *)
let run_graph spec ~jobs =
  Synth.Par.fold ~jobs
    ~init:(fun () -> (0, 0))
    ~merge:(fun (c1, s1) (c2, s2) -> (c1 + c2, s1 + s2))
    ~f:(fun ctx acc seed_node ->
      let acc = ref acc in
      let stack = ref [ seed_node ] in
      while !stack <> [] do
        match !stack with
        | [] -> ()
        | n :: rest ->
          stack := rest;
          if raises spec n then raise (Injected n.v);
          let c, s = !acc in
          acc := (c + 1, s + n.v);
          List.iter
            (fun child ->
              if not (Synth.Par.push ctx child) then stack := child :: !stack)
            (children_of spec n)
      done;
      !acc)
    (seeds_of spec)

let jobs_sweep () =
  List.filter (fun j -> j <= !max_domains) [ 2; 3; 4; 6; 8 ]

let test_graphs () =
  let shapes = [ Chain; Wide; Tree; Front ] in
  for round = 1 to !rounds do
    List.iter
      (fun shape ->
        let spec =
          {
            shape;
            budget = !tasks_budget;
            salt = hash ((!base_seed * 8191) + (round * 127)) + shape_index shape;
            inject = false;
          }
        in
        let count, sum, _ = reference spec in
        debug "round %d %-12s: %d tasks@." round (shape_name spec.shape) count;
        (match shape with
        | Chain | Wide | Front ->
          check
            (Printf.sprintf "%s graph meets the task budget"
               (shape_name shape))
            (count >= !tasks_budget - n_seeds)
        | Tree -> ());
        List.iter
          (fun jobs ->
            let pc, ps = run_graph spec ~jobs in
            check
              (Printf.sprintf "round %d %s jobs=%d: no lost or duplicated tasks"
                 round (shape_name shape) jobs)
              (pc = count && ps = sum))
          (1 :: jobs_sweep ()))
      shapes
  done;
  say "task graphs (%d rounds, %d shapes, jobs up to %d): done@." !rounds 4
    !max_domains

let test_injected_exceptions () =
  let shapes = [ Chain; Wide; Tree; Front ] in
  for round = 1 to !rounds do
    List.iter
      (fun shape ->
        let spec =
          {
            shape;
            budget = !tasks_budget;
            salt = hash ((!base_seed * 524287) + (round * 8209)) + shape_index shape;
            inject = true;
          }
        in
        let count, sum, raisers = reference spec in
        List.iter
          (fun jobs ->
            match run_graph spec ~jobs with
            | pc, ps ->
              check
                (Printf.sprintf
                   "round %d %s jobs=%d: clean graph completes exactly" round
                   (shape_name shape) jobs)
                (raisers = 0 && pc = count && ps = sum)
            | exception Injected _ ->
              check
                (Printf.sprintf
                   "round %d %s jobs=%d: exception only when injected" round
                   (shape_name shape) jobs)
                (raisers > 0))
          (1 :: jobs_sweep ()))
      shapes
  done;
  say "injected exceptions (%d rounds): done@." !rounds

(* ------------------------ steal accounting --------------------------- *)

let test_steal_accounting before_total before_workers =
  let total = Obs.Metric.value (Obs.Registry.counter "par.steals") in
  let workers =
    List.init 16 (fun i ->
        Obs.Metric.value
          (Obs.Registry.counter (Printf.sprintf "par.steals.w%d" i)))
  in
  let d_total = total - before_total in
  let d_workers =
    List.fold_left2 (fun acc a b -> acc + a - b) 0 workers before_workers
  in
  say "steals across the whole run: %d@." d_total;
  check "work actually moved between domains" (d_total > 0);
  check "no lost steal increments (aggregate = sum of per-worker)"
    (d_total = d_workers)

let () =
  Arg.parse speclist
    (fun a -> raise (Arg.Bad (Printf.sprintf "unexpected argument %s" a)))
    "stress.exe: work-stealing scheduler stress harness";
  if !tasks_budget < n_seeds + 1 then begin
    say "stress: --tasks must be at least %d@." (n_seeds + 1);
    exit 2
  end;
  let before_total = Obs.Metric.value (Obs.Registry.counter "par.steals") in
  let before_workers =
    List.init 16 (fun i ->
        Obs.Metric.value
          (Obs.Registry.counter (Printf.sprintf "par.steals.w%d" i)))
  in
  let t0 = Obs.Clock.now_ns () in
  test_deque_units ();
  test_deque_hammer ~thieves:3 ~values:50_000 ();
  test_graphs ();
  test_injected_exceptions ();
  test_steal_accounting before_total before_workers;
  say "elapsed: %.2fs@."
    (float_of_int (Obs.Clock.elapsed_ns t0) /. 1e9);
  if !failures > 0 then begin
    say "%d stress check(s) failed@." !failures;
    exit 1
  end
  else say "all stress checks passed@."
