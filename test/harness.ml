(* Shared workload builders for the synthesis test-suite: seeded random
   instances for every explorer entry point, plus job-count sweep
   helpers.  Every builder is deterministic in [seed] so failures
   reported by qcheck shrink to a reproducible instance. *)

module I = Spi.Ids

let pid = I.Process_id.of_string

let seeded seed = Random.State.make [| seed |]

(* Random single-processor instance in the style of the brute-force
   property in [Test_synth]: overlapping applications over a random
   technology.  Large enough that the parallel path actually splits
   (n >= 4). *)
let random_instance ~n ~seed =
  let rng = seeded seed in
  let pids = List.init n (fun i -> pid (Format.sprintf "q%d" i)) in
  let tech =
    Synth.Tech.make ~processor_cost:(5 + Random.State.int rng 20)
      (List.map
         (fun p ->
           ( p,
             Synth.Tech.both
               ~load:(5 + Random.State.int rng 60)
               ~area:(5 + Random.State.int rng 60) ))
         pids)
  in
  let subset () = List.filter (fun _ -> Random.State.bool rng) pids in
  let apps =
    [
      Synth.App.make "a" (match subset () with [] -> [ List.hd pids ] | s -> s);
      Synth.App.make "b" (match subset () with [] -> [ List.hd pids ] | s -> s);
      Synth.App.make "c" (match subset () with [] -> [ List.hd pids ] | s -> s);
    ]
  in
  (tech, apps)

(* Random instance with a mix of sw-only / hw-only / both options, so
   the search tree has uneven branching — the shape that exercises
   re-splitting and stealing rather than the balanced static split. *)
let random_mixed_instance ~n ~seed =
  let rng = seeded seed in
  let pids = List.init n (fun i -> pid (Format.sprintf "m%d" i)) in
  let option_for _ =
    match Random.State.int rng 4 with
    | 0 -> Synth.Tech.sw_only ~load:(5 + Random.State.int rng 40)
    | 1 -> Synth.Tech.hw_only ~area:(5 + Random.State.int rng 40)
    | _ ->
      Synth.Tech.both
        ~load:(5 + Random.State.int rng 60)
        ~area:(5 + Random.State.int rng 60)
  in
  let tech =
    Synth.Tech.make
      ~processor_cost:(5 + Random.State.int rng 20)
      (List.map (fun p -> (p, option_for p)) pids)
  in
  let subset () = List.filter (fun _ -> Random.State.bool rng) pids in
  let apps =
    List.init (1 + Random.State.int rng 3) (fun i ->
        Synth.App.make
          (Format.sprintf "a%d" i)
          (match subset () with [] -> [ List.hd pids ] | s -> s))
  in
  (tech, apps)

(* Random multi-processor instance: [n] processes with sw and/or hw
   options over [n_cpu] heterogeneous processors.  Loads are kept small
   relative to capacities so most instances are feasible. *)
let random_multi_instance ~n ~n_cpu ~seed =
  let rng = seeded seed in
  let tech, apps = random_instance ~n ~seed:(seed lxor 0x5bd1e995) in
  ignore tech;
  let pids = List.init n (fun i -> pid (Format.sprintf "q%d" i)) in
  let tech =
    Synth.Tech.make
      (List.map
         (fun p ->
           ( p,
             Synth.Tech.both
               ~load:(5 + Random.State.int rng 50)
               ~area:(5 + Random.State.int rng 60) ))
         pids)
  in
  let procs =
    List.init n_cpu (fun c ->
        Synth.Multi.processor
          ~name:(Format.sprintf "cpu%d" c)
          ~capacity:(60 + Random.State.int rng 80)
          ~cost:(5 + Random.State.int rng 30))
  in
  (tech, procs, apps)

(* Job-count sweeps.  [sweep_jobs] runs [f jobs] for each count and
   conjoins the results — for use inside qcheck properties.  The
   default sweep covers the odd worker (3) and oversubscription (8)
   beyond the physical core count of small CI machines. *)
let default_jobs = [ 2; 4; 8 ]

let sweep_jobs ?(jobs = default_jobs) f = List.for_all f jobs

let check_sweep ?(jobs = default_jobs) name f =
  List.iter (fun j -> Alcotest.(check bool) (Format.sprintf "%s, jobs=%d" name j) true (f j)) jobs

(* Pool workload that forces at least one steal, deterministically: the
   single seed task pushes [children] subtasks onto its own deque and
   then refuses to return until one of them has run.  The owner is stuck
   inside the seed and the seed cursor is exhausted, so the only way a
   child can run is a steal by another (hungry) worker.  Returns the
   number of tasks that ran ([children + 1]). *)
let force_steals ~jobs ~children () =
  let children_run = Atomic.make 0 in
  Synth.Par.fold ~jobs
    ~init:(fun () -> 0)
    ~merge:( + )
    ~f:(fun ctx acc -> function
      | `Seed ->
        for _ = 1 to children do
          ignore (Synth.Par.push ctx `Child : bool)
        done;
        while Atomic.get children_run = 0 do
          Domain.cpu_relax ()
        done;
        acc + 1
      | `Child ->
        Atomic.incr children_run;
        acc + 1)
    [| `Seed |]

(* Total cost of an Explore solution option, [max_int] for None — a
   single comparable scalar for differential properties. *)
let explore_cost = function
  | None -> max_int
  | Some s -> s.Synth.Explore.cost.Synth.Cost.total

let multi_cost = function
  | None -> max_int
  | Some s -> s.Synth.Multi.total_cost

(* ------------------- simulation workloads (Compile) ------------------ *)

(* Seeded simulation workloads for the compiled-vs-interpreted
   differential harness: a generated variant system flattened to a
   model, environment stimuli on its unwritten channels, and the
   configuration sets of its abstraction.  Deterministic in [seed]. *)

let sim_model ~seed =
  let sites = 1 + (seed mod 3) in
  let cluster_processes = 1 + (seed mod 2) in
  let system =
    Variants.Generator.generate
      {
        Variants.Generator.seed;
        shared_processes = 2;
        sites;
        variants_per_site = 2;
        cluster_processes;
        latency_range = (1, 8 + (seed mod 13));
      }
  in
  Variants.Flatten.flatten system (Variants.Flatten.first_cluster system)

let sim_stimuli ?(tokens = 3) model =
  List.concat_map
    (fun cid ->
      List.init tokens (fun i ->
          {
            Sim.Engine.at = 1 + (3 * i);
            channel = cid;
            token = Spi.Token.make ~payload:i ();
          }))
    (I.Channel_id.Set.elements (Spi.Model.unwritten_channels model))

(* ------------------- family simulation workloads --------------------- *)

(* The same generated workload family as [sim_model], but kept as a
   variant system: [Sim.Family.run] takes the system itself, and the
   differential harness flattens it once per configuration for the
   per-configuration reference runs. *)
let family_system ~seed =
  let sites = 1 + (seed mod 3) in
  let cluster_processes = 1 + (seed mod 2) in
  Variants.Generator.generate
    {
      Variants.Generator.seed;
      shared_processes = 2;
      sites;
      variants_per_site = 2;
      cluster_processes;
      latency_range = (1, 8 + (seed mod 13));
    }

(* Stimuli restricted to the system's shared (unprefixed) boundary
   channels — every configuration of the space has them, so the family
   run keeps its prefix shared for as long as the variants agree. *)
let family_stimuli ?tokens system =
  List.filter
    (fun s ->
      not (String.contains (I.Channel_id.to_string s.Sim.Engine.channel) '.'))
    (sim_stimuli ?tokens
       (Variants.Flatten.flatten system (Variants.Flatten.first_cluster system)))

(* A fault plan over the model's own processes and channels, scripted
   from [seed]: transients with retries and backoff on half the
   processes, token faults on the first input channel, one scripted
   crash, and a watchdog degradation when the model has configurations
   to fall back to. *)
let sim_fault_plan ~seed ?(configurations = []) model =
  let processes = Spi.Model.processes model in
  let channels = I.Channel_id.Set.elements (Spi.Model.unwritten_channels model) in
  let process_plans =
    List.filteri
      (fun i _ -> (i + seed) mod 2 = 0)
      (List.mapi
         (fun i p ->
           let pid = Spi.Process.id p in
           Sim.Fault.on_process
             ~transient:(Sim.Fault.Probability (0.05 +. (0.05 *. float_of_int (seed mod 4))))
             ~max_retries:(1 + ((seed + i) mod 3))
             ~backoff:(1 + (i mod 3))
             ?crash_at:(if i = 0 && seed mod 5 = 0 then Some (20 + seed mod 17) else None)
             ~overrun:(Sim.Fault.Probability 0.1, 2 + (seed mod 3))
             ~reconf_failure:
               (if seed mod 3 = 0 then Sim.Fault.Probability 0.3 else Sim.Fault.Never)
             pid)
         processes)
  in
  let channel_plans =
    match channels with
    | [] -> []
    | cid :: _ ->
      let fault =
        match seed mod 3 with
        | 0 -> Sim.Fault.Drop
        | 1 -> Sim.Fault.Corrupt
        | _ -> Sim.Fault.Duplicate
      in
      [ Sim.Fault.on_channel cid fault (Sim.Fault.Probability 0.15) ]
  in
  let degrade =
    if configurations = [] then None
    else
      Some
        (Sim.Fault.degradation ~failure_threshold:(1 + (seed mod 2))
           ~fallback:(Sim.Fault.fallback_of_configurations configurations)
           ())
  in
  Sim.Fault.plan ~channels:channel_plans ~processes:process_plans ?degrade
    ~seed ()

(* Family fault plan: [sim_fault_plan] scripted over the first
   configuration's flattened model.  Plan entries naming processes or
   channels absent from another configuration's model are inert there —
   identically in the family engine and in that configuration's own
   [Engine.run].  No degradation: the family engine rejects it. *)
let family_fault_plan ~seed system =
  (* flatten via the first enumerated assignment: unlike
     [Flatten.first_cluster], it also resolves interfaces nested inside
     clusters *)
  let model =
    match Variants.Variant_space.enumerate system with
    | a :: _ -> Variants.Flatten.flatten system (Variants.Variant_space.to_choice a)
    | [] -> assert false
  in
  sim_fault_plan ~seed model

(* ---------------- nested / split-adversarial workloads ---------------- *)

(* A system with a hierarchical variant site: site [nestA] has two outer
   clusters, each embedding an [inner] interface with two variants, plus
   a flat second site [siteB] — 4 subtree choices x 2 = 8
   configurations.  Every cluster level declares internal channels under
   stable names ([nestA.h], [nestA.g], [nestA.inner.w], [siteB.m]), so
   stimuli can target site internals that every configuration declares.
   On odd seeds the second inner variant declares [w] with an initial
   token: the declarations disagree across the space, so the family
   engines' narrow-split test must reject the injection and fall back
   to a full split.  Deterministic in [seed]. *)
let nested_family_system ~seed =
  let rng = seeded seed in
  let chan = I.Channel_id.of_string in
  let lat () =
    let mid = 1 + Random.State.int rng 12 in
    let spread = Random.State.int rng (1 + (mid / 2)) in
    Interval.make (max 0 (mid - spread)) (mid + spread)
  in
  let proc name ~from_ ~to_ =
    Spi.Process.simple ~latency:(lat ())
      ~consumes:[ (from_, Interval.point 1) ]
      ~produces:[ (to_, Spi.Mode.produce (Interval.point 1)) ]
      (pid name)
  in
  let top i = chan (Format.sprintf "c%d" i) in
  let channels = List.init 5 (fun i -> Spi.Chan.queue (top i)) in
  let shared =
    [ proc "S1" ~from_:(top 0) ~to_:(top 1);
      proc "S2" ~from_:(top 1) ~to_:(top 2) ]
  in
  let pin () = Variants.Port.input "pin"
  and pout () = Variants.Port.output "pout" in
  let pin_chan = Variants.Port.channel_of (I.Port_id.of_string "pin")
  and pout_chan = Variants.Port.channel_of (I.Port_id.of_string "pout") in
  let inner_cluster v =
    let w = chan "w" in
    let wchan =
      if v = 2 && seed mod 2 = 1 then
        Spi.Chan.queue ~initial:[ Spi.Token.plain ] w
      else Spi.Chan.queue w
    in
    Variants.Cluster.make ~channels:[ wchan ]
      ~ports:[ pin (); pout () ]
      ~processes:
        [
          proc (Format.sprintf "iv%d_1" v) ~from_:pin_chan ~to_:w;
          proc (Format.sprintf "iv%d_2" v) ~from_:w ~to_:pout_chan;
        ]
      (Format.sprintf "inner_var%d" v)
  in
  let inner_site () =
    let iface =
      Variants.Interface.make
        ~ports:[ pin (); pout () ]
        ~clusters:[ inner_cluster 1; inner_cluster 2 ]
        "inner"
    in
    {
      Variants.Structure.iface;
      wiring =
        [
          (I.Port_id.of_string "pin", chan "h");
          (I.Port_id.of_string "pout", chan "g");
        ];
    }
  in
  let outer_cluster v =
    Variants.Cluster.make
      ~channels:[ Spi.Chan.queue (chan "h"); Spi.Chan.queue (chan "g") ]
      ~sub_sites:[ inner_site () ]
      ~ports:[ pin (); pout () ]
      ~processes:
        [
          proc (Format.sprintf "ov%d_in" v) ~from_:pin_chan ~to_:(chan "h");
          proc (Format.sprintf "ov%d_out" v) ~from_:(chan "g") ~to_:pout_chan;
        ]
      (Format.sprintf "nest_var%d" v)
  in
  let nest_site =
    let iface =
      Variants.Interface.make
        ~ports:[ pin (); pout () ]
        ~clusters:[ outer_cluster 1; outer_cluster 2 ]
        "nestA"
    in
    {
      Variants.Structure.iface;
      wiring =
        [
          (I.Port_id.of_string "pin", top 2); (I.Port_id.of_string "pout", top 3);
        ];
    }
  in
  let flat_cluster v =
    Variants.Cluster.make
      ~channels:[ Spi.Chan.queue (chan "m") ]
      ~ports:[ pin (); pout () ]
      ~processes:
        [
          proc (Format.sprintf "bv%d_1" v) ~from_:pin_chan ~to_:(chan "m");
          proc (Format.sprintf "bv%d_2" v) ~from_:(chan "m") ~to_:pout_chan;
        ]
      (Format.sprintf "siteB_var%d" v)
  in
  let site_b =
    let iface =
      Variants.Interface.make
        ~ports:[ pin (); pout () ]
        ~clusters:[ flat_cluster 1; flat_cluster 2 ]
        "siteB"
    in
    {
      Variants.Structure.iface;
      wiring =
        [
          (I.Port_id.of_string "pin", top 3); (I.Port_id.of_string "pout", top 4);
        ];
    }
  in
  let system =
    Variants.System.make ~processes:shared ~channels
      ~sites:[ nest_site; site_b ]
      (Format.sprintf "nested_seed%d" seed)
  in
  Variants.System.validate_exn system;
  system

(* Split-adversarial stimulus schedule for [nested_family_system]:
   interleaves boundary injections with injections straight into site
   internals — including the nested site's innermost channel — while
   those sites are still cold, forcing the engines through the
   warm-or-split decision at every level.  Every target channel is
   declared by every configuration, so each per-configuration reference
   run accepts the same schedule. *)
let nested_family_stimuli ?(tokens = 3) system =
  ignore system;
  let mk at name i =
    {
      Sim.Engine.at;
      channel = I.Channel_id.of_string name;
      token = Spi.Token.make ~payload:i ();
    }
  in
  List.concat
    (List.init tokens (fun i ->
         [
           mk (1 + (4 * i)) "c0" i;
           mk (2 + (4 * i)) "nestA.h" i;
           mk (3 + (4 * i)) "nestA.inner.w" i;
           mk (4 + (4 * i)) "siteB.m" i;
         ]))
