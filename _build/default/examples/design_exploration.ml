(* Variant-aware system optimization (Table 1).

   Synthesizes the Figure 2 example four ways — each application
   independently, superposed, and variant-aware — and prints the cost
   table.  Also shows the serialization baselines from the literature
   and the design-time model.

   Run with: dune exec examples/design_exploration.exe *)

module F2 = Paper.Figure2

let name_units binding =
  let show set =
    String.concat ", "
      (List.map Spi.Ids.Process_id.to_string (Spi.Ids.Process_id.Set.elements set))
  in
  ( show (Synth.Binding.sw_processes binding),
    show (Synth.Binding.hw_processes binding) )

let () =
  let tech = F2.table1_tech in
  let apps = [ F2.app1; F2.app2 ] in

  Format.printf "=== Technology library ===@.%a@.@." Synth.Tech.pp tech;

  let s1 = Synth.Explore.optimal_exn tech [ F2.app1 ] in
  let s2 = Synth.Explore.optimal_exn tech [ F2.app2 ] in
  let sup =
    match Synth.Superpose.superpose tech apps with
    | Some r -> r
    | None -> failwith "superposition infeasible"
  in
  let var = Synth.Explore.optimal_exn tech apps in

  Format.printf "=== Table 1: system cost ===@.";
  Format.printf "%-14s | %-22s | %-22s | %5s@." "" "Software" "Hardware" "Total";
  let row name binding total =
    let sw, hw = name_units binding in
    Format.printf "%-14s | %-22s | %-22s | %5d@." name sw hw total
  in
  row "Application 1" s1.Synth.Explore.binding s1.Synth.Explore.cost.Synth.Cost.total;
  row "Application 2" s2.Synth.Explore.binding s2.Synth.Explore.cost.Synth.Cost.total;
  row "Superposition" sup.Synth.Superpose.merged sup.Synth.Superpose.cost.Synth.Cost.total;
  row "With variants" var.Synth.Explore.binding var.Synth.Explore.cost.Synth.Cost.total;

  Format.printf "@.=== Design time (decision-count model) ===@.";
  let d_ind = Synth.Design_time.decisions_independent apps in
  let d_var = Synth.Design_time.decisions_variant_aware apps in
  Format.printf "independent decisions: %d, variant-aware: %d (speedup %.2fx)@."
    d_ind d_var
    (Synth.Design_time.speedup apps);

  Format.printf "@.=== Serialization baselines ===@.";
  (match Synth.Serial.all_in_one tech apps with
  | Some s ->
    Format.printf "all-in-one (Kim/Karri style): total %d (mutual exclusion lost)@."
      s.Synth.Explore.cost.Synth.Cost.total
  | None -> Format.printf "all-in-one: infeasible@.");
  let orders = Synth.Serial.all_orders tech apps in
  List.iter
    (fun (r : Synth.Serial.incremental_result) ->
      Format.printf "incremental %s: total %d%s@."
        (String.concat " -> " r.order)
        r.cost.Synth.Cost.total
        (if r.feasible then "" else " (INFEASIBLE)"))
    orders;
  match Synth.Serial.cost_spread orders with
  | Some (best, worst) ->
    Format.printf "order influence: best %d vs worst %d@." best worst
  | None -> Format.printf "no feasible order@."
