examples/hierarchical_variants.ml: Format Interval List Sim Spi Variants
