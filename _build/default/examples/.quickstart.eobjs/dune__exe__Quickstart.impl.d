examples/quickstart.ml: Format Interval List Paper Sim Spi
