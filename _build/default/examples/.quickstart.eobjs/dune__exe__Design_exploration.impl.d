examples/design_exploration.ml: Format List Paper Spi String Synth
