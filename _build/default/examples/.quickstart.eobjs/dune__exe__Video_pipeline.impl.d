examples/video_pipeline.ml: Format List Sim Spi String Video
