examples/design_exploration.mli:
