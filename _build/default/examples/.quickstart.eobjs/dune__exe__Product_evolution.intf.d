examples/product_evolution.mli:
