examples/video_pipeline.mli:
