examples/buffer_sizing.mli:
