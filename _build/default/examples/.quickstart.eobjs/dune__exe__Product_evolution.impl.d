examples/product_evolution.ml: Format Interval List Sim Spi Variants
