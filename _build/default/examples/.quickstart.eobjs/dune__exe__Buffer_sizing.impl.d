examples/buffer_sizing.ml: Format List Sim Spi Video
