examples/variant_selection.ml: Format List Paper Sim Spi String Variants
