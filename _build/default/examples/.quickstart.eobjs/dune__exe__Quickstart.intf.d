examples/quickstart.mli:
