examples/hierarchical_variants.mli:
