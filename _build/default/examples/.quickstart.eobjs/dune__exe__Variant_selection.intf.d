examples/variant_selection.mli:
