examples/automotive.mli:
