examples/automotive.ml: Format Interval List Spi Synth Variants
