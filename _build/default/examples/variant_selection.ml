(* Function variants end to end on the paper's Figure 2/3 system:

   1. validate the design representation with both variants;
   2. derive each application by substituting a cluster for the
      interface (production / run-time variants);
   3. abstract the interface to a process with configurations
      (parameter extraction, Section 4) and simulate the run-time
      variant selection driven by PUser.

   Run with: dune exec examples/variant_selection.exe *)

module F2 = Paper.Figure2
module V = Variants

let section title = Format.printf "@.=== %s ===@." title

let () =
  let system = F2.system_with_selection in
  V.System.validate_exn system;
  Format.printf "%a@." V.System.pp system;
  List.iter
    (fun iface -> Format.printf "%a@." V.Interface.pp iface)
    (V.System.interfaces system);

  section "Derived applications (cluster substitution)";
  List.iter
    (fun (clusters, model) ->
      Format.printf "variant %s -> %a@."
        (String.concat "+" (List.map Spi.Ids.Cluster_id.to_string clusters))
        Spi.Model.pp_stats model)
    (V.Flatten.applications system);

  section "Parameter extraction (interface -> PVar)";
  let site =
    match V.System.find_site F2.iface1 system with
    | Some site -> site
    | None -> assert false
  in
  let extraction =
    V.Extraction.extract ~process_name:"PVar" ~wiring:site.V.Structure.wiring
      site.V.Structure.iface
  in
  Format.printf "%a@." V.Extraction.pp_result extraction;

  section "Simulating run-time variant selection (user picks V2)";
  let model, configurations = V.Flatten.abstract system in
  Format.printf "abstract model: %a@." Spi.Model.pp_stats model;
  (* PUser executes exactly once at start-up and asks for variant V2
     (mode PUser.v2 is second; steer it by budget + stimulus order: we
     inject the V2 token directly to keep the example deterministic). *)
  let stimuli =
    {
      Sim.Engine.at = 0;
      channel = F2.cv;
      token = Spi.Token.make ~tags:(Spi.Tag.Set.singleton F2.tag_v2) ();
    }
    :: List.init 5 (fun i ->
           {
             Sim.Engine.at = 2 + (3 * i);
             channel = F2.cx;
             token = Spi.Token.make ~payload:(i + 1) ();
           })
  in
  let result =
    Sim.Engine.run ~configurations ~stimuli
      ~firing_budget:[ (F2.p_user, 0) ]
      model
  in
  Format.printf "%a@." Sim.Engine.pp_summary result;
  List.iter
    (fun (time, process, config, latency) ->
      Format.printf "  t=%d: %a reconfigured to %a (t_conf=%d)@." time
        Spi.Ids.Process_id.pp process Spi.Ids.Config_id.pp config latency)
    (Sim.Trace.reconfigurations result.trace);
  let outputs = Sim.Trace.tokens_produced_on F2.cy result.trace in
  Format.printf "tokens delivered on CY: %d@." (List.length outputs)
