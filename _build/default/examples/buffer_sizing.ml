(* Buffer sizing: static bounds vs empirical high-water marks.

   SPI's purpose is to carry enough information for scheduling and
   allocation — buffer sizing included.  This example compares the
   conservative static queue bounds (Spi.Analysis) against empirical
   sizing from simulation (Sim.Sizing) on a bursty workload, then
   verifies the chosen sizes and shows what the paper's valves do to
   the video system's buffers during a reconfiguration.

   Run with: dune exec examples/buffer_sizing.exe *)

module I = Spi.Ids

let cid = I.Channel_id.of_string

let pipeline =
  Spi.Builder.(
    empty
    |> queue "in" |> queue "s1" |> queue "s2" |> queue "out"
    |> stage "parse" ~latency:(fixed 1) ~from:"in" ~into:"s1"
    |> worker "expand" ~latency:(fixed 2)
         ~consumes:[ ("s1", 1) ]
         ~produces:[ ("s2", 3) ]
    |> worker "pack" ~latency:(fixed 4)
         ~consumes:[ ("s2", 3) ]
         ~produces:[ ("out", 1) ]
    |> build_exn)

let bursty =
  (* 3 bursts of 6 tokens *)
  List.concat
    (List.init 3 (fun b ->
         List.init 6 (fun i ->
             {
               Sim.Engine.at = 1 + (b * 40) + i;
               channel = cid "in";
               token = Spi.Token.make ~payload:((b * 6) + i) ();
             })))

let () =
  Format.printf "=== Static vs empirical buffer bounds ===@.";
  Format.printf "%-8s | %12s | %12s@." "channel" "static bound" "observed";
  let suggestions = Sim.Sizing.suggest ~stimuli:[ bursty ] pipeline in
  List.iter
    (fun (cid_, static) ->
      let observed =
        List.find_map
          (fun s ->
            if I.Channel_id.equal s.Sim.Sizing.chan cid_ then
              Some s.Sim.Sizing.observed
            else None)
          suggestions
      in
      Format.printf "%-8s | %12s | %12s@."
        (I.Channel_id.to_string cid_)
        (match static with Some b -> string_of_int b | None -> "cyclic")
        (match observed with Some o -> string_of_int o | None -> "-"))
    (Spi.Analysis.queue_bounds ~source_executions:18 pipeline);

  (match Spi.Analysis.bottleneck pipeline with
  | Some (pid, latency) ->
    Format.printf "@.bottleneck: %a at latency %d (min initiation interval %d)@."
      I.Process_id.pp pid latency
      (Spi.Analysis.min_initiation_interval pipeline)
  | None -> ());

  Format.printf "@.=== Sizing with a safety margin of 1 ===@.";
  let sized =
    Sim.Sizing.apply (Sim.Sizing.suggest ~margin:1 ~stimuli:[ bursty ] pipeline) pipeline
  in
  List.iter
    (fun chan ->
      match Spi.Chan.capacity chan with
      | Some cap ->
        Format.printf "  %s: capacity %d@."
          (I.Channel_id.to_string (Spi.Chan.id chan))
          cap
      | None -> ())
    (Spi.Model.channels sized);
  (match Sim.Sizing.verify ~stimuli:[ bursty ] sized with
  | Ok () -> Format.printf "verification: the sized model absorbs the workload@."
  | Error c ->
    Format.printf "verification FAILED: %s overflows@." (I.Channel_id.to_string c));

  Format.printf "@.=== Video system: buffers across a reconfiguration ===@.";
  let built = Video.System.build Video.System.default_params in
  let stimuli =
    Video.Scenario.switching_demo ~frames:30 ~period:5 ~switches:[ (40, "fB") ] ()
  in
  let result =
    Sim.Engine.run ~configurations:built.Video.System.configurations ~stimuli
      built.Video.System.model
  in
  let stats = Sim.Stats.of_result built.Video.System.model result in
  List.iter
    (fun name ->
      match Sim.Stats.channel (cid name) stats with
      | Some c ->
        Format.printf "  %-6s high-water %d (through %d)@." name
          c.Sim.Stats.high_water c.Sim.Stats.tokens_through
      | None -> ())
    [ "CVin"; "CV1"; "CV2"; "CV3" ];
  Format.printf "The input valve keeps CV1..CV3 shallow even while the \
                 stages are being reconfigured.@."
