(* Product-generation evolution: the paper's reuse story.

   Generation 1 ships a communication device whose protocol stack is a
   production variant (the designer picks one; the product is fixed).
   Generation 2 reuses the same parts but (a) adds a new protocol
   cluster developed elsewhere — reuse is possible because its port
   signature matches — and (b) turns the interface into a run-time
   variant selected at boot.  Finally, measurements of a simulated
   prototype refine the wide specification intervals.

   Run with: dune exec examples/product_evolution.exe *)

module I = Spi.Ids
module V = Variants

let one = Interval.point 1

let proto_cluster name latency =
  let pi = V.Port.input "rx" and po = V.Port.output "tx" in
  V.Cluster.make ~ports:[ pi; po ]
    ~processes:
      [
        Spi.Process.simple ~latency
          ~consumes:[ (V.Port.channel_of (V.Port.id pi), one) ]
          ~produces:[ (V.Port.channel_of (V.Port.id po), Spi.Mode.produce one) ]
          (I.Process_id.of_string (name ^ "_stack"));
      ]
    name

let gen1 =
  let radio = I.Channel_id.of_string "RADIO" in
  let frames = I.Channel_id.of_string "FRAMES" in
  let app = I.Channel_id.of_string "APP" in
  let iface =
    V.Interface.make
      ~ports:[ V.Port.input "rx"; V.Port.output "tx" ]
      ~clusters:
        [
          proto_cluster "proto_v1" (Interval.make 2 9);
          proto_cluster "proto_v2" (Interval.make 3 12);
        ]
      "protocol"
  in
  V.System.make
    ~processes:
      [
        Spi.Process.simple ~latency:one
          ~consumes:[ (radio, one) ]
          ~produces:[ (frames, Spi.Mode.produce one) ]
          (I.Process_id.of_string "frontend");
      ]
    ~channels:[ Spi.Chan.queue radio; Spi.Chan.queue frames; Spi.Chan.queue app ]
    ~sites:
      [
        {
          V.Structure.iface;
          wiring =
            [
              (I.Port_id.of_string "rx", frames);
              (I.Port_id.of_string "tx", app);
            ];
        };
      ]
    "comms-gen1"

let () =
  V.System.validate_exn gen1;
  Format.printf "=== Generation 1 ===@.%a@." V.System.pp gen1;

  (* the designer commits generation 1 to proto_v1: production variant *)
  let product1 =
    V.Evolution.fix_variant
      (I.Interface_id.of_string "protocol")
      (I.Cluster_id.of_string "proto_v1")
      gen1
  in
  Format.printf "gen1 product (fixed to proto_v1): %d sites, %d processes@."
    (V.System.site_count product1)
    (List.length (V.System.processes product1));

  (* generation 2: a third protocol arrives from another team *)
  Format.printf "@.=== Generation 2 ===@.";
  let proto_v3 = proto_cluster "proto_v3" (Interval.make 1 6) in
  let iface = List.hd (V.System.interfaces gen1) in
  Format.printf "reuse check for proto_v3: %a@." V.Reuse.pp_compatibility
    (V.Reuse.check iface proto_v3);
  let extended_iface =
    match V.Reuse.extend_interface iface proto_v3 with
    | Ok i -> i
    | Error e -> failwith e
  in
  let gen2_base =
    let site = List.hd (V.System.sites gen1) in
    V.System.make
      ~processes:(V.System.processes gen1)
      ~channels:(Spi.Chan.register (I.Channel_id.of_string "BOOT") :: V.System.channels gen1)
      ~sites:[ { site with V.Structure.iface = extended_iface } ]
      "comms-gen2"
  in
  (* ... and the variant becomes run-time selected at boot *)
  let boot = I.Channel_id.of_string "BOOT" in
  let selection =
    V.Selection.make
      ~config_latencies:
        [
          (I.Cluster_id.of_string "proto_v1", 3);
          (I.Cluster_id.of_string "proto_v2", 3);
          (I.Cluster_id.of_string "proto_v3", 2);
        ]
      ~initial:(I.Cluster_id.of_string "proto_v1")
      [
        V.Selection.rule "b1"
          ~guard:Spi.Predicate.(has_tag boot (Spi.Tag.make "v1"))
          ~target:(I.Cluster_id.of_string "proto_v1");
        V.Selection.rule "b2"
          ~guard:Spi.Predicate.(has_tag boot (Spi.Tag.make "v2"))
          ~target:(I.Cluster_id.of_string "proto_v2");
        V.Selection.rule "b3"
          ~guard:Spi.Predicate.(has_tag boot (Spi.Tag.make "v3"))
          ~target:(I.Cluster_id.of_string "proto_v3");
      ]
  in
  let gen2 =
    V.Evolution.make_runtime (I.Interface_id.of_string "protocol") selection gen2_base
  in
  V.System.validate_exn gen2;
  Format.printf "gen2: %d protocol variants, run-time selected@."
    (V.Interface.variant_count (List.hd (V.System.interfaces gen2)));

  (* boot into proto_v3 and measure *)
  let model, configurations = V.Flatten.abstract gen2 in
  let stimuli =
    {
      Sim.Engine.at = 0;
      channel = boot;
      token = Spi.Token.make ~tags:(Spi.Tag.Set.singleton (Spi.Tag.make "v3")) ();
    }
    :: List.init 8 (fun i ->
           {
             Sim.Engine.at = 2 + (4 * i);
             channel = I.Channel_id.of_string "RADIO";
             token = Spi.Token.make ~payload:(i + 1) ();
           })
  in
  let result = Sim.Engine.run ~configurations ~stimuli model in
  Format.printf "@.boot into proto_v3: %a@." Sim.Engine.pp_summary result;
  List.iter
    (fun (t, p, c, l) ->
      Format.printf "  t=%d %a -> %a (t_conf %d)@." t I.Process_id.pp p
        I.Config_id.pp c l)
    (Sim.Trace.reconfigurations result.Sim.Engine.trace);

  (* measurements refine the abstract process's wide intervals *)
  let protocol = I.Process_id.of_string "protocol" in
  let before = Spi.Model.get_process protocol model in
  let refined = Sim.Refine.refine_process result before in
  Format.printf "@.latency before refinement: %a, after: %a@." Interval.pp
    (Spi.Process.latency_hull before)
    Interval.pp
    (Spi.Process.latency_hull refined)
