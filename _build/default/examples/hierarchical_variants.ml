(* Hierarchical function variants (Def. 1 allows clusters to embed
   interfaces).  A multi-standard TV receiver: the decoder interface
   selects between PAL and NTSC; the PAL decoder itself embeds an audio
   sub-interface with stereo and mono variants.  Flattening resolves
   nested choices recursively.

   Run with: dune exec examples/hierarchical_variants.exe *)

module I = Spi.Ids
module V = Variants

let one = Interval.point 1

let chain_proc ~latency ~from_ ~to_ name =
  Spi.Process.simple ~latency:(Interval.point latency)
    ~consumes:[ (from_, one) ]
    ~produces:[ (to_, Spi.Mode.produce one) ]
    (I.Process_id.of_string name)

let port_in = V.Port.input "sin"
let port_out = V.Port.output "sout"
let pin = V.Port.channel_of (V.Port.id port_in)
let pout = V.Port.channel_of (V.Port.id port_out)

(* audio sub-interface: stereo / mono clusters with the same ports *)
let audio_cluster name latency =
  V.Cluster.make
    ~ports:[ port_in; port_out ]
    ~processes:[ chain_proc ~latency ~from_:pin ~to_:pout name ]
    name

let audio_interface =
  V.Interface.make
    ~ports:[ port_in; port_out ]
    ~clusters:[ audio_cluster "stereo" 4; audio_cluster "mono" 2 ]
    "audio"

(* PAL decoder: demodulate -> (audio sub-interface) -> frame *)
let pal_cluster =
  let k1 = I.Channel_id.of_string "k1" and k2 = I.Channel_id.of_string "k2" in
  V.Cluster.make
    ~channels:[ Spi.Chan.queue k1; Spi.Chan.queue k2 ]
    ~sub_sites:
      [
        {
          V.Structure.iface = audio_interface;
          wiring = [ (V.Port.id port_in, k1); (V.Port.id port_out, k2) ];
        };
      ]
    ~ports:[ port_in; port_out ]
    ~processes:
      [
        chain_proc ~latency:3 ~from_:pin ~to_:k1 "pal_demod";
        chain_proc ~latency:2 ~from_:k2 ~to_:pout "pal_frame";
      ]
    "pal"

(* NTSC decoder: a flat two-stage chain *)
let ntsc_cluster =
  let k = I.Channel_id.of_string "k" in
  V.Cluster.make
    ~channels:[ Spi.Chan.queue k ]
    ~ports:[ port_in; port_out ]
    ~processes:
      [
        chain_proc ~latency:2 ~from_:pin ~to_:k "ntsc_demod";
        chain_proc ~latency:3 ~from_:k ~to_:pout "ntsc_frame";
      ]
    "ntsc"

let c_ant = I.Channel_id.of_string "ANT"
let c_tuner = I.Channel_id.of_string "TUNED"
let c_dec = I.Channel_id.of_string "DECODED"
let c_screen = I.Channel_id.of_string "SCREEN"

let tv_system =
  let decoder =
    V.Interface.make
      ~ports:[ port_in; port_out ]
      ~clusters:[ pal_cluster; ntsc_cluster ]
      "decoder"
  in
  V.System.make
    ~processes:
      [
        chain_proc ~latency:1 ~from_:c_ant ~to_:c_tuner "tuner";
        chain_proc ~latency:1 ~from_:c_dec ~to_:c_screen "display";
      ]
    ~channels:
      [
        Spi.Chan.queue c_ant;
        Spi.Chan.queue c_tuner;
        Spi.Chan.queue c_dec;
        Spi.Chan.queue c_screen;
      ]
    ~sites:
      [
        {
          V.Structure.iface = decoder;
          wiring =
            [ (V.Port.id port_in, c_tuner); (V.Port.id port_out, c_dec) ];
        };
      ]
    "tv-receiver"

let () =
  V.System.validate_exn tv_system;
  Format.printf "=== Multi-standard TV receiver (hierarchical variants) ===@.";
  Format.printf "%a@." V.System.pp tv_system;
  Format.printf "%a@." V.Commonality.pp (V.Commonality.analyze tv_system);

  (* top-level choices multiply with nested ones: pal{stereo,mono} + ntsc *)
  let derive name choices =
    let model = V.Flatten.flatten tv_system (V.Flatten.choice_of_list choices) in
    Format.printf "@.%s -> %a@." name Spi.Model.pp_stats model;
    List.iter
      (fun p -> Format.printf "  %a@." Spi.Ids.Process_id.pp (Spi.Process.id p))
      (Spi.Model.processes model);
    model
  in
  let pal_stereo =
    derive "PAL + stereo" [ ("decoder", "pal"); ("audio", "stereo") ]
  in
  ignore (derive "PAL + mono" [ ("decoder", "pal"); ("audio", "mono") ]);
  ignore (derive "NTSC" [ ("decoder", "ntsc") ]);

  (* run the PAL+stereo product end to end *)
  let stimuli =
    List.init 6 (fun i ->
        {
          Sim.Engine.at = 1 + (2 * i);
          channel = c_ant;
          token = Spi.Token.make ~payload:(i + 1) ();
        })
  in
  let result = Sim.Engine.run ~stimuli pal_stereo in
  Format.printf "@.PAL+stereo simulation: %a@." Sim.Engine.pp_summary result;
  Format.printf "frames on screen: %d@."
    (List.length (Sim.Trace.tokens_produced_on c_screen result.Sim.Engine.trace))
