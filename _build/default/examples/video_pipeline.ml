(* The industrial reconfigurable video system of Figure 4.

   A two-stage chain processes a frame stream while a controller
   switches both stages between function variants on user requests.
   With the valves PIn/POut active, no invalid image ever reaches the
   output; the second run disables the valves and the checker catches
   inconsistently processed frames.

   Run with: dune exec examples/video_pipeline.exe *)

let run_scenario ~with_valves =
  let built =
    Video.System.build { Video.System.default_params with with_valves }
  in
  let stimuli =
    Video.Scenario.switching_demo ~frames:40 ~period:5
      ~switches:[ (52, "fB"); (120, "fA") ]
      ()
  in
  let result =
    Sim.Engine.run ~policy:Sim.Engine.Typical
      ~configurations:built.Video.System.configurations ~stimuli
      built.Video.System.model
  in
  (built, result, Video.Checker.check result)

let () =
  Format.printf "=== Figure 4: reconfigurable video system ===@.";
  let built, result, report = run_scenario ~with_valves:true in
  Format.printf "model: %a@." Spi.Model.pp_stats built.Video.System.model;
  Format.printf "simulation: %a@." Sim.Engine.pp_summary result;
  Format.printf "checker: %a@." Video.Checker.pp report;
  Format.printf "invalid-image property: %s@."
    (if Video.Checker.is_safe report then "SAFE (valves active)" else "VIOLATED");

  List.iter
    (fun (time, process, config, latency) ->
      Format.printf "  t=%d: %a -> %a (t_conf=%d)@." time
        Spi.Ids.Process_id.pp process Spi.Ids.Config_id.pp config latency)
    (Sim.Trace.reconfigurations result.trace);

  Format.printf "@.=== Ablation: valves removed ===@.";
  let _, result_nv, report_nv = run_scenario ~with_valves:false in
  Format.printf "simulation: %a@." Sim.Engine.pp_summary result_nv;
  Format.printf "checker: %a@." Video.Checker.pp report_nv;
  (match report_nv.Video.Checker.invalid_clean with
  | [] ->
    Format.printf
      "no invalid image in this run (try more aggressive switching)@."
  | images ->
    Format.printf "invalid images emitted clean: %s@."
      (String.concat ", " (List.map string_of_int images)));
  Format.printf "@.The valves implement the suspend/resume protocol: PIn \
                 destroys frames while suspended, POut holds the last valid \
                 image, and the 'fresh' tag re-opens the chain.@."
