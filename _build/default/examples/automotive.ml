(* Automotive control with regional function variants.

   The paper's introduction motivates variants with "automotive control
   systems to be used in countries with different emission laws".  This
   example builds an engine controller whose emission strategy and
   whose diagnostic protocol both exist in EU and US variants.  The two
   variant sets are *related*: a product always picks the same region
   for both (Variant_space linkage).  Synthesis then places the
   software on a two-ECU architecture under an end-to-end deadline.

   Run with: dune exec examples/automotive.exe *)

module I = Spi.Ids
module V = Variants

let one = Interval.point 1

let chain_proc ~latency ~from_ ~to_ name =
  Spi.Process.simple ~latency
    ~consumes:[ (from_, one) ]
    ~produces:[ (to_, Spi.Mode.produce one) ]
    (I.Process_id.of_string name)

let cid = I.Channel_id.of_string
let pid = I.Process_id.of_string

let port_in = V.Port.input "pi"
let port_out = V.Port.output "po"
let pi_chan = V.Port.channel_of (V.Port.id port_in)
let po_chan = V.Port.channel_of (V.Port.id port_out)

let leaf name latency =
  V.Cluster.make
    ~ports:[ port_in; port_out ]
    ~processes:[ chain_proc ~latency ~from_:pi_chan ~to_:po_chan name ]
    name

(* emission strategies: the EU variant needs a particulate model *)
let emission_eu =
  let k = cid "k" in
  V.Cluster.make
    ~channels:[ Spi.Chan.queue k ]
    ~ports:[ port_in; port_out ]
    ~processes:
      [
        chain_proc ~latency:(Interval.make 2 3) ~from_:pi_chan ~to_:k "lambda_eu";
        chain_proc ~latency:(Interval.make 3 5) ~from_:k ~to_:po_chan "particulate";
      ]
    "emission_eu"

let emission_us = leaf "emission_us" (Interval.make 4 6)

(* diagnostics: OBD variants per region *)
let diag_eu = leaf "obd_eu" (Interval.make 1 2)
let diag_us = leaf "obd_us" (Interval.make 2 3)

let sensors = cid "SENSORS"
let cooked = cid "COOKED"
let actuation = cid "ACTUATION"
let injectors = cid "INJECTORS"
let diag_in = cid "DIAG_IN"
let diag_out = cid "DIAG_OUT"

let system =
  let site ports_iface wiring = { V.Structure.iface = ports_iface; wiring } in
  let emission =
    V.Interface.make ~ports:[ port_in; port_out ]
      ~clusters:[ emission_eu; emission_us ]
      "emission"
  and diagnostics =
    V.Interface.make ~ports:[ port_in; port_out ]
      ~clusters:[ diag_eu; diag_us ]
      "diagnostics"
  in
  V.System.make
    ~processes:
      [
        chain_proc ~latency:(Interval.point 1) ~from_:sensors ~to_:cooked "acquire";
        Spi.Process.simple ~latency:(Interval.point 2)
          ~consumes:[ (actuation, one) ]
          ~produces:
            [
              (injectors, Spi.Mode.produce one);
              (diag_in, Spi.Mode.produce one);
            ]
          (pid "actuate");
      ]
    ~channels:
      [
        Spi.Chan.queue sensors;
        Spi.Chan.queue cooked;
        Spi.Chan.queue actuation;
        Spi.Chan.queue injectors;
        Spi.Chan.queue diag_in;
        Spi.Chan.queue diag_out;
      ]
    ~sites:
      [
        site emission
          [ (V.Port.id port_in, cooked); (V.Port.id port_out, actuation) ];
        site diagnostics
          [ (V.Port.id port_in, diag_in); (V.Port.id port_out, diag_out) ];
      ]
    ~constraints:
      [
        Spi.Constraint_.latency_path ~name:"control-loop" ~from_:(pid "acquire")
          ~to_:(pid "actuate") ~bound:12;
      ]
    "engine-controller"

let () =
  V.System.validate_exn system;
  Format.printf "=== Engine controller with regional variants ===@.";
  Format.printf "%a@." V.System.pp system;
  Format.printf "%a@." V.Commonality.pp (V.Commonality.analyze system);

  (* related variant sets: emission and diagnostics pick the same region *)
  let linkage =
    [ [ I.Interface_id.of_string "emission"; I.Interface_id.of_string "diagnostics" ] ]
  in
  Format.printf "@.variant space: %d unlinked, %d with regional linkage@."
    (V.Variant_space.independent_count system)
    (V.Variant_space.count ~linkage system);
  List.iter
    (fun assignment ->
      Format.printf "  product: %a@." V.Variant_space.pp_assignment assignment)
    (V.Variant_space.enumerate ~linkage system);

  (* check the control-loop deadline on every linked product *)
  Format.printf "@.=== Deadline check (hull latencies) ===@.";
  List.iter
    (fun assignment ->
      let model = V.Flatten.flatten system (V.Variant_space.to_choice assignment) in
      let latency_of p =
        match Spi.Model.find_process p model with
        | Some proc -> Interval.hi (Spi.Process.latency_hull proc)
        | None -> 0
      in
      List.iter
        (fun (c, o) ->
          Format.printf "  %-40s %a: %a@."
            (Format.asprintf "%a" V.Variant_space.pp_assignment assignment)
            Spi.Constraint_.pp c Spi.Constraint_.pp_outcome o)
        (Spi.Constraint_.check_all ~latency_of model (V.System.constraints system)))
    (V.Variant_space.enumerate ~linkage system);

  (* two-ECU placement over the linked products *)
  Format.printf "@.=== Two-ECU placement (variant-aware) ===@.";
  let apps =
    List.map
      (fun assignment ->
        let model = V.Flatten.flatten system (V.Variant_space.to_choice assignment) in
        Synth.App.of_model
          (Format.asprintf "%a" V.Variant_space.pp_assignment assignment)
          model)
      (V.Variant_space.enumerate ~linkage system)
  in
  let union = I.Process_id.Set.elements (Synth.App.union_procs apps) in
  let tech =
    Synth.Tech.of_weights ~weight:V.Generator.process_weight union
  in
  let ecus =
    [
      Synth.Multi.processor ~name:"ecu-main" ~capacity:100 ~cost:20;
      Synth.Multi.processor ~name:"ecu-aux" ~capacity:60 ~cost:8;
    ]
  in
  match Synth.Multi.optimal tech ecus apps with
  | None -> Format.printf "no feasible placement@."
  | Some sol ->
    Format.printf "%a@." Synth.Multi.pp_solution sol;
    Format.printf "@.Mutually exclusive regional variants share both ECUs; \
                   only the common part is counted once per product.@."
