(* Tests for the graph substrate: digraph operations, traversals,
   strongly connected components and dot export. *)

module G = Graphlib.Digraph.Make (struct
  type t = int

  let compare = Int.compare
  let pp = Format.pp_print_int
end)

module T = Graphlib.Traverse.Make (G)
module Scc = Graphlib.Scc.Make (G)
module Dot = Graphlib.Dot.Make (G)

let of_edges = G.of_edges

let test_empty () =
  Alcotest.(check bool) "empty" true (G.is_empty G.empty);
  Alcotest.(check int) "no nodes" 0 (G.node_count G.empty);
  Alcotest.(check int) "no edges" 0 (G.edge_count G.empty)

let test_add_remove () =
  let g = of_edges [ (1, 2); (2, 3); (1, 3) ] in
  Alcotest.(check int) "nodes" 3 (G.node_count g);
  Alcotest.(check int) "edges" 3 (G.edge_count g);
  Alcotest.(check bool) "mem edge" true (G.mem_edge 1 2 g);
  Alcotest.(check bool) "no reverse edge" false (G.mem_edge 2 1 g);
  let g = G.remove_edge 1 2 g in
  Alcotest.(check bool) "edge removed" false (G.mem_edge 1 2 g);
  Alcotest.(check int) "nodes kept" 3 (G.node_count g);
  let g = G.remove_node 3 g in
  Alcotest.(check int) "node gone" 2 (G.node_count g);
  Alcotest.(check int) "incident edges gone" 0 (G.edge_count g)

let test_parallel_edges_collapse () =
  let g = of_edges [ (1, 2); (1, 2) ] in
  Alcotest.(check int) "one edge" 1 (G.edge_count g)

let test_degrees () =
  let g = of_edges [ (1, 2); (1, 3); (4, 1) ] in
  Alcotest.(check int) "out" 2 (G.out_degree 1 g);
  Alcotest.(check int) "in" 1 (G.in_degree 1 g);
  Alcotest.(check int) "isolated out" 0 (G.out_degree 3 g)

let test_transpose () =
  let g = of_edges [ (1, 2); (2, 3) ] in
  let t = G.transpose g in
  Alcotest.(check bool) "reversed" true (G.mem_edge 2 1 t);
  Alcotest.(check bool) "old gone" false (G.mem_edge 1 2 t);
  Alcotest.(check int) "same nodes" (G.node_count g) (G.node_count t)

let test_union () =
  let g = G.union (of_edges [ (1, 2) ]) (of_edges [ (2, 3) ]) in
  Alcotest.(check int) "nodes" 3 (G.node_count g);
  Alcotest.(check bool) "both edges" true (G.mem_edge 1 2 g && G.mem_edge 2 3 g)

let test_topological_sort () =
  let g = of_edges [ (1, 2); (1, 3); (2, 4); (3, 4) ] in
  match T.topological_sort g with
  | Error _ -> Alcotest.fail "expected acyclic"
  | Ok order ->
    Alcotest.(check int) "covers all" 4 (List.length order);
    let pos n =
      let rec go i = function
        | [] -> Alcotest.fail "missing node"
        | x :: rest -> if x = n then i else go (i + 1) rest
      in
      go 0 order
    in
    List.iter
      (fun (u, v) ->
        Alcotest.(check bool)
          (Format.sprintf "%d before %d" u v)
          true
          (pos u < pos v))
      (G.edges g)

let test_cycle_detection () =
  let g = of_edges [ (1, 2); (2, 3); (3, 1); (3, 4) ] in
  (match T.topological_sort g with
  | Ok _ -> Alcotest.fail "expected cycle"
  | Error cycle ->
    Alcotest.(check bool) "cycle non-empty" true (cycle <> []);
    List.iter
      (fun n ->
        Alcotest.(check bool) "cycle node in graph" true (G.mem_node n g))
      cycle);
  Alcotest.(check bool) "is_acyclic false" false (T.is_acyclic g);
  Alcotest.(check bool) "is_acyclic true" true
    (T.is_acyclic (of_edges [ (1, 2) ]))

let test_reachable () =
  let g = of_edges [ (1, 2); (2, 3); (4, 5) ] in
  let r = T.reachable 1 g in
  Alcotest.(check int) "three reachable" 3 (G.Node_set.cardinal r);
  Alcotest.(check bool) "not across components" false (G.Node_set.mem 4 r)

let test_bfs_dfs () =
  let g = of_edges [ (1, 2); (1, 3); (2, 4) ] in
  (match T.bfs_from 1 g with
  | 1 :: _ as order ->
    Alcotest.(check int) "bfs covers" 4 (List.length order)
  | _ -> Alcotest.fail "bfs must start at root");
  let post = T.dfs_postorder g in
  Alcotest.(check int) "postorder covers" 4 (List.length post)

let test_longest_path () =
  let g = of_edges [ (1, 2); (2, 3); (1, 3) ] in
  match T.longest_path_weights ~weight:(fun n -> n * 10) g with
  | Error _ -> Alcotest.fail "acyclic expected"
  | Ok w ->
    (* longest to 3: 1 -> 2 -> 3 = 10 + 20 + 30 *)
    Alcotest.(check int) "longest at 3" 60 (G.Node_map.find 3 w);
    Alcotest.(check int) "longest at 1" 10 (G.Node_map.find 1 w)

let test_scc () =
  let g = of_edges [ (1, 2); (2, 1); (2, 3); (3, 4); (4, 3); (5, 5) ] in
  let comps = Scc.components g in
  let sorted =
    List.sort compare (List.map (fun c -> List.sort compare c) comps)
  in
  Alcotest.(check (list (list int)))
    "components" [ [ 1; 2 ]; [ 3; 4 ]; [ 5 ] ] sorted;
  let comps, edges = Scc.condensation g in
  Alcotest.(check int) "condensation size" 3 (List.length comps);
  Alcotest.(check int) "condensation edges" 1 (List.length edges)

let test_dot () =
  let g = of_edges [ (1, 2) ] in
  let s = Dot.to_string ~node_label:string_of_int g in
  Alcotest.(check bool) "digraph" true
    (String.length s > 0 && String.sub s 0 7 = "digraph");
  let contains ~needle haystack =
    let n = String.length needle and h = String.length haystack in
    let rec go i = i + n <= h && (String.sub haystack i n = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "has edge" true (contains ~needle:"->" s)

(* ---------------------------- properties --------------------------- *)

let gen_edges =
  QCheck.Gen.(
    list_size (int_range 0 40)
      (pair (int_range 0 15) (int_range 0 15)))

let arb_graph =
  QCheck.make
    ~print:(fun edges ->
      String.concat ";"
        (List.map (fun (u, v) -> Format.sprintf "%d->%d" u v) edges))
    gen_edges

let properties =
  [
    QCheck.Test.make ~name:"transpose involutive" ~count:200 arb_graph
      (fun edges ->
        let g = of_edges edges in
        let tt = G.transpose (G.transpose g) in
        G.edges g = G.edges tt && G.nodes g = G.nodes tt);
    QCheck.Test.make ~name:"edge count matches list" ~count:200 arb_graph
      (fun edges ->
        let g = of_edges edges in
        G.edge_count g = List.length (G.edges g));
    QCheck.Test.make ~name:"topo order covers acyclic graphs" ~count:200
      arb_graph (fun edges ->
        (* force acyclicity by orienting edges upward *)
        let acyclic =
          List.filter_map
            (fun (u, v) -> if u < v then Some (u, v) else if v < u then Some (v, u) else None)
            edges
        in
        let g = of_edges acyclic in
        match T.topological_sort g with
        | Error _ -> false
        | Ok order -> List.length order = G.node_count g);
    QCheck.Test.make ~name:"scc partitions nodes" ~count:200 arb_graph
      (fun edges ->
        let g = of_edges edges in
        let comps = Scc.components g in
        let all = List.concat comps in
        List.length all = G.node_count g
        && List.sort compare all = List.sort compare (G.nodes g));
    QCheck.Test.make ~name:"condensation is acyclic" ~count:200 arb_graph
      (fun edges ->
        let g = of_edges edges in
        let _, cedges = Scc.condensation g in
        let cg = of_edges cedges in
        T.is_acyclic cg);
    QCheck.Test.make ~name:"reachable contains root and succs" ~count:200
      arb_graph (fun edges ->
        match edges with
        | [] -> true
        | (u, v) :: _ ->
          let g = of_edges edges in
          let r = T.reachable u g in
          G.Node_set.mem u r && G.Node_set.mem v r);
  ]

let suite =
  ( "graphlib",
    [
      Alcotest.test_case "empty" `Quick test_empty;
      Alcotest.test_case "add/remove" `Quick test_add_remove;
      Alcotest.test_case "parallel edges collapse" `Quick
        test_parallel_edges_collapse;
      Alcotest.test_case "degrees" `Quick test_degrees;
      Alcotest.test_case "transpose" `Quick test_transpose;
      Alcotest.test_case "union" `Quick test_union;
      Alcotest.test_case "topological sort" `Quick test_topological_sort;
      Alcotest.test_case "cycle detection" `Quick test_cycle_detection;
      Alcotest.test_case "reachable" `Quick test_reachable;
      Alcotest.test_case "bfs/dfs" `Quick test_bfs_dfs;
      Alcotest.test_case "longest path" `Quick test_longest_path;
      Alcotest.test_case "scc" `Quick test_scc;
      Alcotest.test_case "dot export" `Quick test_dot;
    ]
    @ List.map (QCheck_alcotest.to_alcotest ~long:false) properties )

(* appended: distinct nodes sharing a label stay distinct in dot *)
module Labeled = Graphlib.Digraph.Make (struct
  type t = int * string

  let compare = compare
  let pp ppf (i, s) = Format.fprintf ppf "%d%s" i s
end)

module Labeled_dot = Graphlib.Dot.Make (Labeled)

let test_dot_same_labels () =
  let g =
    Labeled.add_edge (1, "x") (2, "x") Labeled.empty
  in
  (* both nodes are labeled "x"; they must still be two dot nodes *)
  let s = Labeled_dot.to_string ~node_label:(fun (_, l) -> l) g in
  let count needle haystack =
    let n = String.length needle and h = String.length haystack in
    let rec go i acc =
      if i + n > h then acc
      else if String.sub haystack i n = needle then go (i + 1) (acc + 1)
      else go (i + 1) acc
    in
    go 0 0
  in
  Alcotest.(check int) "two label statements" 2 (count "label=\"x\"" s);
  Alcotest.(check int) "one edge" 1 (count "->" s)

let suite =
  let name, tests = suite in
  ( name,
    tests
    @ [ Alcotest.test_case "dot distinct nodes same label" `Quick test_dot_same_labels ] )
