(* Tests for modes, predicates and activation functions. *)

module I = Spi.Ids
open Spi.Predicate

let cid = I.Channel_id.of_string
let mid = I.Mode_id.of_string
let one = Interval.point 1
let tag = Spi.Tag.make

let mk_mode ?payload_policy name ~latency ~consumes ~produces =
  Spi.Mode.make ?payload_policy ~latency ~consumes ~produces (mid name)

let sample_mode =
  mk_mode "m" ~latency:(Interval.make 3 5)
    ~consumes:[ (cid "a", Interval.make 1 3) ]
    ~produces:
      [ (cid "b", Spi.Mode.produce ~tags:(Spi.Tag.Set.singleton (tag "t")) (Interval.make 2 5)) ]

(* ------------------------------ modes ------------------------------ *)

let test_mode_accessors () =
  Alcotest.(check bool) "latency" true
    (Interval.equal (Spi.Mode.latency sample_mode) (Interval.make 3 5));
  Alcotest.(check bool) "consumption" true
    (Interval.equal (Spi.Mode.consumption sample_mode (cid "a")) (Interval.make 1 3));
  Alcotest.(check bool) "consumption absent is zero" true
    (Interval.equal (Spi.Mode.consumption sample_mode (cid "zz")) Interval.zero);
  (match Spi.Mode.production_on sample_mode (cid "b") with
  | None -> Alcotest.fail "production expected"
  | Some p ->
    Alcotest.(check bool) "rate" true (Interval.equal p.Spi.Mode.rate (Interval.make 2 5));
    Alcotest.(check bool) "tags" true
      (Spi.Tag.Set.mem (tag "t") p.Spi.Mode.tags));
  Alcotest.(check int) "consumed channels" 1
    (I.Channel_id.Set.cardinal (Spi.Mode.consumed_channels sample_mode));
  Alcotest.(check int) "produced channels" 1
    (I.Channel_id.Set.cardinal (Spi.Mode.produced_channels sample_mode))

let test_mode_validation () =
  let dup () =
    ignore
      (mk_mode "bad" ~latency:one
         ~consumes:[ (cid "a", one); (cid "a", one) ]
         ~produces:[])
  in
  (try
     dup ();
     Alcotest.fail "duplicate channel accepted"
   with Invalid_argument _ -> ());
  try
    ignore
      (mk_mode "bad" ~latency:(Interval.make (-1) 2) ~consumes:[] ~produces:[]);
    Alcotest.fail "negative latency accepted"
  with Invalid_argument _ -> ()

let test_mode_join () =
  let other =
    mk_mode "n" ~latency:(Interval.make 1 2)
      ~consumes:[ (cid "c", one) ]
      ~produces:[ (cid "b", Spi.Mode.produce (Interval.point 1)) ]
  in
  let j = Spi.Mode.join (mid "j") sample_mode other in
  Alcotest.(check bool) "latency hull" true
    (Interval.equal (Spi.Mode.latency j) (Interval.make 1 5));
  (* channel only on one side gets a zero lower bound *)
  Alcotest.(check bool) "one-sided consumption" true
    (Interval.equal (Spi.Mode.consumption j (cid "c")) (Interval.make 0 1));
  Alcotest.(check bool) "shared production hull" true
    (match Spi.Mode.production_on j (cid "b") with
    | Some p -> Interval.equal p.Spi.Mode.rate (Interval.make 1 5)
    | None -> false)

let test_mode_map_channels () =
  let renamed =
    Spi.Mode.map_channels
      (fun c -> cid (I.Channel_id.to_string c ^ "!"))
      sample_mode
  in
  Alcotest.(check bool) "consumption moved" true
    (Interval.equal (Spi.Mode.consumption renamed (cid "a!")) (Interval.make 1 3));
  Alcotest.(check bool) "old name gone" true
    (Interval.equal (Spi.Mode.consumption renamed (cid "a")) Interval.zero);
  (* collapsing two channels onto one must be rejected *)
  let two =
    mk_mode "two" ~latency:one
      ~consumes:[ (cid "a", one); (cid "b", one) ]
      ~produces:[]
  in
  try
    ignore (Spi.Mode.map_channels (fun _ -> cid "same") two);
    Alcotest.fail "collision accepted"
  with Invalid_argument _ -> ()

let test_mode_scale_latency () =
  let m = Spi.Mode.scale_latency 3 sample_mode in
  Alcotest.(check bool) "scaled" true
    (Interval.equal (Spi.Mode.latency m) (Interval.make 9 15))

(* ---------------------------- predicates --------------------------- *)

let view_of assoc =
  {
    tokens_available =
      (fun c ->
        match List.assoc_opt (I.Channel_id.to_string c) assoc with
        | Some (n, _) -> n
        | None -> 0);
    first_tags =
      (fun c ->
        match List.assoc_opt (I.Channel_id.to_string c) assoc with
        | Some (n, tags) when n > 0 -> Some (Spi.Tag.set_of_list tags)
        | Some _ | None -> None);
  }

let test_predicate_eval () =
  let view = view_of [ ("a", (2, [ "x" ])); ("b", (0, [])) ] in
  Alcotest.(check bool) "num sat" true (eval view (num_at_least (cid "a") 2));
  Alcotest.(check bool) "num unsat" false (eval view (num_at_least (cid "a") 3));
  Alcotest.(check bool) "tag sat" true (eval view (has_tag (cid "a") (tag "x")));
  Alcotest.(check bool) "tag unsat" false (eval view (has_tag (cid "a") (tag "y")));
  Alcotest.(check bool) "tag on empty channel" false
    (eval view (has_tag (cid "b") (tag "x")));
  Alcotest.(check bool) "conj" true
    (eval view (conj [ num_at_least (cid "a") 1; has_tag (cid "a") (tag "x") ]));
  Alcotest.(check bool) "conj empty is true" true (eval view (conj []));
  Alcotest.(check bool) "disj empty is false" false (eval view (disj []));
  Alcotest.(check bool) "negation" true
    (eval view (Not (num_at_least (cid "a") 5)));
  Alcotest.(check bool) "true" true (eval view True);
  Alcotest.(check bool) "false" false (eval view False)

let test_predicate_channels_tags () =
  let p =
    conj
      [ num_at_least (cid "a") 1; has_tag (cid "b") (tag "x"); Not (has_tag (cid "c") (tag "y")) ]
  in
  Alcotest.(check int) "channels" 3 (I.Channel_id.Set.cardinal (channels p));
  Alcotest.(check int) "tags" 2 (Spi.Tag.Set.cardinal (tags_tested p))

let test_predicate_disjoint () =
  let p = has_tag (cid "a") (tag "x") in
  let q = Not (has_tag (cid "a") (tag "x")) in
  Alcotest.(check bool) "complementary tags" true (syntactically_disjoint p q);
  let r = has_tag (cid "a") (tag "y") in
  (* different tags may coexist in one tag set: NOT provably disjoint *)
  Alcotest.(check bool) "different tags not disjoint" false
    (syntactically_disjoint p r);
  let n1 = num_at_least (cid "a") 3 and n2 = Not (num_at_least (cid "a") 2) in
  Alcotest.(check bool) "numeric contradiction" true
    (syntactically_disjoint n1 n2);
  Alcotest.(check bool) "disjunction opaque" false
    (syntactically_disjoint (disj [ p; r ]) q)

let test_predicate_map_channels () =
  let p = conj [ num_at_least (cid "a") 1; has_tag (cid "b") (tag "x") ] in
  let q = map_channels (fun _ -> cid "z") p in
  Alcotest.(check int) "all renamed" 1 (I.Channel_id.Set.cardinal (channels q))

(* --------------------------- activation ---------------------------- *)

let rule name guard mode = Spi.Activation.rule (I.Rule_id.of_string name) ~guard ~mode:(mid mode)

let test_activation_select_order () =
  let act =
    Spi.Activation.make
      [
        rule "r1" (num_at_least (cid "a") 3) "m1";
        rule "r2" (num_at_least (cid "a") 1) "m2";
      ]
  in
  let view3 = view_of [ ("a", (3, [])) ] in
  let view1 = view_of [ ("a", (1, [])) ] in
  (match Spi.Activation.select view3 act with
  | Some r ->
    Alcotest.(check string) "first wins" "m1"
      (I.Mode_id.to_string (Spi.Activation.target_mode r))
  | None -> Alcotest.fail "rule expected");
  (match Spi.Activation.select view1 act with
  | Some r ->
    Alcotest.(check string) "fallback" "m2"
      (I.Mode_id.to_string (Spi.Activation.target_mode r))
  | None -> Alcotest.fail "rule expected");
  Alcotest.(check int) "both enabled at 3" 2
    (List.length (Spi.Activation.enabled view3 act))

let test_activation_validation () =
  try
    ignore
      (Spi.Activation.make
         [ rule "r" True "m"; rule "r" True "m" ]);
    Alcotest.fail "duplicate rule ids accepted"
  with Invalid_argument _ -> ()

let test_activation_ambiguity () =
  let act =
    Spi.Activation.make
      [
        rule "r1" (has_tag (cid "a") (tag "x")) "m1";
        rule "r2" (Not (has_tag (cid "a") (tag "x"))) "m2";
        rule "r3" (has_tag (cid "a") (tag "y")) "m3";
      ]
  in
  let pairs = Spi.Activation.ambiguous_pairs act in
  (* r1/r2 are provably disjoint; r1/r3 and r2/r3 are not *)
  Alcotest.(check int) "ambiguous pairs" 2 (List.length pairs)

let test_activation_maps () =
  let act = Spi.Activation.make [ rule "r" (num_at_least (cid "a") 1) "m" ] in
  let act2 = Spi.Activation.map_modes (fun _ -> mid "m2") act in
  Alcotest.(check bool) "mode renamed" true
    (I.Mode_id.Set.mem (mid "m2") (Spi.Activation.modes act2));
  let act3 = Spi.Activation.map_channels (fun _ -> cid "zz") act in
  Alcotest.(check bool) "channel renamed" true
    (I.Channel_id.Set.mem (cid "zz") (Spi.Activation.channels act3))

(* ---------------------------- properties --------------------------- *)

let gen_pred =
  let open QCheck.Gen in
  let atom =
    oneof
      [
        map (fun n -> num_at_least (cid "a") n) (int_range 0 5);
        map
          (fun i -> has_tag (cid "a") (tag (Format.sprintf "t%d" i)))
          (int_range 0 3);
      ]
  in
  let rec go depth =
    if depth = 0 then atom
    else
      frequency
        [
          (3, atom);
          (1, map2 (fun p q -> And (p, q)) (go (depth - 1)) (go (depth - 1)));
          (1, map2 (fun p q -> Or (p, q)) (go (depth - 1)) (go (depth - 1)));
          (1, map (fun p -> Not p) (go (depth - 1)));
        ]
  in
  go 3

let arb_pred = QCheck.make ~print:(Format.asprintf "%a" pp) gen_pred

let arb_view =
  QCheck.make
    QCheck.Gen.(
      map2
        (fun n tags -> (n, List.map (Format.sprintf "t%d") tags))
        (int_range 0 5)
        (list_size (int_range 0 3) (int_range 0 3)))

let properties =
  [
    QCheck.Test.make ~name:"negation involutive under eval" ~count:300
      (QCheck.pair arb_pred arb_view) (fun (p, (n, tags)) ->
        let view = view_of [ ("a", (n, tags)) ] in
        eval view (Not (Not p)) = eval view p);
    QCheck.Test.make ~name:"syntactic disjointness is sound" ~count:300
      (QCheck.triple arb_pred arb_pred arb_view) (fun (p, q, (n, tags)) ->
        let view = view_of [ ("a", (n, tags)) ] in
        (not (syntactically_disjoint p q)) || not (eval view p && eval view q));
    QCheck.Test.make ~name:"map_channels preserves truth modulo view"
      ~count:300 (QCheck.pair arb_pred arb_view) (fun (p, (n, tags)) ->
        let view = view_of [ ("a", (n, tags)) ] in
        let view_b = view_of [ ("b", (n, tags)) ] in
        eval view p = eval view_b (map_channels (fun _ -> cid "b") p));
  ]

let suite =
  ( "mode-predicate-activation",
    [
      Alcotest.test_case "mode accessors" `Quick test_mode_accessors;
      Alcotest.test_case "mode validation" `Quick test_mode_validation;
      Alcotest.test_case "mode join" `Quick test_mode_join;
      Alcotest.test_case "mode map_channels" `Quick test_mode_map_channels;
      Alcotest.test_case "mode scale_latency" `Quick test_mode_scale_latency;
      Alcotest.test_case "predicate eval" `Quick test_predicate_eval;
      Alcotest.test_case "predicate channels/tags" `Quick
        test_predicate_channels_tags;
      Alcotest.test_case "predicate disjointness" `Quick test_predicate_disjoint;
      Alcotest.test_case "predicate map_channels" `Quick
        test_predicate_map_channels;
      Alcotest.test_case "activation select order" `Quick
        test_activation_select_order;
      Alcotest.test_case "activation validation" `Quick
        test_activation_validation;
      Alcotest.test_case "activation ambiguity" `Quick test_activation_ambiguity;
      Alcotest.test_case "activation maps" `Quick test_activation_maps;
    ]
    @ List.map (QCheck_alcotest.to_alcotest ~long:false) properties )
