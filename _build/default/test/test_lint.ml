(* Tests for the aggregate design lint. *)

module I = Spi.Ids
module V = Variants

let one = Interval.point 1

let test_figure2_clean () =
  let r = V.Lint.run Paper.Figure2.system in
  Alcotest.(check bool) "clean" true (V.Lint.is_clean r);
  Alcotest.(check int) "no errors" 0 r.V.Lint.errors

let test_figure3_warns_ambiguity () =
  (* tags V1/V2 are not provably exclusive: a warning, not an error *)
  let r = V.Lint.run Paper.Figure2.system_with_selection in
  Alcotest.(check bool) "clean (warnings only)" true (V.Lint.is_clean r);
  Alcotest.(check bool) "ambiguity warning present" true
    (List.exists
       (fun f ->
         f.V.Lint.severity = V.Lint.Warning
         &&
         let contains needle haystack =
           let n = String.length needle and h = String.length haystack in
           let rec go i = i + n <= h && (String.sub haystack i n = needle || go (i + 1)) in
           go 0
         in
         contains "not provably disjoint" f.V.Lint.message)
       r.V.Lint.findings)

let test_structural_error_reported () =
  (* a site wired to a channel the system does not declare *)
  let iface =
    V.Interface.make
      ~ports:[ V.Port.input "i" ]
      ~clusters:
        [
          V.Cluster.make
            ~ports:[ V.Port.input "i" ]
            ~processes:
              [
                Spi.Process.simple ~latency:one
                  ~consumes:[ (V.Port.channel_of (I.Port_id.of_string "i"), one) ]
                  ~produces:[]
                  (I.Process_id.of_string "p");
              ]
            "c";
        ]
      "broken"
  in
  let system =
    V.System.make
      ~sites:
        [ { V.Structure.iface; wiring = [ (I.Port_id.of_string "i", I.Channel_id.of_string "ghost") ] } ]
      "bad"
  in
  let r = V.Lint.run system in
  Alcotest.(check bool) "has errors" false (V.Lint.is_clean r);
  Alcotest.(check bool) "structural scope" true
    (List.exists (fun f -> f.V.Lint.scope = "system") r.V.Lint.findings)

let test_rate_anomaly_warning () =
  let cid = I.Channel_id.of_string in
  let system =
    V.System.make
      ~processes:
        [
          Spi.Process.simple ~latency:one
            ~consumes:[ (cid "a", one) ]
            ~produces:[ (cid "b", Spi.Mode.produce (Interval.point 5)) ]
            (I.Process_id.of_string "burst");
          Spi.Process.simple ~latency:one
            ~consumes:[ (cid "b", one) ]
            ~produces:[]
            (I.Process_id.of_string "sip");
        ]
      ~channels:[ Spi.Chan.queue (cid "a"); Spi.Chan.queue (cid "b") ]
      "unbalanced"
  in
  let r = V.Lint.run system in
  Alcotest.(check bool) "warning, still clean" true (V.Lint.is_clean r);
  Alcotest.(check bool) "accumulation flagged" true
    (List.exists
       (fun f -> f.V.Lint.severity = V.Lint.Warning)
       r.V.Lint.findings)

let test_deadline_violation_error () =
  let cid = I.Channel_id.of_string and pid = I.Process_id.of_string in
  let system =
    V.System.make
      ~processes:
        [
          Spi.Process.simple ~latency:(Interval.point 50)
            ~consumes:[ (cid "a", one) ]
            ~produces:[ (cid "b", Spi.Mode.produce one) ]
            (pid "p");
          Spi.Process.simple ~latency:(Interval.point 50)
            ~consumes:[ (cid "b", one) ]
            ~produces:[] (pid "q");
        ]
      ~channels:[ Spi.Chan.queue (cid "a"); Spi.Chan.queue (cid "b") ]
      ~constraints:
        [
          Spi.Constraint_.latency_path ~name:"tight" ~from_:(pid "p")
            ~to_:(pid "q") ~bound:10;
        ]
      "late"
  in
  let r = V.Lint.run system in
  Alcotest.(check bool) "deadline violation is an error" false (V.Lint.is_clean r)

let test_deadlock_error () =
  let cid = I.Channel_id.of_string and pid = I.Process_id.of_string in
  let system =
    V.System.make
      ~processes:
        [
          Spi.Process.simple ~latency:one
            ~consumes:[ (cid "x", one) ]
            ~produces:[ (cid "y", Spi.Mode.produce one) ]
            (pid "u");
          Spi.Process.simple ~latency:one
            ~consumes:[ (cid "y", one) ]
            ~produces:[ (cid "x", Spi.Mode.produce one) ]
            (pid "v");
        ]
      ~channels:[ Spi.Chan.queue (cid "x"); Spi.Chan.queue (cid "y") ]
      "deadlocked"
  in
  let r = V.Lint.run system in
  Alcotest.(check bool) "deadlock is an error" false (V.Lint.is_clean r)

let test_lint_renders () =
  let r = V.Lint.run Paper.Figure2.system_with_selection in
  let text = Format.asprintf "%a" V.Lint.pp r in
  Alcotest.(check bool) "mentions counts" true (String.length text > 10)

let suite =
  ( "lint",
    [
      Alcotest.test_case "figure2 clean" `Quick test_figure2_clean;
      Alcotest.test_case "figure3 warns ambiguity" `Quick
        test_figure3_warns_ambiguity;
      Alcotest.test_case "structural error" `Quick test_structural_error_reported;
      Alcotest.test_case "rate anomaly warning" `Quick test_rate_anomaly_warning;
      Alcotest.test_case "deadline violation error" `Quick
        test_deadline_violation_error;
      Alcotest.test_case "deadlock error" `Quick test_deadlock_error;
      Alcotest.test_case "renders" `Quick test_lint_renders;
    ] )
