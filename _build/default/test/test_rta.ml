(* Tests for the response-time analysis. *)

module I = Spi.Ids

let pid = I.Process_id.of_string

let tech =
  Synth.Tech.make
    [
      (pid "hi", Synth.Tech.sw_only ~load:1);
      (pid "mid", Synth.Tech.sw_only ~load:2);
      (pid "lo", Synth.Tech.sw_only ~load:3);
      (pid "hw", Synth.Tech.hw_only ~area:5);
    ]

let binding =
  Synth.Binding.of_list
    [
      (pid "hi", Synth.Binding.Sw);
      (pid "mid", Synth.Binding.Sw);
      (pid "lo", Synth.Binding.Sw);
      (pid "hw", Synth.Binding.Hw);
    ]

(* the classical textbook example: C=(1,2,3), T=(4,6,10) *)
let periods = [ (pid "lo", 10); (pid "hi", 4); (pid "mid", 6) ]

let test_classic_taskset () =
  let v = Synth.Rta.analyse ~periods tech binding in
  Alcotest.(check bool) "schedulable" true v.Synth.Rta.all_schedulable;
  (match v.Synth.Rta.tasks with
  | [ hi; mid; lo ] ->
    Alcotest.(check string) "priority order" "hi"
      (I.Process_id.to_string hi.Synth.Rta.proc);
    Alcotest.(check int) "R(hi) = C" 1 hi.Synth.Rta.response;
    (* R(mid) = 2 + ceil(R/4)*1 -> 3 *)
    Alcotest.(check int) "R(mid)" 3 mid.Synth.Rta.response;
    (* R(lo) = 3 + ceil(R/4)*1 + ceil(R/6)*2 -> iterates to 10 *)
    Alcotest.(check int) "R(lo)" 10 lo.Synth.Rta.response;
    Alcotest.(check bool) "lo exactly meets its period" true
      lo.Synth.Rta.schedulable
  | l -> Alcotest.failf "expected 3 tasks, got %d" (List.length l));
  (* U = 1/4 + 2/6 + 3/10 = 0.8833 *)
  Alcotest.(check int) "utilization" 88 v.Synth.Rta.utilization_percent

let test_unschedulable () =
  let tight = [ (pid "hi", 2); (pid "mid", 3); (pid "lo", 4) ] in
  let v = Synth.Rta.analyse ~periods:tight tech binding in
  Alcotest.(check bool) "not schedulable" false v.Synth.Rta.all_schedulable;
  (* the lowest-priority task misses *)
  match List.rev v.Synth.Rta.tasks with
  | last :: _ -> Alcotest.(check bool) "lo misses" false last.Synth.Rta.schedulable
  | [] -> Alcotest.fail "tasks expected"

let test_hw_ignored () =
  let v = Synth.Rta.analyse ~periods:[ (pid "hw", 5); (pid "hi", 4) ] tech binding in
  Alcotest.(check int) "only sw analysed" 1 (List.length v.Synth.Rta.tasks)

let test_validation () =
  (try
     ignore (Synth.Rta.analyse ~periods:[ (pid "hi", 0) ] tech binding);
     Alcotest.fail "period 0 accepted"
   with Invalid_argument _ -> ());
  let bad_binding = Synth.Binding.of_list [ (pid "hw", Synth.Binding.Sw) ] in
  try
    ignore (Synth.Rta.analyse ~periods:[ (pid "hw", 5) ] tech bad_binding);
    Alcotest.fail "sw-bound process without sw option accepted"
  with Invalid_argument _ -> ()

let prop_response_at_least_wcet =
  QCheck.Test.make ~name:"response >= wcet, monotone in priority load"
    ~count:100
    QCheck.(
      list_of_size (QCheck.Gen.int_range 1 6)
        (pair (int_range 1 10) (int_range 5 50)))
    (fun raw ->
      let entries =
        List.mapi
          (fun i (c, t) ->
            let c = max 1 c in
            (pid (Format.sprintf "t%d" i), c, max (max t 2) (c + 1)))
          raw
      in
      let tech =
        Synth.Tech.make
          (List.map (fun (p, c, _) -> (p, Synth.Tech.sw_only ~load:c)) entries)
      in
      let binding =
        Synth.Binding.of_list
          (List.map (fun (p, _, _) -> (p, Synth.Binding.Sw)) entries)
      in
      let periods = List.map (fun (p, _, t) -> (p, t)) entries in
      let v = Synth.Rta.analyse ~periods tech binding in
      (* response is at least the task's own execution time, and the
         highest-priority task suffers no interference at all *)
      List.for_all (fun t -> t.Synth.Rta.response >= t.Synth.Rta.wcet)
        v.Synth.Rta.tasks
      && (match v.Synth.Rta.tasks with
         | first :: _ -> first.Synth.Rta.response = first.Synth.Rta.wcet
         | [] -> true)
      &&
      (* utilization > 100% is never declared schedulable *)
      (v.Synth.Rta.utilization_percent <= 100 || not v.Synth.Rta.all_schedulable))

let suite =
  ( "rta",
    [
      Alcotest.test_case "classic task set" `Quick test_classic_taskset;
      Alcotest.test_case "unschedulable" `Quick test_unschedulable;
      Alcotest.test_case "hardware ignored" `Quick test_hw_ignored;
      Alcotest.test_case "validation" `Quick test_validation;
      QCheck_alcotest.to_alcotest ~long:false prop_response_at_least_wcet;
    ] )
