(* Tests for commonality analysis and hierarchical (nested) variants. *)

module I = Spi.Ids
module V = Variants

let pid = I.Process_id.of_string
let cid = I.Channel_id.of_string
let one = Interval.point 1

let pset names = I.Process_id.Set.of_list (List.map pid names)

(* --------------------------- commonality ---------------------------- *)

let test_commonality_sets () =
  let r =
    V.Commonality.of_process_sets
      [ pset [ "a"; "b"; "x" ]; pset [ "a"; "b"; "y" ]; pset [ "a"; "y"; "z" ] ]
  in
  Alcotest.(check int) "apps" 3 r.V.Commonality.applications;
  Alcotest.(check int) "shared" 1 (I.Process_id.Set.cardinal r.V.Commonality.shared);
  Alcotest.(check bool) "a shared" true
    (I.Process_id.Set.mem (pid "a") r.V.Commonality.shared);
  Alcotest.(check int) "partial" 2
    (I.Process_id.Set.cardinal r.V.Commonality.partially_shared);
  Alcotest.(check int) "specific" 2
    (I.Process_id.Set.cardinal r.V.Commonality.variant_specific);
  (* 9 considered vs 5 distinct *)
  Alcotest.(check int) "duplicated decisions" 4 r.V.Commonality.duplicated_decisions

let test_commonality_identical_apps () =
  let r = V.Commonality.of_process_sets [ pset [ "a"; "b" ]; pset [ "a"; "b" ] ] in
  Alcotest.(check bool) "full overlap" true (r.V.Commonality.overlap_fraction = 1.0)

let test_commonality_figure2 () =
  let r = V.Commonality.analyze Paper.Figure2.system in
  Alcotest.(check int) "apps" 2 r.V.Commonality.applications;
  (* PA, PB shared; 2 + 3 cluster processes variant-specific *)
  Alcotest.(check int) "shared" 2 (I.Process_id.Set.cardinal r.V.Commonality.shared);
  Alcotest.(check int) "specific" 5
    (I.Process_id.Set.cardinal r.V.Commonality.variant_specific);
  Alcotest.(check int) "duplicated" 2 r.V.Commonality.duplicated_decisions

let test_commonality_empty () =
  try
    ignore (V.Commonality.of_process_sets []);
    Alcotest.fail "empty accepted"
  with Invalid_argument _ -> ()

(* ---------------------------- hierarchy ----------------------------- *)

let chain_proc ~from_ ~to_ name =
  Spi.Process.simple ~latency:one
    ~consumes:[ (from_, one) ]
    ~produces:[ (to_, Spi.Mode.produce one) ]
    (pid name)

let port_in = V.Port.input "hi"
let port_out = V.Port.output "ho"
let pin = V.Port.channel_of (V.Port.id port_in)
let pout = V.Port.channel_of (V.Port.id port_out)

let leaf_cluster name =
  V.Cluster.make
    ~ports:[ port_in; port_out ]
    ~processes:[ chain_proc ~from_:pin ~to_:pout name ]
    name

let nested_system =
  let inner =
    V.Interface.make
      ~ports:[ port_in; port_out ]
      ~clusters:[ leaf_cluster "i1"; leaf_cluster "i2"; leaf_cluster "i3" ]
      "inner"
  in
  let outer_with_inner =
    let k1 = cid "k1" and k2 = cid "k2" in
    V.Cluster.make
      ~channels:[ Spi.Chan.queue k1; Spi.Chan.queue k2 ]
      ~sub_sites:
        [
          {
            V.Structure.iface = inner;
            wiring = [ (V.Port.id port_in, k1); (V.Port.id port_out, k2) ];
          };
        ]
      ~ports:[ port_in; port_out ]
      ~processes:
        [ chain_proc ~from_:pin ~to_:k1 "pre"; chain_proc ~from_:k2 ~to_:pout "post" ]
      "deep"
  in
  let outer =
    V.Interface.make
      ~ports:[ port_in; port_out ]
      ~clusters:[ outer_with_inner; leaf_cluster "flat" ]
      "outer"
  in
  V.System.make
    ~processes:
      [ chain_proc ~from_:(cid "src") ~to_:(cid "mid_in") "head";
        chain_proc ~from_:(cid "mid_out") ~to_:(cid "dst") "tail" ]
    ~channels:
      [
        Spi.Chan.queue (cid "src");
        Spi.Chan.queue (cid "mid_in");
        Spi.Chan.queue (cid "mid_out");
        Spi.Chan.queue (cid "dst");
      ]
    ~sites:
      [
        {
          V.Structure.iface = outer;
          wiring =
            [ (V.Port.id port_in, cid "mid_in"); (V.Port.id port_out, cid "mid_out") ];
        };
      ]
    "nested"

let test_nested_validates () =
  Alcotest.(check int) "valid" 0 (List.length (V.System.validate nested_system))

let test_nested_applications () =
  let apps = V.Flatten.applications nested_system in
  (* deep{i1,i2,i3} + flat = 4 derivable applications *)
  Alcotest.(check int) "four applications" 4 (List.length apps);
  let names =
    List.sort compare
      (List.map
         (fun (clusters, _) ->
           String.concat "+" (List.map I.Cluster_id.to_string clusters))
         apps)
  in
  Alcotest.(check (list string)) "combinations"
    [ "deep+i1"; "deep+i2"; "deep+i3"; "flat" ]
    names

let test_nested_flatten_names () =
  let model =
    V.Flatten.flatten nested_system
      (V.Flatten.choice_of_list [ ("outer", "deep"); ("inner", "i2") ])
  in
  let names =
    List.sort compare
      (List.map (fun p -> I.Process_id.to_string (Spi.Process.id p))
         (Spi.Model.processes model))
  in
  Alcotest.(check (list string)) "nested prefixes"
    [ "head"; "outer.inner.i2"; "outer.post"; "outer.pre"; "tail" ]
    names

let test_nested_dataflow () =
  let model =
    V.Flatten.flatten nested_system
      (V.Flatten.choice_of_list [ ("outer", "deep"); ("inner", "i3") ])
  in
  let stimuli =
    List.init 3 (fun i ->
        { Sim.Engine.at = 1 + i; channel = cid "src"; token = Spi.Token.make ~payload:i () })
  in
  let result = Sim.Engine.run ~stimuli model in
  Alcotest.(check int) "all delivered through 5 stages" 3
    (List.length (Sim.Trace.tokens_produced_on (cid "dst") result.Sim.Engine.trace));
  Alcotest.(check bool) "quiescent" true
    (result.Sim.Engine.outcome = Sim.Engine.Quiescent)

let test_nested_commonality () =
  let r = V.Commonality.analyze nested_system in
  Alcotest.(check int) "apps" 4 r.V.Commonality.applications;
  (* head and tail are everywhere; pre/post shared by the three deep apps *)
  Alcotest.(check int) "shared" 2 (I.Process_id.Set.cardinal r.V.Commonality.shared);
  Alcotest.(check int) "partial (pre, post)" 2
    (I.Process_id.Set.cardinal r.V.Commonality.partially_shared)

let test_nested_unwired_subsite_rejected () =
  let bad_inner =
    V.Cluster.make
      ~sub_sites:[ { V.Structure.iface = V.Interface.make ~ports:[ port_in; port_out ] ~clusters:[ leaf_cluster "x" ] "sub"; wiring = [] } ]
      ~ports:[ port_in; port_out ]
      ~processes:[ chain_proc ~from_:pin ~to_:pout "p" ]
      "bad"
  in
  let errors = V.Cluster.validate bad_inner in
  Alcotest.(check bool) "unwired sub-site flagged" true
    (List.exists
       (function V.Cluster.Sub_site_unwired _ -> true | _ -> false)
       errors)

let suite =
  ( "commonality-hierarchy",
    [
      Alcotest.test_case "commonality sets" `Quick test_commonality_sets;
      Alcotest.test_case "commonality identical apps" `Quick
        test_commonality_identical_apps;
      Alcotest.test_case "commonality figure2" `Quick test_commonality_figure2;
      Alcotest.test_case "commonality empty" `Quick test_commonality_empty;
      Alcotest.test_case "nested validates" `Quick test_nested_validates;
      Alcotest.test_case "nested applications" `Quick test_nested_applications;
      Alcotest.test_case "nested flatten names" `Quick test_nested_flatten_names;
      Alcotest.test_case "nested dataflow" `Quick test_nested_dataflow;
      Alcotest.test_case "nested commonality" `Quick test_nested_commonality;
      Alcotest.test_case "nested unwired sub-site rejected" `Quick
        test_nested_unwired_subsite_rejected;
    ] )
