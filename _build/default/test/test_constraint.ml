(* Tests for timing constraints and the constructive check. *)

module I = Spi.Ids

let cid = I.Channel_id.of_string
let pid = I.Process_id.of_string
let one = Interval.point 1

let chain_proc ~latency ~from_ ~to_ name =
  Spi.Process.simple ~latency:(Interval.point latency)
    ~consumes:(match from_ with None -> [] | Some c -> [ (cid c, one) ])
    ~produces:
      (match to_ with None -> [] | Some c -> [ (cid c, Spi.Mode.produce one) ])
    (pid name)

(* a -> p(3) -> b -> q(4) -> c -> r(5) plus a side path p -> d -> s(10) -> e -> r *)
let diamond_model =
  Spi.Model.build_exn
    ~processes:
      [
        Spi.Process.simple ~latency:(Interval.point 3)
          ~consumes:[ (cid "a", one) ]
          ~produces:
            [ (cid "b", Spi.Mode.produce one); (cid "d", Spi.Mode.produce one) ]
          (pid "p");
        chain_proc ~latency:4 ~from_:(Some "b") ~to_:(Some "c") "q";
        chain_proc ~latency:10 ~from_:(Some "d") ~to_:(Some "e") "s";
        Spi.Process.simple ~latency:(Interval.point 5)
          ~consumes:[ (cid "c", one); (cid "e", one) ]
          ~produces:[] (pid "r");
      ]
    ~channels:
      (List.map (fun c -> Spi.Chan.queue (cid c)) [ "a"; "b"; "c"; "d"; "e" ])

let latency_of model p =
  Interval.hi (Spi.Process.latency_hull (Spi.Model.get_process p model))

let test_satisfied () =
  let c =
    Spi.Constraint_.latency_path ~name:"pr" ~from_:(pid "p") ~to_:(pid "r")
      ~bound:20
  in
  match Spi.Constraint_.check ~latency_of:(latency_of diamond_model) diamond_model c with
  | Spi.Constraint_.Satisfied { worst; slack } ->
    (* worst path p(3) -> s(10) -> r(5) = 18 *)
    Alcotest.(check int) "worst" 18 worst;
    Alcotest.(check int) "slack" 2 slack
  | o -> Alcotest.failf "unexpected outcome %a" Spi.Constraint_.pp_outcome o

let test_violated () =
  let c =
    Spi.Constraint_.latency_path ~name:"pr" ~from_:(pid "p") ~to_:(pid "r")
      ~bound:15
  in
  match Spi.Constraint_.check ~latency_of:(latency_of diamond_model) diamond_model c with
  | Spi.Constraint_.Violated { worst; excess } ->
    Alcotest.(check int) "worst" 18 worst;
    Alcotest.(check int) "excess" 3 excess
  | o -> Alcotest.failf "unexpected outcome %a" Spi.Constraint_.pp_outcome o

let test_unreachable () =
  let c =
    Spi.Constraint_.latency_path ~name:"rp" ~from_:(pid "r") ~to_:(pid "p")
      ~bound:100
  in
  match Spi.Constraint_.check ~latency_of:(latency_of diamond_model) diamond_model c with
  | Spi.Constraint_.Unreachable -> ()
  | o -> Alcotest.failf "unexpected outcome %a" Spi.Constraint_.pp_outcome o

let test_unknown_process_unreachable () =
  let c =
    Spi.Constraint_.latency_path ~name:"ghost" ~from_:(pid "ghost")
      ~to_:(pid "r") ~bound:1
  in
  match Spi.Constraint_.check ~latency_of:(fun _ -> 0) diamond_model c with
  | Spi.Constraint_.Unreachable -> ()
  | o -> Alcotest.failf "unexpected outcome %a" Spi.Constraint_.pp_outcome o

let test_cyclic () =
  let model =
    Spi.Model.build_exn
      ~processes:
        [
          Spi.Process.simple ~latency:one
            ~consumes:[ (cid "a", one); (cid "loop2", one) ]
            ~produces:[ (cid "loop1", Spi.Mode.produce one) ]
            (pid "u");
          Spi.Process.simple ~latency:one
            ~consumes:[ (cid "loop1", one) ]
            ~produces:
              [
                (cid "loop2", Spi.Mode.produce one);
                (cid "out", Spi.Mode.produce one);
              ]
            (pid "v");
          chain_proc ~latency:1 ~from_:(Some "out") ~to_:None "w";
        ]
      ~channels:
        (List.map (fun c -> Spi.Chan.queue (cid c)) [ "a"; "loop1"; "loop2"; "out" ])
  in
  let c =
    Spi.Constraint_.latency_path ~name:"uw" ~from_:(pid "u") ~to_:(pid "w")
      ~bound:100
  in
  match Spi.Constraint_.check ~latency_of:(fun _ -> 1) model c with
  | Spi.Constraint_.Cyclic procs ->
    Alcotest.(check bool) "cycle nonempty" true (procs <> [])
  | o -> Alcotest.failf "unexpected outcome %a" Spi.Constraint_.pp_outcome o

let test_check_all () =
  let mk bound =
    Spi.Constraint_.latency_path ~name:(string_of_int bound) ~from_:(pid "p")
      ~to_:(pid "r") ~bound
  in
  let outcomes =
    Spi.Constraint_.check_all ~latency_of:(latency_of diamond_model)
      diamond_model [ mk 20; mk 18 ]
  in
  Alcotest.(check bool) "all satisfied" true
    (Spi.Constraint_.all_satisfied outcomes);
  let outcomes' =
    Spi.Constraint_.check_all ~latency_of:(latency_of diamond_model)
      diamond_model [ mk 20; mk 5 ]
  in
  Alcotest.(check bool) "one violated" false
    (Spi.Constraint_.all_satisfied outcomes')

let test_binding_dependent_latency () =
  (* the same constraint flips when implementation WCETs change *)
  let c =
    Spi.Constraint_.latency_path ~name:"pr" ~from_:(pid "p") ~to_:(pid "r")
      ~bound:10
  in
  let fast _ = 1 in
  match Spi.Constraint_.check ~latency_of:fast diamond_model c with
  | Spi.Constraint_.Satisfied { worst; _ } ->
    Alcotest.(check int) "three hops" 3 worst
  | o -> Alcotest.failf "unexpected outcome %a" Spi.Constraint_.pp_outcome o

let suite =
  ( "constraint",
    [
      Alcotest.test_case "satisfied" `Quick test_satisfied;
      Alcotest.test_case "violated" `Quick test_violated;
      Alcotest.test_case "unreachable" `Quick test_unreachable;
      Alcotest.test_case "unknown process" `Quick test_unknown_process_unreachable;
      Alcotest.test_case "cyclic" `Quick test_cyclic;
      Alcotest.test_case "check_all" `Quick test_check_all;
      Alcotest.test_case "binding-dependent latency" `Quick
        test_binding_dependent_latency;
    ] )
