(* A second round of cross-module properties: printer idempotence,
   budget monotonicity, multi/single-processor agreement, Pareto
   consistency, clusterize round-trips on random cuts. *)

module I = Spi.Ids
module V = Variants

let gen_system (seed, sites, cluster_processes) =
  V.Generator.generate
    {
      V.Generator.seed;
      shared_processes = 2;
      sites;
      variants_per_site = 2;
      cluster_processes;
      latency_range = (1, 9);
    }

let arb_system_params =
  QCheck.triple
    (QCheck.int_range 0 999)
    (QCheck.int_range 1 2)
    (QCheck.int_range 1 3)

let prop_printer_idempotent =
  QCheck.Test.make ~name:"printer is a fixpoint after one round trip" ~count:25
    arb_system_params
    (fun params ->
      let system = gen_system params in
      let once = Lang.Printer.to_string system in
      let twice =
        Lang.Printer.to_string (Lang.Parser.system_of_string once)
      in
      String.equal once twice)

let prop_budget_monotone =
  QCheck.Test.make ~name:"larger firing budgets never reduce firings"
    ~count:30
    (QCheck.pair (QCheck.int_range 0 5) (QCheck.int_range 0 5))
    (fun (b1, b2) ->
      let lo = min b1 b2 and hi = max b1 b2 in
      let model =
        Spi.Builder.(
          empty |> queue "c"
          |> source "gen" ~latency:(fixed 1) ~into:"c" ()
          |> sink "eat" ~latency:(fixed 1) ~from:"c" ()
          |> build_exn)
      in
      let firings budget =
        (Sim.Engine.run
           ~firing_budget:[ (I.Process_id.of_string "gen", budget) ]
           model)
          .Sim.Engine.firings
      in
      firings lo <= firings hi)

let random_tech rng pids =
  Synth.Tech.make
    (List.map
       (fun p ->
         ( p,
           Synth.Tech.both
             ~load:(5 + Random.State.int rng 60)
             ~area:(5 + Random.State.int rng 60) ))
       pids)

let prop_multi_matches_single =
  QCheck.Test.make ~name:"Multi with one default CPU = Explore" ~count:40
    (QCheck.int_range 0 2000)
    (fun seed ->
      let rng = Random.State.make [| seed |] in
      let pids =
        List.init (2 + Random.State.int rng 4) (fun i ->
            I.Process_id.of_string (Format.sprintf "p%d" i))
      in
      let tech = random_tech rng pids in
      let apps =
        [
          Synth.App.make "a" (List.filteri (fun i _ -> i mod 2 = 0) pids @ [ List.hd pids ]);
          Synth.App.make "b" pids;
        ]
      in
      let cpu =
        Synth.Multi.processor ~name:"cpu" ~capacity:Synth.Schedule.default_capacity
          ~cost:(Synth.Tech.processor_cost tech)
      in
      let single =
        Option.map
          (fun (s : Synth.Explore.solution) -> s.Synth.Explore.cost.Synth.Cost.total)
          (Synth.Explore.optimal tech apps)
      in
      let multi =
        Option.map
          (fun (s : Synth.Multi.solution) -> s.Synth.Multi.total_cost)
          (Synth.Multi.optimal tech [ cpu ] apps)
      in
      single = multi)

let prop_pareto_contains_optimum =
  QCheck.Test.make ~name:"Pareto frontier starts at the cost optimum" ~count:40
    (QCheck.int_range 0 2000)
    (fun seed ->
      let rng = Random.State.make [| seed |] in
      let pids =
        List.init (2 + Random.State.int rng 3) (fun i ->
            I.Process_id.of_string (Format.sprintf "q%d" i))
      in
      let tech = random_tech rng pids in
      let apps = [ Synth.App.make "a" pids ] in
      match Synth.Explore.optimal tech apps, Synth.Pareto.frontier tech apps with
      | None, [] -> true
      | Some s, first :: _ ->
        first.Synth.Pareto.total_cost = s.Synth.Explore.cost.Synth.Cost.total
      | Some _, [] | None, _ :: _ -> false)

let prop_clusterize_roundtrip =
  QCheck.Test.make ~name:"carve + flatten preserves behaviour on random cuts"
    ~count:25
    (QCheck.pair arb_system_params (QCheck.int_range 0 100))
    (fun (params, cut_seed) ->
      let system = gen_system params in
      let model = V.Flatten.flatten system (V.Flatten.first_cluster system) in
      let procs = List.map Spi.Process.id (Spi.Model.processes model) in
      let rng = Random.State.make [| cut_seed |] in
      let inside =
        I.Process_id.Set.of_list
          (List.filter (fun _ -> Random.State.bool rng) procs)
      in
      if I.Process_id.Set.is_empty inside then true
      else
        let carved =
          V.Clusterize.carve ~interface_name:"cut" ~cluster_name:"orig" inside
            model
        in
        V.System.validate carved = []
        &&
        let reflat =
          V.Flatten.flatten carved (V.Flatten.first_cluster carved)
        in
        let inputs = Spi.Model.unwritten_channels model in
        let stimuli m =
          List.concat_map
            (fun cid ->
              if
                Option.is_some (Spi.Model.find_channel cid m)
              then
                List.init 2 (fun i ->
                    { Sim.Engine.at = 1 + i; channel = cid; token = Spi.Token.plain })
              else [])
            (I.Channel_id.Set.elements inputs)
        in
        let firings m = (Sim.Engine.run ~stimuli:(stimuli m) m).Sim.Engine.firings in
        firings model = firings reflat)

let prop_refine_never_widens =
  QCheck.Test.make ~name:"refinement never widens intervals" ~count:25
    arb_system_params
    (fun params ->
      let system = gen_system params in
      let model = V.Flatten.flatten system (V.Flatten.first_cluster system) in
      let inputs = Spi.Model.unwritten_channels model in
      let stimuli =
        List.concat_map
          (fun cid ->
            List.init 3 (fun i ->
                { Sim.Engine.at = 1 + (3 * i); channel = cid; token = Spi.Token.plain }))
          (I.Channel_id.Set.elements inputs)
      in
      let result = Sim.Engine.run ~stimuli model in
      let refined = Sim.Refine.refine_model result model in
      List.for_all
        (fun proc ->
          let pid = Spi.Process.id proc in
          let original = Spi.Model.get_process pid model in
          Interval.subset
            (Spi.Process.latency_hull (Spi.Model.get_process pid refined))
            (Spi.Process.latency_hull original))
        (Spi.Model.processes model))

let suite =
  ( "more-properties",
    List.map
      (QCheck_alcotest.to_alcotest ~long:false)
      [
        prop_printer_idempotent;
        prop_budget_monotone;
        prop_multi_matches_single;
        prop_pareto_contains_optimum;
        prop_clusterize_roundtrip;
        prop_refine_never_widens;
      ] )
