(* Tests for binding-aware timing verification and the cost/load
   Pareto frontier. *)

module I = Spi.Ids
module F2 = Paper.Figure2

let pid = I.Process_id.of_string
let cid = I.Channel_id.of_string
let one = Interval.point 1

(* a -> p -> b -> q -> c, with a deadline p ~> q *)
let chain_model =
  Spi.Model.build_exn
    ~processes:
      [
        Spi.Process.simple ~latency:one
          ~consumes:[ (cid "a", one) ]
          ~produces:[ (cid "b", Spi.Mode.produce one) ]
          (pid "p");
        Spi.Process.simple ~latency:one
          ~consumes:[ (cid "b", one) ]
          ~produces:[ (cid "c", Spi.Mode.produce one) ]
          (pid "q");
      ]
    ~channels:[ Spi.Chan.queue (cid "a"); Spi.Chan.queue (cid "b"); Spi.Chan.queue (cid "c") ]

let chain_tech =
  Synth.Tech.make
    [
      (pid "p", Synth.Tech.both ~load:30 ~area:20);
      (pid "q", Synth.Tech.both ~load:40 ~area:25);
    ]

let deadline bound =
  Spi.Constraint_.latency_path ~name:"pq" ~from_:(pid "p") ~to_:(pid "q") ~bound

let test_timing_latency_of () =
  let b =
    Synth.Binding.of_list [ (pid "p", Synth.Binding.Sw); (pid "q", Synth.Binding.Hw) ]
  in
  Alcotest.(check int) "sw latency = load" 30
    (Synth.Timing.latency_of chain_tech b (pid "p"));
  Alcotest.(check int) "hw latency = 1" 1
    (Synth.Timing.latency_of chain_tech b (pid "q"));
  Alcotest.(check int) "unbound = 0" 0
    (Synth.Timing.latency_of chain_tech b (pid "ghost"))

let test_timing_binding_flips_verdict () =
  let all_sw =
    Synth.Binding.of_list [ (pid "p", Synth.Binding.Sw); (pid "q", Synth.Binding.Sw) ]
  and all_hw =
    Synth.Binding.of_list [ (pid "p", Synth.Binding.Hw); (pid "q", Synth.Binding.Hw) ]
  in
  (* software: 30 + 40 = 70 > 50; hardware: 1 + 1 = 2 <= 50 *)
  Alcotest.(check bool) "software misses deadline" false
    (Synth.Timing.all_satisfied chain_tech all_sw chain_model [ deadline 50 ]);
  Alcotest.(check bool) "hardware meets deadline" true
    (Synth.Timing.all_satisfied chain_tech all_hw chain_model [ deadline 50 ])

let test_timing_custom_model () =
  let latency_model =
    { Synth.Timing.sw_latency_of_load = (fun l -> l * 2); hw_latency_of_area = (fun a -> a / 5) }
  in
  let b = Synth.Binding.of_list [ (pid "p", Synth.Binding.Sw) ] in
  Alcotest.(check int) "custom sw" 60
    (Synth.Timing.latency_of ~latency_model chain_tech b (pid "p"))

let test_pareto_frontier_table1 () =
  let points = Synth.Pareto.frontier F2.table1_tech [ F2.app1; F2.app2 ] in
  Alcotest.(check bool) "nonempty" true (points <> []);
  (* sorted by cost, loads strictly decreasing along the frontier *)
  let rec check_sorted = function
    | a :: (b :: _ as rest) ->
      Alcotest.(check bool) "cost increases" true
        (a.Synth.Pareto.total_cost < b.Synth.Pareto.total_cost);
      Alcotest.(check bool) "load decreases" true
        (a.Synth.Pareto.worst_load > b.Synth.Pareto.worst_load);
      check_sorted rest
    | [ _ ] | [] -> ()
  in
  check_sorted points;
  (* the cheapest frontier point is the cost optimum *)
  (match points with
  | first :: _ ->
    Alcotest.(check int) "cheapest = optimal" 41 first.Synth.Pareto.total_cost
  | [] -> Alcotest.fail "frontier empty");
  (* the all-hardware point closes the frontier at load 0 *)
  match List.rev points with
  | last :: _ -> Alcotest.(check int) "all-hw load" 0 last.Synth.Pareto.worst_load
  | [] -> Alcotest.fail "frontier empty"

let test_pareto_no_dominated_points () =
  let points = Synth.Pareto.frontier F2.table1_tech [ F2.app1; F2.app2 ] in
  List.iter
    (fun p ->
      Alcotest.(check bool) "not dominated" false
        (List.exists (fun q -> Synth.Pareto.dominates q p) points))
    points

let test_pareto_infeasible () =
  let tech = Synth.Tech.make [ (pid "x", Synth.Tech.sw_only ~load:500) ] in
  Alcotest.(check int) "empty frontier" 0
    (List.length (Synth.Pareto.frontier tech [ Synth.App.make "a" [ pid "x" ] ]))

let test_dominates () =
  let mk c l = { Synth.Pareto.binding = Synth.Binding.empty; total_cost = c; worst_load = l } in
  Alcotest.(check bool) "strictly better" true (Synth.Pareto.dominates (mk 1 1) (mk 2 2));
  Alcotest.(check bool) "one axis" true (Synth.Pareto.dominates (mk 1 2) (mk 2 2));
  Alcotest.(check bool) "equal" false (Synth.Pareto.dominates (mk 2 2) (mk 2 2));
  Alcotest.(check bool) "trade-off" false (Synth.Pareto.dominates (mk 1 3) (mk 3 1))

let suite =
  ( "timing-pareto",
    [
      Alcotest.test_case "timing latency_of" `Quick test_timing_latency_of;
      Alcotest.test_case "timing binding flips verdict" `Quick
        test_timing_binding_flips_verdict;
      Alcotest.test_case "timing custom model" `Quick test_timing_custom_model;
      Alcotest.test_case "pareto frontier table1" `Quick
        test_pareto_frontier_table1;
      Alcotest.test_case "pareto no dominated points" `Quick
        test_pareto_no_dominated_points;
      Alcotest.test_case "pareto infeasible" `Quick test_pareto_infeasible;
      Alcotest.test_case "dominates" `Quick test_dominates;
    ] )
