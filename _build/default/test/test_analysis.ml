(* Tests for the static analyses: rate balance, structural deadlock
   candidates and queue bounds. *)

module I = Spi.Ids
module A = Spi.Analysis

let cid = I.Channel_id.of_string
let pid = I.Process_id.of_string
let one = Interval.point 1

let proc ?(latency = 1) ~consumes ~produces name =
  Spi.Process.simple ~latency:(Interval.point latency)
    ~consumes:(List.map (fun (c, n) -> (cid c, Interval.point n)) consumes)
    ~produces:
      (List.map (fun (c, n) -> (cid c, Spi.Mode.produce (Interval.point n))) produces)
    (pid name)

let model ~processes ~channels =
  Spi.Model.build_exn ~processes
    ~channels:(List.map (fun (c, init) -> Spi.Chan.queue ~initial:init (cid c)) channels)

let test_balance_balanced () =
  let m =
    model
      ~processes:
        [
          proc ~consumes:[ ("a", 1) ] ~produces:[ ("b", 2) ] "p";
          proc ~consumes:[ ("b", 2) ] ~produces:[] "q";
        ]
      ~channels:[ ("a", []); ("b", []) ]
  in
  (match A.channel_balance m (cid "b") with
  | A.Balanced -> ()
  | b -> Alcotest.failf "expected balanced, got %a" A.pp_balance b);
  match A.channel_balance m (cid "a") with
  | A.Boundary -> ()
  | b -> Alcotest.failf "expected boundary, got %a" A.pp_balance b

let test_balance_accumulating () =
  let m =
    model
      ~processes:
        [
          proc ~consumes:[ ("a", 1) ] ~produces:[ ("b", 3) ] "p";
          proc ~consumes:[ ("b", 1) ] ~produces:[] "q";
        ]
      ~channels:[ ("a", []); ("b", []) ]
  in
  match A.channel_balance m (cid "b") with
  | A.Accumulating { surplus } -> Alcotest.(check int) "surplus" 2 surplus
  | b -> Alcotest.failf "expected accumulating, got %a" A.pp_balance b

let test_balance_starving () =
  let m =
    model
      ~processes:
        [
          proc ~consumes:[ ("a", 1) ] ~produces:[ ("b", 1) ] "p";
          proc ~consumes:[ ("b", 4) ] ~produces:[] "q";
        ]
      ~channels:[ ("a", []); ("b", []) ]
  in
  match A.channel_balance m (cid "b") with
  | A.Starving { deficit } -> Alcotest.(check int) "deficit" 3 deficit
  | b -> Alcotest.failf "expected starving, got %a" A.pp_balance b

let test_balance_report_covers_all () =
  let m =
    model
      ~processes:[ proc ~consumes:[ ("a", 1) ] ~produces:[ ("b", 1) ] "p" ]
      ~channels:[ ("a", []); ("b", []) ]
  in
  Alcotest.(check int) "two channels" 2 (List.length (A.balance_report m))

let test_deadlock_detected () =
  (* u and v feed each other; both loops start empty: deadlock *)
  let m =
    model
      ~processes:
        [
          proc ~consumes:[ ("ab", 1) ] ~produces:[ ("ba", 1) ] "v";
          proc ~consumes:[ ("ba", 1) ] ~produces:[ ("ab", 1) ] "u";
        ]
      ~channels:[ ("ab", []); ("ba", []) ]
  in
  match A.deadlock_candidates m with
  | [ comp ] ->
    Alcotest.(check int) "two processes" 2 (List.length comp)
  | l -> Alcotest.failf "expected one candidate, got %d" (List.length l)

let test_deadlock_broken_by_initial_token () =
  (* the SPI state-keeping idiom: self-loop primed with a token *)
  let m =
    model
      ~processes:
        [ proc ~consumes:[ ("self", 1); ("in", 1) ] ~produces:[ ("self", 1) ] "p" ]
      ~channels:[ ("self", [ Spi.Token.plain ]); ("in", []) ]
  in
  Alcotest.(check int) "no candidates" 0 (List.length (A.deadlock_candidates m))

let test_deadlock_empty_self_loop () =
  let m =
    model
      ~processes:[ proc ~consumes:[ ("self", 1) ] ~produces:[ ("self", 1) ] "p" ]
      ~channels:[ ("self", []) ]
  in
  Alcotest.(check int) "one candidate" 1 (List.length (A.deadlock_candidates m))

let test_deadlock_externally_startable () =
  (* a cycle whose processes can also fire from an external channel
     alone is not reported *)
  let mode_ext =
    Spi.Mode.make ~latency:one
      ~consumes:[ (cid "ext", one) ]
      ~produces:[ (cid "ab", Spi.Mode.produce one) ]
      (I.Mode_id.of_string "ext")
  and mode_loop =
    Spi.Mode.make ~latency:one
      ~consumes:[ (cid "ba", one) ]
      ~produces:[ (cid "ab", Spi.Mode.produce one) ]
      (I.Mode_id.of_string "loop")
  in
  let u = Spi.Process.make ~modes:[ mode_ext; mode_loop ] (pid "u") in
  let v = proc ~consumes:[ ("ab", 1) ] ~produces:[ ("ba", 1) ] "v" in
  let m =
    Spi.Model.build_exn ~processes:[ u; v ]
      ~channels:
        [ Spi.Chan.queue (cid "ext"); Spi.Chan.queue (cid "ab"); Spi.Chan.queue (cid "ba") ]
  in
  Alcotest.(check int) "not a candidate" 0 (List.length (A.deadlock_candidates m))

let test_queue_bounds_chain () =
  let m =
    model
      ~processes:
        [
          proc ~consumes:[ ("a", 1) ] ~produces:[ ("b", 2) ] "p";
          proc ~consumes:[ ("b", 1) ] ~produces:[ ("c", 3) ] "q";
        ]
      ~channels:[ ("a", []); ("b", []); ("c", []) ]
  in
  (* a: boundary, 4 env tokens; p fires <= 4; b <= 8; q fires <= 8; c <= 24 *)
  Alcotest.(check (option int)) "a" (Some 4) (A.queue_bound ~source_executions:4 m (cid "a"));
  Alcotest.(check (option int)) "b" (Some 8) (A.queue_bound ~source_executions:4 m (cid "b"));
  Alcotest.(check (option int)) "c" (Some 24) (A.queue_bound ~source_executions:4 m (cid "c"));
  Alcotest.(check (option int)) "unknown" None (A.queue_bound ~source_executions:4 m (cid "zz"))

let test_queue_bounds_cyclic () =
  let m =
    model
      ~processes:
        [
          proc ~consumes:[ ("ab", 1) ] ~produces:[ ("ba", 1) ] "v";
          proc ~consumes:[ ("ba", 1) ] ~produces:[ ("ab", 1) ] "u";
        ]
      ~channels:[ ("ab", []); ("ba", []) ]
  in
  Alcotest.(check (option int)) "cyclic unbounded" None
    (A.queue_bound ~source_executions:4 m (cid "ab"))

let test_bound_is_sound_vs_simulation () =
  (* the static bound dominates the simulated high-water mark *)
  let m =
    model
      ~processes:
        [
          proc ~consumes:[ ("a", 1) ] ~produces:[ ("b", 2) ] "p";
          proc ~latency:10 ~consumes:[ ("b", 1) ] ~produces:[] "q";
        ]
      ~channels:[ ("a", []); ("b", []) ]
  in
  let n = 6 in
  let stimuli =
    List.init n (fun i ->
        { Sim.Engine.at = i + 1; channel = cid "a"; token = Spi.Token.plain })
  in
  let result = Sim.Engine.run ~stimuli m in
  let stats = Sim.Stats.of_result m result in
  let observed =
    match Sim.Stats.channel (cid "b") stats with
    | Some c -> c.Sim.Stats.high_water
    | None -> Alcotest.fail "channel stats missing"
  in
  match A.queue_bound ~source_executions:n m (cid "b") with
  | Some bound ->
    Alcotest.(check bool)
      (Format.sprintf "bound %d >= observed %d" bound observed)
      true (bound >= observed)
  | None -> Alcotest.fail "bound expected"

let suite =
  ( "analysis",
    [
      Alcotest.test_case "balance balanced/boundary" `Quick test_balance_balanced;
      Alcotest.test_case "balance accumulating" `Quick test_balance_accumulating;
      Alcotest.test_case "balance starving" `Quick test_balance_starving;
      Alcotest.test_case "balance report coverage" `Quick
        test_balance_report_covers_all;
      Alcotest.test_case "deadlock detected" `Quick test_deadlock_detected;
      Alcotest.test_case "deadlock broken by initial token" `Quick
        test_deadlock_broken_by_initial_token;
      Alcotest.test_case "deadlock empty self loop" `Quick
        test_deadlock_empty_self_loop;
      Alcotest.test_case "deadlock externally startable" `Quick
        test_deadlock_externally_startable;
      Alcotest.test_case "queue bounds chain" `Quick test_queue_bounds_chain;
      Alcotest.test_case "queue bounds cyclic" `Quick test_queue_bounds_cyclic;
      Alcotest.test_case "bound sound vs simulation" `Quick
        test_bound_is_sound_vs_simulation;
    ] )
