(* Tests for the synthesis substrate: technology libraries, bindings,
   schedulability, cost, the branch-and-bound explorer and the
   baselines — including exact reproduction of Table 1. *)

module I = Spi.Ids
module F2 = Paper.Figure2

let pid = I.Process_id.of_string

(* ------------------------------- tech ------------------------------- *)

let test_tech_basics () =
  let tech = F2.table1_tech in
  Alcotest.(check int) "processor cost" 15 (Synth.Tech.processor_cost tech);
  Alcotest.(check bool) "mem" true (Synth.Tech.mem tech F2.pa);
  Alcotest.(check int) "four entries" 4 (List.length (Synth.Tech.process_ids tech));
  let o = Synth.Tech.options_of tech F2.pa in
  Alcotest.(check (option int))
    "PA load" (Some 40)
    (Option.map (fun s -> s.Synth.Tech.load) o.Synth.Tech.sw);
  Alcotest.(check (option int))
    "PA area" (Some 26)
    (Option.map (fun h -> h.Synth.Tech.area) o.Synth.Tech.hw)

let test_tech_validation () =
  (try
     ignore (Synth.Tech.make [ (pid "p", { Synth.Tech.sw = None; hw = None }) ]);
     Alcotest.fail "no-option process accepted"
   with Invalid_argument _ -> ());
  (try
     ignore
       (Synth.Tech.make
          [
            (pid "p", Synth.Tech.sw_only ~load:1);
            (pid "p", Synth.Tech.sw_only ~load:2);
          ]);
     Alcotest.fail "duplicate accepted"
   with Invalid_argument _ -> ());
  try
    ignore (Synth.Tech.make [ (pid "p", Synth.Tech.sw_only ~load:(-1)) ]);
    Alcotest.fail "negative load accepted"
  with Invalid_argument _ -> ()

let test_tech_of_weights () =
  let pids = [ pid "a"; pid "b" ] in
  let tech = Synth.Tech.of_weights ~weight:(fun _ -> 30) pids in
  let o = Synth.Tech.options_of tech (pid "a") in
  Alcotest.(check (option int))
    "load formula" (Some 15)
    (Option.map (fun s -> s.Synth.Tech.load) o.Synth.Tech.sw);
  Alcotest.(check (option int))
    "area formula" (Some 40)
    (Option.map (fun h -> h.Synth.Tech.area) o.Synth.Tech.hw)

(* ------------------------------ binding ----------------------------- *)

let test_binding () =
  let b =
    Synth.Binding.of_list
      [ (pid "a", Synth.Binding.Sw); (pid "b", Synth.Binding.Hw) ]
  in
  Alcotest.(check int) "cardinal" 2 (Synth.Binding.cardinal b);
  Alcotest.(check bool) "sw set" true
    (I.Process_id.Set.mem (pid "a") (Synth.Binding.sw_processes b));
  Alcotest.(check bool) "hw set" true
    (I.Process_id.Set.mem (pid "b") (Synth.Binding.hw_processes b));
  let b2 = Synth.Binding.of_list [ (pid "c", Synth.Binding.Sw) ] in
  (match Synth.Binding.merge b b2 with
  | Ok m -> Alcotest.(check int) "merged" 3 (Synth.Binding.cardinal m)
  | Error _ -> Alcotest.fail "merge must succeed");
  let conflicting = Synth.Binding.of_list [ (pid "a", Synth.Binding.Hw) ] in
  match Synth.Binding.merge b conflicting with
  | Error [ p ] -> Alcotest.(check string) "conflict on a" "a" (I.Process_id.to_string p)
  | Error ps -> Alcotest.failf "expected one conflict, got %d" (List.length ps)
  | Ok _ -> Alcotest.fail "conflict expected"

(* ----------------------------- schedule ----------------------------- *)

let all_sw app =
  Synth.Binding.of_list
    (List.map
       (fun p -> (p, Synth.Binding.Sw))
       (I.Process_id.Set.elements app.Synth.App.procs))

let test_schedule () =
  let tech = F2.table1_tech in
  (* App1 all software: 40 + 30 + 60 = 130 > 100 *)
  (match Synth.Schedule.check tech (all_sw F2.app1) [ F2.app1 ] with
  | Synth.Schedule.Overload { load; capacity; _ } ->
    Alcotest.(check int) "load" 130 load;
    Alcotest.(check int) "capacity" 100 capacity
  | v -> Alcotest.failf "unexpected verdict %a" Synth.Schedule.pp_verdict v);
  (* move g1 to hardware: 70 <= 100 *)
  let b =
    Synth.Binding.bind F2.unit_g1 Synth.Binding.Hw (all_sw F2.app1)
  in
  (match Synth.Schedule.check tech b [ F2.app1 ] with
  | Synth.Schedule.Feasible { worst_load; _ } ->
    Alcotest.(check int) "worst load" 70 worst_load
  | v -> Alcotest.failf "unexpected verdict %a" Synth.Schedule.pp_verdict v);
  (* unbound process detected *)
  match Synth.Schedule.check tech Synth.Binding.empty [ F2.app1 ] with
  | Synth.Schedule.Unbound_process _ -> ()
  | v -> Alcotest.failf "unexpected verdict %a" Synth.Schedule.pp_verdict v

let test_schedule_mutual_exclusion () =
  let tech = F2.table1_tech in
  (* both variants in software: each application alone fits (if PA,PB in
     hardware), although the summed loads would not *)
  let b =
    Synth.Binding.of_list
      [
        (F2.pa, Synth.Binding.Hw);
        (F2.pb, Synth.Binding.Hw);
        (F2.unit_g1, Synth.Binding.Sw);
        (F2.unit_g2, Synth.Binding.Sw);
      ]
  in
  match Synth.Schedule.check tech b [ F2.app1; F2.app2 ] with
  | Synth.Schedule.Feasible { worst_load; _ } ->
    Alcotest.(check int) "per-app max" 60 worst_load
  | v -> Alcotest.failf "unexpected verdict %a" Synth.Schedule.pp_verdict v

(* ------------------------------- cost ------------------------------- *)

let test_cost () =
  let tech = F2.table1_tech in
  let b =
    Synth.Binding.of_list
      [
        (F2.pa, Synth.Binding.Sw);
        (F2.pb, Synth.Binding.Sw);
        (F2.unit_g1, Synth.Binding.Hw);
      ]
  in
  let c = Synth.Cost.of_binding tech b in
  Alcotest.(check int) "processor" 15 c.Synth.Cost.processor;
  Alcotest.(check int) "total" 34 c.Synth.Cost.total;
  (* all-hardware binding pays no processor *)
  let all_hw =
    Synth.Binding.of_list
      [ (F2.pa, Synth.Binding.Hw); (F2.pb, Synth.Binding.Hw) ]
  in
  let c2 = Synth.Cost.of_binding tech all_hw in
  Alcotest.(check int) "no processor" 0 c2.Synth.Cost.processor;
  Alcotest.(check int) "areas" 56 c2.Synth.Cost.total

(* ------------------------------ explore ----------------------------- *)

let test_table1_exact () =
  let tech = F2.table1_tech in
  let s1 = Synth.Explore.optimal_exn tech [ F2.app1 ] in
  let s2 = Synth.Explore.optimal_exn tech [ F2.app2 ] in
  let var = Synth.Explore.optimal_exn tech [ F2.app1; F2.app2 ] in
  let sup =
    match Synth.Superpose.superpose tech [ F2.app1; F2.app2 ] with
    | Some r -> r
    | None -> Alcotest.fail "superposition infeasible"
  in
  Alcotest.(check int) "App1 total" 34 s1.Synth.Explore.cost.Synth.Cost.total;
  Alcotest.(check int) "App2 total" 38 s2.Synth.Explore.cost.Synth.Cost.total;
  Alcotest.(check int) "Superposition total" 57 sup.Synth.Superpose.cost.Synth.Cost.total;
  Alcotest.(check int) "With variants total" 41 var.Synth.Explore.cost.Synth.Cost.total;
  (* mapping shapes match the paper rows *)
  Alcotest.(check (option bool))
    "App1: g1 in HW" (Some true)
    (Option.map (fun i -> i = Synth.Binding.Hw)
       (Synth.Binding.impl_of F2.unit_g1 s1.Synth.Explore.binding));
  Alcotest.(check (option bool))
    "variants: PA in HW" (Some true)
    (Option.map (fun i -> i = Synth.Binding.Hw)
       (Synth.Binding.impl_of F2.pa var.Synth.Explore.binding));
  Alcotest.(check (option bool))
    "variants: g1 in SW" (Some true)
    (Option.map (fun i -> i = Synth.Binding.Sw)
       (Synth.Binding.impl_of F2.unit_g1 var.Synth.Explore.binding))

let brute_force ?(capacity = 100) tech apps =
  let procs = I.Process_id.Set.elements (Synth.App.union_procs apps) in
  let rec go procs binding =
    match procs with
    | [] ->
      if Synth.Schedule.is_feasible (Synth.Schedule.check ~capacity tech binding apps)
      then Some (Synth.Cost.total tech binding)
      else None
    | p :: rest ->
      let try_impl impl =
        let o = Synth.Tech.options_of tech p in
        let available =
          match impl with
          | Synth.Binding.Sw -> Option.is_some o.Synth.Tech.sw
          | Synth.Binding.Hw -> Option.is_some o.Synth.Tech.hw
        in
        if available then go rest (Synth.Binding.bind p impl binding) else None
      in
      (match try_impl Synth.Binding.Sw, try_impl Synth.Binding.Hw with
      | Some a, Some b -> Some (min a b)
      | (Some _ as r), None | None, (Some _ as r) -> r
      | None, None -> None)
  in
  go procs Synth.Binding.empty

let prop_explore_matches_bruteforce =
  QCheck.Test.make ~name:"explorer is exact vs brute force" ~count:60
    QCheck.(pair (int_range 1 6) (int_range 0 1000))
    (fun (n, seed) ->
      let rng = Random.State.make [| seed |] in
      let pids = List.init n (fun i -> pid (Format.sprintf "w%d" i)) in
      let tech =
        Synth.Tech.make ~processor_cost:(5 + Random.State.int rng 20)
          (List.map
             (fun p ->
               ( p,
                 Synth.Tech.both
                   ~load:(5 + Random.State.int rng 60)
                   ~area:(5 + Random.State.int rng 60) ))
             pids)
      in
      (* two overlapping applications over random subsets *)
      let subset () = List.filter (fun _ -> Random.State.bool rng) pids in
      let apps =
        [
          Synth.App.make "a" (match subset () with [] -> [ List.hd pids ] | s -> s);
          Synth.App.make "b" (match subset () with [] -> [ List.hd pids ] | s -> s);
        ]
      in
      let expected = brute_force tech apps in
      let got =
        Option.map
          (fun (s : Synth.Explore.solution) -> s.Synth.Explore.cost.Synth.Cost.total)
          (Synth.Explore.optimal tech apps)
      in
      expected = got)

let test_explore_fixed () =
  let tech = F2.table1_tech in
  let fixed = Synth.Binding.of_list [ (F2.pa, Synth.Binding.Sw) ] in
  let s = Synth.Explore.optimal_exn ~fixed tech [ F2.app1; F2.app2 ] in
  Alcotest.(check (option bool))
    "PA stays SW" (Some true)
    (Option.map (fun i -> i = Synth.Binding.Sw)
       (Synth.Binding.impl_of F2.pa s.Synth.Explore.binding));
  (* with PA pinned to software the optimum moves PB to hardware so the
     variants can still share the processor: 15 + 30 = 45 *)
  Alcotest.(check int) "pinned optimum" 45 s.Synth.Explore.cost.Synth.Cost.total;
  Alcotest.(check (option bool))
    "PB moves to HW" (Some true)
    (Option.map (fun i -> i = Synth.Binding.Hw)
       (Synth.Binding.impl_of F2.pb s.Synth.Explore.binding))

let test_explore_infeasible () =
  let tech =
    Synth.Tech.make [ (pid "x", Synth.Tech.sw_only ~load:200) ]
  in
  Alcotest.(check bool) "no feasible binding" true
    (Option.is_none (Synth.Explore.optimal tech [ Synth.App.make "a" [ pid "x" ] ]))

(* ---------------------------- baselines ----------------------------- *)

let test_serial_all_in_one () =
  match Synth.Serial.all_in_one F2.table1_tech [ F2.app1; F2.app2 ] with
  | None -> Alcotest.fail "all-in-one should be feasible"
  | Some s ->
    (* serialized loads lose mutual exclusion: optimum is superposition-like *)
    Alcotest.(check int) "cost" 57 s.Synth.Explore.cost.Synth.Cost.total

let test_serial_incremental () =
  let results = Synth.Serial.all_orders F2.table1_tech [ F2.app1; F2.app2 ] in
  Alcotest.(check int) "two orders" 2 (List.length results);
  List.iter
    (fun (r : Synth.Serial.incremental_result) ->
      Alcotest.(check bool) "feasible" true r.feasible;
      (* incremental never beats the variant-aware optimum *)
      Alcotest.(check bool) "not better than optimal" true
        (r.cost.Synth.Cost.total >= 41))
    results;
  match Synth.Serial.cost_spread results with
  | Some (best, worst) ->
    Alcotest.(check bool) "spread ordered" true (best <= worst)
  | None -> Alcotest.fail "spread expected"

let test_design_time () =
  let apps = [ F2.app1; F2.app2 ] in
  Alcotest.(check int) "independent" 6 (Synth.Design_time.decisions_independent apps);
  Alcotest.(check int) "variant aware" 4
    (Synth.Design_time.decisions_variant_aware apps);
  Alcotest.(check bool) "speedup > 1" true (Synth.Design_time.speedup apps > 1.0);
  Alcotest.(check int) "time model" 25
    (Synth.Design_time.time ~effort_per_decision:6 ~fixed_overhead:1 ~decisions:4 ())

let test_superpose_per_app () =
  match Synth.Superpose.superpose F2.table1_tech [ F2.app1; F2.app2 ] with
  | None -> Alcotest.fail "superposition expected"
  | Some r ->
    Alcotest.(check int) "two per-app solutions" 2 (List.length r.Synth.Superpose.per_app);
    Alcotest.(check int) "no conflicts" 0 (List.length r.Synth.Superpose.conflicts)

let prop_variant_aware_never_worse =
  QCheck.Test.make ~name:"variant-aware <= superposition" ~count:60
    QCheck.(int_range 0 1000)
    (fun seed ->
      let rng = Random.State.make [| seed |] in
      let pids = List.init 5 (fun i -> pid (Format.sprintf "p%d" i)) in
      let tech =
        Synth.Tech.make
          (List.map
             (fun p ->
               ( p,
                 Synth.Tech.both
                   ~load:(10 + Random.State.int rng 50)
                   ~area:(10 + Random.State.int rng 50) ))
             pids)
      in
      let shared = [ List.nth pids 0; List.nth pids 1 ] in
      let apps =
        [
          Synth.App.make "a" (List.nth pids 2 :: shared);
          Synth.App.make "b" (List.nth pids 3 :: List.nth pids 4 :: shared);
        ]
      in
      match Synth.Superpose.superpose tech apps, Synth.Explore.optimal tech apps with
      | Some sup, Some var ->
        var.Synth.Explore.cost.Synth.Cost.total
        <= sup.Synth.Superpose.cost.Synth.Cost.total
      | None, _ -> true (* single app infeasible: nothing to compare *)
      | Some _, None -> false (* superposable implies feasible *))

let suite =
  ( "synth",
    [
      Alcotest.test_case "tech basics" `Quick test_tech_basics;
      Alcotest.test_case "tech validation" `Quick test_tech_validation;
      Alcotest.test_case "tech of_weights" `Quick test_tech_of_weights;
      Alcotest.test_case "binding" `Quick test_binding;
      Alcotest.test_case "schedule" `Quick test_schedule;
      Alcotest.test_case "schedule mutual exclusion" `Quick
        test_schedule_mutual_exclusion;
      Alcotest.test_case "cost" `Quick test_cost;
      Alcotest.test_case "Table 1 exact" `Quick test_table1_exact;
      Alcotest.test_case "explore with fixed bindings" `Quick test_explore_fixed;
      Alcotest.test_case "explore infeasible" `Quick test_explore_infeasible;
      Alcotest.test_case "serial all-in-one" `Quick test_serial_all_in_one;
      Alcotest.test_case "serial incremental" `Quick test_serial_incremental;
      Alcotest.test_case "design time" `Quick test_design_time;
      Alcotest.test_case "superpose per-app" `Quick test_superpose_per_app;
      QCheck_alcotest.to_alcotest ~long:false prop_explore_matches_bruteforce;
      QCheck_alcotest.to_alcotest ~long:false prop_variant_aware_never_worse;
    ] )
