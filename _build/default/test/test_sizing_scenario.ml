(* Tests for empirical buffer sizing, the bottleneck analysis, and the
   extended video scenarios. *)

module I = Spi.Ids

let cid = I.Channel_id.of_string

(* fast producer, slow consumer: tokens pile up on "mid" *)
let unbalanced =
  Spi.Builder.(
    empty
    |> queue "in" |> queue "mid" |> queue "out"
    |> stage "fast" ~latency:(fixed 1) ~from:"in" ~into:"mid"
    |> stage "slow" ~latency:(fixed 7) ~from:"mid" ~into:"out"
    |> build_exn)

let workload n =
  List.init n (fun i ->
      { Sim.Engine.at = 1 + i; channel = cid "in"; token = Spi.Token.make ~payload:i () })

let test_suggest () =
  let suggestions =
    Sim.Sizing.suggest ~stimuli:[ workload 6 ] unbalanced
  in
  let find c =
    List.find (fun s -> I.Channel_id.equal s.Sim.Sizing.chan (cid c)) suggestions
  in
  Alcotest.(check bool) "mid piles up" true ((find "mid").Sim.Sizing.observed > 1);
  Alcotest.(check int) "capacity = observed without margin"
    (find "mid").Sim.Sizing.observed (find "mid").Sim.Sizing.capacity;
  let padded = Sim.Sizing.suggest ~margin:2 ~stimuli:[ workload 6 ] unbalanced in
  let find2 c =
    List.find (fun s -> I.Channel_id.equal s.Sim.Sizing.chan (cid c)) padded
  in
  Alcotest.(check int) "margin added"
    ((find "mid").Sim.Sizing.observed + 2)
    (find2 "mid").Sim.Sizing.capacity

let test_suggest_max_over_workloads () =
  let small = Sim.Sizing.suggest ~stimuli:[ workload 2 ] unbalanced in
  let both = Sim.Sizing.suggest ~stimuli:[ workload 2; workload 8 ] unbalanced in
  let get l c =
    (List.find (fun s -> I.Channel_id.equal s.Sim.Sizing.chan (cid c)) l)
      .Sim.Sizing.observed
  in
  Alcotest.(check bool) "bigger workload dominates" true
    (get both "mid" >= get small "mid")

let test_apply_and_verify () =
  let suggestions = Sim.Sizing.suggest ~stimuli:[ workload 6 ] unbalanced in
  let sized = Sim.Sizing.apply suggestions unbalanced in
  (* the sized model handles the same workload without overflow *)
  (match Sim.Sizing.verify ~stimuli:[ workload 6 ] sized with
  | Ok () -> ()
  | Error c -> Alcotest.failf "unexpected overflow on %a" I.Channel_id.pp c);
  (* but a heavier workload overflows the bounded queues *)
  match Sim.Sizing.verify ~stimuli:[ workload 20 ] sized with
  | Error c -> Alcotest.(check string) "mid overflows" "mid" (I.Channel_id.to_string c)
  | Ok () -> Alcotest.fail "expected overflow under heavier load"

let test_apply_preserves_behaviour () =
  let suggestions = Sim.Sizing.suggest ~stimuli:[ workload 6 ] unbalanced in
  let sized = Sim.Sizing.apply suggestions unbalanced in
  let run m =
    (Sim.Engine.run ~stimuli:(workload 6) m).Sim.Engine.firings
  in
  Alcotest.(check int) "same firings" (run unbalanced) (run sized)

let test_bottleneck () =
  match Spi.Analysis.bottleneck unbalanced with
  | Some (pid, latency) ->
    Alcotest.(check string) "slow is the bottleneck" "slow"
      (I.Process_id.to_string pid);
    Alcotest.(check int) "latency" 7 latency;
    Alcotest.(check int) "initiation interval" 7
      (Spi.Analysis.min_initiation_interval unbalanced)
  | None -> Alcotest.fail "bottleneck expected"

let test_bottleneck_vs_throughput () =
  (* observed steady-state spacing of outputs >= the analytic bound *)
  let result = Sim.Engine.run ~stimuli:(workload 8) unbalanced in
  let times =
    List.map fst (Sim.Trace.tokens_produced_on (cid "out") result.Sim.Engine.trace)
  in
  let rec gaps = function
    | a :: (b :: _ as rest) -> (b - a) :: gaps rest
    | [ _ ] | [] -> []
  in
  let bound = Spi.Analysis.min_initiation_interval unbalanced in
  List.iter
    (fun gap -> Alcotest.(check bool) "gap >= bound" true (gap >= bound))
    (gaps times)

(* ------------------------------ scenarios --------------------------- *)

let test_bursty_stream () =
  let stims = Video.Scenario.bursty_stream ~burst:5 ~gap:20 ~bursts:3 () in
  Alcotest.(check int) "15 frames" 15 (List.length stims);
  (* payloads are consecutive and unique *)
  let payloads =
    List.sort compare
      (List.filter_map (fun s -> Spi.Token.payload s.Sim.Engine.token) stims)
  in
  Alcotest.(check (list int)) "payloads" (List.init 15 (fun i -> i + 1)) payloads;
  (* bursty traffic needs deeper buffers than a smooth stream *)
  let built = Video.System.build Video.System.default_params in
  let smooth = Video.Scenario.video_stream ~period:5 ~frames:15 () in
  (* compare the first chain queue: CVout is unread and grows with the
     frame count in both runs, so the global maximum is uninformative *)
  let deep l =
    let s =
      Sim.Sizing.suggest ~configurations:built.Video.System.configurations
        ~stimuli:[ l ] built.Video.System.model
    in
    (List.find
       (fun x -> I.Channel_id.equal x.Sim.Sizing.chan Video.System.c_v1)
       s)
      .Sim.Sizing.observed
  in
  Alcotest.(check bool) "bursts need deeper queues" true (deep stims > deep smooth)

let test_periodic_requests () =
  let reqs =
    Video.Scenario.periodic_requests ~first:30 ~every:40 ~count:4
      ~variants:[ "fA"; "fB" ]
  in
  Alcotest.(check int) "four requests" 4 (List.length reqs);
  (* a request storm keeps the protocol safe *)
  let built = Video.System.build Video.System.default_params in
  let stimuli = Video.Scenario.video_stream ~period:5 ~frames:40 () @ reqs in
  let result =
    Sim.Engine.run ~configurations:built.Video.System.configurations ~stimuli
      built.Video.System.model
  in
  let report = Video.Checker.check result in
  Alcotest.(check bool) "storm safe" true (Video.Checker.is_safe report)

let suite =
  ( "sizing-scenario",
    [
      Alcotest.test_case "suggest" `Quick test_suggest;
      Alcotest.test_case "suggest max over workloads" `Quick
        test_suggest_max_over_workloads;
      Alcotest.test_case "apply and verify" `Quick test_apply_and_verify;
      Alcotest.test_case "apply preserves behaviour" `Quick
        test_apply_preserves_behaviour;
      Alcotest.test_case "bottleneck" `Quick test_bottleneck;
      Alcotest.test_case "bottleneck vs throughput" `Quick
        test_bottleneck_vs_throughput;
      Alcotest.test_case "bursty stream" `Quick test_bursty_stream;
      Alcotest.test_case "periodic requests" `Quick test_periodic_requests;
    ] )
