(* Cross-cutting soundness properties:

   - extraction soundness: the abstracted process's latency interval
     brackets the end-to-end behaviour of the flattened cluster, so the
     abstract model's best/worst-case makespans sandwich the flattened
     model's;
   - timing-constrained exploration: the [accept] hook makes the
     explorer trade cost for latency. *)

module I = Spi.Ids
module V = Variants

let single_stimulus system =
  (* inject one token into each boundary input channel of the flattened
     first application *)
  let model = V.Flatten.flatten system (V.Flatten.first_cluster system) in
  let inputs = Spi.Model.unwritten_channels model in
  List.map
    (fun cid -> { Sim.Engine.at = 1; channel = cid; token = Spi.Token.make ~payload:1 () })
    (I.Channel_id.Set.elements inputs)

let makespan ~policy model stimuli =
  (Sim.Engine.run ~policy ~stimuli model).Sim.Engine.end_time

let prop_extraction_brackets_flattened =
  QCheck.Test.make
    ~name:"abstract best/worst-case makespans bracket the flattened model"
    ~count:40
    QCheck.(pair (int_range 1 4) (int_range 0 999))
    (fun (cluster_processes, seed) ->
      let system =
        V.Generator.generate
          {
            V.Generator.seed;
            shared_processes = 2;
            sites = 1;
            variants_per_site = 2;
            cluster_processes;
            latency_range = (1, 12);
          }
      in
      let stimuli = single_stimulus system in
      let flattened =
        V.Flatten.flatten system (V.Flatten.first_cluster system)
      in
      (* abstraction without selection always behaves as the first
         cluster (its guard comes first) *)
      let abstract, _ = V.Flatten.abstract system in
      let f_best = makespan ~policy:Sim.Engine.Best_case flattened stimuli in
      let f_worst = makespan ~policy:Sim.Engine.Worst_case flattened stimuli in
      let a_best = makespan ~policy:Sim.Engine.Best_case abstract stimuli in
      let a_worst = makespan ~policy:Sim.Engine.Worst_case abstract stimuli in
      a_best <= f_best && f_worst <= a_worst)

let test_extraction_brackets_figure2 () =
  let system = Paper.Figure2.system in
  let stimuli =
    [ { Sim.Engine.at = 1; channel = Paper.Figure2.cx; token = Spi.Token.make ~payload:1 () } ]
  in
  let flattened =
    V.Flatten.flatten system (V.Flatten.choice_of_list [ ("iface1", "g1") ])
  in
  let abstract, _ = V.Flatten.abstract system in
  (* all figure-2 latencies are points: the chain g1 has latency 4+3=7,
     so flattened end-to-end is 1 + 3 + 7 + 2 = 13 under any policy *)
  Alcotest.(check int) "flattened makespan" 13
    (makespan ~policy:Sim.Engine.Typical flattened stimuli);
  Alcotest.(check bool) "abstract best <= 13" true
    (makespan ~policy:Sim.Engine.Best_case abstract stimuli <= 13);
  Alcotest.(check bool) "abstract worst >= 13" true
    (makespan ~policy:Sim.Engine.Worst_case abstract stimuli >= 13)

(* ------------------- timing-constrained exploration ------------------ *)

let pid = I.Process_id.of_string
let cid = I.Channel_id.of_string
let one = Interval.point 1

let chain2 =
  Spi.Model.build_exn
    ~processes:
      [
        Spi.Process.simple ~latency:one
          ~consumes:[ (cid "a", one) ]
          ~produces:[ (cid "b", Spi.Mode.produce one) ]
          (pid "p");
        Spi.Process.simple ~latency:one
          ~consumes:[ (cid "b", one) ]
          ~produces:[ (cid "c", Spi.Mode.produce one) ]
          (pid "q");
      ]
    ~channels:[ Spi.Chan.queue (cid "a"); Spi.Chan.queue (cid "b"); Spi.Chan.queue (cid "c") ]

let chain2_tech =
  (* software is cheap and slow, hardware dear and fast *)
  Synth.Tech.make ~processor_cost:10
    [
      (pid "p", Synth.Tech.both ~load:20 ~area:50);
      (pid "q", Synth.Tech.both ~load:25 ~area:60);
    ]

let app = Synth.App.make "chain" [ pid "p"; pid "q" ]

let test_accept_trades_cost_for_latency () =
  (* unconstrained: everything in software, cost 10 *)
  let free = Synth.Explore.optimal_exn chain2_tech [ app ] in
  Alcotest.(check int) "unconstrained cost" 10 free.Synth.Explore.cost.Synth.Cost.total;
  (* a path deadline of 30 forces at least one stage into hardware *)
  let deadline =
    Spi.Constraint_.latency_path ~name:"pq" ~from_:(pid "p") ~to_:(pid "q")
      ~bound:30
  in
  let accept binding =
    Synth.Timing.all_satisfied chain2_tech binding chain2 [ deadline ]
  in
  let constrained = Synth.Explore.optimal_exn ~accept chain2_tech [ app ] in
  Alcotest.(check bool) "more expensive" true
    (constrained.Synth.Explore.cost.Synth.Cost.total > 10);
  Alcotest.(check bool) "deadline met" true
    (accept constrained.Synth.Explore.binding);
  (* cheapest compliant mapping: q (load 25) to hardware -> 10 + 60;
     p to hardware would give 10 + 50 but leaves q at 25 > 30 - 1?
     20 (p SW) + 1 (q HW) = 21 <= 30: q-in-HW works at 70;
     p-in-HW: 1 + 25 = 26 <= 30: works at 60 - the optimum *)
  Alcotest.(check int) "optimal constrained cost" 60
    constrained.Synth.Explore.cost.Synth.Cost.total

let test_accept_unsatisfiable () =
  let accept _ = false in
  Alcotest.(check bool) "no solution" true
    (Option.is_none (Synth.Explore.optimal ~accept chain2_tech [ app ]))

let suite =
  ( "soundness",
    [
      QCheck_alcotest.to_alcotest ~long:false prop_extraction_brackets_flattened;
      Alcotest.test_case "extraction brackets figure2" `Quick
        test_extraction_brackets_figure2;
      Alcotest.test_case "accept trades cost for latency" `Quick
        test_accept_trades_cost_for_latency;
      Alcotest.test_case "accept unsatisfiable" `Quick test_accept_unsatisfiable;
    ] )
