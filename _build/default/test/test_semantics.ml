(* Tests for the untimed firing semantics: consumption, production,
   queue vs register behaviour, overflow handling, token conservation. *)

module I = Spi.Ids
module S = Spi.Semantics

let cid = I.Channel_id.of_string
let pid = I.Process_id.of_string
let one = Interval.point 1

let copy_process =
  Spi.Process.simple ~latency:one
    ~consumes:[ (cid "a", one) ]
    ~produces:[ (cid "b", Spi.Mode.produce one) ]
    (pid "copy")

let copy_model ?(chan_a = Spi.Chan.queue (cid "a")) () =
  Spi.Model.build_exn
    ~processes:[ copy_process ]
    ~channels:[ chan_a; Spi.Chan.queue (cid "b") ]

let the_mode p = List.hd (Spi.Process.modes p)

let test_initial_state () =
  let model =
    copy_model
      ~chan_a:(Spi.Chan.queue ~initial:[ Spi.Token.plain ] (cid "a"))
      ()
  in
  let st = S.initial model in
  Alcotest.(check int) "initial a" 1 (S.tokens_available st (cid "a"));
  Alcotest.(check int) "initial b" 0 (S.tokens_available st (cid "b"));
  Alcotest.(check int) "unknown channel" 0 (S.tokens_available st (cid "zz"))

let test_fire_queue () =
  let model = copy_model () in
  let st = S.initial model in
  let tok = Spi.Token.make ~payload:42 () in
  let st = S.inject model (cid "a") tok st in
  let st, firing = S.fire model (pid "copy") (the_mode copy_process) st in
  Alcotest.(check int) "a consumed" 0 (S.tokens_available st (cid "a"));
  Alcotest.(check int) "b produced" 1 (S.tokens_available st (cid "b"));
  Alcotest.(check int) "firing consumed" 1
    (List.length (List.concat_map snd firing.S.consumed));
  (* payload travels with Inherit_first *)
  match S.first_token st (cid "b") with
  | Some t -> Alcotest.(check (option int)) "payload inherited" (Some 42) (Spi.Token.payload t)
  | None -> Alcotest.fail "token expected on b"

let test_fifo_order () =
  let model = copy_model () in
  let st = S.initial model in
  let st = S.inject model (cid "a") (Spi.Token.make ~payload:1 ()) st in
  let st = S.inject model (cid "a") (Spi.Token.make ~payload:2 ()) st in
  let st, _ = S.fire model (pid "copy") (the_mode copy_process) st in
  (match S.first_token st (cid "a") with
  | Some t ->
    Alcotest.(check (option int)) "second in line" (Some 2) (Spi.Token.payload t)
  | None -> Alcotest.fail "token expected");
  match S.first_token st (cid "b") with
  | Some t ->
    Alcotest.(check (option int)) "first went through" (Some 1) (Spi.Token.payload t)
  | None -> Alcotest.fail "token expected"

let test_register_semantics () =
  let model = copy_model ~chan_a:(Spi.Chan.register (cid "a")) () in
  let st = S.initial model in
  let st = S.inject model (cid "a") (Spi.Token.make ~payload:1 ()) st in
  (* destructive write *)
  let st = S.inject model (cid "a") (Spi.Token.make ~payload:2 ()) st in
  Alcotest.(check int) "register holds one" 1 (S.tokens_available st (cid "a"));
  (match S.first_token st (cid "a") with
  | Some t -> Alcotest.(check (option int)) "last write wins" (Some 2) (Spi.Token.payload t)
  | None -> Alcotest.fail "token expected");
  (* sampling read: consumption does not remove *)
  let st, _ = S.fire model (pid "copy") (the_mode copy_process) st in
  Alcotest.(check int) "register kept token" 1 (S.tokens_available st (cid "a"));
  Alcotest.(check int) "production happened" 1 (S.tokens_available st (cid "b"))

let test_overflow_reject () =
  let model = copy_model ~chan_a:(Spi.Chan.queue ~capacity:1 (cid "a")) () in
  let st = S.initial model in
  let st = S.inject model (cid "a") Spi.Token.plain st in
  Alcotest.check_raises "overflow" (S.Channel_overflow (cid "a")) (fun () ->
      ignore (S.inject model (cid "a") Spi.Token.plain st))

let test_overflow_drop () =
  let model = copy_model ~chan_a:(Spi.Chan.queue ~capacity:1 (cid "a")) () in
  let st = S.initial model in
  let st = S.inject model (cid "a") (Spi.Token.make ~payload:1 ()) st in
  let st =
    S.inject ~overflow:S.Drop_newest model (cid "a")
      (Spi.Token.make ~payload:2 ())
      st
  in
  Alcotest.(check int) "kept capacity" 1 (S.tokens_available st (cid "a"));
  match S.first_token st (cid "a") with
  | Some t -> Alcotest.(check (option int)) "old kept" (Some 1) (Spi.Token.payload t)
  | None -> Alcotest.fail "token expected"

let test_consumption_clamped () =
  (* mode wants 3 tokens; only 1 available: the consumption realises 1 *)
  let hungry =
    Spi.Process.simple ~latency:one
      ~consumes:[ (cid "a", Interval.point 3) ]
      ~produces:[]
      (pid "hungry")
  in
  let model =
    Spi.Model.build_exn ~processes:[ hungry ]
      ~channels:[ Spi.Chan.queue (cid "a") ]
  in
  let st = S.initial model in
  let st = S.inject model (cid "a") Spi.Token.plain st in
  let st, firing = S.fire model (pid "hungry") (the_mode hungry) st in
  Alcotest.(check int) "clamped" 1
    (List.length (List.concat_map snd firing.S.consumed));
  Alcotest.(check int) "drained" 0 (S.tokens_available st (cid "a"))

let test_enabled_rule_and_mode () =
  let model =
    copy_model ~chan_a:(Spi.Chan.queue ~initial:[ Spi.Token.plain ] (cid "a")) ()
  in
  let st = S.initial model in
  (match S.enabled_mode model st (pid "copy") with
  | Some m ->
    Alcotest.(check string) "default mode" "copy.default"
      (I.Mode_id.to_string (Spi.Mode.id m))
  | None -> Alcotest.fail "mode expected");
  let st = S.clear_channel (cid "a") st in
  Alcotest.(check bool) "disabled after clear" true
    (Option.is_none (S.enabled_mode model st (pid "copy")))

let test_fresh_payload_policy () =
  let p =
    Spi.Process.simple ~payload_policy:Spi.Mode.Fresh ~latency:one
      ~consumes:[ (cid "a", one) ]
      ~produces:[ (cid "b", Spi.Mode.produce one) ]
      (pid "fresh")
  in
  let model =
    Spi.Model.build_exn ~processes:[ p ]
      ~channels:[ Spi.Chan.queue (cid "a"); Spi.Chan.queue (cid "b") ]
  in
  let st = S.initial model in
  let st = S.inject model (cid "a") (Spi.Token.make ~payload:9 ()) st in
  let st, _ = S.fire model (pid "fresh") (the_mode p) st in
  match S.first_token st (cid "b") with
  | Some t -> Alcotest.(check (option int)) "no payload" None (Spi.Token.payload t)
  | None -> Alcotest.fail "token expected"

(* Property: token conservation for a 1-in/1-out copy process over a
   random firing sequence. *)
let prop_conservation =
  QCheck.Test.make ~name:"copy process conserves tokens" ~count:200
    QCheck.(int_range 0 30)
    (fun n ->
      let model = copy_model () in
      let st = ref (S.initial model) in
      for i = 1 to n do
        st := S.inject model (cid "a") (Spi.Token.make ~payload:i ()) !st
      done;
      let fired = ref 0 in
      let continue = ref true in
      while !continue do
        match S.enabled_mode model !st (pid "copy") with
        | Some m ->
          let st', _ = S.fire model (pid "copy") m !st in
          st := st';
          incr fired
        | None -> continue := false
      done;
      !fired = n
      && S.tokens_available !st (cid "a") = 0
      && S.tokens_available !st (cid "b") = n
      && S.total_tokens !st = n)

let suite =
  ( "semantics",
    [
      Alcotest.test_case "initial state" `Quick test_initial_state;
      Alcotest.test_case "fire on queue" `Quick test_fire_queue;
      Alcotest.test_case "fifo order" `Quick test_fifo_order;
      Alcotest.test_case "register semantics" `Quick test_register_semantics;
      Alcotest.test_case "overflow reject" `Quick test_overflow_reject;
      Alcotest.test_case "overflow drop" `Quick test_overflow_drop;
      Alcotest.test_case "consumption clamped" `Quick test_consumption_clamped;
      Alcotest.test_case "enabled rule/mode" `Quick test_enabled_rule_and_mode;
      Alcotest.test_case "fresh payload policy" `Quick test_fresh_payload_policy;
      QCheck_alcotest.to_alcotest ~long:false prop_conservation;
    ] )
