(* Tests for the pipeline-style model builder. *)

module B = Spi.Builder
module I = Spi.Ids

let pipeline =
  B.(
    empty
    |> queue "in"
    |> queue ~capacity:8 "mid"
    |> queue "out"
    |> stage "decode" ~latency:(2, 4) ~from:"in" ~into:"mid"
    |> stage "render" ~latency:(fixed 1) ~from:"mid" ~into:"out")

let test_build () =
  let model = B.build_exn pipeline in
  Alcotest.(check int) "channels" 3 (List.length (Spi.Model.channels model));
  Alcotest.(check int) "processes" 2 (List.length (Spi.Model.processes model));
  let decode = Spi.Model.get_process (I.Process_id.of_string "decode") model in
  Alcotest.(check bool) "latency interval" true
    (Interval.equal (Spi.Process.latency_hull decode) (Interval.make 2 4));
  let mid = Spi.Model.get_channel (I.Channel_id.of_string "mid") model in
  Alcotest.(check (option int)) "capacity kept" (Some 8) (Spi.Chan.capacity mid)

let test_build_runs () =
  let model = B.build_exn pipeline in
  let stimuli =
    List.init 3 (fun i ->
        {
          Sim.Engine.at = 1 + i;
          channel = I.Channel_id.of_string "in";
          token = Spi.Token.make ~payload:i ();
        })
  in
  let result = Sim.Engine.run ~stimuli model in
  Alcotest.(check int) "delivered" 3
    (List.length
       (Sim.Trace.tokens_produced_on (I.Channel_id.of_string "out")
          result.Sim.Engine.trace))

let test_state_queue_and_register () =
  let model =
    B.(
      empty
      |> state_queue "S" ~tag:"st:idle"
      |> register "R"
      |> queue "in"
      |> worker "w" ~latency:(fixed 1)
           ~consumes:[ ("in", 1); ("S", 1) ]
           ~produces:[ ("S", 1) ]
      |> build_exn)
  in
  let s = Spi.Model.get_channel (I.Channel_id.of_string "S") model in
  Alcotest.(check int) "state token" 1 (List.length (Spi.Chan.initial s));
  let r = Spi.Model.get_channel (I.Channel_id.of_string "R") model in
  Alcotest.(check bool) "register" true (Spi.Chan.kind r = Spi.Chan.Register)

let test_source_sink () =
  let model =
    B.(
      empty
      |> queue "c"
      |> source "gen" ~latency:(fixed 1) ~into:"c" ~count:2 ()
      |> sink "eat" ~latency:(fixed 1) ~from:"c" ()
      |> build_exn)
  in
  let result =
    Sim.Engine.run
      ~firing_budget:[ (I.Process_id.of_string "gen", 3) ]
      model
  in
  (* 3 source firings x 2 tokens = 6 sink firings *)
  Alcotest.(check int) "firings" 9 result.Sim.Engine.firings

let test_build_errors_propagate () =
  let bad = B.(empty |> stage "p" ~latency:(fixed 1) ~from:"ghost" ~into:"also_ghost") in
  match B.build bad with
  | Ok _ -> Alcotest.fail "dangling channels accepted"
  | Error errors ->
    Alcotest.(check bool) "unknown channel" true
      (List.exists
         (function Spi.Model.Unknown_channel _ -> true | _ -> false)
         errors)

let test_prefix_reuse () =
  (* the builder is persistent: a shared prefix yields two models *)
  let base = B.(empty |> queue "a" |> queue "b") in
  let one = B.(base |> stage "p" ~latency:(fixed 1) ~from:"a" ~into:"b" |> build_exn) in
  let two =
    B.(
      base
      |> stage "p" ~latency:(fixed 2) ~from:"a" ~into:"b"
      |> build_exn)
  in
  let lat m =
    Spi.Process.latency_hull (Spi.Model.get_process (I.Process_id.of_string "p") m)
  in
  Alcotest.(check bool) "independent" false (Interval.equal (lat one) (lat two))

let suite =
  ( "builder",
    [
      Alcotest.test_case "build" `Quick test_build;
      Alcotest.test_case "built model runs" `Quick test_build_runs;
      Alcotest.test_case "state queue / register" `Quick
        test_state_queue_and_register;
      Alcotest.test_case "source / sink" `Quick test_source_sink;
      Alcotest.test_case "errors propagate" `Quick test_build_errors_propagate;
      Alcotest.test_case "prefix reuse" `Quick test_prefix_reuse;
    ] )
