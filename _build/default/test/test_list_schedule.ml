(* Tests for the static list scheduler. *)

module I = Spi.Ids
module LS = Synth.List_schedule

let pid = I.Process_id.of_string
let cid = I.Channel_id.of_string
let one = Interval.point 1

let proc ~consumes ~produces name =
  Spi.Process.simple ~latency:one
    ~consumes:(List.map (fun c -> (cid c, one)) consumes)
    ~produces:(List.map (fun c -> (cid c, Spi.Mode.produce one)) produces)
    (pid name)

(* fork-join: src -> (l, r) -> join *)
let diamond =
  Spi.Model.build_exn
    ~processes:
      [
        proc ~consumes:[ "in" ] ~produces:[ "a"; "b" ] "src";
        proc ~consumes:[ "a" ] ~produces:[ "c" ] "l";
        proc ~consumes:[ "b" ] ~produces:[ "d" ] "r";
        Spi.Process.simple ~latency:one
          ~consumes:[ (cid "c", one); (cid "d", one) ]
          ~produces:[] (pid "join");
      ]
    ~channels:(List.map (fun c -> Spi.Chan.queue (cid c)) [ "in"; "a"; "b"; "c"; "d" ])

let tech =
  Synth.Tech.make
    [
      (pid "src", Synth.Tech.both ~load:10 ~area:10);
      (pid "l", Synth.Tech.both ~load:20 ~area:10);
      (pid "r", Synth.Tech.both ~load:30 ~area:10);
      (pid "join", Synth.Tech.both ~load:10 ~area:10);
    ]

let all impl =
  Synth.Binding.of_list
    (List.map (fun n -> (pid n, impl)) [ "src"; "l"; "r"; "join" ])

let test_all_hw_parallel () =
  (* hardware latency 1 each: l and r run in parallel *)
  match LS.schedule tech (all Synth.Binding.Hw) diamond with
  | Error e -> Alcotest.failf "unexpected %a" LS.pp_error e
  | Ok s ->
    Alcotest.(check int) "makespan 3" 3 s.LS.makespan;
    Alcotest.(check int) "no cpu time" 0 s.LS.processor_busy;
    let l = Option.get (LS.entry_of (pid "l") s) in
    let r = Option.get (LS.entry_of (pid "r") s) in
    Alcotest.(check int) "parallel starts" l.LS.start r.LS.start

let test_all_sw_serialized () =
  (* software latencies = loads: the CPU serializes l and r *)
  match LS.schedule tech (all Synth.Binding.Sw) diamond with
  | Error e -> Alcotest.failf "unexpected %a" LS.pp_error e
  | Ok s ->
    (* src 10, then r (higher priority, 30) and l (20) serialized,
       then join 10: makespan = 10 + 30 + 20 + 10 = 70 *)
    Alcotest.(check int) "makespan" 70 s.LS.makespan;
    Alcotest.(check int) "cpu busy = total sw work" 70 s.LS.processor_busy;
    let l = Option.get (LS.entry_of (pid "l") s) in
    let r = Option.get (LS.entry_of (pid "r") s) in
    Alcotest.(check bool) "no overlap on cpu" true
      (l.LS.finish <= r.LS.start || r.LS.finish <= l.LS.start);
    (* critical path first: r (longer chain) scheduled before l *)
    Alcotest.(check bool) "r before l" true (r.LS.start < l.LS.start)

let test_mixed_binding () =
  let binding =
    Synth.Binding.of_list
      [
        (pid "src", Synth.Binding.Sw);
        (pid "l", Synth.Binding.Hw);
        (pid "r", Synth.Binding.Sw);
        (pid "join", Synth.Binding.Sw);
      ]
  in
  match LS.schedule tech binding diamond with
  | Error e -> Alcotest.failf "unexpected %a" LS.pp_error e
  | Ok s ->
    (* src 0-10 (SW); l HW 10-11 in parallel with r SW 10-40;
       join SW at 40-50 *)
    Alcotest.(check int) "makespan" 50 s.LS.makespan;
    let l = Option.get (LS.entry_of (pid "l") s) in
    let r = Option.get (LS.entry_of (pid "r") s) in
    Alcotest.(check bool) "hw overlaps sw" true
      (l.LS.start < r.LS.finish && r.LS.start < l.LS.finish);
    Alcotest.(check bool) "deadline 50 met" true (LS.meets_deadline s 50);
    Alcotest.(check bool) "deadline 49 missed" false (LS.meets_deadline s 49)

let test_dependencies_respected () =
  match LS.schedule tech (all Synth.Binding.Sw) diamond with
  | Error e -> Alcotest.failf "unexpected %a" LS.pp_error e
  | Ok s ->
    let get n = Option.get (LS.entry_of (pid n) s) in
    Alcotest.(check bool) "src before l" true
      ((get "src").LS.finish <= (get "l").LS.start);
    Alcotest.(check bool) "src before r" true
      ((get "src").LS.finish <= (get "r").LS.start);
    Alcotest.(check bool) "both before join" true
      ((get "l").LS.finish <= (get "join").LS.start
      && (get "r").LS.finish <= (get "join").LS.start)

let test_cyclic_rejected () =
  let cyclic =
    Spi.Model.build_exn
      ~processes:
        [ proc ~consumes:[ "x" ] ~produces:[ "y" ] "u";
          proc ~consumes:[ "y" ] ~produces:[ "x" ] "v" ]
      ~channels:[ Spi.Chan.queue (cid "x"); Spi.Chan.queue (cid "y") ]
  in
  let tech2 =
    Synth.Tech.make
      [ (pid "u", Synth.Tech.sw_only ~load:1); (pid "v", Synth.Tech.sw_only ~load:1) ]
  in
  let binding =
    Synth.Binding.of_list [ (pid "u", Synth.Binding.Sw); (pid "v", Synth.Binding.Sw) ]
  in
  match LS.schedule tech2 binding cyclic with
  | Error (LS.Cyclic _) -> ()
  | Error e -> Alcotest.failf "unexpected %a" LS.pp_error e
  | Ok _ -> Alcotest.fail "cycle accepted"

let test_unbound_rejected () =
  match LS.schedule tech Synth.Binding.empty diamond with
  | Error (LS.Unbound _) -> ()
  | Error e -> Alcotest.failf "unexpected %a" LS.pp_error e
  | Ok _ -> Alcotest.fail "unbound accepted"

let test_gantt_renders () =
  match LS.schedule tech (all Synth.Binding.Sw) diamond with
  | Error _ -> Alcotest.fail "schedule expected"
  | Ok s ->
    let text = Format.asprintf "%a" LS.pp_gantt s in
    Alcotest.(check bool) "mentions makespan" true
      (String.length text > 0
      &&
      let contains needle haystack =
        let n = String.length needle and h = String.length haystack in
        let rec go i = i + n <= h && (String.sub haystack i n = needle || go (i + 1)) in
        go 0
      in
      contains "makespan 70" text && contains "join" text)

let test_table1_schedule () =
  (* schedule the flattened application 1 under its optimal binding:
     cluster g1 in hardware, PA/PB in software *)
  let model =
    Variants.Flatten.flatten Paper.Figure2.system
      (Variants.Flatten.choice_of_list [ ("iface1", "g1") ])
  in
  let tech =
    Synth.Tech.make
      [
        (pid "PA", Synth.Tech.both ~load:40 ~area:26);
        (pid "PB", Synth.Tech.both ~load:30 ~area:30);
        (pid "iface1.x1", Synth.Tech.both ~load:30 ~area:10);
        (pid "iface1.x2", Synth.Tech.both ~load:30 ~area:9);
      ]
  in
  let binding =
    Synth.Binding.of_list
      [
        (pid "PA", Synth.Binding.Sw);
        (pid "PB", Synth.Binding.Sw);
        (pid "iface1.x1", Synth.Binding.Hw);
        (pid "iface1.x2", Synth.Binding.Hw);
      ]
  in
  match LS.schedule tech binding model with
  | Error e -> Alcotest.failf "unexpected %a" LS.pp_error e
  | Ok s ->
    (* PA 40 SW, x1/x2 HW 1+1, PB 30 SW: chain = 40+1+1+30 = 72 *)
    Alcotest.(check int) "makespan" 72 s.LS.makespan;
    Alcotest.(check int) "cpu busy" 70 s.LS.processor_busy

let suite =
  ( "list-schedule",
    [
      Alcotest.test_case "all hardware parallel" `Quick test_all_hw_parallel;
      Alcotest.test_case "all software serialized" `Quick test_all_sw_serialized;
      Alcotest.test_case "mixed binding" `Quick test_mixed_binding;
      Alcotest.test_case "dependencies respected" `Quick
        test_dependencies_respected;
      Alcotest.test_case "cyclic rejected" `Quick test_cyclic_rejected;
      Alcotest.test_case "unbound rejected" `Quick test_unbound_rejected;
      Alcotest.test_case "gantt renders" `Quick test_gantt_renders;
      Alcotest.test_case "table1 application schedule" `Quick
        test_table1_schedule;
    ] )
