(* Tests for parameter extraction (Section 4), flattening, variant
   spaces and the generator, driven by the paper's Figure 2/3 system. *)

module I = Spi.Ids
module V = Variants
module F2 = Paper.Figure2

let site () =
  match V.System.find_site F2.iface1 F2.system_with_selection with
  | Some site -> site
  | None -> Alcotest.fail "site missing"

let extraction ?granularity () =
  let site = site () in
  V.Extraction.extract ?granularity ~process_name:"PVar"
    ~wiring:site.V.Structure.wiring site.V.Structure.iface

(* ----------------------------- extraction --------------------------- *)

let test_extract_mode_counts () =
  let r = extraction () in
  (* per-entry-mode granularity: entry processes are single-mode chains,
     so one mode per cluster *)
  Alcotest.(check int) "modes" 2
    (List.length (Spi.Process.modes r.V.Extraction.abstract_process));
  Alcotest.(check int) "origins" 2 (List.length r.V.Extraction.mode_origin);
  let origins = List.map (fun (_, c) -> I.Cluster_id.to_string c) r.V.Extraction.mode_origin in
  Alcotest.(check (list string)) "one per cluster" [ "g1"; "g2" ]
    (List.sort compare origins)

let test_extract_configurations () =
  let r = extraction () in
  let confs = r.V.Extraction.configurations in
  Alcotest.(check int) "two configurations" 2
    (List.length (V.Configuration.entries confs));
  Alcotest.(check int) "t_conf g1" 5
    (V.Configuration.reconf_latency (I.Config_id.of_string "conf.g1") confs);
  Alcotest.(check int) "t_conf g2" 7
    (V.Configuration.reconf_latency (I.Config_id.of_string "conf.g2") confs);
  Alcotest.(check (option string))
    "initial follows selection" (Some "conf.g1")
    (Option.map I.Config_id.to_string (V.Configuration.start confs));
  (* configurations match the abstracted process *)
  Alcotest.(check int) "consistent with process" 0
    (List.length
       (V.Configuration.validate_against r.V.Extraction.abstract_process confs))

let test_extract_latency_hull () =
  let r = extraction () in
  let p = r.V.Extraction.abstract_process in
  (* g1 chain: 4 + 3 = 7; g2 chain: 2 + 5 + 2 = 9; entry latencies join in *)
  let hull = Spi.Process.latency_hull p in
  Alcotest.(check bool) "hull covers both chains" true
    (Interval.mem 7 hull && Interval.mem 9 hull)

let test_extract_guards_select_variant () =
  let r = extraction () in
  let p = r.V.Extraction.abstract_process in
  (* a view with a V2-tagged token on CV and data on CA *)
  let view tag =
    {
      Spi.Predicate.tokens_available = (fun _ -> 3);
      first_tags =
        (fun c ->
          if I.Channel_id.equal c F2.cv then Some (Spi.Tag.set_of_list [ tag ])
          else Some Spi.Tag.Set.empty);
    }
  in
  (match Spi.Activation.select (view "V2") (Spi.Process.activation p) with
  | Some rule ->
    let conf =
      V.Configuration.config_of_mode
        (Spi.Activation.target_mode rule)
        r.V.Extraction.configurations
    in
    Alcotest.(check (option string))
      "V2 tag picks g2" (Some "conf.g2")
      (Option.map I.Config_id.to_string conf)
  | None -> Alcotest.fail "V2 rule expected");
  match Spi.Activation.select (view "V1") (Spi.Process.activation p) with
  | Some rule ->
    let conf =
      V.Configuration.config_of_mode
        (Spi.Activation.target_mode rule)
        r.V.Extraction.configurations
    in
    Alcotest.(check (option string))
      "V1 tag picks g1" (Some "conf.g1")
      (Option.map I.Config_id.to_string conf)
  | None -> Alcotest.fail "V1 rule expected"

let test_extract_consumes_selection_token () =
  let r = extraction () in
  let p = r.V.Extraction.abstract_process in
  List.iter
    (fun m ->
      Alcotest.(check bool)
        (Format.asprintf "mode %a consumes CV" I.Mode_id.pp (Spi.Mode.id m))
        true
        (Interval.equal (Spi.Mode.consumption m F2.cv) (Interval.point 1)))
    (Spi.Process.modes p)

let test_extract_coarse () =
  let r = extraction ~granularity:V.Extraction.Coarse () in
  Alcotest.(check int) "coarse also one mode per cluster here" 2
    (List.length (Spi.Process.modes r.V.Extraction.abstract_process))

let test_extract_missing_wiring () =
  let site = site () in
  try
    ignore
      (V.Extraction.extract ~process_name:"PVar" ~wiring:[]
         site.V.Structure.iface);
    Alcotest.fail "unwired extraction accepted"
  with V.Extraction.Extraction_error _ -> ()

(* ------------------------------ flatten ----------------------------- *)

let test_flatten_applications () =
  let apps = V.Flatten.applications F2.system in
  Alcotest.(check int) "two applications" 2 (List.length apps);
  let sizes =
    List.map (fun (_, m) -> List.length (Spi.Model.processes m)) apps
  in
  (* PA + PB + (2 | 3) cluster processes *)
  Alcotest.(check (list int)) "model sizes" [ 4; 5 ] (List.sort compare sizes)

let test_flatten_prefixing () =
  let model =
    V.Flatten.flatten F2.system (V.Flatten.choice_of_list [ ("iface1", "g1") ])
  in
  Alcotest.(check bool) "prefixed process present" true
    (Option.is_some
       (Spi.Model.find_process (I.Process_id.of_string "iface1.x1") model));
  (* the shared process is untouched *)
  Alcotest.(check bool) "shared kept" true
    (Option.is_some (Spi.Model.find_process F2.pa model));
  (* the flattened model is a correct SPI model: writer/reader wiring *)
  Alcotest.(check (option string))
    "cluster reads CA" (Some "iface1.x1")
    (Option.map I.Process_id.to_string (Spi.Model.reader_of F2.ca model));
  Alcotest.(check (option string))
    "cluster writes CB" (Some "iface1.x2")
    (Option.map I.Process_id.to_string (Spi.Model.writer_of F2.cb model))

let test_flatten_unknown_cluster () =
  try
    ignore
      (V.Flatten.flatten F2.system (V.Flatten.choice_of_list [ ("iface1", "zz") ]));
    Alcotest.fail "unknown cluster accepted"
  with V.Flatten.Flatten_error _ -> ()

let test_abstract () =
  let model, confs = V.Flatten.abstract F2.system_with_selection in
  Alcotest.(check int) "one configuration set" 1 (List.length confs);
  Alcotest.(check bool) "abstract process named after interface" true
    (Option.is_some
       (Spi.Model.find_process (I.Process_id.of_string "iface1") model));
  (* cluster internals are gone *)
  Alcotest.(check bool) "no cluster process" true
    (Option.is_none
       (Spi.Model.find_process (I.Process_id.of_string "iface1.x1") model))

(* --------------------------- variant space -------------------------- *)

let two_site_system =
  (* reuse the generator for a 2-site system with 3 and 3 variants *)
  V.Generator.generate
    { V.Generator.default with sites = 2; variants_per_site = 3 }

let test_variant_space_counts () =
  Alcotest.(check int) "figure2 count" 2
    (V.Variant_space.independent_count F2.system);
  Alcotest.(check int) "two sites" 9
    (V.Variant_space.independent_count two_site_system);
  Alcotest.(check int) "enumerate matches count" 9
    (List.length (V.Variant_space.enumerate two_site_system))

let test_variant_space_linkage () =
  let linkage =
    [ [ I.Interface_id.of_string "iface1"; I.Interface_id.of_string "iface2" ] ]
  in
  Alcotest.(check int) "linked count" 3
    (V.Variant_space.count ~linkage two_site_system);
  let assignments = V.Variant_space.enumerate ~linkage two_site_system in
  Alcotest.(check int) "linked enumerate" 3 (List.length assignments);
  (* each assignment picks the same index in both interfaces *)
  List.iter
    (fun assignment ->
      match assignment with
      | [ (_, c1); (_, c2) ] ->
        let index_of c =
          let s = I.Cluster_id.to_string c in
          String.sub s (String.length s - 1) 1
        in
        Alcotest.(check string) "same index" (index_of c1) (index_of c2)
      | _ -> Alcotest.fail "two entries expected")
    assignments

let test_variant_space_unknown_linkage () =
  try
    ignore
      (V.Variant_space.enumerate
         ~linkage:[ [ I.Interface_id.of_string "nope" ] ]
         two_site_system);
    Alcotest.fail "unknown interface accepted"
  with Invalid_argument _ -> ()

let test_variant_space_choice () =
  let assignments = V.Variant_space.enumerate F2.system in
  List.iter
    (fun assignment ->
      let choice = V.Variant_space.to_choice assignment in
      let model = V.Flatten.flatten F2.system choice in
      Alcotest.(check bool) "flattens" true
        (List.length (Spi.Model.processes model) >= 4))
    assignments

(* ----------------------------- generator ---------------------------- *)

let prop_generator_valid =
  QCheck.Test.make ~name:"generated systems validate" ~count:50
    QCheck.(
      quad (int_range 1 4) (int_range 0 3) (int_range 1 3) (int_range 1 4))
    (fun (shared, sites, variants, cluster_size) ->
      let system =
        V.Generator.generate
          {
            V.Generator.seed = shared + (sites * 7) + (variants * 13);
            shared_processes = shared;
            sites;
            variants_per_site = variants;
            cluster_processes = cluster_size;
            latency_range = (1, 10);
          }
      in
      V.System.validate system = []
      &&
      (* every application flattens to a valid model *)
      List.for_all
        (fun (_, model) -> List.length (Spi.Model.processes model) > 0)
        (V.Flatten.applications system))

let test_generator_deterministic () =
  let a = V.Generator.generate V.Generator.default in
  let b = V.Generator.generate V.Generator.default in
  Alcotest.(check string) "same name" (V.System.name a) (V.System.name b);
  let lat system =
    List.map
      (fun p -> Interval.to_string (Spi.Process.latency_hull p))
      (V.System.processes system)
  in
  Alcotest.(check (list string)) "same latencies" (lat a) (lat b)

let test_process_weight_stable () =
  let w1 = V.Generator.process_weight F2.pa in
  let w2 = V.Generator.process_weight F2.pa in
  Alcotest.(check int) "deterministic" w1 w2;
  Alcotest.(check bool) "in range" true (w1 >= 1 && w1 <= 100)

let suite =
  ( "extraction-flatten-space",
    [
      Alcotest.test_case "extraction mode counts" `Quick test_extract_mode_counts;
      Alcotest.test_case "extraction configurations" `Quick
        test_extract_configurations;
      Alcotest.test_case "extraction latency hull" `Quick
        test_extract_latency_hull;
      Alcotest.test_case "extraction guards select variant" `Quick
        test_extract_guards_select_variant;
      Alcotest.test_case "extraction consumes selection token" `Quick
        test_extract_consumes_selection_token;
      Alcotest.test_case "extraction coarse" `Quick test_extract_coarse;
      Alcotest.test_case "extraction missing wiring" `Quick
        test_extract_missing_wiring;
      Alcotest.test_case "flatten applications" `Quick test_flatten_applications;
      Alcotest.test_case "flatten prefixing/wiring" `Quick test_flatten_prefixing;
      Alcotest.test_case "flatten unknown cluster" `Quick
        test_flatten_unknown_cluster;
      Alcotest.test_case "abstract" `Quick test_abstract;
      Alcotest.test_case "variant space counts" `Quick test_variant_space_counts;
      Alcotest.test_case "variant space linkage" `Quick test_variant_space_linkage;
      Alcotest.test_case "variant space unknown linkage" `Quick
        test_variant_space_unknown_linkage;
      Alcotest.test_case "variant space choice flattens" `Quick
        test_variant_space_choice;
      Alcotest.test_case "generator deterministic" `Quick
        test_generator_deterministic;
      Alcotest.test_case "process weight stable" `Quick test_process_weight_stable;
      QCheck_alcotest.to_alcotest ~long:false prop_generator_valid;
    ] )
