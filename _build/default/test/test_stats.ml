(* Tests for post-simulation statistics. *)

module I = Spi.Ids

let cid = I.Channel_id.of_string
let pid = I.Process_id.of_string
let one = Interval.point 1

let pipeline =
  Spi.Model.build_exn
    ~processes:
      [
        Spi.Process.simple ~latency:(Interval.point 2)
          ~consumes:[ (cid "a", one) ]
          ~produces:[ (cid "b", Spi.Mode.produce one) ]
          (pid "p");
        Spi.Process.simple ~latency:(Interval.point 4)
          ~consumes:[ (cid "b", one) ]
          ~produces:[ (cid "c", Spi.Mode.produce one) ]
          (pid "q");
      ]
    ~channels:[ Spi.Chan.queue (cid "a"); Spi.Chan.queue (cid "b"); Spi.Chan.queue (cid "c") ]

let run n =
  let stimuli =
    List.init n (fun i ->
        { Sim.Engine.at = 1 + i; channel = cid "a"; token = Spi.Token.make ~payload:i () })
  in
  let result = Sim.Engine.run ~stimuli pipeline in
  (result, Sim.Stats.of_result pipeline result)

let test_process_stats () =
  let _, stats = run 5 in
  (match Sim.Stats.process (pid "p") stats with
  | Some p ->
    Alcotest.(check int) "p firings" 5 p.Sim.Stats.firings;
    Alcotest.(check int) "p busy" 10 p.Sim.Stats.busy_time
  | None -> Alcotest.fail "p stats missing");
  match Sim.Stats.process (pid "q") stats with
  | Some q ->
    Alcotest.(check int) "q firings" 5 q.Sim.Stats.firings;
    Alcotest.(check int) "q busy" 20 q.Sim.Stats.busy_time;
    Alcotest.(check bool) "q utilization dominant" true
      (q.Sim.Stats.utilization > 0.5)
  | None -> Alcotest.fail "q stats missing"

let test_channel_stats () =
  let _, stats = run 5 in
  (match Sim.Stats.channel (cid "b") stats with
  | Some b ->
    Alcotest.(check int) "b through" 5 b.Sim.Stats.tokens_through;
    (* q is slower than p: tokens pile up on b *)
    Alcotest.(check bool) "b high-water > 1" true (b.Sim.Stats.high_water > 1);
    Alcotest.(check int) "b drained" 0 b.Sim.Stats.final_occupancy
  | None -> Alcotest.fail "b stats missing");
  match Sim.Stats.channel (cid "c") stats with
  | Some c ->
    Alcotest.(check int) "c final" 5 c.Sim.Stats.final_occupancy;
    Alcotest.(check int) "c high-water" 5 c.Sim.Stats.high_water
  | None -> Alcotest.fail "c stats missing"

let test_makespan_and_totals () =
  let result, stats = run 3 in
  Alcotest.(check int) "makespan" result.Sim.Engine.end_time stats.Sim.Stats.makespan;
  Alcotest.(check int) "total firings" 6 stats.Sim.Stats.total_firings

let test_register_high_water () =
  let m =
    Spi.Model.build_exn
      ~processes:
        [
          Spi.Process.simple ~latency:one
            ~consumes:[ (cid "r", one); (cid "t", one) ]
            ~produces:[] (pid "s");
        ]
      ~channels:[ Spi.Chan.register (cid "r"); Spi.Chan.queue (cid "t") ]
  in
  let stimuli =
    List.init 4 (fun i ->
        { Sim.Engine.at = i + 1; channel = cid "r"; token = Spi.Token.plain })
    @ [ { Sim.Engine.at = 6; channel = cid "t"; token = Spi.Token.plain } ]
  in
  let result = Sim.Engine.run ~stimuli m in
  let stats = Sim.Stats.of_result m result in
  match Sim.Stats.channel (cid "r") stats with
  | Some r ->
    Alcotest.(check int) "register high-water capped" 1 r.Sim.Stats.high_water;
    Alcotest.(check int) "register through counts writes" 4
      r.Sim.Stats.tokens_through
  | None -> Alcotest.fail "register stats missing"

let test_reconfiguration_stats () =
  let built = Video.System.build Video.System.default_params in
  let stimuli =
    Video.Scenario.switching_demo ~frames:20 ~period:5 ~switches:[ (30, "fB") ] ()
  in
  let result =
    Sim.Engine.run ~configurations:built.Video.System.configurations ~stimuli
      built.Video.System.model
  in
  let stats = Sim.Stats.of_result built.Video.System.model result in
  match Sim.Stats.process Video.System.p_stage1 stats with
  | Some p1 ->
    Alcotest.(check int) "one reconfiguration" 1 p1.Sim.Stats.reconfigurations;
    Alcotest.(check int) "t_conf accounted" 6 p1.Sim.Stats.reconfiguration_time
  | None -> Alcotest.fail "P1 stats missing"

let suite =
  ( "stats",
    [
      Alcotest.test_case "process stats" `Quick test_process_stats;
      Alcotest.test_case "channel stats" `Quick test_channel_stats;
      Alcotest.test_case "makespan and totals" `Quick test_makespan_and_totals;
      Alcotest.test_case "register high-water" `Quick test_register_high_water;
      Alcotest.test_case "reconfiguration stats" `Quick
        test_reconfiguration_stats;
    ] )
