(* Tests for Def. 4 configurations and the confcur transition logic. *)

module I = Spi.Ids
module V = Variants

let mid = I.Mode_id.of_string
let pid = I.Process_id.of_string

let confs =
  V.Configuration.make ~initial:(I.Config_id.of_string "cA") ~process:(pid "p")
    [
      V.Configuration.entry ~reconf_latency:4 "cA" ~modes:[ mid "a1"; mid "a2" ];
      V.Configuration.entry ~reconf_latency:6 "cB" ~modes:[ mid "b1" ];
    ]

let test_accessors () =
  Alcotest.(check int) "entries" 2 (List.length (V.Configuration.entries confs));
  Alcotest.(check (option string))
    "config of a2" (Some "cA")
    (Option.map I.Config_id.to_string
       (V.Configuration.config_of_mode (mid "a2") confs));
  Alcotest.(check (option string))
    "config of shared mode" None
    (Option.map I.Config_id.to_string
       (V.Configuration.config_of_mode (mid "zz") confs));
  Alcotest.(check int) "latency cB" 6
    (V.Configuration.reconf_latency (I.Config_id.of_string "cB") confs);
  Alcotest.(check (option string))
    "initial" (Some "cA")
    (Option.map I.Config_id.to_string (V.Configuration.start confs))

let test_make_validation () =
  let entry = V.Configuration.entry in
  (try
     ignore
       (V.Configuration.make ~process:(pid "p")
          [ entry "c" ~modes:[ mid "m" ]; entry "c" ~modes:[ mid "n" ] ]);
     Alcotest.fail "duplicate configs accepted"
   with Invalid_argument _ -> ());
  (try
     ignore
       (V.Configuration.make ~process:(pid "p")
          [ entry "c1" ~modes:[ mid "m" ]; entry "c2" ~modes:[ mid "m" ] ]);
     Alcotest.fail "overlapping configs accepted"
   with Invalid_argument _ -> ());
  (try
     ignore
       (V.Configuration.make ~process:(pid "p")
          [ entry ~reconf_latency:(-1) "c" ~modes:[ mid "m" ] ]);
     Alcotest.fail "negative latency accepted"
   with Invalid_argument _ -> ());
  try
    ignore
      (V.Configuration.make
         ~initial:(I.Config_id.of_string "ghost")
         ~process:(pid "p")
         [ entry "c" ~modes:[ mid "m" ] ]);
    Alcotest.fail "unknown initial accepted"
  with Invalid_argument _ -> ()

let test_on_activation () =
  let start = V.Configuration.start confs in
  (* mode inside the current configuration: stay *)
  (match V.Configuration.on_activation confs start (mid "a1") with
  | V.Configuration.Stay, cur ->
    Alcotest.(check (option string))
      "cur unchanged" (Some "cA")
      (Option.map I.Config_id.to_string cur)
  | V.Configuration.Reconfigure _, _ -> Alcotest.fail "unexpected reconfiguration");
  (* switching variants: reconfigure with cB's latency *)
  (match V.Configuration.on_activation confs start (mid "b1") with
  | V.Configuration.Reconfigure { target; latency }, cur ->
    Alcotest.(check string) "target" "cB" (I.Config_id.to_string target);
    Alcotest.(check int) "latency" 6 latency;
    Alcotest.(check (option string))
      "cur updated" (Some "cB")
      (Option.map I.Config_id.to_string cur)
  | V.Configuration.Stay, _ -> Alcotest.fail "reconfiguration expected");
  (* shared mode (in no configuration): stay whatever cur *)
  (match V.Configuration.on_activation confs None (mid "shared") with
  | V.Configuration.Stay, None -> ()
  | _ -> Alcotest.fail "shared mode must not reconfigure");
  (* no current configuration yet: first variant execution configures *)
  match V.Configuration.on_activation confs None (mid "a1") with
  | V.Configuration.Reconfigure { target; latency }, _ ->
    Alcotest.(check string) "initial configure" "cA" (I.Config_id.to_string target);
    Alcotest.(check int) "initial latency" 4 latency
  | V.Configuration.Stay, _ -> Alcotest.fail "initial configuration expected"

let test_validate_against () =
  let one = Interval.point 1 in
  let mk name = Spi.Mode.make ~latency:one ~consumes:[] ~produces:[] (mid name) in
  let proc =
    Spi.Process.make
      ~activation:
        (Spi.Activation.make
           [
             Spi.Activation.rule
               (I.Rule_id.of_string "r")
               ~guard:Spi.Predicate.False ~mode:(mid "a1");
           ])
      ~modes:[ mk "a1"; mk "a2"; mk "b1" ]
      (pid "p")
  in
  Alcotest.(check int) "complete process ok" 0
    (List.length (V.Configuration.validate_against proc confs));
  let partial = Spi.Process.make ~modes:[ mk "a1" ] (pid "p") in
  let errors = V.Configuration.validate_against partial confs in
  Alcotest.(check bool) "unknown modes flagged" true
    (List.exists
       (function V.Configuration.Unknown_mode _ -> true | _ -> false)
       errors);
  let extra = Spi.Process.make ~modes:[ mk "a1"; mk "a2"; mk "b1"; mk "x" ] (pid "p") in
  let errors = V.Configuration.validate_against extra confs in
  Alcotest.(check bool) "uncovered mode flagged" true
    (List.exists
       (function V.Configuration.Uncovered_mode _ -> true | _ -> false)
       errors);
  Alcotest.(check int) "uncovered allowed when not complete" 0
    (List.length (V.Configuration.validate_against ~complete:false extra confs))

let suite =
  ( "configuration",
    [
      Alcotest.test_case "accessors" `Quick test_accessors;
      Alcotest.test_case "make validation" `Quick test_make_validation;
      Alcotest.test_case "on_activation transitions" `Quick test_on_activation;
      Alcotest.test_case "validate against process" `Quick test_validate_against;
    ] )
