(* Tests for the Figure 4 reconfigurable video system: the suspend /
   resume protocol, the invalid-image property with and without
   valves, and frame accounting. *)

let run ?(with_valves = true) ?(frames = 30) ?(period = 5) switches =
  let built =
    Video.System.build { Video.System.default_params with with_valves }
  in
  let stimuli = Video.Scenario.switching_demo ~frames ~period ~switches () in
  let result =
    Sim.Engine.run ~configurations:built.Video.System.configurations ~stimuli
      built.Video.System.model
  in
  (result, Video.Checker.check result)

let test_no_switch_passthrough () =
  let result, report = run [] in
  Alcotest.(check int) "all frames in" 30 report.Video.Checker.frames_in;
  Alcotest.(check int) "all clean" 30 report.Video.Checker.clean;
  Alcotest.(check int) "none held" 0 report.Video.Checker.held;
  Alcotest.(check int) "none dropped" 0 report.Video.Checker.dropped;
  Alcotest.(check int) "no reconfigurations" 0
    report.Video.Checker.reconfigurations;
  Alcotest.(check bool) "safe" true (Video.Checker.is_safe report);
  Alcotest.(check bool) "quiescent" true
    (result.Sim.Engine.outcome = Sim.Engine.Quiescent)

let test_single_switch_safe () =
  let result, report = run [ (52, "fB") ] in
  Alcotest.(check bool) "safe" true (Video.Checker.is_safe report);
  Alcotest.(check int) "two stage reconfigurations" 2
    report.Video.Checker.reconfigurations;
  (* t_conf(fB) = 6 per stage *)
  Alcotest.(check int) "reconfiguration time" 12
    report.Video.Checker.reconfiguration_time;
  (* suspension loses some frames: dropped + held > 0 *)
  Alcotest.(check bool) "protocol engaged" true
    (report.Video.Checker.dropped + report.Video.Checker.held > 0);
  (* accounting closes *)
  Alcotest.(check int) "accounting" report.Video.Checker.frames_in
    (report.Video.Checker.clean + report.Video.Checker.held
   + report.Video.Checker.dropped);
  ignore result

let test_double_switch_safe () =
  let _, report = run [ (52, "fB"); (120, "fA") ] in
  Alcotest.(check bool) "safe" true (Video.Checker.is_safe report);
  Alcotest.(check int) "four reconfigurations" 4
    report.Video.Checker.reconfigurations;
  (* 2 * 6 (to fB) + 2 * 4 (back to fA) *)
  Alcotest.(check int) "reconfiguration time" 20
    report.Video.Checker.reconfiguration_time

let test_without_valves_violation () =
  let _, report = run ~with_valves:false [ (52, "fB") ] in
  Alcotest.(check bool) "violation observed" false (Video.Checker.is_safe report);
  Alcotest.(check int) "nothing held without POut valve" 0
    report.Video.Checker.held;
  Alcotest.(check int) "nothing dropped without PIn valve" 0
    report.Video.Checker.dropped

let test_output_resumes_clean () =
  (* after the protocol completes, later frames flow clean again *)
  let result, report = run ~frames:40 [ (52, "fB") ] in
  Alcotest.(check bool) "safe" true (Video.Checker.is_safe report);
  let outputs =
    Sim.Trace.tokens_produced_on Video.System.c_vout result.Sim.Engine.trace
  in
  (* the last emitted frame is clean (not held) *)
  (match List.rev outputs with
  | (_, last) :: _ ->
    Alcotest.(check bool) "last clean" false
      (Spi.Token.has_tag Video.Frames.held_tag last)
  | [] -> Alcotest.fail "outputs expected");
  (* frames after the switch were processed by fB on both stages *)
  Alcotest.(check bool) "clean majority" true (report.Video.Checker.clean > 25)

let test_requests_while_busy_queue () =
  (* two requests in quick succession: the second waits for the first
     protocol round; the system stays safe and ends in fA *)
  let result, report = run [ (52, "fB"); (54, "fA") ] in
  Alcotest.(check bool) "safe" true (Video.Checker.is_safe report);
  Alcotest.(check int) "four reconfigurations" 4
    report.Video.Checker.reconfigurations;
  Alcotest.(check bool) "quiescent" true
    (result.Sim.Engine.outcome = Sim.Engine.Quiescent)

let prop_random_switches_safe =
  QCheck.Test.make ~name:"valves keep any switching schedule safe" ~count:40
    QCheck.(
      list_of_size (QCheck.Gen.int_range 0 4)
        (pair (int_range 10 180) (int_range 0 1)))
    (fun raw_switches ->
      let switches =
        List.sort compare
          (List.map (fun (t, v) -> (t, if v = 0 then "fA" else "fB")) raw_switches)
      in
      let _, report = run ~frames:40 switches in
      Video.Checker.is_safe report
      && report.Video.Checker.frames_in
         = report.Video.Checker.clean + report.Video.Checker.held
           + report.Video.Checker.dropped)

let test_variant_of_mode () =
  Alcotest.(check (option string))
    "proc mode" (Some "fB")
    (Video.System.variant_of_mode (Video.System.proc_mode ~stage:1 "fB"));
  Alcotest.(check (option string))
    "valve mode" None
    (Video.System.variant_of_mode (Spi.Ids.Mode_id.of_string "PIn.pass"))

let test_build_validation () =
  try
    ignore (Video.System.build { Video.System.default_params with variants = [] });
    Alcotest.fail "empty variants accepted"
  with Invalid_argument _ -> ()

let test_three_variants () =
  let params =
    {
      Video.System.variants = [ ("fA", 2, 4); ("fB", 3, 6); ("fC", 1, 2) ];
      with_valves = true;
      stages = 2;
    }
  in
  let built = Video.System.build params in
  let stimuli =
    Video.Scenario.switching_demo ~frames:30 ~period:5
      ~switches:[ (40, "fC"); (90, "fB") ]
      ()
  in
  let result =
    Sim.Engine.run ~configurations:built.Video.System.configurations ~stimuli
      built.Video.System.model
  in
  let report = Video.Checker.check result in
  Alcotest.(check bool) "safe with three variants" true
    (Video.Checker.is_safe report);
  Alcotest.(check int) "reconf time 2*2 + 2*6" 16
    report.Video.Checker.reconfiguration_time

let suite =
  ( "video",
    [
      Alcotest.test_case "no switch passthrough" `Quick test_no_switch_passthrough;
      Alcotest.test_case "single switch safe" `Quick test_single_switch_safe;
      Alcotest.test_case "double switch safe" `Quick test_double_switch_safe;
      Alcotest.test_case "without valves violation" `Quick
        test_without_valves_violation;
      Alcotest.test_case "output resumes clean" `Quick test_output_resumes_clean;
      Alcotest.test_case "requests while busy" `Quick
        test_requests_while_busy_queue;
      Alcotest.test_case "variant_of_mode" `Quick test_variant_of_mode;
      Alcotest.test_case "build validation" `Quick test_build_validation;
      Alcotest.test_case "three variants" `Quick test_three_variants;
      QCheck_alcotest.to_alcotest ~long:false prop_random_switches_safe;
    ] )
