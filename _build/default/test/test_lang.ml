(* Tests for the textual format: lexer, parser, printer, round-trips
   and error reporting. *)

module I = Spi.Ids
module V = Variants

(* ------------------------------- lexer ------------------------------ *)

let test_lexer_basics () =
  let toks = Lang.Lexer.tokenize "system s { channel c queue } # comment" in
  let kinds = List.map (fun t -> t.Lang.Lexer.token) toks in
  Alcotest.(check bool) "token sequence" true
    (kinds
    = [
        Lang.Lexer.IDENT "system"; IDENT "s"; LBRACE; IDENT "channel";
        IDENT "c"; IDENT "queue"; RBRACE; EOF;
      ])

let test_lexer_operators () =
  let toks = Lang.Lexer.tokenize "-> >= && || ! [1, 2] 'V1' -5" in
  let kinds = List.map (fun t -> t.Lang.Lexer.token) toks in
  Alcotest.(check bool) "sequence" true
    (kinds
    = [
        Lang.Lexer.ARROW; GE; AND; OR; NOT; LBRACKET; INT 1; COMMA; INT 2;
        RBRACKET; TAG "V1"; INT (-5); EOF;
      ])

let test_lexer_positions () =
  let toks = Lang.Lexer.tokenize "a\n  b" in
  match toks with
  | [ a; b; _eof ] ->
    Alcotest.(check (pair int int)) "a at 1,1" (1, 1) (a.Lang.Lexer.line, a.Lang.Lexer.col);
    Alcotest.(check (pair int int)) "b at 2,3" (2, 3) (b.Lang.Lexer.line, b.Lang.Lexer.col)
  | _ -> Alcotest.fail "three tokens expected"

let test_lexer_errors () =
  (try
     ignore (Lang.Lexer.tokenize "a $ b");
     Alcotest.fail "illegal char accepted"
   with Lang.Lexer.Lex_error { line = 1; col = 3; _ } -> ());
  try
    ignore (Lang.Lexer.tokenize "'unterminated");
    Alcotest.fail "unterminated tag accepted"
  with Lang.Lexer.Lex_error _ -> ()

(* ------------------------------- parser ----------------------------- *)

let small_system =
  {|
# a pipeline with one variant site
system demo {
  channel in queue
  channel a queue
  channel b queue
  channel out queue capacity 8
  channel state queue initial ['st:idle']

  process src {
    mode m { latency 1 consume in 1 produce a 1 }
  }
  process snk {
    mode m { latency [1, 3] consume b 2 }
  }

  interface f {
    port in i = a
    port out o = b
    cluster fast {
      process core { mode m { latency 2 consume i 1 produce o 2 ['x'] } }
    }
    cluster slow {
      channel k queue
      process front { mode m { latency 3 consume i 1 produce k 1 } }
      process back { mode m { latency 3 consume k 1 produce o 2 } }
    }
    selection {
      rule pick_fast when tag sel 'F' -> fast
      rule pick_slow when tag sel 'S' -> slow
      latency fast 4
      latency slow 9
      initial fast
    }
  }
  channel sel register
}
|}

let test_parse_structure () =
  let system = Lang.Parser.system_of_string small_system in
  Alcotest.(check string) "name" "demo" (V.System.name system);
  Alcotest.(check int) "processes" 2 (List.length (V.System.processes system));
  Alcotest.(check int) "channels" 6 (List.length (V.System.channels system));
  Alcotest.(check int) "sites" 1 (V.System.site_count system);
  Alcotest.(check int) "validates" 0 (List.length (V.System.validate system));
  let iface = List.hd (V.System.interfaces system) in
  Alcotest.(check int) "two variants" 2 (V.Interface.variant_count iface);
  match V.Interface.selection iface with
  | None -> Alcotest.fail "selection expected"
  | Some sel ->
    Alcotest.(check int) "t_conf slow" 9
      (V.Selection.config_latency sel (I.Cluster_id.of_string "slow"));
    Alcotest.(check (option string))
      "initial" (Some "fast")
      (Option.map I.Cluster_id.to_string (V.Selection.initial sel))

let test_parse_details () =
  let system = Lang.Parser.system_of_string small_system in
  (* capacity *)
  let out = List.find (fun c -> I.Channel_id.to_string (Spi.Chan.id c) = "out") (V.System.channels system) in
  Alcotest.(check (option int)) "capacity" (Some 8) (Spi.Chan.capacity out);
  (* tagged initial token *)
  let state = List.find (fun c -> I.Channel_id.to_string (Spi.Chan.id c) = "state") (V.System.channels system) in
  (match Spi.Chan.initial state with
  | [ tok ] ->
    Alcotest.(check bool) "tagged" true
      (Spi.Token.has_tag (Spi.Tag.make "st:idle") tok)
  | _ -> Alcotest.fail "one initial token expected");
  (* interval latency *)
  let snk = List.find (fun p -> I.Process_id.to_string (Spi.Process.id p) = "snk") (V.System.processes system) in
  Alcotest.(check bool) "interval latency" true
    (Interval.equal (Spi.Process.latency_hull snk) (Interval.make 1 3));
  (* production tags survive *)
  let iface = List.hd (V.System.interfaces system) in
  let fast = V.Interface.get_cluster (I.Cluster_id.of_string "fast") iface in
  Alcotest.(check bool) "production tag" true
    (Spi.Tag.Set.mem (Spi.Tag.make "x")
       (V.Cluster.port_production_tags fast (I.Port_id.of_string "o")))

let test_parse_flatten_and_run () =
  let system = Lang.Parser.system_of_string small_system in
  let model =
    V.Flatten.flatten system (V.Flatten.choice_of_list [ ("f", "slow") ])
  in
  let stimuli =
    List.init 4 (fun i ->
        {
          Sim.Engine.at = 1 + (2 * i);
          channel = I.Channel_id.of_string "in";
          token = Spi.Token.make ~payload:i ();
        })
  in
  let result = Sim.Engine.run ~stimuli model in
  Alcotest.(check bool) "parsed model runs" true (result.Sim.Engine.firings > 0)

let expect_parse_error input fragment =
  try
    ignore (Lang.Parser.system_of_string input);
    Alcotest.failf "accepted: %s" input
  with Lang.Parser.Parse_error { message; _ } ->
    let contains needle haystack =
      let n = String.length needle and h = String.length haystack in
      let rec go i = i + n <= h && (String.sub haystack i n = needle || go (i + 1)) in
      go 0
    in
    Alcotest.(check bool)
      (Format.sprintf "error mentions %s (got: %s)" fragment message)
      true (contains fragment message)

let test_parse_errors () =
  expect_parse_error "process p {}" "keyword system";
  expect_parse_error "system s" "'{'";
  expect_parse_error "system s { channel }" "channel name";
  (try
     ignore (Lang.Parser.system_of_string "system s { channel c pipe }");
     Alcotest.fail "unknown channel kind accepted"
   with Invalid_argument _ -> ());
  expect_parse_error "system s { process p { mode m { latency } } }" "interval";
  expect_parse_error "system s { process p { rule r when -> m } }" "predicate";
  expect_parse_error "system s { } trailing" "trailing"

let test_parse_predicates () =
  let system =
    Lang.Parser.system_of_string
      {|system s {
         channel a queue
         process p {
           mode m { latency 1 consume a 1 }
           rule r when (num a >= 2 && tag a 'x') || !(tag a 'y') -> m
         }
       }|}
  in
  let p = List.hd (V.System.processes system) in
  match Spi.Activation.rules (Spi.Process.activation p) with
  | [ rule ] ->
    let guard = Spi.Activation.guard rule in
    let view n tags =
      {
        Spi.Predicate.tokens_available = (fun _ -> n);
        first_tags = (fun _ -> if n > 0 then Some (Spi.Tag.set_of_list tags) else None);
      }
    in
    Alcotest.(check bool) "2 + x true" true (Spi.Predicate.eval (view 2 [ "x" ]) guard);
    Alcotest.(check bool) "1 + y false" false (Spi.Predicate.eval (view 1 [ "y" ]) guard);
    Alcotest.(check bool) "1 + z true (right disjunct)" true
      (Spi.Predicate.eval (view 1 [ "z" ]) guard)
  | _ -> Alcotest.fail "one rule expected"

(* ------------------------------ printer ----------------------------- *)

let same_applications a b =
  let sig_of system =
    List.map
      (fun (clusters, model) ->
        ( List.map I.Cluster_id.to_string clusters,
          List.sort compare
            (List.map
               (fun p -> I.Process_id.to_string (Spi.Process.id p))
               (Spi.Model.processes model)) ))
      (V.Flatten.applications system)
  in
  sig_of a = sig_of b

let test_roundtrip_small () =
  let system = Lang.Parser.system_of_string small_system in
  let printed = Lang.Printer.to_string system in
  let reparsed = Lang.Parser.system_of_string printed in
  Alcotest.(check string) "name" (V.System.name system) (V.System.name reparsed);
  Alcotest.(check int) "validates" 0 (List.length (V.System.validate reparsed));
  Alcotest.(check bool) "same applications" true (same_applications system reparsed)

let test_roundtrip_figure2 () =
  let system = Paper.Figure2.system_with_selection in
  let reparsed = Lang.Parser.system_of_string (Lang.Printer.to_string system) in
  Alcotest.(check bool) "same applications" true (same_applications system reparsed);
  (* selection survives: extraction still produces two configurations *)
  let _, confs = V.Flatten.abstract reparsed in
  match confs with
  | [ conf ] ->
    Alcotest.(check int) "two configurations" 2
      (List.length (V.Configuration.entries conf))
  | _ -> Alcotest.fail "one configuration set expected"

let test_roundtrip_generated () =
  let system =
    V.Generator.generate { V.Generator.default with sites = 2; variants_per_site = 3 }
  in
  let reparsed = Lang.Parser.system_of_string (Lang.Printer.to_string system) in
  Alcotest.(check bool) "same applications" true (same_applications system reparsed)

let prop_roundtrip_generator =
  QCheck.Test.make ~name:"print/parse round-trip on generated systems" ~count:30
    QCheck.(pair (int_range 1 3) (int_range 0 999))
    (fun (sites, seed) ->
      let system =
        V.Generator.generate
          {
            V.Generator.seed;
            shared_processes = 2;
            sites;
            variants_per_site = 2;
            cluster_processes = 2;
            latency_range = (1, 9);
          }
      in
      let reparsed = Lang.Parser.system_of_string (Lang.Printer.to_string system) in
      V.System.validate reparsed = [] && same_applications system reparsed)

let test_roundtrip_video_model_processes () =
  (* the video system is a plain model; wrap its processes/channels in a
     system to exercise printing of rich modes (tags, payload policies,
     registers) *)
  let built = Video.System.build Video.System.default_params in
  let system =
    V.System.make
      ~processes:(Spi.Model.processes built.Video.System.model)
      ~channels:(Spi.Model.channels built.Video.System.model)
      "video"
  in
  let reparsed = Lang.Parser.system_of_string (Lang.Printer.to_string system) in
  Alcotest.(check int) "same process count"
    (List.length (V.System.processes system))
    (List.length (V.System.processes reparsed));
  (* behaviour preserved: run the same scenario on the reparsed model *)
  let model =
    Spi.Model.build_exn
      ~processes:(V.System.processes reparsed)
      ~channels:(V.System.channels reparsed)
  in
  let stimuli =
    Video.Scenario.switching_demo ~frames:20 ~period:5 ~switches:[ (30, "fB") ] ()
  in
  let result =
    Sim.Engine.run ~configurations:built.Video.System.configurations ~stimuli model
  in
  let report = Video.Checker.check result in
  Alcotest.(check bool) "reparsed video still safe" true
    (Video.Checker.is_safe report);
  Alcotest.(check int) "frames in" 20 report.Video.Checker.frames_in

let suite =
  ( "lang",
    [
      Alcotest.test_case "lexer basics" `Quick test_lexer_basics;
      Alcotest.test_case "lexer operators" `Quick test_lexer_operators;
      Alcotest.test_case "lexer positions" `Quick test_lexer_positions;
      Alcotest.test_case "lexer errors" `Quick test_lexer_errors;
      Alcotest.test_case "parse structure" `Quick test_parse_structure;
      Alcotest.test_case "parse details" `Quick test_parse_details;
      Alcotest.test_case "parse, flatten, run" `Quick test_parse_flatten_and_run;
      Alcotest.test_case "parse errors" `Quick test_parse_errors;
      Alcotest.test_case "parse predicates" `Quick test_parse_predicates;
      Alcotest.test_case "round-trip small" `Quick test_roundtrip_small;
      Alcotest.test_case "round-trip figure2" `Quick test_roundtrip_figure2;
      Alcotest.test_case "round-trip generated" `Quick test_roundtrip_generated;
      Alcotest.test_case "round-trip video processes" `Quick
        test_roundtrip_video_model_processes;
      QCheck_alcotest.to_alcotest ~long:false prop_roundtrip_generator;
    ] )

(* appended: deadline constraints in the textual format *)
let test_deadlines () =
  let system =
    Lang.Parser.system_of_string
      {|system s {
         channel a queue
         channel b queue
         process p { mode m { latency 3 consume a 1 produce b 1 } }
         process q { mode m { latency 4 consume b 1 } }
         deadline pq from p to q within 10
       }|}
  in
  (match V.System.constraints system with
  | [ c ] ->
    Alcotest.(check string) "name" "pq" c.Spi.Constraint_.name;
    Alcotest.(check int) "bound" 10 c.Spi.Constraint_.bound
  | l -> Alcotest.failf "expected one constraint, got %d" (List.length l));
  (* the deadline survives the round-trip *)
  let reparsed = Lang.Parser.system_of_string (Lang.Printer.to_string system) in
  Alcotest.(check int) "round-trip" 1 (List.length (V.System.constraints reparsed));
  (* and it is actually checkable on the (trivially flattened) model *)
  let model =
    Spi.Model.build_exn
      ~processes:(V.System.processes reparsed)
      ~channels:(V.System.channels reparsed)
  in
  let latency_of pid =
    Interval.hi (Spi.Process.latency_hull (Spi.Model.get_process pid model))
  in
  match V.System.constraints reparsed with
  | [ c ] -> (
    match Spi.Constraint_.check ~latency_of model c with
    | Spi.Constraint_.Satisfied { worst; _ } -> Alcotest.(check int) "worst" 7 worst
    | o -> Alcotest.failf "unexpected %a" Spi.Constraint_.pp_outcome o)
  | _ -> Alcotest.fail "constraint lost"

let test_deadline_in_cluster_rejected () =
  try
    ignore
      (Lang.Parser.system_of_string
         {|system s {
            channel a queue
            interface i {
              port in x = a
              cluster c { deadline d from p to q within 3 }
            }
          }|});
    Alcotest.fail "cluster deadline accepted"
  with Invalid_argument _ -> ()

let suite =
  let name, tests = suite in
  ( name,
    tests
    @ [
        Alcotest.test_case "deadlines" `Quick test_deadlines;
        Alcotest.test_case "deadline in cluster rejected" `Quick
          test_deadline_in_cluster_rejected;
      ] )

(* appended: error-report rendering *)
let test_error_report () =
  let source = "system s {\n  channel }\n}" in
  let rendered =
    Lang.Error_report.render ~source ~path:"x.spi" ~line:2 ~col:11
      ~message:"expected a channel name"
  in
  let contains needle haystack =
    let n = String.length needle and h = String.length haystack in
    let rec go i = i + n <= h && (String.sub haystack i n = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "location line" true
    (contains "x.spi:2:11: expected a channel name" rendered);
  Alcotest.(check bool) "excerpt" true (contains "channel }" rendered);
  Alcotest.(check bool) "caret" true (contains "          ^" rendered);
  (* out-of-range lines do not crash *)
  let short =
    Lang.Error_report.render ~source:"x" ~path:"y" ~line:99 ~col:1 ~message:"m"
  in
  Alcotest.(check bool) "graceful" true (contains "y:99:1: m" short)

let suite =
  let name, tests = suite in
  (name, tests @ [ Alcotest.test_case "error report" `Quick test_error_report ])

(* appended: tech libraries in textual form *)
let test_tech_file () =
  let tech =
    Lang.Tech_file.of_string
      {|tech t { processor 20 impl a sw 10 hw 30 impl b hw 5 impl c sw 7 }|}
  in
  Alcotest.(check int) "processor" 20 (Synth.Tech.processor_cost tech);
  Alcotest.(check int) "entries" 3 (List.length (Synth.Tech.process_ids tech));
  let a = Synth.Tech.options_of tech (Spi.Ids.Process_id.of_string "a") in
  Alcotest.(check (option int)) "a load" (Some 10)
    (Option.map (fun s -> s.Synth.Tech.load) a.Synth.Tech.sw);
  let b = Synth.Tech.options_of tech (Spi.Ids.Process_id.of_string "b") in
  Alcotest.(check bool) "b hw only" true (Option.is_none b.Synth.Tech.sw);
  (* round trip *)
  let again = Lang.Tech_file.of_string (Lang.Tech_file.to_string ~name:"t" tech) in
  Alcotest.(check int) "round-trip processor" 20 (Synth.Tech.processor_cost again);
  Alcotest.(check int) "round-trip entries" 3
    (List.length (Synth.Tech.process_ids again))

let test_tech_file_errors () =
  (try
     ignore (Lang.Tech_file.of_string "tech t { impl x }");
     Alcotest.fail "optionless impl accepted"
   with Invalid_argument _ -> ());
  try
    ignore (Lang.Tech_file.of_string "tech t { bogus }");
    Alcotest.fail "bogus item accepted"
  with Lang.Parser.Parse_error _ -> ()

let test_tech_file_table1 () =
  (* the Table 1 library expressed textually reproduces the optimum *)
  let tech =
    Lang.Tech_file.of_string
      {|tech table1 {
          processor 15
          impl PA sw 40 hw 26
          impl PB sw 30 hw 30
          impl cluster:g1 sw 60 hw 19
          impl cluster:g2 sw 55 hw 23
        }|}
  in
  let s =
    Synth.Explore.optimal_exn tech [ Paper.Figure2.app1; Paper.Figure2.app2 ]
  in
  Alcotest.(check int) "41" 41 s.Synth.Explore.cost.Synth.Cost.total

let suite =
  let name, tests = suite in
  ( name,
    tests
    @ [
        Alcotest.test_case "tech file" `Quick test_tech_file;
        Alcotest.test_case "tech file errors" `Quick test_tech_file_errors;
        Alcotest.test_case "tech file table1" `Quick test_tech_file_table1;
      ] )
