(* Tests for process declarations and the SPI model graph. *)

module I = Spi.Ids

let cid = I.Channel_id.of_string
let pid = I.Process_id.of_string
let one = Interval.point 1

let simple name ~consumes ~produces =
  Spi.Process.simple ~latency:one
    ~consumes:(List.map (fun c -> (cid c, one)) consumes)
    ~produces:(List.map (fun c -> (cid c, Spi.Mode.produce one)) produces)
    (pid name)

(* ----------------------------- process ----------------------------- *)

let test_simple_process () =
  let p = simple "p" ~consumes:[ "a" ] ~produces:[ "b" ] in
  Alcotest.(check int) "one mode" 1 (List.length (Spi.Process.modes p));
  Alcotest.(check int) "inputs" 1
    (I.Channel_id.Set.cardinal (Spi.Process.inputs p));
  Alcotest.(check int) "outputs" 1
    (I.Channel_id.Set.cardinal (Spi.Process.outputs p));
  Alcotest.(check bool) "auto-activation nonempty" false
    (Spi.Activation.is_empty (Spi.Process.activation p))

let test_default_activation_thresholds () =
  (* default activation requires the upper bound of each consumption *)
  let mode =
    Spi.Mode.make ~latency:one
      ~consumes:[ (cid "a", Interval.make 1 3) ]
      ~produces:[]
      (I.Mode_id.of_string "m")
  in
  let p = Spi.Process.make ~modes:[ mode ] (pid "p") in
  let view n =
    {
      Spi.Predicate.tokens_available = (fun _ -> n);
      first_tags = (fun _ -> None);
    }
  in
  Alcotest.(check bool) "not enabled at lower bound" true
    (Option.is_none (Spi.Activation.select (view 1) (Spi.Process.activation p)));
  Alcotest.(check bool) "enabled at upper bound" true
    (Option.is_some (Spi.Activation.select (view 3) (Spi.Process.activation p)))

let test_process_validation () =
  (try
     ignore (Spi.Process.make ~modes:[] (pid "p"));
     Alcotest.fail "empty modes accepted"
   with Invalid_argument _ -> ());
  let m = Spi.Mode.make ~latency:one ~consumes:[] ~produces:[] (I.Mode_id.of_string "m") in
  (try
     ignore (Spi.Process.make ~modes:[ m; m ] (pid "p"));
     Alcotest.fail "duplicate modes accepted"
   with Invalid_argument _ -> ());
  let bad_rule =
    Spi.Activation.make
      [
        Spi.Activation.rule (I.Rule_id.of_string "r") ~guard:Spi.Predicate.True
          ~mode:(I.Mode_id.of_string "ghost");
      ]
  in
  try
    ignore (Spi.Process.make ~activation:bad_rule ~modes:[ m ] (pid "p"));
    Alcotest.fail "rule to unknown mode accepted"
  with Invalid_argument _ -> ()

let test_process_hulls () =
  let m1 =
    Spi.Mode.make ~latency:(Interval.point 3)
      ~consumes:[ (cid "a", Interval.point 1) ]
      ~produces:[ (cid "b", Spi.Mode.produce (Interval.point 2)) ]
      (I.Mode_id.of_string "m1")
  and m2 =
    Spi.Mode.make ~latency:(Interval.point 5)
      ~consumes:[ (cid "a", Interval.point 3) ]
      ~produces:[ (cid "b", Spi.Mode.produce (Interval.point 5)) ]
      (I.Mode_id.of_string "m2")
  in
  let p = Spi.Process.make ~modes:[ m1; m2 ] (pid "p2") in
  Alcotest.(check bool) "latency hull" true
    (Interval.equal (Spi.Process.latency_hull p) (Interval.make 3 5));
  Alcotest.(check bool) "consumption hull" true
    (Interval.equal (Spi.Process.consumption_hull p (cid "a")) (Interval.make 1 3));
  Alcotest.(check bool) "production hull" true
    (Interval.equal (Spi.Process.production_hull p (cid "b")) (Interval.make 2 5))

let test_process_map_channels () =
  let p = simple "p" ~consumes:[ "a" ] ~produces:[ "b" ] in
  let q =
    Spi.Process.map_channels
      (fun c -> cid (I.Channel_id.to_string c ^ "2"))
      p
  in
  Alcotest.(check bool) "inputs renamed" true
    (I.Channel_id.Set.mem (cid "a2") (Spi.Process.inputs q));
  Alcotest.(check bool) "outputs renamed" true
    (I.Channel_id.Set.mem (cid "b2") (Spi.Process.outputs q))

(* ------------------------------ model ------------------------------ *)

let build_result ~processes ~channels =
  Spi.Model.build ~processes
    ~channels:(List.map (fun c -> Spi.Chan.queue (cid c)) channels)

let test_model_ok () =
  match
    build_result
      ~processes:
        [
          simple "p" ~consumes:[ "a" ] ~produces:[ "b" ];
          simple "q" ~consumes:[ "b" ] ~produces:[];
        ]
      ~channels:[ "a"; "b" ]
  with
  | Error _ -> Alcotest.fail "expected valid model"
  | Ok m ->
    Alcotest.(check int) "processes" 2 (List.length (Spi.Model.processes m));
    Alcotest.(check (option string))
      "writer of b" (Some "p")
      (Option.map I.Process_id.to_string (Spi.Model.writer_of (cid "b") m));
    Alcotest.(check (option string))
      "reader of b" (Some "q")
      (Option.map I.Process_id.to_string (Spi.Model.reader_of (cid "b") m));
    Alcotest.(check int) "unwritten = a" 1
      (I.Channel_id.Set.cardinal (Spi.Model.unwritten_channels m));
    Alcotest.(check int) "unread = none" 0
      (I.Channel_id.Set.cardinal (Spi.Model.unread_channels m))

let expect_error ~processes ~channels pred name =
  match build_result ~processes ~channels with
  | Ok _ -> Alcotest.fail (name ^ ": expected failure")
  | Error errors ->
    Alcotest.(check bool) name true (List.exists pred errors)

let test_model_errors () =
  expect_error
    ~processes:
      [ simple "p" ~consumes:[] ~produces:[ "a" ]; simple "p" ~consumes:[ "a" ] ~produces:[] ]
    ~channels:[ "a" ]
    (function Spi.Model.Duplicate_process _ -> true | _ -> false)
    "duplicate process";
  expect_error
    ~processes:[ simple "p" ~consumes:[ "ghost" ] ~produces:[] ]
    ~channels:[]
    (function Spi.Model.Unknown_channel _ -> true | _ -> false)
    "unknown channel";
  expect_error
    ~processes:
      [
        simple "p" ~consumes:[] ~produces:[ "a" ];
        simple "q" ~consumes:[] ~produces:[ "a" ];
      ]
    ~channels:[ "a" ]
    (function Spi.Model.Multiple_writers _ -> true | _ -> false)
    "multiple writers";
  expect_error
    ~processes:
      [
        simple "p" ~consumes:[ "a" ] ~produces:[];
        simple "q" ~consumes:[ "a" ] ~produces:[];
      ]
    ~channels:[ "a" ]
    (function Spi.Model.Multiple_readers _ -> true | _ -> false)
    "multiple readers";
  match
    Spi.Model.build ~processes:[]
      ~channels:[ Spi.Chan.queue (cid "a"); Spi.Chan.queue (cid "a") ]
  with
  | Ok _ -> Alcotest.fail "duplicate channel accepted"
  | Error errors ->
    Alcotest.(check bool) "duplicate channel" true
      (List.exists
         (function Spi.Model.Duplicate_channel _ -> true | _ -> false)
         errors)

let test_model_graph () =
  let m =
    Spi.Model.build_exn
      ~processes:
        [
          simple "p" ~consumes:[ "a" ] ~produces:[ "b" ];
          simple "q" ~consumes:[ "b" ] ~produces:[];
        ]
      ~channels:[ Spi.Chan.queue (cid "a"); Spi.Chan.queue (cid "b") ]
  in
  let g = Spi.Model.to_graph m in
  Alcotest.(check int) "nodes = procs + chans" 4 (Spi.Model.Graph.node_count g);
  Alcotest.(check bool) "p -> b" true
    (Spi.Model.Graph.mem_edge (Spi.Model.P (pid "p")) (Spi.Model.C (cid "b")) g);
  Alcotest.(check bool) "b -> q" true
    (Spi.Model.Graph.mem_edge (Spi.Model.C (cid "b")) (Spi.Model.P (pid "q")) g);
  (* bipartite: no P->P or C->C edge *)
  Spi.Model.Graph.fold_edges
    (fun u v () ->
      match u, v with
      | Spi.Model.P _, Spi.Model.P _ | Spi.Model.C _, Spi.Model.C _ ->
        Alcotest.fail "non-bipartite edge"
      | Spi.Model.P _, Spi.Model.C _ | Spi.Model.C _, Spi.Model.P _ -> ())
    g ()

let test_model_replace_process () =
  let m =
    Spi.Model.build_exn
      ~processes:[ simple "p" ~consumes:[ "a" ] ~produces:[] ]
      ~channels:[ Spi.Chan.queue (cid "a") ]
  in
  let p' =
    Spi.Process.simple ~latency:(Interval.point 9)
      ~consumes:[ (cid "a", one) ]
      ~produces:[] (pid "p")
  in
  let m' = Spi.Model.replace_process p' m in
  Alcotest.(check bool) "replaced" true
    (Interval.equal
       (Spi.Process.latency_hull (Spi.Model.get_process (pid "p") m'))
       (Interval.point 9));
  try
    ignore (Spi.Model.replace_process (simple "ghost" ~consumes:[] ~produces:[]) m);
    Alcotest.fail "replacing unknown process accepted"
  with Invalid_argument _ -> ()

let test_model_union () =
  let m1 =
    Spi.Model.build_exn
      ~processes:[ simple "p" ~consumes:[ "a" ] ~produces:[] ]
      ~channels:[ Spi.Chan.queue (cid "a") ]
  and m2 =
    Spi.Model.build_exn
      ~processes:[ simple "q" ~consumes:[ "b" ] ~produces:[] ]
      ~channels:[ Spi.Chan.queue (cid "b") ]
  in
  match Spi.Model.union m1 m2 with
  | Error _ -> Alcotest.fail "disjoint union must succeed"
  | Ok m -> Alcotest.(check int) "four elements" 2 (List.length (Spi.Model.processes m))

let test_source_processes () =
  let m =
    Spi.Model.build_exn
      ~processes:
        [
          simple "src" ~consumes:[] ~produces:[ "a" ];
          simple "sink" ~consumes:[ "a" ] ~produces:[];
        ]
      ~channels:[ Spi.Chan.queue (cid "a") ]
  in
  Alcotest.(check int) "one source" 1
    (I.Process_id.Set.cardinal (Spi.Model.source_processes m));
  Alcotest.(check bool) "src is source" true
    (I.Process_id.Set.mem (pid "src") (Spi.Model.source_processes m))

let suite =
  ( "process-model",
    [
      Alcotest.test_case "simple process" `Quick test_simple_process;
      Alcotest.test_case "default activation thresholds" `Quick
        test_default_activation_thresholds;
      Alcotest.test_case "process validation" `Quick test_process_validation;
      Alcotest.test_case "process hulls" `Quick test_process_hulls;
      Alcotest.test_case "process map_channels" `Quick test_process_map_channels;
      Alcotest.test_case "model ok" `Quick test_model_ok;
      Alcotest.test_case "model errors" `Quick test_model_errors;
      Alcotest.test_case "model graph" `Quick test_model_graph;
      Alcotest.test_case "replace process" `Quick test_model_replace_process;
      Alcotest.test_case "model union" `Quick test_model_union;
      Alcotest.test_case "source processes" `Quick test_source_processes;
    ] )
