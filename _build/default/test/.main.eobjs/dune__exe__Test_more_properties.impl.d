test/test_more_properties.ml: Format Interval Lang List Option QCheck QCheck_alcotest Random Sim Spi String Synth Variants
