test/test_sizing_scenario.ml: Alcotest List Sim Spi Video
