test/test_configuration.ml: Alcotest Interval List Option Spi Variants
