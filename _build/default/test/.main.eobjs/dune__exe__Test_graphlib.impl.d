test/test_graphlib.ml: Alcotest Format Graphlib Int List QCheck QCheck_alcotest String
