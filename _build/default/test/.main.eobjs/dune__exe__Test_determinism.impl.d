test/test_determinism.ml: Format List QCheck QCheck_alcotest Sim Spi Variants
