test/test_constraint.ml: Alcotest Interval List Spi
