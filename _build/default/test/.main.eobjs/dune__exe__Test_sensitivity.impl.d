test/test_sensitivity.ml: Alcotest Option Paper Spi Synth
