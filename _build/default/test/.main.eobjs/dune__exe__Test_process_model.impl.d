test/test_process_model.ml: Alcotest Interval List Option Spi
