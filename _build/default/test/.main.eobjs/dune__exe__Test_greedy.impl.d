test/test_greedy.ml: Alcotest Format List Option Paper QCheck QCheck_alcotest Random Spi Synth Variants
