test/test_synth.ml: Alcotest Format List Option Paper QCheck QCheck_alcotest Random Spi Synth
