test/main.mli:
