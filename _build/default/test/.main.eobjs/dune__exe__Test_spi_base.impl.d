test/test_spi_base.ml: Alcotest List Spi
