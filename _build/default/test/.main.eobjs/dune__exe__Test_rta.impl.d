test/test_rta.ml: Alcotest Format List QCheck QCheck_alcotest Spi Synth
