test/test_analysis.ml: Alcotest Format Interval List Sim Spi
