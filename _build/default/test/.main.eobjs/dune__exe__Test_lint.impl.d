test/test_lint.ml: Alcotest Format Interval List Paper Spi String Variants
