test/test_interval.ml: Alcotest Interval List QCheck QCheck_alcotest
