test/test_cluster_interface.ml: Alcotest Format Interval List Option Spi Variants
