test/test_lang.ml: Alcotest Format Interval Lang List Option Paper QCheck QCheck_alcotest Sim Spi String Synth Variants Video
