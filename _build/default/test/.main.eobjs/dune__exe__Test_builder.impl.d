test/test_builder.ml: Alcotest Interval List Sim Spi
