test/test_commonality_hierarchy.ml: Alcotest Interval List Paper Sim Spi String Variants
