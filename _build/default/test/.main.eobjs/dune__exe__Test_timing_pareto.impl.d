test/test_timing_pareto.ml: Alcotest Interval List Paper Spi Synth
