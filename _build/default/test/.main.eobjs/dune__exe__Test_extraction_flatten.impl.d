test/test_extraction_flatten.ml: Alcotest Format Interval List Option Paper QCheck QCheck_alcotest Spi String Variants
