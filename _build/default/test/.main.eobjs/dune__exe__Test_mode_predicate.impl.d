test/test_mode_predicate.ml: Alcotest Format Interval List QCheck QCheck_alcotest Spi
