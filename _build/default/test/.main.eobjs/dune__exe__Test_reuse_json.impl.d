test/test_reuse_json.ml: Alcotest Format Interval List Paper Sim Spi String Variants Video
