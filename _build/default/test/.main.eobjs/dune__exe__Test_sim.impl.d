test/test_sim.ml: Alcotest Interval List QCheck QCheck_alcotest Sim Spi Variants
