test/test_multi.ml: Alcotest List Option Paper Sim Spi String Synth Video
