test/test_stats.ml: Alcotest Interval List Sim Spi Video
