test/test_video.ml: Alcotest List QCheck QCheck_alcotest Sim Spi Video
