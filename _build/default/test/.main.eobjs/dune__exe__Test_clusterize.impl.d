test/test_clusterize.ml: Alcotest Interval List Sim Spi Variants
