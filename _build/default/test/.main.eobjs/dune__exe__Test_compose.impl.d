test/test_compose.ml: Alcotest List Option Sim Spi
