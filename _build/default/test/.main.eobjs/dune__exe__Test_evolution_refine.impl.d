test/test_evolution_refine.ml: Alcotest Interval List Option Paper Sim Spi Variants Video
