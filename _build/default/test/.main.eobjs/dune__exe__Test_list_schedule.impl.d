test/test_list_schedule.ml: Alcotest Format Interval List Option Paper Spi String Synth Variants
