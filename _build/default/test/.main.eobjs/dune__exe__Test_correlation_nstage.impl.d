test/test_correlation_nstage.ml: Alcotest Format Interval List Option Paper Sim Spi Video
