test/test_report.ml: Alcotest Format List Option Paper Spi String Synth Variants
