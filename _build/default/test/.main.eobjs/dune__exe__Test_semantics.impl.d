test/test_semantics.ml: Alcotest Interval List Option QCheck QCheck_alcotest Spi
