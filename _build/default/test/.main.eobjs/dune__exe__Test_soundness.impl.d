test/test_soundness.ml: Alcotest Interval List Option Paper QCheck QCheck_alcotest Sim Spi Synth Variants
