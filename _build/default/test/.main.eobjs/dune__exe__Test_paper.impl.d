test/test_paper.ml: Alcotest Interval List Paper Sim Spi Variants
