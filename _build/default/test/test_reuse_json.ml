(* Tests for the reuse analysis and JSON export. *)

module I = Spi.Ids
module V = Variants
module F2 = Paper.Figure2

let one = Interval.point 1

let chain_proc ~from_ ~to_ name =
  Spi.Process.simple ~latency:one
    ~consumes:[ (from_, one) ]
    ~produces:[ (to_, Spi.Mode.produce one) ]
    (I.Process_id.of_string name)

(* a cluster with figure2's i/o signature *)
let compatible_cluster =
  let pi = V.Port.input "i" and po = V.Port.output "o" in
  V.Cluster.make ~ports:[ pi; po ]
    ~processes:
      [
        chain_proc
          ~from_:(V.Port.channel_of (V.Port.id pi))
          ~to_:(V.Port.channel_of (V.Port.id po))
          "g3core";
      ]
    "g3"

let incompatible_cluster =
  let pi = V.Port.input "other_in" and po = V.Port.output "o" in
  V.Cluster.make ~ports:[ pi; po ]
    ~processes:
      [
        chain_proc
          ~from_:(V.Port.channel_of (V.Port.id pi))
          ~to_:(V.Port.channel_of (V.Port.id po))
          "weird";
      ]
    "weird"

let iface1 () = List.hd (V.System.interfaces F2.system)

let test_compatible () =
  Alcotest.(check bool) "signature matches" true
    (V.Reuse.is_compatible (iface1 ()) compatible_cluster)

let test_incompatible () =
  match V.Reuse.check (iface1 ()) incompatible_cluster with
  | V.Reuse.Compatible -> Alcotest.fail "mismatch expected"
  | V.Reuse.Port_mismatch m ->
    Alcotest.(check int) "missing input i" 1
      (I.Port_id.Set.cardinal m.V.Reuse.missing_inputs);
    Alcotest.(check int) "extra input other_in" 1
      (I.Port_id.Set.cardinal m.V.Reuse.extra_inputs);
    Alcotest.(check int) "outputs fine" 0
      (I.Port_id.Set.cardinal m.V.Reuse.missing_outputs)

let test_host_interfaces () =
  let hosts = V.Reuse.host_interfaces F2.system compatible_cluster in
  Alcotest.(check (list string)) "iface1 hosts it" [ "iface1" ]
    (List.map I.Interface_id.to_string hosts);
  Alcotest.(check int) "nothing hosts the weird one" 0
    (List.length (V.Reuse.host_interfaces F2.system incompatible_cluster))

let test_extend_interface () =
  match V.Reuse.extend_interface (iface1 ()) compatible_cluster with
  | Error e -> Alcotest.failf "extension failed: %s" e
  | Ok extended ->
    Alcotest.(check int) "three variants now" 3 (V.Interface.variant_count extended);
    Alcotest.(check int) "still validates" 0
      (List.length (V.Interface.validate extended));
    (* adding it again collides *)
    (match V.Reuse.extend_interface extended compatible_cluster with
    | Error _ -> ()
    | Ok _ -> Alcotest.fail "duplicate accepted");
    (* incompatible clusters are rejected *)
    match V.Reuse.extend_interface (iface1 ()) incompatible_cluster with
    | Error _ -> ()
    | Ok _ -> Alcotest.fail "mismatch accepted"

let test_extended_interface_synthesizes () =
  (* the reused part becomes a third derivable application *)
  match V.Reuse.extend_interface (iface1 ()) compatible_cluster with
  | Error e -> Alcotest.failf "extension failed: %s" e
  | Ok extended ->
    let site =
      match V.System.find_site F2.iface1 F2.system with
      | Some s -> { s with V.Structure.iface = extended }
      | None -> Alcotest.fail "site missing"
    in
    let system =
      V.System.make
        ~processes:(V.System.processes F2.system)
        ~channels:(V.System.channels F2.system)
        ~sites:[ site ] "figure2-extended"
    in
    Alcotest.(check int) "three applications" 3
      (List.length (V.Flatten.applications system))

(* ------------------------------- JSON ------------------------------- *)

let contains ~needle haystack =
  let n = String.length needle and h = String.length haystack in
  let rec go i = i + n <= h && (String.sub haystack i n = needle || go (i + 1)) in
  go 0

let test_json_export () =
  let model = Paper.Figure1.model in
  let result = Sim.Engine.run ~stimuli:(Paper.Figure1.stimuli_mixed ~n:4) model in
  let json = Sim.Json.result_to_string model result in
  List.iter
    (fun needle ->
      Alcotest.(check bool) (Format.sprintf "contains %s" needle) true
        (contains ~needle json))
    [
      "\"summary\"";
      "\"outcome\":\"quiescent\"";
      "\"trace\"";
      "\"kind\":\"inject\"";
      "\"kind\":\"complete\"";
      "\"process\":\"p2\"";
      "\"high_water\"";
      "\"utilization\"";
    ];
  (* crude balance check on the emitted document *)
  let count c = String.fold_left (fun acc ch -> if ch = c then acc + 1 else acc) 0 json in
  Alcotest.(check int) "balanced braces" (count '{') (count '}');
  Alcotest.(check int) "balanced brackets" (count '[') (count ']')

let test_json_escaping () =
  (* ids with quotes are not constructible (our ids are plain), but tag
     names with backslashes are *)
  let cid = I.Channel_id.of_string "c" in
  let p =
    Spi.Process.simple ~latency:one
      ~consumes:[ (cid, one) ]
      ~produces:[] (I.Process_id.of_string "p")
  in
  let model = Spi.Model.build_exn ~processes:[ p ] ~channels:[ Spi.Chan.queue cid ] in
  let tok = Spi.Token.make ~tags:(Spi.Tag.Set.singleton (Spi.Tag.make {|a\b|})) () in
  let result =
    Sim.Engine.run ~stimuli:[ { Sim.Engine.at = 1; channel = cid; token = tok } ] model
  in
  let json = Sim.Json.result_to_string model result in
  Alcotest.(check bool) "backslash escaped" true
    (contains ~needle:{|a\\b|} json)

let test_json_reconfiguration_fields () =
  let built = Video.System.build Video.System.default_params in
  let stimuli =
    Video.Scenario.switching_demo ~frames:10 ~period:5 ~switches:[ (22, "fB") ] ()
  in
  let result =
    Sim.Engine.run ~configurations:built.Video.System.configurations ~stimuli
      built.Video.System.model
  in
  let json = Sim.Json.result_to_string built.Video.System.model result in
  Alcotest.(check bool) "reconfigure_to present" true
    (contains ~needle:"\"reconfigure_to\"" json)

let suite =
  ( "reuse-json",
    [
      Alcotest.test_case "compatible" `Quick test_compatible;
      Alcotest.test_case "incompatible" `Quick test_incompatible;
      Alcotest.test_case "host interfaces" `Quick test_host_interfaces;
      Alcotest.test_case "extend interface" `Quick test_extend_interface;
      Alcotest.test_case "extended interface synthesizes" `Quick
        test_extended_interface_synthesizes;
      Alcotest.test_case "json export" `Quick test_json_export;
      Alcotest.test_case "json escaping" `Quick test_json_escaping;
      Alcotest.test_case "json reconfiguration fields" `Quick
        test_json_reconfiguration_fields;
    ] )

(* appended: variant-structure dot export *)
let test_dot_system () =
  let dot = V.Dot_system.to_string F2.system_with_selection in
  List.iter
    (fun needle ->
      Alcotest.(check bool) (Format.sprintf "contains %s" needle) true
        (contains ~needle dot))
    [
      "digraph variants";
      "interface iface1";
      "cluster g1";
      "cluster g2";
      "shape=diamond";
      "style=\"dashed\"";
      "CV (reg)";
    ];
  (* nested systems render too *)
  let nested =
    V.Generator.generate { V.Generator.default with sites = 2 }
  in
  Alcotest.(check bool) "generated renders" true
    (String.length (V.Dot_system.to_string nested) > 100)

let suite =
  let name, tests = suite in
  (name, tests @ [ Alcotest.test_case "dot system" `Quick test_dot_system ])

(* appended: CSV export *)
let test_csv_export () =
  let model = Paper.Figure1.model in
  let result = Sim.Engine.run ~stimuli:(Paper.Figure1.stimuli_mixed ~n:3) model in
  let trace_csv = Sim.Csv.trace_to_string result in
  let lines = String.split_on_char '\n' trace_csv in
  (match lines with
  | header :: _ ->
    Alcotest.(check string) "header" "time,kind,subject,mode,detail" header
  | [] -> Alcotest.fail "empty csv");
  (* one row per trace entry plus header and trailing newline *)
  Alcotest.(check int) "row count"
    (List.length result.Sim.Engine.trace)
    (List.length (List.filter (fun l -> l <> "") lines) - 1);
  let pstats = Sim.Csv.process_stats_to_string model result in
  Alcotest.(check bool) "process stats rows" true
    (List.length (String.split_on_char '\n' pstats) >= 4);
  let cstats = Sim.Csv.channel_stats_to_string model result in
  Alcotest.(check bool) "channel stats rows" true
    (List.length (String.split_on_char '\n' cstats) >= 4);
  (* quoting: a field with a comma round-trips quoted *)
  Alcotest.(check bool) "quoting" true
    (let q =
       Sim.Csv.trace_to_string
         {
           result with
           Sim.Engine.trace =
             [
               Sim.Trace.Injected
                 {
                   time = 1;
                   channel = Spi.Ids.Channel_id.of_string "c";
                   token =
                     Spi.Token.make
                       ~tags:(Spi.Tag.Set.singleton (Spi.Tag.make "a,b"))
                       ();
                 };
             ];
         }
     in
     contains ~needle:"\"" q)

let suite =
  let name, tests = suite in
  (name, tests @ [ Alcotest.test_case "csv export" `Quick test_csv_export ])
