(* Unit and property tests for the interval domain. *)

let iv lo hi = Interval.make lo hi

let check_iv = Alcotest.testable Interval.pp Interval.equal

let test_make_valid () =
  Alcotest.(check int) "lo" 2 (Interval.lo (iv 2 5));
  Alcotest.(check int) "hi" 5 (Interval.hi (iv 2 5));
  Alcotest.(check int) "width" 3 (Interval.width (iv 2 5));
  Alcotest.(check bool) "point" true (Interval.is_point (Interval.point 7))

let test_make_invalid () =
  Alcotest.check_raises "reversed bounds"
    (Interval.Empty_interval (5, 2))
    (fun () -> ignore (iv 5 2))

let test_mem () =
  Alcotest.(check bool) "inside" true (Interval.mem 3 (iv 2 5));
  Alcotest.(check bool) "lower edge" true (Interval.mem 2 (iv 2 5));
  Alcotest.(check bool) "upper edge" true (Interval.mem 5 (iv 2 5));
  Alcotest.(check bool) "below" false (Interval.mem 1 (iv 2 5));
  Alcotest.(check bool) "above" false (Interval.mem 6 (iv 2 5))

let test_arithmetic () =
  Alcotest.check check_iv "add" (iv 5 9) (Interval.add (iv 2 4) (iv 3 5));
  Alcotest.check check_iv "sub" (iv (-3) 1) (Interval.sub (iv 2 4) (iv 3 5));
  Alcotest.check check_iv "mul mixed" (iv (-8) 12)
    (Interval.mul (iv (-2) 3) (iv 1 4));
  Alcotest.check check_iv "neg" (iv (-4) (-2)) (Interval.neg (iv 2 4));
  Alcotest.check check_iv "scale" (iv 4 8) (Interval.scale 2 (iv 2 4));
  Alcotest.check check_iv "scale negative" (iv (-8) (-4))
    (Interval.scale (-2) (iv 2 4));
  Alcotest.check check_iv "sum" (iv 6 12)
    (Interval.sum [ iv 1 2; iv 2 4; iv 3 6 ]);
  Alcotest.check check_iv "sum empty" Interval.zero (Interval.sum [])

let test_lattice () =
  Alcotest.check check_iv "join" (iv 1 8) (Interval.join (iv 1 3) (iv 5 8));
  Alcotest.(check (option check_iv))
    "meet overlap"
    (Some (iv 3 4))
    (Interval.meet (iv 1 4) (iv 3 8));
  Alcotest.(check (option check_iv)) "meet disjoint" None
    (Interval.meet (iv 1 2) (iv 4 8));
  Alcotest.(check bool) "subset yes" true (Interval.subset (iv 2 3) (iv 1 4));
  Alcotest.(check bool) "subset no" false (Interval.subset (iv 0 3) (iv 1 4));
  Alcotest.(check (option check_iv))
    "join_list"
    (Some (iv 0 9))
    (Interval.join_list [ iv 3 4; iv 0 1; iv 8 9 ]);
  Alcotest.(check (option check_iv)) "join_list empty" None (Interval.join_list [])

let test_clamp_pick () =
  Alcotest.(check int) "clamp below" 2 (Interval.clamp 0 (iv 2 5));
  Alcotest.(check int) "clamp above" 5 (Interval.clamp 9 (iv 2 5));
  Alcotest.(check int) "clamp inside" 4 (Interval.clamp 4 (iv 2 5));
  Alcotest.(check int) "midpoint" 3 (Interval.midpoint (iv 2 5));
  Alcotest.(check int) "pick 0" 2 (Interval.pick ~position:0. (iv 2 6));
  Alcotest.(check int) "pick 1" 6 (Interval.pick ~position:1. (iv 2 6));
  Alcotest.(check int) "pick clamped" 6 (Interval.pick ~position:2. (iv 2 6))

let test_pp () =
  Alcotest.(check string) "point" "4" (Interval.to_string (Interval.point 4));
  Alcotest.(check string) "range" "[2,5]" (Interval.to_string (iv 2 5))

(* ---------------------------- properties --------------------------- *)

let gen_interval =
  QCheck.Gen.(
    map2
      (fun lo w -> Interval.make lo (lo + w))
      (int_range (-1000) 1000) (int_range 0 500))

let arb_interval =
  QCheck.make ~print:Interval.to_string gen_interval

let arb_pair = QCheck.pair arb_interval arb_interval

let prop name count arb f = QCheck.Test.make ~name ~count arb f

let properties =
  [
    prop "add is sound pointwise" 500 arb_pair (fun (a, b) ->
        let x = Interval.clamp 0 a and y = Interval.clamp 0 b in
        Interval.mem (x + y) (Interval.add a b));
    prop "mul is sound pointwise" 500 arb_pair (fun (a, b) ->
        let x = Interval.midpoint a and y = Interval.midpoint b in
        Interval.mem (x * y) (Interval.mul a b));
    prop "sub then add over-approximates" 500 arb_pair (fun (a, b) ->
        Interval.subset a (Interval.add (Interval.sub a b) b));
    prop "join commutative" 500 arb_pair (fun (a, b) ->
        Interval.equal (Interval.join a b) (Interval.join b a));
    prop "join upper bound" 500 arb_pair (fun (a, b) ->
        let j = Interval.join a b in
        Interval.subset a j && Interval.subset b j);
    prop "meet lower bound" 500 arb_pair (fun (a, b) ->
        match Interval.meet a b with
        | None -> not (Interval.overlaps a b)
        | Some m -> Interval.subset m a && Interval.subset m b);
    prop "meet then join identity on overlap" 500 arb_pair (fun (a, b) ->
        match Interval.meet a b with
        | None -> true
        | Some m -> Interval.subset m (Interval.join a b));
    prop "midpoint is a member" 500 arb_interval (fun a ->
        Interval.mem (Interval.midpoint a) a);
    prop "pick stays inside" 500
      (QCheck.pair arb_interval (QCheck.float_range 0. 1.))
      (fun (a, position) -> Interval.mem (Interval.pick ~position a) a);
    prop "compare total order consistent with equal" 500 arb_pair
      (fun (a, b) -> Interval.compare a b = 0 = Interval.equal a b);
  ]

let suite =
  ( "interval",
    [
      Alcotest.test_case "make valid" `Quick test_make_valid;
      Alcotest.test_case "make invalid" `Quick test_make_invalid;
      Alcotest.test_case "mem" `Quick test_mem;
      Alcotest.test_case "arithmetic" `Quick test_arithmetic;
      Alcotest.test_case "lattice" `Quick test_lattice;
      Alcotest.test_case "clamp/pick" `Quick test_clamp_pick;
      Alcotest.test_case "pretty-printing" `Quick test_pp;
    ]
    @ List.map (QCheck_alcotest.to_alcotest ~long:false) properties )
