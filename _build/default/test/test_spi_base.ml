(* Tests for the small SPI building blocks: ids, tags, tokens,
   channels, rates. *)

module I = Spi.Ids

let test_ids_distinct_types () =
  let p = I.Process_id.of_string "x" in
  let c = I.Channel_id.of_string "x" in
  Alcotest.(check string) "round trip" "x" (I.Process_id.to_string p);
  Alcotest.(check string) "round trip" "x" (I.Channel_id.to_string c);
  Alcotest.(check bool) "equal" true
    (I.Process_id.equal p (I.Process_id.of_string "x"))

let test_ids_empty_rejected () =
  Alcotest.check_raises "empty id" (Invalid_argument "Ids: empty identifier")
    (fun () -> ignore (I.Process_id.of_string ""))

let test_id_containers () =
  let set =
    I.Process_id.Set.of_list
      (List.map I.Process_id.of_string [ "b"; "a"; "b" ])
  in
  Alcotest.(check int) "set dedups" 2 (I.Process_id.Set.cardinal set)

let test_tags () =
  let a = Spi.Tag.make "a" and b = Spi.Tag.make "b" in
  Alcotest.(check bool) "distinct" false (Spi.Tag.equal a b);
  Alcotest.(check string) "name" "a" (Spi.Tag.name a);
  let set = Spi.Tag.set_of_list [ "x"; "y"; "x" ] in
  Alcotest.(check int) "set dedups" 2 (Spi.Tag.Set.cardinal set);
  Alcotest.check_raises "empty tag" (Invalid_argument "Tag.make: empty tag")
    (fun () -> ignore (Spi.Tag.make ""))

let test_tokens () =
  let t = Spi.Token.make ~payload:7 () in
  Alcotest.(check (option int)) "payload" (Some 7) (Spi.Token.payload t);
  Alcotest.(check bool) "no tags" true (Spi.Tag.Set.is_empty (Spi.Token.tags t));
  let tagged = Spi.Token.add_tag (Spi.Tag.make "v") t in
  Alcotest.(check bool) "has tag" true
    (Spi.Token.has_tag (Spi.Tag.make "v") tagged);
  Alcotest.(check bool) "original unchanged" false
    (Spi.Token.has_tag (Spi.Tag.make "v") t);
  Alcotest.(check int) "replicate" 3
    (List.length (Spi.Token.replicate 3 Spi.Token.plain));
  Alcotest.(check bool) "equal" true
    (Spi.Token.equal t (Spi.Token.make ~payload:7 ()));
  Alcotest.(check bool) "unequal payload" false
    (Spi.Token.equal t (Spi.Token.make ~payload:8 ()));
  Alcotest.check_raises "negative replicate"
    (Invalid_argument "Token.replicate: negative count") (fun () ->
      ignore (Spi.Token.replicate (-1) Spi.Token.plain))

let test_channels () =
  let q = Spi.Chan.queue ~capacity:4 (I.Channel_id.of_string "q") in
  Alcotest.(check bool) "queue kind" true (Spi.Chan.kind q = Spi.Chan.Queue);
  Alcotest.(check (option int)) "capacity" (Some 4) (Spi.Chan.capacity q);
  let r = Spi.Chan.register (I.Channel_id.of_string "r") in
  Alcotest.(check bool) "register kind" true
    (Spi.Chan.kind r = Spi.Chan.Register);
  Alcotest.(check (option int)) "register cap" (Some 1) (Spi.Chan.capacity r);
  let preloaded =
    Spi.Chan.queue
      ~initial:[ Spi.Token.plain; Spi.Token.plain ]
      (I.Channel_id.of_string "p")
  in
  Alcotest.(check int) "initial" 2 (List.length (Spi.Chan.initial preloaded));
  Alcotest.check_raises "bad capacity"
    (Invalid_argument "Chan.queue: capacity < 1") (fun () ->
      ignore (Spi.Chan.queue ~capacity:0 (I.Channel_id.of_string "x")));
  Alcotest.check_raises "overfull initial"
    (Invalid_argument "Chan.queue: initial contents exceed capacity")
    (fun () ->
      ignore
        (Spi.Chan.queue ~capacity:1
           ~initial:[ Spi.Token.plain; Spi.Token.plain ]
           (I.Channel_id.of_string "x")));
  let renamed = Spi.Chan.rename (I.Channel_id.of_string "q2") q in
  Alcotest.(check string) "rename" "q2"
    (I.Channel_id.to_string (Spi.Chan.id renamed))

let suite =
  ( "spi-base",
    [
      Alcotest.test_case "typed ids" `Quick test_ids_distinct_types;
      Alcotest.test_case "empty ids rejected" `Quick test_ids_empty_rejected;
      Alcotest.test_case "id containers" `Quick test_id_containers;
      Alcotest.test_case "tags" `Quick test_tags;
      Alcotest.test_case "tokens" `Quick test_tokens;
      Alcotest.test_case "channels" `Quick test_channels;
    ] )
