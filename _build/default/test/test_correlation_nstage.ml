(* Tests for process mode correlation and the N-stage video chain. *)

module I = Spi.Ids
module C = Spi.Correlation

let pid = I.Process_id.of_string
let cid = I.Channel_id.of_string
let mid = I.Mode_id.of_string
let one = Interval.point 1

(* Two processes in a chain, each with a fast and a slow mode; the tags
   of the stream correlate them: both run fast or both run slow. *)
let correlated_model =
  let mk_proc name input output =
    let mode latency mname =
      Spi.Mode.make ~latency:(Interval.point latency)
        ~consumes:[ (cid input, one) ]
        ~produces:
          (match output with
          | None -> []
          | Some out -> [ (cid out, Spi.Mode.produce one) ])
        (mid mname)
    in
    Spi.Process.make
      ~modes:[ mode 2 (name ^ ".fast"); mode 10 (name ^ ".slow") ]
      (pid name)
  in
  Spi.Model.build_exn
    ~processes:[ mk_proc "u" "a" (Some "b"); mk_proc "v" "b" None ]
    ~channels:[ Spi.Chan.queue (cid "a"); Spi.Chan.queue (cid "b") ]

let correlation =
  C.make
    [
      C.scenario "both-fast" [ (pid "u", mid "u.fast"); (pid "v", mid "v.fast") ];
      C.scenario "both-slow" [ (pid "u", mid "u.slow"); (pid "v", mid "v.slow") ];
    ]

let uv_constraint bound =
  Spi.Constraint_.latency_path ~name:"uv" ~from_:(pid "u") ~to_:(pid "v") ~bound

let test_correlation_tightens () =
  (* hull: 10 + 10 = 20; correlated worst: both-slow = 20, but a bound
     of 12 separates hull (20 > 12 violated) from... both are 20 here.
     The interesting case: anti-correlated scenarios. *)
  let anti =
    C.make
      [
        C.scenario "u-fast-v-slow" [ (pid "u", mid "u.fast"); (pid "v", mid "v.slow") ];
        C.scenario "u-slow-v-fast" [ (pid "u", mid "u.slow"); (pid "v", mid "v.fast") ];
      ]
  in
  let c = uv_constraint 15 in
  (* hull assumes slow+slow = 20: violated *)
  (match C.hull_outcome correlated_model c with
  | Spi.Constraint_.Violated { worst; _ } -> Alcotest.(check int) "hull worst" 20 worst
  | o -> Alcotest.failf "hull: unexpected %a" Spi.Constraint_.pp_outcome o);
  (* anti-correlation caps the path at 10 + 2 = 12: satisfied *)
  match C.worst_case correlated_model anti c with
  | Spi.Constraint_.Satisfied { worst; _ } ->
    Alcotest.(check int) "correlated worst" 12 worst
  | o -> Alcotest.failf "correlated: unexpected %a" Spi.Constraint_.pp_outcome o

let test_correlation_never_looser_than_hull () =
  let c = uv_constraint 15 in
  (* fully correlated scenarios still include both-slow: violated, same
     worst as the hull *)
  match C.worst_case correlated_model correlation c with
  | Spi.Constraint_.Violated { worst; _ } -> Alcotest.(check int) "worst" 20 worst
  | o -> Alcotest.failf "unexpected %a" Spi.Constraint_.pp_outcome o

let test_correlation_per_scenario () =
  let outcomes = C.check correlated_model correlation (uv_constraint 15) in
  Alcotest.(check int) "two scenarios" 2 (List.length outcomes);
  (match List.assoc_opt "both-fast" outcomes with
  | Some (Spi.Constraint_.Satisfied { worst; _ }) ->
    Alcotest.(check int) "fast path" 4 worst
  | _ -> Alcotest.fail "both-fast should satisfy");
  match List.assoc_opt "both-slow" outcomes with
  | Some (Spi.Constraint_.Violated _) -> ()
  | _ -> Alcotest.fail "both-slow should violate"

let test_correlation_unconstrained_process () =
  (* a scenario that pins only u leaves v at its hull *)
  let partial = C.make [ C.scenario "u-fast" [ (pid "u", mid "u.fast") ] ] in
  match C.worst_case correlated_model partial (uv_constraint 15) with
  | Spi.Constraint_.Satisfied { worst; _ } ->
    Alcotest.(check int) "2 + hull(10)" 12 worst
  | o -> Alcotest.failf "unexpected %a" Spi.Constraint_.pp_outcome o

let test_correlation_validation () =
  (try
     ignore (C.make []);
     Alcotest.fail "empty accepted"
   with Invalid_argument _ -> ());
  (try
     ignore (C.make [ C.scenario "s" [ (pid "u", mid "a"); (pid "u", mid "b") ] ]);
     Alcotest.fail "double assignment accepted"
   with Invalid_argument _ -> ());
  let bad =
    C.make [ C.scenario "s" [ (pid "ghost", mid "m"); (pid "u", mid "nope") ] ]
  in
  let errors = C.validate_against correlated_model bad in
  Alcotest.(check bool) "unknown process" true
    (List.exists (function C.Unknown_process _ -> true | _ -> false) errors);
  Alcotest.(check bool) "unknown mode" true
    (List.exists (function C.Unknown_mode _ -> true | _ -> false) errors);
  Alcotest.(check int) "good correlation validates" 0
    (List.length (C.validate_against correlated_model correlation))

(* --------------------------- N-stage video -------------------------- *)

let run_nstage ~stages switches =
  let built =
    Video.System.build { Video.System.default_params with stages }
  in
  let stimuli =
    Video.Scenario.switching_demo ~frames:30 ~period:6 ~switches ()
  in
  let result =
    Sim.Engine.run ~configurations:built.Video.System.configurations ~stimuli
      built.Video.System.model
  in
  (result, Video.Checker.check ~stages result)

let test_nstage_passthrough () =
  List.iter
    (fun stages ->
      let result, report = run_nstage ~stages [] in
      Alcotest.(check int)
        (Format.sprintf "%d stages: all clean" stages)
        30 report.Video.Checker.clean;
      Alcotest.(check bool) "quiescent" true
        (result.Sim.Engine.outcome = Sim.Engine.Quiescent))
    [ 1; 3; 4 ]

let test_nstage_switch_safe () =
  List.iter
    (fun stages ->
      let _, report = run_nstage ~stages [ (40, "fB") ] in
      Alcotest.(check bool)
        (Format.sprintf "%d stages safe" stages)
        true
        (Video.Checker.is_safe report);
      Alcotest.(check int)
        (Format.sprintf "%d stages reconfigure" stages)
        stages report.Video.Checker.reconfigurations;
      Alcotest.(check int) "accounting closes" report.Video.Checker.frames_in
        (report.Video.Checker.clean + report.Video.Checker.held
       + report.Video.Checker.dropped))
    [ 1; 3; 4 ]

let test_nstage_latency_grows () =
  let mean stages =
    let _, report = run_nstage ~stages [] in
    match Video.Checker.latency_stats report with
    | Some (mean, _) -> mean
    | None -> Alcotest.fail "latency stats expected"
  in
  let m1 = mean 1 and m4 = mean 4 in
  Alcotest.(check bool)
    (Format.sprintf "pipeline latency grows (%.1f < %.1f)" m1 m4)
    true (m1 < m4)

let test_latency_stats_accounting () =
  let _, report = run_nstage ~stages:2 [] in
  Alcotest.(check int) "one latency sample per clean frame"
    report.Video.Checker.clean
    (List.length report.Video.Checker.frame_latencies);
  match Video.Checker.latency_stats report with
  | Some (mean, worst) ->
    Alcotest.(check bool) "mean <= worst" true (mean <= float_of_int worst)
  | None -> Alcotest.fail "stats expected"

let test_nstage_bad_params () =
  try
    ignore (Video.System.build { Video.System.default_params with stages = 0 });
    Alcotest.fail "stages=0 accepted"
  with Invalid_argument _ -> ()

let suite =
  ( "correlation-nstage",
    [
      Alcotest.test_case "correlation tightens" `Quick test_correlation_tightens;
      Alcotest.test_case "correlation never looser" `Quick
        test_correlation_never_looser_than_hull;
      Alcotest.test_case "correlation per scenario" `Quick
        test_correlation_per_scenario;
      Alcotest.test_case "correlation unconstrained process" `Quick
        test_correlation_unconstrained_process;
      Alcotest.test_case "correlation validation" `Quick
        test_correlation_validation;
      Alcotest.test_case "n-stage passthrough" `Quick test_nstage_passthrough;
      Alcotest.test_case "n-stage switch safe" `Quick test_nstage_switch_safe;
      Alcotest.test_case "n-stage latency grows" `Quick test_nstage_latency_grows;
      Alcotest.test_case "latency stats accounting" `Quick
        test_latency_stats_accounting;
      Alcotest.test_case "n-stage bad params" `Quick test_nstage_bad_params;
    ] )

(* appended: correlation inference from tag-driven activation *)
let test_infer_figure1 () =
  (* p2's rules key on tags 'a'/'b' of c1: two scenarios inferred *)
  match C.infer ~channel:Paper.Figure1.c1 Paper.Figure1.model with
  | None -> Alcotest.fail "correlation expected"
  | Some corr ->
    Alcotest.(check int) "two scenarios" 2 (List.length (C.scenarios corr));
    Alcotest.(check int) "validates against the model" 0
      (List.length (C.validate_against Paper.Figure1.model corr));
    (* scenario 'a' pins p2 to m1 (latency 3), 'b' to m2 (latency 5) *)
    let lat tag =
      let s =
        List.find
          (fun s -> s.C.scenario_name = "tag:" ^ tag)
          (C.scenarios corr)
      in
      C.scenario_latency_of Paper.Figure1.model s Paper.Figure1.p2
    in
    Alcotest.(check int) "scenario a" 3 (lat "a");
    Alcotest.(check int) "scenario b" 5 (lat "b")

let test_infer_tightens_figure1 () =
  (* end-to-end p1 ~> p3 under correlation: the worst scenario pins p2
     to m2 (5); the hull gives the same here (hull = max mode), but the
     'a' scenario alone shows the tightening *)
  let c =
    Spi.Constraint_.latency_path ~name:"e2e" ~from_:Paper.Figure1.p1
      ~to_:Paper.Figure1.p3 ~bound:8
  in
  match C.infer ~channel:Paper.Figure1.c1 Paper.Figure1.model with
  | None -> Alcotest.fail "correlation expected"
  | Some corr ->
    let outcomes = C.check Paper.Figure1.model corr c in
    (match List.assoc_opt "tag:a" outcomes with
    | Some (Spi.Constraint_.Satisfied { worst; _ }) ->
      Alcotest.(check int) "scenario a path" 7 worst
    | _ -> Alcotest.fail "'a' scenario should satisfy 8");
    match List.assoc_opt "tag:b" outcomes with
    | Some (Spi.Constraint_.Violated { worst; _ }) ->
      Alcotest.(check int) "scenario b path" 9 worst
    | _ -> Alcotest.fail "'b' scenario should violate 8"

let test_infer_none_without_tags () =
  let plain =
    Spi.Builder.(
      empty |> queue "a" |> queue "b"
      |> stage "p" ~latency:(fixed 1) ~from:"a" ~into:"b"
      |> build_exn)
  in
  Alcotest.(check bool) "no tags, no correlation" true
    (Option.is_none (C.infer ~channel:(cid "a") plain))

let suite =
  let name, tests = suite in
  ( name,
    tests
    @ [
        Alcotest.test_case "infer figure1" `Quick test_infer_figure1;
        Alcotest.test_case "infer tightens figure1" `Quick
          test_infer_tightens_figure1;
        Alcotest.test_case "infer none without tags" `Quick
          test_infer_none_without_tags;
      ] )
