(* Tests for clusterization (the inverse of flattening). *)

module I = Spi.Ids
module V = Variants

let pid = I.Process_id.of_string
let cid = I.Channel_id.of_string

(* src -> a -> f1 -> k -> f2 -> b -> snk, with a side channel f1 -> dbg *)
let flat_model =
  Spi.Builder.(
    empty
    |> queue "a" |> queue "k" |> queue "b" |> queue "in" |> queue "dbg"
    |> stage "src" ~latency:(fixed 1) ~from:"in" ~into:"a"
    |> worker "f1" ~latency:(1, 3)
         ~consumes:[ ("a", 1) ]
         ~produces:[ ("k", 1); ("dbg", 1) ]
    |> stage "f2" ~latency:(fixed 2) ~from:"k" ~into:"b"
    |> sink "snk" ~latency:(fixed 1) ~from:"b" ()
    |> build_exn)

let the_cut = I.Process_id.Set.of_list [ pid "f1"; pid "f2" ]

let test_cut_ports () =
  let { V.Clusterize.cluster; wiring } =
    V.Clusterize.cut ~name:"filter" the_cut flat_model
  in
  let ins = V.Cluster.input_ports cluster in
  let outs = V.Cluster.output_ports cluster in
  Alcotest.(check (list string)) "inputs" [ "a" ]
    (List.map I.Port_id.to_string (I.Port_id.Set.elements ins));
  Alcotest.(check (list string)) "outputs" [ "b"; "dbg" ]
    (List.map I.Port_id.to_string (I.Port_id.Set.elements outs));
  Alcotest.(check int) "one internal channel" 1
    (List.length cluster.V.Structure.channels);
  Alcotest.(check int) "wiring covers ports" 3 (List.length wiring);
  Alcotest.(check int) "cluster well-formed" 0
    (List.length (V.Cluster.validate cluster))

let test_cut_errors () =
  (try
     ignore (V.Clusterize.cut ~name:"x" I.Process_id.Set.empty flat_model);
     Alcotest.fail "empty cut accepted"
   with V.Clusterize.Clusterize_error _ -> ());
  try
    ignore
      (V.Clusterize.cut ~name:"x"
         (I.Process_id.Set.singleton (pid "ghost"))
         flat_model);
    Alcotest.fail "unknown process accepted"
  with V.Clusterize.Clusterize_error _ -> ()

let test_carve_round_trip () =
  let system =
    V.Clusterize.carve ~interface_name:"filter" ~cluster_name:"orig" the_cut
      flat_model
  in
  Alcotest.(check int) "system validates" 0 (List.length (V.System.validate system));
  let reflattened =
    V.Flatten.flatten system (V.Flatten.choice_of_list [ ("filter", "orig") ])
  in
  let names m =
    List.sort compare
      (List.map (fun p -> I.Process_id.to_string (Spi.Process.id p))
         (Spi.Model.processes m))
  in
  Alcotest.(check (list string)) "process set preserved (cut prefixed)"
    [ "filter.f1"; "filter.f2"; "snk"; "src" ]
    (names reflattened);
  (* behaviour preserved: same end-to-end delivery *)
  let stimuli =
    List.init 4 (fun i ->
        { Sim.Engine.at = 1 + i; channel = cid "in"; token = Spi.Token.make ~payload:i () })
  in
  let run m =
    let r = Sim.Engine.run ~stimuli m in
    ( List.length (Sim.Trace.tokens_produced_on (cid "b") r.Sim.Engine.trace),
      r.Sim.Engine.firings )
  in
  Alcotest.(check (pair int int)) "same behaviour" (run flat_model) (run reflattened)

let test_carve_then_add_variant () =
  (* the point of the import: once carved, a second variant can be added *)
  let system =
    V.Clusterize.carve ~interface_name:"filter" ~cluster_name:"orig" the_cut
      flat_model
  in
  let iface = List.hd (V.System.interfaces system) in
  (* an alternative implementation with the same signature *)
  let alt =
    let p port = V.Port.channel_of (I.Port_id.of_string port) in
    V.Cluster.make
      ~ports:(V.Interface.ports iface)
      ~processes:
        [
          Spi.Process.simple ~latency:(Interval.point 1)
            ~consumes:[ (p "a", Interval.point 1) ]
            ~produces:
              [
                (p "b", Spi.Mode.produce (Interval.point 1));
                (p "dbg", Spi.Mode.produce (Interval.point 1));
              ]
            (pid "fast_path");
        ]
      "fast"
  in
  match V.Reuse.extend_interface iface alt with
  | Error e -> Alcotest.failf "extension failed: %s" e
  | Ok extended ->
    let site = List.hd (V.System.sites system) in
    let system2 =
      V.System.make
        ~processes:(V.System.processes system)
        ~channels:(V.System.channels system)
        ~sites:[ { site with V.Structure.iface = extended } ]
        "with-variants"
    in
    Alcotest.(check int) "now two applications" 2
      (List.length (V.Flatten.applications system2));
    Alcotest.(check int) "validates" 0 (List.length (V.System.validate system2))

let test_cut_boundary_to_environment () =
  (* a cut touching an environment channel (no writer) gets an input port *)
  let whole =
    I.Process_id.Set.of_list [ pid "src"; pid "f1"; pid "f2"; pid "snk" ]
  in
  let { V.Clusterize.cluster; _ } =
    V.Clusterize.cut ~name:"everything" whole flat_model
  in
  Alcotest.(check (list string)) "env input becomes port" [ "in" ]
    (List.map I.Port_id.to_string
       (I.Port_id.Set.elements (V.Cluster.input_ports cluster)));
  Alcotest.(check (list string)) "dbg output remains a port" [ "dbg" ]
    (List.map I.Port_id.to_string
       (I.Port_id.Set.elements (V.Cluster.output_ports cluster)))

let suite =
  ( "clusterize",
    [
      Alcotest.test_case "cut ports" `Quick test_cut_ports;
      Alcotest.test_case "cut errors" `Quick test_cut_errors;
      Alcotest.test_case "carve round trip" `Quick test_carve_round_trip;
      Alcotest.test_case "carve then add variant" `Quick
        test_carve_then_add_variant;
      Alcotest.test_case "boundary to environment" `Quick
        test_cut_boundary_to_environment;
    ] )
