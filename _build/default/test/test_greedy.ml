(* Tests for the greedy heuristic partitioner. *)

module I = Spi.Ids
module F2 = Paper.Figure2

let pid = I.Process_id.of_string

let test_table1 () =
  match Synth.Greedy.partition F2.table1_tech [ F2.app1; F2.app2 ] with
  | None -> Alcotest.fail "feasible instance"
  | Some r ->
    (* feasible, and not better than the exact optimum (41) *)
    Alcotest.(check bool) "feasible" true
      (Synth.Schedule.is_feasible
         (Synth.Schedule.check F2.table1_tech r.Synth.Greedy.binding
            [ F2.app1; F2.app2 ]));
    Alcotest.(check bool) "not better than optimal" true
      (r.Synth.Greedy.cost.Synth.Cost.total >= 41);
    Alcotest.(check bool) "moved something" true (r.Synth.Greedy.moves <> [])

let test_no_moves_when_fits () =
  let tech =
    Synth.Tech.make
      [ (pid "a", Synth.Tech.both ~load:30 ~area:50); (pid "b", Synth.Tech.both ~load:40 ~area:50) ]
  in
  match Synth.Greedy.partition tech [ Synth.App.make "x" [ pid "a"; pid "b" ] ] with
  | Some r ->
    Alcotest.(check int) "no hardware" 0 (List.length r.Synth.Greedy.moves);
    Alcotest.(check int) "processor only" (Synth.Tech.processor_cost tech)
      r.Synth.Greedy.cost.Synth.Cost.total
  | None -> Alcotest.fail "trivially feasible"

let test_infeasible () =
  let tech = Synth.Tech.make [ (pid "x", Synth.Tech.sw_only ~load:200) ] in
  Alcotest.(check bool) "no way out" true
    (Option.is_none
       (Synth.Greedy.partition tech [ Synth.App.make "a" [ pid "x" ] ]))

let test_hw_only_processes_start_in_hw () =
  let tech =
    Synth.Tech.make
      [ (pid "asic", Synth.Tech.hw_only ~area:9); (pid "cpu", Synth.Tech.sw_only ~load:10) ]
  in
  match Synth.Greedy.partition tech [ Synth.App.make "a" [ pid "asic"; pid "cpu" ] ] with
  | Some r ->
    Alcotest.(check (option bool))
      "asic in hw" (Some true)
      (Option.map (fun i -> i = Synth.Binding.Hw)
         (Synth.Binding.impl_of (pid "asic") r.Synth.Greedy.binding))
  | None -> Alcotest.fail "feasible"

let prop_greedy_sound =
  QCheck.Test.make
    ~name:"greedy is feasible and never beats the exact optimum" ~count:80
    QCheck.(pair (int_range 2 7) (int_range 0 3000))
    (fun (n, seed) ->
      let rng = Random.State.make [| seed |] in
      let pids = List.init n (fun i -> pid (Format.sprintf "g%d" i)) in
      let tech =
        Synth.Tech.make
          (List.map
             (fun p ->
               ( p,
                 Synth.Tech.both
                   ~load:(5 + Random.State.int rng 60)
                   ~area:(5 + Random.State.int rng 60) ))
             pids)
      in
      let subset () =
        match List.filter (fun _ -> Random.State.bool rng) pids with
        | [] -> [ List.hd pids ]
        | s -> s
      in
      let apps = [ Synth.App.make "a" (subset ()); Synth.App.make "b" (subset ()) ] in
      match Synth.Greedy.quality_gap tech apps with
      | None -> true (* both infeasible is consistent *)
      | Some (heuristic, optimal) ->
        heuristic >= optimal
        && (match Synth.Greedy.partition tech apps with
           | Some r ->
             Synth.Schedule.is_feasible
               (Synth.Schedule.check tech r.Synth.Greedy.binding apps)
           | None -> false))

let test_scales_beyond_exact () =
  (* 60 processes: the heuristic answers immediately *)
  let pids = List.init 60 (fun i -> pid (Format.sprintf "big%d" i)) in
  let tech =
    Synth.Tech.of_weights ~weight:Variants.Generator.process_weight pids
  in
  let apps =
    [
      Synth.App.make "a" (List.filteri (fun i _ -> i < 40) pids);
      Synth.App.make "b" (List.filteri (fun i _ -> i >= 20) pids);
    ]
  in
  match Synth.Greedy.partition tech apps with
  | Some r ->
    Alcotest.(check bool) "feasible at scale" true
      (Synth.Schedule.is_feasible
         (Synth.Schedule.check tech r.Synth.Greedy.binding apps))
  | None -> Alcotest.fail "expected feasible"

let suite =
  ( "greedy",
    [
      Alcotest.test_case "table1" `Quick test_table1;
      Alcotest.test_case "no moves when fits" `Quick test_no_moves_when_fits;
      Alcotest.test_case "infeasible" `Quick test_infeasible;
      Alcotest.test_case "hw-only starts in hw" `Quick
        test_hw_only_processes_start_in_hw;
      Alcotest.test_case "scales beyond exact" `Quick test_scales_beyond_exact;
      QCheck_alcotest.to_alcotest ~long:false prop_greedy_sound;
    ] )

(* appended: the improvement pass never breaks feasibility *)
let prop_improvement_feasible =
  QCheck.Test.make ~name:"greedy result has no redundant hardware" ~count:60
    QCheck.(pair (int_range 2 6) (int_range 0 3000))
    (fun (n, seed) ->
      let rng = Random.State.make [| seed |] in
      let pids = List.init n (fun i -> pid (Format.sprintf "h%d" i)) in
      let tech =
        Synth.Tech.make
          (List.map
             (fun p ->
               ( p,
                 Synth.Tech.both
                   ~load:(5 + Random.State.int rng 60)
                   ~area:(5 + Random.State.int rng 60) ))
             pids)
      in
      let apps = [ Synth.App.make "a" pids ] in
      match Synth.Greedy.partition tech apps with
      | None -> true
      | Some r ->
        (* local optimality: no single hardware process can return to
           software without overloading *)
        List.for_all
          (fun p ->
            match Synth.Binding.impl_of p r.Synth.Greedy.binding with
            | Some Synth.Binding.Hw ->
              let back =
                Synth.Binding.bind p Synth.Binding.Sw r.Synth.Greedy.binding
              in
              not (Synth.Schedule.is_feasible (Synth.Schedule.check tech back apps))
            | Some Synth.Binding.Sw | None -> true)
          pids)

let suite =
  let name, tests = suite in
  (name, tests @ [ QCheck_alcotest.to_alcotest ~long:false prop_improvement_feasible ])
