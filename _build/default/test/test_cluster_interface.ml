(* Tests for ports, clusters (Def. 1), interfaces (Def. 2) and
   selection functions (Def. 3). *)

module I = Spi.Ids
module V = Variants

let cid = I.Channel_id.of_string
let pid = I.Process_id.of_string
let one = Interval.point 1

let chain_proc ~from_ ~to_ name =
  Spi.Process.simple ~latency:one
    ~consumes:[ (from_, one) ]
    ~produces:[ (to_, Spi.Mode.produce one) ]
    (pid name)

let port_i = V.Port.input "i"
let port_o = V.Port.output "o"
let chan_i = V.Port.channel_of (V.Port.id port_i)
let chan_o = V.Port.channel_of (V.Port.id port_o)

let good_cluster name =
  let k = cid "k" in
  V.Cluster.make
    ~channels:[ Spi.Chan.queue k ]
    ~ports:[ port_i; port_o ]
    ~processes:
      [ chain_proc ~from_:chan_i ~to_:k "u"; chain_proc ~from_:k ~to_:chan_o "v" ]
    name

(* ------------------------------- ports ------------------------------ *)

let test_port_basics () =
  Alcotest.(check bool) "input" true (V.Port.is_input port_i);
  Alcotest.(check bool) "output" true (V.Port.is_output port_o);
  Alcotest.(check string) "channel embedding" "i"
    (I.Channel_id.to_string (V.Port.channel_of (V.Port.id port_i)))

let test_port_signature () =
  let ins, outs = V.Port.signature [ port_i; port_o ] in
  Alcotest.(check int) "one in" 1 (I.Port_id.Set.cardinal ins);
  Alcotest.(check int) "one out" 1 (I.Port_id.Set.cardinal outs);
  Alcotest.(check bool) "same signature" true
    (V.Port.same_signature [ port_i; port_o ] [ port_o; port_i ]);
  Alcotest.(check bool) "different signature" false
    (V.Port.same_signature [ port_i ] [ port_i; port_o ]);
  try
    ignore (V.Port.signature [ port_i; V.Port.input "i" ]);
    Alcotest.fail "duplicate port accepted"
  with Invalid_argument _ -> ()

(* ------------------------------ clusters ---------------------------- *)

let test_cluster_valid () =
  Alcotest.(check (list string)) "no errors" []
    (List.map
       (Format.asprintf "%a" V.Cluster.pp_error)
       (V.Cluster.validate (good_cluster "g")))

let expect_cluster_error cluster pred name =
  let errors = V.Cluster.validate cluster in
  Alcotest.(check bool) name true (List.exists pred errors)

let test_cluster_undeclared_channel () =
  let bad =
    V.Cluster.make
      ~ports:[ port_i; port_o ]
      ~processes:[ chain_proc ~from_:chan_i ~to_:(cid "ghost") "u" ]
      "bad"
  in
  expect_cluster_error bad
    (function V.Cluster.Undeclared_channel _ -> true | _ -> false)
    "undeclared channel"

let test_cluster_port_shadow () =
  let bad =
    V.Cluster.make
      ~channels:[ Spi.Chan.queue chan_i ]
      ~ports:[ port_i; port_o ]
      ~processes:[ chain_proc ~from_:chan_i ~to_:chan_o "u" ]
      "bad"
  in
  expect_cluster_error bad
    (function V.Cluster.Port_channel_declared _ -> true | _ -> false)
    "port shadowed"

let test_cluster_input_fanout () =
  let bad =
    V.Cluster.make
      ~channels:[ Spi.Chan.queue (cid "k1"); Spi.Chan.queue (cid "k2") ]
      ~ports:[ port_i; port_o ]
      ~processes:
        [
          chain_proc ~from_:chan_i ~to_:(cid "k1") "u";
          chain_proc ~from_:chan_i ~to_:(cid "k2") "v";
          Spi.Process.simple ~latency:one
            ~consumes:[ (cid "k1", one); (cid "k2", one) ]
            ~produces:[ (chan_o, Spi.Mode.produce one) ]
            (pid "w");
        ]
      "bad"
  in
  expect_cluster_error bad
    (function V.Cluster.Input_port_fanout _ -> true | _ -> false)
    "input fanout"

let test_cluster_port_direction_abuse () =
  let writes_input =
    V.Cluster.make
      ~ports:[ port_i; port_o ]
      ~processes:[ chain_proc ~from_:chan_o ~to_:chan_i "u" ]
      "bad"
  in
  expect_cluster_error writes_input
    (function V.Cluster.Input_port_written _ -> true | _ -> false)
    "input written";
  expect_cluster_error writes_input
    (function V.Cluster.Output_port_read _ -> true | _ -> false)
    "output read"

let test_cluster_instantiate () =
  let inst =
    V.Cluster.instantiate ~prefix:"site1"
      ~port_channels:[ (V.Port.id port_i, cid "HOSTIN"); (V.Port.id port_o, cid "HOSTOUT") ]
      ~sub_choice:(fun _ -> Alcotest.fail "no sub-interfaces")
      (good_cluster "g")
  in
  Alcotest.(check int) "processes" 2 (List.length inst.V.Cluster.inst_processes);
  Alcotest.(check int) "channels" 1 (List.length inst.V.Cluster.inst_channels);
  let names =
    List.map
      (fun p -> I.Process_id.to_string (Spi.Process.id p))
      inst.V.Cluster.inst_processes
  in
  Alcotest.(check (list string)) "prefixed" [ "site1.u"; "site1.v" ] names;
  let u = List.hd inst.V.Cluster.inst_processes in
  Alcotest.(check bool) "port rewired" true
    (I.Channel_id.Set.mem (cid "HOSTIN") (Spi.Process.inputs u));
  (* missing port binding *)
  try
    ignore
      (V.Cluster.instantiate ~prefix:"x" ~port_channels:[]
         ~sub_choice:(fun _ -> assert false)
         (good_cluster "g"));
    Alcotest.fail "missing binding accepted"
  with Invalid_argument _ -> ()

let test_cluster_latency_paths () =
  let lat = V.Cluster.latency_paths (good_cluster "g") in
  (* chain of two latency-1 processes *)
  Alcotest.(check bool) "chain latency" true (Interval.equal lat (Interval.point 2))

let test_cluster_port_rates () =
  let g = good_cluster "g" in
  Alcotest.(check bool) "consumption" true
    (Interval.equal (V.Cluster.port_consumption g (V.Port.id port_i)) one);
  Alcotest.(check bool) "production" true
    (Interval.equal (V.Cluster.port_production g (V.Port.id port_o)) one);
  Alcotest.(check bool) "unused port" true
    (Interval.equal
       (V.Cluster.port_consumption g (I.Port_id.of_string "nope"))
       Interval.zero)

let test_cluster_entry_process () =
  match V.Cluster.entry_process (good_cluster "g") with
  | Some p -> Alcotest.(check string) "entry is u" "u" (I.Process_id.to_string (Spi.Process.id p))
  | None -> Alcotest.fail "entry expected"

(* ----------------------------- interfaces --------------------------- *)

let test_interface_valid () =
  let iface =
    V.Interface.make ~ports:[ port_i; port_o ]
      ~clusters:[ good_cluster "g1"; good_cluster "g2" ]
      "iface"
  in
  Alcotest.(check (list string)) "no errors" []
    (List.map (Format.asprintf "%a" V.Interface.pp_error) (V.Interface.validate iface));
  Alcotest.(check int) "variant count" 2 (V.Interface.variant_count iface);
  Alcotest.(check bool) "find" true
    (Option.is_some (V.Interface.find_cluster (I.Cluster_id.of_string "g1") iface))

let test_interface_errors () =
  let no_clusters = V.Interface.make ~ports:[ port_i ] ~clusters:[] "empty" in
  Alcotest.(check bool) "no clusters" true
    (List.exists
       (function V.Interface.No_clusters -> true | _ -> false)
       (V.Interface.validate no_clusters));
  let mismatched =
    V.Interface.make ~ports:[ port_i ]
      ~clusters:[ good_cluster "g" ]
      "mismatch"
  in
  Alcotest.(check bool) "signature mismatch" true
    (List.exists
       (function V.Interface.Signature_mismatch _ -> true | _ -> false)
       (V.Interface.validate mismatched));
  let dup =
    V.Interface.make ~ports:[ port_i; port_o ]
      ~clusters:[ good_cluster "g"; good_cluster "g" ]
      "dup"
  in
  Alcotest.(check bool) "duplicate cluster" true
    (List.exists
       (function V.Interface.Duplicate_cluster _ -> true | _ -> false)
       (V.Interface.validate dup))

let test_interface_selection_validation () =
  let selection =
    V.Selection.make
      ~config_latencies:[ (I.Cluster_id.of_string "ghost", 3) ]
      ~initial:(I.Cluster_id.of_string "ghost2")
      [
        V.Selection.rule "r" ~guard:Spi.Predicate.True
          ~target:(I.Cluster_id.of_string "ghost3");
      ]
  in
  let iface =
    V.Interface.make ~selection ~ports:[ port_i; port_o ]
      ~clusters:[ good_cluster "g" ]
      "iface"
  in
  let errors = V.Interface.validate iface in
  let has pred = List.exists pred errors in
  Alcotest.(check bool) "unknown target" true
    (has (function V.Interface.Selection_unknown_cluster _ -> true | _ -> false));
  Alcotest.(check bool) "unknown latency entry" true
    (has (function
      | V.Interface.Selection_latency_unknown_cluster _ -> true
      | _ -> false));
  Alcotest.(check bool) "unknown initial" true
    (has (function V.Interface.Selection_initial_unknown _ -> true | _ -> false))

(* ----------------------------- selection ---------------------------- *)

let selection_example =
  V.Selection.make
    ~config_latencies:[ (I.Cluster_id.of_string "g1", 5); (I.Cluster_id.of_string "g2", 7) ]
    ~initial:(I.Cluster_id.of_string "g1")
    [
      V.Selection.rule "v1"
        ~guard:(Spi.Predicate.has_tag (cid "CV") (Spi.Tag.make "V1"))
        ~target:(I.Cluster_id.of_string "g1");
      V.Selection.rule "v2"
        ~guard:(Spi.Predicate.has_tag (cid "CV") (Spi.Tag.make "V2"))
        ~target:(I.Cluster_id.of_string "g2");
    ]

let view_with_tag tag =
  {
    Spi.Predicate.tokens_available = (fun _ -> 1);
    first_tags = (fun _ -> Some (Spi.Tag.set_of_list [ tag ]));
  }

let test_selection_select () =
  (match V.Selection.select_cluster (view_with_tag "V2") selection_example with
  | Some c -> Alcotest.(check string) "picks g2" "g2" (I.Cluster_id.to_string c)
  | None -> Alcotest.fail "selection expected");
  Alcotest.(check bool) "no rule fires" true
    (Option.is_none
       (V.Selection.select_cluster (view_with_tag "V9") selection_example))

let test_selection_latency () =
  Alcotest.(check int) "g2 latency" 7
    (V.Selection.config_latency selection_example (I.Cluster_id.of_string "g2"));
  Alcotest.(check int) "unknown latency 0" 0
    (V.Selection.config_latency selection_example (I.Cluster_id.of_string "zz"))

let test_selection_reconfiguration () =
  let g1 = I.Cluster_id.of_string "g1" in
  Alcotest.(check bool) "none -> any" true
    (V.Selection.requires_reconfiguration None g1);
  Alcotest.(check bool) "same" false
    (V.Selection.requires_reconfiguration (Some g1) g1);
  Alcotest.(check bool) "different" true
    (V.Selection.requires_reconfiguration (Some g1) (I.Cluster_id.of_string "g2"))

let test_selection_negative_latency () =
  try
    ignore
      (V.Selection.make ~config_latencies:[ (I.Cluster_id.of_string "g", -1) ] []);
    Alcotest.fail "negative latency accepted"
  with Invalid_argument _ -> ()

let suite =
  ( "cluster-interface-selection",
    [
      Alcotest.test_case "port basics" `Quick test_port_basics;
      Alcotest.test_case "port signature" `Quick test_port_signature;
      Alcotest.test_case "cluster valid" `Quick test_cluster_valid;
      Alcotest.test_case "cluster undeclared channel" `Quick
        test_cluster_undeclared_channel;
      Alcotest.test_case "cluster port shadow" `Quick test_cluster_port_shadow;
      Alcotest.test_case "cluster input fanout" `Quick test_cluster_input_fanout;
      Alcotest.test_case "cluster port direction abuse" `Quick
        test_cluster_port_direction_abuse;
      Alcotest.test_case "cluster instantiate" `Quick test_cluster_instantiate;
      Alcotest.test_case "cluster latency paths" `Quick test_cluster_latency_paths;
      Alcotest.test_case "cluster port rates" `Quick test_cluster_port_rates;
      Alcotest.test_case "cluster entry process" `Quick test_cluster_entry_process;
      Alcotest.test_case "interface valid" `Quick test_interface_valid;
      Alcotest.test_case "interface errors" `Quick test_interface_errors;
      Alcotest.test_case "interface selection validation" `Quick
        test_interface_selection_validation;
      Alcotest.test_case "selection select" `Quick test_selection_select;
      Alcotest.test_case "selection latency" `Quick test_selection_latency;
      Alcotest.test_case "selection reconfiguration" `Quick
        test_selection_reconfiguration;
      Alcotest.test_case "selection negative latency" `Quick
        test_selection_negative_latency;
    ] )
