(* Tests for the sensitivity analysis of the optimal mapping. *)

module F2 = Paper.Figure2
module S = Synth.Sensitivity

let apps = [ F2.app1; F2.app2 ]

let test_pa_area_flip () =
  (* In the Table 1 optimum PA is in hardware (area 26, total 41).  The
     next-best mapping moves PB to hardware instead (15 + 30 = 45, with
     PA and both clusters sharing the processor): once PA's area
     exceeds 30, that alternative wins and PA returns to software. *)
  match
    S.flip_point ~parameter:S.Hw_area ~range:(26, 60) F2.table1_tech apps F2.pa
  with
  | Some flip ->
    Alcotest.(check int) "flip at 31" 31 flip.S.at;
    Alcotest.(check bool) "HW below" true (flip.S.below = Synth.Binding.Hw);
    Alcotest.(check (option bool))
      "SW above" (Some true)
      (Option.map (fun i -> i = Synth.Binding.Sw) flip.S.above)
  | None -> Alcotest.fail "flip expected"

let test_stable_decision () =
  (* PB is in software; raising its area only reinforces that *)
  Alcotest.(check bool) "no flip for PB area" true
    (Option.is_none
       (S.flip_point ~parameter:S.Hw_area ~range:(30, 200) F2.table1_tech apps F2.pb))

let test_load_flip () =
  (* PB is in software at load 30; as its load grows, keeping both
     clusters in software next to it becomes impossible and PB moves to
     hardware *)
  match
    S.flip_point ~parameter:S.Sw_load ~range:(30, 100) F2.table1_tech apps F2.pb
  with
  | Some flip ->
    Alcotest.(check bool) "SW below" true (flip.S.below = Synth.Binding.Sw);
    Alcotest.(check bool) "flips somewhere above 30" true (flip.S.at > 30)
  | None -> Alcotest.fail "flip expected"

let test_missing_option () =
  let pid = Spi.Ids.Process_id.of_string "swonly" in
  let tech = Synth.Tech.make [ (pid, Synth.Tech.sw_only ~load:10) ] in
  Alcotest.(check bool) "no hw option, no sweep" true
    (Option.is_none
       (S.flip_point ~parameter:S.Hw_area ~range:(1, 50) tech
          [ Synth.App.make "a" [ pid ] ]
          pid))

let test_flip_matches_linear_scan () =
  (* the binary search agrees with an exhaustive scan *)
  let range = (26, 60) in
  let scan () =
    let lo, hi = range in
    let impl v =
      let tech =
        Synth.Tech.with_options F2.pa (Synth.Tech.both ~load:40 ~area:v)
          F2.table1_tech
      in
      Option.bind (Synth.Explore.optimal tech apps) (fun s ->
          Synth.Binding.impl_of F2.pa s.Synth.Explore.binding)
    in
    let base = impl lo in
    let rec find v =
      if v > hi then None else if impl v <> base then Some v else find (v + 1)
    in
    find (lo + 1)
  in
  let fast =
    Option.map (fun f -> f.S.at)
      (S.flip_point ~parameter:S.Hw_area ~range F2.table1_tech apps F2.pa)
  in
  Alcotest.(check (option int)) "binary = linear" (scan ()) fast

let suite =
  ( "sensitivity",
    [
      Alcotest.test_case "PA area flip at 43" `Quick test_pa_area_flip;
      Alcotest.test_case "stable decision" `Quick test_stable_decision;
      Alcotest.test_case "load flip" `Quick test_load_flip;
      Alcotest.test_case "missing option" `Quick test_missing_option;
      Alcotest.test_case "binary search matches scan" `Quick
        test_flip_matches_linear_scan;
    ] )
