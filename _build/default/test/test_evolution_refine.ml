(* Tests for product-generation evolution, overflow policies, and
   trace-based interval refinement. *)

module I = Spi.Ids
module V = Variants
module F2 = Paper.Figure2

(* ----------------------------- evolution ---------------------------- *)

let test_fix_variant () =
  let fixed = V.Evolution.fix_variant F2.iface1 F2.g1 F2.system in
  Alcotest.(check int) "no sites left" 0 (V.System.site_count fixed);
  Alcotest.(check int) "validates" 0 (List.length (V.System.validate fixed));
  (* the inlined processes joined the common part *)
  let names =
    List.sort compare
      (List.map (fun p -> I.Process_id.to_string (Spi.Process.id p))
         (V.System.processes fixed))
  in
  Alcotest.(check (list string)) "inlined"
    [ "PA"; "PB"; "iface1.x1"; "iface1.x2" ]
    names;
  (* a fixed system has exactly one application *)
  Alcotest.(check int) "one application" 1
    (List.length (V.Flatten.applications fixed))

let test_fix_variant_partial () =
  (* two-site generated system: fixing one leaves the other variable *)
  let system =
    V.Generator.generate { V.Generator.default with sites = 2; variants_per_site = 3 }
  in
  let fixed =
    V.Evolution.fix_variant (I.Interface_id.of_string "iface1")
      (I.Cluster_id.of_string "site1_var2")
      system
  in
  Alcotest.(check int) "one site left" 1 (V.System.site_count fixed);
  Alcotest.(check int) "validates" 0 (List.length (V.System.validate fixed));
  Alcotest.(check int) "three applications remain" 3
    (List.length (V.Flatten.applications fixed))

let test_fix_variant_errors () =
  (try
     ignore
       (V.Evolution.fix_variant (I.Interface_id.of_string "ghost") F2.g1 F2.system);
     Alcotest.fail "unknown interface accepted"
   with V.Evolution.Evolution_error _ -> ());
  try
    ignore
      (V.Evolution.fix_variant F2.iface1 (I.Cluster_id.of_string "ghost") F2.system);
    Alcotest.fail "unknown cluster accepted"
  with V.Evolution.Evolution_error _ -> ()

let test_make_runtime_and_back () =
  (* figure2 has no selection; attach figure3's and strip it again *)
  let selection =
    V.Selection.make ~initial:F2.g1
      [
        V.Selection.rule "v1"
          ~guard:Spi.Predicate.(has_tag F2.cv F2.tag_v1)
          ~target:F2.g1;
      ]
  in
  let runtime = V.Evolution.make_runtime F2.iface1 selection F2.system in
  (match V.System.interfaces runtime with
  | [ iface ] ->
    Alcotest.(check bool) "selection attached" true
      (Option.is_some (V.Interface.selection iface))
  | _ -> Alcotest.fail "one interface expected");
  let production = V.Evolution.make_production F2.iface1 runtime in
  match V.System.interfaces production with
  | [ iface ] ->
    Alcotest.(check bool) "selection stripped" true
      (Option.is_none (V.Interface.selection iface));
    Alcotest.(check int) "variants kept" 2 (V.Interface.variant_count iface)
  | _ -> Alcotest.fail "one interface expected"

(* ----------------------------- overflow ----------------------------- *)

let bounded_model =
  let cid = I.Channel_id.of_string in
  let p =
    Spi.Process.simple ~latency:(Interval.point 10)
      ~consumes:[ (cid "q", Interval.point 1) ]
      ~produces:[] (I.Process_id.of_string "slow")
  in
  Spi.Model.build_exn ~processes:[ p ]
    ~channels:[ Spi.Chan.queue ~capacity:2 (cid "q") ]

let burst =
  List.init 5 (fun i ->
      {
        Sim.Engine.at = 1 + i;
        channel = I.Channel_id.of_string "q";
        token = Spi.Token.make ~payload:i ();
      })

let test_overflow_reject_raises () =
  Alcotest.check_raises "overflow propagates"
    (Spi.Semantics.Channel_overflow (I.Channel_id.of_string "q"))
    (fun () -> ignore (Sim.Engine.run ~stimuli:burst bounded_model))

let test_overflow_drop_runs () =
  let result =
    Sim.Engine.run ~overflow:Spi.Semantics.Drop_newest ~stimuli:burst bounded_model
  in
  Alcotest.(check bool) "completes" true
    (result.Sim.Engine.outcome = Sim.Engine.Quiescent);
  (* capacity 2 + one consumed during the burst: some tokens were lost *)
  Alcotest.(check bool) "fewer firings than injections" true
    (result.Sim.Engine.firings < 5)

(* ---------------------------- refinement ---------------------------- *)

let wide_process =
  let cid = I.Channel_id.of_string in
  Spi.Process.simple
    ~latency:(Interval.make 1 100)
    ~consumes:[ (cid "a", Interval.point 1) ]
    ~produces:[ (cid "b", Spi.Mode.produce (Interval.point 1)) ]
    (I.Process_id.of_string "wide")

let wide_model =
  let cid = I.Channel_id.of_string in
  Spi.Model.build_exn ~processes:[ wide_process ]
    ~channels:[ Spi.Chan.queue (cid "a"); Spi.Chan.queue (cid "b") ]

let run_wide policy n =
  let stimuli =
    List.init n (fun i ->
        {
          Sim.Engine.at = 1 + (200 * i);
          channel = I.Channel_id.of_string "a";
          token = Spi.Token.plain;
        })
  in
  Sim.Engine.run ~policy ~stimuli wide_model

let test_observe () =
  let result = run_wide Sim.Engine.Typical 4 in
  match Sim.Refine.observe result (I.Process_id.of_string "wide") with
  | [ o ] ->
    Alcotest.(check int) "executions" 4 o.Sim.Refine.executions;
    (* typical policy resolves [1,100] to its midpoint 50 *)
    Alcotest.(check bool) "latency observed" true
      (Interval.equal o.Sim.Refine.latency (Interval.point 50));
    Alcotest.(check int) "consumed channels" 1 (List.length o.Sim.Refine.consumed)
  | l -> Alcotest.failf "expected one observation, got %d" (List.length l)

let test_refine_narrows () =
  let result = run_wide Sim.Engine.Typical 4 in
  let refined = Sim.Refine.refine_process result wide_process in
  Alcotest.(check bool) "narrowed to the observation" true
    (Interval.equal (Spi.Process.latency_hull refined) (Interval.point 50));
  (* refinement never widens: meet of declared and observed *)
  Alcotest.(check bool) "inside declared" true
    (Interval.subset
       (Spi.Process.latency_hull refined)
       (Spi.Process.latency_hull wide_process))

let test_refine_model_and_reuse () =
  let result = run_wide Sim.Engine.Worst_case 3 in
  let refined = Sim.Refine.refine_model result wide_model in
  let p = Spi.Model.get_process (I.Process_id.of_string "wide") refined in
  Alcotest.(check bool) "worst-case observation" true
    (Interval.equal (Spi.Process.latency_hull p) (Interval.point 100));
  (* the refined model is a valid model: it simulates again *)
  let again =
    Sim.Engine.run
      ~stimuli:
        [ { Sim.Engine.at = 1; channel = I.Channel_id.of_string "a"; token = Spi.Token.plain } ]
      refined
  in
  Alcotest.(check int) "refined model runs" 1 again.Sim.Engine.firings

let test_refine_unexecuted_mode_untouched () =
  (* no stimuli: nothing observed, intervals unchanged *)
  let result = Sim.Engine.run wide_model in
  let refined = Sim.Refine.refine_process result wide_process in
  Alcotest.(check bool) "unchanged" true
    (Interval.equal
       (Spi.Process.latency_hull refined)
       (Spi.Process.latency_hull wide_process))

let test_suspicious_empty_for_simulated () =
  let result = run_wide Sim.Engine.Typical 3 in
  Alcotest.(check int) "nothing suspicious" 0
    (List.length (Sim.Refine.suspicious result wide_model))

let test_refine_excludes_reconfiguration () =
  (* a reconfiguring execution's latency observation excludes t_conf *)
  let built = Video.System.build Video.System.default_params in
  let stimuli =
    Video.Scenario.switching_demo ~frames:10 ~period:5 ~switches:[ (22, "fB") ] ()
  in
  let result =
    Sim.Engine.run ~configurations:built.Video.System.configurations ~stimuli
      built.Video.System.model
  in
  let observations = Sim.Refine.observe result Video.System.p_stage1 in
  (* the fB ack mode executed once, with reconfiguration; its observed
     latency must be the declared mode latency (1), not 1 + t_conf *)
  match
    List.find_opt
      (fun o -> I.Mode_id.to_string o.Sim.Refine.mode = "P1.ack:fB")
      observations
  with
  | Some o ->
    Alcotest.(check bool) "t_conf excluded" true
      (Interval.equal o.Sim.Refine.latency (Interval.point 1))
  | None -> Alcotest.fail "ack observation expected"

let suite =
  ( "evolution-refine",
    [
      Alcotest.test_case "fix variant" `Quick test_fix_variant;
      Alcotest.test_case "fix variant partial" `Quick test_fix_variant_partial;
      Alcotest.test_case "fix variant errors" `Quick test_fix_variant_errors;
      Alcotest.test_case "make runtime and back" `Quick test_make_runtime_and_back;
      Alcotest.test_case "overflow reject raises" `Quick
        test_overflow_reject_raises;
      Alcotest.test_case "overflow drop runs" `Quick test_overflow_drop_runs;
      Alcotest.test_case "observe" `Quick test_observe;
      Alcotest.test_case "refine narrows" `Quick test_refine_narrows;
      Alcotest.test_case "refine model and reuse" `Quick
        test_refine_model_and_reuse;
      Alcotest.test_case "refine unexecuted untouched" `Quick
        test_refine_unexecuted_mode_untouched;
      Alcotest.test_case "suspicious empty" `Quick
        test_suspicious_empty_for_simulated;
      Alcotest.test_case "refine excludes reconfiguration" `Quick
        test_refine_excludes_reconfiguration;
    ] )
