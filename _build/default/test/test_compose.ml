(* Tests for model composition. *)

module I = Spi.Ids

let cid = I.Channel_id.of_string
let pid = I.Process_id.of_string

let producer =
  Spi.Builder.(
    empty |> queue "raw" |> queue "mid"
    |> stage "front" ~latency:(fixed 1) ~from:"raw" ~into:"mid"
    |> build_exn)

let consumer =
  Spi.Builder.(
    empty |> queue "feed" |> queue "done"
    |> stage "back" ~latency:(fixed 2) ~from:"feed" ~into:"done"
    |> build_exn)

let test_prefix () =
  let p = Spi.Compose.prefix "lib" producer in
  Alcotest.(check bool) "process renamed" true
    (Option.is_some (Spi.Model.find_process (pid "lib.front") p));
  Alcotest.(check bool) "channel renamed" true
    (Option.is_some (Spi.Model.find_channel (cid "lib.mid") p));
  Alcotest.(check bool) "old names gone" true
    (Option.is_none (Spi.Model.find_process (pid "front") p));
  (* wiring preserved *)
  Alcotest.(check (option string))
    "writer follows" (Some "lib.front")
    (Option.map I.Process_id.to_string (Spi.Model.writer_of (cid "lib.mid") p))

let test_rename_channel () =
  let m = Spi.Compose.rename_channel ~from_:(cid "mid") ~to_:(cid "out") producer in
  Alcotest.(check bool) "new name" true
    (Option.is_some (Spi.Model.find_channel (cid "out") m));
  Alcotest.(check (option string))
    "writer follows" (Some "front")
    (Option.map I.Process_id.to_string (Spi.Model.writer_of (cid "out") m));
  (try
     ignore (Spi.Compose.rename_channel ~from_:(cid "ghost") ~to_:(cid "x") producer);
     Alcotest.fail "unknown channel accepted"
   with Invalid_argument _ -> ());
  try
    ignore (Spi.Compose.rename_channel ~from_:(cid "mid") ~to_:(cid "raw") producer);
    Alcotest.fail "collision accepted"
  with Invalid_argument _ -> ()

let test_connect () =
  let m =
    Spi.Compose.connect ~left:producer ~right:consumer
      ~joins:[ (cid "mid", cid "feed") ]
  in
  Alcotest.(check int) "two processes" 2 (List.length (Spi.Model.processes m));
  Alcotest.(check int) "three channels" 3 (List.length (Spi.Model.channels m));
  (* data flows end to end through the fused channel *)
  let stimuli =
    List.init 3 (fun i ->
        { Sim.Engine.at = 1 + i; channel = cid "raw"; token = Spi.Token.make ~payload:i () })
  in
  let result = Sim.Engine.run ~stimuli m in
  Alcotest.(check int) "delivered" 3
    (List.length (Sim.Trace.tokens_produced_on (cid "done") result.Sim.Engine.trace))

let test_connect_checks () =
  (* joining on a channel that already has a reader is rejected *)
  (try
     ignore
       (Spi.Compose.connect ~left:producer ~right:consumer
          ~joins:[ (cid "raw", cid "feed") ]);
     Alcotest.fail "read channel accepted as join source"
   with Spi.Compose.Compose_error _ -> ());
  (* joining into a written channel is rejected *)
  (try
     ignore
       (Spi.Compose.connect ~left:producer ~right:consumer
          ~joins:[ (cid "mid", cid "done") ]);
     Alcotest.fail "written channel accepted as join target"
   with Spi.Compose.Compose_error _ -> ());
  try
    ignore
      (Spi.Compose.connect ~left:producer ~right:consumer
         ~joins:[ (cid "ghost", cid "feed") ]);
    Alcotest.fail "unknown channel accepted"
  with Spi.Compose.Compose_error _ -> ()

let test_connect_with_prefix () =
  (* two copies of the same library block, isolated by prefixes *)
  let a = Spi.Compose.prefix "a" producer in
  let b = Spi.Compose.prefix "b" consumer in
  let m =
    Spi.Compose.connect ~left:a ~right:b ~joins:[ (cid "a.mid", cid "b.feed") ]
  in
  Alcotest.(check bool) "valid" true (List.length (Spi.Model.processes m) = 2)

let suite =
  ( "compose",
    [
      Alcotest.test_case "prefix" `Quick test_prefix;
      Alcotest.test_case "rename channel" `Quick test_rename_channel;
      Alcotest.test_case "connect" `Quick test_connect;
      Alcotest.test_case "connect checks" `Quick test_connect_checks;
      Alcotest.test_case "connect with prefix" `Quick test_connect_with_prefix;
    ] )
