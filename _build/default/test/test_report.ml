(* Tests for the synthesis report. *)

module F2 = Paper.Figure2
module V = Variants

let models () =
  List.map
    (fun (clusters, model) ->
      let name =
        match clusters with
        | [ c ] when Spi.Ids.Cluster_id.to_string c = "g1" -> "Application 1"
        | _ -> "Application 2"
      in
      (name, model))
    (V.Flatten.applications F2.system)

let test_report_contents () =
  let r =
    Synth.Report.build ~models:(models ()) F2.table1_tech [ F2.app1; F2.app2 ]
  in
  (match r.Synth.Report.optimal with
  | Some s -> Alcotest.(check int) "optimal 41" 41 s.Synth.Explore.cost.Synth.Cost.total
  | None -> Alcotest.fail "optimal expected");
  (match r.Synth.Report.superposition with
  | Some s -> Alcotest.(check int) "superposition 57" 57 s.Synth.Superpose.cost.Synth.Cost.total
  | None -> Alcotest.fail "superposition expected");
  Alcotest.(check bool) "frontier nonempty" true (r.Synth.Report.frontier <> []);
  Alcotest.(check bool) "speedup" true (r.Synth.Report.design_time_speedup > 1.0);
  Alcotest.(check int) "two application sections" 2
    (List.length r.Synth.Report.applications);
  (* the models were attached, so schedules exist... but the optimal
     binding covers synthesis units (cluster:g1), not the flattened
     process ids, so scheduling reports unbound processes — an honest
     signal that Table 1's granularity is cluster-atomic *)
  List.iter
    (fun ar ->
      match ar.Synth.Report.schedule with
      | Some (Error (Synth.List_schedule.Unbound _)) -> ()
      | Some (Ok _) -> Alcotest.fail "expected unbound under unit granularity"
      | Some (Error e) ->
        Alcotest.failf "unexpected error %a" Synth.List_schedule.pp_error e
      | None -> Alcotest.fail "schedule section expected")
    r.Synth.Report.applications

let test_report_renders () =
  let r = Synth.Report.build F2.table1_tech [ F2.app1; F2.app2 ] in
  let text = Format.asprintf "%a" Synth.Report.pp r in
  let contains needle =
    let n = String.length needle and h = String.length text in
    let rec go i = i + n <= h && (String.sub text i n = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "header" true (contains "Synthesis report");
  Alcotest.(check bool) "optimal line" true (contains "total=41");
  Alcotest.(check bool) "superposition line" true (contains "superposition baseline: total 57");
  Alcotest.(check bool) "pareto section" true (contains "pareto frontier")

let test_report_infeasible () =
  let pid = Spi.Ids.Process_id.of_string in
  let tech = Synth.Tech.make [ (pid "x", Synth.Tech.sw_only ~load:500) ] in
  let r = Synth.Report.build tech [ Synth.App.make "a" [ pid "x" ] ] in
  Alcotest.(check bool) "no optimal" true (Option.is_none r.Synth.Report.optimal);
  let text = Format.asprintf "%a" Synth.Report.pp r in
  Alcotest.(check bool) "renders anyway" true (String.length text > 0)

let suite =
  ( "report",
    [
      Alcotest.test_case "contents" `Quick test_report_contents;
      Alcotest.test_case "renders" `Quick test_report_renders;
      Alcotest.test_case "infeasible" `Quick test_report_infeasible;
    ] )
