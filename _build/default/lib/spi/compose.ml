let prefix name model =
  let pre s = name ^ "." ^ s in
  let rename_cid cid = Ids.Channel_id.of_string (pre (Ids.Channel_id.to_string cid)) in
  let processes =
    List.map
      (fun p ->
        Process.rename
          (Ids.Process_id.of_string (pre (Ids.Process_id.to_string (Process.id p))))
          (Process.map_channels rename_cid p))
      (Model.processes model)
  in
  let channels =
    List.map (fun c -> Chan.rename (rename_cid (Chan.id c)) c) (Model.channels model)
  in
  Model.build_exn ~processes ~channels

let rename_channel ~from_ ~to_ model =
  if Option.is_none (Model.find_channel from_ model) then
    invalid_arg
      (Format.asprintf "Compose.rename_channel: unknown channel %a"
         Ids.Channel_id.pp from_);
  if Option.is_some (Model.find_channel to_ model) then
    invalid_arg
      (Format.asprintf "Compose.rename_channel: %a already exists"
         Ids.Channel_id.pp to_);
  let rename cid = if Ids.Channel_id.equal cid from_ then to_ else cid in
  let processes =
    List.map (fun p -> Process.map_channels rename p) (Model.processes model)
  in
  let channels =
    List.map
      (fun c ->
        if Ids.Channel_id.equal (Chan.id c) from_ then Chan.rename to_ c else c)
      (Model.channels model)
  in
  Model.build_exn ~processes ~channels

exception Compose_error of string

let error fmt = Format.kasprintf (fun m -> raise (Compose_error m)) fmt

let connect ~left ~right ~joins =
  List.iter
    (fun (l, r) ->
      if Option.is_none (Model.find_channel l left) then
        error "left model has no channel %a" Ids.Channel_id.pp l;
      if Option.is_none (Model.find_channel r right) then
        error "right model has no channel %a" Ids.Channel_id.pp r;
      if Option.is_some (Model.reader_of l left) then
        error "channel %a already has a reader on the left" Ids.Channel_id.pp l;
      if Option.is_some (Model.writer_of r right) then
        error "channel %a already has a writer on the right" Ids.Channel_id.pp r)
    joins;
  (* rename each right-side join channel to its left-side name, dropping
     the right declaration in favour of the left one *)
  let rename cid =
    match List.find_opt (fun (_, r) -> Ids.Channel_id.equal r cid) joins with
    | Some (l, _) -> l
    | None -> cid
  in
  let right_processes =
    List.map (fun p -> Process.map_channels rename p) (Model.processes right)
  in
  let right_channels =
    List.filter
      (fun c ->
        not
          (List.exists
             (fun (_, r) -> Ids.Channel_id.equal r (Chan.id c))
             joins))
      (Model.channels right)
  in
  Model.build_exn
    ~processes:(Model.processes left @ right_processes)
    ~channels:(Model.channels left @ right_channels)
