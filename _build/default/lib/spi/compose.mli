(** Model composition.

    Larger SPI models assemble from pieces: a library block is prefixed
    to avoid name clashes, placed next to the host model, and its
    boundary channels are connected to the host's.  These utilities
    implement exactly that — {!prefix} for namespace isolation,
    {!connect} for gluing a producer model to a consumer model along
    matching boundary channels. *)

val prefix : string -> Model.t -> Model.t
(** Renames every process and channel to ["<prefix>.<name>"].  The
    result is structurally identical. *)

val rename_channel :
  from_:Ids.Channel_id.t -> to_:Ids.Channel_id.t -> Model.t -> Model.t
(** Renames one channel everywhere (declaration, rates, activation
    guards).
    @raise Invalid_argument when [from_] is absent or [to_] already
    exists. *)

exception Compose_error of string

val connect :
  left:Model.t ->
  right:Model.t ->
  joins:(Ids.Channel_id.t * Ids.Channel_id.t) list ->
  Model.t
(** [connect ~left ~right ~joins] places both models side by side and
    fuses each pair [(l, r)] of [joins] into one channel named [l]: the
    tokens [left] produces on [l] become [right]'s input that was
    declared as [r].  Requirements, checked before fusing: [l] must be
    unread in [left], [r] unwritten in [right], and the two ids distinct
    model-wide after fusion.  [r]'s declaration is dropped in favour of
    [l]'s (capacity and initial tokens follow the producer side).
    @raise Compose_error when a requirement fails;
    @raise Invalid_argument when the fused model is structurally
    invalid (e.g. remaining name clashes — prefix one side first). *)
