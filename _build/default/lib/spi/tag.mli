(** Virtual mode tags.

    Processes attach tags to produced tokens to expose the content
    information that activation rules and cluster selection functions
    test (the SPI model otherwise abstracts data to token counts). *)

type t

val make : string -> t
(** @raise Invalid_argument on the empty string. *)

val name : t -> string
val equal : t -> t -> bool
val compare : t -> t -> int
val pp : Format.formatter -> t -> unit

module Set : sig
  include Set.S with type elt = t

  val pp : Format.formatter -> t -> unit
  (** Prints [{a, b}]. *)
end

val set_of_list : string list -> Set.t
