type t = {
  name : string;
  from_ : Ids.Process_id.t;
  to_ : Ids.Process_id.t;
  bound : int;
}

let latency_path ~name ~from_ ~to_ ~bound = { name; from_; to_; bound }

type outcome =
  | Satisfied of { worst : int; slack : int }
  | Violated of { worst : int; excess : int }
  | Unreachable
  | Cyclic of Ids.Process_id.t list

module T = Graphlib.Traverse.Make (Model.Graph)

(* Restrict the bipartite graph to the nodes lying on some path from
   [from_] to [to_]: the intersection of the forward-reachable set of
   [from_] with the backward-reachable set of [to_].  Within that
   restriction [from_] is the unique source, so the longest-path weights
   at [to_] give the worst-case accumulated latency. *)
let check ~latency_of model c =
  let g = Model.to_graph model in
  let src = Model.P c.from_ and dst = Model.P c.to_ in
  if not (Model.Graph.mem_node src g && Model.Graph.mem_node dst g) then
    Unreachable
  else
    let forward = T.reachable src g in
    let backward = T.reachable dst (Model.Graph.transpose g) in
    let relevant = Model.Graph.Node_set.inter forward backward in
    if not (Model.Graph.Node_set.mem dst relevant) then Unreachable
    else
      let restricted =
        Model.Graph.fold_edges
          (fun u v acc ->
            if
              Model.Graph.Node_set.mem u relevant
              && Model.Graph.Node_set.mem v relevant
            then Model.Graph.add_edge u v acc
            else acc)
          g
          (Model.Graph.Node_set.fold Model.Graph.add_node relevant
             Model.Graph.empty)
      in
      let weight = function
        | Model.P pid -> latency_of pid
        | Model.C _ -> 0
      in
      match T.longest_path_weights ~weight restricted with
      | Error cycle ->
        let procs =
          List.filter_map
            (function Model.P pid -> Some pid | Model.C _ -> None)
            cycle
        in
        Cyclic procs
      | Ok weights ->
        let worst = Model.Graph.Node_map.find dst weights in
        if worst <= c.bound then Satisfied { worst; slack = c.bound - worst }
        else Violated { worst; excess = worst - c.bound }

let check_all ~latency_of model cs =
  List.map (fun c -> (c, check ~latency_of model c)) cs

let all_satisfied outcomes =
  List.for_all
    (fun (_, o) -> match o with Satisfied _ -> true | Violated _ | Unreachable | Cyclic _ -> false)
    outcomes

let pp_outcome ppf = function
  | Satisfied { worst; slack } ->
    Format.fprintf ppf "satisfied (worst %d, slack %d)" worst slack
  | Violated { worst; excess } ->
    Format.fprintf ppf "VIOLATED (worst %d, excess %d)" worst excess
  | Unreachable -> Format.pp_print_string ppf "unreachable"
  | Cyclic procs ->
    Format.fprintf ppf "cyclic through %a"
      (Format.pp_print_list ~pp_sep:Format.pp_print_space Ids.Process_id.pp)
      procs

let pp ppf c =
  Format.fprintf ppf "%s: %a ~> %a within %d" c.name Ids.Process_id.pp c.from_
    Ids.Process_id.pp c.to_ c.bound
