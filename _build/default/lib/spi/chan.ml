type kind = Queue | Register

type t = {
  id : Ids.Channel_id.t;
  kind : kind;
  capacity : int option;
  initial : Token.t list;
}

let queue ?(initial = []) ?capacity id =
  (match capacity with
  | Some c when c < 1 -> invalid_arg "Chan.queue: capacity < 1"
  | Some c when List.length initial > c ->
    invalid_arg "Chan.queue: initial contents exceed capacity"
  | Some _ | None -> ());
  { id; kind = Queue; capacity; initial }

let register ?initial id =
  { id; kind = Register; capacity = Some 1; initial = Option.to_list initial }

let id c = c.id
let rename id c = { c with id }
let kind c = c.kind
let capacity c = c.capacity
let initial c = c.initial

let pp_kind ppf = function
  | Queue -> Format.pp_print_string ppf "queue"
  | Register -> Format.pp_print_string ppf "register"

let pp ppf c =
  Format.fprintf ppf "%a:%a" Ids.Channel_id.pp c.id pp_kind c.kind
