(** Abstract data tokens.

    SPI abstracts communicated data to its amount; a token carries only a
    tag set (content information made visible to activation and cluster
    selection functions) plus an optional payload identifier that the
    simulator's observers use to follow individual tokens (e.g. image
    numbers in the video example).  The payload never influences model
    semantics. *)

type t

val plain : t
(** A token with no tags and no payload. *)

val make : ?tags:Tag.Set.t -> ?payload:int -> unit -> t
val tags : t -> Tag.Set.t
val payload : t -> int option
val with_tags : Tag.Set.t -> t -> t
val add_tag : Tag.t -> t -> t
val has_tag : Tag.t -> t -> bool
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit

val replicate : int -> t -> t list
(** [replicate n tok] is [n] copies of [tok]. @raise Invalid_argument if
    [n < 0]. *)
