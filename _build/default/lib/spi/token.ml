type t = { tags : Tag.Set.t; payload : int option }

let plain = { tags = Tag.Set.empty; payload = None }
let make ?(tags = Tag.Set.empty) ?payload () = { tags; payload }
let tags t = t.tags
let payload t = t.payload
let with_tags tags t = { t with tags }
let add_tag tag t = { t with tags = Tag.Set.add tag t.tags }
let has_tag tag t = Tag.Set.mem tag t.tags

let equal a b =
  Tag.Set.equal a.tags b.tags && Option.equal Int.equal a.payload b.payload

let pp ppf t =
  match t.payload with
  | None -> Format.fprintf ppf "tok%a" Tag.Set.pp t.tags
  | Some p -> Format.fprintf ppf "tok#%d%a" p Tag.Set.pp t.tags

let replicate n tok =
  if n < 0 then invalid_arg "Token.replicate: negative count"
  else List.init n (fun _ -> tok)
