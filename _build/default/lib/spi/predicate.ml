type atom =
  | Num_at_least of Ids.Channel_id.t * int
  | First_has_tag of Ids.Channel_id.t * Tag.t

type t =
  | True
  | False
  | Atom of atom
  | And of t * t
  | Or of t * t
  | Not of t

type view = {
  tokens_available : Ids.Channel_id.t -> int;
  first_tags : Ids.Channel_id.t -> Tag.Set.t option;
}

let num_at_least chan k = Atom (Num_at_least (chan, k))
let has_tag chan tag = Atom (First_has_tag (chan, tag))

let conj = function
  | [] -> True
  | p :: ps -> List.fold_left (fun acc q -> And (acc, q)) p ps

let disj = function
  | [] -> False
  | p :: ps -> List.fold_left (fun acc q -> Or (acc, q)) p ps

let eval_atom view = function
  | Num_at_least (chan, k) -> view.tokens_available chan >= k
  | First_has_tag (chan, tag) -> (
    match view.first_tags chan with
    | None -> false
    | Some tags -> Tag.Set.mem tag tags)

let rec eval view = function
  | True -> true
  | False -> false
  | Atom a -> eval_atom view a
  | And (p, q) -> eval view p && eval view q
  | Or (p, q) -> eval view p || eval view q
  | Not p -> not (eval view p)

let atom_channel = function
  | Num_at_least (chan, _) | First_has_tag (chan, _) -> chan

let rec channels = function
  | True | False -> Ids.Channel_id.Set.empty
  | Atom a -> Ids.Channel_id.Set.singleton (atom_channel a)
  | And (p, q) | Or (p, q) ->
    Ids.Channel_id.Set.union (channels p) (channels q)
  | Not p -> channels p

let rec tags_tested = function
  | True | False | Atom (Num_at_least _) -> Tag.Set.empty
  | Atom (First_has_tag (_, tag)) -> Tag.Set.singleton tag
  | And (p, q) | Or (p, q) -> Tag.Set.union (tags_tested p) (tags_tested q)
  | Not p -> tags_tested p

let map_atom_channels f = function
  | Num_at_least (chan, k) -> Num_at_least (f chan, k)
  | First_has_tag (chan, tag) -> First_has_tag (f chan, tag)

let rec map_channels f = function
  | True -> True
  | False -> False
  | Atom a -> Atom (map_atom_channels f a)
  | And (p, q) -> And (map_channels f p, map_channels f q)
  | Or (p, q) -> Or (map_channels f p, map_channels f q)
  | Not p -> Not (map_channels f p)

(* A literal is an atom or a negated atom; [conj_literals] is [None] when
   the predicate is not a pure conjunction of literals. *)
type literal = Pos of atom | Neg of atom

let rec conj_literals = function
  | True -> Some []
  | False -> None
  | Atom a -> Some [ Pos a ]
  | Not (Atom a) -> Some [ Neg a ]
  | And (p, q) -> (
    match conj_literals p, conj_literals q with
    | Some ls, Some ms -> Some (ls @ ms)
    | None, _ | _, None -> None)
  | Or _ | Not _ -> None

let literals_contradict a b =
  match a, b with
  | Pos (Num_at_least (c1, k)), Neg (Num_at_least (c2, j))
  | Neg (Num_at_least (c2, j)), Pos (Num_at_least (c1, k)) ->
    (* [num >= k] and [not (num >= j)] contradict when j <= k. *)
    Ids.Channel_id.equal c1 c2 && j <= k
  | Pos (First_has_tag (c1, t1)), Neg (First_has_tag (c2, t2))
  | Neg (First_has_tag (c2, t2)), Pos (First_has_tag (c1, t1)) ->
    Ids.Channel_id.equal c1 c2 && Tag.equal t1 t2
  | Pos _, Pos _ | Neg _, Neg _ -> false
  | Pos (Num_at_least _), Neg (First_has_tag _)
  | Neg (First_has_tag _), Pos (Num_at_least _)
  | Pos (First_has_tag _), Neg (Num_at_least _)
  | Neg (Num_at_least _), Pos (First_has_tag _) -> false

let syntactically_disjoint p q =
  match conj_literals p, conj_literals q with
  | Some ls, Some ms ->
    List.exists (fun l -> List.exists (literals_contradict l) ms) ls
  | None, _ | _, None -> false

let rec pp ppf = function
  | True -> Format.pp_print_string ppf "true"
  | False -> Format.pp_print_string ppf "false"
  | Atom (Num_at_least (chan, k)) ->
    Format.fprintf ppf "%a#num>=%d" Ids.Channel_id.pp chan k
  | Atom (First_has_tag (chan, tag)) ->
    Format.fprintf ppf "'%a'@@%a" Tag.pp tag Ids.Channel_id.pp chan
  | And (p, q) -> Format.fprintf ppf "(%a /\\ %a)" pp p pp q
  | Or (p, q) -> Format.fprintf ppf "(%a \\/ %a)" pp p pp q
  | Not p -> Format.fprintf ppf "~%a" pp p
