type scenario = {
  scenario_name : string;
  assignment : (Ids.Process_id.t * Ids.Mode_id.t) list;
}

let scenario scenario_name assignment = { scenario_name; assignment }

type t = scenario list

let make scenarios =
  if scenarios = [] then invalid_arg "Correlation.make: no scenarios";
  let seen = Hashtbl.create 8 in
  List.iter
    (fun s ->
      if Hashtbl.mem seen s.scenario_name then
        invalid_arg
          (Format.sprintf "Correlation: duplicate scenario %s" s.scenario_name);
      Hashtbl.add seen s.scenario_name ();
      ignore
        (List.fold_left
           (fun acc (pid, _) ->
             if Ids.Process_id.Set.mem pid acc then
               invalid_arg
                 (Format.asprintf
                    "Correlation: scenario %s assigns %a twice" s.scenario_name
                    Ids.Process_id.pp pid)
             else Ids.Process_id.Set.add pid acc)
           Ids.Process_id.Set.empty s.assignment))
    scenarios;
  scenarios

let scenarios t = t

type error =
  | Unknown_process of string * Ids.Process_id.t
  | Unknown_mode of string * Ids.Process_id.t * Ids.Mode_id.t

let pp_error ppf = function
  | Unknown_process (s, p) ->
    Format.fprintf ppf "scenario %s: unknown process %a" s Ids.Process_id.pp p
  | Unknown_mode (s, p, m) ->
    Format.fprintf ppf "scenario %s: process %a has no mode %a" s
      Ids.Process_id.pp p Ids.Mode_id.pp m

let validate_against model t =
  List.concat_map
    (fun s ->
      List.filter_map
        (fun (pid, mid) ->
          match Model.find_process pid model with
          | None -> Some (Unknown_process (s.scenario_name, pid))
          | Some proc ->
            if Option.is_none (Process.find_mode mid proc) then
              Some (Unknown_mode (s.scenario_name, pid, mid))
            else None)
        s.assignment)
    t

let scenario_latency_of model s pid =
  let proc = Model.get_process pid model in
  match List.find_opt (fun (p, _) -> Ids.Process_id.equal p pid) s.assignment with
  | None -> Interval.hi (Process.latency_hull proc)
  | Some (_, mid) -> (
    match Process.find_mode mid proc with
    | Some mode -> Interval.hi (Mode.latency mode)
    | None -> Interval.hi (Process.latency_hull proc))

let check model t constraint_ =
  List.map
    (fun s ->
      ( s.scenario_name,
        Constraint_.check ~latency_of:(scenario_latency_of model s) model
          constraint_ ))
    t

let outcome_severity = function
  | Constraint_.Cyclic _ -> 3
  | Constraint_.Violated _ -> 2
  | Constraint_.Satisfied _ -> 1
  | Constraint_.Unreachable -> 0

let outcome_worst = function
  | Constraint_.Satisfied { worst; _ } | Constraint_.Violated { worst; _ } ->
    worst
  | Constraint_.Unreachable | Constraint_.Cyclic _ -> 0

let worst_case model t constraint_ =
  match check model t constraint_ with
  | [] -> Constraint_.Unreachable
  | (_, first) :: rest ->
    List.fold_left
      (fun acc (_, o) ->
        let c = Int.compare (outcome_severity o) (outcome_severity acc) in
        if c > 0 then o
        else if c = 0 && outcome_worst o > outcome_worst acc then o
        else acc)
      first rest

let hull_outcome model constraint_ =
  let latency_of pid =
    Interval.hi (Process.latency_hull (Model.get_process pid model))
  in
  Constraint_.check ~latency_of model constraint_

(* positive First_has_tag atoms of a guard, as (channel, tag) pairs;
   conservative: only conjunctive structure is traversed *)
let rec required_tags = function
  | Predicate.Atom (Predicate.First_has_tag (c, t)) -> [ (c, t) ]
  | Predicate.And (p, q) -> required_tags p @ required_tags q
  | Predicate.Atom (Predicate.Num_at_least _)
  | Predicate.True | Predicate.False | Predicate.Or _ | Predicate.Not _ -> []

let infer ~channel model =
  let tags = Hashtbl.create 8 in
  List.iter
    (fun proc ->
      List.iter
        (fun rule ->
          List.iter
            (fun (c, t) ->
              if Ids.Channel_id.equal c channel then
                let key = Tag.name t in
                let assignments =
                  Option.value ~default:[] (Hashtbl.find_opt tags key)
                in
                Hashtbl.replace tags key
                  ((Process.id proc, Activation.target_mode rule) :: assignments))
            (required_tags (Activation.guard rule)))
        (Activation.rules (Process.activation proc)))
    (Model.processes model);
  let entries =
    Hashtbl.fold (fun tag assignment acc -> (tag, assignment) :: acc) tags []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  in
  if List.length entries < 2 then None
  else
    Some
      (make
         (List.map
            (fun (tag, assignment) ->
              (* a process may appear once per scenario: keep the first
                 rule's mode (rule order = priority) *)
              let deduped =
                List.fold_left
                  (fun acc (pid, mid) ->
                    if List.mem_assoc pid acc then acc else (pid, mid) :: acc)
                  []
                  (List.rev assignment)
              in
              scenario ("tag:" ^ tag) (List.rev deduped))
            entries))
