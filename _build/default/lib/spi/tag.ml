type t = string

let make s = if String.length s = 0 then invalid_arg "Tag.make: empty tag" else s
let name t = t
let equal = String.equal
let compare = String.compare
let pp = Format.pp_print_string

module Set = struct
  include Set.Make (String)

  let pp ppf set =
    Format.fprintf ppf "{%s}" (String.concat ", " (elements set))
end

let set_of_list names = Set.of_list (List.map make names)
