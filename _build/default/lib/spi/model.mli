(** The SPI model graph.

    A system is a set of concurrent processes communicating via
    unidirectional channels; the model is a directed bipartite graph of
    process nodes and channel nodes (paper, Section 2).  This module
    assembles process and channel declarations, validates the structural
    rules (each channel has at most one writer and one reader; every
    referenced channel is declared; ids are unique) and offers graph
    views and queries used by analysis, extraction and simulation. *)

type node = P of Ids.Process_id.t | C of Ids.Channel_id.t

module Node : Graphlib.Digraph.ORDERED with type t = node
module Graph : Graphlib.Digraph.S with type node = node

type error =
  | Duplicate_process of Ids.Process_id.t
  | Duplicate_channel of Ids.Channel_id.t
  | Unknown_channel of Ids.Process_id.t * Ids.Channel_id.t
      (** A process reads or writes a channel that is not declared. *)
  | Multiple_writers of Ids.Channel_id.t * Ids.Process_id.t list
  | Multiple_readers of Ids.Channel_id.t * Ids.Process_id.t list

val pp_error : Format.formatter -> error -> unit

type t

val build : processes:Process.t list -> channels:Chan.t list -> (t, error list) result
val build_exn : processes:Process.t list -> channels:Chan.t list -> t
(** @raise Invalid_argument with rendered errors. *)

val processes : t -> Process.t list
val channels : t -> Chan.t list
val find_process : Ids.Process_id.t -> t -> Process.t option
val find_channel : Ids.Channel_id.t -> t -> Chan.t option

val get_process : Ids.Process_id.t -> t -> Process.t
(** @raise Not_found *)

val get_channel : Ids.Channel_id.t -> t -> Chan.t
(** @raise Not_found *)

val writer_of : Ids.Channel_id.t -> t -> Ids.Process_id.t option
val reader_of : Ids.Channel_id.t -> t -> Ids.Process_id.t option

val unread_channels : t -> Ids.Channel_id.Set.t
(** Channels with no reading process (model-boundary outputs). *)

val unwritten_channels : t -> Ids.Channel_id.Set.t
(** Channels with no writing process (model-boundary inputs: they can
    only deliver their initial tokens or tokens injected by the
    simulator's environment scripts). *)

val source_processes : t -> Ids.Process_id.Set.t
(** Processes with no input channels. *)

val to_graph : t -> Graph.t
(** The bipartite graph: edge [P p -> C c] when [p] writes [c] and
    [C c -> P p] when [p] reads [c]. *)

val replace_process : Process.t -> t -> t
(** Replaces the process with the same id.
    @raise Invalid_argument if absent or if the result fails validation. *)

val union : t -> t -> (t, error list) result
(** Disjoint union; shared channel ids must be declared identically in at
    most one side's processes' referencing (validation reruns). *)

val node_label : node -> string
val pp_stats : Format.formatter -> t -> unit
