type t = { channels : Chan.t list; processes : Process.t list }
type latency = int * int

let fixed n = (n, n)
let empty = { channels = []; processes = [] }
let cid = Ids.Channel_id.of_string
let pid = Ids.Process_id.of_string

let queue ?capacity ?(initial = 0) name b =
  let chan =
    Chan.queue ?capacity
      ~initial:(Token.replicate initial Token.plain)
      (cid name)
  in
  { b with channels = chan :: b.channels }

let state_queue name ~tag b =
  let token = Token.make ~tags:(Tag.Set.singleton (Tag.make tag)) () in
  { b with channels = Chan.queue ~initial:[ token ] (cid name) :: b.channels }

let register name b =
  { b with channels = Chan.register (cid name) :: b.channels }

let interval_of (lo, hi) = Interval.make lo hi

let worker name ~latency ~consumes ~produces b =
  let proc =
    Process.simple
      ~latency:(interval_of latency)
      ~consumes:(List.map (fun (c, n) -> (cid c, Interval.point n)) consumes)
      ~produces:
        (List.map (fun (c, n) -> (cid c, Mode.produce (Interval.point n))) produces)
      (pid name)
  in
  { b with processes = proc :: b.processes }

let stage name ~latency ~from ~into b =
  worker name ~latency ~consumes:[ (from, 1) ] ~produces:[ (into, 1) ] b

let source name ~latency ~into ?(count = 1) () b =
  worker name ~latency ~consumes:[] ~produces:[ (into, count) ] b

let sink name ~latency ~from ?(count = 1) () b =
  worker name ~latency ~consumes:[ (from, count) ] ~produces:[] b

let add_process proc b = { b with processes = proc :: b.processes }
let add_channel chan b = { b with channels = chan :: b.channels }

let build b =
  Model.build ~processes:(List.rev b.processes) ~channels:(List.rev b.channels)

let build_exn b =
  Model.build_exn ~processes:(List.rev b.processes) ~channels:(List.rev b.channels)
