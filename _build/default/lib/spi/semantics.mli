(** Untimed firing semantics (the SPI update rules).

    A state maps every channel to its contents.  Firing a process in a
    mode consumes tokens from the mode's input channels and produces
    tagged tokens on its output channels.  Queues pop from the front
    (destructive read); registers are sampled without removal and
    overwritten on production (destructive write).  The timed simulator
    in [lib/sim] drives these rules; they are also exercised directly by
    unit and property tests. *)

type state

type overflow =
  | Reject  (** raise {!Channel_overflow} when a bounded queue overflows *)
  | Drop_newest  (** silently drop tokens that do not fit *)

exception Channel_overflow of Ids.Channel_id.t

val initial : Model.t -> state
(** Every channel holds its declared initial tokens. *)

val tokens_available : state -> Ids.Channel_id.t -> int
(** Queue: queue length.  Register: 1 when it holds a token, else 0.
    Unknown channels hold 0 tokens. *)

val first_tags : state -> Ids.Channel_id.t -> Tag.Set.t option
val first_token : state -> Ids.Channel_id.t -> Token.t option
val contents : state -> Ids.Channel_id.t -> Token.t list
val view : state -> Predicate.view

val inject : ?overflow:overflow -> Model.t -> Ids.Channel_id.t -> Token.t -> state -> state
(** Environment write (used by simulator stimuli).
    @raise Channel_overflow under [Reject] on a full bounded queue. *)

val clear_channel : Ids.Channel_id.t -> state -> state
(** Empties a channel; cluster termination destroys internal buffers
    (paper, Section 4). *)

val enabled_rule : Model.t -> state -> Ids.Process_id.t -> Activation.rule option
(** First activation rule of the process enabled in [state]. *)

val enabled_mode : Model.t -> state -> Ids.Process_id.t -> Mode.t option

(** Record of one execution. *)
type firing = {
  process : Ids.Process_id.t;
  mode : Ids.Mode_id.t;
  consumed : (Ids.Channel_id.t * Token.t list) list;
  produced : (Ids.Channel_id.t * Token.t list) list;
}

val consume :
  ?choose_rate:(Interval.t -> int) ->
  Mode.t ->
  state ->
  state * (Ids.Channel_id.t * Token.t list) list
(** The consumption half of a firing (performed when a process starts
    executing).  The chosen rate is clamped to the tokens available. *)

val produce :
  ?overflow:overflow ->
  ?choose_rate:(Interval.t -> int) ->
  Model.t ->
  Mode.t ->
  inherited_payload:int option ->
  state ->
  state * (Ids.Channel_id.t * Token.t list) list
(** The production half of a firing (performed at completion). *)

val inherited_payload :
  Mode.t -> (Ids.Channel_id.t * Token.t list) list -> int option
(** The payload produced tokens inherit under the mode's payload
    policy, given what the firing consumed. *)

val fire :
  ?overflow:overflow ->
  ?choose_rate:(Interval.t -> int) ->
  Model.t ->
  Ids.Process_id.t ->
  Mode.t ->
  state ->
  state * firing
(** Executes one firing.  [choose_rate] picks the realised value inside
    each rate interval (default: the lower bound for consumption and
    production alike, via {!Interval.lo}); the chosen consumption is
    clamped to the tokens actually available so partially-filled
    channels cannot go negative.
    @raise Channel_overflow under [Reject] on queue overflow. *)

val pp_firing : Format.formatter -> firing -> unit
val total_tokens : state -> int
