lib/spi/chan.ml: Format Ids List Option Token
