lib/spi/chan.mli: Format Ids Token
