lib/spi/semantics.mli: Activation Format Ids Interval Mode Model Predicate Tag Token
