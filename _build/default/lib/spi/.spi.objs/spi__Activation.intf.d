lib/spi/activation.mli: Format Ids Predicate Tag
