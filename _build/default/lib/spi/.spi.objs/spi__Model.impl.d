lib/spi/model.ml: Chan Format Graphlib Ids List Process
