lib/spi/tag.ml: Format List Set String
