lib/spi/tag.mli: Format Set
