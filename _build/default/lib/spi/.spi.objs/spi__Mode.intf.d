lib/spi/mode.mli: Format Ids Interval Tag
