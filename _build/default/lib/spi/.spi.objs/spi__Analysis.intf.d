lib/spi/analysis.mli: Format Ids Model
