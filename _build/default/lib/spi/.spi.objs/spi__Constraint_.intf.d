lib/spi/constraint_.mli: Format Ids Model
