lib/spi/process.ml: Activation Format Ids Interval List Mode Predicate
