lib/spi/ids.mli: Format Map Set
