lib/spi/token.ml: Format Int List Option Tag
