lib/spi/builder.mli: Chan Model Process
