lib/spi/builder.ml: Chan Ids Interval List Mode Model Process Tag Token
