lib/spi/mode.ml: Format Ids Interval List Tag
