lib/spi/constraint_.ml: Format Graphlib Ids List Model
