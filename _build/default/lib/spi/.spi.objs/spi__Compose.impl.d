lib/spi/compose.ml: Chan Format Ids List Model Option Process
