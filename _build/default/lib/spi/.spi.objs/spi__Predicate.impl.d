lib/spi/predicate.ml: Format Ids List Tag
