lib/spi/token.mli: Format Tag
