lib/spi/correlation.ml: Activation Constraint_ Format Hashtbl Ids Int Interval List Mode Model Option Predicate Process String Tag
