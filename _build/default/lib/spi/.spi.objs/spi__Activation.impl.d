lib/spi/activation.ml: Format Hashtbl Ids List Predicate Tag
