lib/spi/compose.mli: Ids Model
