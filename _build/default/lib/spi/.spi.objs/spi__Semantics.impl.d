lib/spi/semantics.ml: Activation Chan Format Ids Interval List Mode Model Option Predicate Process Token
