lib/spi/predicate.mli: Format Ids Tag
