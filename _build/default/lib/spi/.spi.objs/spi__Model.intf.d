lib/spi/model.mli: Chan Format Graphlib Ids Process
