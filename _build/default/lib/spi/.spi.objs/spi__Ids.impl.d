lib/spi/ids.ml: Format Map Set String
