lib/spi/correlation.mli: Constraint_ Format Ids Model
