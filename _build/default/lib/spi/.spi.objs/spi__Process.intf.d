lib/spi/process.mli: Activation Format Ids Interval Mode
