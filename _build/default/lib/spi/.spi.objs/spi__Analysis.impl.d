lib/spi/analysis.ml: Chan Format Graphlib Hashtbl Ids Interval List Mode Model Option Process
