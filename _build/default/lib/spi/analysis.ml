type balance =
  | Balanced
  | Accumulating of { surplus : int }
  | Starving of { deficit : int }
  | Boundary

let channel_balance model cid =
  match Model.writer_of cid model, Model.reader_of cid model with
  | None, _ | _, None -> Boundary
  | Some wpid, Some rpid ->
    let produced =
      Process.production_hull (Model.get_process wpid model) cid
    in
    let consumed =
      Process.consumption_hull (Model.get_process rpid model) cid
    in
    if Interval.overlaps produced consumed then Balanced
    else if Interval.lo produced > Interval.hi consumed then
      Accumulating { surplus = Interval.lo produced - Interval.hi consumed }
    else Starving { deficit = Interval.lo consumed - Interval.hi produced }

let balance_report model =
  List.map
    (fun chan ->
      let cid = Chan.id chan in
      (cid, channel_balance model cid))
    (Model.channels model)

let pp_balance ppf = function
  | Balanced -> Format.pp_print_string ppf "balanced"
  | Accumulating { surplus } -> Format.fprintf ppf "accumulating (+%d/exec)" surplus
  | Starving { deficit } -> Format.fprintf ppf "starving (-%d/exec)" deficit
  | Boundary -> Format.pp_print_string ppf "boundary"

module Pnode = struct
  type t = Ids.Process_id.t

  let compare = Ids.Process_id.compare
  let pp = Ids.Process_id.pp
end

module Pgraph = Graphlib.Digraph.Make (Pnode)
module Pscc = Graphlib.Scc.Make (Pgraph)
module Ptraverse = Graphlib.Traverse.Make (Pgraph)

(* Process-to-process dependency graph: [p -> q] when a channel written
   by [p] is read by [q]. *)
let process_graph model =
  List.fold_left
    (fun g proc ->
      let pid = Process.id proc in
      let g = Pgraph.add_node pid g in
      Ids.Channel_id.Set.fold
        (fun cid g ->
          match Model.reader_of cid model with
          | Some reader -> Pgraph.add_edge pid reader g
          | None -> g)
        (Process.outputs proc) g)
    Pgraph.empty (Model.processes model)

let deadlock_candidates model =
  let comps = Pscc.components (process_graph model) in
  let members comp pid = List.exists (Ids.Process_id.equal pid) comp in
  let candidate comp =
    let intra_channels =
      List.filter
        (fun chan ->
          let cid = Chan.id chan in
          match Model.writer_of cid model, Model.reader_of cid model with
          | Some w, Some r -> members comp w && members comp r
          | _, None | None, _ -> false)
        (Model.channels model)
    in
    let nontrivial =
      match comp with
      | [] -> false
      | [ _ ] -> intra_channels <> []
      | _ :: _ :: _ -> true
    in
    nontrivial
    && List.for_all (fun chan -> Chan.initial chan = []) intra_channels
    && List.for_all
         (fun pid ->
           let proc = Model.get_process pid model in
           (* every mode of the process needs at least one token from an
              intra-component channel: nothing external can start it *)
           List.for_all
             (fun mode ->
               List.exists
                 (fun chan ->
                   let cid = Chan.id chan in
                   Interval.lo (Mode.consumption mode cid) >= 1
                   &&
                   match Model.reader_of cid model with
                   | Some r -> Ids.Process_id.equal r pid
                   | None -> false)
                 intra_channels)
             (Process.modes proc))
         comp
  in
  List.filter candidate comps

(* Upper bounds on process executions and channel occupancy, assuming
   worst-case production, best-case consumption triggering, and no
   token ever removed from the analyzed queue. *)
let execution_bounds ~source_executions model =
  let g = process_graph model in
  match Ptraverse.topological_sort g with
  | Error _ -> None
  | Ok order ->
    let exec = Hashtbl.create 16 in
    let tokens_into cid =
      let initial =
        match Model.find_channel cid model with
        | Some chan -> List.length (Chan.initial chan)
        | None -> 0
      in
      match Model.writer_of cid model with
      | None -> initial + source_executions
      | Some wpid ->
        let w = Model.get_process wpid model in
        let runs =
          match Hashtbl.find_opt exec (Ids.Process_id.to_string wpid) with
          | Some n -> n
          | None -> 0
        in
        initial + (runs * Interval.hi (Process.production_hull w cid))
    in
    List.iter
      (fun pid ->
        let proc = Model.get_process pid model in
        let inputs = Process.inputs proc in
        let bound =
          if Ids.Channel_id.Set.is_empty inputs then source_executions
          else
            Ids.Channel_id.Set.fold
              (fun cid acc ->
                let demand =
                  max 1 (Interval.lo (Process.consumption_hull proc cid))
                in
                max acc (tokens_into cid / demand))
              inputs 0
        in
        Hashtbl.replace exec (Ids.Process_id.to_string pid) bound)
      order;
    Some (exec, tokens_into)

let queue_bound ~source_executions model cid =
  if Option.is_none (Model.find_channel cid model) then None
  else
    match execution_bounds ~source_executions model with
    | None -> None
    | Some (_, tokens_into) -> Some (tokens_into cid)

let queue_bounds ~source_executions model =
  List.map
    (fun chan ->
      let cid = Chan.id chan in
      (cid, queue_bound ~source_executions model cid))
    (Model.channels model)

let bottleneck model =
  List.fold_left
    (fun acc proc ->
      let latency = Interval.hi (Process.latency_hull proc) in
      match acc with
      | Some (_, best) when best >= latency -> acc
      | Some _ | None -> Some (Process.id proc, latency))
    None (Model.processes model)

let min_initiation_interval model =
  match bottleneck model with None -> 0 | Some (_, latency) -> latency
