type rule = { id : Ids.Rule_id.t; guard : Predicate.t; mode : Ids.Mode_id.t }

let rule id ~guard ~mode = { id; guard; mode }
let rule_id r = r.id
let guard r = r.guard
let target_mode r = r.mode

type t = rule list

let make rules =
  let seen = Hashtbl.create 8 in
  List.iter
    (fun r ->
      let key = Ids.Rule_id.to_string r.id in
      if Hashtbl.mem seen key then
        invalid_arg (Format.asprintf "Activation: duplicate rule id %s" key)
      else Hashtbl.add seen key ())
    rules;
  rules

let rules t = t
let empty = []
let is_empty t = t = []
let enabled view t = List.filter (fun r -> Predicate.eval view r.guard) t
let select view t = List.find_opt (fun r -> Predicate.eval view r.guard) t

let channels t =
  List.fold_left
    (fun acc r -> Ids.Channel_id.Set.union acc (Predicate.channels r.guard))
    Ids.Channel_id.Set.empty t

let modes t =
  List.fold_left (fun acc r -> Ids.Mode_id.Set.add r.mode acc)
    Ids.Mode_id.Set.empty t

let tags_tested t =
  List.fold_left
    (fun acc r -> Tag.Set.union acc (Predicate.tags_tested r.guard))
    Tag.Set.empty t

let ambiguous_pairs t =
  let rec pairs = function
    | [] -> []
    | r :: rest ->
      List.filter_map
        (fun r' ->
          if Predicate.syntactically_disjoint r.guard r'.guard then None
          else Some (r.id, r'.id))
        rest
      @ pairs rest
  in
  pairs t

let map_channels f t =
  List.map (fun r -> { r with guard = Predicate.map_channels f r.guard }) t

let map_modes f t = List.map (fun r -> { r with mode = f r.mode }) t
let union a b = make (a @ b)

let pp ppf t =
  let pp_rule ppf r =
    Format.fprintf ppf "%a: %a -> %a" Ids.Rule_id.pp r.id Predicate.pp r.guard
      Ids.Mode_id.pp r.mode
  in
  Format.fprintf ppf "@[<v>%a@]"
    (Format.pp_print_list ~pp_sep:Format.pp_print_cut pp_rule)
    t
