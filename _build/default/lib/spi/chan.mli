(** Channel declarations.

    SPI channels are unidirectional and connect exactly one writer to one
    reader.  A {e queue} is FIFO-ordered with destructive read; a
    {e register} holds the last written token (destructive write,
    non-destructive read). *)

type kind =
  | Queue  (** FIFO, destructive read. *)
  | Register  (** destructive write, sampling read. *)

type t

val queue : ?initial:Token.t list -> ?capacity:int -> Ids.Channel_id.t -> t
(** A FIFO channel, optionally bounded ([capacity]) and pre-loaded with
    [initial] tokens (front of list = first readable).
    @raise Invalid_argument if [capacity < 1] or the initial contents
    exceed it. *)

val register : ?initial:Token.t -> Ids.Channel_id.t -> t
(** A register channel, optionally initialised. *)

val id : t -> Ids.Channel_id.t
val rename : Ids.Channel_id.t -> t -> t
val kind : t -> kind
val capacity : t -> int option
val initial : t -> Token.t list
val pp : Format.formatter -> t -> unit
val pp_kind : Format.formatter -> kind -> unit
