(** Activation functions.

    Each process carries an activation function: an ordered set of rules
    mapping input-token predicates to modes (paper, Section 2).  When a
    rule's predicate holds on the current channel state, the process may
    execute in the rule's mode.  Rule order resolves overlaps: the first
    enabled rule wins (the paper assumes correct models in which at most
    one rule is enabled; {!ambiguous_pairs} reports rule pairs that are
    not syntactically disjoint so model authors can check). *)

type rule

val rule : Ids.Rule_id.t -> guard:Predicate.t -> mode:Ids.Mode_id.t -> rule
val rule_id : rule -> Ids.Rule_id.t
val guard : rule -> Predicate.t
val target_mode : rule -> Ids.Mode_id.t

type t

val make : rule list -> t
(** @raise Invalid_argument on duplicate rule ids. *)

val rules : t -> rule list
val empty : t
val is_empty : t -> bool

val enabled : Predicate.view -> t -> rule list
(** All rules whose guard holds, in declaration order. *)

val select : Predicate.view -> t -> rule option
(** First enabled rule, if any. *)

val channels : t -> Ids.Channel_id.Set.t
val modes : t -> Ids.Mode_id.Set.t
val tags_tested : t -> Tag.Set.t

val ambiguous_pairs : t -> (Ids.Rule_id.t * Ids.Rule_id.t) list
(** Rule pairs not provably disjoint by
    {!Predicate.syntactically_disjoint}. *)

val map_channels : (Ids.Channel_id.t -> Ids.Channel_id.t) -> t -> t
val map_modes : (Ids.Mode_id.t -> Ids.Mode_id.t) -> t -> t
val union : t -> t -> t
val pp : Format.formatter -> t -> unit
