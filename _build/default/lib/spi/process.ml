type t = {
  id : Ids.Process_id.t;
  modes : Mode.t list;
  activation : Activation.t;
}

let default_activation pid modes =
  let rule_for i mode =
    let atoms =
      List.map
        (fun (chan, rate) -> Predicate.num_at_least chan (Interval.hi rate))
        (Mode.consumptions mode)
    in
    Activation.rule
      (Ids.Rule_id.of_string
         (Format.asprintf "%a.auto%d" Ids.Process_id.pp pid i))
      ~guard:(Predicate.conj atoms) ~mode:(Mode.id mode)
  in
  Activation.make (List.mapi rule_for modes)

let validate id modes activation =
  if modes = [] then
    invalid_arg
      (Format.asprintf "Process %a: empty mode list" Ids.Process_id.pp id);
  let mode_ids =
    List.fold_left
      (fun acc m ->
        let mid = Mode.id m in
        if Ids.Mode_id.Set.mem mid acc then
          invalid_arg
            (Format.asprintf "Process %a: duplicate mode %a" Ids.Process_id.pp
               id Ids.Mode_id.pp mid)
        else Ids.Mode_id.Set.add mid acc)
      Ids.Mode_id.Set.empty modes
  in
  Ids.Mode_id.Set.iter
    (fun target ->
      if not (Ids.Mode_id.Set.mem target mode_ids) then
        invalid_arg
          (Format.asprintf "Process %a: activation targets unknown mode %a"
             Ids.Process_id.pp id Ids.Mode_id.pp target))
    (Activation.modes activation)

let make ?activation ~modes id =
  let activation =
    match activation with
    | Some a -> a
    | None -> default_activation id modes
  in
  validate id modes activation;
  { id; modes; activation }

let simple ?payload_policy ~latency ~consumes ~produces id =
  let mode_id =
    Ids.Mode_id.of_string (Format.asprintf "%a.default" Ids.Process_id.pp id)
  in
  let mode = Mode.make ?payload_policy ~latency ~consumes ~produces mode_id in
  make ~modes:[ mode ] id

let id p = p.id
let modes p = p.modes

let mode_ids p =
  List.fold_left
    (fun acc m -> Ids.Mode_id.Set.add (Mode.id m) acc)
    Ids.Mode_id.Set.empty p.modes

let find_mode mid p =
  List.find_opt (fun m -> Ids.Mode_id.equal (Mode.id m) mid) p.modes

let get_mode mid p =
  match find_mode mid p with Some m -> m | None -> raise Not_found

let activation p = p.activation

let inputs p =
  let from_modes =
    List.fold_left
      (fun acc m -> Ids.Channel_id.Set.union acc (Mode.consumed_channels m))
      Ids.Channel_id.Set.empty p.modes
  in
  Ids.Channel_id.Set.union from_modes (Activation.channels p.activation)

let outputs p =
  List.fold_left
    (fun acc m -> Ids.Channel_id.Set.union acc (Mode.produced_channels m))
    Ids.Channel_id.Set.empty p.modes

let hull_over_modes f p =
  match p.modes with
  | [] -> Interval.zero
  | m :: rest -> List.fold_left (fun acc m -> Interval.join acc (f m)) (f m) rest

let latency_hull p = hull_over_modes Mode.latency p

let consumption_hull p chan =
  hull_over_modes (fun m -> Mode.consumption m chan) p

let production_hull p chan =
  hull_over_modes
    (fun m ->
      match Mode.production_on m chan with
      | None -> Interval.zero
      | Some prod -> prod.Mode.rate)
    p

let map_channels f p =
  {
    p with
    modes = List.map (Mode.map_channels f) p.modes;
    activation = Activation.map_channels f p.activation;
  }

let rename id p = { p with id }

let with_activation activation p =
  validate p.id p.modes activation;
  { p with activation }

let with_modes modes p =
  validate p.id modes p.activation;
  { p with modes }

let pp ppf p =
  Format.fprintf ppf "@[<v2>process %a:@,%a@,activation:@,%a@]"
    Ids.Process_id.pp p.id
    (Format.pp_print_list ~pp_sep:Format.pp_print_cut Mode.pp)
    p.modes Activation.pp p.activation
