(** Input-token predicates.

    Activation rules and cluster selection rules guard on the state of a
    process's input channels: the number of available tokens and the tag
    set of the first visible token (paper, Section 2).  Predicates are a
    small boolean algebra over those two atoms. *)

type atom =
  | Num_at_least of Ids.Channel_id.t * int
      (** [c#num >= k]: at least [k] tokens are available on [c]. *)
  | First_has_tag of Ids.Channel_id.t * Tag.t
      (** ['t' in c#tag]: the first visible token on [c] carries the tag. *)

type t =
  | True
  | False
  | Atom of atom
  | And of t * t
  | Or of t * t
  | Not of t

(** How a predicate observes channel state.  [first_tags] is [None] when
    the channel holds no visible token. *)
type view = {
  tokens_available : Ids.Channel_id.t -> int;
  first_tags : Ids.Channel_id.t -> Tag.Set.t option;
}

val num_at_least : Ids.Channel_id.t -> int -> t
val has_tag : Ids.Channel_id.t -> Tag.t -> t
val conj : t list -> t
val disj : t list -> t

val eval : view -> t -> bool
(** A [First_has_tag] atom on an empty channel is false (no visible
    token, hence no tag, matching the paper: "if there is no tag on the
    first visible token … no activation rule is enabled"). *)

val channels : t -> Ids.Channel_id.Set.t
(** Channels the predicate observes. *)

val tags_tested : t -> Tag.Set.t

val map_channels : (Ids.Channel_id.t -> Ids.Channel_id.t) -> t -> t
(** Renames every channel reference; used when clusters are instantiated
    against interface ports. *)

val syntactically_disjoint : t -> t -> bool
(** A sound but incomplete test that two predicates can never hold
    simultaneously: true when both are conjunctions of atoms that demand
    a different tag on the first token of a common channel.  Used to
    warn about (not reject) potentially ambiguous rule sets. *)

val pp : Format.formatter -> t -> unit
