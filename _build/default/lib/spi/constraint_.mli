(** Timing constraints and a constructive compliance check.

    SPI defines timing constraints together with a constructive method to
    check them.  We support end-to-end latency-path constraints: the
    accumulated worst-case process latency along any channel path from a
    source process to a sink process must stay within a bound.  The check
    is parameterised over a per-process latency estimate so the same
    constraint can be checked for the unmapped model (using interval
    upper bounds) and for a synthesis binding (using implementation
    WCETs). *)

type t = {
  name : string;
  from_ : Ids.Process_id.t;
  to_ : Ids.Process_id.t;
  bound : int;  (** maximum accumulated latency, in model time units *)
}

val latency_path : name:string -> from_:Ids.Process_id.t -> to_:Ids.Process_id.t -> bound:int -> t

type outcome =
  | Satisfied of { worst : int; slack : int }
  | Violated of { worst : int; excess : int }
  | Unreachable  (** no channel path links [from_] to [to_] *)
  | Cyclic of Ids.Process_id.t list
      (** latency is unbounded along a process cycle touching the path *)

val check :
  latency_of:(Ids.Process_id.t -> int) -> Model.t -> t -> outcome
(** Worst-case path latency between the two processes over the bipartite
    graph (channels add no latency), compared against [bound]. *)

val check_all :
  latency_of:(Ids.Process_id.t -> int) -> Model.t -> t list -> (t * outcome) list

val all_satisfied : (t * outcome) list -> bool
val pp_outcome : Format.formatter -> outcome -> unit
val pp : Format.formatter -> t -> unit
