(** Process modes.

    A mode is a subset of the possible behaviours of a process: it fixes
    (or narrows to sub-intervals) the execution latency, the number of
    tokens consumed from each input channel and produced on each output
    channel, and the tags attached to produced tokens.  The mode table of
    Figure 1 (p2's [m1]/[m2]) is expressed with this module. *)

type production = {
  rate : Interval.t;  (** number of tokens produced per execution *)
  tags : Tag.Set.t;  (** tags attached to every produced token *)
}

type payload_policy =
  | Fresh  (** produced tokens carry no payload *)
  | Inherit_first
      (** produced tokens carry the payload of the first token consumed
          in this execution, if any — used by observers to follow data
          (e.g. image ids) through a chain *)

type t

val make :
  ?payload_policy:payload_policy ->
  latency:Interval.t ->
  consumes:(Ids.Channel_id.t * Interval.t) list ->
  produces:(Ids.Channel_id.t * production) list ->
  Ids.Mode_id.t ->
  t
(** @raise Invalid_argument on duplicate channel entries or negative
    rate bounds. *)

val produce : ?tags:Tag.Set.t -> Interval.t -> production
(** Convenience constructor for {!production}; [tags] defaults to the
    empty set. *)

val id : t -> Ids.Mode_id.t
val latency : t -> Interval.t
val payload_policy : t -> payload_policy
val consumption : t -> Ids.Channel_id.t -> Interval.t
(** Zero interval when the mode does not consume from that channel. *)

val production_on : t -> Ids.Channel_id.t -> production option
val consumed_channels : t -> Ids.Channel_id.Set.t
val produced_channels : t -> Ids.Channel_id.Set.t
val consumptions : t -> (Ids.Channel_id.t * Interval.t) list
val productions : t -> (Ids.Channel_id.t * production) list

val with_latency : Interval.t -> t -> t
val rename : Ids.Mode_id.t -> t -> t

val map_channels : (Ids.Channel_id.t -> Ids.Channel_id.t) -> t -> t
(** Renames every channel reference (rates keep their values).
    @raise Invalid_argument if the renaming merges two channels. *)

val scale_latency : int -> t -> t
(** Multiplies both latency bounds; used when a mode abstracts several
    chained cluster executions. *)

val join : Ids.Mode_id.t -> t -> t -> t
(** Interval hull of two modes: latency and all rates joined pointwise
    (a channel missing from one side contributes a zero bound).  Tags
    are unioned.  Used by parameter extraction when several cluster
    behaviours are abstracted into one mode. *)

val pp : Format.formatter -> t -> unit
