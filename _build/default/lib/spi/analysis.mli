(** Static analysis of SPI models.

    Three analyses used during optimization, before any mapping decision
    is taken:

    - {b rate balance}: for each channel, compare the writer's production
      interval against the reader's consumption interval per execution.
      A channel whose production can permanently outpace consumption (or
      starve it) indicates unbounded buffering or starvation in
      long-running operation.
    - {b structural deadlock candidates}: strongly connected components
      of the process graph in which every cycle channel starts empty —
      no process of the component can ever fire first.
    - {b buffer bounds}: a conservative per-channel bound on queue
      occupancy for models whose process graph is acyclic, derived from
      upper production and lower consumption rates over a bounded number
      of source executions. *)

type balance =
  | Balanced  (** production and consumption intervals overlap *)
  | Accumulating of { surplus : int }
      (** the writer's minimum production exceeds the reader's maximum
          consumption per pairing of executions *)
  | Starving of { deficit : int }
      (** the reader's minimum demand exceeds the writer's maximum
          production *)
  | Boundary  (** channel has no writer or no reader: environment side *)

val channel_balance : Model.t -> Ids.Channel_id.t -> balance

val balance_report : Model.t -> (Ids.Channel_id.t * balance) list
(** Balance of every channel, in id order. *)

val pp_balance : Format.formatter -> balance -> unit

val deadlock_candidates : Model.t -> Ids.Process_id.t list list
(** Process components that can never start: every process of the
    component needs tokens that only the component itself can produce,
    and all internal channels start empty.  Self-loops with initial
    tokens (the usual SPI state-keeping idiom) are {e not} reported. *)

val queue_bound :
  source_executions:int -> Model.t -> Ids.Channel_id.t -> int option
(** Upper bound on the simultaneous occupancy of a queue when every
    source process executes at most [source_executions] times, assuming
    worst-case production and no consumption at all — a safe (if loose)
    sizing bound.  [None] when the channel does not exist or the
    process graph is cyclic (no static bound derivable). *)

val queue_bounds :
  source_executions:int -> Model.t -> (Ids.Channel_id.t * int option) list

val bottleneck : Model.t -> (Ids.Process_id.t * int) option
(** The process with the largest worst-case latency and that latency —
    the pipeline's throughput limiter: in steady state no output can be
    produced faster than one per bottleneck latency.  [None] for an
    empty model. *)

val min_initiation_interval : Model.t -> int
(** The bottleneck latency (0 for an empty model): a lower bound on the
    sustainable per-token period of the pipeline. *)
