(** Process mode correlation (the SPI companion technique of [9],
    "Representation of process mode correlation for scheduling").

    Interval hulls over independent mode choices are sound but loose:
    if p1's mode [ma] always drives p2 into [m1] (as the tags of
    Figure 1 arrange), the joint behaviours {[ma, m2]} and {[mb, m1]}
    never occur, yet a hull-based analysis pays for them.  A
    {e correlation} declares the feasible joint mode assignments
    (scenarios); scenario-wise analysis then takes the worst case over
    the declared scenarios only. *)

type scenario = {
  scenario_name : string;
  assignment : (Ids.Process_id.t * Ids.Mode_id.t) list;
      (** the mode each covered process runs in this scenario;
          processes absent from the assignment are unconstrained *)
}

val scenario :
  string -> (Ids.Process_id.t * Ids.Mode_id.t) list -> scenario

type t

val make : scenario list -> t
(** @raise Invalid_argument on duplicate scenario names, an empty
    scenario list, or a process assigned twice within one scenario. *)

val scenarios : t -> scenario list

type error =
  | Unknown_process of string * Ids.Process_id.t
  | Unknown_mode of string * Ids.Process_id.t * Ids.Mode_id.t

val pp_error : Format.formatter -> error -> unit

val validate_against : Model.t -> t -> error list
(** Every assigned process and mode must exist in the model. *)

val scenario_latency_of :
  Model.t -> scenario -> Ids.Process_id.t -> int
(** Worst-case latency of a process under the scenario: the upper bound
    of its assigned mode's latency, or of its latency hull when the
    scenario leaves it unconstrained. *)

val check :
  Model.t -> t -> Constraint_.t -> (string * Constraint_.outcome) list
(** The constraint checked once per scenario with scenario-wise
    latencies; the overall verdict is the worst scenario. *)

val worst_case :
  Model.t -> t -> Constraint_.t -> Constraint_.outcome
(** The scenario with the largest worst-case path latency (violations
    dominate satisfactions). *)

val hull_outcome : Model.t -> Constraint_.t -> Constraint_.outcome
(** The baseline: the same constraint under hull (uncorrelated)
    latencies — never tighter than {!worst_case}. *)

val infer : channel:Ids.Channel_id.t -> Model.t -> t option
(** Derives scenarios from tag-driven activation, the mechanism that
    makes Figure 1's [p2] determinate: for each tag tested on [channel]
    by some activation rule, one scenario assigns every process whose
    rule requires that tag the corresponding mode.  [None] when fewer
    than two distinct tags are tested (no correlation to exploit).
    Sound when the tags are mutually exclusive on the wire — which the
    producer's modes decide; the caller asserts it by using the
    result. *)
