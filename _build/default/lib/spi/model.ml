module Pmap = Ids.Process_id.Map
module Cmap = Ids.Channel_id.Map

type node = P of Ids.Process_id.t | C of Ids.Channel_id.t

module Node = struct
  type t = node

  let compare a b =
    match a, b with
    | P p1, P p2 -> Ids.Process_id.compare p1 p2
    | C c1, C c2 -> Ids.Channel_id.compare c1 c2
    | P _, C _ -> -1
    | C _, P _ -> 1

  let pp ppf = function
    | P p -> Format.fprintf ppf "P:%a" Ids.Process_id.pp p
    | C c -> Format.fprintf ppf "C:%a" Ids.Channel_id.pp c
end

module Graph = Graphlib.Digraph.Make (Node)

type error =
  | Duplicate_process of Ids.Process_id.t
  | Duplicate_channel of Ids.Channel_id.t
  | Unknown_channel of Ids.Process_id.t * Ids.Channel_id.t
  | Multiple_writers of Ids.Channel_id.t * Ids.Process_id.t list
  | Multiple_readers of Ids.Channel_id.t * Ids.Process_id.t list

let pp_error ppf =
  let pp_procs = Format.pp_print_list ~pp_sep:Format.pp_print_space Ids.Process_id.pp in
  function
  | Duplicate_process p ->
    Format.fprintf ppf "duplicate process id %a" Ids.Process_id.pp p
  | Duplicate_channel c ->
    Format.fprintf ppf "duplicate channel id %a" Ids.Channel_id.pp c
  | Unknown_channel (p, c) ->
    Format.fprintf ppf "process %a references undeclared channel %a"
      Ids.Process_id.pp p Ids.Channel_id.pp c
  | Multiple_writers (c, ps) ->
    Format.fprintf ppf "channel %a has multiple writers: %a" Ids.Channel_id.pp
      c pp_procs ps
  | Multiple_readers (c, ps) ->
    Format.fprintf ppf "channel %a has multiple readers: %a" Ids.Channel_id.pp
      c pp_procs ps

type t = {
  processes : Process.t Pmap.t;
  channels : Chan.t Cmap.t;
  writer : Ids.Process_id.t Cmap.t;
  reader : Ids.Process_id.t Cmap.t;
}

let collect_errors processes channels =
  let errors = ref [] in
  let err e = errors := e :: !errors in
  let pmap =
    List.fold_left
      (fun acc p ->
        let pid = Process.id p in
        if Pmap.mem pid acc then begin
          err (Duplicate_process pid);
          acc
        end
        else Pmap.add pid p acc)
      Pmap.empty processes
  in
  let cmap =
    List.fold_left
      (fun acc c ->
        let cid = Chan.id c in
        if Cmap.mem cid acc then begin
          err (Duplicate_channel cid);
          acc
        end
        else Cmap.add cid c acc)
      Cmap.empty channels
  in
  let writers = ref Cmap.empty and readers = ref Cmap.empty in
  let note table pid cid =
    table :=
      Cmap.update cid
        (function None -> Some [ pid ] | Some ps -> Some (pid :: ps))
        !table
  in
  Pmap.iter
    (fun pid p ->
      let check_declared cid =
        if not (Cmap.mem cid cmap) then err (Unknown_channel (pid, cid))
      in
      Ids.Channel_id.Set.iter
        (fun cid ->
          check_declared cid;
          note readers pid cid)
        (Process.inputs p);
      Ids.Channel_id.Set.iter
        (fun cid ->
          check_declared cid;
          note writers pid cid)
        (Process.outputs p))
    pmap;
  let single what table =
    Cmap.filter_map
      (fun cid pids ->
        match pids with
        | [] -> None
        | [ pid ] -> Some pid
        | pids ->
          err (what cid (List.sort Ids.Process_id.compare pids));
          None)
      table
  in
  let writer = single (fun c ps -> Multiple_writers (c, ps)) !writers in
  let reader = single (fun c ps -> Multiple_readers (c, ps)) !readers in
  (List.rev !errors, { processes = pmap; channels = cmap; writer; reader })

let build ~processes ~channels =
  match collect_errors processes channels with
  | [], model -> Ok model
  | errors, _ -> Error errors

let build_exn ~processes ~channels =
  match build ~processes ~channels with
  | Ok model -> model
  | Error errors ->
    let msg =
      Format.asprintf "@[<v>Model.build:@,%a@]"
        (Format.pp_print_list ~pp_sep:Format.pp_print_cut pp_error)
        errors
    in
    invalid_arg msg

let processes m = List.map snd (Pmap.bindings m.processes)
let channels m = List.map snd (Cmap.bindings m.channels)
let find_process pid m = Pmap.find_opt pid m.processes
let find_channel cid m = Cmap.find_opt cid m.channels

let get_process pid m =
  match find_process pid m with Some p -> p | None -> raise Not_found

let get_channel cid m =
  match find_channel cid m with Some c -> c | None -> raise Not_found

let writer_of cid m = Cmap.find_opt cid m.writer
let reader_of cid m = Cmap.find_opt cid m.reader

let unread_channels m =
  Cmap.fold
    (fun cid _ acc ->
      if Cmap.mem cid m.reader then acc else Ids.Channel_id.Set.add cid acc)
    m.channels Ids.Channel_id.Set.empty

let unwritten_channels m =
  Cmap.fold
    (fun cid _ acc ->
      if Cmap.mem cid m.writer then acc else Ids.Channel_id.Set.add cid acc)
    m.channels Ids.Channel_id.Set.empty

let source_processes m =
  Pmap.fold
    (fun pid p acc ->
      if Ids.Channel_id.Set.is_empty (Process.inputs p) then
        Ids.Process_id.Set.add pid acc
      else acc)
    m.processes Ids.Process_id.Set.empty

let to_graph m =
  let g =
    Pmap.fold (fun pid _ g -> Graph.add_node (P pid) g) m.processes Graph.empty
  in
  let g = Cmap.fold (fun cid _ g -> Graph.add_node (C cid) g) m.channels g in
  let g = Cmap.fold (fun cid pid g -> Graph.add_edge (P pid) (C cid) g) m.writer g in
  Cmap.fold (fun cid pid g -> Graph.add_edge (C cid) (P pid) g) m.reader g

let replace_process p m =
  let pid = Process.id p in
  if not (Pmap.mem pid m.processes) then
    invalid_arg
      (Format.asprintf "Model.replace_process: unknown process %a"
         Ids.Process_id.pp pid);
  let processes =
    List.map
      (fun q -> if Ids.Process_id.equal (Process.id q) pid then p else q)
      (processes m)
  in
  build_exn ~processes ~channels:(channels m)

let union a b =
  build
    ~processes:(processes a @ processes b)
    ~channels:(channels a @ channels b)

let node_label = function
  | P p -> Ids.Process_id.to_string p
  | C c -> Ids.Channel_id.to_string c

let pp_stats ppf m =
  Format.fprintf ppf "%d processes, %d channels" (Pmap.cardinal m.processes)
    (Cmap.cardinal m.channels)
