module Cmap = Ids.Channel_id.Map

(* Queue contents are kept front-first: the head of the list is the first
   visible token.  Registers hold at most one token. *)
type channel_state = { decl : Chan.t; tokens : Token.t list }
type state = channel_state Cmap.t
type overflow = Reject | Drop_newest

exception Channel_overflow of Ids.Channel_id.t

let initial model =
  List.fold_left
    (fun acc decl ->
      Cmap.add (Chan.id decl) { decl; tokens = Chan.initial decl } acc)
    Cmap.empty (Model.channels model)

let tokens_available state cid =
  match Cmap.find_opt cid state with
  | None -> 0
  | Some cs -> List.length cs.tokens

let first_token state cid =
  match Cmap.find_opt cid state with
  | None | Some { tokens = []; _ } -> None
  | Some { tokens = tok :: _; _ } -> Some tok

let first_tags state cid = Option.map Token.tags (first_token state cid)

let contents state cid =
  match Cmap.find_opt cid state with None -> [] | Some cs -> cs.tokens

let view state =
  {
    Predicate.tokens_available = tokens_available state;
    first_tags = first_tags state;
  }

let push_token ~overflow cid cs tok =
  match Chan.kind cs.decl with
  | Chan.Register -> { cs with tokens = [ tok ] }
  | Chan.Queue -> (
    match Chan.capacity cs.decl with
    | Some cap when List.length cs.tokens >= cap -> (
      match overflow with
      | Reject -> raise (Channel_overflow cid)
      | Drop_newest -> cs)
    | Some _ | None -> { cs with tokens = cs.tokens @ [ tok ] })

let inject ?(overflow = Reject) model cid tok state =
  let cs =
    match Cmap.find_opt cid state with
    | Some cs -> cs
    | None -> { decl = Model.get_channel cid model; tokens = [] }
  in
  Cmap.add cid (push_token ~overflow cid cs tok) state

let clear_channel cid state =
  Cmap.update cid
    (function None -> None | Some cs -> Some { cs with tokens = [] })
    state

let enabled_rule model state pid =
  let p = Model.get_process pid model in
  Activation.select (view state) (Process.activation p)

let enabled_mode model state pid =
  match enabled_rule model state pid with
  | None -> None
  | Some rule ->
    let p = Model.get_process pid model in
    Process.find_mode (Activation.target_mode rule) p

type firing = {
  process : Ids.Process_id.t;
  mode : Ids.Mode_id.t;
  consumed : (Ids.Channel_id.t * Token.t list) list;
  produced : (Ids.Channel_id.t * Token.t list) list;
}

let take n tokens =
  let rec go n acc = function
    | rest when n = 0 -> (List.rev acc, rest)
    | [] -> (List.rev acc, [])
    | tok :: rest -> go (n - 1) (tok :: acc) rest
  in
  go n [] tokens

let consume_from state cid n =
  match Cmap.find_opt cid state with
  | None -> ([], state)
  | Some cs -> (
    match Chan.kind cs.decl with
    | Chan.Register ->
      (* Sampling read: the register keeps its token. *)
      let seen, _ = take (min n (List.length cs.tokens)) cs.tokens in
      (seen, state)
    | Chan.Queue ->
      let seen, rest = take n cs.tokens in
      (seen, Cmap.add cid { cs with tokens = rest } state))

let consume ?(choose_rate = Interval.lo) mode state =
  let step (state, consumed) (cid, rate) =
    let wanted = choose_rate rate in
    let n = min wanted (tokens_available state cid) in
    let tokens, state = consume_from state cid n in
    (state, (cid, tokens) :: consumed)
  in
  let state, consumed =
    List.fold_left step (state, []) (Mode.consumptions mode)
  in
  (state, List.rev consumed)

(* The first consumed token that actually carries a payload: state or
   control tokens without payloads never mask the data stream. *)
let inherited_payload mode consumed =
  match Mode.payload_policy mode with
  | Mode.Fresh -> None
  | Mode.Inherit_first ->
    List.find_map Token.payload (List.concat_map snd consumed)

let produce ?(overflow = Reject) ?(choose_rate = Interval.lo) model mode
    ~inherited_payload:payload state =
  let step (state, produced) (cid, prod) =
    let n = choose_rate prod.Mode.rate in
    let tok = Token.make ~tags:prod.Mode.tags ?payload () in
    let tokens = Token.replicate n tok in
    let state =
      List.fold_left
        (fun state tok -> inject ~overflow model cid tok state)
        state tokens
    in
    (state, (cid, tokens) :: produced)
  in
  let state, produced =
    List.fold_left step (state, []) (Mode.productions mode)
  in
  (state, List.rev produced)

let fire ?(overflow = Reject) ?(choose_rate = Interval.lo) model pid mode state =
  let state, consumed = consume ~choose_rate mode state in
  let payload = inherited_payload mode consumed in
  let state, produced =
    produce ~overflow ~choose_rate model mode ~inherited_payload:payload state
  in
  (state, { process = pid; mode = Mode.id mode; consumed; produced })

let pp_firing ppf f =
  let pp_moved ppf (cid, toks) =
    Format.fprintf ppf "%a:%d" Ids.Channel_id.pp cid (List.length toks)
  in
  let pp_list = Format.pp_print_list ~pp_sep:Format.pp_print_space pp_moved in
  Format.fprintf ppf "%a[%a] -(%a)-> [%a]" Ids.Process_id.pp f.process pp_list
    f.consumed Ids.Mode_id.pp f.mode pp_list f.produced

let total_tokens state =
  Cmap.fold (fun _ cs n -> n + List.length cs.tokens) state 0
