module Cmap = Ids.Channel_id.Map

type production = { rate : Interval.t; tags : Tag.Set.t }
type payload_policy = Fresh | Inherit_first

type t = {
  id : Ids.Mode_id.t;
  latency : Interval.t;
  consumes : Interval.t Cmap.t;
  produces : production Cmap.t;
  payload_policy : payload_policy;
}

let check_rate what rate =
  if Interval.lo rate < 0 then
    invalid_arg (Format.asprintf "Mode: negative %s rate %a" what Interval.pp rate)

let map_of_list what check pairs =
  List.fold_left
    (fun acc (chan, v) ->
      if Cmap.mem chan acc then
        invalid_arg
          (Format.asprintf "Mode: duplicate %s entry for channel %a" what
             Ids.Channel_id.pp chan)
      else begin
        check v;
        Cmap.add chan v acc
      end)
    Cmap.empty pairs

let make ?(payload_policy = Inherit_first) ~latency ~consumes ~produces id =
  if Interval.lo latency < 0 then
    invalid_arg "Mode.make: negative latency bound";
  {
    id;
    latency;
    consumes = map_of_list "consumption" (check_rate "consumption") consumes;
    produces =
      map_of_list "production" (fun p -> check_rate "production" p.rate) produces;
    payload_policy;
  }

let produce ?(tags = Tag.Set.empty) rate = { rate; tags }
let id m = m.id
let latency m = m.latency
let payload_policy m = m.payload_policy

let consumption m chan =
  match Cmap.find_opt chan m.consumes with
  | None -> Interval.zero
  | Some rate -> rate

let production_on m chan = Cmap.find_opt chan m.produces

let consumed_channels m =
  Cmap.fold (fun c _ s -> Ids.Channel_id.Set.add c s) m.consumes
    Ids.Channel_id.Set.empty

let produced_channels m =
  Cmap.fold (fun c _ s -> Ids.Channel_id.Set.add c s) m.produces
    Ids.Channel_id.Set.empty

let consumptions m = Cmap.bindings m.consumes
let productions m = Cmap.bindings m.produces
let with_latency latency m = { m with latency }
let rename id m = { m with id }

let remap_keys what f map =
  Cmap.fold
    (fun chan v acc ->
      let chan' = f chan in
      if Cmap.mem chan' acc then
        invalid_arg
          (Format.asprintf "Mode.map_channels: %s collision on %a" what
             Ids.Channel_id.pp chan')
      else Cmap.add chan' v acc)
    map Cmap.empty

let map_channels f m =
  {
    m with
    consumes = remap_keys "consumption" f m.consumes;
    produces = remap_keys "production" f m.produces;
  }

let scale_latency k m =
  if k < 0 then invalid_arg "Mode.scale_latency: negative factor";
  { m with latency = Interval.scale k m.latency }

let join id a b =
  let join_rates ra rb =
    Cmap.merge
      (fun _ x y ->
        match x, y with
        | None, None -> None
        | Some r, None | None, Some r -> Some (Interval.join Interval.zero r)
        | Some r1, Some r2 -> Some (Interval.join r1 r2))
      ra rb
  in
  let join_prods pa pb =
    Cmap.merge
      (fun _ x y ->
        match x, y with
        | None, None -> None
        | Some p, None | None, Some p ->
          Some { p with rate = Interval.join Interval.zero p.rate }
        | Some p1, Some p2 ->
          Some
            {
              rate = Interval.join p1.rate p2.rate;
              tags = Tag.Set.union p1.tags p2.tags;
            })
      pa pb
  in
  {
    id;
    latency = Interval.join a.latency b.latency;
    consumes = join_rates a.consumes b.consumes;
    produces = join_prods a.produces b.produces;
    payload_policy =
      (match a.payload_policy, b.payload_policy with
      | Inherit_first, _ | _, Inherit_first -> Inherit_first
      | Fresh, Fresh -> Fresh);
  }

let pp ppf m =
  let pp_rates ppf rates =
    Format.pp_print_list
      ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
      (fun ppf (c, r) ->
        Format.fprintf ppf "%a:%a" Ids.Channel_id.pp c Interval.pp r)
      ppf (Cmap.bindings rates)
  in
  let pp_prods ppf prods =
    Format.pp_print_list
      ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
      (fun ppf (c, p) ->
        Format.fprintf ppf "%a:%a%a" Ids.Channel_id.pp c Interval.pp p.rate
          Tag.Set.pp p.tags)
      ppf (Cmap.bindings prods)
  in
  Format.fprintf ppf "@[mode %a: lat=%a in=[%a] out=[%a]@]" Ids.Mode_id.pp m.id
    Interval.pp m.latency pp_rates m.consumes pp_prods m.produces
