(** Process declarations.

    A process is modeled by its abstract external behaviour only: a
    non-empty set of modes plus an activation function.  A process whose
    behaviour needs no mode distinction is built with {!simple}, which
    wraps the rates and latency into a single default mode activated
    whenever enough input tokens are available. *)

type t

val make : ?activation:Activation.t -> modes:Mode.t list -> Ids.Process_id.t -> t
(** @raise Invalid_argument if [modes] is empty, mode ids collide, or an
    activation rule targets an unknown mode.  When [activation] is
    omitted, rules are synthesised in mode order: mode [m] is activated
    when every input channel holds at least [Interval.hi] of [m]'s
    consumption (so the execution is possible whatever value inside the
    interval the execution realises). *)

val simple :
  ?payload_policy:Mode.payload_policy ->
  latency:Interval.t ->
  consumes:(Ids.Channel_id.t * Interval.t) list ->
  produces:(Ids.Channel_id.t * Mode.production) list ->
  Ids.Process_id.t ->
  t
(** Single-mode process; the mode is named ["<pid>.default"]. *)

val id : t -> Ids.Process_id.t
val modes : t -> Mode.t list
val mode_ids : t -> Ids.Mode_id.Set.t
val find_mode : Ids.Mode_id.t -> t -> Mode.t option

val get_mode : Ids.Mode_id.t -> t -> Mode.t
(** @raise Not_found when absent. *)

val activation : t -> Activation.t
val inputs : t -> Ids.Channel_id.Set.t
(** Channels read by any mode or observed by any activation rule. *)

val outputs : t -> Ids.Channel_id.Set.t

val latency_hull : t -> Interval.t
(** Hull of all mode latencies: the process-level latency interval. *)

val consumption_hull : t -> Ids.Channel_id.t -> Interval.t
val production_hull : t -> Ids.Channel_id.t -> Interval.t

val map_channels : (Ids.Channel_id.t -> Ids.Channel_id.t) -> t -> t
(** Renames channel references in all modes and activation rules; used
    when a cluster is instantiated against interface ports. *)

val rename : Ids.Process_id.t -> t -> t

val with_activation : Activation.t -> t -> t
val with_modes : Mode.t list -> t -> t
(** @raise Invalid_argument under the same conditions as {!make}. *)

val pp : Format.formatter -> t -> unit
