(** A terse, pipeline-style model construction API.

    The full constructors ({!Mode.make}, {!Process.make}, {!Model.build})
    are explicit but verbose for the common case of fixed-rate pipeline
    processes.  [Builder] trades generality for brevity: names are plain
    strings, rates plain integers, latencies an integer or a pair.

    {[
      let model =
        Spi.Builder.(
          empty
          |> queue "in" |> queue ~capacity:8 "mid" |> queue "out"
          |> stage "decode" ~latency:(2, 4) ~from:"in" ~into:"mid"
          |> stage "render" ~latency:1 ~from:"mid" ~into:"out"
          |> build_exn)
    ]} *)

type t
(** An under-construction model: channels and processes accumulated so
    far.  Purely functional; reusing a prefix is safe. *)

type latency = int * int
(** Inclusive latency bounds; use {!fixed} for points. *)

val fixed : int -> latency
val empty : t

val queue : ?capacity:int -> ?initial:int -> string -> t -> t
(** A FIFO channel, optionally bounded and pre-loaded with [initial]
    plain tokens. *)

val state_queue : string -> tag:string -> t -> t
(** A queue holding one token tagged [tag] — the self-loop state idiom. *)

val register : string -> t -> t

val stage :
  string ->
  latency:latency ->
  from:string ->
  into:string ->
  t ->
  t
(** A 1-in/1-out pipeline stage. *)

val source : string -> latency:latency -> into:string -> ?count:int -> unit -> t -> t
(** A process with no inputs producing [count] (default 1) tokens per
    execution; remember to give it a firing budget when simulating. *)

val sink : string -> latency:latency -> from:string -> ?count:int -> unit -> t -> t

val worker :
  string ->
  latency:latency ->
  consumes:(string * int) list ->
  produces:(string * int) list ->
  t ->
  t
(** General fixed-rate process. *)

val add_process : Process.t -> t -> t
(** Escape hatch for modal processes built with the full API. *)

val add_channel : Chan.t -> t -> t

val build : t -> (Model.t, Model.error list) result
val build_exn : t -> Model.t
