module I = Spi.Ids

type verdict =
  | Feasible of { worst_app : string; worst_load : int }
  | Overload of { app : string; load : int; capacity : int }
  | Unbound_process of I.Process_id.t
  | No_sw_option of I.Process_id.t
  | No_hw_option of I.Process_id.t

let default_capacity = 100

let app_load tech binding (app : App.t) =
  I.Process_id.Set.fold
    (fun pid acc ->
      match Binding.impl_of pid binding with
      | Some Binding.Sw -> (
        match (Tech.options_of tech pid).Tech.sw with
        | Some { Tech.load } -> acc + load
        | None -> acc)
      | Some Binding.Hw | None -> acc)
    app.App.procs 0

exception Bad of verdict

let check ?(capacity = default_capacity) tech binding apps =
  try
    let worst =
      List.fold_left
        (fun worst (app : App.t) ->
          I.Process_id.Set.iter
            (fun pid ->
              match Binding.impl_of pid binding with
              | None -> raise (Bad (Unbound_process pid))
              | Some Binding.Sw ->
                if Option.is_none (Tech.options_of tech pid).Tech.sw then
                  raise (Bad (No_sw_option pid))
              | Some Binding.Hw ->
                if Option.is_none (Tech.options_of tech pid).Tech.hw then
                  raise (Bad (No_hw_option pid)))
            app.App.procs;
          let load = app_load tech binding app in
          if load > capacity then
            raise (Bad (Overload { app = app.App.name; load; capacity }));
          match worst with
          | Some (_, l) when l >= load -> worst
          | Some _ | None -> Some (app.App.name, load))
        None apps
    in
    match worst with
    | None -> Feasible { worst_app = "-"; worst_load = 0 }
    | Some (name, load) -> Feasible { worst_app = name; worst_load = load }
  with
  | Bad v -> v
  | Not_found ->
    (* a process absent from the technology library *)
    Unbound_process
      (I.Process_id.of_string "<process missing from technology library>")

let is_feasible = function
  | Feasible _ -> true
  | Overload _ | Unbound_process _ | No_sw_option _ | No_hw_option _ -> false

let pp_verdict ppf = function
  | Feasible { worst_app; worst_load } ->
    Format.fprintf ppf "feasible (worst app %s at load %d)" worst_app worst_load
  | Overload { app; load; capacity } ->
    Format.fprintf ppf "overload in %s: %d > %d" app load capacity
  | Unbound_process p ->
    Format.fprintf ppf "process %a unbound" I.Process_id.pp p
  | No_sw_option p ->
    Format.fprintf ppf "process %a mapped to SW without a SW option"
      I.Process_id.pp p
  | No_hw_option p ->
    Format.fprintf ppf "process %a mapped to HW without a HW option"
      I.Process_id.pp p
