(** Response-time analysis for periodic software processes.

    The utilization check of {!Schedule} answers "does it fit"; this
    module answers "when does each process finish" under fixed-priority
    preemptive scheduling on the shared processor.  Each software
    process becomes a periodic task (period, WCET = its load figure);
    priorities are rate-monotonic (shorter period = higher priority)
    with ties broken by process id.  The classical recurrence

    {v R = C + sum over higher-priority tasks of ceil(R / T_j) * C_j v}

    is iterated to a fixed point.  Hardware processes run on their own
    resources and are not analysed here. *)

type task = {
  proc : Spi.Ids.Process_id.t;
  period : int;
  wcet : int;
  response : int;  (** fixed point of the recurrence *)
  schedulable : bool;  (** response <= period (implicit deadline) *)
}

type verdict = {
  tasks : task list;  (** highest priority first *)
  all_schedulable : bool;
  utilization_percent : int;
}

val analyse :
  periods:(Spi.Ids.Process_id.t * int) list ->
  Tech.t ->
  Binding.t ->
  verdict
(** Analyses every software-bound process that has a period entry.
    @raise Invalid_argument on non-positive periods or a period entry
    whose process lacks a software option. *)

val pp : Format.formatter -> verdict -> unit
