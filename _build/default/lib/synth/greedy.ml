module I = Spi.Ids

type result = {
  binding : Binding.t;
  cost : Cost.breakdown;
  moves : I.Process_id.t list;
}

let partition ?(capacity = Schedule.default_capacity) tech apps =
  let union = I.Process_id.Set.elements (App.union_procs apps) in
  (* processes without a software option start in hardware *)
  let start =
    List.fold_left
      (fun b pid ->
        let o = Tech.options_of tech pid in
        let impl =
          match o.Tech.sw with
          | Some _ -> Binding.Sw
          | None -> Binding.Hw
        in
        Binding.bind pid impl b)
      Binding.empty union
  in
  let overloaded binding =
    List.filter
      (fun (a : App.t) -> Schedule.app_load tech binding a > capacity)
      apps
  in
  let rec relax binding moves =
    match overloaded binding with
    | [] -> Some (binding, List.rev moves)
    | over ->
      (* candidates: software processes inside overloaded applications
         that do have a hardware option *)
      let candidates =
        List.filter
          (fun pid ->
            Binding.impl_of pid binding = Some Binding.Sw
            && Option.is_some (Tech.options_of tech pid).Tech.hw
            && List.exists
                 (fun (a : App.t) -> I.Process_id.Set.mem pid a.App.procs)
                 over)
          union
      in
      let score pid =
        let o = Tech.options_of tech pid in
        let load =
          match o.Tech.sw with Some { Tech.load } -> load | None -> 0
        in
        let area =
          match o.Tech.hw with Some { Tech.area } -> area | None -> max_int
        in
        (* relief per unit of cost; tie-break toward bigger relief *)
        (float_of_int load /. float_of_int (max 1 area), load)
      in
      let best =
        List.fold_left
          (fun acc pid ->
            match acc with
            | None -> Some (pid, score pid)
            | Some (_, best_score) ->
              if score pid > best_score then Some (pid, score pid) else acc)
          None candidates
      in
      (match best with
      | None -> None (* nothing movable: infeasible under this scheme *)
      | Some (pid, _) ->
        relax (Binding.bind pid Binding.Hw binding) (pid :: moves))
  in
  (* improvement pass: hardware processes whose software twin still
     fits move back — the processor is already paid, so every such move
     strictly saves the ASIC area.  Largest areas first. *)
  let improve binding =
    let hw =
      List.filter
        (fun pid -> Binding.impl_of pid binding = Some Binding.Hw)
        union
    in
    let with_sw_option =
      List.filter
        (fun pid -> Option.is_some (Tech.options_of tech pid).Tech.sw)
        hw
    in
    let by_area_desc =
      List.sort
        (fun p1 p2 ->
          let area p =
            match (Tech.options_of tech p).Tech.hw with
            | Some { Tech.area } -> area
            | None -> 0
          in
          Int.compare (area p2) (area p1))
        with_sw_option
    in
    List.fold_left
      (fun binding pid ->
        let candidate = Binding.bind pid Binding.Sw binding in
        if overloaded candidate = [] then candidate else binding)
      binding by_area_desc
  in
  match relax start [] with
  | None -> None
  | Some (binding, moves) ->
    let binding = improve binding in
    let moves =
      List.filter
        (fun pid -> Binding.impl_of pid binding = Some Binding.Hw)
        moves
    in
    Some { binding; cost = Cost.of_binding tech binding; moves }

let quality_gap ?capacity tech apps =
  match partition ?capacity tech apps, Explore.optimal ?capacity tech apps with
  | Some h, Some o ->
    Some (h.cost.Cost.total, o.Explore.cost.Cost.total)
  | _, _ -> None
