module I = Spi.Ids

type t = { name : string; procs : I.Process_id.Set.t }

let make name pids = { name; procs = I.Process_id.Set.of_list pids }

let of_model name model =
  make name (List.map Spi.Process.id (Spi.Model.processes model))

let of_system system =
  List.map
    (fun (clusters, model) ->
      let name =
        String.concat "+" (List.map I.Cluster_id.to_string clusters)
      in
      of_model name model)
    (Variants.Flatten.applications system)

let union_procs apps =
  List.fold_left
    (fun acc a -> I.Process_id.Set.union acc a.procs)
    I.Process_id.Set.empty apps

let shared_procs = function
  | [] -> I.Process_id.Set.empty
  | a :: rest ->
    List.fold_left (fun acc b -> I.Process_id.Set.inter acc b.procs) a.procs rest

let pp ppf a =
  Format.fprintf ppf "%s: {%s}" a.name
    (String.concat ", "
       (List.map I.Process_id.to_string (I.Process_id.Set.elements a.procs)))
