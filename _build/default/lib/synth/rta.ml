module I = Spi.Ids

type task = {
  proc : I.Process_id.t;
  period : int;
  wcet : int;
  response : int;
  schedulable : bool;
}

type verdict = {
  tasks : task list;
  all_schedulable : bool;
  utilization_percent : int;
}

let ceil_div a b = (a + b - 1) / b

(* Iterate R = C + Σ_hp ceil(R/T_j)·C_j; diverges past the period are cut
   off (reported unschedulable with the last iterate). *)
let response_time ~wcet ~higher_priority =
  let rec iterate r =
    let interference =
      List.fold_left
        (fun acc (period_j, wcet_j) -> acc + (ceil_div r period_j * wcet_j))
        0 higher_priority
    in
    let r' = wcet + interference in
    if r' = r then r
    else if r' > 1_000_000 then r' (* diverged; caller checks the bound *)
    else iterate r'
  in
  iterate wcet

let analyse ~periods tech binding =
  let entries =
    List.filter_map
      (fun (pid, period) ->
        if period <= 0 then
          invalid_arg
            (Format.asprintf "Rta: non-positive period for %a" I.Process_id.pp
               pid);
        match Binding.impl_of pid binding with
        | Some Binding.Sw -> (
          match (Tech.options_of tech pid).Tech.sw with
          | Some { Tech.load } -> Some (pid, period, load)
          | None ->
            invalid_arg
              (Format.asprintf "Rta: %a has no software option"
                 I.Process_id.pp pid))
        | Some Binding.Hw | None -> None)
      periods
  in
  (* rate-monotonic priority order *)
  let ordered =
    List.sort
      (fun (p1, t1, _) (p2, t2, _) ->
        match Int.compare t1 t2 with
        | 0 -> I.Process_id.compare p1 p2
        | c -> c)
      entries
  in
  let tasks, _ =
    List.fold_left
      (fun (tasks, higher) (pid, period, wcet) ->
        let response = response_time ~wcet ~higher_priority:higher in
        let task =
          { proc = pid; period; wcet; response; schedulable = response <= period }
        in
        (task :: tasks, (period, wcet) :: higher))
      ([], []) ordered
  in
  let tasks = List.rev tasks in
  let utilization =
    List.fold_left
      (fun acc t -> acc +. (float_of_int t.wcet /. float_of_int t.period))
      0. tasks
  in
  {
    tasks;
    all_schedulable = List.for_all (fun t -> t.schedulable) tasks;
    utilization_percent = int_of_float (100. *. utilization);
  }

let pp ppf v =
  Format.fprintf ppf "@[<v>utilization %d%%, %s@," v.utilization_percent
    (if v.all_schedulable then "schedulable" else "NOT schedulable");
  List.iter
    (fun t ->
      Format.fprintf ppf "%a: T=%d C=%d R=%d %s@," I.Process_id.pp t.proc
        t.period t.wcet t.response
        (if t.schedulable then "ok" else "MISS"))
    v.tasks;
  Format.fprintf ppf "@]"
