module I = Spi.Ids

type solution = {
  binding : Binding.t;
  cost : Cost.breakdown;
  worst_load : int;
  explored : int;
}

(* Branch and bound.  Search state: prefix of decided processes, per-
   application accumulated software load, accumulated ASIC area, and
   whether any process went to software (the processor cost trigger).
   Lower bound of a partial assignment: area so far + processor cost if
   any software so far — every completion only adds cost.  A partial
   assignment dies as soon as one application's load exceeds capacity
   (software loads only grow). *)
let optimal ?(capacity = Schedule.default_capacity) ?(fixed = Binding.empty)
    ?(accept = fun _ -> true) tech apps =
  let procs = I.Process_id.Set.elements (App.union_procs apps) in
  let apps = Array.of_list apps in
  let membership pid =
    Array.map (fun (a : App.t) -> I.Process_id.Set.mem pid a.App.procs) apps
  in
  let explored = ref 0 in
  let best = ref None in
  let best_cost = ref max_int in
  let loads = Array.make (Array.length apps) 0 in
  let rec search remaining binding area any_sw =
    incr explored;
    let lower = area + if any_sw then Tech.processor_cost tech else 0 in
    if lower >= !best_cost then ()
    else
      match remaining with
      | [] ->
        let worst = Array.fold_left max 0 loads in
        let cost = lower in
        if cost < !best_cost && accept binding then begin
          best_cost := cost;
          best := Some (binding, worst)
        end
      | pid :: rest ->
        let options = Tech.options_of tech pid in
        let member = membership pid in
        let allowed impl =
          match Binding.impl_of pid fixed with
          | None -> true
          | Some f -> f = impl
        in
        (* Hardware first: it can only help schedulability, and trying
           the cheaper completion early tightens the bound. *)
        (match options.Tech.hw with
        | Some { Tech.area = a } when allowed Binding.Hw ->
          search rest (Binding.bind pid Binding.Hw binding) (area + a) any_sw
        | Some _ | None -> ());
        (match options.Tech.sw with
        | Some { Tech.load } when allowed Binding.Sw ->
          let ok = ref true in
          Array.iteri
            (fun i m ->
              if m then begin
                loads.(i) <- loads.(i) + load;
                if loads.(i) > capacity then ok := false
              end)
            member;
          if !ok then
            search rest (Binding.bind pid Binding.Sw binding) area true;
          Array.iteri (fun i m -> if m then loads.(i) <- loads.(i) - load) member
        | Some _ | None -> ())
  in
  search procs Binding.empty 0 false;
  match !best with
  | None -> None
  | Some (binding, worst_load) ->
    Some
      {
        binding;
        cost = Cost.of_binding tech binding;
        worst_load;
        explored = !explored;
      }

let optimal_exn ?capacity ?fixed ?accept tech apps =
  match optimal ?capacity ?fixed ?accept tech apps with
  | Some s -> s
  | None -> failwith "Explore.optimal: no feasible binding"

let pp_solution ppf s =
  Format.fprintf ppf "@[<v>binding: %a@,cost: %a@,worst load: %d (explored %d)@]"
    Binding.pp s.binding Cost.pp s.cost s.worst_load s.explored
