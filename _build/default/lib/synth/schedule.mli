(** Schedulability on the shared processor.

    Software processes of one application share the single processor;
    the binding is feasible when, for {e every} application, the summed
    software load stays within the processor capacity.  Mutually
    exclusive variants are the paper's lever: their software loads are
    never summed together ("since the clusters 1 and 2 are mutually
    exclusive at run time, the available processor performance is not
    exceeded"). *)

type verdict =
  | Feasible of { worst_app : string; worst_load : int }
  | Overload of { app : string; load : int; capacity : int }
  | Unbound_process of Spi.Ids.Process_id.t
      (** an application process is missing from the binding *)
  | No_sw_option of Spi.Ids.Process_id.t
  | No_hw_option of Spi.Ids.Process_id.t

val default_capacity : int
(** 100 (loads are percentages). *)

val check :
  ?capacity:int -> Tech.t -> Binding.t -> App.t list -> verdict
(** Verifies the binding against every application. *)

val is_feasible : verdict -> bool

val app_load : Tech.t -> Binding.t -> App.t -> int
(** Summed software load of the application under the binding
    (processes missing a software option count 0 — {!check} reports
    them instead). *)

val pp_verdict : Format.formatter -> verdict -> unit
