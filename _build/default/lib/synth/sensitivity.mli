(** Sensitivity of the optimal mapping to technology figures.

    Cost estimates are uncertain early in a design; a useful question is
    how far a figure can drift before the optimal HW/SW decision flips.
    Raising a process's hardware area monotonically discourages mapping
    it to hardware (and raising its software load discourages software),
    so the flip point is unique and binary search finds it exactly. *)

type parameter =
  | Hw_area  (** sweep the process's ASIC cost *)
  | Sw_load  (** sweep the process's processor load *)

type flip = {
  at : int;  (** smallest parameter value whose optimum differs *)
  below : Binding.impl;  (** the process's implementation before the flip *)
  above : Binding.impl option;
      (** after the flip; [None] when the whole problem turns
          infeasible instead *)
}

val flip_point :
  ?capacity:int ->
  parameter:parameter ->
  range:int * int ->
  Tech.t ->
  App.t list ->
  Spi.Ids.Process_id.t ->
  flip option
(** Searches [range] (inclusive) for the smallest parameter value at
    which the cost-optimal implementation of the process differs from
    its implementation at the low end of the range.  [None] when the
    decision is stable across the whole range, the problem is
    infeasible at the low end, or the process lacks the swept option.
    @raise Invalid_argument on an empty range. *)

val pp_flip : Format.formatter -> flip -> unit
