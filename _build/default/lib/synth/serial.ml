module I = Spi.Ids

let all_in_one ?capacity tech apps =
  let union = App.union_procs apps in
  let merged =
    { App.name = "serialized"; procs = union }
  in
  Explore.optimal ?capacity tech [ merged ]

type incremental_result = {
  order : string list;
  binding : Binding.t;
  cost : Cost.breakdown;
  feasible : bool;
}

let incremental ?capacity tech apps =
  let order = List.map (fun (a : App.t) -> a.App.name) apps in
  let binding, feasible =
    List.fold_left
      (fun (acc, feasible) app ->
        if not feasible then (acc, false)
        else
          match Explore.optimal ?capacity ~fixed:acc tech [ app ] with
          | None -> (acc, false)
          | Some s -> (Binding.union_prefer_left acc s.Explore.binding, true))
      (Binding.empty, true) apps
  in
  let cost =
    try Cost.of_binding tech binding
    with Not_found -> { Cost.processor = 0; asics = []; total = max_int }
  in
  { order; binding; cost; feasible }

let rec permutations = function
  | [] -> [ [] ]
  | l ->
    List.concat_map
      (fun x ->
        let rest = List.filter (fun y -> y != x) l in
        List.map (fun perm -> x :: perm) (permutations rest))
      l

let all_orders ?capacity tech apps =
  List.map (incremental ?capacity tech) (permutations apps)

let cost_spread results =
  let feasible = List.filter (fun r -> r.feasible) results in
  match feasible with
  | [] -> None
  | r :: rest ->
    let init = (r.cost.Cost.total, r.cost.Cost.total) in
    Some
      (List.fold_left
         (fun (best, worst) r ->
           (min best r.cost.Cost.total, max worst r.cost.Cost.total))
         init rest)
