(** Design-space exploration: optimal HW/SW partitioning.

    Branch-and-bound over the union of the applications' processes.
    Feasibility (checked incrementally) is per application — mutually
    exclusive variants never share a schedulability budget, which is
    exactly where a variant-aware representation beats both independent
    synthesis and superposition.  The explorer is exact: it returns a
    cost-minimal feasible binding when one exists. *)

type solution = {
  binding : Binding.t;
  cost : Cost.breakdown;
  worst_load : int;  (** highest per-application software load *)
  explored : int;  (** branch-and-bound nodes visited *)
}

val optimal :
  ?capacity:int ->
  ?fixed:Binding.t ->
  ?accept:(Binding.t -> bool) ->
  Tech.t ->
  App.t list ->
  solution option
(** [fixed] pins implementations for some processes (used by the
    incremental baseline).  [accept] is an additional feasibility
    filter evaluated on complete bindings — e.g.
    {!Timing.all_satisfied} partially applied, to demand latency-path
    constraints on top of schedulability.  [None] when no feasible
    binding exists.
    @raise Not_found when an application process is missing from the
    technology library. *)

val optimal_exn :
  ?capacity:int ->
  ?fixed:Binding.t ->
  ?accept:(Binding.t -> bool) ->
  Tech.t ->
  App.t list ->
  solution
(** @raise Failure when infeasible. *)

val pp_solution : Format.formatter -> solution -> unit
