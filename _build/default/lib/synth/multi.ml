module I = Spi.Ids

type processor = { id : I.Resource_id.t; capacity : int; cost : int }

let processor ~name ~capacity ~cost =
  if capacity < 1 then invalid_arg "Multi.processor: capacity < 1";
  if cost < 0 then invalid_arg "Multi.processor: negative cost";
  { id = I.Resource_id.of_string name; capacity; cost }

type placement = Hw | Sw_on of I.Resource_id.t
type binding = placement I.Process_id.Map.t

type solution = {
  binding : binding;
  total_cost : int;
  processors_used : I.Resource_id.t list;
  asic_area : int;
  worst_load : (I.Resource_id.t * int) list;
  explored : int;
}

let check_processors procs =
  ignore
    (List.fold_left
       (fun seen p ->
         if List.exists (I.Resource_id.equal p.id) seen then
           invalid_arg
             (Format.asprintf "Multi: duplicate processor %a" I.Resource_id.pp
                p.id)
         else p.id :: seen)
       [] procs)

(* Search state: per (application, processor) accumulated load, the set
   of processors in use (bitmask over the processor array), and the
   accumulated ASIC area.  Lower bound: area + cost of processors used
   so far — placements only ever add processors and area. *)
let optimal ?(accept = fun _ -> true) tech processors apps =
  check_processors processors;
  let procs_arr = Array.of_list processors in
  let n_cpu = Array.length procs_arr in
  let apps_arr = Array.of_list apps in
  let n_app = Array.length apps_arr in
  let union = I.Process_id.Set.elements (App.union_procs apps) in
  let membership pid =
    Array.map (fun (a : App.t) -> I.Process_id.Set.mem pid a.App.procs) apps_arr
  in
  let loads = Array.make_matrix n_app n_cpu 0 in
  let used = Array.make n_cpu false in
  let best = ref None and best_cost = ref max_int in
  let explored = ref 0 in
  let cpu_cost_used () =
    let total = ref 0 in
    Array.iteri (fun i u -> if u then total := !total + procs_arr.(i).cost) used;
    !total
  in
  let rec search remaining binding area =
    incr explored;
    let lower = area + cpu_cost_used () in
    if lower >= !best_cost then ()
    else
      match remaining with
      | [] ->
        if accept binding then begin
          best_cost := lower;
          let worst_load =
            List.init n_cpu (fun c ->
                let w = ref 0 in
                for a = 0 to n_app - 1 do
                  w := max !w loads.(a).(c)
                done;
                (procs_arr.(c).id, !w))
          in
          let processors_used =
            List.filter_map
              (fun c -> if used.(c) then Some procs_arr.(c).id else None)
              (List.init n_cpu Fun.id)
          in
          best :=
            Some
              {
                binding;
                total_cost = lower;
                processors_used;
                asic_area = area;
                worst_load;
                explored = 0;
              }
        end
      | pid :: rest ->
        let options = Tech.options_of tech pid in
        let member = membership pid in
        (* hardware first: cheapest completions tighten the bound *)
        (match options.Tech.hw with
        | Some { Tech.area = a } ->
          search rest (I.Process_id.Map.add pid Hw binding) (area + a)
        | None -> ());
        (match options.Tech.sw with
        | Some { Tech.load } ->
          for c = 0 to n_cpu - 1 do
            let ok = ref true in
            Array.iteri
              (fun a m ->
                if m then begin
                  loads.(a).(c) <- loads.(a).(c) + load;
                  if loads.(a).(c) > procs_arr.(c).capacity then ok := false
                end)
              member;
            let was_used = used.(c) in
            used.(c) <- true;
            if !ok then
              search rest
                (I.Process_id.Map.add pid (Sw_on procs_arr.(c).id) binding)
                area;
            if not was_used then used.(c) <- false;
            Array.iteri
              (fun a m -> if m then loads.(a).(c) <- loads.(a).(c) - load)
              member
          done
        | None -> ())
  in
  search union I.Process_id.Map.empty 0;
  Option.map (fun s -> { s with explored = !explored }) !best

let to_simple binding =
  I.Process_id.Map.fold
    (fun pid placement acc ->
      let impl = match placement with Hw -> Binding.Hw | Sw_on _ -> Binding.Sw in
      Binding.bind pid impl acc)
    binding Binding.empty

let pp_placement ppf = function
  | Hw -> Format.pp_print_string ppf "HW"
  | Sw_on r -> Format.fprintf ppf "SW@%a" I.Resource_id.pp r

let pp_solution ppf s =
  Format.fprintf ppf "@[<v>cost %d (asics %d, cpus: %s)@,%a@]" s.total_cost
    s.asic_area
    (String.concat ", " (List.map I.Resource_id.to_string s.processors_used))
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
       (fun ppf (pid, p) ->
         Format.fprintf ppf "%a:%a" I.Process_id.pp pid pp_placement p))
    (I.Process_id.Map.bindings s.binding)
