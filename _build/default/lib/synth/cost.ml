module I = Spi.Ids

type breakdown = {
  processor : int;
  asics : (I.Process_id.t * int) list;
  total : int;
}

let of_binding tech binding =
  let sw = Binding.sw_processes binding in
  let processor =
    if I.Process_id.Set.is_empty sw then 0 else Tech.processor_cost tech
  in
  let asics =
    I.Process_id.Set.fold
      (fun pid acc ->
        match (Tech.options_of tech pid).Tech.hw with
        | Some { Tech.area } -> (pid, area) :: acc
        | None -> raise Not_found)
      (Binding.hw_processes binding)
      []
  in
  let asics = List.rev asics in
  let total = processor + List.fold_left (fun acc (_, a) -> acc + a) 0 asics in
  { processor; asics; total }

let total tech binding = (of_binding tech binding).total

let pp ppf b =
  Format.fprintf ppf "processor=%d asics=[%s] total=%d" b.processor
    (String.concat "; "
       (List.map
          (fun (p, a) -> Format.asprintf "%a:%d" I.Process_id.pp p a)
          b.asics))
    b.total
