(** Synthesis reports: one document per design decision.

    Bundles the individual analyses — optimal binding, baselines,
    Pareto frontier, per-application static schedules and timing
    verdicts — into a single structured value with a printer, so tools
    (the CLI, the bench harness, CI logs) present consistent output. *)

type application_report = {
  app : App.t;
  model : Spi.Model.t option;
      (** the flattened model, when available (enables scheduling and
          timing sections) *)
  schedule : (List_schedule.t, List_schedule.error) result option;
  timing : (Spi.Constraint_.t * Spi.Constraint_.outcome) list;
}

type t = {
  tech : Tech.t;
  optimal : Explore.solution option;
  superposition : Superpose.result option;
  serial_spread : (int * int) option;
      (** best/worst incremental serialization cost *)
  frontier : Pareto.point list;
  design_time_speedup : float;
  applications : application_report list;
}

val build :
  ?capacity:int ->
  ?models:(string * Spi.Model.t) list ->
  ?constraints:Spi.Constraint_.t list ->
  Tech.t ->
  App.t list ->
  t
(** Runs every analysis.  [models] associates application names with
    flattened models (enabling the schedule and timing sections);
    [constraints] are checked under the optimal binding's
    implementation latencies. *)

val pp : Format.formatter -> t -> unit
