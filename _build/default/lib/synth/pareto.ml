module I = Spi.Ids

type point = { binding : Binding.t; total_cost : int; worst_load : int }

let dominates a b =
  a.total_cost <= b.total_cost && a.worst_load <= b.worst_load
  && (a.total_cost < b.total_cost || a.worst_load < b.worst_load)

let frontier ?(capacity = Schedule.default_capacity) tech apps =
  let procs = I.Process_id.Set.elements (App.union_procs apps) in
  let points = ref [] in
  let rec enumerate remaining binding =
    match remaining with
    | [] -> (
      match Schedule.check ~capacity tech binding apps with
      | Schedule.Feasible { worst_load; _ } ->
        points :=
          { binding; total_cost = Cost.total tech binding; worst_load }
          :: !points
      | Schedule.Overload _ | Schedule.Unbound_process _
      | Schedule.No_sw_option _ | Schedule.No_hw_option _ -> ())
    | pid :: rest ->
      let o = Tech.options_of tech pid in
      (match o.Tech.sw with
      | Some _ -> enumerate rest (Binding.bind pid Binding.Sw binding)
      | None -> ());
      (match o.Tech.hw with
      | Some _ -> enumerate rest (Binding.bind pid Binding.Hw binding)
      | None -> ())
  in
  enumerate procs Binding.empty;
  let all = !points in
  let non_dominated =
    List.filter
      (fun p -> not (List.exists (fun q -> dominates q p) all))
      all
  in
  (* deduplicate equal objective vectors, keep one representative *)
  let dedup =
    List.fold_left
      (fun acc p ->
        if
          List.exists
            (fun q -> q.total_cost = p.total_cost && q.worst_load = p.worst_load)
            acc
        then acc
        else p :: acc)
      [] non_dominated
  in
  List.sort
    (fun a b ->
      match Int.compare a.total_cost b.total_cost with
      | 0 -> Int.compare a.worst_load b.worst_load
      | c -> c)
    dedup

let pp_point ppf p =
  Format.fprintf ppf "cost=%d load=%d [%a]" p.total_cost p.worst_load
    Binding.pp p.binding
