(** The design-time model of Section 5.

    "When synthesizing n systems individually, a process that occurs in
    all applications … has to be considered n times.  In the proposed
    approach, such processes need to be considered only once during the
    synthesis of all applications."  Design time is therefore modeled as
    the number of synthesis decisions — one per process considered —
    scaled by a per-decision effort. *)

val decisions_independent : App.t list -> int
(** Sum over applications of their process counts. *)

val decisions_variant_aware : App.t list -> int
(** Size of the union of all applications' process sets. *)

val time :
  ?effort_per_decision:int -> ?fixed_overhead:int -> decisions:int -> unit -> int
(** [fixed_overhead] models per-synthesis-run setup (defaults 6 and 1,
    calibrated in the Table 1 bench). *)

val speedup : App.t list -> float
(** [decisions_independent / decisions_variant_aware] — expected
    design-time ratio; > 1 whenever applications overlap. *)
