let decisions_independent apps =
  List.fold_left
    (fun acc (a : App.t) -> acc + Spi.Ids.Process_id.Set.cardinal a.App.procs)
    0 apps

let decisions_variant_aware apps =
  Spi.Ids.Process_id.Set.cardinal (App.union_procs apps)

let time ?(effort_per_decision = 6) ?(fixed_overhead = 1) ~decisions () =
  fixed_overhead + (effort_per_decision * decisions)

let speedup apps =
  let ind = decisions_independent apps
  and va = decisions_variant_aware apps in
  if va = 0 then 1.0 else float_of_int ind /. float_of_int va
