(** Applications: the process sets synthesis reasons about.

    An application is one derivable product of a system with variants —
    the common part plus one cluster per interface (Section 5's
    "Application 1" and "Application 2").  Mutually exclusive variants
    never run together, so schedulability is checked per application
    while cost is paid over the union of all applications. *)

type t = {
  name : string;
  procs : Spi.Ids.Process_id.Set.t;
}

val make : string -> Spi.Ids.Process_id.t list -> t
val of_model : string -> Spi.Model.t -> t

val of_system : Variants.System.t -> t list
(** One application per variant combination, named after the chosen
    clusters; process ids are the flattened ids, so processes of the
    common part coincide across applications while cluster processes
    are distinct per variant. *)

val union_procs : t list -> Spi.Ids.Process_id.Set.t
val shared_procs : t list -> Spi.Ids.Process_id.Set.t
(** Intersection over all applications. *)

val pp : Format.formatter -> t -> unit
