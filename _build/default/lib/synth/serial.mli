(** Serialization baselines from the literature.

    Two prior approaches the paper contrasts against (Section 1):

    - {!all_in_one} follows Kim/Karri/Potkonjak [6]: every variant is
      enumerated and serialized into a single large task, so all
      processes must be schedulable {e together} — mutual exclusion
      between variants is lost and the synthesis is over-constrained.
    - {!incremental} follows Kavalade/Subrahmanyam [5]: applications
      are synthesized one at a time; implementations chosen for
      processes already seen are frozen for later applications.  Both
      groups "report a dominant influence of the serialization order on
      result quality" — exercised by {!all_orders}. *)

val all_in_one : ?capacity:int -> Tech.t -> App.t list -> Explore.solution option
(** Single pseudo-application over the union of all process sets. *)

type incremental_result = {
  order : string list;  (** application names in synthesis order *)
  binding : Binding.t;
  cost : Cost.breakdown;
  feasible : bool;
      (** false when a later application cannot be completed under the
          frozen decisions *)
}

val incremental : ?capacity:int -> Tech.t -> App.t list -> incremental_result
(** Synthesizes in the given list order. *)

val all_orders : ?capacity:int -> Tech.t -> App.t list -> incremental_result list
(** One result per permutation of the applications (n! orders — intended
    for the small ablation instances). *)

val cost_spread : incremental_result list -> (int * int) option
(** [(best, worst)] total cost over the feasible orders; [None] when no
    order is feasible. *)
