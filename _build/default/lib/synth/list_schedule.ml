module I = Spi.Ids

type entry = {
  proc : I.Process_id.t;
  impl : Binding.impl;
  start : int;
  finish : int;
}

type t = { entries : entry list; makespan : int; processor_busy : int }
type error = Cyclic of I.Process_id.t list | Unbound of I.Process_id.t

module Pnode = struct
  type t = I.Process_id.t

  let compare = I.Process_id.compare
  let pp = I.Process_id.pp
end

module Pgraph = Graphlib.Digraph.Make (Pnode)
module Ptraverse = Graphlib.Traverse.Make (Pgraph)

let process_graph model =
  List.fold_left
    (fun g proc ->
      let pid = Spi.Process.id proc in
      let g = Pgraph.add_node pid g in
      I.Channel_id.Set.fold
        (fun cid g ->
          match Spi.Model.reader_of cid model with
          | Some reader -> Pgraph.add_edge pid reader g
          | None -> g)
        (Spi.Process.outputs proc) g)
    Pgraph.empty (Spi.Model.processes model)

let schedule ?latency_model tech binding model =
  let latency pid = Timing.latency_of ?latency_model tech binding pid in
  let g = process_graph model in
  match Ptraverse.topological_sort g with
  | Error cycle -> Error (Cyclic cycle)
  | Ok order -> (
    match
      List.find_opt
        (fun pid -> Option.is_none (Binding.impl_of pid binding))
        order
    with
    | Some pid -> Error (Unbound pid)
    | None ->
      (* critical-path priority: latency of the longest downstream chain
         (inclusive), computed over the transposed graph *)
      let priority =
        match
          Ptraverse.longest_path_weights ~weight:latency (Pgraph.transpose g)
        with
        | Ok weights -> fun pid -> Pgraph.Node_map.find pid weights
        | Error _ -> fun _ -> 0
      in
      let finished = Hashtbl.create 16 in
      let scheduled = ref [] in
      let cpu_free = ref 0 in
      let is_done pid = Hashtbl.mem finished (I.Process_id.to_string pid) in
      let preds_done pid =
        Pgraph.Node_set.for_all is_done (Pgraph.preds pid g)
      in
      let data_ready pid =
        Pgraph.Node_set.fold
          (fun p acc ->
            max acc (Hashtbl.find finished (I.Process_id.to_string p)))
          (Pgraph.preds pid g) 0
      in
      let remaining = ref order in
      while !remaining <> [] do
        let ready, blocked = List.partition preds_done !remaining in
        (* ready is never empty: the graph is acyclic *)
        let best =
          List.fold_left
            (fun best pid ->
              match best with
              | None -> Some pid
              | Some b -> if priority pid > priority b then Some pid else best)
            None ready
        in
        match best with
        | None -> remaining := [] (* unreachable *)
        | Some pid ->
          let impl =
            match Binding.impl_of pid binding with
            | Some impl -> impl
            | None -> Binding.Hw (* excluded above *)
          in
          let earliest = data_ready pid in
          let start =
            match impl with
            | Binding.Sw -> max earliest !cpu_free
            | Binding.Hw -> earliest
          in
          let finish = start + latency pid in
          if impl = Binding.Sw then cpu_free := finish;
          Hashtbl.replace finished (I.Process_id.to_string pid) finish;
          scheduled := { proc = pid; impl; start; finish } :: !scheduled;
          remaining :=
            blocked @ List.filter (fun q -> not (I.Process_id.equal q pid)) ready
      done;
      let entries =
        List.sort
          (fun a b ->
            match Int.compare a.start b.start with
            | 0 -> I.Process_id.compare a.proc b.proc
            | c -> c)
          !scheduled
      in
      let makespan = List.fold_left (fun acc e -> max acc e.finish) 0 entries in
      let processor_busy =
        List.fold_left
          (fun acc e ->
            if e.impl = Binding.Sw then acc + (e.finish - e.start) else acc)
          0 entries
      in
      Ok { entries; makespan; processor_busy })

let meets_deadline t deadline = t.makespan <= deadline

let entry_of pid t =
  List.find_opt (fun e -> I.Process_id.equal e.proc pid) t.entries

let pp_gantt ppf t =
  let width = 60 in
  let scale =
    if t.makespan = 0 then 1.0
    else float_of_int width /. float_of_int t.makespan
  in
  let name_width =
    List.fold_left
      (fun acc e -> max acc (String.length (I.Process_id.to_string e.proc)))
      4 t.entries
  in
  Format.fprintf ppf "@[<v>";
  List.iter
    (fun e ->
      let lead = int_of_float (float_of_int e.start *. scale) in
      let len =
        max 1 (int_of_float (float_of_int (e.finish - e.start) *. scale))
      in
      Format.fprintf ppf "%-*s %s |%s%s| %d..%d@," name_width
        (I.Process_id.to_string e.proc)
        (match e.impl with Binding.Sw -> "SW" | Binding.Hw -> "HW")
        (String.make lead ' ')
        (String.make len (match e.impl with Binding.Sw -> '#' | Binding.Hw -> '='))
        e.start e.finish)
    t.entries;
  Format.fprintf ppf "makespan %d, processor busy %d@]" t.makespan
    t.processor_busy

let pp_error ppf = function
  | Cyclic procs ->
    Format.fprintf ppf "cyclic process graph: %s"
      (String.concat " -> " (List.map I.Process_id.to_string procs))
  | Unbound pid -> Format.fprintf ppf "process %a unbound" I.Process_id.pp pid
