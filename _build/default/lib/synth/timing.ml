type latency_model = {
  sw_latency_of_load : int -> int;
  hw_latency_of_area : int -> int;
}

let default_latency_model =
  { sw_latency_of_load = (fun load -> load); hw_latency_of_area = (fun _ -> 1) }

let latency_of ?(latency_model = default_latency_model) tech binding pid =
  match Binding.impl_of pid binding with
  | None -> 0
  | Some impl -> (
    match
      (try Some (Tech.options_of tech pid) with Not_found -> None), impl
    with
    | None, _ -> 0
    | Some o, Binding.Sw -> (
      match o.Tech.sw with
      | Some { Tech.load } -> latency_model.sw_latency_of_load load
      | None -> 0)
    | Some o, Binding.Hw -> (
      match o.Tech.hw with
      | Some { Tech.area } -> latency_model.hw_latency_of_area area
      | None -> 0))

let check ?latency_model tech binding model constraints =
  Spi.Constraint_.check_all
    ~latency_of:(latency_of ?latency_model tech binding)
    model constraints

let all_satisfied ?latency_model tech binding model constraints =
  Spi.Constraint_.all_satisfied
    (check ?latency_model tech binding model constraints)
