(** Static list scheduling on the partitioned architecture.

    Once a binding is chosen, one iteration of the application (every
    process executing once) is scheduled statically: data dependencies
    follow the model's channels, software processes serialize on the
    shared processor, hardware processes only wait for their inputs.
    Priorities follow the longest remaining path (critical path first).
    The resulting makespan refines the utilization-based schedulability
    check with actual start times — and yields a Gantt chart. *)

type entry = {
  proc : Spi.Ids.Process_id.t;
  impl : Binding.impl;
  start : int;
  finish : int;
}

type t = {
  entries : entry list;  (** sorted by start time *)
  makespan : int;
  processor_busy : int;  (** summed software execution time *)
}

type error =
  | Cyclic of Spi.Ids.Process_id.t list
      (** the model's process graph has a cycle: no static one-shot
          schedule exists *)
  | Unbound of Spi.Ids.Process_id.t

val schedule :
  ?latency_model:Timing.latency_model ->
  Tech.t ->
  Binding.t ->
  Spi.Model.t ->
  (t, error) result
(** Schedules one execution of every process of [model] under
    [binding], with implementation latencies from {!Timing.latency_of}. *)

val meets_deadline : t -> int -> bool

val entry_of : Spi.Ids.Process_id.t -> t -> entry option

val pp_gantt : Format.formatter -> t -> unit
(** An ASCII Gantt chart, one row per process. *)

val pp_error : Format.formatter -> error -> unit
