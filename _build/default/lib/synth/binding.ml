module I = Spi.Ids

type impl = Sw | Hw
type t = impl I.Process_id.Map.t

let empty = I.Process_id.Map.empty
let bind pid impl t = I.Process_id.Map.add pid impl t
let of_list entries = List.fold_left (fun t (p, i) -> bind p i t) empty entries
let impl_of pid t = I.Process_id.Map.find_opt pid t
let mem pid t = I.Process_id.Map.mem pid t
let processes t = List.map fst (I.Process_id.Map.bindings t)

let filter_set wanted t =
  I.Process_id.Map.fold
    (fun pid impl acc ->
      if impl = wanted then I.Process_id.Set.add pid acc else acc)
    t I.Process_id.Set.empty

let sw_processes t = filter_set Sw t
let hw_processes t = filter_set Hw t

let merge a b =
  let conflicts = ref [] in
  let merged =
    I.Process_id.Map.union
      (fun pid ia ib ->
        if ia = ib then Some ia
        else begin
          conflicts := pid :: !conflicts;
          Some ia
        end)
      a b
  in
  match !conflicts with [] -> Ok merged | cs -> Error (List.rev cs)

let union_prefer_left a b = I.Process_id.Map.union (fun _ ia _ -> Some ia) a b
let cardinal t = I.Process_id.Map.cardinal t

let pp_impl ppf = function
  | Sw -> Format.pp_print_string ppf "SW"
  | Hw -> Format.pp_print_string ppf "HW"

let pp ppf t =
  Format.pp_print_list
    ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
    (fun ppf (pid, impl) ->
      Format.fprintf ppf "%a:%a" I.Process_id.pp pid pp_impl impl)
    ppf (I.Process_id.Map.bindings t)
