lib/synth/list_schedule.mli: Binding Format Spi Tech Timing
