lib/synth/serial.mli: App Binding Cost Explore Tech
