lib/synth/rta.mli: Binding Format Spi Tech
