lib/synth/report.mli: App Explore Format List_schedule Pareto Spi Superpose Tech
