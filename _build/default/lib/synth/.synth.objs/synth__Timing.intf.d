lib/synth/timing.mli: Binding Spi Tech
