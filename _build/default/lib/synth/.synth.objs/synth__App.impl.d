lib/synth/app.ml: Format List Spi String Variants
