lib/synth/sensitivity.ml: Binding Explore Format Option Spi Tech
