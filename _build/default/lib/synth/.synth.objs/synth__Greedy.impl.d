lib/synth/greedy.ml: App Binding Cost Explore Int List Option Schedule Spi Tech
