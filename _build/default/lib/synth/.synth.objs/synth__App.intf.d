lib/synth/app.mli: Format Spi Variants
