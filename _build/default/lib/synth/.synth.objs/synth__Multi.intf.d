lib/synth/multi.mli: App Binding Format Spi Tech
