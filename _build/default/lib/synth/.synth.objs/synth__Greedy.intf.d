lib/synth/greedy.mli: App Binding Cost Spi Tech
