lib/synth/report.ml: App Binding Cost Design_time Explore Format List List_schedule Pareto Serial Spi Superpose Tech Timing
