lib/synth/tech.ml: Format List Spi
