lib/synth/multi.ml: App Array Binding Format Fun List Option Spi String Tech
