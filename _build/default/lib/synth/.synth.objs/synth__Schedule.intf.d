lib/synth/schedule.mli: App Binding Format Spi Tech
