lib/synth/rta.ml: Binding Format Int List Spi Tech
