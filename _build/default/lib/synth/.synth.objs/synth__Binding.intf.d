lib/synth/binding.mli: Format Spi
