lib/synth/sensitivity.mli: App Binding Format Spi Tech
