lib/synth/cost.mli: Binding Format Spi Tech
