lib/synth/explore.mli: App Binding Cost Format Tech
