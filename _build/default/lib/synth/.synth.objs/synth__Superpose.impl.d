lib/synth/superpose.ml: App Binding Cost Explore Format List Option Spi Tech
