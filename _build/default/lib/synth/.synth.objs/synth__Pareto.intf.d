lib/synth/pareto.mli: App Binding Format Tech
