lib/synth/serial.ml: App Binding Cost Explore List Spi
