lib/synth/explore.ml: App Array Binding Cost Format Schedule Spi Tech
