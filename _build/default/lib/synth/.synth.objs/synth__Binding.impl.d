lib/synth/binding.ml: Format List Spi
