lib/synth/timing.ml: Binding Spi Tech
