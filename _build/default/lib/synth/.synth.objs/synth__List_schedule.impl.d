lib/synth/list_schedule.ml: Binding Format Graphlib Hashtbl Int List Option Spi String Timing
