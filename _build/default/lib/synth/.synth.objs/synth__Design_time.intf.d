lib/synth/design_time.mli: App
