lib/synth/pareto.ml: App Binding Cost Format Int List Schedule Spi Tech
