lib/synth/tech.mli: Format Spi
