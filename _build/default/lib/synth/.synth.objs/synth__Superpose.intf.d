lib/synth/superpose.mli: App Binding Cost Explore Format Spi Tech
