lib/synth/cost.ml: Binding Format List Spi String Tech
