lib/synth/design_time.ml: App List Spi
