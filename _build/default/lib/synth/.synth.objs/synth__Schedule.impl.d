lib/synth/schedule.ml: App Binding Format List Option Spi Tech
