(** The cost model of Table 1.

    Total system cost = processor cost (paid once when at least one
    process runs in software) + the ASIC area of every
    hardware-mapped process.  Because a process is one model element
    even when it appears in several applications, shared hardware is
    automatically counted once, while distinct variants in hardware
    add up — the superposition penalty. *)

type breakdown = {
  processor : int;  (** 0 when nothing is in software *)
  asics : (Spi.Ids.Process_id.t * int) list;
  total : int;
}

val of_binding : Tech.t -> Binding.t -> breakdown
(** @raise Not_found if a hardware-mapped process is missing from the
    library or lacks a hardware option. *)

val total : Tech.t -> Binding.t -> int
val pp : Format.formatter -> breakdown -> unit
