(** A greedy heuristic partitioner for large instances.

    The exact explorer ({!Explore}) visits up to 2^n bindings; past a
    few dozen processes that stops being interactive.  This heuristic
    runs in O(n log n): start all-software, and while some application
    overloads the processor, move to hardware the process with the best
    relief-per-cost ratio among those involved in overloaded
    applications.  The result is always feasible when one exists under
    this scheme, and never better than {!Explore.optimal} — the qcheck
    suite pins both properties. *)

type result = {
  binding : Binding.t;
  cost : Cost.breakdown;
  moves : Spi.Ids.Process_id.t list;
      (** processes moved to hardware, in move order *)
}

val partition :
  ?capacity:int -> Tech.t -> App.t list -> result option
(** [None] when even the all-hardware fallback cannot satisfy an
    application (a process without a hardware option keeps overloading).
    @raise Not_found when a process is missing from the library. *)

val quality_gap :
  ?capacity:int -> Tech.t -> App.t list -> (int * int) option
(** [(heuristic, optimal)] total costs for instances the exact explorer
    can still handle; [None] when either fails. *)
