(** Process-to-implementation bindings. *)

type impl = Sw | Hw

type t
(** A total mapping from a set of processes to implementations. *)

val empty : t
val bind : Spi.Ids.Process_id.t -> impl -> t -> t
val of_list : (Spi.Ids.Process_id.t * impl) list -> t
val impl_of : Spi.Ids.Process_id.t -> t -> impl option
val mem : Spi.Ids.Process_id.t -> t -> bool
val processes : t -> Spi.Ids.Process_id.t list
val sw_processes : t -> Spi.Ids.Process_id.Set.t
val hw_processes : t -> Spi.Ids.Process_id.Set.t
val merge : t -> t -> (t, Spi.Ids.Process_id.t list) result
(** Union of two bindings; [Error ps] lists every process bound
    differently on the two sides (the left implementation is kept in
    neither case — merging fails). *)

val union_prefer_left : t -> t -> t
val cardinal : t -> int
val pp_impl : Format.formatter -> impl -> unit
val pp : Format.formatter -> t -> unit
