type application_report = {
  app : App.t;
  model : Spi.Model.t option;
  schedule : (List_schedule.t, List_schedule.error) result option;
  timing : (Spi.Constraint_.t * Spi.Constraint_.outcome) list;
}

type t = {
  tech : Tech.t;
  optimal : Explore.solution option;
  superposition : Superpose.result option;
  serial_spread : (int * int) option;
  frontier : Pareto.point list;
  design_time_speedup : float;
  applications : application_report list;
}

let build ?capacity ?(models = []) ?(constraints = []) tech apps =
  let optimal = Explore.optimal ?capacity tech apps in
  let superposition = Superpose.superpose ?capacity tech apps in
  let serial_spread =
    if List.length apps <= 4 then
      Serial.cost_spread (Serial.all_orders ?capacity tech apps)
    else None
  in
  let frontier =
    if Binding.cardinal Binding.empty = 0 && List.length apps <= 4 then
      Pareto.frontier ?capacity tech apps
    else []
  in
  let applications =
    List.map
      (fun (app : App.t) ->
        let model = List.assoc_opt app.App.name models in
        let schedule, timing =
          match model, optimal with
          | Some m, Some sol ->
            ( Some (List_schedule.schedule tech sol.Explore.binding m),
              Timing.check tech sol.Explore.binding m constraints )
          | _, _ -> (None, [])
        in
        { app; model; schedule; timing })
      apps
  in
  {
    tech;
    optimal;
    superposition;
    serial_spread;
    frontier;
    design_time_speedup = Design_time.speedup apps;
    applications;
  }

let pp ppf r =
  Format.fprintf ppf "@[<v>=== Synthesis report ===@,";
  (match r.optimal with
  | Some s ->
    Format.fprintf ppf "optimal (variant-aware): %a@," Cost.pp s.Explore.cost;
    Format.fprintf ppf "  binding: %a@," Binding.pp s.Explore.binding
  | None -> Format.fprintf ppf "optimal: INFEASIBLE@,");
  (match r.superposition with
  | Some s ->
    Format.fprintf ppf "superposition baseline: total %d@,"
      s.Superpose.cost.Cost.total
  | None -> Format.fprintf ppf "superposition: infeasible@,");
  (match r.serial_spread with
  | Some (best, worst) ->
    Format.fprintf ppf "serialization orders: best %d, worst %d@," best worst
  | None -> ());
  if r.frontier <> [] then begin
    Format.fprintf ppf "pareto frontier:@,";
    List.iter (fun p -> Format.fprintf ppf "  %a@," Pareto.pp_point p) r.frontier
  end;
  Format.fprintf ppf "design-time speedup: %.2fx@," r.design_time_speedup;
  List.iter
    (fun ar ->
      Format.fprintf ppf "@,--- %s ---@," ar.app.App.name;
      (match ar.schedule with
      | Some (Ok s) -> Format.fprintf ppf "%a@," List_schedule.pp_gantt s
      | Some (Error e) ->
        Format.fprintf ppf "schedule: %a@," List_schedule.pp_error e
      | None -> ());
      List.iter
        (fun (c, o) ->
          Format.fprintf ppf "%a: %a@," Spi.Constraint_.pp c
            Spi.Constraint_.pp_outcome o)
        ar.timing)
    r.applications;
  Format.fprintf ppf "@]"
