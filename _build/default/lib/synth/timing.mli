(** Binding-aware timing verification.

    SPI timing constraints are checked constructively against
    implementation latencies: a process mapped to hardware runs at its
    ASIC latency, a software process at its worst-case execution time on
    the shared processor.  This module derives the per-process latency
    estimate from a binding and re-checks the model's latency-path
    constraints — the "correct timing behavior can be guaranteed" side
    of the optimization loop. *)

type latency_model = {
  sw_latency_of_load : int -> int;
      (** WCET on the processor as a function of the technology load
          figure (default: identity) *)
  hw_latency_of_area : int -> int;
      (** ASIC latency as a function of area (default: [fun _ -> 1] —
          hardware is fast) *)
}

val default_latency_model : latency_model

val latency_of :
  ?latency_model:latency_model ->
  Tech.t ->
  Binding.t ->
  Spi.Ids.Process_id.t ->
  int
(** Implementation latency of one process under the binding; processes
    absent from binding or library fall back to latency 0. *)

val check :
  ?latency_model:latency_model ->
  Tech.t ->
  Binding.t ->
  Spi.Model.t ->
  Spi.Constraint_.t list ->
  (Spi.Constraint_.t * Spi.Constraint_.outcome) list

val all_satisfied :
  ?latency_model:latency_model ->
  Tech.t ->
  Binding.t ->
  Spi.Model.t ->
  Spi.Constraint_.t list ->
  bool
