(** Technology library.

    Each process has up to two implementation options: software on the
    shared processor (with a worst-case execution load) and hardware as
    a dedicated ASIC (with an area/cost figure).  The cost and load
    units are the paper's unit-less numbers; see Table 1. *)

type sw_option = {
  load : int;
      (** processor utilisation share (percent of capacity) the process
          needs when mapped to software *)
}

type hw_option = { area : int  (** ASIC cost when mapped to hardware *) }

type options = { sw : sw_option option; hw : hw_option option }

type t

val make :
  ?processor_cost:int -> (Spi.Ids.Process_id.t * options) list -> t
(** [processor_cost] (default 15, the paper's value) is paid once if any
    process is mapped to software.
    @raise Invalid_argument on duplicate entries, a process with no
    option at all, or negative figures. *)

val both : load:int -> area:int -> options
val sw_only : load:int -> options
val hw_only : area:int -> options

val processor_cost : t -> int
val options_of : t -> Spi.Ids.Process_id.t -> options
(** @raise Not_found for processes absent from the library. *)

val mem : t -> Spi.Ids.Process_id.t -> bool
val process_ids : t -> Spi.Ids.Process_id.t list

val of_weights :
  ?processor_cost:int ->
  weight:(Spi.Ids.Process_id.t -> int) ->
  Spi.Ids.Process_id.t list ->
  t
(** Derives a deterministic library from a per-process weight: load is
    [weight / 3 + 5] and area [weight + 10] — hardware is faster but
    dearer, as usual.  Used with {!Variants.Generator.process_weight}
    for the ablation sweeps. *)

val restrict : Spi.Ids.Process_id.Set.t -> t -> t

val with_options : Spi.Ids.Process_id.t -> options -> t -> t
(** Replaces (or adds) one process's implementation options.
    @raise Invalid_argument on invalid options. *)

val pp : Format.formatter -> t -> unit
