module I = Spi.Ids

type sw_option = { load : int }
type hw_option = { area : int }
type options = { sw : sw_option option; hw : hw_option option }
type t = { processor_cost : int; table : options I.Process_id.Map.t }

let both ~load ~area = { sw = Some { load }; hw = Some { area } }
let sw_only ~load = { sw = Some { load }; hw = None }
let hw_only ~area = { sw = None; hw = Some { area } }

let check_options pid o =
  (match o.sw, o.hw with
  | None, None ->
    invalid_arg
      (Format.asprintf "Tech: process %a has no implementation option"
         I.Process_id.pp pid)
  | _ -> ());
  (match o.sw with
  | Some { load } when load < 0 -> invalid_arg "Tech: negative load"
  | Some _ | None -> ());
  match o.hw with
  | Some { area } when area < 0 -> invalid_arg "Tech: negative area"
  | Some _ | None -> ()

let make ?(processor_cost = 15) entries =
  if processor_cost < 0 then invalid_arg "Tech: negative processor cost";
  let table =
    List.fold_left
      (fun acc (pid, o) ->
        if I.Process_id.Map.mem pid acc then
          invalid_arg
            (Format.asprintf "Tech: duplicate entry for %a" I.Process_id.pp pid)
        else begin
          check_options pid o;
          I.Process_id.Map.add pid o acc
        end)
      I.Process_id.Map.empty entries
  in
  { processor_cost; table }

let processor_cost t = t.processor_cost

let options_of t pid =
  match I.Process_id.Map.find_opt pid t.table with
  | Some o -> o
  | None -> raise Not_found

let mem t pid = I.Process_id.Map.mem pid t.table
let process_ids t = List.map fst (I.Process_id.Map.bindings t.table)

let of_weights ?(processor_cost = 15) ~weight pids =
  make ~processor_cost
    (List.map
       (fun pid ->
         let w = weight pid in
         (pid, both ~load:((w / 3) + 5) ~area:(w + 10)))
       pids)

let with_options pid options t =
  check_options pid options;
  { t with table = I.Process_id.Map.add pid options t.table }

let restrict keep t =
  {
    t with
    table = I.Process_id.Map.filter (fun pid _ -> I.Process_id.Set.mem pid keep) t.table;
  }

let pp ppf t =
  let pp_entry ppf (pid, o) =
    let pp_sw ppf = function
      | None -> Format.pp_print_string ppf "-"
      | Some { load } -> Format.fprintf ppf "load=%d" load
    and pp_hw ppf = function
      | None -> Format.pp_print_string ppf "-"
      | Some { area } -> Format.fprintf ppf "area=%d" area
    in
    Format.fprintf ppf "%a: sw(%a) hw(%a)" I.Process_id.pp pid pp_sw o.sw pp_hw
      o.hw
  in
  Format.fprintf ppf "@[<v>processor cost %d@,%a@]" t.processor_cost
    (Format.pp_print_list ~pp_sep:Format.pp_print_cut pp_entry)
    (I.Process_id.Map.bindings t.table)
