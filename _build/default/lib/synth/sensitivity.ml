module I = Spi.Ids

type parameter = Hw_area | Sw_load

type flip = { at : int; below : Binding.impl; above : Binding.impl option }

let with_value parameter tech pid value =
  let o = Tech.options_of tech pid in
  let options =
    match parameter with
    | Hw_area -> { o with Tech.hw = Some { Tech.area = value } }
    | Sw_load -> { o with Tech.sw = Some { Tech.load = value } }
  in
  Tech.with_options pid options tech

let impl_at ?capacity parameter tech apps pid value =
  match Explore.optimal ?capacity (with_value parameter tech pid value) apps with
  | None -> None
  | Some s -> Binding.impl_of pid s.Explore.binding

let flip_point ?capacity ~parameter ~range:(lo, hi) tech apps pid =
  if lo > hi then invalid_arg "Sensitivity.flip_point: empty range";
  let has_option =
    let o = try Some (Tech.options_of tech pid) with Not_found -> None in
    match o, parameter with
    | None, _ -> false
    | Some o, Hw_area -> Option.is_some o.Tech.hw
    | Some o, Sw_load -> Option.is_some o.Tech.sw
  in
  if not has_option then None
  else
    match impl_at ?capacity parameter tech apps pid lo with
    | None -> None
    | Some below ->
      let differs v = impl_at ?capacity parameter tech apps pid v <> Some below in
      if not (differs hi) then None
      else begin
        (* the decision is monotone in the swept parameter: binary
           search the smallest differing value in (lo, hi] *)
        let low = ref lo and high = ref hi in
        while !high - !low > 1 do
          let mid = !low + ((!high - !low) / 2) in
          if differs mid then high := mid else low := mid
        done;
        Some
          { at = !high; below; above = impl_at ?capacity parameter tech apps pid !high }
      end

let pp_flip ppf f =
  Format.fprintf ppf "%a until %d, then %s" Binding.pp_impl f.below (f.at - 1)
    (match f.above with
    | Some impl -> Format.asprintf "%a" Binding.pp_impl impl
    | None -> "infeasible")
