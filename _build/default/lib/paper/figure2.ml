module I = Spi.Ids
module V = Variants

let iface1 = I.Interface_id.of_string "iface1"
let g1 = I.Cluster_id.of_string "g1"
let g2 = I.Cluster_id.of_string "g2"
let pa = I.Process_id.of_string "PA"
let pb = I.Process_id.of_string "PB"
let p_user = I.Process_id.of_string "PUser"
let cx = I.Channel_id.of_string "CX"
let ca = I.Channel_id.of_string "CA"
let cb = I.Channel_id.of_string "CB"
let cy = I.Channel_id.of_string "CY"
let cv = I.Channel_id.of_string "CV"
let tag_v1 = Spi.Tag.make "V1"
let tag_v2 = Spi.Tag.make "V2"

let one = Interval.point 1

let chain_proc ~latency ~from_ ~to_ name =
  Spi.Process.simple ~latency:(Interval.point latency)
    ~consumes:[ (from_, one) ]
    ~produces:[ (to_, Spi.Mode.produce one) ]
    (I.Process_id.of_string name)

let port_in = V.Port.input "i"
let port_out = V.Port.output "o"
let pin_chan = V.Port.channel_of (V.Port.id port_in)
let pout_chan = V.Port.channel_of (V.Port.id port_out)

(* Cluster g1: two chained processes x1 -> k -> x2. *)
let cluster_g1 =
  let k = I.Channel_id.of_string "k1" in
  V.Cluster.make
    ~channels:[ Spi.Chan.queue k ]
    ~ports:[ port_in; port_out ]
    ~processes:
      [
        chain_proc ~latency:4 ~from_:pin_chan ~to_:k "x1";
        chain_proc ~latency:3 ~from_:k ~to_:pout_chan "x2";
      ]
    "g1"

(* Cluster g2: three chained processes y1 -> y2 -> y3. *)
let cluster_g2 =
  let k1 = I.Channel_id.of_string "k1" and k2 = I.Channel_id.of_string "k2" in
  V.Cluster.make
    ~channels:[ Spi.Chan.queue k1; Spi.Chan.queue k2 ]
    ~ports:[ port_in; port_out ]
    ~processes:
      [
        chain_proc ~latency:2 ~from_:pin_chan ~to_:k1 "y1";
        chain_proc ~latency:5 ~from_:k1 ~to_:k2 "y2";
        chain_proc ~latency:2 ~from_:k2 ~to_:pout_chan "y3";
      ]
    "g2"

let proc_pa = chain_proc ~latency:3 ~from_:cx ~to_:ca "PA"
let proc_pb = chain_proc ~latency:2 ~from_:cb ~to_:cy "PB"

let base_channels =
  [ Spi.Chan.queue cx; Spi.Chan.queue ca; Spi.Chan.queue cb; Spi.Chan.queue cy ]

let wiring =
  [ (V.Port.id port_in, ca); (V.Port.id port_out, cb) ]

let system =
  let iface =
    V.Interface.make ~ports:[ port_in; port_out ]
      ~clusters:[ cluster_g1; cluster_g2 ]
      "iface1"
  in
  V.System.make
    ~processes:[ proc_pa; proc_pb ]
    ~channels:base_channels
    ~sites:[ { V.Structure.iface; wiring } ]
    "figure2"

(* Figure 3: PUser writes a 'V1'/'V2'-tagged token on CV; the interface's
   selection rules pick the cluster. *)
let proc_user =
  Spi.Process.make
    ~modes:
      [
        Spi.Mode.make ~latency:one ~consumes:[]
          ~produces:
            [ (cv, Spi.Mode.produce ~tags:(Spi.Tag.Set.singleton tag_v1) one) ]
          (I.Mode_id.of_string "PUser.v1");
        Spi.Mode.make ~latency:one ~consumes:[]
          ~produces:
            [ (cv, Spi.Mode.produce ~tags:(Spi.Tag.Set.singleton tag_v2) one) ]
          (I.Mode_id.of_string "PUser.v2");
      ]
    p_user

let system_with_selection =
  let selection =
    V.Selection.make
      ~config_latencies:[ (g1, 5); (g2, 7) ]
      ~initial:g1
      [
        V.Selection.rule "v1"
          ~guard:
            Spi.Predicate.(conj [ num_at_least cv 1; has_tag cv tag_v1 ])
          ~target:g1;
        V.Selection.rule "v2"
          ~guard:
            Spi.Predicate.(conj [ num_at_least cv 1; has_tag cv tag_v2 ])
          ~target:g2;
      ]
  in
  let iface =
    V.Interface.make ~selection ~ports:[ port_in; port_out ]
      ~clusters:[ cluster_g1; cluster_g2 ]
      "iface1"
  in
  V.System.make
    ~processes:[ proc_pa; proc_pb; proc_user ]
    ~channels:(Spi.Chan.register cv :: base_channels)
    ~sites:[ { V.Structure.iface; wiring } ]
    "figure3"

(* ------------------------------------------------------------------ *)
(* Table 1 synthesis view: clusters as atomic synthesis units.         *)
(* ------------------------------------------------------------------ *)

let unit_g1 = I.Process_id.of_string "cluster:g1"
let unit_g2 = I.Process_id.of_string "cluster:g2"

let table1_tech =
  Synth.Tech.make ~processor_cost:15
    [
      (pa, Synth.Tech.both ~load:40 ~area:26);
      (pb, Synth.Tech.both ~load:30 ~area:30);
      (unit_g1, Synth.Tech.both ~load:60 ~area:19);
      (unit_g2, Synth.Tech.both ~load:55 ~area:23);
    ]

let app1 = Synth.App.make "Application 1" [ pa; pb; unit_g1 ]
let app2 = Synth.App.make "Application 2" [ pa; pb; unit_g2 ]
