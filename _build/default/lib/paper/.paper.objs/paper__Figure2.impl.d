lib/paper/figure2.ml: Interval Spi Synth Variants
