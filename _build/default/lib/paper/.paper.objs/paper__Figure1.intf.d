lib/paper/figure1.mli: Sim Spi
