lib/paper/figure1.ml: Interval List Sim Spi
