lib/paper/figure2.mli: Spi Synth Variants
