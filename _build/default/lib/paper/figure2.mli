(** The two-variant example system of Figures 2/3 and Table 1.

    Common part: [PA] feeding interface [iface1] feeding [PB].  The
    interface has two clusters: cluster [g1] (two chained processes) and
    cluster [g2] (three chained processes).  Figure 3 adds the run-time
    variant selection: [PUser] writes a token tagged ['V1']/['V2'] on
    [CV], evaluated by the interface's cluster selection rules.

    Table 1's synthesis view treats each cluster as one synthesis unit;
    {!table1_tech}, {!app1}, {!app2} encode the corresponding technology
    library and applications (unit-less loads and costs chosen to
    reproduce the paper's rows: 34 / 38 / 57 / 41). *)

val system : Variants.System.t
(** The full design representation with both variants (no selection —
    production/run-time variants). *)

val system_with_selection : Variants.System.t
(** Figure 3: same structure plus [PUser] and the selection function
    (rules v1/v2, configuration latencies 5 and 7, initial [g1]). *)

val iface1 : Spi.Ids.Interface_id.t
val g1 : Spi.Ids.Cluster_id.t
val g2 : Spi.Ids.Cluster_id.t
val pa : Spi.Ids.Process_id.t
val pb : Spi.Ids.Process_id.t
val p_user : Spi.Ids.Process_id.t
val cx : Spi.Ids.Channel_id.t
(** Environment input of [PA]. *)

val ca : Spi.Ids.Channel_id.t
(** [PA] -> interface. *)

val cb : Spi.Ids.Channel_id.t
(** Interface -> [PB]. *)

val cy : Spi.Ids.Channel_id.t
(** [PB] -> environment. *)

val cv : Spi.Ids.Channel_id.t
(** Variant-selection channel (Figure 3). *)

val tag_v1 : Spi.Tag.t
val tag_v2 : Spi.Tag.t

(** {1 Table 1 synthesis view} *)

val unit_g1 : Spi.Ids.Process_id.t
(** Pseudo-process standing for cluster [g1] as one synthesis unit. *)

val unit_g2 : Spi.Ids.Process_id.t

val table1_tech : Synth.Tech.t
(** PA: load 40 / area 26; PB: load 30 / area 30; cluster g1: load 60 /
    area 19; cluster g2: load 55 / area 23; processor cost 15,
    capacity 100. *)

val app1 : Synth.App.t
(** Application 1 = [{PA, PB, g1}]. *)

val app2 : Synth.App.t
