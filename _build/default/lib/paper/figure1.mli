(** The SPI example of the paper's Figure 1.

    Three processes [p1 -> c1 -> p2 -> c2 -> p3].  [p1] is fully
    determinate (consumes 1 token, produces 2, latency 1); it tags its
    output ['a'] or ['b'] depending on its input.  [p2] has interval
    parameters refined by two modes,

    {v m1: 3ms, consume 1, produce 2
m2: 5ms, consume 3, produce 5 v}

    selected by the activation rules

    {v a1: c1#num >= 1 /\ 'a' in c1#tag -> m1
a2: c1#num >= 3 /\ 'b' in c1#tag -> m2 v}

    [p3] consumes 3 tokens from [c2] with latency 3. *)

val model : Spi.Model.t

val c0 : Spi.Ids.Channel_id.t
(** Environment input channel of [p1]. *)

val c1 : Spi.Ids.Channel_id.t
val c2 : Spi.Ids.Channel_id.t
val p1 : Spi.Ids.Process_id.t
val p2 : Spi.Ids.Process_id.t
val p3 : Spi.Ids.Process_id.t

val tag_a : Spi.Tag.t
val tag_b : Spi.Tag.t

val stimuli_mixed : n:int -> Sim.Engine.stimulus list
(** [n] environment tokens alternating ['a']/['b'] requests, one per
    5 time units. *)
