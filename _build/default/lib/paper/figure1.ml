module I = Spi.Ids
open Spi.Predicate

let c0 = I.Channel_id.of_string "c0"
let c1 = I.Channel_id.of_string "c1"
let c2 = I.Channel_id.of_string "c2"
let p1 = I.Process_id.of_string "p1"
let p2 = I.Process_id.of_string "p2"
let p3 = I.Process_id.of_string "p3"
let tag_a = Spi.Tag.make "a"
let tag_b = Spi.Tag.make "b"

let one = Interval.point 1
let mk_mode name ~latency ~consumes ~produces =
  Spi.Mode.make ~latency ~consumes ~produces (I.Mode_id.of_string name)

(* p1: deterministic rates (1 in, 2 out, latency 1); the tag on the
   produced tokens depends on the consumed data, modeled as two modes
   selected by the environment token's tag. *)
let proc_p1 =
  let mode tag name =
    mk_mode name ~latency:one
      ~consumes:[ (c0, one) ]
      ~produces:
        [ (c1, Spi.Mode.produce ~tags:(Spi.Tag.Set.singleton tag) (Interval.point 2)) ]
  in
  let rule name tag mode_name =
    Spi.Activation.rule (I.Rule_id.of_string name)
      ~guard:(conj [ num_at_least c0 1; has_tag c0 tag ])
      ~mode:(I.Mode_id.of_string mode_name)
  in
  Spi.Process.make
    ~activation:
      (Spi.Activation.make
         [ rule "p1.ra" tag_a "p1.ma"; rule "p1.rb" tag_b "p1.mb" ])
    ~modes:[ mode tag_a "p1.ma"; mode tag_b "p1.mb" ]
    p1

(* p2: the paper's mode table m1/m2 with activation rules a1/a2. *)
let proc_p2 =
  let m1 =
    mk_mode "m1" ~latency:(Interval.point 3)
      ~consumes:[ (c1, one) ]
      ~produces:[ (c2, Spi.Mode.produce (Interval.point 2)) ]
  and m2 =
    mk_mode "m2" ~latency:(Interval.point 5)
      ~consumes:[ (c1, Interval.point 3) ]
      ~produces:[ (c2, Spi.Mode.produce (Interval.point 5)) ]
  in
  let a1 =
    Spi.Activation.rule (I.Rule_id.of_string "a1")
      ~guard:(conj [ num_at_least c1 1; has_tag c1 tag_a ])
      ~mode:(I.Mode_id.of_string "m1")
  and a2 =
    Spi.Activation.rule (I.Rule_id.of_string "a2")
      ~guard:(conj [ num_at_least c1 3; has_tag c1 tag_b ])
      ~mode:(I.Mode_id.of_string "m2")
  in
  Spi.Process.make ~activation:(Spi.Activation.make [ a1; a2 ]) ~modes:[ m1; m2 ] p2

let proc_p3 =
  Spi.Process.simple ~latency:(Interval.point 3)
    ~consumes:[ (c2, Interval.point 3) ]
    ~produces:[] p3

let model =
  Spi.Model.build_exn
    ~processes:[ proc_p1; proc_p2; proc_p3 ]
    ~channels:[ Spi.Chan.queue c0; Spi.Chan.queue c1; Spi.Chan.queue c2 ]

let stimuli_mixed ~n =
  List.init n (fun i ->
      let tag = if i mod 2 = 0 then tag_a else tag_b in
      {
        Sim.Engine.at = 1 + (i * 5);
        channel = c0;
        token = Spi.Token.make ~tags:(Spi.Tag.Set.singleton tag) ~payload:(i + 1) ();
      })
