module I = Spi.Ids

type mismatch = {
  missing_inputs : I.Port_id.Set.t;
  extra_inputs : I.Port_id.Set.t;
  missing_outputs : I.Port_id.Set.t;
  extra_outputs : I.Port_id.Set.t;
}

type compatibility = Compatible | Port_mismatch of mismatch

let check iface cluster =
  let want_in, want_out = Port.signature (Interface.ports iface) in
  let have_in, have_out = Port.signature (Cluster.ports cluster) in
  let mismatch =
    {
      missing_inputs = I.Port_id.Set.diff want_in have_in;
      extra_inputs = I.Port_id.Set.diff have_in want_in;
      missing_outputs = I.Port_id.Set.diff want_out have_out;
      extra_outputs = I.Port_id.Set.diff have_out want_out;
    }
  in
  if
    I.Port_id.Set.is_empty mismatch.missing_inputs
    && I.Port_id.Set.is_empty mismatch.extra_inputs
    && I.Port_id.Set.is_empty mismatch.missing_outputs
    && I.Port_id.Set.is_empty mismatch.extra_outputs
  then Compatible
  else Port_mismatch mismatch

let is_compatible iface cluster = check iface cluster = Compatible

let rec interfaces_of_cluster (c : Structure.cluster) =
  List.concat_map
    (fun site ->
      let iface = site.Structure.iface in
      iface :: List.concat_map interfaces_of_cluster iface.Structure.clusters)
    c.Structure.sub_sites

let all_interfaces system =
  List.concat_map
    (fun site ->
      let iface = site.Structure.iface in
      iface :: List.concat_map interfaces_of_cluster iface.Structure.clusters)
    (System.sites system)

let host_interfaces system cluster =
  List.filter_map
    (fun iface ->
      if is_compatible iface cluster then Some (Interface.id iface) else None)
    (all_interfaces system)

let extend_interface iface cluster =
  match check iface cluster with
  | Port_mismatch _ as c ->
    Error
      (Format.asprintf "cluster %a does not match interface %a: %s"
         I.Cluster_id.pp (Cluster.id cluster) I.Interface_id.pp
         (Interface.id iface)
         (match c with
         | Port_mismatch m ->
           Format.asprintf "%d port differences"
             (I.Port_id.Set.cardinal m.missing_inputs
             + I.Port_id.Set.cardinal m.extra_inputs
             + I.Port_id.Set.cardinal m.missing_outputs
             + I.Port_id.Set.cardinal m.extra_outputs)
         | Compatible -> assert false))
  | Compatible ->
    if
      List.exists
        (fun c -> I.Cluster_id.equal (Cluster.id c) (Cluster.id cluster))
        (Interface.clusters iface)
    then
      Error
        (Format.asprintf "interface %a already has a cluster %a"
           I.Interface_id.pp (Interface.id iface) I.Cluster_id.pp
           (Cluster.id cluster))
    else
      Ok
        (Interface.make
           ?selection:(Interface.selection iface)
           ~ports:(Interface.ports iface)
           ~clusters:(Interface.clusters iface @ [ cluster ])
           (I.Interface_id.to_string (Interface.id iface)))

let pp_set ppf set =
  Format.pp_print_string ppf
    (String.concat ", " (List.map I.Port_id.to_string (I.Port_id.Set.elements set)))

let pp_compatibility ppf = function
  | Compatible -> Format.pp_print_string ppf "compatible"
  | Port_mismatch m ->
    Format.fprintf ppf
      "mismatch (missing in: %a; extra in: %a; missing out: %a; extra out: %a)"
      pp_set m.missing_inputs pp_set m.extra_inputs pp_set m.missing_outputs
      pp_set m.extra_outputs
