(** Reuse analysis for clusters across interfaces and product
    generations.

    The paper motivates a representation that "supports the reuse of a
    system part, possibly with a different function variant type" — a
    network protocol shipped as a hardware production variant may return
    as a software run-time variant in the next generation.  The
    precondition for dropping a cluster into an interface is Def. 2's
    signature match; this module checks it and reports the exact port
    differences when it fails. *)

type mismatch = {
  missing_inputs : Spi.Ids.Port_id.Set.t;
      (** interface inputs the cluster does not offer *)
  extra_inputs : Spi.Ids.Port_id.Set.t;
  missing_outputs : Spi.Ids.Port_id.Set.t;
  extra_outputs : Spi.Ids.Port_id.Set.t;
}

type compatibility = Compatible | Port_mismatch of mismatch

val check : Interface.t -> Cluster.t -> compatibility
(** Signature comparison between the interface's ports and the
    cluster's. *)

val is_compatible : Interface.t -> Cluster.t -> bool

val host_interfaces : System.t -> Cluster.t -> Spi.Ids.Interface_id.t list
(** All interfaces of the system (including interfaces embedded in other
    clusters) whose signature the cluster matches — the places the part
    could be reused, regardless of how its variants are later selected. *)

val extend_interface : Interface.t -> Cluster.t -> (Interface.t, string) result
(** Adds the cluster as a further variant of the interface.
    [Error] explains a signature mismatch or duplicate cluster id. *)

val pp_compatibility : Format.formatter -> compatibility -> unit
