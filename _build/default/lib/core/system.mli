(** A system with function variants.

    The complete design representation of Section 3: a common part
    (processes and channels that are not variant-dependent) plus
    interface sites whose clusters are the mutually exclusive function
    variants.  Deriving one concrete application substitutes a cluster
    at each site ({!Flatten.flatten}); abstracting for dynamic variants
    replaces each site by an extracted process with configurations
    ({!Flatten.abstract}). *)

type t

val make :
  ?processes:Spi.Process.t list ->
  ?channels:Spi.Chan.t list ->
  ?sites:Structure.site list ->
  ?constraints:Spi.Constraint_.t list ->
  string ->
  t

val name : t -> string
val processes : t -> Spi.Process.t list
val channels : t -> Spi.Chan.t list
val sites : t -> Structure.site list
val interfaces : t -> Interface.t list

val constraints : t -> Spi.Constraint_.t list
(** End-to-end latency-path constraints the design must meet; SPI
    carries timing constraints in the representation itself.  Constraint
    endpoints may be common-part processes or (after flattening)
    instantiated cluster processes. *)

val find_site : Spi.Ids.Interface_id.t -> t -> Structure.site option
val site_count : t -> int

type error =
  | Interface_error of Spi.Ids.Interface_id.t * Interface.error
  | Unwired_port of Spi.Ids.Interface_id.t * Spi.Ids.Port_id.t
  | Wiring_unknown_channel of Spi.Ids.Interface_id.t * Spi.Ids.Channel_id.t
  | Duplicate_interface of Spi.Ids.Interface_id.t

val pp_error : Format.formatter -> error -> unit
val validate : t -> error list
val validate_exn : t -> unit

val shared_process_ids : t -> Spi.Ids.Process_id.Set.t
(** Processes of the common part — considered once during synthesis
    regardless of the number of variants (Section 5). *)

val pp : Format.formatter -> t -> unit
