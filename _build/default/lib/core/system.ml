module I = Spi.Ids

type t = {
  name : string;
  processes : Spi.Process.t list;
  channels : Spi.Chan.t list;
  sites : Structure.site list;
  constraints : Spi.Constraint_.t list;
}

let make ?(processes = []) ?(channels = []) ?(sites = []) ?(constraints = [])
    name =
  { name; processes; channels; sites; constraints }

let name t = t.name
let processes t = t.processes
let channels t = t.channels
let sites t = t.sites
let interfaces t = List.map (fun s -> s.Structure.iface) t.sites
let constraints t = t.constraints

let find_site iid t =
  List.find_opt
    (fun s -> I.Interface_id.equal s.Structure.iface.Structure.interface_id iid)
    t.sites

let site_count t = List.length t.sites

type error =
  | Interface_error of I.Interface_id.t * Interface.error
  | Unwired_port of I.Interface_id.t * I.Port_id.t
  | Wiring_unknown_channel of I.Interface_id.t * I.Channel_id.t
  | Duplicate_interface of I.Interface_id.t

let pp_error ppf = function
  | Interface_error (i, e) ->
    Format.fprintf ppf "interface %a: %a" I.Interface_id.pp i Interface.pp_error e
  | Unwired_port (i, p) ->
    Format.fprintf ppf "interface %a: port %a unwired" I.Interface_id.pp i
      I.Port_id.pp p
  | Wiring_unknown_channel (i, c) ->
    Format.fprintf ppf "interface %a wired to unknown channel %a"
      I.Interface_id.pp i I.Channel_id.pp c
  | Duplicate_interface i ->
    Format.fprintf ppf "interface %a placed twice" I.Interface_id.pp i

let validate t =
  let errors = ref [] in
  let err e = errors := e :: !errors in
  let channel_ids =
    List.fold_left
      (fun acc c -> I.Channel_id.Set.add (Spi.Chan.id c) acc)
      I.Channel_id.Set.empty t.channels
  in
  ignore
    (List.fold_left
       (fun seen site ->
         let iid = site.Structure.iface.Structure.interface_id in
         if List.exists (I.Interface_id.equal iid) seen then begin
           err (Duplicate_interface iid);
           seen
         end
         else iid :: seen)
       [] t.sites);
  List.iter
    (fun site ->
      let iface = site.Structure.iface in
      let iid = iface.Structure.interface_id in
      List.iter (fun e -> err (Interface_error (iid, e))) (Interface.validate iface);
      List.iter
        (fun port ->
          let pid = Port.id port in
          if
            not
              (List.exists
                 (fun (p, _) -> I.Port_id.equal p pid)
                 site.Structure.wiring)
          then err (Unwired_port (iid, pid)))
        iface.Structure.iface_ports;
      List.iter
        (fun (_, target) ->
          if not (I.Channel_id.Set.mem target channel_ids) then
            err (Wiring_unknown_channel (iid, target)))
        site.Structure.wiring)
    t.sites;
  List.rev !errors

let validate_exn t =
  match validate t with
  | [] -> ()
  | errors ->
    invalid_arg
      (Format.asprintf "@[<v>System %s:@,%a@]" t.name
         (Format.pp_print_list ~pp_sep:Format.pp_print_cut pp_error)
         errors)

let shared_process_ids t =
  List.fold_left
    (fun acc p -> I.Process_id.Set.add (Spi.Process.id p) acc)
    I.Process_id.Set.empty t.processes

let pp ppf t =
  Format.fprintf ppf "system %s: %d shared processes, %d channels, %d sites"
    t.name
    (List.length t.processes)
    (List.length t.channels)
    (List.length t.sites)
