type cluster = {
  cluster_id : Spi.Ids.Cluster_id.t;
  cluster_ports : Port.t list;
  processes : Spi.Process.t list;
  channels : Spi.Chan.t list;
  sub_sites : site list;
}

and interface = {
  interface_id : Spi.Ids.Interface_id.t;
  iface_ports : Port.t list;
  clusters : cluster list;
  selection : selection option;
}

and site = {
  iface : interface;
  wiring : (Spi.Ids.Port_id.t * Spi.Ids.Channel_id.t) list;
}

and selection = {
  rules : selection_rule list;
  config_latencies : (Spi.Ids.Cluster_id.t * int) list;
  initial : Spi.Ids.Cluster_id.t option;
}

and selection_rule = {
  sel_rule_id : Spi.Ids.Rule_id.t;
  sel_guard : Spi.Predicate.t;
  target : Spi.Ids.Cluster_id.t;
}
