module I = Spi.Ids

type t = Structure.interface

let make ?selection ~ports ~clusters name =
  {
    Structure.interface_id = I.Interface_id.of_string name;
    iface_ports = ports;
    clusters;
    selection;
  }

let id (t : t) = t.Structure.interface_id
let ports (t : t) = t.Structure.iface_ports
let clusters (t : t) = t.Structure.clusters
let selection (t : t) = t.Structure.selection
let cluster_ids t = List.map Cluster.id (clusters t)

let find_cluster cid t =
  List.find_opt (fun c -> I.Cluster_id.equal (Cluster.id c) cid) (clusters t)

let get_cluster cid t =
  match find_cluster cid t with Some c -> c | None -> raise Not_found

let variant_count t = List.length (clusters t)

type error =
  | No_clusters
  | Duplicate_cluster of I.Cluster_id.t
  | Signature_mismatch of I.Cluster_id.t
  | Cluster_error of I.Cluster_id.t * Cluster.error
  | Selection_unknown_cluster of I.Rule_id.t * I.Cluster_id.t
  | Selection_latency_unknown_cluster of I.Cluster_id.t
  | Selection_initial_unknown of I.Cluster_id.t

let pp_error ppf = function
  | No_clusters -> Format.pp_print_string ppf "interface has no clusters"
  | Duplicate_cluster c ->
    Format.fprintf ppf "duplicate cluster %a" I.Cluster_id.pp c
  | Signature_mismatch c ->
    Format.fprintf ppf "cluster %a does not match the interface ports"
      I.Cluster_id.pp c
  | Cluster_error (c, e) ->
    Format.fprintf ppf "cluster %a: %a" I.Cluster_id.pp c Cluster.pp_error e
  | Selection_unknown_cluster (r, c) ->
    Format.fprintf ppf "selection rule %a targets unknown cluster %a"
      I.Rule_id.pp r I.Cluster_id.pp c
  | Selection_latency_unknown_cluster c ->
    Format.fprintf ppf "configuration latency given for unknown cluster %a"
      I.Cluster_id.pp c
  | Selection_initial_unknown c ->
    Format.fprintf ppf "initial cluster %a is not part of the interface"
      I.Cluster_id.pp c

let validate (t : t) =
  let errors = ref [] in
  let err e = errors := e :: !errors in
  if clusters t = [] then err No_clusters;
  let known = cluster_ids t in
  let is_known cid = List.exists (I.Cluster_id.equal cid) known in
  ignore
    (List.fold_left
       (fun seen c ->
         let cid = Cluster.id c in
         if List.exists (I.Cluster_id.equal cid) seen then begin
           err (Duplicate_cluster cid);
           seen
         end
         else cid :: seen)
       [] (clusters t));
  List.iter
    (fun c ->
      if not (Port.same_signature (ports t) (Cluster.ports c)) then
        err (Signature_mismatch (Cluster.id c));
      List.iter (fun e -> err (Cluster_error (Cluster.id c, e))) (Cluster.validate c))
    (clusters t);
  (match selection t with
  | None -> ()
  | Some sel ->
    List.iter
      (fun rule ->
        if not (is_known rule.Structure.target) then
          err
            (Selection_unknown_cluster
               (rule.Structure.sel_rule_id, rule.Structure.target)))
      sel.Structure.rules;
    List.iter
      (fun (cid, _) ->
        if not (is_known cid) then err (Selection_latency_unknown_cluster cid))
      sel.Structure.config_latencies;
    match sel.Structure.initial with
    | Some cid when not (is_known cid) -> err (Selection_initial_unknown cid)
    | Some _ | None -> ());
  List.rev !errors

let validate_exn t =
  match validate t with
  | [] -> ()
  | errors ->
    invalid_arg
      (Format.asprintf "@[<v>Interface %a:@,%a@]" I.Interface_id.pp (id t)
         (Format.pp_print_list ~pp_sep:Format.pp_print_cut pp_error)
         errors)

let ambiguous_selection_pairs (t : t) =
  match selection t with
  | None -> []
  | Some sel ->
    let rec pairs = function
      | [] -> []
      | r :: rest ->
        List.filter_map
          (fun r' ->
            if
              Spi.Predicate.syntactically_disjoint r.Structure.sel_guard
                r'.Structure.sel_guard
            then None
            else Some (r.Structure.sel_rule_id, r'.Structure.sel_rule_id))
          rest
        @ pairs rest
    in
    pairs sel.Structure.rules

let pp ppf t =
  Format.fprintf ppf "interface %a (%d variants: %a)" I.Interface_id.pp (id t)
    (variant_count t)
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
       I.Cluster_id.pp)
    (cluster_ids t)
