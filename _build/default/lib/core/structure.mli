(** Shared recursive types for clusters, interfaces and sites.

    Def. 1 allows clusters to embed interfaces (hierarchical variants),
    making the types mutually recursive; they are therefore declared
    together here, while the operations live in {!Cluster},
    {!Interface} and {!Selection}.  An interface never floats freely: it
    occupies a {e site} that wires each of its ports to a channel of the
    enclosing scope (a cluster's internal channel, a port placeholder,
    or a top-level system channel). *)

type cluster = {
  cluster_id : Spi.Ids.Cluster_id.t;
  cluster_ports : Port.t list;  (** the cluster's side of the interface signature *)
  processes : Spi.Process.t list;
  channels : Spi.Chan.t list;  (** internal channels only *)
  sub_sites : site list;
      (** embedded interfaces (hierarchical function variants) *)
}

and interface = {
  interface_id : Spi.Ids.Interface_id.t;
  iface_ports : Port.t list;
  clusters : cluster list;  (** the variant set; mutually exclusive *)
  selection : selection option;
      (** absent for production variants, which the designer fixes before
          run time (Section 4: "this selection type … does not have to be
          modeled") *)
}

(** An interface placed in a model: every port is wired to a channel of
    the enclosing scope. *)
and site = {
  iface : interface;
  wiring : (Spi.Ids.Port_id.t * Spi.Ids.Channel_id.t) list;
}

(** Def. 3: the cluster selection function of an interface. *)
and selection = {
  rules : selection_rule list;
  config_latencies : (Spi.Ids.Cluster_id.t * int) list;
      (** [t_conf] per cluster *)
  initial : Spi.Ids.Cluster_id.t option;  (** initial value of [cur] *)
}

and selection_rule = {
  sel_rule_id : Spi.Ids.Rule_id.t;
  sel_guard : Spi.Predicate.t;
  target : Spi.Ids.Cluster_id.t;
}
