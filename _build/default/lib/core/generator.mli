(** Pseudo-random variant-system generator.

    The ablation benchmarks sweep structural parameters (number of
    variants, functional overlap, system size) over families of
    synthetic systems.  Generation is deterministic in [seed]. *)

type params = {
  seed : int;
  shared_processes : int;  (** length of the common process chain *)
  sites : int;  (** number of interface sites, in series *)
  variants_per_site : int;
  cluster_processes : int;  (** chain length inside each cluster *)
  latency_range : int * int;  (** bounds for generated latency midpoints *)
}

val default : params
(** 2 shared processes, 1 site, 2 variants, 2 processes per cluster,
    latencies in [1, 20], seed 42. *)

val generate : params -> System.t
(** The generated topology is a pipeline: source process, shared chain,
    then the sites in series, then a sink process.  Every cluster is a
    process chain from its input port to its output port with generated
    latency intervals.  The result always passes {!System.validate}. *)

val process_weight : Spi.Ids.Process_id.t -> int
(** Deterministic per-process weight in [1, 100] derived from the
    process name; used by the synthesis ablations to assign
    implementation costs without carrying a side table. *)
