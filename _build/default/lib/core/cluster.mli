(** Cluster operations (Def. 1).

    A cluster is a tuple (I, O, P, C, Θ, E): input ports, output ports,
    embedded processes, embedded channels, embedded interfaces and
    edges.  Edges are represented implicitly — embedded processes
    reference internal channels or port placeholder channels
    (see {!Port.channel_of}).  This module validates the definition's
    structural rules and instantiates clusters into a host model. *)

type t = Structure.cluster

val make :
  ?channels:Spi.Chan.t list ->
  ?sub_sites:Structure.site list ->
  ports:Port.t list ->
  processes:Spi.Process.t list ->
  string ->
  t

val id : t -> Spi.Ids.Cluster_id.t
val ports : t -> Port.t list
val input_ports : t -> Spi.Ids.Port_id.Set.t
val output_ports : t -> Spi.Ids.Port_id.Set.t

type error =
  | Port_channel_declared of Spi.Ids.Channel_id.t
      (** an internal channel reuses a port's placeholder name *)
  | Undeclared_channel of Spi.Ids.Process_id.t * Spi.Ids.Channel_id.t
      (** a process references a channel that is neither internal nor a
          port *)
  | Input_port_fanout of Spi.Ids.Port_id.t * Spi.Ids.Process_id.t list
      (** out-degree of an input port exceeds one *)
  | Output_port_fanin of Spi.Ids.Port_id.t * Spi.Ids.Process_id.t list
      (** in-degree of an output port exceeds one *)
  | Input_port_written of Spi.Ids.Port_id.t * Spi.Ids.Process_id.t
  | Output_port_read of Spi.Ids.Port_id.t * Spi.Ids.Process_id.t
  | Internal_model_error of Spi.Model.error
  | Sub_site_unwired of Spi.Ids.Interface_id.t * Spi.Ids.Port_id.t
      (** an embedded interface's port has no wiring entry *)
  | Sub_site_bad_target of Spi.Ids.Interface_id.t * Spi.Ids.Channel_id.t
      (** a wiring entry targets a channel that is neither internal nor a
          port placeholder of the enclosing cluster *)

val pp_error : Format.formatter -> error -> unit

val validate : t -> error list
(** Empty list when the cluster is well-formed.  Sub-interface clusters
    are validated recursively. *)

val validate_exn : t -> unit
(** @raise Invalid_argument with rendered errors. *)

val processes_closure : t -> Spi.Process.t list
(** Embedded processes including those of every sub-interface cluster
    (all variants).  Used by cost enumeration. *)

type instance = {
  inst_processes : Spi.Process.t list;
  inst_channels : Spi.Chan.t list;
}

val instantiate :
  prefix:string ->
  port_channels:(Spi.Ids.Port_id.t * Spi.Ids.Channel_id.t) list ->
  sub_choice:(Spi.Ids.Interface_id.t -> Spi.Ids.Cluster_id.t) ->
  t ->
  instance
(** Produces the concrete processes and channels of this cluster wired
    to the host channels given by [port_channels].  Internal process and
    channel ids are prefixed with [prefix ^ "."] to keep multiple
    instantiations disjoint.  Sub-interfaces are flattened recursively
    using [sub_choice] to pick their variant.
    @raise Invalid_argument when a port binding is missing, or when
    [sub_choice] returns an unknown cluster. *)

val latency_paths : t -> Interval.t
(** Interval of accumulated latency along the longest process chain
    through the cluster ([lo] summed along the same worst path as
    [hi]); the basic building block of parameter extraction.  Cyclic
    clusters fall back to the sum of all process latencies. *)

val port_consumption : t -> Spi.Ids.Port_id.t -> Interval.t
(** Hull of tokens consumed from an input port per activation of the
    reading process. *)

val port_production : t -> Spi.Ids.Port_id.t -> Interval.t

val port_production_tags : t -> Spi.Ids.Port_id.t -> Spi.Tag.Set.t
(** Union of the tags the cluster's processes attach to tokens produced
    on the port. *)

val entry_process : t -> Spi.Process.t option
(** The process reading the first input port (in port declaration
    order) that has a reader; parameter extraction derives one abstract
    mode per entry-process mode. *)

val pp : Format.formatter -> t -> unit
