(** One-call design lint.

    Aggregates every static check the libraries offer over a variant
    system: structural validation (Defs. 1–2), selection-rule ambiguity
    (Def. 3), extraction/configuration consistency (Def. 4), and the
    per-application analyses (rate balance anomalies, structural
    deadlock candidates, hull-latency timing constraints).  Intended as
    the one command a designer runs before synthesis. *)

type severity = Error | Warning | Info

type finding = {
  severity : severity;
  scope : string;  (** e.g. ["system"], ["interface iface1"], an app name *)
  message : string;
}

type t = {
  findings : finding list;
  errors : int;
  warnings : int;
}

val run : System.t -> t
(** Never raises; malformed systems yield error findings. *)

val is_clean : t -> bool
(** No errors (warnings allowed). *)

val pp : Format.formatter -> t -> unit
val pp_finding : Format.formatter -> finding -> unit
