module I = Spi.Ids

type t = Structure.cluster

let make ?(channels = []) ?(sub_sites = []) ~ports ~processes name =
  {
    Structure.cluster_id = I.Cluster_id.of_string name;
    cluster_ports = ports;
    processes;
    channels;
    sub_sites;
  }

let id (c : t) = c.Structure.cluster_id
let ports (c : t) = c.Structure.cluster_ports

let input_ports c = fst (Port.signature (ports c))
let output_ports c = snd (Port.signature (ports c))

let internal_channel_ids (c : t) =
  List.fold_left
    (fun acc ch -> I.Channel_id.Set.add (Spi.Chan.id ch) acc)
    I.Channel_id.Set.empty c.Structure.channels

let port_channel_ids select c =
  I.Port_id.Set.fold
    (fun pid acc -> I.Channel_id.Set.add (Port.channel_of pid) acc)
    (select c) I.Channel_id.Set.empty

let input_channel_ids = port_channel_ids input_ports
let output_channel_ids = port_channel_ids output_ports

type error =
  | Port_channel_declared of I.Channel_id.t
  | Undeclared_channel of I.Process_id.t * I.Channel_id.t
  | Input_port_fanout of I.Port_id.t * I.Process_id.t list
  | Output_port_fanin of I.Port_id.t * I.Process_id.t list
  | Input_port_written of I.Port_id.t * I.Process_id.t
  | Output_port_read of I.Port_id.t * I.Process_id.t
  | Internal_model_error of Spi.Model.error
  | Sub_site_unwired of I.Interface_id.t * I.Port_id.t
  | Sub_site_bad_target of I.Interface_id.t * I.Channel_id.t

let pp_error ppf =
  let pp_procs =
    Format.pp_print_list ~pp_sep:Format.pp_print_space I.Process_id.pp
  in
  function
  | Port_channel_declared c ->
    Format.fprintf ppf "internal channel %a shadows a port" I.Channel_id.pp c
  | Undeclared_channel (p, c) ->
    Format.fprintf ppf
      "process %a references %a, neither internal nor a port" I.Process_id.pp
      p I.Channel_id.pp c
  | Input_port_fanout (port, ps) ->
    Format.fprintf ppf "input port %a read by several processes: %a"
      I.Port_id.pp port pp_procs ps
  | Output_port_fanin (port, ps) ->
    Format.fprintf ppf "output port %a written by several processes: %a"
      I.Port_id.pp port pp_procs ps
  | Input_port_written (port, p) ->
    Format.fprintf ppf "input port %a written by %a" I.Port_id.pp port
      I.Process_id.pp p
  | Output_port_read (port, p) ->
    Format.fprintf ppf "output port %a read by %a" I.Port_id.pp port
      I.Process_id.pp p
  | Internal_model_error e -> Spi.Model.pp_error ppf e
  | Sub_site_unwired (iface, port) ->
    Format.fprintf ppf "embedded interface %a: port %a not wired"
      I.Interface_id.pp iface I.Port_id.pp port
  | Sub_site_bad_target (iface, chan) ->
    Format.fprintf ppf "embedded interface %a: wired to unknown channel %a"
      I.Interface_id.pp iface I.Channel_id.pp chan

(* The port placeholder channel for [pid], as seen from the port lists. *)
let port_of_channel ports cid =
  List.find_opt
    (fun p -> I.Channel_id.equal (Port.channel_of (Port.id p)) cid)
    ports

let rec validate (c : t) =
  let errors = ref [] in
  let err e = errors := e :: !errors in
  let internal = internal_channel_ids c in
  let in_ports = input_channel_ids c and out_ports = output_channel_ids c in
  I.Channel_id.Set.iter
    (fun cid ->
      if I.Channel_id.Set.mem cid in_ports || I.Channel_id.Set.mem cid out_ports
      then err (Port_channel_declared cid))
    internal;
  let known cid =
    I.Channel_id.Set.mem cid internal
    || I.Channel_id.Set.mem cid in_ports
    || I.Channel_id.Set.mem cid out_ports
  in
  let readers = Hashtbl.create 8 and writers = Hashtbl.create 8 in
  let note table cid pid =
    let key = I.Channel_id.to_string cid in
    Hashtbl.replace table key (pid :: Option.value ~default:[] (Hashtbl.find_opt table key))
  in
  List.iter
    (fun p ->
      let pid = Spi.Process.id p in
      I.Channel_id.Set.iter
        (fun cid ->
          if not (known cid) then err (Undeclared_channel (pid, cid));
          if I.Channel_id.Set.mem cid out_ports then
            (match port_of_channel c.Structure.cluster_ports cid with
            | Some port -> err (Output_port_read (Port.id port, pid))
            | None -> ());
          note readers cid pid)
        (Spi.Process.inputs p);
      I.Channel_id.Set.iter
        (fun cid ->
          if not (known cid) then err (Undeclared_channel (pid, cid));
          if I.Channel_id.Set.mem cid in_ports then
            (match port_of_channel c.Structure.cluster_ports cid with
            | Some port -> err (Input_port_written (Port.id port, pid))
            | None -> ());
          note writers cid pid)
        (Spi.Process.outputs p))
    c.Structure.processes;
  let check_degree table ports_set make_error =
    I.Channel_id.Set.iter
      (fun cid ->
        match Hashtbl.find_opt table (I.Channel_id.to_string cid) with
        | Some (_ :: _ :: _ as ps) ->
          (match port_of_channel c.Structure.cluster_ports cid with
          | Some port ->
            err (make_error (Port.id port) (List.sort I.Process_id.compare ps))
          | None -> ())
        | Some _ | None -> ())
      ports_set
  in
  check_degree readers in_ports (fun port ps -> Input_port_fanout (port, ps));
  check_degree writers out_ports (fun port ps -> Output_port_fanin (port, ps));
  (* Internal structure check: declare placeholder channels as unbounded
     queues so single-writer/single-reader validation covers ports too. *)
  let placeholder_channels =
    List.map
      (fun p -> Spi.Chan.queue (Port.channel_of (Port.id p)))
      c.Structure.cluster_ports
  in
  (match
     Spi.Model.build ~processes:c.Structure.processes
       ~channels:(c.Structure.channels @ placeholder_channels)
   with
  | Ok _ -> ()
  | Error es ->
    List.iter
      (fun e ->
        match e with
        (* fan-in/fan-out on ports is already reported in port terms *)
        | Spi.Model.Multiple_writers (cid, _) | Spi.Model.Multiple_readers (cid, _)
          when Option.is_some (port_of_channel c.Structure.cluster_ports cid) -> ()
        | e -> err (Internal_model_error e))
      es);
  List.iter
    (fun site ->
      let iface = site.Structure.iface in
      let wired_ports = List.map fst site.Structure.wiring in
      List.iter
        (fun port ->
          let pid = Port.id port in
          if not (List.exists (I.Port_id.equal pid) wired_ports) then
            err (Sub_site_unwired (iface.Structure.interface_id, pid)))
        iface.Structure.iface_ports;
      List.iter
        (fun (_, target) ->
          if not (known target) then
            err (Sub_site_bad_target (iface.Structure.interface_id, target)))
        site.Structure.wiring;
      List.iter
        (fun sub_cluster -> errors := validate sub_cluster @ !errors)
        iface.Structure.clusters)
    c.Structure.sub_sites;
  List.rev !errors

let validate_exn c =
  match validate c with
  | [] -> ()
  | errors ->
    invalid_arg
      (Format.asprintf "@[<v>Cluster %a:@,%a@]" I.Cluster_id.pp (id c)
         (Format.pp_print_list ~pp_sep:Format.pp_print_cut pp_error)
         errors)

let rec processes_closure (c : t) =
  c.Structure.processes
  @ List.concat_map
      (fun site ->
        List.concat_map processes_closure site.Structure.iface.Structure.clusters)
      c.Structure.sub_sites

type instance = {
  inst_processes : Spi.Process.t list;
  inst_channels : Spi.Chan.t list;
}

let rec instantiate ~prefix ~port_channels ~sub_choice (c : t) =
  let internal = internal_channel_ids c in
  let host_of_port pid =
    match
      List.find_opt (fun (p, _) -> I.Port_id.equal p pid) port_channels
    with
    | Some (_, host) -> host
    | None ->
      invalid_arg
        (Format.asprintf "Cluster.instantiate %a: port %a not bound"
           I.Cluster_id.pp (id c) I.Port_id.pp pid)
  in
  let rename_cid cid =
    if I.Channel_id.Set.mem cid internal then
      I.Channel_id.of_string (prefix ^ "." ^ I.Channel_id.to_string cid)
    else
      match port_of_channel c.Structure.cluster_ports cid with
      | Some port -> host_of_port (Port.id port)
      | None ->
        invalid_arg
          (Format.asprintf "Cluster.instantiate %a: unknown channel %a"
             I.Cluster_id.pp (id c) I.Channel_id.pp cid)
  in
  let channels =
    List.map
      (fun ch -> Spi.Chan.rename (rename_cid (Spi.Chan.id ch)) ch)
      c.Structure.channels
  in
  let processes =
    List.map
      (fun p ->
        let pid =
          I.Process_id.of_string
            (prefix ^ "." ^ I.Process_id.to_string (Spi.Process.id p))
        in
        Spi.Process.rename pid (Spi.Process.map_channels rename_cid p))
      c.Structure.processes
  in
  let sub_instances =
    List.map
      (fun site ->
        let iface = site.Structure.iface in
        let chosen_id = sub_choice iface.Structure.interface_id in
        let chosen =
          match
            List.find_opt
              (fun cl -> I.Cluster_id.equal cl.Structure.cluster_id chosen_id)
              iface.Structure.clusters
          with
          | Some cl -> cl
          | None ->
            invalid_arg
              (Format.asprintf
                 "Cluster.instantiate: interface %a has no cluster %a"
                 I.Interface_id.pp iface.Structure.interface_id
                 I.Cluster_id.pp chosen_id)
        in
        let sub_ports =
          List.map (fun (p, target) -> (p, rename_cid target)) site.Structure.wiring
        in
        let sub_prefix =
          prefix ^ "." ^ I.Interface_id.to_string iface.Structure.interface_id
        in
        instantiate ~prefix:sub_prefix ~port_channels:sub_ports ~sub_choice
          chosen)
      c.Structure.sub_sites
  in
  List.fold_left
    (fun acc sub ->
      {
        inst_processes = acc.inst_processes @ sub.inst_processes;
        inst_channels = acc.inst_channels @ sub.inst_channels;
      })
    { inst_processes = processes; inst_channels = channels }
    sub_instances

module Pnode = struct
  type t = I.Process_id.t

  let compare = I.Process_id.compare
  let pp = I.Process_id.pp
end

module Pgraph = Graphlib.Digraph.Make (Pnode)
module Ptraverse = Graphlib.Traverse.Make (Pgraph)

(* Process-to-process dependencies through internal channels only. *)
let process_graph (c : t) =
  let internal = internal_channel_ids c in
  let writer = Hashtbl.create 8 in
  List.iter
    (fun p ->
      I.Channel_id.Set.iter
        (fun cid ->
          if I.Channel_id.Set.mem cid internal then
            Hashtbl.replace writer (I.Channel_id.to_string cid) (Spi.Process.id p))
        (Spi.Process.outputs p))
    c.Structure.processes;
  List.fold_left
    (fun g p ->
      let g = Pgraph.add_node (Spi.Process.id p) g in
      I.Channel_id.Set.fold
        (fun cid g ->
          match Hashtbl.find_opt writer (I.Channel_id.to_string cid) with
          | Some w -> Pgraph.add_edge w (Spi.Process.id p) g
          | None -> g)
        (Spi.Process.inputs p) g)
    Pgraph.empty c.Structure.processes

let latency_paths (c : t) =
  let g = process_graph c in
  let latency_of pid =
    match
      List.find_opt
        (fun p -> I.Process_id.equal (Spi.Process.id p) pid)
        c.Structure.processes
    with
    | Some p -> Spi.Process.latency_hull p
    | None -> Interval.zero
  in
  let longest pick =
    match
      Ptraverse.longest_path_weights ~weight:(fun pid -> pick (latency_of pid)) g
    with
    | Ok weights -> Pgraph.Node_map.fold (fun _ w acc -> max acc w) weights 0
    | Error _ ->
      List.fold_left
        (fun acc p -> acc + pick (Spi.Process.latency_hull p))
        0 c.Structure.processes
  in
  Interval.make (longest Interval.lo) (longest Interval.hi)

let port_rate_hull ~touches ~rate (c : t) pid =
  let cid = Port.channel_of pid in
  let rates =
    List.filter_map
      (fun p ->
        if I.Channel_id.Set.mem cid (touches p) then Some (rate p cid) else None)
      c.Structure.processes
  in
  match Interval.join_list rates with None -> Interval.zero | Some i -> i

let port_consumption c pid =
  port_rate_hull ~touches:Spi.Process.inputs
    ~rate:(fun p cid -> Spi.Process.consumption_hull p cid)
    c pid

let port_production c pid =
  port_rate_hull ~touches:Spi.Process.outputs
    ~rate:(fun p cid -> Spi.Process.production_hull p cid)
    c pid

let port_production_tags (c : t) pid =
  let cid = Port.channel_of pid in
  List.fold_left
    (fun acc p ->
      List.fold_left
        (fun acc m ->
          match Spi.Mode.production_on m cid with
          | None -> acc
          | Some prod -> Spi.Tag.Set.union acc prod.Spi.Mode.tags)
        acc (Spi.Process.modes p))
    Spi.Tag.Set.empty c.Structure.processes

let entry_process (c : t) =
  let reader_of_port port =
    let cid = Port.channel_of (Port.id port) in
    List.find_opt
      (fun p -> I.Channel_id.Set.mem cid (Spi.Process.inputs p))
      c.Structure.processes
  in
  List.find_map
    (fun port -> if Port.is_input port then reader_of_port port else None)
    c.Structure.cluster_ports

let pp ppf (c : t) =
  Format.fprintf ppf "cluster %a (%d processes, %d channels, %d sub-sites)"
    I.Cluster_id.pp (id c)
    (List.length c.Structure.processes)
    (List.length c.Structure.channels)
    (List.length c.Structure.sub_sites)
