type direction = Input | Output
type t = { id : Spi.Ids.Port_id.t; direction : direction }

let make direction id = { id; direction }
let input name = make Input (Spi.Ids.Port_id.of_string name)
let output name = make Output (Spi.Ids.Port_id.of_string name)
let id p = p.id
let direction p = p.direction
let is_input p = p.direction = Input
let is_output p = p.direction = Output

let equal a b = Spi.Ids.Port_id.equal a.id b.id && a.direction = b.direction

let compare a b =
  match Spi.Ids.Port_id.compare a.id b.id with
  | 0 -> Stdlib.compare a.direction b.direction
  | c -> c

let channel_of pid = Spi.Ids.Channel_id.of_string (Spi.Ids.Port_id.to_string pid)

let signature ports =
  List.fold_left
    (fun (ins, outs) p ->
      let mem set = Spi.Ids.Port_id.Set.mem p.id set in
      if mem ins || mem outs then
        invalid_arg
          (Format.asprintf "Port.signature: duplicate port %a"
             Spi.Ids.Port_id.pp p.id)
      else
        match p.direction with
        | Input -> (Spi.Ids.Port_id.Set.add p.id ins, outs)
        | Output -> (ins, Spi.Ids.Port_id.Set.add p.id outs))
    (Spi.Ids.Port_id.Set.empty, Spi.Ids.Port_id.Set.empty)
    ports

let same_signature a b =
  let ia, oa = signature a and ib, ob = signature b in
  Spi.Ids.Port_id.Set.equal ia ib && Spi.Ids.Port_id.Set.equal oa ob

let pp ppf p =
  let arrow = match p.direction with Input -> "in" | Output -> "out" in
  Format.fprintf ppf "%s:%a" arrow Spi.Ids.Port_id.pp p.id
