lib/core/port.ml: Format List Spi Stdlib
