lib/core/extraction.ml: Cluster Configuration Format Interface Interval List Option Port Selection Spi Structure
