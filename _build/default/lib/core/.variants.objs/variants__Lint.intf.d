lib/core/lint.mli: Format System
