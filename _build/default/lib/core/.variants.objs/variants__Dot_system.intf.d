lib/core/dot_system.mli: Format System
