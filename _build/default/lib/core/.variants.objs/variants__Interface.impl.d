lib/core/interface.ml: Cluster Format List Port Spi Structure
