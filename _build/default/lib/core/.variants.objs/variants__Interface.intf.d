lib/core/interface.mli: Cluster Format Port Spi Structure
