lib/core/generator.ml: Char Cluster Format Interface Interval List Port Random Spi String Structure System
