lib/core/reuse.ml: Cluster Format Interface List Port Spi String Structure System
