lib/core/structure.mli: Port Spi
