lib/core/port.mli: Format Spi
