lib/core/dot_system.ml: Buffer Format Hashtbl List Port Spi String Structure System
