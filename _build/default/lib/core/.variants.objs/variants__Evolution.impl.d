lib/core/evolution.ml: Cluster Format Interface List Option Spi Structure System
