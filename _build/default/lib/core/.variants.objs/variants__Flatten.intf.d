lib/core/flatten.mli: Configuration Extraction Spi System
