lib/core/cluster.mli: Format Interval Port Spi Structure
