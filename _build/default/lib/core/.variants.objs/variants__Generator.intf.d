lib/core/generator.mli: Spi System
