lib/core/selection.ml: Format List Option Spi Structure
