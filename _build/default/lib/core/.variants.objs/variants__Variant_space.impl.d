lib/core/variant_space.ml: Cluster Flatten Format List Option Spi Structure System
