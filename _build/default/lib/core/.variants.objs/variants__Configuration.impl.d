lib/core/configuration.ml: Format Hashtbl List Option Spi String
