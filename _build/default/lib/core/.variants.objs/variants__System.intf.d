lib/core/system.mli: Format Interface Spi Structure
