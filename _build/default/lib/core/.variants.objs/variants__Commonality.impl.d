lib/core/commonality.ml: Flatten Format List Spi
