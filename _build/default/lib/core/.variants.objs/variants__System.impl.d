lib/core/system.ml: Format Interface List Port Spi Structure
