lib/core/lint.ml: Cluster Configuration Extraction Flatten Format Interface Interval List Selection Spi String Structure System
