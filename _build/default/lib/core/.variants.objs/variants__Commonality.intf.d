lib/core/commonality.mli: Format Spi System
