lib/core/extraction.mli: Cluster Configuration Format Interface Interval Spi
