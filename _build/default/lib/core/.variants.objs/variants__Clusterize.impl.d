lib/core/clusterize.ml: Cluster Format Interface List Option Port Spi String Structure System
