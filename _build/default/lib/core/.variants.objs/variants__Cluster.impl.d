lib/core/cluster.ml: Format Graphlib Hashtbl Interval List Option Port Spi Structure
