lib/core/configuration.mli: Format Spi
