lib/core/reuse.mli: Cluster Format Interface Spi System
