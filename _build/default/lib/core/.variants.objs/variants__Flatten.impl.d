lib/core/flatten.ml: Cluster Extraction Format List Spi String Structure System
