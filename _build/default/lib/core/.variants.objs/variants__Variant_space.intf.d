lib/core/variant_space.mli: Flatten Format Spi System
