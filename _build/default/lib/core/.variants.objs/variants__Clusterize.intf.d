lib/core/clusterize.mli: Cluster Spi System
