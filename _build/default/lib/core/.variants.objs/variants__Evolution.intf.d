lib/core/evolution.mli: Spi Structure System
