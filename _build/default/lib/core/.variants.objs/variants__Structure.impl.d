lib/core/structure.ml: Port Spi
