lib/core/selection.mli: Format Spi Structure
