module I = Spi.Ids

type report = {
  applications : int;
  shared : I.Process_id.Set.t;
  partially_shared : I.Process_id.Set.t;
  variant_specific : I.Process_id.Set.t;
  overlap_fraction : float;
  duplicated_decisions : int;
}

let of_process_sets sets =
  if sets = [] then invalid_arg "Commonality: no applications";
  let union =
    List.fold_left I.Process_id.Set.union I.Process_id.Set.empty sets
  in
  let occurrences pid =
    List.length (List.filter (fun s -> I.Process_id.Set.mem pid s) sets)
  in
  let n = List.length sets in
  let classify pid (shared, partial, specific) =
    match occurrences pid with
    | k when k = n -> (I.Process_id.Set.add pid shared, partial, specific)
    | 1 -> (shared, partial, I.Process_id.Set.add pid specific)
    | _ -> (shared, I.Process_id.Set.add pid partial, specific)
  in
  let shared, partially_shared, variant_specific =
    I.Process_id.Set.fold classify union
      (I.Process_id.Set.empty, I.Process_id.Set.empty, I.Process_id.Set.empty)
  in
  let total_considered =
    List.fold_left (fun acc s -> acc + I.Process_id.Set.cardinal s) 0 sets
  in
  {
    applications = n;
    shared;
    partially_shared;
    variant_specific;
    overlap_fraction =
      (if I.Process_id.Set.is_empty union then 1.0
       else
         float_of_int (I.Process_id.Set.cardinal shared)
         /. float_of_int (I.Process_id.Set.cardinal union));
    duplicated_decisions = total_considered - I.Process_id.Set.cardinal union;
  }

let analyze system =
  let sets =
    List.map
      (fun (_, model) ->
        List.fold_left
          (fun acc p -> I.Process_id.Set.add (Spi.Process.id p) acc)
          I.Process_id.Set.empty (Spi.Model.processes model))
      (Flatten.applications system)
  in
  of_process_sets sets

let pp ppf r =
  Format.fprintf ppf
    "%d applications: %d shared, %d partially shared, %d variant-specific \
     (overlap %.0f%%, %d duplicated decisions)"
    r.applications
    (I.Process_id.Set.cardinal r.shared)
    (I.Process_id.Set.cardinal r.partially_shared)
    (I.Process_id.Set.cardinal r.variant_specific)
    (100. *. r.overlap_fraction)
    r.duplicated_decisions
