(** Graphviz rendering of a system with its variant structure.

    Unlike {!Spi.Model} dot export (one flat bipartite graph), this
    renders the design representation itself: the common part at the
    top level, one dashed box per interface, one solid box per cluster
    inside it (nested variants recurse), ports on the box borders and
    wiring edges to the host channels — essentially the paper's
    Figure 2 as a diagram. *)

val pp : Format.formatter -> System.t -> unit
val to_string : System.t -> string
val to_file : string -> System.t -> unit
