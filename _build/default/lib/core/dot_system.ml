module I = Spi.Ids

let escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

(* Every emitted node gets a fresh numeric id; lookup maps (scope, name)
   to ids so edges can reference nodes across nesting levels. *)
type ctx = {
  ppf : Format.formatter;
  ids : (string, string) Hashtbl.t;
  mutable counter : int;
  mutable box : int;
}

let node_id ctx ~scope name =
  let key = scope ^ "//" ^ name in
  match Hashtbl.find_opt ctx.ids key with
  | Some id -> id
  | None ->
    let id = Format.sprintf "n%d" ctx.counter in
    ctx.counter <- ctx.counter + 1;
    Hashtbl.replace ctx.ids key id;
    id

let emit_node ctx ~scope ~shape ?(style = "") name label =
  let id = node_id ctx ~scope name in
  Format.fprintf ctx.ppf "%s [label=\"%s\", shape=%s%s];@," id (escape label)
    shape
    (if style = "" then "" else Format.sprintf ", style=\"%s\"" style)

let emit_edge ?(style = "") ctx from_id to_id =
  Format.fprintf ctx.ppf "%s -> %s%s;@," from_id to_id
    (if style = "" then "" else Format.sprintf " [style=\"%s\"]" style)

(* Emit process boxes and their channel edges within one scope.  Channel
   references are resolved scope-locally; unresolved ones (port
   placeholders) are resolved by the caller-provided [resolve]. *)
let emit_processes ctx ~scope ~resolve processes =
  List.iter
    (fun p ->
      let pname = I.Process_id.to_string (Spi.Process.id p) in
      emit_node ctx ~scope ~shape:"box" ("p:" ^ pname) pname;
      let pid = node_id ctx ~scope ("p:" ^ pname) in
      I.Channel_id.Set.iter
        (fun cid -> emit_edge ctx (resolve cid) pid)
        (Spi.Process.inputs p);
      I.Channel_id.Set.iter
        (fun cid -> emit_edge ctx pid (resolve cid))
        (Spi.Process.outputs p))
    processes

let emit_channels ctx ~scope channels =
  List.iter
    (fun chan ->
      let cname = I.Channel_id.to_string (Spi.Chan.id chan) in
      let label =
        match Spi.Chan.kind chan with
        | Spi.Chan.Queue -> cname
        | Spi.Chan.Register -> cname ^ " (reg)"
      in
      emit_node ctx ~scope ~shape:"ellipse" ("c:" ^ cname) label)
    channels

let rec emit_site ctx ~scope ~resolve_host (site : Structure.site) =
  let iface = site.Structure.iface in
  let iname = I.Interface_id.to_string iface.Structure.interface_id in
  let iface_scope = scope ^ "/" ^ iname in
  ctx.box <- ctx.box + 1;
  Format.fprintf ctx.ppf "subgraph cluster_%d {@," ctx.box;
  Format.fprintf ctx.ppf "label=\"interface %s\"; style=dashed;@," (escape iname);
  List.iter
    (fun cluster ->
      let cname = I.Cluster_id.to_string cluster.Structure.cluster_id in
      let cluster_scope = iface_scope ^ "/" ^ cname in
      ctx.box <- ctx.box + 1;
      Format.fprintf ctx.ppf "subgraph cluster_%d {@," ctx.box;
      Format.fprintf ctx.ppf "label=\"cluster %s\"; style=solid;@," (escape cname);
      (* port nodes on this cluster's border *)
      List.iter
        (fun port ->
          let pname = I.Port_id.to_string (Port.id port) in
          emit_node ctx ~scope:cluster_scope ~shape:"diamond"
            ("port:" ^ pname) pname)
        cluster.Structure.cluster_ports;
      emit_channels ctx ~scope:cluster_scope cluster.Structure.channels;
      let resolve cid =
        let cname_c = I.Channel_id.to_string cid in
        let is_port =
          List.exists
            (fun port ->
              I.Channel_id.equal (Port.channel_of (Port.id port)) cid)
            cluster.Structure.cluster_ports
        in
        if is_port then node_id ctx ~scope:cluster_scope ("port:" ^ cname_c)
        else node_id ctx ~scope:cluster_scope ("c:" ^ cname_c)
      in
      emit_processes ctx ~scope:cluster_scope ~resolve cluster.Structure.processes;
      List.iter
        (fun sub -> emit_site ctx ~scope:cluster_scope ~resolve_host:resolve sub)
        cluster.Structure.sub_sites;
      Format.fprintf ctx.ppf "}@,";
      (* wiring: cluster ports to host channels, dashed *)
      List.iter
        (fun (port_id, host) ->
          let port_node =
            node_id ctx ~scope:cluster_scope
              ("port:" ^ I.Port_id.to_string port_id)
          in
          let host_node = resolve_host host in
          let is_input =
            List.exists
              (fun port ->
                Port.is_input port && I.Port_id.equal (Port.id port) port_id)
              cluster.Structure.cluster_ports
          in
          if is_input then emit_edge ~style:"dashed" ctx host_node port_node
          else emit_edge ~style:"dashed" ctx port_node host_node)
        site.Structure.wiring)
    iface.Structure.clusters;
  Format.fprintf ctx.ppf "}@,"

let pp ppf system =
  Format.fprintf ppf "@[<v>digraph variants {@,";
  Format.fprintf ppf "rankdir=LR; compound=true;@,";
  let ctx = { ppf; ids = Hashtbl.create 64; counter = 0; box = 0 } in
  let scope = "top" in
  emit_channels ctx ~scope (System.channels system);
  let resolve cid = node_id ctx ~scope ("c:" ^ I.Channel_id.to_string cid) in
  emit_processes ctx ~scope ~resolve (System.processes system);
  List.iter (emit_site ctx ~scope ~resolve_host:resolve) (System.sites system);
  Format.fprintf ppf "}@]@."

let to_string system = Format.asprintf "%a" pp system

let to_file path system =
  let oc = open_out path in
  output_string oc (to_string system);
  close_out oc
