(** Interface operations (Def. 2).

    An interface is a tuple (I, O, Γ): input ports, output ports, and
    the set of associated clusters, each matching the interface's port
    signature.  Each function variant of the represented system part is
    exactly one cluster of the interface. *)

type t = Structure.interface

val make :
  ?selection:Structure.selection ->
  ports:Port.t list ->
  clusters:Cluster.t list ->
  string ->
  t

val id : t -> Spi.Ids.Interface_id.t
val ports : t -> Port.t list
val clusters : t -> Cluster.t list
val selection : t -> Structure.selection option
val cluster_ids : t -> Spi.Ids.Cluster_id.t list
val find_cluster : Spi.Ids.Cluster_id.t -> t -> Cluster.t option

val get_cluster : Spi.Ids.Cluster_id.t -> t -> Cluster.t
(** @raise Not_found *)

val variant_count : t -> int

type error =
  | No_clusters
  | Duplicate_cluster of Spi.Ids.Cluster_id.t
  | Signature_mismatch of Spi.Ids.Cluster_id.t
      (** the cluster's ports differ from the interface's (Def. 2) *)
  | Cluster_error of Spi.Ids.Cluster_id.t * Cluster.error
  | Selection_unknown_cluster of Spi.Ids.Rule_id.t * Spi.Ids.Cluster_id.t
  | Selection_latency_unknown_cluster of Spi.Ids.Cluster_id.t
  | Selection_initial_unknown of Spi.Ids.Cluster_id.t

val pp_error : Format.formatter -> error -> unit

val validate : t -> error list
val validate_exn : t -> unit

val ambiguous_selection_pairs : t -> (Spi.Ids.Rule_id.t * Spi.Ids.Rule_id.t) list
(** Selection rule pairs not provably disjoint — candidates for
    nondeterministic cluster selection. *)

val pp : Format.formatter -> t -> unit
