(** Commonality analysis across function variants.

    Variant-aware optimization pays off where applications overlap
    (Section 5: "considering commonalities between applications during
    synthesis helps to facilitate reuse of components").  This module
    quantifies that overlap over the derivable applications of a system.

    Note on naming: cluster-internal processes instantiate as
    ["<interface>.<name>"], so a process name used by {e several}
    clusters of the same interface denotes the {e same} sub-function
    occurring in several variants — it flattens to one model element and
    is counted as common. *)

type report = {
  applications : int;
  shared : Spi.Ids.Process_id.Set.t;
      (** processes present in every application *)
  partially_shared : Spi.Ids.Process_id.Set.t;
      (** present in more than one but not all applications *)
  variant_specific : Spi.Ids.Process_id.Set.t;
      (** present in exactly one application *)
  overlap_fraction : float;
      (** |shared| / |union| — 1.0 when all applications coincide *)
  duplicated_decisions : int;
      (** extra process considerations an independent per-application
          synthesis performs compared to the variant-aware flow *)
}

val analyze : System.t -> report
(** @raise Invalid_argument when the system has no derivable
    application. *)

val of_process_sets : Spi.Ids.Process_id.Set.t list -> report
(** The same analysis over explicit application process sets. *)

val pp : Format.formatter -> report -> unit
