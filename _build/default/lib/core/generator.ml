module I = Spi.Ids

type params = {
  seed : int;
  shared_processes : int;
  sites : int;
  variants_per_site : int;
  cluster_processes : int;
  latency_range : int * int;
}

let default =
  {
    seed = 42;
    shared_processes = 2;
    sites = 1;
    variants_per_site = 2;
    cluster_processes = 2;
    latency_range = (1, 20);
  }

let latency_interval rng (lo_range, hi_range) =
  let mid = lo_range + Random.State.int rng (max 1 (hi_range - lo_range + 1)) in
  let spread = Random.State.int rng (1 + (mid / 2)) in
  Interval.make (max 0 (mid - spread)) (mid + spread)

let chain_process rng range ~consumes_from ~produces_to name =
  Spi.Process.simple
    ~latency:(latency_interval rng range)
    ~consumes:[ (consumes_from, Interval.point 1) ]
    ~produces:[ (produces_to, Spi.Mode.produce (Interval.point 1)) ]
    (I.Process_id.of_string name)

let generate p =
  if p.shared_processes < 1 || p.sites < 0 || p.variants_per_site < 1
     || p.cluster_processes < 1
  then invalid_arg "Generator.generate: nonsensical parameters";
  let rng = Random.State.make [| p.seed |] in
  let chan name = I.Channel_id.of_string name in
  (* Top-level channels: c0 .. c(shared + sites). *)
  let top_channel i = chan (Format.sprintf "c%d" i) in
  let n_top = p.shared_processes + p.sites + 1 in
  let channels =
    List.init n_top (fun i -> Spi.Chan.queue (top_channel i))
  in
  let shared =
    List.init p.shared_processes (fun i ->
        chain_process rng p.latency_range ~consumes_from:(top_channel i)
          ~produces_to:(top_channel (i + 1))
          (Format.sprintf "S%d" (i + 1)))
  in
  let cluster_of_site ~site ~variant =
    let in_port = Port.input "pin" and out_port = Port.output "pout" in
    let internal =
      List.init (p.cluster_processes - 1) (fun i ->
          Spi.Chan.queue (chan (Format.sprintf "k%d" i)))
    in
    let endpoint i =
      if i = 0 then Port.channel_of (Port.id in_port)
      else chan (Format.sprintf "k%d" (i - 1))
    and exitpoint i =
      if i = p.cluster_processes - 1 then Port.channel_of (Port.id out_port)
      else chan (Format.sprintf "k%d" i)
    in
    let processes =
      List.init p.cluster_processes (fun i ->
          chain_process rng p.latency_range ~consumes_from:(endpoint i)
            ~produces_to:(exitpoint i)
            (Format.sprintf "v%d_%d" variant (i + 1)))
    in
    Cluster.make ~channels:internal
      ~ports:[ in_port; out_port ]
      ~processes
      (Format.sprintf "site%d_var%d" site variant)
  in
  let sites =
    List.init p.sites (fun s ->
        let clusters =
          List.init p.variants_per_site (fun v ->
              cluster_of_site ~site:(s + 1) ~variant:(v + 1))
        in
        let iface =
          Interface.make
            ~ports:[ Port.input "pin"; Port.output "pout" ]
            ~clusters
            (Format.sprintf "iface%d" (s + 1))
        in
        {
          Structure.iface;
          wiring =
            [
              (I.Port_id.of_string "pin", top_channel (p.shared_processes + s));
              ( I.Port_id.of_string "pout",
                top_channel (p.shared_processes + s + 1) );
            ];
        })
  in
  System.make ~processes:shared ~channels ~sites
    (Format.sprintf "gen_seed%d" p.seed)

let process_weight pid =
  let name = I.Process_id.to_string pid in
  let h =
    String.fold_left (fun acc c -> (acc * 131) + Char.code c) 7 name
  in
  1 + (abs h mod 100)
