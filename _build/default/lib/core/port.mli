(** Interface and cluster ports.

    Ports are the fixed connection points through which clusters
    communicate with the rest of the model (Def. 1/2).  Inside a cluster,
    a port is referenced as a {e placeholder channel} carrying the port's
    name; {!channel_of} performs that embedding, and instantiation
    (in {!Cluster}) renames placeholder channels to the concrete host
    channels an interface site is wired to. *)

type direction = Input | Output

type t

val input : string -> t
val output : string -> t
val make : direction -> Spi.Ids.Port_id.t -> t
val id : t -> Spi.Ids.Port_id.t
val direction : t -> direction
val is_input : t -> bool
val is_output : t -> bool
val equal : t -> t -> bool
val compare : t -> t -> int

val channel_of : Spi.Ids.Port_id.t -> Spi.Ids.Channel_id.t
(** The placeholder channel id embedded processes use to read from or
    write to the port. *)

val signature : t list -> Spi.Ids.Port_id.Set.t * Spi.Ids.Port_id.Set.t
(** Input and output port-id sets of a port list.
    @raise Invalid_argument on duplicate port ids. *)

val same_signature : t list -> t list -> bool
(** Port-wise compatibility: equal input sets and equal output sets
    (Def. 2: "each cluster matches the interface in terms of input and
    output ports"). *)

val pp : Format.formatter -> t -> unit
