(** Human-friendly rendering of lexer/parser errors with a source
    excerpt and caret, the way compilers report. *)

val pp :
  source:string ->
  path:string ->
  line:int ->
  col:int ->
  message:string ->
  Format.formatter ->
  unit ->
  unit
(** Prints

    {v
path:line:col: message
  <offending source line>
  ^~~~
    v} *)

val render :
  source:string -> path:string -> line:int -> col:int -> message:string ->
  string
