(** Technology libraries in textual form.

    Grammar (same lexical rules as the `.spi` format):

    {v
tech      ::= "tech" NAME "{" ("processor" INT)? entry* "}"
entry     ::= "impl" NAME option+
option    ::= "sw" INT          # software load
            | "hw" INT          # hardware area
    v}

    Example:

    {v
tech table1 {
  processor 15
  impl PA sw 40 hw 26
  impl PB sw 30 hw 30
  impl cluster:g1 sw 60 hw 19
}
    v} *)

val of_string : string -> Synth.Tech.t
(** @raise Parser.Parse_error on syntax errors;
    @raise Invalid_argument on semantic errors (duplicate entries,
    negative figures, an [impl] with no option). *)

val of_file : string -> Synth.Tech.t

val to_string : name:string -> Synth.Tech.t -> string
(** Round-trips through {!of_string}. *)
