module I = Spi.Ids
module V = Variants

let pp_interval ppf i =
  if Interval.is_point i then Format.fprintf ppf "%d" (Interval.lo i)
  else Format.fprintf ppf "[%d, %d]" (Interval.lo i) (Interval.hi i)

let pp_tags ppf tags =
  Format.fprintf ppf "[%s]"
    (String.concat " "
       (List.map (fun t -> "'" ^ Spi.Tag.name t ^ "'") (Spi.Tag.Set.elements tags)))

let rec pp_pred ppf = function
  | Spi.Predicate.True -> Format.pp_print_string ppf "true"
  | Spi.Predicate.False -> Format.pp_print_string ppf "false"
  | Spi.Predicate.Atom (Spi.Predicate.Num_at_least (c, k)) ->
    Format.fprintf ppf "num %s >= %d" (I.Channel_id.to_string c) k
  | Spi.Predicate.Atom (Spi.Predicate.First_has_tag (c, t)) ->
    Format.fprintf ppf "tag %s '%s'" (I.Channel_id.to_string c) (Spi.Tag.name t)
  | Spi.Predicate.And (p, q) ->
    Format.fprintf ppf "(%a && %a)" pp_pred p pp_pred q
  | Spi.Predicate.Or (p, q) -> Format.fprintf ppf "(%a || %a)" pp_pred p pp_pred q
  | Spi.Predicate.Not p -> Format.fprintf ppf "!(%a)" pp_pred p

let pp_channel ppf chan =
  let name = I.Channel_id.to_string (Spi.Chan.id chan) in
  let kind =
    match Spi.Chan.kind chan with
    | Spi.Chan.Queue -> "queue"
    | Spi.Chan.Register -> "register"
  in
  Format.fprintf ppf "channel %s %s" name kind;
  (match Spi.Chan.capacity chan, Spi.Chan.kind chan with
  | Some cap, Spi.Chan.Queue -> Format.fprintf ppf " capacity %d" cap
  | _, Spi.Chan.Register | None, Spi.Chan.Queue -> ());
  (match Spi.Chan.initial chan with
  | [] -> ()
  | tokens when List.for_all (fun t -> Spi.Tag.Set.is_empty (Spi.Token.tags t)) tokens
    -> Format.fprintf ppf " initial %d" (List.length tokens)
  | [ token ] -> Format.fprintf ppf " initial %a" pp_tags (Spi.Token.tags token)
  | _ ->
    invalid_arg
      (Format.sprintf
         "Printer: channel %s: several tagged initial tokens are not \
          representable"
         name));
  Format.fprintf ppf "@,"

let pp_mode ppf mode =
  Format.fprintf ppf "@[<v2>mode %s {@," (I.Mode_id.to_string (Spi.Mode.id mode));
  Format.fprintf ppf "latency %a@," pp_interval (Spi.Mode.latency mode);
  List.iter
    (fun (cid, rate) ->
      Format.fprintf ppf "consume %s %a@," (I.Channel_id.to_string cid)
        pp_interval rate)
    (Spi.Mode.consumptions mode);
  List.iter
    (fun (cid, prod) ->
      Format.fprintf ppf "produce %s %a" (I.Channel_id.to_string cid) pp_interval
        prod.Spi.Mode.rate;
      if not (Spi.Tag.Set.is_empty prod.Spi.Mode.tags) then
        Format.fprintf ppf " %a" pp_tags prod.Spi.Mode.tags;
      Format.fprintf ppf "@,")
    (Spi.Mode.productions mode);
  (match Spi.Mode.payload_policy mode with
  | Spi.Mode.Fresh -> Format.fprintf ppf "payload fresh@,"
  | Spi.Mode.Inherit_first -> ());
  Format.fprintf ppf "@]}@,"

let pp_process ppf proc =
  Format.fprintf ppf "@[<v2>process %s {@,"
    (I.Process_id.to_string (Spi.Process.id proc));
  List.iter (pp_mode ppf) (Spi.Process.modes proc);
  List.iter
    (fun rule ->
      Format.fprintf ppf "rule %s when %a -> %s@,"
        (I.Rule_id.to_string (Spi.Activation.rule_id rule))
        pp_pred
        (Spi.Activation.guard rule)
        (I.Mode_id.to_string (Spi.Activation.target_mode rule)))
    (Spi.Activation.rules (Spi.Process.activation proc));
  Format.fprintf ppf "@]}@,"

let rec pp_site ppf (site : V.Structure.site) =
  let iface = site.V.Structure.iface in
  Format.fprintf ppf "@[<v2>interface %s {@,"
    (I.Interface_id.to_string (V.Interface.id iface));
  List.iter
    (fun port ->
      let pid = V.Port.id port in
      let host =
        match
          List.find_opt
            (fun (p, _) -> I.Port_id.equal p pid)
            site.V.Structure.wiring
        with
        | Some (_, host) -> I.Channel_id.to_string host
        | None -> I.Port_id.to_string pid
      in
      Format.fprintf ppf "port %s %s = %s@,"
        (if V.Port.is_input port then "in" else "out")
        (I.Port_id.to_string pid) host)
    (V.Interface.ports iface);
  List.iter
    (fun cluster ->
      Format.fprintf ppf "@[<v2>cluster %s {@,"
        (I.Cluster_id.to_string (V.Cluster.id cluster));
      List.iter (pp_channel ppf) cluster.V.Structure.channels;
      List.iter (pp_process ppf) cluster.V.Structure.processes;
      List.iter (pp_site ppf) cluster.V.Structure.sub_sites;
      Format.fprintf ppf "@]}@,")
    (V.Interface.clusters iface);
  (match V.Interface.selection iface with
  | None -> ()
  | Some sel ->
    Format.fprintf ppf "@[<v2>selection {@,";
    List.iter
      (fun rule ->
        Format.fprintf ppf "rule %s when %a -> %s@,"
          (I.Rule_id.to_string rule.V.Structure.sel_rule_id)
          pp_pred rule.V.Structure.sel_guard
          (I.Cluster_id.to_string rule.V.Structure.target))
      (V.Selection.rules sel);
    List.iter
      (fun cluster ->
        let cid = V.Cluster.id cluster in
        let latency = V.Selection.config_latency sel cid in
        if latency > 0 then
          Format.fprintf ppf "latency %s %d@," (I.Cluster_id.to_string cid) latency)
      (V.Interface.clusters iface);
    (match V.Selection.initial sel with
    | Some cid -> Format.fprintf ppf "initial %s@," (I.Cluster_id.to_string cid)
    | None -> ());
    Format.fprintf ppf "@]}@,");
  Format.fprintf ppf "@]}@,"

let pp_constraint ppf (c : Spi.Constraint_.t) =
  Format.fprintf ppf "deadline %s from %s to %s within %d@," c.Spi.Constraint_.name
    (I.Process_id.to_string c.Spi.Constraint_.from_)
    (I.Process_id.to_string c.Spi.Constraint_.to_)
    c.Spi.Constraint_.bound

let pp ppf system =
  Format.fprintf ppf "@[<v2>system %s {@," (V.System.name system);
  List.iter (pp_channel ppf) (V.System.channels system);
  List.iter (pp_process ppf) (V.System.processes system);
  List.iter (pp_site ppf) (V.System.sites system);
  List.iter (pp_constraint ppf) (V.System.constraints system);
  Format.fprintf ppf "@]}@."

let to_string system = Format.asprintf "%a" pp system

let to_file path system =
  let oc = open_out path in
  let ppf = Format.formatter_of_out_channel oc in
  pp ppf system;
  Format.pp_print_flush ppf ();
  close_out oc
