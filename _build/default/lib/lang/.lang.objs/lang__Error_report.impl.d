lib/lang/error_report.ml: Format List String
