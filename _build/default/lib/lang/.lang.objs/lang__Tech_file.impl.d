lib/lang/tech_file.ml: Buffer Format Lexer List Parser Spi String Synth
