lib/lang/parser.ml: Format Interval Lexer List Spi String Variants
