lib/lang/tech_file.mli: Synth
