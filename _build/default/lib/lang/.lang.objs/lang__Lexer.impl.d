lib/lang/lexer.ml: Format List String
