lib/lang/printer.mli: Format Variants
