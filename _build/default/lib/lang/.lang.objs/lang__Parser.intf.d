lib/lang/parser.mli: Variants
