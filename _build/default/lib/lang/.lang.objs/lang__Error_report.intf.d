lib/lang/error_report.mli: Format
