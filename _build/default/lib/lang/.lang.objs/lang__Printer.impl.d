lib/lang/printer.ml: Format Interval List Spi String Variants
