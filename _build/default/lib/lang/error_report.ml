let nth_line source n =
  let lines = String.split_on_char '\n' source in
  List.nth_opt lines (n - 1)

let pp ~source ~path ~line ~col ~message ppf () =
  Format.fprintf ppf "%s:%d:%d: %s@." path line col message;
  match nth_line source line with
  | None -> ()
  | Some text ->
    Format.fprintf ppf "  %s@." text;
    let caret_pos = max 0 (col - 1) in
    Format.fprintf ppf "  %s^@." (String.make caret_pos ' ')

let render ~source ~path ~line ~col ~message =
  Format.asprintf "%a" (pp ~source ~path ~line ~col ~message) ()
