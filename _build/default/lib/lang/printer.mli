(** Printer for the SPI-variants textual format.

    [Parser.system_of_string (to_string system)] reconstructs a system
    with the same structure and semantics (activation functions are
    printed explicitly, so auto-generated default rules round-trip as
    explicit rules). *)

val to_string : Variants.System.t -> string

val pp : Format.formatter -> Variants.System.t -> unit
(** @raise Invalid_argument for channel initial contents the format
    cannot express (several tokens carrying tags). *)

val to_file : string -> Variants.System.t -> unit
