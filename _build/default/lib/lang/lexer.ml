type token =
  | IDENT of string
  | INT of int
  | TAG of string
  | LBRACE
  | RBRACE
  | LBRACKET
  | RBRACKET
  | LPAREN
  | RPAREN
  | COMMA
  | EQUALS
  | ARROW
  | GE
  | AND
  | OR
  | NOT
  | EOF

type located = { token : token; line : int; col : int }

exception Lex_error of { line : int; col : int; message : string }

let error line col fmt =
  Format.kasprintf (fun message -> raise (Lex_error { line; col; message })) fmt

let is_ident_start c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'

(* Dots, colons and [@] appear inside generated mode and process names
   ("P1.proc:fA", "g1.x1.default@v1"); accepting them keeps the format
   round-trippable. *)
let is_ident_char c =
  is_ident_start c || (c >= '0' && c <= '9') || c = '.' || c = ':' || c = '@'
  || c = '-'

let is_digit c = c >= '0' && c <= '9'

let tokenize input =
  let n = String.length input in
  let tokens = ref [] in
  let line = ref 1 and col = ref 1 in
  let emit token l c = tokens := { token; line = l; col = c } :: !tokens in
  let i = ref 0 in
  let advance () =
    (if !i < n && input.[!i] = '\n' then begin
       incr line;
       col := 1
     end
     else incr col);
    incr i
  in
  let peek k = if !i + k < n then Some input.[!i + k] else None in
  while !i < n do
    let c = input.[!i] in
    let l = !line and cl = !col in
    if c = ' ' || c = '\t' || c = '\r' || c = '\n' then advance ()
    else if c = '#' then
      while !i < n && input.[!i] <> '\n' do
        advance ()
      done
    else if is_ident_start c then begin
      let start = !i in
      while !i < n && is_ident_char input.[!i] do
        advance ()
      done;
      emit (IDENT (String.sub input start (!i - start))) l cl
    end
    else if is_digit c || (c = '-' && (match peek 1 with Some d -> is_digit d | None -> false))
    then begin
      let start = !i in
      advance ();
      while !i < n && is_digit input.[!i] do
        advance ()
      done;
      emit (INT (int_of_string (String.sub input start (!i - start)))) l cl
    end
    else
      match c with
      | '\'' ->
        advance ();
        let start = !i in
        while !i < n && input.[!i] <> '\'' && input.[!i] <> '\n' do
          advance ()
        done;
        if !i >= n || input.[!i] <> '\'' then error l cl "unterminated tag literal"
        else begin
          let tag = String.sub input start (!i - start) in
          advance ();
          if tag = "" then error l cl "empty tag literal";
          emit (TAG tag) l cl
        end
      | '{' -> emit LBRACE l cl; advance ()
      | '}' -> emit RBRACE l cl; advance ()
      | '[' -> emit LBRACKET l cl; advance ()
      | ']' -> emit RBRACKET l cl; advance ()
      | '(' -> emit LPAREN l cl; advance ()
      | ')' -> emit RPAREN l cl; advance ()
      | ',' -> emit COMMA l cl; advance ()
      | '=' -> emit EQUALS l cl; advance ()
      | '!' -> emit NOT l cl; advance ()
      | '-' when peek 1 = Some '>' ->
        advance (); advance ();
        emit ARROW l cl
      | '>' when peek 1 = Some '=' ->
        advance (); advance ();
        emit GE l cl
      | '&' when peek 1 = Some '&' ->
        advance (); advance ();
        emit AND l cl
      | '|' when peek 1 = Some '|' ->
        advance (); advance ();
        emit OR l cl
      | c -> error l cl "illegal character %C" c
  done;
  emit EOF !line !col;
  List.rev !tokens

let pp_token ppf = function
  | IDENT s -> Format.fprintf ppf "identifier %S" s
  | INT n -> Format.fprintf ppf "integer %d" n
  | TAG t -> Format.fprintf ppf "tag '%s'" t
  | LBRACE -> Format.pp_print_string ppf "'{'"
  | RBRACE -> Format.pp_print_string ppf "'}'"
  | LBRACKET -> Format.pp_print_string ppf "'['"
  | RBRACKET -> Format.pp_print_string ppf "']'"
  | LPAREN -> Format.pp_print_string ppf "'('"
  | RPAREN -> Format.pp_print_string ppf "')'"
  | COMMA -> Format.pp_print_string ppf "','"
  | EQUALS -> Format.pp_print_string ppf "'='"
  | ARROW -> Format.pp_print_string ppf "'->'"
  | GE -> Format.pp_print_string ppf "'>='"
  | AND -> Format.pp_print_string ppf "'&&'"
  | OR -> Format.pp_print_string ppf "'||'"
  | NOT -> Format.pp_print_string ppf "'!'"
  | EOF -> Format.pp_print_string ppf "end of input"
