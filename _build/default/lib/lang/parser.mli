(** Parser for the SPI-variants textual format.

    Grammar (comments run from [#] to end of line):

    {v
system   ::= "system" NAME "{" item* "}"
item     ::= channel | process | site | deadline
deadline ::= "deadline" NAME "from" PROC "to" PROC "within" INT
channel  ::= "channel" NAME ("queue" | "register")
             ("capacity" INT)? initial?
initial  ::= "initial" INT                 # n plain tokens
           | "initial" "[" TAG* "]"        # one token with tags
process  ::= "process" NAME "{" (mode | rule)* "}"
mode     ::= "mode" NAME "{" mode_item* "}"
mode_item::= "latency" interval
           | "consume" NAME interval
           | "produce" NAME interval ("[" TAG* "]")?
           | "payload" ("fresh" | "inherit")
interval ::= INT | "[" INT "," INT "]"
rule     ::= "rule" NAME "when" pred "->" NAME
pred     ::= conj ("||" conj)*
conj     ::= atom ("&&" atom)*
atom     ::= "!" atom | "(" pred ")" | "true" | "false"
           | "num" NAME ">=" INT | "tag" NAME TAG
site     ::= "interface" NAME "{" port* cluster* selection? "}"
port     ::= "port" ("in" | "out") NAME "=" NAME   # port = host channel
cluster  ::= "cluster" NAME "{" item* "}"          # may nest sites
selection::= "selection" "{" sel_item* "}"
sel_item ::= rule                                  # target is a cluster
           | "latency" NAME INT                    # t_conf per cluster
           | "initial" NAME
    v}

    Processes without rules get the library's default activation (enough
    tokens for a mode's upper consumption bounds).  Cluster port lists
    are inherited from the enclosing interface declaration. *)

exception Parse_error of { line : int; col : int; message : string }

val system_of_string : string -> Variants.System.t
(** @raise Parse_error on syntax errors (lex errors are re-raised as
    parse errors); @raise Invalid_argument when the parsed entities
    violate construction invariants (duplicate modes, bad intervals,
    ...). Structural validation is the caller's choice
    ({!Variants.System.validate}). *)

val system_of_file : string -> Variants.System.t
(** @raise Sys_error on unreadable files. *)
