(** Lexer for the SPI-variants textual format.

    Tokens are identifiers (possibly dotted/colon'd, as in mode or tag
    names), integers, single-quoted tag literals, punctuation and
    keywords.  Comments run from [#] to end of line. *)

type token =
  | IDENT of string
  | INT of int
  | TAG of string  (** ['name'] *)
  | LBRACE
  | RBRACE
  | LBRACKET
  | RBRACKET
  | LPAREN
  | RPAREN
  | COMMA
  | EQUALS
  | ARROW  (** [->] *)
  | GE  (** [>=] *)
  | AND  (** [&&] *)
  | OR  (** [||] *)
  | NOT  (** [!] *)
  | EOF

type located = { token : token; line : int; col : int }

exception Lex_error of { line : int; col : int; message : string }

val tokenize : string -> located list
(** @raise Lex_error on illegal characters or unterminated tags. *)

val pp_token : Format.formatter -> token -> unit
