(** Closed integer intervals.

    The SPI model (System Property Intervals) annotates every behavioural
    parameter — communicated token counts, execution latencies — with a
    lower and an upper bound.  This module provides the interval domain
    used throughout the repository: closed, non-empty intervals over
    [int], with the arithmetic and lattice structure needed by parameter
    extraction and timing analysis. *)

type t
(** A non-empty closed interval [\[lo, hi\]] with [lo <= hi]. *)

exception Empty_interval of int * int
(** Raised by {!make} when the requested bounds are reversed. *)

val make : int -> int -> t
(** [make lo hi] is the interval [\[lo, hi\]].
    @raise Empty_interval if [lo > hi]. *)

val of_bounds : lo:int -> hi:int -> t
(** Labelled alias of {!make}. *)

val point : int -> t
(** [point v] is the singleton interval [\[v, v\]]. *)

val zero : t
(** The singleton interval at 0. *)

val lo : t -> int
val hi : t -> int

val width : t -> int
(** [width i] is [hi i - lo i]; 0 for a point interval. *)

val is_point : t -> bool
val mem : int -> t -> bool

val subset : t -> t -> bool
(** [subset a b] is true when every value of [a] lies in [b]. *)

val equal : t -> t -> bool
val compare : t -> t -> int
(** Total order: lexicographic on (lo, hi); used for containers only. *)

val add : t -> t -> t
(** Pointwise sum: [\[a+c, b+d\]]. *)

val sub : t -> t -> t
(** Pointwise difference: [\[a-d, b-c\]]. *)

val mul : t -> t -> t
(** Pointwise product; correct for negative bounds. *)

val neg : t -> t
val scale : int -> t -> t

val sum : t list -> t
(** [sum is] is the pointwise sum of all intervals, {!zero} for []. *)

val join : t -> t -> t
(** Least interval containing both arguments (convex hull). *)

val join_list : t list -> t option
(** Hull of a non-empty list; [None] for []. *)

val meet : t -> t -> t option
(** Intersection; [None] when the intervals are disjoint. *)

val overlaps : t -> t -> bool

val clamp : int -> t -> int
(** [clamp v i] is [v] forced into [i]. *)

val midpoint : t -> int
(** Integer midpoint, rounding toward [lo]. *)

val pick : position:float -> t -> int
(** [pick ~position i] selects a value linearly between the bounds;
    [position] is clamped to [0., 1.] ([0.] is [lo], [1.] is [hi]). *)

val pp : Format.formatter -> t -> unit
(** Prints ["v"] for points and ["[lo,hi]"] otherwise. *)

val to_string : t -> string
