type t = { lo : int; hi : int }

exception Empty_interval of int * int

let make lo hi = if lo > hi then raise (Empty_interval (lo, hi)) else { lo; hi }
let of_bounds ~lo ~hi = make lo hi
let point v = { lo = v; hi = v }
let zero = point 0
let lo i = i.lo
let hi i = i.hi
let width i = i.hi - i.lo
let is_point i = i.lo = i.hi
let mem v i = i.lo <= v && v <= i.hi
let subset a b = b.lo <= a.lo && a.hi <= b.hi
let equal a b = a.lo = b.lo && a.hi = b.hi

let compare a b =
  match Int.compare a.lo b.lo with 0 -> Int.compare a.hi b.hi | c -> c

let add a b = { lo = a.lo + b.lo; hi = a.hi + b.hi }
let sub a b = { lo = a.lo - b.hi; hi = a.hi - b.lo }

let mul a b =
  let p1 = a.lo * b.lo and p2 = a.lo * b.hi in
  let p3 = a.hi * b.lo and p4 = a.hi * b.hi in
  { lo = min (min p1 p2) (min p3 p4); hi = max (max p1 p2) (max p3 p4) }

let neg i = { lo = -i.hi; hi = -i.lo }
let scale k i = mul (point k) i
let sum is = List.fold_left add zero is
let join a b = { lo = min a.lo b.lo; hi = max a.hi b.hi }

let join_list = function
  | [] -> None
  | i :: is -> Some (List.fold_left join i is)

let meet a b =
  let lo = max a.lo b.lo and hi = min a.hi b.hi in
  if lo > hi then None else Some { lo; hi }

let overlaps a b = Option.is_some (meet a b)
let clamp v i = if v < i.lo then i.lo else if v > i.hi then i.hi else v
let midpoint i = i.lo + ((i.hi - i.lo) / 2)

let pick ~position i =
  let position = Float.max 0. (Float.min 1. position) in
  let span = float_of_int (i.hi - i.lo) in
  i.lo + int_of_float (Float.round (position *. span))

let pp ppf i =
  if is_point i then Format.fprintf ppf "%d" i.lo
  else Format.fprintf ppf "[%d,%d]" i.lo i.hi

let to_string i = Format.asprintf "%a" pp i
