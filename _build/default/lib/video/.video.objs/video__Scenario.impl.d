lib/video/scenario.ml: Frames List Sim Spi System
