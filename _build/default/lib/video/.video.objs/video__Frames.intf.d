lib/video/frames.mli: Spi
