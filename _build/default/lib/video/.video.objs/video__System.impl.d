lib/video/system.ml: Format Frames Interval List Spi String Variants
