lib/video/checker.ml: Format Frames List Option Sim Spi String System
