lib/video/checker.mli: Format Sim
