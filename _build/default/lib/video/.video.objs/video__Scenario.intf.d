lib/video/scenario.mli: Sim
