lib/video/frames.ml: Option Spi
