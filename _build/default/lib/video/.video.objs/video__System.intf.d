lib/video/system.mli: Spi Variants
