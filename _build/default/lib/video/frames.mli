(** Video-stream tokens and tags.

    Frames are tokens whose payload is the image number; the tags below
    implement the suspend/resume protocol of the paper's Figure 4
    discussion. *)

val frame : int -> Spi.Token.t
(** An untagged frame carrying image number [n]. *)

val fresh_tag : Spi.Tag.t
(** Attached by [PIn] to the first image passed after resuming; its
    arrival at [POut] ends the suspension. *)

val held_tag : Spi.Tag.t
(** Marks an output token [POut] replaced by the last completely
    modified image while the chain was suspended. *)

val suspend_tag : Spi.Tag.t
val resume_tag : Spi.Tag.t

val variant_request_tag : string -> Spi.Tag.t
(** Tag on a controller request naming the target variant, e.g.
    [variant_request_tag "fB"] yields tag ["to:fB"]. *)

val state_tag : string -> Spi.Tag.t
(** Tags carried by self-loop state tokens ([st:...]). *)

val is_frame : Spi.Token.t -> bool
val image_number : Spi.Token.t -> int option
