let video_stream ?(start = 1) ~period ~frames () =
  List.init frames (fun i ->
      {
        Sim.Engine.at = start + (i * period);
        channel = System.c_vin;
        token = Frames.frame (i + 1);
      })

let user_request ~at ~variant =
  {
    Sim.Engine.at;
    channel = System.c_user;
    token =
      Spi.Token.make
        ~tags:(Spi.Tag.Set.singleton (Frames.variant_request_tag variant))
        ();
  }

let user_requests reqs =
  List.map (fun (at, variant) -> user_request ~at ~variant) reqs

let switching_demo ?(frames = 40) ?(period = 5) ~switches () =
  video_stream ~period ~frames () @ user_requests switches

let bursty_stream ?(start = 1) ~burst ~gap ~bursts () =
  List.concat
    (List.init bursts (fun b ->
         List.init burst (fun i ->
             {
               Sim.Engine.at = start + (b * (burst + gap)) + i;
               channel = System.c_vin;
               token = Frames.frame ((b * burst) + i + 1);
             })))

let periodic_requests ~first ~every ~count ~variants =
  match variants with
  | [] -> invalid_arg "Scenario.periodic_requests: no variants"
  | _ :: _ ->
    let n = List.length variants in
    List.init count (fun i ->
        user_request
          ~at:(first + (i * every))
          ~variant:(List.nth variants (i mod n)))
