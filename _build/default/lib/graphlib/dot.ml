module Make (G : Digraph.S) = struct
  let escape s =
    let buf = Buffer.create (String.length s) in
    String.iter
      (fun c ->
        match c with
        | '"' -> Buffer.add_string buf "\\\""
        | '\\' -> Buffer.add_string buf "\\\\"
        | '\n' -> Buffer.add_string buf "\\n"
        | c -> Buffer.add_char buf c)
      s;
    Buffer.contents buf

  let pp ?(graph_name = "g") ?(node_attrs = fun _ -> []) ~node_label ppf g =
    (* ids are keyed on node identity, not labels: distinct nodes may
       share a label *)
    let ids = ref G.Node_map.empty in
    let next = ref 0 in
    let id_of n =
      match G.Node_map.find_opt n !ids with
      | Some i -> i
      | None ->
        let i = !next in
        incr next;
        ids := G.Node_map.add n i !ids;
        i
    in
    Format.fprintf ppf "digraph %s {@." graph_name;
    let print_node n =
      let attrs =
        ("label", node_label n) :: node_attrs n
        |> List.map (fun (k, v) -> Format.sprintf "%s=\"%s\"" k (escape v))
        |> String.concat ", "
      in
      Format.fprintf ppf "  n%d [%s];@." (id_of n) attrs
    in
    List.iter print_node (G.nodes g);
    let print_edge u v = Format.fprintf ppf "  n%d -> n%d;@." (id_of u) (id_of v) in
    List.iter (fun (u, v) -> print_edge u v) (G.edges g);
    Format.fprintf ppf "}@."

  let to_string ?graph_name ?node_attrs ~node_label g =
    Format.asprintf "%a" (fun ppf -> pp ?graph_name ?node_attrs ~node_label ppf) g
end
