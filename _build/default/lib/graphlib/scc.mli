(** Strongly connected components (Tarjan's algorithm). *)

module Make (G : Digraph.S) : sig
  val components : G.t -> G.node list list
  (** The strongly connected components in reverse topological order of
      the condensation (a component precedes the components it can
      reach... from the callees' side).  Every node appears in exactly
      one component. *)

  val condensation : G.t -> G.node list list * (int * int) list
  (** Components plus the edges of the component DAG, as indices into the
      component list. *)
end
