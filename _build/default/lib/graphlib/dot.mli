(** Graphviz (dot) rendering of any {!Digraph.S} instance. *)

module Make (G : Digraph.S) : sig
  val pp :
    ?graph_name:string ->
    ?node_attrs:(G.node -> (string * string) list) ->
    node_label:(G.node -> string) ->
    Format.formatter ->
    G.t ->
    unit
  (** Prints a [digraph] with one statement per node and edge.
      [node_attrs] may add attributes (e.g. [("shape", "box")]). *)

  val to_string :
    ?graph_name:string ->
    ?node_attrs:(G.node -> (string * string) list) ->
    node_label:(G.node -> string) ->
    G.t ->
    string
end
