module Make (G : Digraph.S) = struct
  let dfs_postorder g =
    let visited = ref G.Node_set.empty in
    let order = ref [] in
    let rec visit n =
      if not (G.Node_set.mem n !visited) then begin
        visited := G.Node_set.add n !visited;
        G.Node_set.iter visit (G.succs n g);
        order := n :: !order
      end
    in
    List.iter visit (G.nodes g);
    List.rev !order

  let bfs_from root g =
    let visited = ref (G.Node_set.singleton root) in
    let queue = Queue.create () in
    Queue.add root queue;
    let order = ref [] in
    while not (Queue.is_empty queue) do
      let n = Queue.pop queue in
      order := n :: !order;
      let push v =
        if not (G.Node_set.mem v !visited) then begin
          visited := G.Node_set.add v !visited;
          Queue.add v queue
        end
      in
      G.Node_set.iter push (G.succs n g)
    done;
    List.rev !order

  let reachable root g =
    let rec go seen = function
      | [] -> seen
      | n :: rest ->
        if G.Node_set.mem n seen then go seen rest
        else
          let seen = G.Node_set.add n seen in
          go seen (G.Node_set.elements (G.succs n g) @ rest)
    in
    go G.Node_set.empty [ root ]

  let reachable_from_set roots g =
    G.Node_set.fold
      (fun root acc -> G.Node_set.union acc (reachable root g))
      roots G.Node_set.empty

  (* Kahn's algorithm; on failure we extract a cycle by walking
     predecessors inside the unresolved residue. *)
  let topological_sort g =
    let in_deg = ref G.Node_map.empty in
    List.iter (fun n -> in_deg := G.Node_map.add n (G.in_degree n g) !in_deg)
      (G.nodes g);
    let ready = Queue.create () in
    G.Node_map.iter (fun n d -> if d = 0 then Queue.add n ready) !in_deg;
    let order = ref [] in
    let emitted = ref 0 in
    while not (Queue.is_empty ready) do
      let n = Queue.pop ready in
      order := n :: !order;
      incr emitted;
      let relax v =
        let d = G.Node_map.find v !in_deg - 1 in
        in_deg := G.Node_map.add v d !in_deg;
        if d = 0 then Queue.add v ready
      in
      G.Node_set.iter relax (G.succs n g)
    done;
    if !emitted = G.node_count g then Ok (List.rev !order)
    else begin
      (* Every remaining node has an in-edge from another remaining node,
         so walking predecessors must revisit a node: that loop is a
         cycle. *)
      let residue =
        G.Node_map.fold
          (fun n d acc -> if d > 0 then G.Node_set.add n acc else acc)
          !in_deg G.Node_set.empty
      in
      let same a b = G.Node_set.equal (G.Node_set.singleton a) (G.Node_set.singleton b) in
      (* [path] holds the walk most-recent-first; once [n] repeats, the
         cycle is the prefix of [path] down to the earlier occurrence. *)
      let rec take_cycle n acc = function
        | [] -> List.rev (n :: acc)
        | x :: rest ->
          if same x n then List.rev (n :: acc) else take_cycle n (x :: acc) rest
      in
      let start = G.Node_set.min_elt residue in
      let rec walk path seen n =
        if G.Node_set.mem n seen then take_cycle n [] path
        else
          let inside = G.Node_set.inter (G.preds n g) residue in
          let pred = G.Node_set.min_elt inside in
          walk (n :: path) (G.Node_set.add n seen) pred
      in
      Error (walk [] G.Node_set.empty start)
    end

  let is_acyclic g = Result.is_ok (topological_sort g)

  let longest_path_weights ~weight g =
    match topological_sort g with
    | Error cycle -> Error cycle
    | Ok order ->
      let finish = ref G.Node_map.empty in
      let visit n =
        let best_pred =
          G.Node_set.fold
            (fun p acc -> max acc (G.Node_map.find p !finish))
            (G.preds n g) 0
        in
        finish := G.Node_map.add n (best_pred + weight n) !finish
      in
      List.iter visit order;
      Ok !finish
end
