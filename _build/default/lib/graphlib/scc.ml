module Make (G : Digraph.S) = struct
  type cell = { mutable index : int; mutable lowlink : int; mutable on_stack : bool }

  let components g =
    let cells = ref G.Node_map.empty in
    let counter = ref 0 in
    let stack = ref [] in
    let result = ref [] in
    let rec strongconnect v =
      let cell = { index = !counter; lowlink = !counter; on_stack = true } in
      cells := G.Node_map.add v cell !cells;
      incr counter;
      stack := v :: !stack;
      let visit w =
        match G.Node_map.find_opt w !cells with
        | None ->
          let wc = strongconnect w in
          cell.lowlink <- min cell.lowlink wc.lowlink
        | Some wc -> if wc.on_stack then cell.lowlink <- min cell.lowlink wc.index
      in
      G.Node_set.iter visit (G.succs v g);
      if cell.lowlink = cell.index then begin
        let rec pop acc =
          match !stack with
          | [] -> acc
          | w :: rest ->
            stack := rest;
            let wc = G.Node_map.find w !cells in
            wc.on_stack <- false;
            if wc.index = cell.index then w :: acc else pop (w :: acc)
        in
        result := pop [] :: !result
      end;
      cell
    in
    let start v = if not (G.Node_map.mem v !cells) then ignore (strongconnect v) in
    List.iter start (G.nodes g);
    List.rev !result

  let condensation g =
    let comps = components g in
    let index_of = ref G.Node_map.empty in
    List.iteri
      (fun i comp ->
        List.iter (fun n -> index_of := G.Node_map.add n i !index_of) comp)
      comps;
    let edges =
      G.fold_edges
        (fun u v acc ->
          let iu = G.Node_map.find u !index_of
          and iv = G.Node_map.find v !index_of in
          if iu = iv || List.mem (iu, iv) acc then acc else (iu, iv) :: acc)
        g []
    in
    (comps, List.rev edges)
end
