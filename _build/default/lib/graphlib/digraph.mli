(** Persistent directed graphs, functorial over the node type.

    The SPI model graph is bipartite (processes and channels); rather than
    depending on an external graph package, this small library provides
    the directed-graph core the rest of the repository builds on. *)

module type ORDERED = sig
  type t

  val compare : t -> t -> int
  val pp : Format.formatter -> t -> unit
end

module type S = sig
  type node
  type t

  module Node_set : Set.S with type elt = node
  module Node_map : Map.S with type key = node

  val empty : t
  val is_empty : t -> bool
  val add_node : node -> t -> t

  val add_edge : node -> node -> t -> t
  (** Adds both endpoints if absent.  Parallel edges collapse. *)

  val remove_edge : node -> node -> t -> t

  val remove_node : node -> t -> t
  (** Removes the node and every incident edge. *)

  val mem_node : node -> t -> bool
  val mem_edge : node -> node -> t -> bool
  val nodes : t -> node list
  val edges : t -> (node * node) list
  val succs : node -> t -> Node_set.t
  val preds : node -> t -> Node_set.t
  val out_degree : node -> t -> int
  val in_degree : node -> t -> int
  val node_count : t -> int
  val edge_count : t -> int
  val fold_nodes : (node -> 'a -> 'a) -> t -> 'a -> 'a
  val fold_edges : (node -> node -> 'a -> 'a) -> t -> 'a -> 'a

  val union : t -> t -> t
  (** Node- and edge-wise union. *)

  val transpose : t -> t
  (** Same nodes, every edge reversed. *)

  val of_edges : (node * node) list -> t
end

module Make (Node : ORDERED) :
  S
    with type node = Node.t
     and module Node_set = Set.Make(Node)
     and module Node_map = Map.Make(Node)
