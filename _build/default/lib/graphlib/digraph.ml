module type ORDERED = sig
  type t

  val compare : t -> t -> int
  val pp : Format.formatter -> t -> unit
end

module type S = sig
  type node
  type t

  module Node_set : Set.S with type elt = node
  module Node_map : Map.S with type key = node

  val empty : t
  val is_empty : t -> bool
  val add_node : node -> t -> t
  val add_edge : node -> node -> t -> t
  val remove_edge : node -> node -> t -> t
  val remove_node : node -> t -> t
  val mem_node : node -> t -> bool
  val mem_edge : node -> node -> t -> bool
  val nodes : t -> node list
  val edges : t -> (node * node) list
  val succs : node -> t -> Node_set.t
  val preds : node -> t -> Node_set.t
  val out_degree : node -> t -> int
  val in_degree : node -> t -> int
  val node_count : t -> int
  val edge_count : t -> int
  val fold_nodes : (node -> 'a -> 'a) -> t -> 'a -> 'a
  val fold_edges : (node -> node -> 'a -> 'a) -> t -> 'a -> 'a
  val union : t -> t -> t
  val transpose : t -> t
  val of_edges : (node * node) list -> t
end

module Make (Node : ORDERED) = struct
  type node = Node.t

  module Node_set = Set.Make (Node)
  module Node_map = Map.Make (Node)

  (* Invariant: [succ] and [pred] have exactly the same key set, and
     [v in succ(u)] iff [u in pred(v)]. *)
  type t = { succ : Node_set.t Node_map.t; pred : Node_set.t Node_map.t }

  let empty = { succ = Node_map.empty; pred = Node_map.empty }
  let is_empty g = Node_map.is_empty g.succ

  let add_to_map key value map =
    Node_map.update key
      (function
        | None -> Some (Node_set.singleton value)
        | Some set -> Some (Node_set.add value set))
      map

  let ensure_node n map =
    Node_map.update n
      (function None -> Some Node_set.empty | Some s -> Some s)
      map

  let add_node n g = { succ = ensure_node n g.succ; pred = ensure_node n g.pred }

  let add_edge u v g =
    let g = add_node u (add_node v g) in
    { succ = add_to_map u v g.succ; pred = add_to_map v u g.pred }

  let remove_from_map key value map =
    Node_map.update key
      (function None -> None | Some set -> Some (Node_set.remove value set))
      map

  let remove_edge u v g =
    { succ = remove_from_map u v g.succ; pred = remove_from_map v u g.pred }

  let mem_node n g = Node_map.mem n g.succ

  let find_set n map =
    match Node_map.find_opt n map with None -> Node_set.empty | Some s -> s

  let succs n g = find_set n g.succ
  let preds n g = find_set n g.pred
  let mem_edge u v g = Node_set.mem v (succs u g)

  let remove_node n g =
    let cut_succ = Node_set.fold (fun v m -> remove_from_map v n m) (succs n g) in
    let cut_pred = Node_set.fold (fun u m -> remove_from_map u n m) (preds n g) in
    {
      succ = Node_map.remove n (cut_pred g.succ);
      pred = Node_map.remove n (cut_succ g.pred);
    }

  let nodes g = List.map fst (Node_map.bindings g.succ)

  let fold_edges f g acc =
    Node_map.fold
      (fun u vs acc -> Node_set.fold (fun v acc -> f u v acc) vs acc)
      g.succ acc

  let edges g = List.rev (fold_edges (fun u v acc -> (u, v) :: acc) g [])
  let out_degree n g = Node_set.cardinal (succs n g)
  let in_degree n g = Node_set.cardinal (preds n g)
  let node_count g = Node_map.cardinal g.succ
  let edge_count g = fold_edges (fun _ _ n -> n + 1) g 0
  let fold_nodes f g acc = Node_map.fold (fun n _ acc -> f n acc) g.succ acc

  let union g1 g2 =
    let g = fold_nodes add_node g2 g1 in
    fold_edges (fun u v g -> add_edge u v g) g2 g

  let transpose g = { succ = g.pred; pred = g.succ }
  let of_edges pairs = List.fold_left (fun g (u, v) -> add_edge u v g) empty pairs
end
