(** Graph traversals and orderings over any {!Digraph.S} instance. *)

module Make (G : Digraph.S) : sig
  val dfs_postorder : G.t -> G.node list
  (** Nodes in depth-first postorder, covering every component.  Roots are
      visited in the graph's node order, so the result is deterministic. *)

  val bfs_from : G.node -> G.t -> G.node list
  (** Breadth-first order from a root; the root itself comes first. *)

  val reachable : G.node -> G.t -> G.Node_set.t
  (** All nodes reachable from the root, including the root. *)

  val reachable_from_set : G.Node_set.t -> G.t -> G.Node_set.t

  val topological_sort : G.t -> (G.node list, G.node list) result
  (** [Ok order] lists every node with all edges pointing forward;
      [Error cycle] returns the nodes of some cycle when the graph is
      cyclic. *)

  val is_acyclic : G.t -> bool

  val longest_path_weights :
    weight:(G.node -> int) -> G.t -> (int G.Node_map.t, G.node list) result
  (** For an acyclic graph, the maximum total [weight] of any path ending
      at each node (the node's own weight included).  [Error cycle]
      mirrors {!topological_sort}. *)
end
