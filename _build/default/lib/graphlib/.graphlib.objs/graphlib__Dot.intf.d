lib/graphlib/dot.mli: Digraph Format
