lib/graphlib/traverse.mli: Digraph
