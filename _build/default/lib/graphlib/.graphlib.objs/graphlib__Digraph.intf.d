lib/graphlib/digraph.mli: Format Map Set
