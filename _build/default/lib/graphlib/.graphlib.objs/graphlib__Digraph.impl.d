lib/graphlib/digraph.ml: Format List Map Set
