lib/graphlib/traverse.ml: Digraph List Queue Result
