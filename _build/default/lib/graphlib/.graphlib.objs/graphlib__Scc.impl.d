lib/graphlib/scc.ml: Digraph List
