lib/graphlib/dot.ml: Buffer Digraph Format List String
