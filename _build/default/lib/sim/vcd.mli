(** VCD (Value Change Dump) export of simulation traces.

    Writes an IEEE 1364-style VCD file with one integer variable per
    channel (occupancy over time) and one per process (1 while
    executing, 2 during the reconfiguration prefix of an execution),
    viewable in GTKWave and friends. *)

val of_result : Spi.Model.t -> Engine.result -> string
(** The complete VCD document for a finished simulation. *)

val to_file : string -> Spi.Model.t -> Engine.result -> unit
(** @raise Sys_error on unwritable paths. *)
