(** Trace-based refinement of SPI parameter intervals.

    SPI parameters are intervals because the exact behaviour is unknown
    at specification time; observations narrow them.  Given a finished
    simulation (or, in a real flow, measurements of a prototype), this
    module computes per-mode {e observed} latency and rate hulls and
    produces refined process declarations whose intervals are the meet
    of the declared and the observed hulls — never wider than declared,
    and exact where the simulation exercised the behaviour.

    Reconfiguration prefixes are excluded from latency observations (the
    engine reports them separately), so refinement measures the mode's
    own execution time. *)

type observation = {
  mode : Spi.Ids.Mode_id.t;
  executions : int;
  latency : Interval.t;  (** hull of observed execution times *)
  consumed : (Spi.Ids.Channel_id.t * Interval.t) list;
  produced : (Spi.Ids.Channel_id.t * Interval.t) list;
}

val observe :
  Engine.result -> Spi.Ids.Process_id.t -> observation list
(** One observation per mode the process actually executed. *)

val refine_process : Engine.result -> Spi.Process.t -> Spi.Process.t
(** Narrows each executed mode's latency to
    [meet declared observed] (keeping the declared interval when they
    are disjoint, which indicates a modeling error worth flagging —
    see {!suspicious}).  Rates and unexecuted modes are left as
    declared. *)

val refine_model : Engine.result -> Spi.Model.t -> Spi.Model.t
(** {!refine_process} over every process. *)

val suspicious :
  Engine.result -> Spi.Model.t ->
  (Spi.Ids.Process_id.t * Spi.Ids.Mode_id.t * Interval.t * Interval.t) list
(** Modes whose observed latency hull lies (partly) outside the declared
    interval: [(process, mode, declared, observed)].  Under the bundled
    engine this list is empty by construction — it exists for traces
    imported from real measurements. *)
