module I = Spi.Ids

type policy = Best_case | Worst_case | Typical

type stimulus = { at : int; channel : I.Channel_id.t; token : Spi.Token.t }
type limits = { max_time : int; max_firings : int }

let default_limits = { max_time = 100_000; max_firings = 100_000 }

type outcome = Quiescent | Time_limit_reached | Firing_limit_reached

type result = {
  trace : Trace.t;
  final_state : Spi.Semantics.state;
  end_time : int;
  outcome : outcome;
  firings : int;
  reconfiguration_time : int;
}

let pick policy interval =
  match policy with
  | Best_case -> Interval.lo interval
  | Worst_case -> Interval.hi interval
  | Typical -> Interval.midpoint interval

(* Events carried by the heap. *)
type event =
  | Inject of I.Channel_id.t * Spi.Token.t
  | Complete of completion

and completion = {
  proc : I.Process_id.t;
  mode : Spi.Mode.t;
  started_at : int;
  payload : int option;
  consumed : (I.Channel_id.t * Spi.Token.t list) list;
}

type process_state = {
  mutable busy : bool;
  mutable budget : int option;  (** [None] = unlimited *)
  mutable confcur : Variants.Configuration.confcur;
  config : Variants.Configuration.t option;
}

let run ?(policy = Typical) ?(limits = default_limits)
    ?(overflow = Spi.Semantics.Reject) ?(configurations = []) ?(stimuli = [])
    ?(firing_budget = []) model =
  let config_of pid =
    List.find_opt
      (fun c -> I.Process_id.equal (Variants.Configuration.process c) pid)
      configurations
  in
  List.iter
    (fun conf ->
      let pid = Variants.Configuration.process conf in
      match Spi.Model.find_process pid model with
      | None ->
        invalid_arg
          (Format.asprintf "Engine.run: configuration for unknown process %a"
             I.Process_id.pp pid)
      | Some proc -> (
        match Variants.Configuration.validate_against proc conf with
        | [] -> ()
        | errors ->
          invalid_arg
            (Format.asprintf "@[<v>Engine.run: bad configuration:@,%a@]"
               (Format.pp_print_list ~pp_sep:Format.pp_print_cut
                  Variants.Configuration.pp_error)
               errors)))
    configurations;
  let budget_of pid p =
    match
      List.find_opt (fun (q, _) -> I.Process_id.equal q pid) firing_budget
    with
    | Some (_, n) -> Some n
    | None ->
      if I.Channel_id.Set.is_empty (Spi.Process.inputs p) then Some 0 else None
  in
  let proc_states = Hashtbl.create 16 in
  List.iter
    (fun p ->
      let pid = Spi.Process.id p in
      let config = config_of pid in
      Hashtbl.replace proc_states (I.Process_id.to_string pid)
        {
          busy = false;
          budget = budget_of pid p;
          confcur =
            (match config with
            | None -> None
            | Some c -> Variants.Configuration.start c);
          config;
        })
    (Spi.Model.processes model);
  let pstate pid = Hashtbl.find proc_states (I.Process_id.to_string pid) in
  let heap = Heap.create () in
  List.iter
    (fun s -> Heap.push ~time:s.at (Inject (s.channel, s.token)) heap)
    stimuli;
  let state = ref (Spi.Semantics.initial model) in
  let trace = ref [] in
  let emit e = trace := e :: !trace in
  let firings = ref 0 in
  let reconf_time = ref 0 in
  let choose_rate = pick policy in
  let processes = Spi.Model.processes model in
  (* One scheduling sweep: start every idle process whose activation is
     enabled.  Consumption can only disable other processes, never
     enable them, so a single pass per event batch suffices; newly
     produced tokens arrive through Complete events which trigger the
     next sweep. *)
  let try_start now =
    List.iter
      (fun p ->
        let pid = Spi.Process.id p in
        let ps = pstate pid in
        let may_fire = (not ps.busy) && ps.budget <> Some 0 in
        if may_fire then
          match Spi.Semantics.enabled_rule model !state pid with
          | None -> ()
          | Some rule -> (
            match Spi.Process.find_mode (Spi.Activation.target_mode rule) p with
            | None -> ()
            | Some mode ->
              let reconfiguration =
                match ps.config with
                | None -> None
                | Some conf -> (
                  match
                    Variants.Configuration.on_activation conf ps.confcur
                      (Spi.Mode.id mode)
                  with
                  | Variants.Configuration.Stay, confcur ->
                    ps.confcur <- confcur;
                    None
                  | ( Variants.Configuration.Reconfigure { target; latency },
                      confcur ) ->
                    ps.confcur <- confcur;
                    Some (target, latency))
              in
              let state', consumed =
                Spi.Semantics.consume ~choose_rate mode !state
              in
              state := state';
              let payload = Spi.Semantics.inherited_payload mode consumed in
              let reconf_latency =
                match reconfiguration with
                | None -> 0
                | Some (_, latency) -> latency
              in
              reconf_time := !reconf_time + reconf_latency;
              let latency = reconf_latency + pick policy (Spi.Mode.latency mode) in
              ps.busy <- true;
              ps.budget <- Option.map (fun n -> n - 1) ps.budget;
              incr firings;
              emit
                (Trace.Started
                   { time = now; process = pid; mode = Spi.Mode.id mode; reconfiguration });
              Heap.push ~time:(now + latency)
                (Complete { proc = pid; mode; started_at = now; payload; consumed })
                heap))
      processes
  in
  let now = ref 0 in
  let outcome = ref Quiescent in
  try_start 0;
  let rec loop () =
    if !firings > limits.max_firings then outcome := Firing_limit_reached
    else
      match Heap.pop_min heap with
      | None ->
        emit (Trace.Quiescent { time = !now });
        outcome := Quiescent
      | Some (time, _) when time > limits.max_time ->
        outcome := Time_limit_reached
      | Some (time, event) ->
        now := time;
        (match event with
        | Inject (cid, tok) ->
          state := Spi.Semantics.inject ~overflow model cid tok !state;
          emit (Trace.Injected { time; channel = cid; token = tok })
        | Complete { proc; mode; started_at; payload; consumed } ->
          let state', produced =
            Spi.Semantics.produce ~overflow ~choose_rate model mode
              ~inherited_payload:payload !state
          in
          state := state';
          let ps = pstate proc in
          ps.busy <- false;
          let firing =
            { Spi.Semantics.process = proc; mode = Spi.Mode.id mode; consumed; produced }
          in
          emit (Trace.Completed { time; started_at; process = proc; firing }));
        try_start time;
        loop ()
  in
  loop ();
  {
    trace = List.rev !trace;
    final_state = !state;
    end_time = !now;
    outcome = !outcome;
    firings = !firings;
    reconfiguration_time = !reconf_time;
  }

let pp_policy ppf = function
  | Best_case -> Format.pp_print_string ppf "best-case"
  | Worst_case -> Format.pp_print_string ppf "worst-case"
  | Typical -> Format.pp_print_string ppf "typical"

let pp_outcome ppf = function
  | Quiescent -> Format.pp_print_string ppf "quiescent"
  | Time_limit_reached -> Format.pp_print_string ppf "time limit reached"
  | Firing_limit_reached -> Format.pp_print_string ppf "firing limit reached"

let pp_summary ppf r =
  Format.fprintf ppf
    "end=%d firings=%d reconf_time=%d outcome=%a" r.end_time r.firings
    r.reconfiguration_time pp_outcome r.outcome
