module I = Spi.Ids

type suggestion = { chan : I.Channel_id.t; observed : int; capacity : int }

let suggest ?(margin = 0) ?policy ?configurations ~stimuli model =
  if margin < 0 then invalid_arg "Sizing.suggest: negative margin";
  let high = Hashtbl.create 16 in
  List.iter
    (fun stims ->
      let result = Engine.run ?policy ?configurations ~stimuli:stims model in
      let stats = Stats.of_result model result in
      List.iter
        (fun (c : Stats.channel_stats) ->
          let key = I.Channel_id.to_string c.Stats.chan in
          let current = Option.value ~default:0 (Hashtbl.find_opt high key) in
          Hashtbl.replace high key (max current c.Stats.high_water))
        stats.Stats.channels)
    stimuli;
  List.filter_map
    (fun chan ->
      match Spi.Chan.kind chan with
      | Spi.Chan.Register -> None
      | Spi.Chan.Queue ->
        let cid = Spi.Chan.id chan in
        let observed =
          Option.value ~default:0
            (Hashtbl.find_opt high (I.Channel_id.to_string cid))
        in
        Some { chan = cid; observed; capacity = max 1 (observed + margin) })
    (Spi.Model.channels model)

let apply suggestions model =
  let capacity_of cid =
    List.find_map
      (fun s -> if I.Channel_id.equal s.chan cid then Some s.capacity else None)
      suggestions
  in
  let channels =
    List.map
      (fun chan ->
        match Spi.Chan.kind chan, capacity_of (Spi.Chan.id chan) with
        | Spi.Chan.Queue, Some capacity ->
          Spi.Chan.queue ~initial:(Spi.Chan.initial chan) ~capacity
            (Spi.Chan.id chan)
        | (Spi.Chan.Queue | Spi.Chan.Register), _ -> chan)
      (Spi.Model.channels model)
  in
  Spi.Model.build_exn ~processes:(Spi.Model.processes model) ~channels

let verify ?policy ?configurations ~stimuli model =
  try
    List.iter
      (fun stims ->
        ignore
          (Engine.run ?policy ?configurations ~overflow:Spi.Semantics.Reject
             ~stimuli:stims model))
      stimuli;
    Ok ()
  with Spi.Semantics.Channel_overflow cid -> Error cid

let pp_suggestion ppf s =
  Format.fprintf ppf "%a: observed %d -> capacity %d" I.Channel_id.pp s.chan
    s.observed s.capacity
