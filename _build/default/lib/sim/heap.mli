(** A minimal binary min-heap keyed by [(time, sequence)].

    The simulator orders events by time, breaking ties by insertion
    sequence so simultaneous events process deterministically in
    schedule order. *)

type 'a t

val create : unit -> 'a t
val is_empty : 'a t -> bool
val size : 'a t -> int

val push : time:int -> 'a -> 'a t -> unit
(** Inserts with the next sequence number. *)

val pop_min : 'a t -> (int * 'a) option
(** Removes and returns the earliest event ([None] when empty). *)

val peek_time : 'a t -> int option
