(** CSV export of traces and statistics (for spreadsheets and plotting).

    Fields containing commas, quotes or newlines are quoted per RFC 4180;
    our identifiers rarely need it, but tags can. *)

val trace_to_string : Engine.result -> string
(** Columns: [time,kind,process_or_channel,mode,detail].  One row per
    trace entry; [detail] carries token counts or reconfiguration info. *)

val process_stats_to_string : Spi.Model.t -> Engine.result -> string
(** Columns:
    [process,firings,busy_time,utilization,reconfigurations,
     reconfiguration_time]. *)

val channel_stats_to_string : Spi.Model.t -> Engine.result -> string
(** Columns: [channel,tokens_through,high_water,final_occupancy]. *)

val trace_to_file : string -> Engine.result -> unit
