(** JSON export of simulation results.

    A small hand-rolled emitter (no external dependency) producing a
    machine-readable record of a run: summary, trace events, and the
    derived statistics.  Intended for downstream tooling (plotting,
    dashboards, diffing runs). *)

val result_to_string : Spi.Model.t -> Engine.result -> string
(** The complete run as one JSON document:
    [{"summary": ..., "trace": [...], "processes": [...],
      "channels": [...]}]. *)

val to_file : string -> Spi.Model.t -> Engine.result -> unit
