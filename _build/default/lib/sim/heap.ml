type 'a entry = { time : int; seq : int; value : 'a }

type 'a t = {
  mutable data : 'a entry array;
  mutable size : int;
  mutable next_seq : int;
}

let create () = { data = [||]; size = 0; next_seq = 0 }
let is_empty h = h.size = 0
let size h = h.size

let before a b = a.time < b.time || (a.time = b.time && a.seq < b.seq)

let grow h entry =
  let cap = Array.length h.data in
  if h.size = cap then begin
    let ncap = max 16 (2 * cap) in
    let data = Array.make ncap entry in
    Array.blit h.data 0 data 0 h.size;
    h.data <- data
  end

let push ~time value h =
  let entry = { time; seq = h.next_seq; value } in
  h.next_seq <- h.next_seq + 1;
  grow h entry;
  h.data.(h.size) <- entry;
  h.size <- h.size + 1;
  (* sift up *)
  let rec up i =
    if i > 0 then begin
      let parent = (i - 1) / 2 in
      if before h.data.(i) h.data.(parent) then begin
        let tmp = h.data.(i) in
        h.data.(i) <- h.data.(parent);
        h.data.(parent) <- tmp;
        up parent
      end
    end
  in
  up (h.size - 1)

let pop_min h =
  if h.size = 0 then None
  else begin
    let top = h.data.(0) in
    h.size <- h.size - 1;
    if h.size > 0 then begin
      h.data.(0) <- h.data.(h.size);
      let rec down i =
        let left = (2 * i) + 1 and right = (2 * i) + 2 in
        let smallest =
          if left < h.size && before h.data.(left) h.data.(i) then left else i
        in
        let smallest =
          if right < h.size && before h.data.(right) h.data.(smallest) then
            right
          else smallest
        in
        if smallest <> i then begin
          let tmp = h.data.(i) in
          h.data.(i) <- h.data.(smallest);
          h.data.(smallest) <- tmp;
          down smallest
        end
      in
      down 0
    end;
    Some (top.time, top.value)
  end

let peek_time h = if h.size = 0 then None else Some h.data.(0).time
