(** Empirical buffer sizing.

    Static queue bounds ({!Spi.Analysis.queue_bound}) are safe but loose
    and unavailable for cyclic graphs.  This module sizes buffers from
    simulation: run representative stimuli, take each queue's observed
    high-water mark (plus a safety margin), and rebuild the model with
    those capacities.  {!verify} re-runs the stimuli against the
    resized model under the rejecting overflow policy, demonstrating
    that the chosen sizes suffice for that workload. *)

type suggestion = {
  chan : Spi.Ids.Channel_id.t;
  observed : int;  (** high-water mark over the runs *)
  capacity : int;  (** observed + margin, at least 1 *)
}

val suggest :
  ?margin:int ->
  ?policy:Engine.policy ->
  ?configurations:Variants.Configuration.t list ->
  stimuli:Engine.stimulus list list ->
  Spi.Model.t ->
  suggestion list
(** One simulation per stimulus list (different workloads); the
    suggestion takes the maximum high-water over all runs.  [margin]
    defaults to 0.  Registers are skipped (their capacity is fixed). *)

val apply : suggestion list -> Spi.Model.t -> Spi.Model.t
(** The same model with every suggested queue bounded to its suggested
    capacity (initial tokens preserved). *)

val verify :
  ?policy:Engine.policy ->
  ?configurations:Variants.Configuration.t list ->
  stimuli:Engine.stimulus list list ->
  Spi.Model.t ->
  (unit, Spi.Ids.Channel_id.t) result
(** Runs every stimulus list against the model with [Reject] overflow;
    [Error c] names the first overflowing channel. *)

val pp_suggestion : Format.formatter -> suggestion -> unit
