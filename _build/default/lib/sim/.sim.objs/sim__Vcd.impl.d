lib/sim/vcd.ml: Buffer Char Engine Format Hashtbl Int List Option Spi String Trace
