lib/sim/csv.mli: Engine Spi
