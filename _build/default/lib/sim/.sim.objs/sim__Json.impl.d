lib/sim/json.ml: Buffer Char Engine Format List Spi Stats String Trace
