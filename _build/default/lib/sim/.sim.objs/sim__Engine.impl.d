lib/sim/engine.ml: Format Hashtbl Heap Interval List Option Spi Trace Variants
