lib/sim/json.mli: Engine Spi
