lib/sim/trace.ml: Format List Spi
