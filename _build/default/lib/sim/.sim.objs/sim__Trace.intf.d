lib/sim/trace.mli: Format Spi
