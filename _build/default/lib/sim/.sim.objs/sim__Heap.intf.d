lib/sim/heap.mli:
