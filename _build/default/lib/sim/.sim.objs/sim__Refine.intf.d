lib/sim/refine.mli: Engine Interval Spi
