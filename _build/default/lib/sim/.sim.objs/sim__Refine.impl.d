lib/sim/refine.ml: Engine Hashtbl Interval List Option Spi Trace
