lib/sim/stats.mli: Engine Format Spi
