lib/sim/csv.ml: Buffer Engine Format List Spi Stats String Trace
