lib/sim/sizing.mli: Engine Format Spi Variants
