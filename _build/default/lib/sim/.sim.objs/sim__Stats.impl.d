lib/sim/stats.ml: Engine Format Hashtbl Int List Option Spi Trace
