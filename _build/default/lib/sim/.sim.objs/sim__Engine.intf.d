lib/sim/engine.mli: Format Spi Trace Variants
