lib/sim/vcd.mli: Engine Spi
