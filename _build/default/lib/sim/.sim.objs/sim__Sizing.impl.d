lib/sim/sizing.ml: Engine Format Hashtbl List Option Spi Stats
