module I = Spi.Ids

type process_stats = {
  proc : I.Process_id.t;
  firings : int;
  busy_time : int;
  utilization : float;
  reconfigurations : int;
  reconfiguration_time : int;
}

type channel_stats = {
  chan : I.Channel_id.t;
  tokens_through : int;
  high_water : int;
  final_occupancy : int;
}

type t = {
  processes : process_stats list;
  channels : channel_stats list;
  makespan : int;
  total_firings : int;
}

let of_result model (result : Engine.result) =
  let trace = result.Engine.trace in
  let makespan = result.Engine.end_time in
  (* per-process accumulation *)
  let busy = Hashtbl.create 16 and fires = Hashtbl.create 16 in
  let reconfs = Hashtbl.create 16 and reconf_time = Hashtbl.create 16 in
  let bump table pid v =
    let key = I.Process_id.to_string pid in
    Hashtbl.replace table key (v + Option.value ~default:0 (Hashtbl.find_opt table key))
  in
  (* per-channel occupancy events: (time, plus_first, delta) *)
  let events = Hashtbl.create 16 in
  let push_event cid time delta =
    let key = I.Channel_id.to_string cid in
    Hashtbl.replace events key
      ((time, delta) :: Option.value ~default:[] (Hashtbl.find_opt events key))
  in
  List.iter
    (fun entry ->
      match entry with
      | Trace.Injected { time; channel; _ } -> push_event channel time 1
      | Trace.Started { process; reconfiguration; _ } -> (
        match reconfiguration with
        | None -> ()
        | Some (_, latency) ->
          bump reconfs process 1;
          bump reconf_time process latency)
      | Trace.Completed { time; started_at; process; firing } ->
        bump fires process 1;
        bump busy process (time - started_at);
        List.iter
          (fun (cid, toks) -> push_event cid started_at (-List.length toks))
          firing.Spi.Semantics.consumed;
        List.iter
          (fun (cid, toks) -> push_event cid time (List.length toks))
          firing.Spi.Semantics.produced
      | Trace.Quiescent _ -> ())
    trace;
  let find table pid =
    Option.value ~default:0 (Hashtbl.find_opt table (I.Process_id.to_string pid))
  in
  let processes =
    List.map
      (fun proc ->
        let pid = Spi.Process.id proc in
        let busy_time = find busy pid in
        {
          proc = pid;
          firings = find fires pid;
          busy_time;
          utilization =
            (if makespan = 0 then 0.
             else float_of_int busy_time /. float_of_int makespan);
          reconfigurations = find reconfs pid;
          reconfiguration_time = find reconf_time pid;
        })
      (Spi.Model.processes model)
  in
  let channels =
    List.map
      (fun chan ->
        let cid = Spi.Chan.id chan in
        let raw =
          Option.value ~default:[]
            (Hashtbl.find_opt events (I.Channel_id.to_string cid))
        in
        (* chronological; at equal times apply arrivals before removals
           so the high-water mark is conservative *)
        let ordered =
          List.sort
            (fun (t1, d1) (t2, d2) ->
              match Int.compare t1 t2 with
              | 0 -> Int.compare d2 d1
              | c -> c)
            raw
        in
        let initial = List.length (Spi.Chan.initial chan) in
        let through =
          List.fold_left (fun acc (_, d) -> if d > 0 then acc + d else acc) 0 raw
        in
        let high_water =
          match Spi.Chan.kind chan with
          | Spi.Chan.Register ->
            (* destructive write, sampling read: occupancy never
               exceeds one *)
            if initial > 0 || through > 0 then 1 else 0
          | Spi.Chan.Queue ->
            let _, high =
              List.fold_left
                (fun (cur, high) (_, d) ->
                  let cur = cur + d in
                  (cur, max high cur))
                (initial, initial) ordered
            in
            high
        in
        {
          chan = cid;
          tokens_through = through;
          high_water;
          final_occupancy =
            Spi.Semantics.tokens_available result.Engine.final_state cid;
        })
      (Spi.Model.channels model)
  in
  { processes; channels; makespan; total_firings = result.Engine.firings }

let process pid t =
  List.find_opt (fun p -> I.Process_id.equal p.proc pid) t.processes

let channel cid t =
  List.find_opt (fun c -> I.Channel_id.equal c.chan cid) t.channels

let pp ppf t =
  Format.fprintf ppf "@[<v>makespan %d, %d firings@," t.makespan t.total_firings;
  List.iter
    (fun p ->
      Format.fprintf ppf "%a: %d firings, busy %d (%.0f%%), %d reconfs (+%d)@,"
        I.Process_id.pp p.proc p.firings p.busy_time (100. *. p.utilization)
        p.reconfigurations p.reconfiguration_time)
    t.processes;
  List.iter
    (fun c ->
      Format.fprintf ppf "%a: %d through, high-water %d, final %d@,"
        I.Channel_id.pp c.chan c.tokens_through c.high_water c.final_occupancy)
    t.channels;
  Format.fprintf ppf "@]"
