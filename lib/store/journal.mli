(** Crash-safe append-only journal.

    One record per line:

    {v <checksum:16 hex> <length:decimal> <payload>\n v}

    where [payload] is a minified [Obs.Json] value (JSON escapes every
    raw newline, so a record is always exactly one line), [length] is
    the payload's byte length and [checksum] is the 64-bit
    {!Variants.Canonical.hash_string} of the payload.  Appends are a
    single [write] followed (by default) by an [fsync], so after a crash
    the file is a sequence of intact records plus at most one torn tail
    — which {!replay} detects (missing newline, length mismatch, or
    checksum mismatch), reports as a structured {!Variants.Diagnostic},
    and excludes.  Recovery truncates the tail so subsequent appends
    start on a record boundary.

    The journal stores whole values, never diffs, and replay folds
    last-wins — compaction is a rewrite of the live index, not a
    recovery-time concern. *)

type replay = {
  records : Obs.Json.t list;  (** intact records, file order *)
  valid_bytes : int;  (** byte offset of the end of the last intact record *)
  tail : Variants.Diagnostic.t option;
      (** [Some d] when trailing bytes after [valid_bytes] were not an
          intact record: a torn write, a corrupted record, or garbage.
          Everything before [valid_bytes] is unaffected. *)
}

val replay : string -> replay
(** Reads the journal at [path].  A missing file is an empty journal —
    not an error, the store starts cold. *)

type writer

val open_writer : ?fsync:bool -> string -> writer
(** Opens [path] for appending, creating it if missing and truncating
    any torn tail left by a crash (a {!replay} runs internally to find
    the last record boundary).  [fsync] (default [true]) makes every
    {!append} durable before it returns; turning it off is for tests
    and bulk rebuilds only.
    @raise Unix.Unix_error as [open]/[ftruncate] do. *)

val append : writer -> Obs.Json.t -> unit
(** Serializes, frames, writes, and (by default) fsyncs one record.
    @raise Unix.Unix_error when the write fails; the journal is no
    worse than before the call (a partial write is next startup's torn
    tail). *)

val close : writer -> unit

val path : writer -> string
