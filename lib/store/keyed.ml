let m_puts = Obs.Registry.counter "store.puts"
let m_hits = Obs.Registry.counter "store.hits"
let m_misses = Obs.Registry.counter "store.misses"
let m_records = Obs.Registry.gauge "store.live_records"

type t = {
  index : (string, Obs.Json.t) Hashtbl.t;
  writer : Journal.writer;
}

let record ~key value : Obs.Json.t =
  Obj [ ("k", Obs.Json.String key); ("v", value) ]

let unrecord json =
  match
    (Obs.Json.member "k" json, Obs.Json.member "v" json)
  with
  | Some (Obs.Json.String k), Some v -> Some (k, v)
  | _ -> None

let open_store ?fsync path =
  let { Journal.records; tail; _ } = Journal.replay path in
  let index = Hashtbl.create 64 in
  List.iter
    (fun r ->
      match unrecord r with
      | Some (k, v) -> Hashtbl.replace index k v
      | None -> ())
    records;
  Obs.Metric.set m_records (Hashtbl.length index);
  ({ index; writer = Journal.open_writer ?fsync path }, tail)

let find t key =
  match Hashtbl.find_opt t.index key with
  | Some v ->
    Obs.Metric.incr m_hits;
    Some v
  | None ->
    Obs.Metric.incr m_misses;
    None

let mem t key = Hashtbl.mem t.index key

let put t ~key value =
  Journal.append t.writer (record ~key value);
  Hashtbl.replace t.index key value;
  Obs.Metric.incr m_puts;
  Obs.Metric.set m_records (Hashtbl.length t.index)

let size t = Hashtbl.length t.index
let path t = Journal.path t.writer
let close t = Journal.close t.writer
