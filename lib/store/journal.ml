let m_appends = Obs.Registry.counter "store.journal_appends"
let m_replays = Obs.Registry.counter "store.journal_replays"
let m_replayed = Obs.Registry.counter "store.journal_replayed_records"
let m_torn = Obs.Registry.counter "store.journal_torn_tails"

type replay = {
  records : Obs.Json.t list;
  valid_bytes : int;
  tail : Variants.Diagnostic.t option;
}

let checksum_width = 16

let frame payload =
  Printf.sprintf "%s %d %s\n"
    (Variants.Canonical.hash_string payload)
    (String.length payload) payload

let read_file path =
  match open_in_bin path with
  | exception Sys_error _ -> None
  | ic ->
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> Some (really_input_string ic (in_channel_length ic)))

(* Parse one framed line (without its newline).  Every failure mode
   reports what broke so a recovery log can distinguish a routine torn
   write from silent corruption. *)
let parse_line line =
  let fail fmt = Printf.ksprintf (fun m -> Error m) fmt in
  match String.index_opt line ' ' with
  | None -> fail "no checksum field"
  | Some sp1 when sp1 <> checksum_width -> fail "malformed checksum field"
  | Some sp1 -> (
    match String.index_from_opt line (sp1 + 1) ' ' with
    | None -> fail "no length field"
    | Some sp2 -> (
      let checksum = String.sub line 0 sp1 in
      let payload = String.sub line (sp2 + 1) (String.length line - sp2 - 1) in
      match int_of_string_opt (String.sub line (sp1 + 1) (sp2 - sp1 - 1)) with
      | None -> fail "malformed length field"
      | Some len when len <> String.length payload ->
        fail "length mismatch: header says %d, payload is %d bytes" len
          (String.length payload)
      | Some _ ->
        if not (String.equal (Variants.Canonical.hash_string payload) checksum)
        then fail "checksum mismatch"
        else (
          match Obs.Json.parse payload with
          | Ok json -> Ok json
          | Error e -> fail "checksummed payload is not JSON: %s" e)))

let replay path =
  Obs.Metric.incr m_replays;
  match read_file path with
  | None -> { records = []; valid_bytes = 0; tail = None }
  | Some content ->
    let len = String.length content in
    let rec scan o acc =
      if o >= len then { records = List.rev acc; valid_bytes = o; tail = None }
      else
        let torn why =
          Obs.Metric.incr m_torn;
          {
            records = List.rev acc;
            valid_bytes = o;
            tail =
              Some
                (Variants.Diagnostic.msgf ~subject:path
                   "journal tail at byte %d dropped (%d bytes): %s" o (len - o)
                   why);
          }
        in
        match String.index_from_opt content o '\n' with
        | None -> torn "no record terminator (torn write)"
        | Some nl -> (
          match parse_line (String.sub content o (nl - o)) with
          | Ok json ->
            Obs.Metric.incr m_replayed;
            scan (nl + 1) (json :: acc)
          | Error why -> torn why)
    in
    scan 0 []

type writer = { fd : Unix.file_descr; fsync : bool; w_path : string }

let path w = w.w_path

let open_writer ?(fsync = true) path =
  let { valid_bytes; _ } = replay path in
  let fd = Unix.openfile path [ Unix.O_WRONLY; Unix.O_CREAT ] 0o644 in
  (* drop the torn tail so the next record starts on a boundary *)
  Unix.ftruncate fd valid_bytes;
  ignore (Unix.lseek fd 0 Unix.SEEK_END);
  { fd; fsync; w_path = path }

let write_all fd s =
  let b = Bytes.unsafe_of_string s in
  let n = Bytes.length b in
  let rec go o =
    if o < n then go (o + Unix.write fd b o (n - o))
  in
  go 0

let append w json =
  write_all w.fd (frame (Obs.Json.to_string ~minify:true json));
  if w.fsync then Unix.fsync w.fd;
  Obs.Metric.incr m_appends

let close w = Unix.close w.fd
