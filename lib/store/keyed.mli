(** A durable last-wins key/value index over {!Journal}.

    Keys are canonical-hash strings (see {!Variants.Canonical}), values
    arbitrary JSON.  Every {!put} appends one journal record and updates
    the in-memory index; {!open_store} replays the journal and folds the
    records last-wins, so the index survives crashes with at most the
    torn tail lost.  Journal records that are intact but not key/value
    shaped (a future schema, say) are skipped, not fatal. *)

type t

val open_store : ?fsync:bool -> string -> t * Variants.Diagnostic.t option
(** Replays [path] (missing file = empty store) and opens it for
    appending.  The diagnostic, when present, describes the dropped torn
    tail — informational: the store is open and consistent either way. *)

val find : t -> string -> Obs.Json.t option
val put : t -> key:string -> Obs.Json.t -> unit
val mem : t -> string -> bool
val size : t -> int
(** Distinct live keys (not journal records). *)

val path : t -> string
val close : t -> unit
