(** Per-domain timeline capture for the parallel explorer.

    The search loops are allocation-free and must stay that way, so
    tracing writes fixed-layout integer records into a bounded
    per-domain buffer: recording is a buffer-full check plus five array
    stores, with no atomics and no allocation (each buffer is written
    only by its own domain, via [Domain.DLS]).  When a buffer fills, the
    overflow is counted, not silently lost.

    Disabled cost is one atomic load per record site — and the sites are
    per {e task} / per {e incumbent improvement}, never per search node,
    so the bench trajectory gate is unaffected when tracing is off.

    Lifecycle: {!enable} before the pool runs (it stamps the time base
    and clears previous registrations), search, {!append_timeline} to
    drain into an {!Obs.Trace_event} builder, {!disable}. *)

val enable : ?capacity:int -> unit -> unit
(** Arm recording.  [capacity] (default 4096) is the per-domain record
    budget; records past it are dropped and counted.  Clears previously
    registered buffers, so call it before spawning workers.
    @raise Invalid_argument when [capacity < 1]. *)

val disable : unit -> unit

val is_enabled : unit -> bool

val register_domain : unit -> unit
(** Ensure the calling domain has a registered (possibly empty) buffer,
    so a worker that claims no task still gets a lane.  Call once at
    worker entry; no-op when disabled. *)

val record_task :
  wait_from_ns:int -> claimed_ns:int -> end_ns:int -> task:int -> unit
(** One pool task on the calling domain's lane: it idled from
    [wait_from_ns] (pool start, or the end of this domain's previous
    task), claimed the task at [claimed_ns], finished at [end_ns].
    Timestamps are {!Obs.Clock.now_ns} values.  No-op when disabled. *)

val record_improvement : cost:int -> unit
(** The calling domain improved the incumbent to [cost] (timestamped
    now).  No-op when disabled. *)

val record_steal : victim:int -> worker:int -> task:int -> unit
(** The calling domain — worker slot [worker] — stole task [task] from
    worker [victim]'s deque (timestamped now).  The instant lands on the
    {e stealing} domain's lane, since it is recorded into the caller's
    buffer.  No-op when disabled. *)

val dropped : unit -> int
(** Records dropped across all registered buffers since {!enable}. *)

val emit_timeline : ?pid:int -> ?name:string -> Obs.Trace_event.sink -> unit
(** Drain every registered buffer into [sink] under process group
    [pid] (default 1), labelled [name] (default ["explorer"]): one lane
    per domain with queue-wait and task spans, incumbent-improvement
    instants carrying the cost (mirrored onto an ["incumbent cost"]
    counter track, so viewers draw the descent as a step function), and
    steal instants (on the stealing domain's lane, with the victim
    worker and task id as args),
    timestamps relative to the {!enable} call in microseconds.  Also
    bumps the [par.trace_dropped] counter with the drop total.  Call
    after the pool has joined. *)

val append_timeline : ?pid:int -> ?name:string -> Obs.Trace_event.t -> unit
(** {!emit_timeline} into a buffered collection. *)

val reset : unit -> unit
(** Zero every registered buffer (registrations stay valid). *)
