(* Bounded Chase-Lev deque.  [top] only ever increases (thieves CAS it
   forward; the owner CASes it forward when taking the last element);
   [bottom] is written only by the owner.  An index's slot is
   [index land mask].  A slot at absolute index [i] is only overwritten
   by a push at [i + capacity], which the bound ([bottom - top <=
   capacity]) allows only once [top > i] — and [top] is monotonic, so
   any thief still holding the stale [top = i] fails its CAS and
   discards what it read. *)

type 'a t = {
  slots : 'a option array;
  mask : int;
  top : int Atomic.t;
  bottom : int Atomic.t;
}

let create ~capacity =
  if capacity < 1 then invalid_arg "Ws_deque.create: capacity < 1";
  let rec pow2 c = if c >= capacity then c else pow2 (c * 2) in
  let cap = pow2 2 in
  {
    slots = Array.make cap None;
    mask = cap - 1;
    top = Atomic.make 0;
    bottom = Atomic.make 0;
  }

let capacity d = d.mask + 1

let size d =
  let b = Atomic.get d.bottom and t = Atomic.get d.top in
  max 0 (b - t)

let push d v =
  let b = Atomic.get d.bottom in
  let t = Atomic.get d.top in
  if b - t > d.mask then false
  else begin
    d.slots.(b land d.mask) <- Some v;
    (* the atomic store publishes the slot write to thieves *)
    Atomic.set d.bottom (b + 1);
    true
  end

let pop d =
  let b = Atomic.get d.bottom - 1 in
  (* claim the bottom slot before looking at [top]: a seq-cst store, so
     concurrent thieves either see the reservation or beat it with a CAS
     the contested branch below detects *)
  Atomic.set d.bottom b;
  let t = Atomic.get d.top in
  if b < t then begin
    (* empty: undo the reservation *)
    Atomic.set d.bottom t;
    None
  end
  else if b > t then begin
    let i = b land d.mask in
    let v = d.slots.(i) in
    d.slots.(i) <- None;
    v
  end
  else begin
    (* last element: race the thieves for it through [top] *)
    let won = Atomic.compare_and_set d.top t (t + 1) in
    Atomic.set d.bottom (t + 1);
    if won then begin
      let i = b land d.mask in
      let v = d.slots.(i) in
      d.slots.(i) <- None;
      v
    end
    else None
  end

type 'a steal_result = Stolen of 'a | Empty | Lost_race

let steal d =
  let t = Atomic.get d.top in
  let b = Atomic.get d.bottom in
  if b - t <= 0 then Empty
  else begin
    (* read before the CAS: success proves the slot was not recycled *)
    let v = d.slots.(t land d.mask) in
    if Atomic.compare_and_set d.top t (t + 1) then
      match v with
      | Some x -> Stolen x
      | None ->
        (* the owner cleared the slot while taking this very element,
           which implies it also advanced [top]; the CAS cannot have
           succeeded in that interleaving *)
        assert false
    else Lost_race
  end
