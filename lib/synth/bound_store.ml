module I = Spi.Ids
module C = Variants.Canonical

let m_problem_hits = Obs.Registry.counter "bound_store.problem_hits"
let m_app_hits = Obs.Registry.counter "bound_store.app_merge_hits"
let m_cold = Obs.Registry.counter "bound_store.cold"

(* Key derivation feeds the figures the search actually depends on —
   per-process options, processor cost, capacity, per-app membership —
   in sorted order, so declaration order never splits the cache. *)
let feed_tech_entry t tech pid =
  C.feed_string t (I.Process_id.to_string pid);
  let o = Tech.options_of tech pid in
  C.feed_option t C.feed_int (Option.map (fun s -> s.Tech.load) o.Tech.sw);
  C.feed_option t C.feed_int (Option.map (fun h -> h.Tech.area) o.Tech.hw)

let feed_app t tech (a : App.t) =
  C.feed_tag t "app";
  C.feed_string t a.App.name;
  C.feed_list t
    (fun t pid -> feed_tech_entry t tech pid)
    (I.Process_id.Set.elements a.App.procs)

let app_key ?(capacity = Schedule.default_capacity) tech (a : App.t) =
  let t = C.create () in
  C.feed_tag t "explore-app/v1";
  C.feed_int t capacity;
  C.feed_int t (Tech.processor_cost tech);
  feed_app t tech a;
  C.digest t

let problem_key ?(capacity = Schedule.default_capacity) tech apps =
  let t = C.create () in
  C.feed_tag t "explore-problem/v1";
  C.feed_int t capacity;
  C.feed_int t (Tech.processor_cost tech);
  C.feed_list t
    (fun t a -> feed_app t tech a)
    (List.sort (fun (a : App.t) b -> String.compare a.App.name b.App.name) apps);
  C.digest t

let binding_to_json b : Obs.Json.t =
  Obs.Json.List
    (List.map
       (fun pid ->
         let impl =
           match Binding.impl_of pid b with
           | Some Binding.Hw -> "hw"
           | Some Binding.Sw | None -> "sw"
         in
         Obs.Json.List
           [
             Obs.Json.String (I.Process_id.to_string pid);
             Obs.Json.String impl;
           ])
       (Binding.processes b))

let binding_of_json json =
  match Obs.Json.to_list json with
  | None -> None
  | Some entries ->
    List.fold_left
      (fun acc entry ->
        match (acc, Obs.Json.to_list entry) with
        | None, _ | _, None -> None
        | Some b, Some [ Obs.Json.String pid; Obs.Json.String impl ] -> (
          match impl with
          | "hw" -> Some (Binding.bind (I.Process_id.of_string pid) Binding.Hw b)
          | "sw" -> Some (Binding.bind (I.Process_id.of_string pid) Binding.Sw b)
          | _ -> None)
        | Some _, Some _ -> None)
      (Some Binding.empty) entries

let solution_record restrict (s : Explore.solution) : Obs.Json.t =
  let binding =
    match restrict with
    | None -> s.Explore.binding
    | Some procs ->
      I.Process_id.Set.fold
        (fun pid acc ->
          match Binding.impl_of pid s.Explore.binding with
          | Some impl -> Binding.bind pid impl acc
          | None -> acc)
        procs Binding.empty
  in
  Obs.Json.Obj
    [
      ("schema", Obs.Json.String "bound/v1");
      ("cost", Obs.Json.Int s.Explore.cost.Cost.total);
      ("degraded", Obs.Json.Bool s.Explore.degraded);
      ("binding", binding_to_json binding);
    ]

let remember ?capacity store tech apps (s : Explore.solution) =
  Store.Keyed.put store
    ~key:(problem_key ?capacity tech apps)
    (solution_record None s);
  List.iter
    (fun (a : App.t) ->
      Store.Keyed.put store
        ~key:(app_key ?capacity tech a)
        (solution_record (Some a.App.procs) s))
    apps

let stored_binding store key =
  match Store.Keyed.find store key with
  | None -> None
  | Some json ->
    Option.bind (Obs.Json.member "binding" json) binding_of_json

let warm_binding ?capacity store tech apps =
  match stored_binding store (problem_key ?capacity tech apps) with
  | Some b ->
    Obs.Metric.incr m_problem_hits;
    Some b
  | None -> (
    let partial =
      List.fold_left
        (fun acc a ->
          match stored_binding store (app_key ?capacity tech a) with
          | Some b -> (
            match acc with
            | None -> Some b
            | Some prev -> Some (Binding.union_prefer_left prev b))
          | None -> acc)
        None apps
    in
    match partial with
    | Some _ ->
      Obs.Metric.incr m_app_hits;
      partial
    | None ->
      Obs.Metric.incr m_cold;
      None)
