(** Multi-processor HW/SW partitioning.

    Generalizes {!Explore} from one shared processor to a heterogeneous
    set: each software process is placed on a specific processor, each
    processor has its own capacity and cost, and a processor is paid for
    only when something runs on it.  Schedulability remains
    per-application and per-processor — mutually exclusive variants
    still share every processor they are placed on.

    Like {!Explore}, the search runs on a pool of OCaml 5 domains when
    [jobs > 1]: the placement tree is split at a configurable depth into
    independent subtree tasks (each with its own load matrix), sorted by
    lower bound and pruned against a shared atomic incumbent.  The
    optimal cost is identical for every job count. *)

type processor = {
  id : Spi.Ids.Resource_id.t;
  capacity : int;
  cost : int;
}

val processor : name:string -> capacity:int -> cost:int -> processor

type placement = Hw | Sw_on of Spi.Ids.Resource_id.t

type binding = placement Spi.Ids.Process_id.Map.t

type solution = {
  binding : binding;
  total_cost : int;
  processors_used : Spi.Ids.Resource_id.t list;
  asic_area : int;
  worst_load : (Spi.Ids.Resource_id.t * int) list;
      (** per processor, the highest per-application load *)
  explored : int;
      (** decision nodes expanded, aggregated across domains (same
          counter semantics as {!Explore.solution}) *)
  pruned : int;
      (** subtrees cut by the incumbent bound or a capacity overload *)
  degraded : bool;
      (** the deadline expired before the search proved optimality (see
          {!Explore.solution}); always [false] without a deadline *)
}

val optimal :
  ?jobs:int ->
  ?accept:(binding -> bool) ->
  ?deadline_ns:int ->
  Tech.t ->
  processor list ->
  App.t list ->
  solution option
(** Cost-minimal feasible placement, exact (branch and bound).  The
    [Tech.t] software load figures apply uniformly to every processor
    (homogeneous execution times; heterogeneous costs/capacities).
    [jobs] follows the {!Explore.solve} convention: 1 (default)
    sequential, [n > 1] a pool of [n] domains, 0 the machine's
    recommended domain count; [accept] must be thread-safe when
    [jobs > 1].  [deadline_ns] follows {!Explore.solve}: an absolute
    {!Obs.Clock} reading past which the search stops expanding and
    returns its best incumbent with [degraded = true] ([None] when no
    incumbent was found in time).
    @raise Invalid_argument when [processors] contains duplicate ids or
    [jobs < 0].
    @raise Not_found when an application process is missing from the
    technology library. *)

val to_simple : binding -> Binding.t
(** Forgets the placement, keeping SW/HW — for reuse of the single-
    processor cost and timing helpers. *)

val pp_placement : Format.formatter -> placement -> unit
val pp_solution : Format.formatter -> solution -> unit
