module I = Spi.Ids

type result = {
  per_app : (string * Explore.solution) list;
  merged : Binding.t;
  cost : Cost.breakdown;
  conflicts : I.Process_id.t list;
}

(* The superposed architecture instantiates every hardware block any
   application chose, and keeps the processor as soon as any application
   runs anything in software.  A process implemented in hardware by one
   application and software by another therefore exists twice; only the
   hardware copy carries a cost of its own.  The reported [merged]
   binding resolves such conflicts toward hardware (the block physically
   exists); [conflicts] lists them. *)
let superpose ?jobs ?capacity tech apps =
  let solutions =
    List.map
      (fun (a : App.t) ->
        (a.App.name, Explore.optimal ?jobs ?capacity tech [ a ]))
      apps
  in
  if List.exists (fun (_, s) -> Option.is_none s) solutions then None
  else
    let per_app = List.map (fun (name, s) -> (name, Option.get s)) solutions in
    let hw_union, sw_union =
      List.fold_left
        (fun (hw, sw) (_, (s : Explore.solution)) ->
          ( I.Process_id.Set.union hw (Binding.hw_processes s.Explore.binding),
            I.Process_id.Set.union sw (Binding.sw_processes s.Explore.binding) ))
        (I.Process_id.Set.empty, I.Process_id.Set.empty)
        per_app
    in
    let conflicts = I.Process_id.Set.inter hw_union sw_union in
    let merged =
      I.Process_id.Set.fold
        (fun p acc -> Binding.bind p Binding.Hw acc)
        hw_union
        (I.Process_id.Set.fold
           (fun p acc -> Binding.bind p Binding.Sw acc)
           sw_union Binding.empty)
    in
    let asics =
      List.map
        (fun p ->
          match (Tech.options_of tech p).Tech.hw with
          | Some { Tech.area } -> (p, area)
          | None -> raise Not_found)
        (I.Process_id.Set.elements hw_union)
    in
    let processor =
      if I.Process_id.Set.is_empty sw_union then 0 else Tech.processor_cost tech
    in
    let total = processor + List.fold_left (fun acc (_, a) -> acc + a) 0 asics in
    Some
      {
        per_app;
        merged;
        cost = { Cost.processor; asics; total };
        conflicts = I.Process_id.Set.elements conflicts;
      }

let pp_result ppf r =
  Format.fprintf ppf "@[<v>merged: %a@,cost: %a@,conflicts: %d@]" Binding.pp
    r.merged Cost.pp r.cost (List.length r.conflicts)
