module I = Spi.Ids

type point = { binding : Binding.t; total_cost : int; worst_load : int }

let dominates a b =
  a.total_cost <= b.total_cost && a.worst_load <= b.worst_load
  && (a.total_cost < b.total_cost || a.worst_load < b.worst_load)

(* Per-process data memoized once (options + application membership),
   with the per-application loads maintained incrementally during the
   enumeration — a leaf costs O(applications) instead of a full
   schedulability check.  A partial assignment is abandoned as soon as
   one application's load exceeds capacity: software loads only grow,
   so no completion can be feasible. *)
type node = {
  pid : I.Process_id.t;
  sw : int option;
  hw : int option;
  members : int array;
}

let enumerate ~capacity ~processor_cost ~nodes ~n ~loads start binding0 area0
    any_sw0 =
  let points = ref [] in
  let rec go i binding area any_sw =
    if i = n then
      points :=
        {
          binding;
          total_cost = (area + if any_sw then processor_cost else 0);
          worst_load = Array.fold_left max 0 loads;
        }
        :: !points
    else begin
      let nd = nodes.(i) in
      (match nd.sw with
      | Some load ->
        let ok = ref true in
        Array.iter
          (fun ai ->
            loads.(ai) <- loads.(ai) + load;
            if loads.(ai) > capacity then ok := false)
          nd.members;
        if !ok then go (i + 1) (Binding.bind nd.pid Binding.Sw binding) area true;
        Array.iter (fun ai -> loads.(ai) <- loads.(ai) - load) nd.members
      | None -> ());
      match nd.hw with
      | Some a -> go (i + 1) (Binding.bind nd.pid Binding.Hw binding) (area + a) any_sw
      | None -> ()
    end
  in
  go start binding0 area0 any_sw0;
  !points

type task = {
  t_binding : Binding.t;
  t_area : int;
  t_any_sw : bool;
  t_loads : int array;
}

let m_frontiers = Obs.Registry.counter "pareto.frontiers"
let m_points = Obs.Registry.counter "pareto.points"
let m_tasks = Obs.Registry.counter "pareto.tasks"

let frontier ?(jobs = 1) ?(capacity = Schedule.default_capacity) tech apps =
  let jobs = match jobs with
    | 0 -> Par.available_jobs ()
    | j when j < 0 -> invalid_arg "Pareto: negative jobs"
    | j -> j
  in
  let start_ns = Obs.Clock.now_ns () in
  Obs.Metric.incr m_frontiers;
  let apps_arr = Array.of_list apps in
  let n_apps = Array.length apps_arr in
  let nodes =
    Array.map
      (fun pid ->
        let o = Tech.options_of tech pid in
        let hits = ref [] in
        Array.iteri
          (fun i (a : App.t) ->
            if I.Process_id.Set.mem pid a.App.procs then hits := i :: !hits)
          apps_arr;
        {
          pid;
          sw = Option.map (fun s -> s.Tech.load) o.Tech.sw;
          hw = Option.map (fun h -> h.Tech.area) o.Tech.hw;
          members = Array.of_list (List.rev !hits);
        })
      (Array.of_list (I.Process_id.Set.elements (App.union_procs apps)))
  in
  let n = Array.length nodes in
  let processor_cost = Tech.processor_cost tech in
  let all =
    if jobs = 1 || n < 4 then
      enumerate ~capacity ~processor_cost ~nodes ~n
        ~loads:(Array.make n_apps 0) 0 Binding.empty 0 false
    else begin
      (* split the first decisions into independent subtree tasks *)
      let depth =
        let target = jobs * 8 in
        let rec go d = if 1 lsl d >= target || d >= 10 then d else go (d + 1) in
        min (n - 2) (go 0)
      in
      let tasks = ref [] in
      let loads = Array.make n_apps 0 in
      let rec prefixes i binding area any_sw =
        if i = depth then
          tasks :=
            {
              t_binding = binding;
              t_area = area;
              t_any_sw = any_sw;
              t_loads = Array.copy loads;
            }
            :: !tasks
        else begin
          let nd = nodes.(i) in
          (match nd.sw with
          | Some load ->
            let ok = ref true in
            Array.iter
              (fun ai ->
                loads.(ai) <- loads.(ai) + load;
                if loads.(ai) > capacity then ok := false)
              nd.members;
            if !ok then
              prefixes (i + 1) (Binding.bind nd.pid Binding.Sw binding) area true;
            Array.iter (fun ai -> loads.(ai) <- loads.(ai) - load) nd.members
          | None -> ());
          match nd.hw with
          | Some a ->
            prefixes (i + 1) (Binding.bind nd.pid Binding.Hw binding) (area + a)
              any_sw
          | None -> ()
        end
      in
      prefixes 0 Binding.empty 0 false;
      Obs.Metric.add m_tasks (List.length !tasks);
      let results =
        Par.map ~jobs
          (fun t ->
            enumerate ~capacity ~processor_cost ~nodes ~n ~loads:t.t_loads
              depth t.t_binding t.t_area t.t_any_sw)
          (Array.of_list !tasks)
      in
      Array.fold_left (fun acc pts -> List.rev_append pts acc) [] results
    end
  in
  let non_dominated =
    List.filter
      (fun p -> not (List.exists (fun q -> dominates q p) all))
      all
  in
  (* deduplicate equal objective vectors, keep one representative *)
  let dedup =
    List.fold_left
      (fun acc p ->
        if
          List.exists
            (fun q -> q.total_cost = p.total_cost && q.worst_load = p.worst_load)
            acc
        then acc
        else p :: acc)
      [] non_dominated
  in
  let frontier_points =
    List.sort
      (fun a b ->
        match Int.compare a.total_cost b.total_cost with
        | 0 -> Int.compare a.worst_load b.worst_load
        | c -> c)
      dedup
  in
  Obs.Metric.add m_points (List.length frontier_points);
  Obs.Registry.record_span ~name:"pareto.frontier_ns" ~start_ns
    ~dur_ns:(Obs.Clock.elapsed_ns start_ns);
  frontier_points

let pp_point ppf p =
  Format.fprintf ppf "cost=%d load=%d [%a]" p.total_cost p.worst_load
    Binding.pp p.binding
