(** Design-space exploration: optimal HW/SW partitioning.

    Branch-and-bound over the union of the applications' processes.
    Feasibility (checked incrementally) is per application — mutually
    exclusive variants never share a schedulability budget, which is
    exactly where a variant-aware representation beats both independent
    synthesis and superposition.  The explorer is exact: it returns a
    cost-minimal feasible binding when one exists.

    With [jobs > 1] the decision tree is split at a configurable depth
    into independent subtree tasks, sorted by their lower bound and run
    on a pool of OCaml 5 domains sharing an atomic incumbent cost for
    cross-domain pruning.  The optimal cost is identical for every job
    count; when several bindings attain it, the one returned may
    differ.  [jobs = 1] is the sequential reference implementation. *)

type solution = {
  binding : Binding.t;
  cost : Cost.breakdown;
  worst_load : int;  (** highest per-application software load *)
  explored : int;
      (** decision nodes expanded: nodes that survived the bound check
          and branched on a process (aggregated across domains) *)
  pruned : int;
      (** subtrees cut by the incumbent bound or a capacity overload *)
  degraded : bool;
      (** the deadline expired before the search proved optimality: the
          binding is the best incumbent found, feasible and valid, but a
          cheaper one may exist.  Always [false] without a deadline. *)
}

type diagnostic =
  | Pinned_impl_unavailable of {
      process : Spi.Ids.Process_id.t;
      impl : Binding.impl;
    }
      (** a [fixed] binding pins [process] to an implementation its
          technology entry does not offer — no completion can exist,
          regardless of capacity *)
  | Infeasible  (** genuine infeasibility: every binding overloads some
          application or is rejected by [accept] *)
  | Deadline_no_incumbent
      (** the deadline expired before any feasible binding was found —
          the instance may or may not be feasible *)

val pp_diagnostic : Format.formatter -> diagnostic -> unit

val solve :
  ?jobs:int ->
  ?capacity:int ->
  ?fixed:Binding.t ->
  ?accept:(Binding.t -> bool) ->
  ?deadline_ns:int ->
  ?warm:Binding.t ->
  Tech.t ->
  App.t list ->
  (solution, diagnostic) result
(** [jobs] is the domain count: 1 (default) for the sequential
    reference, [n > 1] for a pool of [n] domains, 0 for the machine's
    recommended domain count.  [fixed] pins implementations for some
    processes (used by the incremental baseline).  [accept] is an
    additional feasibility filter evaluated on complete bindings —
    e.g. {!Timing.all_satisfied} partially applied, to demand
    latency-path constraints on top of schedulability; with [jobs > 1]
    it is called concurrently from several domains and must be
    thread-safe (the bundled filters are pure).

    [deadline_ns] is an absolute {!Obs.Clock} reading: the search checks
    it cooperatively (every 1024 expanded nodes, on every domain) and
    past it stops expanding, returning the best incumbent found so far
    with [degraded = true] — or [Error Deadline_no_incumbent] when none
    was found.  Without a deadline the search is exact and its results
    are byte-identical to earlier releases.

    [warm] is a previously found binding (e.g. replayed from the
    exploration store): it is re-validated against the current problem —
    pins, capacity, [accept], with uncovered processes completed
    greedily — and, when valid, seeds the incumbent so equal-or-worse
    subtrees prune immediately.  The search
    still proves optimality, so a warm run returns exactly the costs of
    a cold one; an invalid warm binding is counted and ignored.
    @raise Not_found when an application process is missing from the
    technology library.
    @raise Invalid_argument when [jobs < 0]. *)

val optimal :
  ?jobs:int ->
  ?capacity:int ->
  ?fixed:Binding.t ->
  ?accept:(Binding.t -> bool) ->
  Tech.t ->
  App.t list ->
  solution option
(** {!solve} with the diagnostic collapsed to [None] — for callers that
    only care whether a feasible binding exists. *)

val optimal_exn :
  ?jobs:int ->
  ?capacity:int ->
  ?fixed:Binding.t ->
  ?accept:(Binding.t -> bool) ->
  Tech.t ->
  App.t list ->
  solution
(** @raise Failure with the diagnostic's message when infeasible. *)

val pp_solution : Format.formatter -> solution -> unit
