module I = Spi.Ids

type solution = {
  binding : Binding.t;
  cost : Cost.breakdown;
  worst_load : int;
  explored : int;
  pruned : int;
  degraded : bool;
}

type diagnostic =
  | Pinned_impl_unavailable of {
      process : I.Process_id.t;
      impl : Binding.impl;
    }
  | Infeasible
  | Deadline_no_incumbent

let pp_diagnostic ppf = function
  | Pinned_impl_unavailable { process; impl } ->
    Format.fprintf ppf
      "process %a is pinned to %a but its technology entry offers no %a option"
      I.Process_id.pp process Binding.pp_impl impl Binding.pp_impl impl
  | Infeasible -> Format.pp_print_string ppf "no feasible binding"
  | Deadline_no_incumbent ->
    Format.pp_print_string ppf
      "deadline expired before any feasible binding was found"

(* Per-process search data, memoized once per [solve] call: technology
   options with any [fixed] pin already applied, and application
   membership as an index list — the inner loop touches only the
   applications a process actually belongs to, instead of re-deriving
   membership and re-querying the technology map at every node. *)
type node = {
  pid : I.Process_id.t;
  sw : int option;  (** software load, [None] when unavailable or pinned HW *)
  hw : int option;  (** hardware area, [None] when unavailable or pinned SW *)
  members : int array;  (** indices of the applications containing [pid] *)
}

type counters = { mutable explored : int; mutable pruned : int }

(* Domain-local accumulator for the work-stealing fold: the best
   (binding, worst-load) seen by this worker and its node counters. *)
type par_acc = {
  c_best : (Binding.t * int) option ref;
  c_cost : int ref;
  c_counters : counters;
}

exception Diagnosed of diagnostic

(* Observability: node totals are folded into the registry once per
   solve (and per parallel task), never from the search loop itself, so
   instrumentation adds a handful of atomic operations to a search that
   expands millions of nodes.  Incumbent improvements and the
   time-to-first-incumbent gauge are bumped from the (rare) improve
   path. *)
let m_nodes = Obs.Registry.counter "explore.nodes_expanded"
let m_pruned = Obs.Registry.counter "explore.pruned"
let m_solves = Obs.Registry.counter "explore.solves"
let m_tasks = Obs.Registry.counter "explore.tasks"
let m_improvements = Obs.Registry.counter "explore.incumbent_improvements"
let m_ttfi = Obs.Registry.gauge "explore.time_to_first_incumbent_ns"
let m_resplits = Obs.Registry.counter "explore.resplits"
let m_deadline_hits = Obs.Registry.counter "explore.deadline_hits"
let m_warm_accepted = Obs.Registry.counter "explore.warm_starts_accepted"
let m_warm_rejected = Obs.Registry.counter "explore.warm_starts_rejected"

let compile ~fixed tech apps procs =
  let member_indices pid =
    let hits = ref [] in
    Array.iteri
      (fun i (a : App.t) ->
        if I.Process_id.Set.mem pid a.App.procs then hits := i :: !hits)
      apps;
    Array.of_list (List.rev !hits)
  in
  Array.map
    (fun pid ->
      let o = Tech.options_of tech pid in
      let pin = Binding.impl_of pid fixed in
      (match pin with
      | Some Binding.Hw when Option.is_none o.Tech.hw ->
        raise (Diagnosed (Pinned_impl_unavailable { process = pid; impl = Binding.Hw }))
      | Some Binding.Sw when Option.is_none o.Tech.sw ->
        raise (Diagnosed (Pinned_impl_unavailable { process = pid; impl = Binding.Sw }))
      | Some _ | None -> ());
      let sw =
        match pin with
        | Some Binding.Hw -> None
        | Some Binding.Sw | None ->
          Option.map (fun s -> s.Tech.load) o.Tech.sw
      and hw =
        match pin with
        | Some Binding.Sw -> None
        | Some Binding.Hw | None ->
          Option.map (fun h -> h.Tech.area) o.Tech.hw
      in
      { pid; sw; hw; members = member_indices pid })
    procs

(* The branch-and-bound core, shared by the sequential and the parallel
   path.  Search state: index into [nodes], the binding prefix,
   accumulated ASIC area, whether any process went to software (the
   processor cost trigger), and the per-application software loads in
   [loads].  Lower bound of a partial assignment: area so far +
   processor cost if any software so far — every completion only adds
   cost.  A partial assignment dies as soon as one application's load
   exceeds capacity (software loads only grow).

   Child order: the sequential reference visits the hardware child
   first (the historical order of the seed implementation).  The
   parallel path sets [sw_first] and visits the software child first —
   the software child always carries the lower bound (software adds no
   area), so this is best-first descent, and it is what lets the
   bound-sorted task schedule establish a tight incumbent early.

   Counter semantics: [explored] counts decision nodes expanded — nodes
   that survive the bound check and branch on a process.  [pruned]
   counts subtrees cut, whether by the incumbent bound or by a capacity
   overload; complete leaves count as neither.  Hardware and software
   children are treated identically, so the totals are comparable
   across search orders and domain counts. *)
let choice_hw = 1
let choice_sw = 2

(* Rebuild a [Binding.t] from the mutable decision vector.  Called only
   at leaves that survive the bound check — those are incumbent
   improvements, so this stays off the hot path and the search loop
   itself allocates nothing.  (With several domains time-slicing few
   cores, per-node allocation is poison: every minor collection is a
   stop-the-world rendezvous across all domains.) *)
let materialize ~nodes ~n choices =
  let b = ref Binding.empty in
  for j = 0 to n - 1 do
    if choices.(j) = choice_hw then
      b := Binding.bind nodes.(j).pid Binding.Hw !b
    else if choices.(j) = choice_sw then
      b := Binding.bind nodes.(j).pid Binding.Sw !b
  done;
  !b

(* The recursion is written with mutually recursive child functions and
   index loops rather than local closures or [Array.iter]: the body
   must not allocate per node, or minor collections (stop-the-world
   rendezvous across domains) dominate the parallel run time. *)
(* [try_split i area any_sw] is consulted at branch nodes where both
   children exist (parallel path only): returning [true] means the
   caller captured the hardware sibling as a pool task, so only the
   software child — the lower bound — descends in place.  The check
   runs mid-descent, so a task deep in its subtree still sheds work the
   moment another worker goes hungry — but only down to [split_floor]:
   below it the remaining subtree is too small to be worth shipping,
   and the guard keeps the hot deep nodes free of the hook's atomic
   reads (a plain int compare instead).  With the default hook the
   search is the sequential reference. *)
(* [should_stop] is the cooperative cancellation hook next to
   [try_split]: it is consulted once every 1024 expanded nodes — a
   single [land] on the hot path between polls, so a deadline costs
   nothing measurable and a run without one is byte-identical — and
   once it fires [stopped] latches, the recursion unwinds without
   expanding further nodes, and the caller reads [stopped] to learn the
   search was cut short (the incumbent found so far is still valid, it
   is just not proved optimal). *)
let search ?(try_split = fun _ _ _ -> false) ?(split_floor = -1)
    ?(should_stop = fun () -> false) ?(stopped = ref false) ~sw_first
    ~capacity ~processor_cost ~accept ~nodes ~n ~loads ~choices ~counters
    ~current_bound ~improve start area0 any_sw0 =
  (* hoisted so the recursive closures are allocated once per call, not
     once per node *)
  let rec add_loads members m load k ok =
    if k = m then ok
    else begin
      let ai = members.(k) in
      let v = loads.(ai) + load in
      loads.(ai) <- v;
      add_loads members m load (k + 1) (ok && v <= capacity)
    end
  in
  let rec go i area any_sw =
    let lower = area + if any_sw then processor_cost else 0 in
    if !stopped then ()
    else if lower >= current_bound () then
      counters.pruned <- counters.pruned + 1
    else if i = n then begin
      let binding = materialize ~nodes ~n choices in
      if accept binding then begin
        let worst = ref 0 in
        for a = 0 to Array.length loads - 1 do
          if loads.(a) > !worst then worst := loads.(a)
        done;
        improve lower binding !worst
      end
    end
    else begin
      counters.explored <- counters.explored + 1;
      if counters.explored land 1023 = 0 && should_stop () then
        stopped := true
      else if sw_first then begin
        if
          i < split_floor
          && Option.is_some nodes.(i).hw
          && Option.is_some nodes.(i).sw
          && try_split i area any_sw
        then
          (* hardware sibling shipped to the pool — best-first child
             continues in place *)
          sw_child i area any_sw
        else begin
          sw_child i area any_sw;
          hw_child i area any_sw
        end
      end
      else begin
        hw_child i area any_sw;
        sw_child i area any_sw
      end
    end
  and hw_child i area any_sw =
    match nodes.(i).hw with
    | Some a ->
      choices.(i) <- choice_hw;
      go (i + 1) (area + a) any_sw
    | None -> ()
  and sw_child i area _any_sw =
    match nodes.(i).sw with
    | Some load ->
      let members = nodes.(i).members in
      let m = Array.length members in
      if add_loads members m load 0 true then begin
        choices.(i) <- choice_sw;
        go (i + 1) area true
      end
      else counters.pruned <- counters.pruned + 1;
      for k = 0 to m - 1 do
        loads.(members.(k)) <- loads.(members.(k)) - load
      done
    | None -> ()
  in
  go start area0 any_sw0

let solve_seq ~start_ns ~deadline_ns ~warm ~capacity ~processor_cost ~accept
    ~nodes ~n_apps =
  let n = Array.length nodes in
  let loads = Array.make n_apps 0 in
  let choices = Array.make n 0 in
  let counters = { explored = 0; pruned = 0 } in
  let best = ref None and best_cost = ref max_int in
  (* a validated warm incumbent prunes from the first node, exactly like
     a greedy seed; the exhaustive descent below still proves (or beats)
     it, so warm and cold runs report identical costs *)
  (match warm with
  | Some (cost, binding, worst) ->
    best := Some (binding, worst);
    best_cost := cost;
    Obs.Metric.set m_ttfi (Obs.Clock.elapsed_ns start_ns)
  | None -> ());
  (* an already-expired deadline degrades immediately — the throttled
     in-search poll would never fire on a small tree *)
  let stopped =
    ref
      (match deadline_ns with
      | Some dl -> Obs.Clock.now_ns () >= dl
      | None -> false)
  in
  let should_stop =
    match deadline_ns with
    | None -> fun () -> false
    | Some dl -> fun () -> Obs.Clock.now_ns () >= dl
  in
  search ~should_stop ~stopped ~sw_first:false ~capacity ~processor_cost
    ~accept ~nodes ~n ~loads ~choices ~counters
    ~current_bound:(fun () -> !best_cost)
    ~improve:(fun cost binding worst ->
      if cost < !best_cost then begin
        if !best_cost = max_int then
          Obs.Metric.set m_ttfi (Obs.Clock.elapsed_ns start_ns);
        Obs.Metric.incr m_improvements;
        Domain_trace.record_improvement ~cost;
        best_cost := cost;
        best := Some (binding, worst)
      end)
    0 0 false;
  (!best, counters, !stopped)

(* Parallel path: enumerate the decision tree down to a split depth
   into independent subtree tasks (each carrying its own loads
   snapshot), order the tasks by the cost of a greedy completion of
   their prefix, and run them on a domain pool with a shared atomic
   incumbent for cross-domain pruning.  The search is best-first at
   both levels: tasks are claimed cheapest-estimate-first through the
   pool's cursor, and inside a task the lower-bound child (software) is
   descended first.  The cheapest greedy completion also seeds the
   incumbent, so the most promising subtrees run against a tight bound
   from the first node and the expensive subtrees are pruned wholesale
   — this helps even when the domains outnumber the cores. *)
type task = {
  t_choices : int array;  (** full-length decision vector, prefix filled *)
  t_area : int;
  t_any_sw : bool;
  t_loads : int array;
  t_bound : int;
  t_depth : int;  (** first undecided node — the task's subtree root *)
}

(* A shallow static split: just enough seeds for the cursor to hand
   every domain a distinct well-estimated subtree at start-up.  Load
   balance does not depend on this depth any more — tasks re-split on
   demand whenever a worker goes hungry — and a deep static split is
   actively harmful: seeds all enqueue at pool start, so a wide seed
   array means the last-claimed seeds sit queued for most of the run,
   which is exactly the [par.task_queue_wait_ns] tail the deques are
   meant to remove. *)
let split_depth ~jobs ~n =
  let target = jobs * 16 in
  let rec depth d = if 1 lsl d >= target || d >= 14 then d else depth (d + 1) in
  min (n - 2) (depth 0)

let solve_par ~start_ns ~deadline_ns ~warm ~jobs ~capacity ~processor_cost
    ~accept ~nodes ~n_apps =
  (* one latch shared by every domain: whichever worker's throttled
     clock poll crosses the deadline first publishes the cancellation,
     the others observe it at their next poll (at most 1024 nodes
     later), and the pool stops claiming queued tasks *)
  let cancelled =
    (* an already-expired deadline collapses the search before it
       starts: the greedy seeding below still provides the incumbent *)
    Atomic.make
      (match deadline_ns with
      | Some dl -> Obs.Clock.now_ns () >= dl
      | None -> false)
  in
  let should_stop =
    match deadline_ns with
    | None -> fun () -> Atomic.get cancelled
    | Some dl ->
      fun () ->
        Atomic.get cancelled
        ||
        if Obs.Clock.now_ns () >= dl then begin
          Atomic.set cancelled true;
          true
        end
        else false
  in
  let n = Array.length nodes in
  let depth = split_depth ~jobs ~n in
  let prefix_counters = { explored = 0; pruned = 0 } in
  let tasks = ref [] in
  let loads = Array.make n_apps 0 in
  let choices = Array.make n 0 in
  (* No incumbent exists yet, so enumeration prunes on capacity only;
     its node counts fold into the totals. *)
  let rec enumerate i area any_sw =
    if i = depth then
      let bound = area + if any_sw then processor_cost else 0 in
      tasks :=
        {
          t_choices = Array.copy choices;
          t_area = area;
          t_any_sw = any_sw;
          t_loads = Array.copy loads;
          t_bound = bound;
          t_depth = depth;
        }
        :: !tasks
    else begin
      prefix_counters.explored <- prefix_counters.explored + 1;
      let nd = nodes.(i) in
      (match nd.hw with
      | Some a ->
        choices.(i) <- choice_hw;
        enumerate (i + 1) (area + a) any_sw
      | None -> ());
      match nd.sw with
      | Some load ->
        let ok = ref true in
        Array.iter
          (fun ai ->
            loads.(ai) <- loads.(ai) + load;
            if loads.(ai) > capacity then ok := false)
          nd.members;
        if !ok then begin
          choices.(i) <- choice_sw;
          enumerate (i + 1) area true
        end
        else prefix_counters.pruned <- prefix_counters.pruned + 1;
        Array.iter (fun ai -> loads.(ai) <- loads.(ai) - load) nd.members
      | None -> ()
    end
  in
  enumerate 0 0 false;
  let tasks = Array.of_list !tasks in
  (* Greedy completion of a task prefix: place each remaining process in
     software when the loads allow it, in hardware otherwise.  The
     result is a feasible solution of the task's subtree (when every
     process has the needed option), which serves two purposes:

     - the cheapest greedy completion seeds the shared incumbent with a
       real candidate before any domain starts, so no worker searches
       with a cold [max_int] bound;
     - tasks are scheduled cheapest-estimate-first.  The greedy cost is
       an upper bound on the subtree optimum, which predicts solution
       quality far better than the lower bound: a prefix that commits
       everything to software looks unbeatable to the bound yet burns
       the capacity that its completion then pays for in area. *)
  let greedy_complete t =
    let loads = Array.copy t.t_loads in
    let filled = Array.copy t.t_choices in
    let area = ref t.t_area and any_sw = ref t.t_any_sw in
    let feasible = ref true in
    for i = t.t_depth to n - 1 do
      if !feasible then begin
        let nd = nodes.(i) in
        let sw_fits =
          match nd.sw with
          | None -> false
          | Some load ->
            Array.for_all (fun ai -> loads.(ai) + load <= capacity) nd.members
        in
        if sw_fits then begin
          let load = Option.get nd.sw in
          Array.iter (fun ai -> loads.(ai) <- loads.(ai) + load) nd.members;
          filled.(i) <- choice_sw;
          any_sw := true
        end
        else
          match nd.hw with
          | Some a ->
            filled.(i) <- choice_hw;
            area := !area + a
          | None -> feasible := false
      end
    done;
    if !feasible then
      let cost = !area + if !any_sw then processor_cost else 0 in
      Some (cost, materialize ~nodes ~n filled, Array.fold_left max 0 loads)
    else None
  in
  let estimates = Array.map greedy_complete tasks in
  let order = Array.init (Array.length tasks) Fun.id in
  let estimate i =
    match estimates.(i) with Some (c, _, _) -> c | None -> max_int
  in
  Array.sort
    (fun a b ->
      match Int.compare (estimate a) (estimate b) with
      | 0 -> Int.compare tasks.(a).t_bound tasks.(b).t_bound
      | c -> c)
    order;
  let tasks = Array.map (fun i -> tasks.(i)) order in
  let seed_best = ref None and seed_cost = ref max_int in
  (* a validated warm incumbent competes with the greedy completions on
     equal terms; whichever is cheaper seeds the shared bound *)
  (match warm with
  | Some (cost, binding, worst) ->
    seed_cost := cost;
    seed_best := Some (binding, worst)
  | None -> ());
  Array.iter
    (fun e ->
      match e with
      | Some (cost, binding, worst)
        when cost < !seed_cost && accept binding ->
        seed_cost := cost;
        seed_best := Some (binding, worst)
      | Some _ | None -> ())
    estimates;
  let incumbent = Atomic.make !seed_cost in
  Obs.Metric.add m_tasks (Array.length tasks);
  (* the greedy seeding above is the first incumbent when it exists;
     otherwise the first CAS win below records the gauge *)
  let have_incumbent = Atomic.make (!seed_cost < max_int) in
  if Atomic.get have_incumbent then
    Obs.Metric.set m_ttfi (Obs.Clock.elapsed_ns start_ns);
  let note_incumbent () =
    if not (Atomic.exchange have_incumbent true) then
      Obs.Metric.set m_ttfi (Obs.Clock.elapsed_ns start_ns);
    Obs.Metric.incr m_improvements
  in
  (* Root incumbent dive (same scheme as {!Multi.optimal}): solve the
     best-estimated subtree sequentially before any domain spawns.  The
     greedy completion only bounds that subtree's optimum from above;
     diving it to the bottom usually lands the true global optimum, so
     the pool then runs every remaining seed — and every speculatively
     shed sibling — against a tight bound instead of discovering it
     concurrently while domains contend for cores. *)
  if Array.length tasks > 0 then begin
    let t = tasks.(0) in
    let counters = prefix_counters in
    search ~should_stop ~sw_first:true ~capacity ~processor_cost ~accept
      ~nodes ~n ~loads:t.t_loads ~choices:t.t_choices ~counters
      ~current_bound:(fun () -> Atomic.get incumbent)
      ~improve:(fun cost binding worst ->
        if cost < !seed_cost then begin
          seed_cost := cost;
          seed_best := Some (binding, worst);
          Atomic.set incumbent cost;
          note_incumbent ();
          Domain_trace.record_improvement ~cost
        end)
      t.t_depth t.t_area t.t_any_sw
  end;
  let tasks =
    if Array.length tasks > 0 then Array.sub tasks 1 (Array.length tasks - 1)
    else tasks
  in
  (* Run the tasks on the work-stealing pool.  Each worker threads a
     domain-local accumulator (best solution + node counters); a task
     whose subtree root still has siblings to offer re-splits while any
     worker is hungry: the hardware child (never the lower bound) is
     snapshotted and pushed onto the owner's deque for thieves to drain
     FIFO, and the software child — best-first — continues in place on
     the task's own arrays.  Re-splitting allocates per {e split}, not
     per node, so the search loop itself stays allocation-free. *)
  let acc_init () =
    { c_best = ref None; c_cost = ref max_int;
      c_counters = { explored = 0; pruned = 0 } }
  in
  let acc_merge a b =
    a.c_counters.explored <- a.c_counters.explored + b.c_counters.explored;
    a.c_counters.pruned <- a.c_counters.pruned + b.c_counters.pruned;
    (match !(b.c_best) with
    | Some bw when !(b.c_cost) < !(a.c_cost) ->
      a.c_cost := !(b.c_cost);
      a.c_best := Some bw
    | Some _ | None -> ());
    a
  in
  let run_task ctx acc t =
    let task_ns = Obs.Clock.now_ns () in
    let counters = acc.c_counters in
    let improve cost binding worst =
      if cost < !(acc.c_cost) then begin
        acc.c_cost := cost;
        acc.c_best := Some (binding, worst)
      end;
      (* lower the shared incumbent monotonically *)
      let rec lower () =
        let cur = Atomic.get incumbent in
        if cost < cur then
          if Atomic.compare_and_set incumbent cur cost then begin
            note_incumbent ();
            Domain_trace.record_improvement ~cost
          end
          else lower ()
      in
      lower ()
    in
    (* Shed the hardware sibling at any branch node while a worker is
       hungry.  The snapshot copies the task's mutable arrays: entries
       beyond node [i] are stale exploration residue, but every path to
       a leaf overwrites its whole suffix before [materialize] reads
       it, so the thief never observes them. *)
    let try_split i area any_sw =
      Par.should_split ctx
      && begin
           let a = Option.get nodes.(i).hw in
           let hw_choices = Array.copy t.t_choices in
           hw_choices.(i) <- choice_hw;
           let pushed =
             Par.push ctx
               {
                 t_choices = hw_choices;
                 t_area = area + a;
                 t_any_sw = any_sw;
                 t_loads = Array.copy t.t_loads;
                 t_bound = area + a + (if any_sw then processor_cost else 0);
                 t_depth = i + 1;
               }
           in
           if pushed then Obs.Metric.incr m_resplits;
           (* deque full: the sibling was never enqueued — the caller
              keeps both children in place *)
           pushed
         end
    in
    (* a shed below [n - 12] ships a subtree of at most [2^12] nodes —
       sub-millisecond work that costs the thief more in claim latency
       than it buys in balance *)
    search ~try_split ~split_floor:(n - 12) ~should_stop ~sw_first:true
      ~capacity ~processor_cost ~accept ~nodes ~n ~loads:t.t_loads
      ~choices:t.t_choices ~counters
      ~current_bound:(fun () -> Atomic.get incumbent)
      ~improve t.t_depth t.t_area t.t_any_sw;
    (* one span per task: per-domain node throughput shows up in the
       span stream without any per-node cost *)
    Obs.Registry.record_span ~name:"explore.task_ns" ~start_ns:task_ns
      ~dur_ns:(Obs.Clock.elapsed_ns task_ns);
    acc
  in
  let folded =
    Par.fold
      ~cancel:(fun () -> Atomic.get cancelled)
      ~jobs ~init:acc_init ~merge:acc_merge ~f:run_task tasks
  in
  let best = ref !seed_best and best_cost = ref !seed_cost in
  let counters = prefix_counters in
  counters.explored <- counters.explored + folded.c_counters.explored;
  counters.pruned <- counters.pruned + folded.c_counters.pruned;
  (match !(folded.c_best) with
  | Some bw when !(folded.c_cost) < !best_cost ->
    best_cost := !(folded.c_cost);
    best := Some bw
  | Some _ | None -> ());
  (!best, counters, Atomic.get cancelled)

let resolve_jobs = function
  | 0 -> Par.available_jobs ()
  | j when j < 0 -> invalid_arg "Explore: negative jobs"
  | j -> j

(* Replay a stored binding against the *current* compiled problem: every
   pinned implementation must be respected, every application
   schedulable, and [accept] satisfied.  Processes the stored binding
   does not cover (the model grew since the record was written) are
   completed greedily — software when it fits, hardware otherwise — so
   a partial per-application merge still yields a seed.  The binding is
   rebuilt over exactly the node set, so stale processes in the stored
   record neither pollute the cost nor leak into the result.  A warm
   candidate that fails any check is dropped — warm starts accelerate,
   they never decide. *)
let warm_candidate ~capacity ~processor_cost ~accept ~nodes ~n_apps warm =
  let n = Array.length nodes in
  let loads = Array.make n_apps 0 in
  let sw_fits nd load =
    let ok = ref true in
    Array.iter
      (fun ai ->
        loads.(ai) <- loads.(ai) + load;
        if loads.(ai) > capacity then ok := false)
      nd.members;
    if !ok then true
    else begin
      Array.iter (fun ai -> loads.(ai) <- loads.(ai) - load) nd.members;
      false
    end
  in
  let rec place i area any_sw b =
    if i = n then begin
      let cost = area + if any_sw then processor_cost else 0 in
      if accept b then Some (cost, b, Array.fold_left max 0 loads) else None
    end
    else
      let nd = nodes.(i) in
      (* every decision is local and final — one linear pass, no
         backtracking, so a failure simply drops the candidate *)
      let hw () =
        match nd.hw with
        | Some a ->
          place (i + 1) (area + a) any_sw (Binding.bind nd.pid Binding.Hw b)
        | None -> None
      in
      match Binding.impl_of nd.pid warm with
      | Some Binding.Hw -> hw ()
      | Some Binding.Sw -> (
        match nd.sw with
        | Some load when sw_fits nd load ->
          place (i + 1) area true (Binding.bind nd.pid Binding.Sw b)
        | Some _ | None -> None)
      | None -> (
        (* uncovered: greedy completion, software when it fits *)
        match nd.sw with
        | Some load when sw_fits nd load ->
          place (i + 1) area true (Binding.bind nd.pid Binding.Sw b)
        | Some _ | None -> hw ())
  in
  place 0 0 false Binding.empty

let solve ?(jobs = 1) ?(capacity = Schedule.default_capacity)
    ?(fixed = Binding.empty) ?(accept = fun _ -> true) ?deadline_ns ?warm
    tech apps =
  let jobs = resolve_jobs jobs in
  let start_ns = Obs.Clock.now_ns () in
  Obs.Metric.incr m_solves;
  let procs =
    Array.of_list (I.Process_id.Set.elements (App.union_procs apps))
  in
  let apps = Array.of_list apps in
  match compile ~fixed tech apps procs with
  | exception Diagnosed d -> Error d
  | nodes ->
    let processor_cost = Tech.processor_cost tech in
    let n = Array.length nodes in
    let n_apps = Array.length apps in
    let warm =
      match warm with
      | None -> None
      | Some b -> (
        match
          warm_candidate ~capacity ~processor_cost ~accept ~nodes ~n_apps b
        with
        | Some _ as c ->
          Obs.Metric.incr m_warm_accepted;
          c
        | None ->
          Obs.Metric.incr m_warm_rejected;
          None)
    in
    let best, counters, deadline_hit =
      if jobs = 1 || n < 4 then
        solve_seq ~start_ns ~deadline_ns ~warm ~capacity ~processor_cost
          ~accept ~nodes ~n_apps
      else
        solve_par ~start_ns ~deadline_ns ~warm ~jobs ~capacity
          ~processor_cost ~accept ~nodes ~n_apps
    in
    if deadline_hit then Obs.Metric.incr m_deadline_hits;
    Obs.Metric.add m_nodes counters.explored;
    Obs.Metric.add m_pruned counters.pruned;
    Obs.Registry.record_span ~name:"explore.solve_ns" ~start_ns
      ~dur_ns:(Obs.Clock.elapsed_ns start_ns);
    (match best with
    | None -> Error (if deadline_hit then Deadline_no_incumbent else Infeasible)
    | Some (binding, worst_load) ->
      Ok
        {
          binding;
          cost = Cost.of_binding tech binding;
          worst_load;
          explored = counters.explored;
          pruned = counters.pruned;
          degraded = deadline_hit;
        })

let optimal ?jobs ?capacity ?fixed ?accept tech apps =
  match solve ?jobs ?capacity ?fixed ?accept tech apps with
  | Ok s -> Some s
  | Error _ -> None

let optimal_exn ?jobs ?capacity ?fixed ?accept tech apps =
  match solve ?jobs ?capacity ?fixed ?accept tech apps with
  | Ok s -> s
  | Error d ->
    failwith (Format.asprintf "Explore.optimal: %a" pp_diagnostic d)

let pp_solution ppf s =
  Format.fprintf ppf
    "@[<v>binding: %a@,cost: %a@,worst load: %d (explored %d, pruned %d)%s@]"
    Binding.pp s.binding Cost.pp s.cost s.worst_load s.explored s.pruned
    (if s.degraded then " [degraded: deadline cut the proof short]" else "")
