let available_jobs () = Domain.recommended_domain_count ()

(* Pool observability: a handful of counter bumps and two histogram
   observations per task — nothing per node, so the search loops stay
   allocation- and atomic-free.  [par.task_queue_wait_ns] measures how
   long a task sat enqueued (seed: since the pool started; pushed child:
   since its push) before a worker claimed it — the long tail the old
   static split produced on front-loaded trees is what work-stealing
   removes.  Steal failures are accumulated in worker-local ints and
   folded into the registry at worker exit, so an idle spinning worker
   costs no atomics. *)
let m_tasks = Obs.Registry.counter "par.tasks"
let m_pools = Obs.Registry.counter "par.pools"
let m_queue_wait = Obs.Registry.histogram "par.task_queue_wait_ns"
let m_task_run = Obs.Registry.histogram "par.task_run_ns"
let m_steals = Obs.Registry.counter "par.steals"
let m_steal_failures = Obs.Registry.counter "par.steal_failures"
let m_overflows = Obs.Registry.counter "par.deque_overflows"

(* Per-worker steal counters, [par.steals.w<i>]: handles are created
   lazily (registry creation takes a mutex) and cached, so a pool spawn
   registers at most [jobs] names once per process. *)
let steal_counters = Atomic.make ([||] : Obs.Metric.counter array)

let steal_counter w =
  let rec grow () =
    let cur = Atomic.get steal_counters in
    if w < Array.length cur then cur.(w)
    else begin
      let next =
        Array.init (w + 1) (fun i ->
            if i < Array.length cur then cur.(i)
            else Obs.Registry.counter (Printf.sprintf "par.steals.w%d" i))
      in
      (* lost races leak a duplicate handle, which the registry
         deduplicates by name — harmless *)
      ignore (Atomic.compare_and_set steal_counters cur next);
      grow ()
    end
  in
  grow ()

(* A scheduled task: [id] names it on the Domain_trace lanes (seeds keep
   their array index; pushed children draw fresh ids after the seeds),
   [enq_ns] stamps when it became claimable. *)
type 'a cell = { id : int; enq_ns : int; v : 'a }

type 'a pool = {
  jobs : int;
  deques : 'a cell Ws_deque.t array;
  seeds : 'a cell array;
  cursor : int Atomic.t;  (** next unclaimed seed index *)
  pending : int Atomic.t;  (** tasks enqueued or running, not yet done *)
  hungry : int Atomic.t;  (** workers currently failing to find work *)
  failure : exn option Atomic.t;
  cancel : unit -> bool;
  next_id : int Atomic.t;
}

type 'a ctx = {
  pool : 'a pool;
  worker : int;
  mutable rng : int;
  mutable lost_races : int;
  w_steals : Obs.Metric.counter;
}

let worker_index ctx = ctx.worker

(* Split only while some worker is hungry AND the asker's own deque is
   drained: one outstanding shed task per worker at a time.  Without the
   deque check a long task keeps shedding at every branch node for as
   long as any thief is between steals, flooding the pool with subtree
   snapshots nobody is waiting for. *)
let should_split ctx =
  Atomic.get ctx.pool.hungry > 0
  && Ws_deque.size ctx.pool.deques.(ctx.worker) = 0

let deque_capacity = 256

let push ctx v =
  let p = ctx.pool in
  let cell =
    { id = Atomic.fetch_and_add p.next_id 1; enq_ns = Obs.Clock.now_ns (); v }
  in
  (* count it before it becomes stealable, so [pending] never
     under-reports an enqueued task *)
  Atomic.incr p.pending;
  if Ws_deque.push p.deques.(ctx.worker) cell then begin
    Obs.Metric.incr m_tasks;
    true
  end
  else begin
    Atomic.decr p.pending;
    Obs.Metric.incr m_overflows;
    false
  end

let xorshift ctx =
  let x = ctx.rng in
  let x = x lxor (x lsl 13) in
  let x = x lxor (x lsr 17) in
  let x = x lxor (x lsl 5) in
  ctx.rng <- x;
  x land max_int

(* One sweep over the victims in a pseudo-random rotation.  [Empty]
   probes are free misses; [Lost_race] is genuine contention and is
   counted (locally) as a steal failure. *)
let try_steal ctx =
  let p = ctx.pool in
  let n = p.jobs in
  let start = xorshift ctx mod n in
  let rec probe k =
    if k = n then None
    else
      let v = (start + k) mod n in
      if v = ctx.worker then probe (k + 1)
      else
        match Ws_deque.steal p.deques.(v) with
        | Ws_deque.Stolen cell ->
          Obs.Metric.incr m_steals;
          Obs.Metric.incr ctx.w_steals;
          Domain_trace.record_steal ~victim:v ~worker:ctx.worker
            ~task:cell.id;
          Some cell
        | Ws_deque.Empty -> probe (k + 1)
        | Ws_deque.Lost_race ->
          ctx.lost_races <- ctx.lost_races + 1;
          probe (k + 1)
  in
  probe 0

(* The generic worker.  Claim order: own deque (LIFO), seed cursor
   (global best-first), steal (FIFO from a random victim).  A worker
   only parks in the steal loop once every seed has been claimed, so
   termination needs no cursor re-check there; [pending] reaching zero
   is the pool-wide quiescence signal (workers spin — the pool's
   lifetime is one search, not a service). *)
let run_worker pool ~init ~f worker =
  Domain_trace.register_domain ();
  let ctx =
    {
      pool;
      worker;
      rng = (worker * 0x9e3779b9) + 0x12345 lor 1;
      lost_races = 0;
      w_steals = steal_counter worker;
    }
  in
  let acc = ref (init ()) in
  let prev_end_ns = ref (Obs.Clock.now_ns ()) in
  let n_seeds = Array.length pool.seeds in
  let run cell =
    (* claimed tasks are cancelled, not run, once a failure is
       published or the pool's cancel predicate trips *)
    if Option.is_none (Atomic.get pool.failure) && not (pool.cancel ()) then begin
      let claimed_ns = Obs.Clock.now_ns () in
      Obs.Metric.observe m_queue_wait (claimed_ns - cell.enq_ns);
      (match f ctx !acc cell.v with
      | acc' ->
        let end_ns = Obs.Clock.now_ns () in
        Obs.Metric.observe m_task_run (end_ns - claimed_ns);
        Domain_trace.record_task ~wait_from_ns:!prev_end_ns ~claimed_ns
          ~end_ns ~task:cell.id;
        prev_end_ns := end_ns;
        acc := acc'
      | exception e ->
        (* keep the first failure; losing later ones is fine *)
        ignore (Atomic.compare_and_set pool.failure None (Some e)))
    end;
    Atomic.decr pool.pending
  in
  (* Empty-handed workers briefly spin (steals usually become available
     within a few sweeps), then yield their timeslice with a bounded
     sleep: on machines with fewer cores than domains, a spinning thief
     would otherwise steal cycles from the workers that still hold
     work, stretching exactly the tail the deques exist to shorten. *)
  let rec steal_loop spins =
    if Option.is_some (Atomic.get pool.failure) then None
    else if pool.cancel () then None
    else if Atomic.get pool.pending = 0 then None
    else
      match try_steal ctx with
      | Some cell -> Some cell
      | None ->
        if spins < 32 then Domain.cpu_relax () else Unix.sleepf 2e-5;
        steal_loop (spins + 1)
  in
  let rec loop () =
    if Option.is_some (Atomic.get pool.failure) then ()
    else if pool.cancel () then ()
    else
      match Ws_deque.pop pool.deques.(worker) with
      | Some cell ->
        run cell;
        loop ()
      | None ->
        let i =
          if Atomic.get pool.cursor < n_seeds then
            Atomic.fetch_and_add pool.cursor 1
          else n_seeds
        in
        if i < n_seeds then begin
          run pool.seeds.(i);
          loop ()
        end
        else if Atomic.get pool.pending = 0 then ()
        else begin
          Atomic.incr pool.hungry;
          let stolen = steal_loop 0 in
          Atomic.decr pool.hungry;
          match stolen with
          | Some cell ->
            run cell;
            loop ()
          | None -> ()
        end
  in
  loop ();
  if ctx.lost_races > 0 then Obs.Metric.add m_steal_failures ctx.lost_races;
  !acc

let make_pool ~jobs ~cancel seeds =
  let n = Array.length seeds in
  let start_ns = Obs.Clock.now_ns () in
  {
    jobs;
    deques = Array.init jobs (fun _ -> Ws_deque.create ~capacity:deque_capacity);
    seeds = Array.mapi (fun i v -> { id = i; enq_ns = start_ns; v }) seeds;
    cursor = Atomic.make 0;
    pending = Atomic.make n;
    hungry = Atomic.make 0;
    failure = Atomic.make None;
    cancel;
    next_id = Atomic.make n;
  }

let run_pool ~jobs ~cancel ~init ~merge ~f seeds =
  Obs.Metric.incr m_pools;
  Obs.Metric.add m_tasks (Array.length seeds);
  let pool = make_pool ~jobs ~cancel seeds in
  (* pool tasks inherit the spawning domain's request trace (batch
     items, explorer tasks): capture once here, restore on each spawned
     domain so spans recorded inside tasks join the request's tree.
     Worker 0 runs on the calling domain and needs nothing. *)
  let rctx = Obs.Rtrace.capture () in
  let others =
    Array.init (jobs - 1) (fun k ->
        Domain.spawn (fun () ->
            Obs.Rtrace.restore rctx;
            run_worker pool ~init ~f (k + 1)))
  in
  let acc0 = run_worker pool ~init ~f 0 in
  let accs = Array.map Domain.join others in
  (match Atomic.get pool.failure with Some e -> raise e | None -> ());
  Array.fold_left merge acc0 accs

(* Sequential reference: in-order over the seeds, local LIFO stack for
   pushes, same cancellation semantics. *)
let run_seq ~cancel ~init ~f seeds =
  let pool = make_pool ~jobs:1 ~cancel seeds in
  let acc = run_worker pool ~init ~f 0 in
  (match Atomic.get pool.failure with Some e -> raise e | None -> ());
  acc

let no_cancel () = false

let fold ?(cancel = no_cancel) ~jobs ~init ~merge ~f seeds =
  if jobs < 1 then invalid_arg "Par.fold: jobs < 1";
  if Array.length seeds = 0 then init ()
  else if jobs = 1 then run_seq ~cancel ~init ~f seeds
  else run_pool ~jobs ~cancel ~init ~merge ~f seeds

let map ~jobs f tasks =
  if jobs < 1 then invalid_arg "Par.map: jobs < 1";
  let n = Array.length tasks in
  if jobs = 1 || n < 2 then Array.map f tasks
  else begin
    let results = Array.make n None in
    let jobs = min jobs n in
    ignore
      (run_pool ~jobs ~cancel:no_cancel
         ~init:(fun () -> ())
         ~merge:(fun () () -> ())
         ~f:(fun _ctx () i -> results.(i) <- Some (f tasks.(i)))
         (Array.init n Fun.id));
    Array.map
      (function
        | Some r -> r
        | None -> assert false (* every index was claimed and succeeded *))
      results
  end
