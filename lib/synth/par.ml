let available_jobs () = Domain.recommended_domain_count ()

(* Pool observability: one counter bump and two histogram observations
   per task — nothing per node, so the search loops stay allocation-
   and atomic-free.  [par.task_queue_wait_ns] measures how long a task
   sat in the queue before a worker claimed it (static-split pools have
   no steals; a long tail here means the split was too coarse). *)
let m_tasks = Obs.Registry.counter "par.tasks"
let m_pools = Obs.Registry.counter "par.pools"
let m_queue_wait = Obs.Registry.histogram "par.task_queue_wait_ns"
let m_task_run = Obs.Registry.histogram "par.task_run_ns"

let map ~jobs f tasks =
  if jobs < 1 then invalid_arg "Par.map: jobs < 1";
  let n = Array.length tasks in
  if jobs = 1 || n < 2 then Array.map f tasks
  else begin
    Obs.Metric.incr m_pools;
    Obs.Metric.add m_tasks n;
    let started_ns = Obs.Clock.now_ns () in
    let results = Array.make n None in
    let next = Atomic.make 0 in
    let failure = Atomic.make None in
    let worker () =
      Domain_trace.register_domain ();
      let continue = ref true in
      (* end of this domain's previous task: queue-wait gaps in the
         timeline are per-lane, so they never overlap task spans *)
      let prev_end_ns = ref started_ns in
      while !continue do
        let i = Atomic.fetch_and_add next 1 in
        if i >= n || Option.is_some (Atomic.get failure) then continue := false
        else begin
          let claimed_ns = Obs.Clock.now_ns () in
          Obs.Metric.observe m_queue_wait (claimed_ns - started_ns);
          match f tasks.(i) with
          | r ->
            let end_ns = Obs.Clock.now_ns () in
            Obs.Metric.observe m_task_run (end_ns - claimed_ns);
            Domain_trace.record_task ~wait_from_ns:!prev_end_ns ~claimed_ns
              ~end_ns ~task:i;
            prev_end_ns := end_ns;
            results.(i) <- Some r
          | exception e ->
            (* keep the first failure; losing later ones is fine *)
            ignore (Atomic.compare_and_set failure None (Some e));
            continue := false
        end
      done
    in
    let domains =
      Array.init (min jobs n - 1) (fun _ -> Domain.spawn worker)
    in
    worker ();
    Array.iter Domain.join domains;
    (match Atomic.get failure with Some e -> raise e | None -> ());
    Array.map
      (function
        | Some r -> r
        | None -> assert false (* every index was claimed and succeeded *))
      results
  end
