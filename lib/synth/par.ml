let available_jobs () = Domain.recommended_domain_count ()

let map ~jobs f tasks =
  if jobs < 1 then invalid_arg "Par.map: jobs < 1";
  let n = Array.length tasks in
  if jobs = 1 || n < 2 then Array.map f tasks
  else begin
    let results = Array.make n None in
    let next = Atomic.make 0 in
    let failure = Atomic.make None in
    let worker () =
      let continue = ref true in
      while !continue do
        let i = Atomic.fetch_and_add next 1 in
        if i >= n || Option.is_some (Atomic.get failure) then continue := false
        else
          match f tasks.(i) with
          | r -> results.(i) <- Some r
          | exception e ->
            (* keep the first failure; losing later ones is fine *)
            ignore (Atomic.compare_and_set failure None (Some e));
            continue := false
      done
    in
    let domains =
      Array.init (min jobs n - 1) (fun _ -> Domain.spawn worker)
    in
    worker ();
    Array.iter Domain.join domains;
    (match Atomic.get failure with Some e -> raise e | None -> ());
    Array.map
      (function
        | Some r -> r
        | None -> assert false (* every index was claimed and succeeded *))
      results
  end
