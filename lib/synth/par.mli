(** A work-stealing domain pool for search-tree fan-out.

    The synthesis explorers split their decision trees into independent
    subtree tasks; this module runs such task arrays on OCaml 5 domains.
    Scheduling is three-tiered, in claim order:

    + each worker drains its own bounded {!Ws_deque} of dynamically
      pushed children, LIFO — depth-first through the subtree it is
      already hot on;
    + an empty worker claims the next {e seed} task through a shared
      atomic cursor, so a seed array sorted by priority (e.g. the
      branch-and-bound greedy estimate) is consumed best-first across
      the whole pool regardless of the domain count;
    + when both are dry it steals, FIFO, from a random victim's deque —
      idle domains drain the oldest (shallowest, largest) outstanding
      subtrees of whichever domain is overloaded.

    Tasks re-split {e on demand}: {!should_split} reports whether any
    worker is currently hungry, and a task that can cheaply cut off an
    independent child should then {!push} it.  A front-loaded workload
    — one seed subtree dwarfing the rest — therefore spreads across
    every domain instead of pinning one, which is what removes the long
    [par.task_queue_wait_ns] tail of the old static split.

    Failure semantics: the first exception raised by any task wins and
    is re-raised after all domains have joined; every task claimed after
    the failure is published is cancelled (skipped), not run.

    Task functions must be thread-safe: they may share state only
    through [Atomic] values or their own synchronization.

    Observability (see docs/OBSERVABILITY.md): [par.tasks], [par.pools],
    [par.task_queue_wait_ns] (push-to-claim latency per task),
    [par.task_run_ns], [par.steals] (plus per-worker [par.steals.w<i>]),
    [par.steal_failures] (lost steal races), [par.deque_overflows]
    (pushes refused on a full deque), and per-domain steal instants on
    the {!Domain_trace} lanes. *)

val available_jobs : unit -> int
(** Domains this machine can usefully run, i.e.
    [Domain.recommended_domain_count ()]. *)

type 'a ctx
(** A running worker's handle on the pool, passed to {!fold} tasks. *)

val worker_index : 'a ctx -> int
(** The calling worker's slot, in [0 .. jobs - 1]. *)

val should_split : 'a ctx -> bool
(** [true] while at least one worker is failing to find work {e and} the
    calling worker's own deque is drained — the moment when cutting off
    and {!push}ing an independent child pays.  The own-deque condition
    throttles shedding to one outstanding child per worker: a previously
    shed task that no thief has claimed yet is already available, so
    snapshotting more siblings would only burn allocations. *)

val push : 'a ctx -> 'a -> bool
(** Offer a child task to the calling worker's own deque (LIFO for the
    owner, FIFO for thieves).  [false] when the deque is full — the
    caller keeps the child and runs it inline; nothing was enqueued. *)

val map : jobs:int -> ('a -> 'b) -> 'a array -> 'b array
(** [map ~jobs f tasks] applies [f] to every element of [tasks] and
    returns the results in task order.  With [jobs <= 1] (or fewer than
    two tasks) everything runs in the calling domain — the sequential
    reference path.  Otherwise [min jobs (Array.length tasks)] domains
    claim tasks best-first through the seed cursor.  The first
    exception raised by any task cancels all tasks not yet started and
    is re-raised after all domains have joined.
    @raise Invalid_argument when [jobs < 1]. *)

val fold :
  ?cancel:(unit -> bool) ->
  jobs:int ->
  init:(unit -> 'acc) ->
  merge:('acc -> 'acc -> 'acc) ->
  f:('a ctx -> 'acc -> 'a -> 'acc) ->
  'a array ->
  'acc
(** [fold ~jobs ~init ~merge ~f seeds] runs [seeds] (and every task
    {!push}ed while processing them) to completion and combines the
    results.  [cancel] (default: never) is polled between task claims
    on every worker: once it returns [true] no further task starts —
    tasks already running are expected to observe the same condition
    through their own cooperative checks — and the accumulators folded
    so far are merged and returned as usual, so a deadline-cancelled
    search still yields its best incumbent.  Each worker domain threads its own accumulator, seeded by
    [init ()], through every task it happens to execute; after the pool
    quiesces the per-worker accumulators are [merge]d (in worker order)
    on the calling domain.  [f] must therefore be commutative up to
    [merge] — branch-and-bound folds (min over costs, sums over
    counters) are.  With [jobs = 1] the pool degenerates to an in-order
    loop over [seeds] with a local LIFO stack for pushes: the sequential
    reference for the differential tests.  Exception semantics match
    {!map}.
    @raise Invalid_argument when [jobs < 1]. *)
