(** A minimal fixed-size domain pool for search-tree fan-out.

    The synthesis explorers split their decision trees into independent
    subtree tasks; this module runs such task arrays on OCaml 5 domains.
    Tasks are claimed in array order through a shared atomic cursor, so
    an array sorted by priority (e.g. branch-and-bound lower bound) is
    consumed best-first regardless of the domain count.

    Task functions must be thread-safe: they may share state only
    through [Atomic] values or their own synchronization. *)

val available_jobs : unit -> int
(** Domains this machine can usefully run, i.e.
    [Domain.recommended_domain_count ()]. *)

val map : jobs:int -> ('a -> 'b) -> 'a array -> 'b array
(** [map ~jobs f tasks] applies [f] to every element of [tasks] and
    returns the results in task order.  With [jobs <= 1] (or fewer than
    two tasks) everything runs in the calling domain — the sequential
    reference path.  Otherwise [min jobs (Array.length tasks)] domains
    are spawned and tasks are claimed dynamically in index order.  The
    first exception raised by any task is re-raised after all domains
    have joined.
    @raise Invalid_argument when [jobs < 1]. *)
