(** The superposition baseline (Table 1, line 3).

    Each application is synthesized independently and the resulting
    implementations are superposed onto one target architecture:
    software parts share the processor (paid once), hardware parts are
    all instantiated — common processes' ASICs merge, variant ASICs add
    up.  Superposition never revisits the per-application mapping, so it
    cannot trade a shared process into hardware to free the processor
    for the variants; that is precisely the optimization a variant-aware
    representation recovers. *)

type result = {
  per_app : (string * Explore.solution) list;
  merged : Binding.t;
  cost : Cost.breakdown;
  conflicts : Spi.Ids.Process_id.t list;
      (** shared processes mapped differently by different applications:
          both implementations exist in the superposed architecture; the
          hardware copy is paid and [merged] reports it, the software
          copy shares the (already paid) processor *)
}

val superpose :
  ?jobs:int -> ?capacity:int -> Tech.t -> App.t list -> result option
(** [None] when any single application is infeasible on its own.
    [jobs] is forwarded to each per-application {!Explore.optimal}
    call (same convention: 1 sequential, [n > 1] domains, 0 auto). *)

val pp_result : Format.formatter -> result -> unit
