(** Cost / load Pareto exploration.

    Minimizing cost under a hard capacity is one point of a larger
    trade-off: spending more hardware lowers the processor load (and
    with it, latency slack and headroom for future variants).  This
    module enumerates the Pareto-optimal frontier of (total cost,
    worst-case application load) over all feasible bindings — small
    instances only, as the enumeration is exhaustive. *)

type point = {
  binding : Binding.t;
  total_cost : int;
  worst_load : int;
}

val frontier : ?jobs:int -> ?capacity:int -> Tech.t -> App.t list -> point list
(** Pareto-optimal feasible bindings, sorted by increasing cost (and
    hence decreasing load).  Dominated and duplicate-valued points are
    removed.  Empty when no feasible binding exists.  [jobs] follows
    the {!Explore.solve} convention (1 sequential, [n > 1] domains, 0
    auto): the enumeration splits into independent subtree tasks; the
    objective vectors returned are identical for every job count. *)

val dominates : point -> point -> bool
(** [dominates a b] when [a] is no worse on both axes and better on at
    least one. *)

val pp_point : Format.formatter -> point -> unit
