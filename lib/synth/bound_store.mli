(** Persistent warm-start bounds for {!Explore}.

    Bridges the exploration store ({!Store.Keyed}) and the explorer:
    solved problems are remembered under canonical problem hashes, and a
    later solve of the same — or a structurally overlapping — problem
    replays the stored binding as {!Explore.solve}'s [warm] incumbent.
    Records are advisory by construction: a warm binding is re-validated
    and the search still proves optimality, so a stale or colliding
    record can cost time, never correctness.

    Two key granularities:
    - the {e problem} key covers the technology library, the capacity
      and every application — an exact-repeat hit;
    - one {e application} key per app covers that app's processes and
      their technology entries only, so after a small model edit the
      untouched applications still contribute their old bindings, merged
      into a partial warm start. *)

val problem_key : ?capacity:int -> Tech.t -> App.t list -> string
(** Canonical hash of the full synthesis problem ([capacity] defaults to
    {!Schedule.default_capacity}, as in {!Explore.solve}). *)

val app_key : ?capacity:int -> Tech.t -> App.t -> string
(** Canonical hash of one application's subproblem: its process set and
    the technology entries (and processor cost) restricted to it. *)

val remember :
  ?capacity:int -> Store.Keyed.t -> Tech.t -> App.t list ->
  Explore.solution -> unit
(** Journals the solution under the problem key and under every
    application key (each app's record restricted to its processes). *)

val warm_binding :
  ?capacity:int -> Store.Keyed.t -> Tech.t -> App.t list -> Binding.t option
(** The stored binding for the exact problem when present; otherwise the
    union of the per-application hits (left-biased merge), when any.
    The result may cover only part of the problem — {!Explore.solve}'s
    warm validation completes and checks it. *)

val binding_to_json : Binding.t -> Obs.Json.t
val binding_of_json : Obs.Json.t -> Binding.t option
(** [None] when the JSON is not a list of [[pid, "hw"|"sw"]] pairs. *)
