(* Records are five ints: [kind; a; b; c; d].
   kind 1 (task):        wait_from_ns, claimed_ns, end_ns, task index
   kind 2 (improvement): ts_ns, cost, 0, 0
   kind 3 (steal):       ts_ns, victim worker, stealing worker, task id *)

type buffer = {
  domain : int;
  data : int array;
  mutable len : int;  (** records written *)
  mutable drops : int;
}

let stride = 5
let default_capacity = 4096
let enabled = Atomic.make false
let cap_ref = Atomic.make default_capacity
let base_ns = Atomic.make 0

(* Registration list: touched at domain startup and at drain time only,
   never on the record path. *)
let lock = Mutex.create ()
let buffers : buffer list ref = ref []

let make_buffer () =
  let b =
    {
      domain = (Domain.self () :> int);
      data = Array.make (stride * Atomic.get cap_ref) 0;
      len = 0;
      drops = 0;
    }
  in
  Mutex.lock lock;
  buffers := b :: !buffers;
  Mutex.unlock lock;
  b

let key = Domain.DLS.new_key make_buffer

let enable ?(capacity = default_capacity) () =
  if capacity < 1 then invalid_arg "Domain_trace.enable: capacity < 1";
  Mutex.lock lock;
  buffers := [];
  Mutex.unlock lock;
  Atomic.set cap_ref capacity;
  Atomic.set base_ns (Obs.Clock.now_ns ());
  (* the calling domain's buffer was dropped from the list above;
     recreate it so its records land in a registered buffer *)
  Domain.DLS.set key (make_buffer ());
  Atomic.set enabled true

let disable () = Atomic.set enabled false
let is_enabled () = Atomic.get enabled

let push kind a b c d =
  let buf = Domain.DLS.get key in
  if (buf.len + 1) * stride > Array.length buf.data then
    buf.drops <- buf.drops + 1
  else begin
    let o = buf.len * stride in
    buf.data.(o) <- kind;
    buf.data.(o + 1) <- a;
    buf.data.(o + 2) <- b;
    buf.data.(o + 3) <- c;
    buf.data.(o + 4) <- d;
    buf.len <- buf.len + 1
  end

let register_domain () =
  if Atomic.get enabled then ignore (Domain.DLS.get key : buffer)

let record_task ~wait_from_ns ~claimed_ns ~end_ns ~task =
  if Atomic.get enabled then push 1 wait_from_ns claimed_ns end_ns task

let record_improvement ~cost =
  if Atomic.get enabled then push 2 (Obs.Clock.now_ns ()) cost 0 0

let record_steal ~victim ~worker ~task =
  if Atomic.get enabled then push 3 (Obs.Clock.now_ns ()) victim worker task

let registered () =
  Mutex.lock lock;
  let bs = !buffers in
  Mutex.unlock lock;
  List.rev bs

let dropped () = List.fold_left (fun acc b -> acc + b.drops) 0 (registered ())

let m_dropped = Obs.Registry.counter "par.trace_dropped"

module T = Obs.Trace_event
module J = Obs.Json

let emit_timeline ?(pid = 1) ?(name = "explorer") sink =
  let bufs = registered () in
  let base = Atomic.get base_ns in
  let us ns = float_of_int (ns - base) /. 1000. in
  T.sink_process_name sink ~pid name;
  List.iteri
    (fun order buf ->
      let tid = buf.domain in
      T.sink_thread_name sink ~pid ~tid
        (Printf.sprintf "domain %d" buf.domain);
      T.sink_thread_order sink ~pid ~tid order;
      for r = 0 to buf.len - 1 do
        let o = r * stride in
        match buf.data.(o) with
        | 1 ->
          let wait_from = buf.data.(o + 1)
          and claimed = buf.data.(o + 2)
          and end_ns = buf.data.(o + 3)
          and task = buf.data.(o + 4) in
          if claimed > wait_from then
            sink.T.event
              (T.Complete
                 {
                   name = "queue wait";
                   cat = "pool";
                   pid;
                   tid;
                   ts = us wait_from;
                   dur = float_of_int (claimed - wait_from) /. 1000.;
                   args = [];
                 });
          sink.T.event
            (T.Complete
               {
                 name = Printf.sprintf "task %d" task;
                 cat = "task";
                 pid;
                 tid;
                 ts = us claimed;
                 dur = float_of_int (end_ns - claimed) /. 1000.;
                 args = [ ("task", J.Int task) ];
               })
        | 2 ->
          let ts = us buf.data.(o + 1) and cost = buf.data.(o + 2) in
          sink.T.event
            (T.Instant
               {
                 name = "incumbent";
                 cat = "search";
                 pid;
                 tid;
                 ts;
                 args = [ ("cost", J.Int cost) ];
               });
          (* the same improvements as a counter track: viewers draw the
             incumbent cost as a step function descending over the
             search, one series shared by all lanes of the group *)
          sink.T.event
            (T.Counter
               {
                 name = "incumbent cost";
                 pid;
                 ts;
                 values = [ ("cost", float_of_int cost) ];
               })
        | 3 ->
          let ts = us buf.data.(o + 1)
          and victim = buf.data.(o + 2)
          and worker = buf.data.(o + 3)
          and task = buf.data.(o + 4) in
          sink.T.event
            (T.Instant
               {
                 name = "steal";
                 cat = "pool";
                 pid;
                 tid;
                 ts;
                 args =
                   [
                     ("victim", J.Int victim);
                     ("worker", J.Int worker);
                     ("task", J.Int task);
                   ];
               })
        | _ -> ()
      done)
    bufs;
  let d = dropped () in
  if d > 0 then Obs.Metric.add m_dropped d

let append_timeline ?pid ?name builder =
  emit_timeline ?pid ?name (T.buffer_sink builder)

let reset () =
  List.iter
    (fun b ->
      b.len <- 0;
      b.drops <- 0)
    (registered ())
