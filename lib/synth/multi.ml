module I = Spi.Ids

type processor = { id : I.Resource_id.t; capacity : int; cost : int }

let processor ~name ~capacity ~cost =
  if capacity < 1 then invalid_arg "Multi.processor: capacity < 1";
  if cost < 0 then invalid_arg "Multi.processor: negative cost";
  { id = I.Resource_id.of_string name; capacity; cost }

type placement = Hw | Sw_on of I.Resource_id.t
type binding = placement I.Process_id.Map.t

type solution = {
  binding : binding;
  total_cost : int;
  processors_used : I.Resource_id.t list;
  asic_area : int;
  worst_load : (I.Resource_id.t * int) list;
  explored : int;
  pruned : int;
  degraded : bool;
}

let check_processors procs =
  ignore
    (List.fold_left
       (fun seen p ->
         if List.exists (I.Resource_id.equal p.id) seen then
           invalid_arg
             (Format.asprintf "Multi: duplicate processor %a" I.Resource_id.pp
                p.id)
         else p.id :: seen)
       [] procs)

(* Per-process search data, memoized once per [optimal] call (same
   scheme as {!Explore}): technology options and application membership
   as an index list. *)
type node = {
  pid : I.Process_id.t;
  sw : int option;
  hw : int option;
  members : int array;
}

type counters = { mutable explored : int; mutable pruned : int }

(* Node totals fold into the registry once per optimal call — see the
   note in {!Explore}. *)
let m_nodes = Obs.Registry.counter "multi.nodes_expanded"
let m_pruned = Obs.Registry.counter "multi.pruned"
let m_solves = Obs.Registry.counter "multi.solves"
let m_resplits = Obs.Registry.counter "multi.resplits"

(* Mutable per-search state: per (application, processor) accumulated
   load and the set of processors in use.  The processor cost of the
   used set is threaded through the recursion incrementally instead of
   being rescanned at every node.  Lower bound: area + cost of
   processors used so far — placements only ever add processors and
   area. *)
type state = { loads : int array array; used : bool array }

let copy_state st =
  { loads = Array.map Array.copy st.loads; used = Array.copy st.used }

(* Decisions are plain ints in a preallocated vector — [choice_unset]
   before node [i] is decided, [choice_hw] for hardware, [choice_sw_base
   + c] for software on processor [c] — so the search loop mutates one
   array slot per decision instead of building a [Map] at every node,
   and a stolen task's state is three flat arrays.  The [Map] binding is
   materialized only at leaves that survive the bound check (incumbent
   improvements or [accept] probes), keeping allocation off the hot
   path. *)
let choice_hw = 1
let choice_sw_base = 2

let materialize ~procs_arr ~nodes ~n choices =
  let b = ref I.Process_id.Map.empty in
  for j = 0 to n - 1 do
    let c = choices.(j) in
    if c = choice_hw then b := I.Process_id.Map.add nodes.(j).pid Hw !b
    else if c >= choice_sw_base then
      b :=
        I.Process_id.Map.add nodes.(j).pid
          (Sw_on procs_arr.(c - choice_sw_base).id)
          !b
  done;
  !b

(* Counter semantics match {!Explore}: [explored] counts decision nodes
   expanded, [pruned] counts subtrees cut by the bound or a capacity
   overload.  As in {!Explore.search}, the sequential reference visits
   the hardware child first while the parallel path sets [sw_first]:
   a software placement on an already-used processor adds no cost, so
   descending software first is best-first. *)
(* [try_split i area cpu_cost] — see {!Explore.search}: consulted at
   every branch node with both a hardware and a software option;
   returning [true] means the hardware sibling was captured as a pool
   task and only the software placements descend in place. *)
let search ?(try_split = fun _ _ _ -> false)
    ?(should_stop = fun () -> false) ?(stopped = ref false) ~sw_first
    ~procs_arr ~accept ~nodes ~n ~st ~choices ~counters ~current_bound
    ~improve start area0 cpu_cost0 =
  let n_cpu = Array.length procs_arr in
  let rec go i area cpu_cost =
    let lower = area + cpu_cost in
    if !stopped then ()
    else if lower >= current_bound () then
      counters.pruned <- counters.pruned + 1
    else if i = n then begin
      let binding = materialize ~procs_arr ~nodes ~n choices in
      if accept binding then improve lower binding area
    end
    else begin
      counters.explored <- counters.explored + 1;
      if counters.explored land 1023 = 0 && should_stop () then
        stopped := true
      else if sw_first then begin
        if
          Option.is_some nodes.(i).hw
          && Option.is_some nodes.(i).sw
          && try_split i area cpu_cost
        then try_sw i area cpu_cost
        else begin
          try_sw i area cpu_cost;
          try_hw i area cpu_cost
        end
      end
      else begin
        try_hw i area cpu_cost;
        try_sw i area cpu_cost
      end
    end
  and try_hw i area cpu_cost =
    match nodes.(i).hw with
    | Some a ->
      choices.(i) <- choice_hw;
      go (i + 1) (area + a) cpu_cost
    | None -> ()
  and try_sw i area cpu_cost =
    match nodes.(i).sw with
    | Some load ->
      let members = nodes.(i).members in
      for c = 0 to n_cpu - 1 do
        let ok = ref true in
        Array.iter
          (fun ai ->
            st.loads.(ai).(c) <- st.loads.(ai).(c) + load;
            if st.loads.(ai).(c) > procs_arr.(c).capacity then ok := false)
          members;
        let was_used = st.used.(c) in
        st.used.(c) <- true;
        let cpu_cost' =
          if was_used then cpu_cost else cpu_cost + procs_arr.(c).cost
        in
        if !ok then begin
          choices.(i) <- choice_sw_base + c;
          go (i + 1) area cpu_cost'
        end
        else counters.pruned <- counters.pruned + 1;
        if not was_used then st.used.(c) <- false;
        Array.iter
          (fun ai -> st.loads.(ai).(c) <- st.loads.(ai).(c) - load)
          members
      done
    | None -> ()
  in
  go start area0 cpu_cost0

(* A subtree task: the decision prefix as the flat choice vector plus
   its incremental state — plain ints and bools throughout, so stealing
   a task moves no closures between domains. *)
type task = {
  t_choices : int array;
  t_area : int;
  t_cpu_cost : int;
  t_state : state;
  t_bound : int;
  t_depth : int;
}

let split_depth ~jobs ~n ~branching =
  let target = jobs * 32 in
  let rec depth d reach =
    if reach >= target || d >= 10 then d else depth (d + 1) (reach * branching)
  in
  min (n - 2) (depth 0 1)

let candidate ~procs_arr ~st cost binding area =
  let n_cpu = Array.length procs_arr in
  let n_app = Array.length st.loads in
  let worst_load =
    List.init n_cpu (fun c ->
        let w = ref 0 in
        for a = 0 to n_app - 1 do
          w := max !w st.loads.(a).(c)
        done;
        (procs_arr.(c).id, !w))
  in
  let processors_used =
    List.filter_map
      (fun c -> if st.used.(c) then Some procs_arr.(c).id else None)
      (List.init n_cpu Fun.id)
  in
  {
    binding;
    total_cost = cost;
    processors_used;
    asic_area = area;
    worst_load;
    explored = 0;
    pruned = 0;
    degraded = false;
  }

(* Domain-local accumulator for the work-stealing fold. *)
type par_acc = {
  c_best : solution option ref;
  c_cost : int ref;
  c_counters : counters;
}

let m_deadline_hits = Obs.Registry.counter "multi.deadline_hits"

let optimal ?(jobs = 1) ?(accept = fun _ -> true) ?deadline_ns tech
    processors apps =
  let jobs = match jobs with
    | 0 -> Par.available_jobs ()
    | j when j < 0 -> invalid_arg "Multi: negative jobs"
    | j -> j
  in
  let start_ns = Obs.Clock.now_ns () in
  Obs.Metric.incr m_solves;
  (* same cooperative cancellation scheme as {!Explore}: one shared
     latch, polled every 1024 expanded nodes on every domain *)
  let cancelled =
    (* an already-expired deadline degrades immediately, even on trees
       too small for the throttled in-search poll to fire *)
    Atomic.make
      (match deadline_ns with
      | Some dl -> Obs.Clock.now_ns () >= dl
      | None -> false)
  in
  let should_stop =
    match deadline_ns with
    | None -> fun () -> Atomic.get cancelled
    | Some dl ->
      fun () ->
        Atomic.get cancelled
        ||
        if Obs.Clock.now_ns () >= dl then begin
          Atomic.set cancelled true;
          true
        end
        else false
  in
  let note counters =
    Obs.Metric.add m_nodes counters.explored;
    Obs.Metric.add m_pruned counters.pruned;
    Obs.Registry.record_span ~name:"multi.optimal_ns" ~start_ns
      ~dur_ns:(Obs.Clock.elapsed_ns start_ns)
  in
  check_processors processors;
  let procs_arr = Array.of_list processors in
  let n_cpu = Array.length procs_arr in
  let apps_arr = Array.of_list apps in
  let n_app = Array.length apps_arr in
  let union =
    Array.of_list (I.Process_id.Set.elements (App.union_procs apps))
  in
  let nodes =
    Array.map
      (fun pid ->
        let o = Tech.options_of tech pid in
        let hits = ref [] in
        Array.iteri
          (fun i (a : App.t) ->
            if I.Process_id.Set.mem pid a.App.procs then hits := i :: !hits)
          apps_arr;
        {
          pid;
          sw = Option.map (fun s -> s.Tech.load) o.Tech.sw;
          hw = Option.map (fun h -> h.Tech.area) o.Tech.hw;
          members = Array.of_list (List.rev !hits);
        })
      union
  in
  let n = Array.length nodes in
  let fresh_state () =
    { loads = Array.make_matrix n_app n_cpu 0; used = Array.make n_cpu false }
  in
  if jobs = 1 || n < 4 then begin
    let st = fresh_state () in
    let choices = Array.make n 0 in
    let counters = { explored = 0; pruned = 0 } in
    let best = ref None and best_cost = ref max_int in
    search ~should_stop ~sw_first:false ~procs_arr ~accept ~nodes ~n ~st
      ~choices ~counters
      ~current_bound:(fun () -> !best_cost)
      ~improve:(fun cost binding area ->
        if cost < !best_cost then begin
          best_cost := cost;
          best := Some (candidate ~procs_arr ~st cost binding area)
        end)
      0 0 0;
    note counters;
    if Atomic.get cancelled then Obs.Metric.incr m_deadline_hits;
    Option.map
      (fun (s : solution) ->
        {
          s with
          explored = counters.explored;
          pruned = counters.pruned;
          degraded = Atomic.get cancelled;
        })
      !best
  end
  else begin
    (* enumerate subtree tasks at the split depth, best-first by bound *)
    let depth = split_depth ~jobs ~n ~branching:(1 + n_cpu) in
    let prefix_counters = { explored = 0; pruned = 0 } in
    let st = fresh_state () in
    let choices = Array.make n 0 in
    let tasks = ref [] in
    let rec enumerate i area cpu_cost =
      if i = depth then
        tasks :=
          {
            t_choices = Array.copy choices;
            t_area = area;
            t_cpu_cost = cpu_cost;
            t_state = copy_state st;
            t_bound = area + cpu_cost;
            t_depth = depth;
          }
          :: !tasks
      else begin
        prefix_counters.explored <- prefix_counters.explored + 1;
        let nd = nodes.(i) in
        (match nd.hw with
        | Some a ->
          choices.(i) <- choice_hw;
          enumerate (i + 1) (area + a) cpu_cost
        | None -> ());
        match nd.sw with
        | Some load ->
          for c = 0 to n_cpu - 1 do
            let ok = ref true in
            Array.iter
              (fun ai ->
                st.loads.(ai).(c) <- st.loads.(ai).(c) + load;
                if st.loads.(ai).(c) > procs_arr.(c).capacity then ok := false)
              nd.members;
            let was_used = st.used.(c) in
            st.used.(c) <- true;
            let cpu_cost' =
              if was_used then cpu_cost else cpu_cost + procs_arr.(c).cost
            in
            if !ok then begin
              choices.(i) <- choice_sw_base + c;
              enumerate (i + 1) area cpu_cost'
            end
            else prefix_counters.pruned <- prefix_counters.pruned + 1;
            if not was_used then st.used.(c) <- false;
            Array.iter
              (fun ai -> st.loads.(ai).(c) <- st.loads.(ai).(c) - load)
              nd.members
          done
        | None -> ()
      end
    in
    enumerate 0 0 0;
    let tasks = Array.of_list !tasks in
    Array.sort (fun a b -> Int.compare a.t_bound b.t_bound) tasks;
    let incumbent = Atomic.make max_int in
    let seed_best = ref None and seed_cost = ref max_int in
    (* Root incumbent seeding, as in {!Explore.solve_par}: dive the best
       subtree sequentially so the pool never starts with a cold bound. *)
    if Array.length tasks > 0 then begin
      let t = tasks.(0) in
      search ~should_stop ~sw_first:true ~procs_arr ~accept ~nodes ~n
        ~st:t.t_state ~choices:t.t_choices ~counters:prefix_counters
        ~current_bound:(fun () -> Atomic.get incumbent)
        ~improve:(fun cost binding area ->
          if cost < !seed_cost then begin
            seed_cost := cost;
            seed_best :=
              Some (candidate ~procs_arr ~st:t.t_state cost binding area);
            Atomic.set incumbent cost
          end)
        t.t_depth t.t_area t.t_cpu_cost
    end;
    let tasks =
      if Array.length tasks > 0 then Array.sub tasks 1 (Array.length tasks - 1)
      else tasks
    in
    let acc_init () =
      { c_best = ref None; c_cost = ref max_int;
        c_counters = { explored = 0; pruned = 0 } }
    in
    let acc_merge a b =
      a.c_counters.explored <- a.c_counters.explored + b.c_counters.explored;
      a.c_counters.pruned <- a.c_counters.pruned + b.c_counters.pruned;
      (match !(b.c_best) with
      | Some s when !(b.c_cost) < !(a.c_cost) ->
        a.c_cost := !(b.c_cost);
        a.c_best := Some s
      | Some _ | None -> ());
      a
    in
    let run_task ctx acc t =
      let counters = acc.c_counters in
      let improve_for st cost binding area =
        if cost < !(acc.c_cost) then begin
          acc.c_cost := cost;
          acc.c_best := Some (candidate ~procs_arr ~st cost binding area)
        end;
        let rec lower () =
          let cur = Atomic.get incumbent in
          if cost < cur && not (Atomic.compare_and_set incumbent cur cost)
          then lower ()
        in
        lower ()
      in
      (* Shed the hardware sibling at any branch node while a worker is
         hungry (same scheme as {!Explore.solve_par}): the snapshot
         copies the task's mutable choice vector and load state; stale
         entries beyond node [i] are overwritten by the thief's own
         descent before [materialize] reads them. *)
      let try_split i area cpu_cost =
        Par.should_split ctx
        && begin
             let a = Option.get nodes.(i).hw in
             let ch = Array.copy t.t_choices in
             ch.(i) <- choice_hw;
             let pushed =
               Par.push ctx
                 {
                   t_choices = ch;
                   t_area = area + a;
                   t_cpu_cost = cpu_cost;
                   t_state = copy_state t.t_state;
                   t_bound = area + a + cpu_cost;
                   t_depth = i + 1;
                 }
             in
             if pushed then Obs.Metric.incr m_resplits;
             pushed
           end
      in
      search ~try_split ~should_stop ~sw_first:true ~procs_arr ~accept
        ~nodes ~n ~st:t.t_state ~choices:t.t_choices ~counters
        ~current_bound:(fun () -> Atomic.get incumbent)
        ~improve:(improve_for t.t_state) t.t_depth t.t_area t.t_cpu_cost;
      acc
    in
    let folded =
      Par.fold
        ~cancel:(fun () -> Atomic.get cancelled)
        ~jobs ~init:acc_init ~merge:acc_merge ~f:run_task tasks
    in
    let best = ref !seed_best and best_cost = ref !seed_cost in
    prefix_counters.explored <-
      prefix_counters.explored + folded.c_counters.explored;
    prefix_counters.pruned <- prefix_counters.pruned + folded.c_counters.pruned;
    (match !(folded.c_best) with
    | Some s when !(folded.c_cost) < !best_cost ->
      best_cost := !(folded.c_cost);
      best := Some s
    | Some _ | None -> ());
    note prefix_counters;
    if Atomic.get cancelled then Obs.Metric.incr m_deadline_hits;
    Option.map
      (fun (s : solution) ->
        {
          s with
          explored = prefix_counters.explored;
          pruned = prefix_counters.pruned;
          degraded = Atomic.get cancelled;
        })
      !best
  end

let to_simple binding =
  I.Process_id.Map.fold
    (fun pid placement acc ->
      let impl = match placement with Hw -> Binding.Hw | Sw_on _ -> Binding.Sw in
      Binding.bind pid impl acc)
    binding Binding.empty

let pp_placement ppf = function
  | Hw -> Format.pp_print_string ppf "HW"
  | Sw_on r -> Format.fprintf ppf "SW@%a" I.Resource_id.pp r

let pp_solution ppf s =
  Format.fprintf ppf "@[<v>cost %d (asics %d, cpus: %s)@,%a@]" s.total_cost
    s.asic_area
    (String.concat ", " (List.map I.Resource_id.to_string s.processors_used))
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
       (fun ppf (pid, p) ->
         Format.fprintf ppf "%a:%a" I.Process_id.pp pid pp_placement p))
    (I.Process_id.Map.bindings s.binding)
