module I = Spi.Ids

type processor = { id : I.Resource_id.t; capacity : int; cost : int }

let processor ~name ~capacity ~cost =
  if capacity < 1 then invalid_arg "Multi.processor: capacity < 1";
  if cost < 0 then invalid_arg "Multi.processor: negative cost";
  { id = I.Resource_id.of_string name; capacity; cost }

type placement = Hw | Sw_on of I.Resource_id.t
type binding = placement I.Process_id.Map.t

type solution = {
  binding : binding;
  total_cost : int;
  processors_used : I.Resource_id.t list;
  asic_area : int;
  worst_load : (I.Resource_id.t * int) list;
  explored : int;
  pruned : int;
}

let check_processors procs =
  ignore
    (List.fold_left
       (fun seen p ->
         if List.exists (I.Resource_id.equal p.id) seen then
           invalid_arg
             (Format.asprintf "Multi: duplicate processor %a" I.Resource_id.pp
                p.id)
         else p.id :: seen)
       [] procs)

(* Per-process search data, memoized once per [optimal] call (same
   scheme as {!Explore}): technology options and application membership
   as an index list. *)
type node = {
  pid : I.Process_id.t;
  sw : int option;
  hw : int option;
  members : int array;
}

type counters = { mutable explored : int; mutable pruned : int }

(* Node totals fold into the registry once per optimal call — see the
   note in {!Explore}. *)
let m_nodes = Obs.Registry.counter "multi.nodes_expanded"
let m_pruned = Obs.Registry.counter "multi.pruned"
let m_solves = Obs.Registry.counter "multi.solves"

(* Mutable per-search state: per (application, processor) accumulated
   load and the set of processors in use.  The processor cost of the
   used set is threaded through the recursion incrementally instead of
   being rescanned at every node.  Lower bound: area + cost of
   processors used so far — placements only ever add processors and
   area. *)
type state = { loads : int array array; used : bool array }

let copy_state st =
  { loads = Array.map Array.copy st.loads; used = Array.copy st.used }

(* Counter semantics match {!Explore}: [explored] counts decision nodes
   expanded, [pruned] counts subtrees cut by the bound or a capacity
   overload.  As in {!Explore.search}, the sequential reference visits
   the hardware child first while the parallel path sets [sw_first]:
   a software placement on an already-used processor adds no cost, so
   descending software first is best-first. *)
let search ~sw_first ~procs_arr ~accept ~nodes ~n ~st ~counters ~current_bound
    ~improve start binding0 area0 cpu_cost0 =
  let n_cpu = Array.length procs_arr in
  let rec go i binding area cpu_cost =
    let lower = area + cpu_cost in
    if lower >= current_bound () then counters.pruned <- counters.pruned + 1
    else if i = n then begin
      if accept binding then improve lower binding area st
    end
    else begin
      counters.explored <- counters.explored + 1;
      let nd = nodes.(i) in
      let try_hw () =
        match nd.hw with
        | Some a ->
          go (i + 1) (I.Process_id.Map.add nd.pid Hw binding) (area + a) cpu_cost
        | None -> ()
      and try_sw () =
        match nd.sw with
        | Some load ->
          for c = 0 to n_cpu - 1 do
            let ok = ref true in
            Array.iter
              (fun ai ->
                st.loads.(ai).(c) <- st.loads.(ai).(c) + load;
                if st.loads.(ai).(c) > procs_arr.(c).capacity then ok := false)
              nd.members;
            let was_used = st.used.(c) in
            st.used.(c) <- true;
            let cpu_cost' =
              if was_used then cpu_cost else cpu_cost + procs_arr.(c).cost
            in
            if !ok then
              go (i + 1)
                (I.Process_id.Map.add nd.pid (Sw_on procs_arr.(c).id) binding)
                area cpu_cost'
            else counters.pruned <- counters.pruned + 1;
            if not was_used then st.used.(c) <- false;
            Array.iter
              (fun ai -> st.loads.(ai).(c) <- st.loads.(ai).(c) - load)
              nd.members
          done
        | None -> ()
      in
      if sw_first then begin
        try_sw ();
        try_hw ()
      end
      else begin
        try_hw ();
        try_sw ()
      end
    end
  in
  go start binding0 area0 cpu_cost0

type task = {
  t_binding : binding;
  t_area : int;
  t_cpu_cost : int;
  t_state : state;
  t_bound : int;
}

let split_depth ~jobs ~n ~branching =
  let target = jobs * 32 in
  let rec depth d reach =
    if reach >= target || d >= 10 then d else depth (d + 1) (reach * branching)
  in
  min (n - 2) (depth 0 1)

let candidate ~procs_arr ~st cost binding area =
  let n_cpu = Array.length procs_arr in
  let n_app = Array.length st.loads in
  let worst_load =
    List.init n_cpu (fun c ->
        let w = ref 0 in
        for a = 0 to n_app - 1 do
          w := max !w st.loads.(a).(c)
        done;
        (procs_arr.(c).id, !w))
  in
  let processors_used =
    List.filter_map
      (fun c -> if st.used.(c) then Some procs_arr.(c).id else None)
      (List.init n_cpu Fun.id)
  in
  {
    binding;
    total_cost = cost;
    processors_used;
    asic_area = area;
    worst_load;
    explored = 0;
    pruned = 0;
  }

let optimal ?(jobs = 1) ?(accept = fun _ -> true) tech processors apps =
  let jobs = match jobs with
    | 0 -> Par.available_jobs ()
    | j when j < 0 -> invalid_arg "Multi: negative jobs"
    | j -> j
  in
  let start_ns = Obs.Clock.now_ns () in
  Obs.Metric.incr m_solves;
  let note counters =
    Obs.Metric.add m_nodes counters.explored;
    Obs.Metric.add m_pruned counters.pruned;
    Obs.Registry.record_span ~name:"multi.optimal_ns" ~start_ns
      ~dur_ns:(Obs.Clock.elapsed_ns start_ns)
  in
  check_processors processors;
  let procs_arr = Array.of_list processors in
  let n_cpu = Array.length procs_arr in
  let apps_arr = Array.of_list apps in
  let n_app = Array.length apps_arr in
  let union =
    Array.of_list (I.Process_id.Set.elements (App.union_procs apps))
  in
  let nodes =
    Array.map
      (fun pid ->
        let o = Tech.options_of tech pid in
        let hits = ref [] in
        Array.iteri
          (fun i (a : App.t) ->
            if I.Process_id.Set.mem pid a.App.procs then hits := i :: !hits)
          apps_arr;
        {
          pid;
          sw = Option.map (fun s -> s.Tech.load) o.Tech.sw;
          hw = Option.map (fun h -> h.Tech.area) o.Tech.hw;
          members = Array.of_list (List.rev !hits);
        })
      union
  in
  let n = Array.length nodes in
  let fresh_state () =
    { loads = Array.make_matrix n_app n_cpu 0; used = Array.make n_cpu false }
  in
  if jobs = 1 || n < 4 then begin
    let st = fresh_state () in
    let counters = { explored = 0; pruned = 0 } in
    let best = ref None and best_cost = ref max_int in
    search ~sw_first:false ~procs_arr ~accept ~nodes ~n ~st ~counters
      ~current_bound:(fun () -> !best_cost)
      ~improve:(fun cost binding area st ->
        if cost < !best_cost then begin
          best_cost := cost;
          best := Some (candidate ~procs_arr ~st cost binding area)
        end)
      0 I.Process_id.Map.empty 0 0;
    note counters;
    Option.map
      (fun (s : solution) ->
        { s with explored = counters.explored; pruned = counters.pruned })
      !best
  end
  else begin
    (* enumerate subtree tasks at the split depth, best-first by bound *)
    let depth = split_depth ~jobs ~n ~branching:(1 + n_cpu) in
    let prefix_counters = { explored = 0; pruned = 0 } in
    let st = fresh_state () in
    let tasks = ref [] in
    let rec enumerate i binding area cpu_cost =
      if i = depth then
        tasks :=
          {
            t_binding = binding;
            t_area = area;
            t_cpu_cost = cpu_cost;
            t_state = copy_state st;
            t_bound = area + cpu_cost;
          }
          :: !tasks
      else begin
        prefix_counters.explored <- prefix_counters.explored + 1;
        let nd = nodes.(i) in
        (match nd.hw with
        | Some a ->
          enumerate (i + 1) (I.Process_id.Map.add nd.pid Hw binding) (area + a) cpu_cost
        | None -> ());
        match nd.sw with
        | Some load ->
          for c = 0 to n_cpu - 1 do
            let ok = ref true in
            Array.iter
              (fun ai ->
                st.loads.(ai).(c) <- st.loads.(ai).(c) + load;
                if st.loads.(ai).(c) > procs_arr.(c).capacity then ok := false)
              nd.members;
            let was_used = st.used.(c) in
            st.used.(c) <- true;
            let cpu_cost' =
              if was_used then cpu_cost else cpu_cost + procs_arr.(c).cost
            in
            if !ok then
              enumerate (i + 1)
                (I.Process_id.Map.add nd.pid (Sw_on procs_arr.(c).id) binding)
                area cpu_cost'
            else prefix_counters.pruned <- prefix_counters.pruned + 1;
            if not was_used then st.used.(c) <- false;
            Array.iter
              (fun ai -> st.loads.(ai).(c) <- st.loads.(ai).(c) - load)
              nd.members
          done
        | None -> ()
      end
    in
    enumerate 0 I.Process_id.Map.empty 0 0;
    let tasks = Array.of_list !tasks in
    Array.sort (fun a b -> Int.compare a.t_bound b.t_bound) tasks;
    let incumbent = Atomic.make max_int in
    let seed_best = ref None and seed_cost = ref max_int in
    (* Root incumbent seeding, as in {!Explore.solve_par}: dive the best
       subtree sequentially so the pool never starts with a cold bound. *)
    if Array.length tasks > 0 then begin
      let t = tasks.(0) in
      search ~sw_first:true ~procs_arr ~accept ~nodes ~n ~st:t.t_state
        ~counters:prefix_counters
        ~current_bound:(fun () -> Atomic.get incumbent)
        ~improve:(fun cost binding area st ->
          if cost < !seed_cost then begin
            seed_cost := cost;
            seed_best := Some (candidate ~procs_arr ~st cost binding area);
            Atomic.set incumbent cost
          end)
        depth t.t_binding t.t_area t.t_cpu_cost
    end;
    let tasks =
      if Array.length tasks > 0 then Array.sub tasks 1 (Array.length tasks - 1)
      else tasks
    in
    let results =
      Par.map ~jobs
        (fun t ->
          let counters = { explored = 0; pruned = 0 } in
          let local_best = ref None and local_cost = ref max_int in
          search ~sw_first:true ~procs_arr ~accept ~nodes ~n ~st:t.t_state ~counters
            ~current_bound:(fun () -> Atomic.get incumbent)
            ~improve:(fun cost binding area st ->
              if cost < !local_cost then begin
                local_cost := cost;
                local_best := Some (candidate ~procs_arr ~st cost binding area)
              end;
              let rec lower () =
                let cur = Atomic.get incumbent in
                if cost < cur
                   && not (Atomic.compare_and_set incumbent cur cost)
                then lower ()
              in
              lower ())
            depth t.t_binding t.t_area t.t_cpu_cost;
          (!local_best, !local_cost, counters))
        tasks
    in
    let best = ref !seed_best and best_cost = ref !seed_cost in
    Array.iter
      (fun (local_best, local_cost, c) ->
        prefix_counters.explored <- prefix_counters.explored + c.explored;
        prefix_counters.pruned <- prefix_counters.pruned + c.pruned;
        match local_best with
        | Some s when local_cost < !best_cost ->
          best_cost := local_cost;
          best := Some s
        | Some _ | None -> ())
      results;
    note prefix_counters;
    Option.map
      (fun (s : solution) ->
        {
          s with
          explored = prefix_counters.explored;
          pruned = prefix_counters.pruned;
        })
      !best
  end

let to_simple binding =
  I.Process_id.Map.fold
    (fun pid placement acc ->
      let impl = match placement with Hw -> Binding.Hw | Sw_on _ -> Binding.Sw in
      Binding.bind pid impl acc)
    binding Binding.empty

let pp_placement ppf = function
  | Hw -> Format.pp_print_string ppf "HW"
  | Sw_on r -> Format.fprintf ppf "SW@%a" I.Resource_id.pp r

let pp_solution ppf s =
  Format.fprintf ppf "@[<v>cost %d (asics %d, cpus: %s)@,%a@]" s.total_cost
    s.asic_area
    (String.concat ", " (List.map I.Resource_id.to_string s.processors_used))
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
       (fun ppf (pid, p) ->
         Format.fprintf ppf "%a:%a" I.Process_id.pp pid pp_placement p))
    (I.Process_id.Map.bindings s.binding)
