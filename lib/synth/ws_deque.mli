(** A bounded Chase-Lev work-stealing deque.

    One domain — the {e owner} — pushes and pops at the bottom (LIFO);
    any other domain may steal from the top (FIFO).  The owner therefore
    works depth-first through the children it just produced, while
    thieves drain the oldest — in a branch-and-bound split, the
    shallowest and therefore largest — outstanding subtrees.

    The deque is bounded: {!push} refuses instead of growing, so a
    producer that outruns its consumers degrades to running the child
    inline rather than allocating without limit.  Slots are recycled
    circularly; a steal that loses the race for the last element (to the
    owner's {!pop} or another thief) reports the interference instead of
    spinning, letting the caller count the failure and pick another
    victim.

    Synchronization: [top] and [bottom] are [Atomic] (sequentially
    consistent in OCaml 5), the slot array is plain.  Every slot write
    is published by the subsequent atomic store of [bottom], and a thief
    reads the slot only between acquiring loads of [top]/[bottom] and a
    CAS on [top] — the standard Chase-Lev argument, under the OCaml
    memory model, that a successful CAS implies the slot read was not a
    torn or recycled value.  The single-owner discipline is the caller's
    obligation: only the domain that created (or was handed) the deque
    may call {!push}/{!pop}. *)

type 'a t

val create : capacity:int -> 'a t
(** [create ~capacity] rounds [capacity] up to a power of two (minimum
    2).  @raise Invalid_argument when [capacity < 1]. *)

val capacity : 'a t -> int

val push : 'a t -> 'a -> bool
(** Owner only.  Enqueue at the bottom; [false] when the deque is full
    (the element is {e not} enqueued). *)

val pop : 'a t -> 'a option
(** Owner only.  Dequeue the most recently pushed element; [None] when
    empty (including when a thief won the race for the last one). *)

type 'a steal_result = Stolen of 'a | Empty | Lost_race

val steal : 'a t -> 'a steal_result
(** Any domain.  Dequeue the oldest element.  [Lost_race] means the
    element observed was claimed concurrently (by the owner or another
    thief) — the deque may or may not still hold work, so the caller
    should retry or move on, and may count it as contention. *)

val size : 'a t -> int
(** Snapshot of the current element count — racy, for
    heuristics/telemetry only. *)
