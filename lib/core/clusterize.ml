module I = Spi.Ids

type cut = {
  cluster : Cluster.t;
  wiring : (I.Port_id.t * I.Channel_id.t) list;
}

exception Clusterize_error of Diagnostic.t

let error ?subject fmt =
  Format.kasprintf
    (fun message -> raise (Clusterize_error (Diagnostic.make ?subject message)))
    fmt

type role = Internal | Input_port | Output_port | Unrelated

let classify model inside cid =
  let in_cut = function
    | Some pid -> I.Process_id.Set.mem pid inside
    | None -> false
  in
  let writer = in_cut (Spi.Model.writer_of cid model) in
  let reader = in_cut (Spi.Model.reader_of cid model) in
  match writer, reader with
  | true, true -> Internal
  | false, true -> Input_port
  | true, false -> Output_port
  | false, false -> Unrelated

let cut ~name inside model =
  if I.Process_id.Set.is_empty inside then
    error ~subject:name "empty process set";
  I.Process_id.Set.iter
    (fun pid ->
      if Option.is_none (Spi.Model.find_process pid model) then
        error ~subject:(I.Process_id.to_string pid) "unknown process %a"
          I.Process_id.pp pid)
    inside;
  let processes =
    List.filter
      (fun p -> I.Process_id.Set.mem (Spi.Process.id p) inside)
      (Spi.Model.processes model)
  in
  let internal, ports, wiring =
    List.fold_left
      (fun (internal, ports, wiring) chan ->
        let cid = Spi.Chan.id chan in
        match classify model inside cid with
        | Internal -> (chan :: internal, ports, wiring)
        | Input_port ->
          let port = Port.input (I.Channel_id.to_string cid) in
          (internal, port :: ports, (Port.id port, cid) :: wiring)
        | Output_port ->
          let port = Port.output (I.Channel_id.to_string cid) in
          (internal, port :: ports, (Port.id port, cid) :: wiring)
        | Unrelated -> (internal, ports, wiring))
      ([], [], [])
      (Spi.Model.channels model)
  in
  (* boundary channels keep their names as port placeholders: no process
     renaming is necessary *)
  let cluster =
    Cluster.make ~channels:(List.rev internal) ~ports:(List.rev ports)
      ~processes name
  in
  (match Cluster.validate cluster with
  | [] -> ()
  | errors ->
    error ~subject:name "extracted cluster is malformed: %s"
      (String.concat "; "
         (List.map (Format.asprintf "%a" Cluster.pp_error) errors)));
  { cluster; wiring = List.rev wiring }

let carve ~interface_name ~cluster_name inside model =
  let { cluster; wiring } = cut ~name:cluster_name inside model in
  let internal_ids =
    List.fold_left
      (fun acc chan -> I.Channel_id.Set.add (Spi.Chan.id chan) acc)
      I.Channel_id.Set.empty
      (match cluster with c -> c.Structure.channels)
  in
  let host_channels =
    List.filter
      (fun chan -> not (I.Channel_id.Set.mem (Spi.Chan.id chan) internal_ids))
      (Spi.Model.channels model)
  in
  let host_processes =
    List.filter
      (fun p -> not (I.Process_id.Set.mem (Spi.Process.id p) inside))
      (Spi.Model.processes model)
  in
  let iface =
    Interface.make ~ports:(Cluster.ports cluster) ~clusters:[ cluster ]
      interface_name
  in
  System.make ~processes:host_processes ~channels:host_channels
    ~sites:[ { Structure.iface; wiring } ]
    (interface_name ^ "-carved")

let cut_result ~name inside model =
  match cut ~name inside model with
  | c -> Ok c
  | exception Clusterize_error d -> Error d
  | exception Invalid_argument m -> Error (Diagnostic.make ~subject:name m)

let carve_result ~interface_name ~cluster_name inside model =
  match carve ~interface_name ~cluster_name inside model with
  | s -> Ok s
  | exception Clusterize_error d -> Error d
  | exception Invalid_argument m ->
    Error (Diagnostic.make ~subject:interface_name m)
