(** Structured error payloads for the variant-structure operations.

    The derivation operations ({!Flatten}, {!Clusterize}, {!Extraction},
    {!Evolution}) used to raise exceptions carrying bare strings; their
    payload is now a diagnostic that keeps the offending element's id
    machine-readable, so callers (the linter, the CLI) can point at the
    culprit without parsing messages.  Each module also offers
    [Result]-returning wrappers around its raising entry points. *)

type t = {
  subject : string option;
      (** id of the offending element (interface, cluster, process …),
          when one can be singled out *)
  message : string;
}

val make : ?subject:string -> string -> t

val msgf :
  ?subject:string -> ('a, Format.formatter, unit, t) format4 -> 'a
(** [msgf ?subject fmt …] formats a message into a diagnostic. *)

val subject : t -> string option
val message : t -> string

val to_string : t -> string
(** ["<subject>: <message>"], or just the message without a subject. *)

val pp : Format.formatter -> t -> unit
