module I = Spi.Ids

type entry = {
  config_id : I.Config_id.t;
  modes : I.Mode_id.Set.t;
  reconf_latency : int;
}

type t = {
  process : I.Process_id.t;
  entries : entry list;
  initial : I.Config_id.t option;
}

let entry ?(reconf_latency = 0) name ~modes =
  {
    config_id = I.Config_id.of_string name;
    modes = I.Mode_id.Set.of_list modes;
    reconf_latency;
  }

let make ?initial ~process entries =
  let seen_configs = Hashtbl.create 8 in
  let all_modes = ref I.Mode_id.Set.empty in
  List.iter
    (fun e ->
      let key = I.Config_id.to_string e.config_id in
      if Hashtbl.mem seen_configs key then
        invalid_arg
          (Format.asprintf "Configuration: duplicate configuration %s" key);
      Hashtbl.add seen_configs key ();
      if e.reconf_latency < 0 then
        invalid_arg "Configuration: negative reconfiguration latency";
      let overlap = I.Mode_id.Set.inter e.modes !all_modes in
      (match I.Mode_id.Set.choose_opt overlap with
      | Some mid ->
        invalid_arg
          (Format.asprintf
             "Configuration: mode %a belongs to several configurations"
             I.Mode_id.pp mid)
      | None -> ());
      all_modes := I.Mode_id.Set.union e.modes !all_modes)
    entries;
  (match initial with
  | Some cid when not (Hashtbl.mem seen_configs (I.Config_id.to_string cid)) ->
    invalid_arg
      (Format.asprintf "Configuration: unknown initial configuration %a"
         I.Config_id.pp cid)
  | Some _ | None -> ());
  { process; entries; initial }

let process t = t.process
let entries t = t.entries
let initial t = t.initial

let find cid t =
  List.find_opt (fun e -> I.Config_id.equal e.config_id cid) t.entries

let config_of_mode mid t =
  List.find_map
    (fun e ->
      if I.Mode_id.Set.mem mid e.modes then Some e.config_id else None)
    t.entries

let reconf_latency cid t =
  match find cid t with Some e -> e.reconf_latency | None -> 0

type error = Unknown_mode of I.Mode_id.t | Uncovered_mode of I.Mode_id.t

let pp_error ppf = function
  | Unknown_mode m ->
    Format.fprintf ppf "configuration references unknown mode %a" I.Mode_id.pp m
  | Uncovered_mode m ->
    Format.fprintf ppf "process mode %a is in no configuration" I.Mode_id.pp m

let validate_against ?(complete = true) proc t =
  let proc_modes = Spi.Process.mode_ids proc in
  let errors = ref [] in
  List.iter
    (fun e ->
      I.Mode_id.Set.iter
        (fun mid ->
          if not (I.Mode_id.Set.mem mid proc_modes) then
            errors := Unknown_mode mid :: !errors)
        e.modes)
    t.entries;
  if complete then
    I.Mode_id.Set.iter
      (fun mid ->
        if Option.is_none (config_of_mode mid t) then
          errors := Uncovered_mode mid :: !errors)
      proc_modes;
  List.rev !errors

type confcur = I.Config_id.t option

type transition =
  | Stay
  | Reconfigure of { target : I.Config_id.t; latency : int }

let on_activation t confcur mid =
  match config_of_mode mid t with
  | None -> (Stay, confcur)
  | Some target -> (
    match confcur with
    | Some current when I.Config_id.equal current target -> (Stay, confcur)
    | Some _ | None ->
      ( Reconfigure { target; latency = reconf_latency target t },
        Some target ))

let start t = t.initial

let fallback ?avoid t =
  let differs e =
    match avoid with
    | None -> true
    | Some cid -> not (I.Config_id.equal e.config_id cid)
  in
  Option.map (fun e -> e.config_id) (List.find_opt differs t.entries)

let pp ppf t =
  let pp_entry ppf e =
    Format.fprintf ppf "%a (t_conf=%d): {%s}" I.Config_id.pp e.config_id
      e.reconf_latency
      (String.concat ", "
         (List.map I.Mode_id.to_string (I.Mode_id.Set.elements e.modes)))
  in
  Format.fprintf ppf "@[<v2>configurations of %a:@,%a@]" I.Process_id.pp
    t.process
    (Format.pp_print_list ~pp_sep:Format.pp_print_cut pp_entry)
    t.entries
