(** Extracting clusters from flat models — the inverse of flattening.

    Introducing variants into an existing design starts from a flat
    model: the designer marks the subgraph that differs between
    products, and the representation needs it as a cluster with ports.
    [Clusterize] performs that cut: given a model and a set of
    processes, it computes the boundary channels, turns them into
    ports (inputs where an outside process writes into the cut, outputs
    where the cut writes outside), renames them to port placeholders
    inside the extracted processes, and returns both the cluster and
    the site wiring needed to put it back.

    [carve] additionally rebuilds the host system: the remaining model
    plus an interface site holding the extracted cluster, such that
    flattening the result reproduces the original model's structure. *)

type cut = {
  cluster : Cluster.t;
  wiring : (Spi.Ids.Port_id.t * Spi.Ids.Channel_id.t) list;
      (** port -> original boundary channel *)
}

exception Clusterize_error of Diagnostic.t
(** The diagnostic's [subject] names the offending process or the
    would-be cluster. *)

val cut :
  name:string -> Spi.Ids.Process_id.Set.t -> Spi.Model.t -> cut
(** Extracts the given processes as a cluster named [name].  Boundary
    channels become ports named after the channel; channels entirely
    inside the cut become the cluster's internal channels.
    @raise Clusterize_error when the set is empty, a process is unknown,
    or a boundary channel is both written and read by the cut (ports
    are unidirectional). *)

val carve :
  interface_name:string ->
  cluster_name:string ->
  Spi.Ids.Process_id.Set.t ->
  Spi.Model.t ->
  System.t
(** The whole import: remaining model + a single-cluster interface site
    in place of the cut.  The result validates, and
    [Flatten.flatten ~choice:(fun _ -> cluster)] yields a model with the
    same process set as the original (cut processes prefixed with the
    interface name). *)

val cut_result :
  name:string ->
  Spi.Ids.Process_id.Set.t ->
  Spi.Model.t ->
  (cut, Diagnostic.t) result
(** {!cut} with errors returned as diagnostics. *)

val carve_result :
  interface_name:string ->
  cluster_name:string ->
  Spi.Ids.Process_id.Set.t ->
  Spi.Model.t ->
  (System.t, Diagnostic.t) result
(** {!carve} with errors returned as diagnostics. *)
