(** Process configurations (Def. 4).

    When an interface with dynamically selected clusters is abstracted
    to a single process, the process's modes are partitioned into
    configurations — one per function variant, each holding the modes
    extracted from that variant's cluster.  Executing a mode outside the
    current configuration forces a reconfiguration step whose latency
    [t_conf] is added to that execution's latency; the old
    configuration's internal state (buffers) is destroyed. *)

type entry = {
  config_id : Spi.Ids.Config_id.t;
  modes : Spi.Ids.Mode_id.Set.t;
  reconf_latency : int;  (** [t_conf] of this configuration *)
}

type t

val make :
  ?initial:Spi.Ids.Config_id.t ->
  process:Spi.Ids.Process_id.t ->
  entry list ->
  t
(** @raise Invalid_argument on duplicate configuration ids, overlapping
    mode sets (a mode belongs to at most one variant), negative
    latencies, or an unknown [initial]. *)

val entry :
  ?reconf_latency:int -> string -> modes:Spi.Ids.Mode_id.t list -> entry

val process : t -> Spi.Ids.Process_id.t
val entries : t -> entry list
val initial : t -> Spi.Ids.Config_id.t option
val find : Spi.Ids.Config_id.t -> t -> entry option
val config_of_mode : Spi.Ids.Mode_id.t -> t -> Spi.Ids.Config_id.t option
(** [None] for modes not extracted from any variant (shared behaviour —
    executing them never forces a reconfiguration). *)

val reconf_latency : Spi.Ids.Config_id.t -> t -> int

type error =
  | Unknown_mode of Spi.Ids.Mode_id.t
      (** a configuration references a mode the process does not have *)
  | Uncovered_mode of Spi.Ids.Mode_id.t
      (** a process mode belongs to no configuration (reported by
          {!validate_against} [~complete:true] only) *)

val pp_error : Format.formatter -> error -> unit

val validate_against : ?complete:bool -> Spi.Process.t -> t -> error list
(** Checks the configuration set against the abstracted process.
    [complete] (default [true]) additionally requires every process
    mode to be covered. *)

(** The run-time value of the [confcur] parameter. *)
type confcur = Spi.Ids.Config_id.t option

(** Decision taken when a mode is about to execute. *)
type transition =
  | Stay  (** the mode belongs to the current configuration (or none) *)
  | Reconfigure of { target : Spi.Ids.Config_id.t; latency : int }
      (** configuration switch: [latency] is added to the execution and
          the old configuration's internal buffers are lost *)

val on_activation : t -> confcur -> Spi.Ids.Mode_id.t -> transition * confcur
(** Implements the subsystem-level analysis of Section 4: if the newly
    activated mode belongs to the current configuration the process
    simply executes; otherwise the new configuration is selected,
    [confcur] is updated and the reconfiguration latency is charged. *)

val start : t -> confcur
(** Initial [confcur]: the declared initial configuration, if any. *)

val fallback : ?avoid:Spi.Ids.Config_id.t -> t -> Spi.Ids.Config_id.t option
(** The designated fallback variant for watchdog degradation: the first
    configuration (in declaration order) different from [avoid] —
    mirroring {!Selection.fallback_cluster} at the abstracted level.
    [None] when the process has no other variant to fall back to. *)

val pp : Format.formatter -> t -> unit
