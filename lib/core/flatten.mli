(** Deriving concrete models from a system with variants.

    Two directions, both from Section 5's design scenario:

    - {!flatten} performs production/run-time variant derivation: each
      interface is {e replaced by one of its clusters}, yielding an
      ordinary SPI model for that application ("each of those can be
      simply derived by replacing the interface 1 by either cluster 1 or
      cluster 2").
    - {!abstract} prepares dynamic variant selection: each interface is
      replaced by its extracted abstract process, and the corresponding
      configuration sets (Def. 4) are returned alongside the model for
      the simulator to enforce reconfiguration latencies. *)

type choice = Spi.Ids.Interface_id.t -> Spi.Ids.Cluster_id.t

exception Flatten_error of Diagnostic.t
(** The diagnostic's [subject] names the offending interface. *)

val choice_of_list : (string * string) list -> choice
(** Builds a choice function from interface-name/cluster-name pairs.
    @raise Flatten_error (when called) on interfaces absent from the
    list. *)

val first_cluster : System.t -> choice
(** Picks every interface's first cluster — a convenient default. *)

val flatten : System.t -> choice -> Spi.Model.t
(** Substitutes the chosen cluster at every site (recursively through
    sub-sites).  Instantiated element ids are prefixed with
    ["<interface>."] so several sites cannot collide.
    @raise Flatten_error if a site names an unknown cluster or a port is
    unwired; @raise Invalid_argument if the resulting model fails SPI
    validation. *)

val cluster_assignments :
  Spi.Ids.Interface_id.t ->
  Structure.cluster ->
  (Spi.Ids.Interface_id.t * Spi.Ids.Cluster_id.t) list list
(** All (interface, cluster) assignments that select [cluster] at the
    interface: the pair itself followed by every combination of the
    cluster's embedded interfaces' own (recursive) choices.  A cluster
    without sub-sites yields the one-pair singleton. *)

val interface_assignments :
  Structure.interface ->
  (Spi.Ids.Interface_id.t * Spi.Ids.Cluster_id.t) list list
(** {!cluster_assignments} concatenated over the interface's clusters,
    in cluster order — one entry per full subtree choice at a site of
    this interface.  {!Variant_space.enumerate} and {!applications}
    both enumerate nested spaces through this. *)

val applications : System.t -> (Spi.Ids.Cluster_id.t list * Spi.Model.t) list
(** Every derivable application: one model per combination of variants —
    the cartesian product over sites (in site order) {e including the
    nested choices of hierarchically embedded interfaces}; a sub-
    interface contributes options only under the clusters that embed
    it. *)

val abstract :
  ?granularity:Extraction.granularity ->
  System.t ->
  Spi.Model.t * Configuration.t list
(** Replaces every site by its extracted abstract process (named after
    the interface).  Top-level processes and channels are kept as-is. *)

(** {2 Non-raising wrappers}

    The same derivations with errors returned as {!Diagnostic.t} values
    ([Invalid_argument] from model validation included). *)

val flatten_result :
  System.t -> choice -> (Spi.Model.t, Diagnostic.t) result

val applications_result :
  System.t ->
  ((Spi.Ids.Cluster_id.t list * Spi.Model.t) list, Diagnostic.t) result

val abstract_result :
  ?granularity:Extraction.granularity ->
  System.t ->
  (Spi.Model.t * Configuration.t list, Diagnostic.t) result
