(** Parameter extraction: abstracting an interface to a process.

    Section 4 of the paper proposes to abstract an interface together
    with its dynamically selected clusters into a single SPI process
    (e.g. [PVar]) whose modes are extracted from the clusters and
    partitioned into configurations — one per function variant.  The
    extracted activation function combines token-availability conditions
    (enough tokens on the data inputs to run the chosen mode) with the
    interface's cluster selection rules (the tag on the selection
    channel decides the variant), exactly as rules [a1]/[a2] of the
    paper's Figure 3 discussion.

    Extraction granularity is a designer choice ("additional designer
    knowledge allows abstraction at different levels of detail"):
    {!Coarse} produces one mode per cluster (interval hulls over the
    whole cluster), {!Per_entry_mode} one mode per mode of the cluster's
    entry process — the paper's example where cluster 1 yields two modes
    and cluster 2 three. *)

type granularity = Coarse | Per_entry_mode

type result = {
  abstract_process : Spi.Process.t;
      (** the [PVar]-style process standing for the whole interface *)
  configurations : Configuration.t;
      (** Def. 4 configuration set grouping the extracted modes per
          variant, with the interface's configuration latencies *)
  mode_origin : (Spi.Ids.Mode_id.t * Spi.Ids.Cluster_id.t) list;
      (** which cluster each extracted mode came from *)
}

exception Extraction_error of Diagnostic.t
(** The diagnostic's [subject] names the offending interface. *)

val extract :
  ?granularity:granularity ->
  process_name:string ->
  wiring:(Spi.Ids.Port_id.t * Spi.Ids.Channel_id.t) list ->
  Interface.t ->
  result
(** [wiring] binds every interface port to the concrete host channel of
    the site (selection-rule guards, written against port placeholder
    channels, are renamed accordingly).
    @raise Extraction_error when a port is unbound, the interface has no
    clusters, or a selection rule observes a channel that is neither a
    port nor a host channel. *)

val extract_result :
  ?granularity:granularity ->
  process_name:string ->
  wiring:(Spi.Ids.Port_id.t * Spi.Ids.Channel_id.t) list ->
  Interface.t ->
  (result, Diagnostic.t) Stdlib.result
(** {!extract} with errors (including [Invalid_argument] from process
    construction) returned as diagnostics. *)

val cluster_latency : Cluster.t -> Interval.t
(** Re-export of {!Cluster.latency_paths} under its extraction role. *)

val pp_result : Format.formatter -> result -> unit
