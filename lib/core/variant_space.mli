(** The variant space of a system.

    A system may contain several variant sets whose selection is related
    or independent (Section 1).  This module enumerates variant
    combinations, optionally under {e linkage groups}: interfaces in the
    same group must select variants at the same position of their
    cluster lists (e.g. the input and output standard of a multi-media
    device move together). *)

type assignment = (Spi.Ids.Interface_id.t * Spi.Ids.Cluster_id.t) list
(** One cluster per site, depth-first in site order: each top-level
    site's pair is followed by the pairs of the embedded interfaces its
    chosen cluster contains (recursively), before the next top-level
    site. *)

type linkage = Spi.Ids.Interface_id.t list list
(** Groups of interfaces whose selections are related.  Interfaces
    absent from every group are independent. *)

val independent_count : System.t -> int
(** Product of the sites' top-level variant counts (nested sub-site
    choices not included). *)

val count : ?linkage:linkage -> System.t -> int
(** [List.length (enumerate ?linkage system)], computed without
    materializing the assignments. *)

val enumerate : ?linkage:linkage -> System.t -> assignment list
(** All admissible assignments, hierarchically embedded interfaces
    included: a cluster with sub-sites contributes the product of its
    nested options, exactly the combinations {!Flatten.applications}
    derives.  With linkage, grouped interfaces share the top-level
    variant index (their nested choices below remain independent); a
    group whose interfaces have different variant counts is truncated
    to the minimum.
    @raise Invalid_argument if a linkage group names an unknown
    interface. *)

val to_choice : assignment -> Flatten.choice
val pp_assignment : Format.formatter -> assignment -> unit
