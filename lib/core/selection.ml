module I = Spi.Ids

let rule name ~guard ~target =
  {
    Structure.sel_rule_id = I.Rule_id.of_string name;
    sel_guard = guard;
    target;
  }

let make ?(config_latencies = []) ?initial rules =
  List.iter
    (fun (_, latency) ->
      if latency < 0 then
        invalid_arg "Selection.make: negative configuration latency")
    config_latencies;
  { Structure.rules; config_latencies; initial }

let rules (s : Structure.selection) = s.Structure.rules

let select view s =
  List.find_opt
    (fun r -> Spi.Predicate.eval view r.Structure.sel_guard)
    s.Structure.rules

let select_cluster view s =
  Option.map (fun r -> r.Structure.target) (select view s)

let config_latency (s : Structure.selection) cid =
  match
    List.find_opt
      (fun (c, _) -> I.Cluster_id.equal c cid)
      s.Structure.config_latencies
  with
  | Some (_, latency) -> latency
  | None -> 0

let initial (s : Structure.selection) = s.Structure.initial

type cur = I.Cluster_id.t option

let requires_reconfiguration cur next =
  match cur with
  | None -> true
  | Some current -> not (I.Cluster_id.equal current next)

let fallback_cluster ?avoid (s : Structure.selection) =
  let differs cid =
    match avoid with
    | None -> true
    | Some c -> not (I.Cluster_id.equal c cid)
  in
  let rule_target =
    List.find_map
      (fun r ->
        if differs r.Structure.target then Some r.Structure.target else None)
      s.Structure.rules
  in
  match rule_target with
  | Some _ as t -> t
  | None -> (
    match s.Structure.initial with
    | Some cid when differs cid -> Some cid
    | Some _ | None -> None)

let observed_channels s =
  List.fold_left
    (fun acc r ->
      I.Channel_id.Set.union acc (Spi.Predicate.channels r.Structure.sel_guard))
    I.Channel_id.Set.empty s.Structure.rules

let map_channels f (s : Structure.selection) =
  {
    s with
    Structure.rules =
      List.map
        (fun r ->
          {
            r with
            Structure.sel_guard =
              Spi.Predicate.map_channels f r.Structure.sel_guard;
          })
        s.Structure.rules;
  }

let pp ppf (s : Structure.selection) =
  let pp_rule ppf r =
    Format.fprintf ppf "%a: %a -> %a" I.Rule_id.pp r.Structure.sel_rule_id
      Spi.Predicate.pp r.Structure.sel_guard I.Cluster_id.pp r.Structure.target
  in
  Format.fprintf ppf "@[<v>%a@]"
    (Format.pp_print_list ~pp_sep:Format.pp_print_cut pp_rule)
    s.Structure.rules
