module I = Spi.Ids

type granularity = Coarse | Per_entry_mode

type result = {
  abstract_process : Spi.Process.t;
  configurations : Configuration.t;
  mode_origin : (I.Mode_id.t * I.Cluster_id.t) list;
}

exception Extraction_error of Diagnostic.t

let error ?subject fmt =
  Format.kasprintf
    (fun message -> raise (Extraction_error (Diagnostic.make ?subject message)))
    fmt

(* One extracted mode candidate before activation-rule synthesis. *)
type candidate = {
  mode : Spi.Mode.t;
  cluster : I.Cluster_id.t;
  selection_guard : Spi.Predicate.t;  (** already in host-channel space *)
}

let host_of_port wiring iface pid =
  match List.find_opt (fun (p, _) -> I.Port_id.equal p pid) wiring with
  | Some (_, host) -> host
  | None ->
    error
      ~subject:(I.Interface_id.to_string (Interface.id iface))
      "interface %a: port %a not wired" I.Interface_id.pp (Interface.id iface)
      I.Port_id.pp pid

(* Selection guards are written against port placeholder channels; map
   them into host-channel space.  Guards may also reference host
   channels directly (e.g. a controller request queue outside the
   interface signature), which pass through unchanged. *)
let rename_guard wiring iface guard =
  let rename cid =
    let port =
      List.find_opt
        (fun p -> I.Channel_id.equal (Port.channel_of (Port.id p)) cid)
        (Interface.ports iface)
    in
    match port with
    | Some p -> host_of_port wiring iface (Port.id p)
    | None -> cid
  in
  Spi.Predicate.map_channels rename guard

let cluster_latency = Cluster.latency_paths

(* Consumption of the extracted mode on each input port, in host-channel
   space.  With [Per_entry_mode], the entry port's rate is narrowed to
   the entry mode's own consumption. *)
let port_consumptions ~wiring iface cluster entry_mode_opt =
  let in_ports = List.filter Port.is_input (Interface.ports iface) in
  List.filter_map
    (fun port ->
      let pid = Port.id port in
      let base = Cluster.port_consumption cluster pid in
      let rate =
        match entry_mode_opt with
        | None -> base
        | Some em ->
          let em_rate = Spi.Mode.consumption em (Port.channel_of pid) in
          if Interval.equal em_rate Interval.zero then base else em_rate
      in
      if Interval.equal rate Interval.zero then None
      else Some (host_of_port wiring iface pid, rate))
    in_ports

let port_productions ~wiring iface cluster =
  let out_ports = List.filter Port.is_output (Interface.ports iface) in
  List.filter_map
    (fun port ->
      let pid = Port.id port in
      let rate = Cluster.port_production cluster pid in
      if Interval.equal rate Interval.zero then None
      else
        let tags = Cluster.port_production_tags cluster pid in
        Some (host_of_port wiring iface pid, Spi.Mode.produce ~tags rate))
    out_ports

(* Channels a selection guard observes must also be consumed (one token)
   by the extracted mode so the selection token is used up, as with the
   request tokens of the paper's video example. *)
let add_selection_consumption guard consumes =
  let observed = Spi.Predicate.channels guard in
  I.Channel_id.Set.fold
    (fun cid acc ->
      if List.exists (fun (c, _) -> I.Channel_id.equal c cid) acc then acc
      else (cid, Interval.point 1) :: acc)
    observed consumes

let candidates_for_cluster ~granularity ~wiring ~selection iface cluster =
  let latency = Cluster.latency_paths cluster in
  let entry_modes =
    match granularity with
    | Coarse -> [ None ]
    | Per_entry_mode -> (
      match Cluster.entry_process cluster with
      | None -> [ None ]
      | Some p -> List.map Option.some (Spi.Process.modes p))
  in
  let guards =
    match selection with
    | None -> [ (None, Spi.Predicate.True) ]
    | Some sel -> (
      let targeting =
        List.filter
          (fun r -> I.Cluster_id.equal r.Structure.target (Cluster.id cluster))
          (Selection.rules sel)
      in
      match targeting with
      | [] ->
        (* No rule selects this cluster dynamically; it is still a
           variant (e.g. only the initial configuration) and keeps a
           never-enabled guard. *)
        [ (None, Spi.Predicate.False) ]
      | rules ->
        List.map
          (fun r ->
            ( Some r.Structure.sel_rule_id,
              rename_guard wiring iface r.Structure.sel_guard ))
          rules)
  in
  List.concat_map
    (fun entry_mode_opt ->
      List.map
        (fun (rule_opt, guard) ->
          let name =
            let base = I.Cluster_id.to_string (Cluster.id cluster) in
            let with_entry =
              match entry_mode_opt with
              | None -> base
              | Some em -> base ^ "." ^ I.Mode_id.to_string (Spi.Mode.id em)
            in
            match rule_opt with
            | None -> with_entry
            | Some rid -> with_entry ^ "@" ^ I.Rule_id.to_string rid
          in
          let consumes =
            add_selection_consumption guard
              (port_consumptions ~wiring iface cluster entry_mode_opt)
          in
          let latency =
            match entry_mode_opt with
            | None -> latency
            | Some em -> Interval.join latency (Spi.Mode.latency em)
          in
          let mode =
            Spi.Mode.make ~latency ~consumes
              ~produces:(port_productions ~wiring iface cluster)
              (I.Mode_id.of_string name)
          in
          { mode; cluster = Cluster.id cluster; selection_guard = guard })
        guards)
    entry_modes

let availability_guard mode =
  Spi.Predicate.conj
    (List.map
       (fun (cid, rate) -> Spi.Predicate.num_at_least cid (Interval.hi rate))
       (Spi.Mode.consumptions mode))

let extract ?(granularity = Per_entry_mode) ~process_name ~wiring iface =
  if Interface.clusters iface = [] then
    error
      ~subject:(I.Interface_id.to_string (Interface.id iface))
      "interface %a has no clusters" I.Interface_id.pp (Interface.id iface);
  let selection = Interface.selection iface in
  let candidates =
    List.concat_map
      (candidates_for_cluster ~granularity ~wiring ~selection iface)
      (Interface.clusters iface)
  in
  let rules =
    List.mapi
      (fun i cand ->
        let guard =
          Spi.Predicate.conj [ availability_guard cand.mode; cand.selection_guard ]
        in
        Spi.Activation.rule
          (I.Rule_id.of_string (Format.sprintf "%s.a%d" process_name i))
          ~guard ~mode:(Spi.Mode.id cand.mode))
      candidates
  in
  let pid = I.Process_id.of_string process_name in
  let abstract_process =
    Spi.Process.make
      ~activation:(Spi.Activation.make rules)
      ~modes:(List.map (fun c -> c.mode) candidates)
      pid
  in
  let config_entries =
    List.map
      (fun cluster ->
        let cid = Cluster.id cluster in
        let modes =
          List.filter_map
            (fun c ->
              if I.Cluster_id.equal c.cluster cid then Some (Spi.Mode.id c.mode)
              else None)
            candidates
        in
        let reconf_latency =
          match selection with
          | None -> 0
          | Some sel -> Selection.config_latency sel cid
        in
        Configuration.entry ~reconf_latency
          ("conf." ^ I.Cluster_id.to_string cid)
          ~modes)
      (Interface.clusters iface)
  in
  let initial =
    match selection with
    | None -> None
    | Some sel ->
      Option.map
        (fun cid -> I.Config_id.of_string ("conf." ^ I.Cluster_id.to_string cid))
        (Selection.initial sel)
  in
  let configurations = Configuration.make ?initial ~process:pid config_entries in
  {
    abstract_process;
    configurations;
    mode_origin = List.map (fun c -> (Spi.Mode.id c.mode, c.cluster)) candidates;
  }

let extract_result ?granularity ~process_name ~wiring iface =
  match extract ?granularity ~process_name ~wiring iface with
  | r -> Ok r
  | exception Extraction_error d -> Error d
  | exception Invalid_argument m ->
    Error
      (Diagnostic.make
         ~subject:(I.Interface_id.to_string (Interface.id iface))
         m)

let pp_result ppf r =
  Format.fprintf ppf "@[<v>%a@,%a@]" Spi.Process.pp r.abstract_process
    Configuration.pp r.configurations
