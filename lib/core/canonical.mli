(** Canonical structural hashing.

    The exploration store keys persisted bounds and incumbents by a
    fingerprint of the problem they were computed for.  Two runs over
    structurally identical inputs must produce the same key, whatever
    order the declarations were written in — so the hash feeds every
    collection in a canonical (sorted) order, with explicit framing so
    that concatenation ambiguities (["ab"] + ["c"] vs ["a"] + ["bc"])
    cannot collide structurally distinct inputs.

    Digests are 64-bit FNV-1a rendered as 16 lowercase hex characters.
    A digest is a cache key, not a cryptographic commitment: collisions
    are astronomically unlikely for the store's working-set sizes, and a
    wrong hit is harmless anyway because stored bindings are re-validated
    against the live problem before they seed a search. *)

type t
(** A streaming hash state. *)

val create : unit -> t

val feed_int : t -> int -> unit
val feed_bool : t -> bool -> unit

val feed_string : t -> string -> unit
(** Length-prefixed, so adjacent strings cannot blur together. *)

val feed_tag : t -> string -> unit
(** A structural frame marker: use one per record/variant constructor so
    that values of different shapes hash differently even when their
    fields coincide. *)

val feed_interval : t -> Interval.t -> unit

val feed_list : t -> (t -> 'a -> unit) -> 'a list -> unit
(** Length-prefixed; elements are fed in the given order — sort first
    when the source order is not canonical. *)

val feed_option : t -> (t -> 'a -> unit) -> 'a option -> unit

val digest : t -> string
(** 16 lowercase hex characters.  The state remains usable; feeding more
    data evolves the digest. *)

val hash_string : string -> string
(** One-shot digest of a raw byte string (no framing) — the journal's
    per-record checksum. *)

val of_model : Spi.Model.t -> string
(** Structural fingerprint of a model: processes (modes, rates,
    latencies, payload policies, activation rule structure) and channels
    (kind, capacity, initial tokens), all in sorted order. *)

val of_system : System.t -> string
(** Structural fingerprint of a system with variants: shared processes
    and channels (sorted) plus the site tree — interfaces, wirings and
    clusters recursively, with cluster lists kept in declaration order
    because a cluster's position is its variant index.  Two systems with
    equal fingerprints have identical variant spaces and flatten to
    identical models; the family plan caches key by this. *)
