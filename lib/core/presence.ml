module I = Spi.Ids

type space = {
  assignments : Variant_space.assignment array;
  sites : I.Interface_id.t list;
  subtrees : (I.Interface_id.t * I.Interface_id.t list) list;
      (** per top-level site: every interface id that can appear in its
          subtree (itself included), over all cluster choices — the
          projection domain {!partition_at} groups by *)
}

let subtree_iids site =
  let rec of_site s =
    let iface = s.Structure.iface in
    iface.Structure.interface_id
    :: List.concat_map
         (fun c -> List.concat_map of_site c.Structure.sub_sites)
         iface.Structure.clusters
  in
  of_site site

let space ?(linkage = []) system =
  let assignments = Array.of_list (Variant_space.enumerate ~linkage system) in
  if Array.length assignments = 0 then
    invalid_arg "Presence.space: the system has no configuration";
  {
    assignments;
    sites =
      List.map
        (fun site -> site.Structure.iface.Structure.interface_id)
        (System.sites system);
    subtrees =
      List.map
        (fun site ->
          (site.Structure.iface.Structure.interface_id, subtree_iids site))
        (System.sites system);
  }

let size sp = Array.length sp.assignments

let assignment sp i =
  if i < 0 || i >= size sp then invalid_arg "Presence.assignment: bad index";
  sp.assignments.(i)

let sites sp = sp.sites

let choice_at sp i site =
  match
    List.find_opt (fun (s, _) -> I.Interface_id.equal s site) (assignment sp i)
  with
  | Some (_, cluster) -> Some cluster
  | None -> None

let choice_at sp i site =
  match choice_at sp i site with
  | Some c -> c
  | None ->
    invalid_arg
      (Format.asprintf "Presence.choice_at: unknown site %a" I.Interface_id.pp
         site)

(* Bitset over configuration indices, little-endian across 63-bit
   words.  Immutable by convention: every operation returns a fresh
   array. *)
type t = { n : int; words : int array }

let bits_per_word = 63
let words_for n = (n + bits_per_word - 1) / bits_per_word

let empty sp =
  let n = size sp in
  { n; words = Array.make (words_for n) 0 }

let full sp =
  let n = size sp in
  let words = Array.make (words_for n) 0 in
  for i = 0 to n - 1 do
    let w = i / bits_per_word and b = i mod bits_per_word in
    words.(w) <- words.(w) lor (1 lsl b)
  done;
  { n; words }

let mem i t =
  i >= 0 && i < t.n
  && t.words.(i / bits_per_word) land (1 lsl (i mod bits_per_word)) <> 0

let add i t =
  if i < 0 || i >= t.n then invalid_arg "Presence.add: bad index";
  let words = Array.copy t.words in
  let w = i / bits_per_word and b = i mod bits_per_word in
  words.(w) <- words.(w) lor (1 lsl b);
  { t with words }

let singleton sp i =
  if i < 0 || i >= size sp then invalid_arg "Presence.singleton: bad index";
  add i (empty sp)

let of_indices sp is = List.fold_left (fun acc i -> add i acc) (empty sp) is

let popcount x =
  let rec go acc x = if x = 0 then acc else go (acc + 1) (x land (x - 1)) in
  go 0 x

let cardinal t = Array.fold_left (fun acc w -> acc + popcount w) 0 t.words

let is_empty t = Array.for_all (fun w -> w = 0) t.words

let same_space a b =
  if a.n <> b.n then invalid_arg "Presence: sets from different spaces";
  ()

let equal a b =
  same_space a b;
  Array.for_all2 (fun x y -> x = y) a.words b.words

let map2 f a b =
  same_space a b;
  { a with words = Array.map2 f a.words b.words }

let inter = map2 ( land )
let union = map2 ( lor )
let diff = map2 (fun x y -> x land lnot y)

let subset a b = is_empty (diff a b)

let iter f t =
  for i = 0 to t.n - 1 do
    if mem i t then f i
  done

let indices t =
  let acc = ref [] in
  iter (fun i -> acc := i :: !acc) t;
  List.rev !acc

let first t =
  let rec go i = if i >= t.n then None else if mem i t then Some i else go (i + 1) in
  go 0

let partition_at sp t site =
  let sub =
    match
      List.find_opt (fun (s, _) -> I.Interface_id.equal s site) sp.subtrees
    with
    | Some (_, iids) -> iids
    | None ->
      invalid_arg
        (Format.asprintf "Presence.partition_at: unknown site %a"
           I.Interface_id.pp site)
  in
  let in_subtree iid = List.exists (I.Interface_id.equal iid) sub in
  (* Group by the full subtree choice, not just the top-level cluster:
     resolving a site commits its nested sites too, so two members
     agreeing at the top but diverging below must part ways here. *)
  let project i =
    List.filter (fun (iid, _) -> in_subtree iid) (assignment sp i)
  in
  let key_equal a b =
    List.length a = List.length b
    && List.for_all2
         (fun (i1, c1) (i2, c2) ->
           I.Interface_id.equal i1 i2 && I.Cluster_id.equal c1 c2)
         a b
  in
  let parts = ref [] in
  (* accumulate in first-member order: members are scanned ascending,
     so a choice's part is created when its smallest member appears *)
  iter
    (fun i ->
      let key = project i in
      match List.find_opt (fun (k, _, _) -> key_equal k key) !parts with
      | Some (_, _, members) -> members := i :: !members
      | None -> parts := !parts @ [ (key, choice_at sp i site, ref [ i ]) ])
    t;
  List.map
    (fun (_, c, members) -> (c, of_indices sp (List.rev !members)))
    !parts

let pp ppf t =
  Format.fprintf ppf "{%a}"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_char ppf ' ')
       Format.pp_print_int)
    (indices t)
