type t = { subject : string option; message : string }

let make ?subject message = { subject; message }

let msgf ?subject fmt =
  Format.kasprintf (fun message -> { subject; message }) fmt

let subject t = t.subject
let message t = t.message

let to_string t =
  match t.subject with
  | None -> t.message
  | Some s -> Format.sprintf "%s: %s" s t.message

let pp ppf t = Format.pp_print_string ppf (to_string t)
