module I = Spi.Ids

exception Evolution_error of Diagnostic.t

let error ?subject fmt =
  Format.kasprintf
    (fun message -> raise (Evolution_error (Diagnostic.make ?subject message)))
    fmt

let split_site iid system =
  match System.find_site iid system with
  | None ->
    error ~subject:(I.Interface_id.to_string iid) "unknown interface %a"
      I.Interface_id.pp iid
  | Some site ->
    let others =
      List.filter
        (fun s ->
          not
            (I.Interface_id.equal s.Structure.iface.Structure.interface_id iid))
        (System.sites system)
    in
    (site, others)

let fix_variant iid cid system =
  let site, others = split_site iid system in
  let iface = site.Structure.iface in
  let cluster =
    match
      List.find_opt
        (fun c -> I.Cluster_id.equal c.Structure.cluster_id cid)
        iface.Structure.clusters
    with
    | Some c -> c
    | None ->
      error ~subject:(I.Cluster_id.to_string cid)
        "interface %a has no cluster %a" I.Interface_id.pp iid I.Cluster_id.pp
        cid
  in
  (* nested interfaces stay variable only if they were lifted; inlining
     commits them too, taking their first cluster unless the caller
     fixes them separately beforehand — so reject clusters with
     sub-sites to keep the operation predictable *)
  if cluster.Structure.sub_sites <> [] then
    error ~subject:(I.Cluster_id.to_string cid)
      "cluster %a embeds interfaces; fix the nested variants first"
      I.Cluster_id.pp cid;
  let instance =
    Cluster.instantiate
      ~prefix:(I.Interface_id.to_string iid)
      ~port_channels:site.Structure.wiring
      ~sub_choice:(fun sub ->
        error ~subject:(I.Interface_id.to_string sub)
          "unexpected nested interface %a" I.Interface_id.pp sub)
      cluster
  in
  System.make
    ~processes:(System.processes system @ instance.Cluster.inst_processes)
    ~channels:(System.channels system @ instance.Cluster.inst_channels)
    ~sites:others
    ~constraints:(System.constraints system)
    (System.name system)

let update_selection iid selection system =
  if Option.is_none (System.find_site iid system) then
    error ~subject:(I.Interface_id.to_string iid) "unknown interface %a"
      I.Interface_id.pp iid;
  let sites =
    List.map
      (fun site ->
        let iface = site.Structure.iface in
        if I.Interface_id.equal iface.Structure.interface_id iid then
          let iface' =
            Interface.make ?selection
              ~ports:iface.Structure.iface_ports
              ~clusters:iface.Structure.clusters
              (I.Interface_id.to_string iid)
          in
          { site with Structure.iface = iface' }
        else site)
      (System.sites system)
  in
  System.make
    ~processes:(System.processes system)
    ~channels:(System.channels system)
    ~sites
    ~constraints:(System.constraints system)
    (System.name system)

let make_runtime iid selection system = update_selection iid (Some selection) system
let make_production iid system = update_selection iid None system

let wrap f =
  match f () with
  | v -> Ok v
  | exception Evolution_error d -> Error d
  | exception Invalid_argument m -> Error (Diagnostic.make m)

let fix_variant_result iid cid system = wrap (fun () -> fix_variant iid cid system)
let make_runtime_result iid sel system = wrap (fun () -> make_runtime iid sel system)
let make_production_result iid system = wrap (fun () -> make_production iid system)
